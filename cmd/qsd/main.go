// Command qsd ("quantum speed of data") regenerates the tables and figures of
// "Running a Quantum Circuit at the Speed of Data" (ISCA 2008) from the
// reproduction library, either as a one-shot batch or as an HTTP service.
//
// Usage:
//
//	qsd <experiment> [flags]
//	qsd serve [flags]
//
// Experiments: table1, table2, table3, table4, table5, table6, table7,
// table8, table9, fig4, fig7, fig8, fig15, fowler, shor, simple-factory,
// zero-factory, pi8-factory, qalypso, all, plus the event-driven scenarios
// fig15buf (Figure 15 with finite ancilla buffers), buffersweep (execution
// time vs buffer capacity), contention (co-scheduled benchmarks sharing one
// factory bank), factory-sim (factory pipelines on the event kernel),
// netsweep (the teleportation interconnect's link-bandwidth × tile-count
// grid) and netcontention (co-scheduled benchmarks sharing one routed mesh);
// -buffer sets the finite buffer capacity (0 = infinite) and -tiles bounds
// the network scenarios' mesh size.
//
// Every experiment runs as a job batch on the shared experiment engine
// (internal/engine): -parallel selects the worker count, a progress line on
// stderr tracks job completion, and all output is rendered from the engine's
// collected results through one code path (report.Document), so `qsd all
// -parallel 8` and a sequential run print byte-identical reports.  -format
// selects the encoding: text (default, the historical output), json or csv,
// both carrying full-precision values.
//
// `qsd serve` starts the HTTP/JSON API of internal/server on -addr, exposing
// the same experiments as parameterized /v1/experiments endpoints backed by
// one shared engine, so repeated and concurrent requests reuse cached and
// in-flight results.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"speedofdata/internal/core"
	"speedofdata/internal/engine"
	"speedofdata/internal/microarch"
	"speedofdata/internal/noise"
	"speedofdata/internal/report"
	"speedofdata/internal/schedule"
	"speedofdata/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qsd:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("qsd", flag.ContinueOnError)
	bits := fs.Int("bits", 32, "benchmark operand width")
	trials := fs.Int("trials", noise.DefaultTrials, "Monte Carlo trials for fig4")
	seed := fs.Int64("seed", 1, "Monte Carlo seed for fig4")
	sparse := fs.Bool("sparse", false, "use the sparse Monte Carlo sampler for fig4 (faster, statistically equivalent; the default dense sampler is byte-reproducible)")
	bitsliced := fs.Bool("bitsliced", false, "use the bit-sliced Monte Carlo executor for fig4 (64 trials per word op, statistically equivalent; mutually exclusive with -sparse)")
	ci := fs.Float64("ci", 0, "fig4 sequential sampling: run the bit-sliced executor until the uncorrectable rate's relative confidence-interval half-width reaches this value, capped at -trials (0 = fixed -trials budget; mutually exclusive with -sparse)")
	conf := fs.Float64("conf", 0, "confidence level for -ci (0 = 0.95)")
	buckets := fs.Int("buckets", schedule.DefaultDemandBuckets, "time buckets for fig7")
	maxScale := fs.Int("max-scale", microarch.DefaultMaxScale, "largest resource scale for fig15")
	benchName := fs.String("benchmark", "QCLA", "benchmark for fig15/fig15buf/buffersweep (QRCA, QCLA, QFT)")
	arch := fs.String("arch", "", "restrict fig15/fig15buf/buffersweep to one architecture (QLA, GQLA, CQLA, GCQLA, Fully-Multiplexed)")
	buffer := fs.Int("buffer", core.DefaultBufferAncillae, "buffer capacity for fig15buf/contention/factory-sim/netsweep/netcontention (0 = infinite)")
	tiles := fs.Int("tiles", core.DefaultTiles, "mesh tile bound for netsweep/netcontention")
	format := fs.String("format", "text", "output format: text, json or csv")
	parallel := fs.Int("parallel", 0, "experiment engine workers (0 = GOMAXPROCS, 1 = sequential)")
	progress := fs.Bool("progress", true, "print a job progress line on stderr")
	addr := fs.String("addr", ":8080", "listen address for qsd serve")
	if len(args) == 0 {
		usage(fs)
		return fmt.Errorf("missing experiment id")
	}
	id := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}

	eng := engine.New(*parallel)
	e := core.NewExperiments()
	e.Bits = *bits
	e.Engine = eng
	p := core.RunParams{Trials: *trials, Seed: *seed, Sparse: *sparse, BitSliced: *bitsliced,
		CI: *ci, Conf: *conf, Buckets: *buckets,
		MaxScale: *maxScale, Benchmark: *benchName, Arch: *arch, Buffer: *buffer, Tiles: *tiles}
	if err := p.Validate(); err != nil {
		return err
	}

	if id == "serve" {
		// Bound the long-lived server: cap the memoisation cache so distinct
		// requests can't grow memory forever, and time out header reads so
		// slow-drip connections can't exhaust the listener.  No WriteTimeout:
		// /v1/progress streams indefinitely.
		eng.CacheLimit = 1 << 14
		srv := &http.Server{
			Addr:              *addr,
			Handler:           server.New(e, p),
			ReadHeaderTimeout: 10 * time.Second,
			IdleTimeout:       2 * time.Minute,
		}
		fmt.Fprintf(os.Stderr, "qsd: serving on %s\n", *addr)
		return srv.ListenAndServe()
	}

	f, err := report.ParseFormat(*format)
	if err != nil {
		return err
	}
	if *progress {
		eng.Progress = progressLine(os.Stderr)
	}

	ids := []string{id}
	if id == "all" {
		ids = core.AllExperimentOrder
	} else if _, ok := core.CanonicalExperimentID(id); !ok {
		usage(fs)
		return fmt.Errorf("unknown experiment %q", id)
	}

	doc, err := core.RunReport(context.Background(), e, p, ids)
	if err != nil {
		return err
	}
	clearProgress(os.Stderr, *progress)
	return doc.Encode(out, f)
}

// progressLine returns an engine progress callback that keeps one updating
// status line on w.
func progressLine(w *os.File) func(done, total int, key string) {
	return func(done, total int, key string) {
		if i := strings.IndexByte(key, '|'); i > 0 {
			key = key[:i]
		}
		fmt.Fprintf(w, "\r[%4d jobs done] %-24.24s", done, key)
	}
}

func clearProgress(w *os.File, enabled bool) {
	if enabled {
		fmt.Fprintf(w, "\r%-42s\r", "")
	}
}

func usage(fs *flag.FlagSet) {
	fmt.Fprintln(os.Stderr, "usage: qsd <experiment> [flags]")
	fmt.Fprintln(os.Stderr, "       qsd serve [flags]")
	fmt.Fprintln(os.Stderr, "experiments: table1..table9, fig4, fig7, fig8, fig15, fowler, shor,")
	fmt.Fprintln(os.Stderr, "             simple-factory, zero-factory, pi8-factory, qalypso, all,")
	fmt.Fprintln(os.Stderr, "             fig15buf, buffersweep, contention, factory-sim (event-driven),")
	fmt.Fprintln(os.Stderr, "             netsweep, netcontention (teleportation interconnect)")
	fs.PrintDefaults()
}
