// Command qsd ("quantum speed of data") regenerates the tables and figures of
// "Running a Quantum Circuit at the Speed of Data" (ISCA 2008) from the
// reproduction library, either as a one-shot batch or as an HTTP service.
//
// Usage:
//
//	qsd <experiment> [flags]
//	qsd serve [flags]
//	qsd loadtest [flags]
//
// Experiments: table1, table2, table3, table4, table5, table6, table7,
// table8, table9, fig4, fig7, fig8, fig15, fowler, shor, simple-factory,
// zero-factory, pi8-factory, qalypso, all, plus the event-driven scenarios
// fig15buf (Figure 15 with finite ancilla buffers), buffersweep (execution
// time vs buffer capacity), contention (co-scheduled benchmarks sharing one
// factory bank), factory-sim (factory pipelines on the event kernel),
// netsweep (the teleportation interconnect's link-bandwidth × tile-count
// grid), netcontention (co-scheduled benchmarks sharing one routed mesh),
// netfault (the benchmark replayed under dead and degraded EPR links with
// fault-aware rerouting) and netdegrade (link failures swept until the mesh
// partitions); -buffer sets the finite buffer capacity (0 = infinite),
// -tiles bounds the network scenarios' mesh size and -faults bounds the
// netdegrade failure sweep.
//
// Every experiment runs as a job batch on the shared experiment engine
// (internal/engine): -parallel selects the worker count, a progress line on
// stderr tracks job completion, and all output is rendered from the engine's
// collected results through one code path (report.Document), so `qsd all
// -parallel 8` and a sequential run print byte-identical reports.  -format
// selects the encoding: text (default, the historical output), json or csv,
// both carrying full-precision values.
//
// -store DIR attaches a persistent result store (internal/store) behind the
// engine cache: computed results are written through to an append-only,
// checksummed log and survive process exit, so a repeated run — or a
// restarted server — answers with key lookups instead of simulations.  One
// writer owns a store directory at a time (flock); further processes fall
// back to read-only sharing (or ask for it with -store-readonly).
// -store-sync picks the fsync policy and -store-max-bytes bounds the live
// bytes kept on disk.  The store never changes results: `qsd all` output is
// byte-identical with and without it, cold or warm.
//
// `qsd serve` starts the HTTP/JSON API of internal/server on -addr, exposing
// the same experiments as parameterized /v1/experiments endpoints backed by
// one shared engine, so repeated and concurrent requests reuse cached and
// in-flight results.  Admission control is tunable (-max-concurrent,
// -max-queue, -queue-timeout, -request-timeout, -rate-limit, -rate-burst);
// SIGINT/SIGTERM trigger a graceful drain bounded by -drain-timeout, after
// which in-flight batches are cancelled.
//
// The server carries the observability layer of internal/obs: GET /metrics
// serves a Prometheus text scrape and GET /v1/metrics a JSON snapshot of the
// same registry (engine jobs and cache tiers, store bytes, per-route request
// latencies, admission counters, sim kernel events, Go runtime gauges);
// experiment requests are traced (X-Trace-Id response header, span tree at
// GET /v1/trace/{id}, trace_id on progress SSE events) and logged as JSON
// lines on stderr (-access-log, -log-level), with spans slower than
// -slow-span flagged.  -debug-addr opens a side listener with /debug/pprof/
// and the metrics endpoints, kept off the public address.
//
// `qsd loadtest` drives an open-loop Poisson load (internal/loadgen) against
// -url, or against an in-process server when -url is empty, and prints the
// measured latency quantiles, shed and error counts.  -lt-rate and
// -lt-duration set the offered load; -lt-mix picks weighted experiments
// ("id[?query]:weight,..."); -lt-cache-hit replays earlier requests at that
// fraction (fingerprint cache hits); -lt-sse opens progress subscriptions at
// that fraction.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"speedofdata/internal/core"
	"speedofdata/internal/engine"
	"speedofdata/internal/loadgen"
	"speedofdata/internal/microarch"
	"speedofdata/internal/noise"
	"speedofdata/internal/obs"
	"speedofdata/internal/report"
	"speedofdata/internal/schedule"
	"speedofdata/internal/server"
	"speedofdata/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qsd:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("qsd", flag.ContinueOnError)
	bits := fs.Int("bits", 32, "benchmark operand width")
	trials := fs.Int("trials", noise.DefaultTrials, "Monte Carlo trials for fig4")
	seed := fs.Int64("seed", 1, "Monte Carlo seed for fig4")
	sparse := fs.Bool("sparse", false, "use the sparse Monte Carlo sampler for fig4 (faster, statistically equivalent; the default dense sampler is byte-reproducible)")
	bitsliced := fs.Bool("bitsliced", false, "use the bit-sliced Monte Carlo executor for fig4 (64 trials per word op, statistically equivalent; mutually exclusive with -sparse)")
	ci := fs.Float64("ci", 0, "fig4 sequential sampling: run the bit-sliced executor until the uncorrectable rate's relative confidence-interval half-width reaches this value, capped at -trials (0 = fixed -trials budget; mutually exclusive with -sparse)")
	conf := fs.Float64("conf", 0, "confidence level for -ci (0 = 0.95)")
	buckets := fs.Int("buckets", schedule.DefaultDemandBuckets, "time buckets for fig7")
	maxScale := fs.Int("max-scale", microarch.DefaultMaxScale, "largest resource scale for fig15")
	benchName := fs.String("benchmark", "QCLA", "benchmark for fig15/fig15buf/buffersweep (QRCA, QCLA, QFT)")
	arch := fs.String("arch", "", "restrict fig15/fig15buf/buffersweep to one architecture (QLA, GQLA, CQLA, GCQLA, Fully-Multiplexed)")
	buffer := fs.Int("buffer", core.DefaultBufferAncillae, "buffer capacity for fig15buf/contention/factory-sim/netsweep/netcontention (0 = infinite)")
	tiles := fs.Int("tiles", core.DefaultTiles, "mesh tile bound for netsweep/netcontention/netfault/netdegrade")
	faults := fs.Int("faults", core.DefaultFaults, "netdegrade: boundary failures swept (capped at the mesh's boundary count)")
	format := fs.String("format", "text", "output format: text, json or csv")
	parallel := fs.Int("parallel", 0, "experiment engine workers (0 = GOMAXPROCS, 1 = sequential)")
	progress := fs.Bool("progress", true, "print a job progress line on stderr")
	addr := fs.String("addr", ":8080", "listen address for qsd serve")
	maxConcurrent := fs.Int("max-concurrent", 0, "serve/loadtest: concurrent experiment requests (0 = 2×GOMAXPROCS)")
	maxQueue := fs.Int("max-queue", 0, "serve/loadtest: admission queue depth (0 = default)")
	queueTimeout := fs.Duration("queue-timeout", 0, "serve/loadtest: longest admission wait before shedding (0 = default)")
	requestTimeout := fs.Duration("request-timeout", 0, "serve/loadtest: execution deadline of an admitted request (0 = default)")
	rateLimit := fs.Float64("rate-limit", 0, "serve/loadtest: per-client sustained requests/s (0 = disabled)")
	rateBurst := fs.Int("rate-burst", 0, "serve/loadtest: per-client burst size (0 = derived from -rate-limit)")
	drainTimeout := fs.Duration("drain-timeout", 15*time.Second, "serve: graceful shutdown drain deadline")
	debugAddr := fs.String("debug-addr", "", "serve: side listener exposing /debug/pprof/ and the metrics endpoints, kept off the public address (empty = disabled)")
	accessLog := fs.Bool("access-log", true, "serve: emit one structured JSON log line per request on stderr")
	logLevel := fs.String("log-level", "info", "serve: minimum log level (debug, info, warn, error)")
	slowSpan := fs.Duration("slow-span", time.Second, "serve: log traced request spans slower than this (0 = disabled)")
	storeDir := fs.String("store", "", "persistent result store directory (empty = memory-only cache); computed results are written through and survive restarts")
	storeReadonly := fs.Bool("store-readonly", false, "open -store without the writer lock: borrow another process's results, persist nothing")
	storeSync := fs.String("store-sync", "compact", "store fsync policy: compact, always or never")
	storeMaxBytes := fs.Int64("store-max-bytes", 0, "store live-byte bound before oldest-entry eviction (0 = 256 MiB)")
	ltURL := fs.String("url", "", "loadtest: target base URL (empty = in-process server)")
	ltRate := fs.Float64("lt-rate", 20, "loadtest: offered arrival rate, requests/s")
	ltDuration := fs.Duration("lt-duration", 5*time.Second, "loadtest: offered load duration")
	ltMix := fs.String("lt-mix", "table5:2,table1:1", "loadtest: weighted mix, \"id[?query]:weight,...\"")
	ltCacheHit := fs.Float64("lt-cache-hit", 0, "loadtest: fraction of requests replaying an earlier URL (cache hits)")
	ltSSE := fs.Float64("lt-sse", 0, "loadtest: fraction of arrivals opening a progress subscription")
	if len(args) == 0 {
		usage(fs)
		return fmt.Errorf("missing experiment id")
	}
	id := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}

	eng := engine.New(*parallel)
	if *storeDir != "" {
		syncPol, err := store.ParseSyncPolicy(*storeSync)
		if err != nil {
			return err
		}
		opts := store.Options{ReadOnly: *storeReadonly, Sync: syncPol, MaxBytes: *storeMaxBytes}
		st, err := store.Open(*storeDir, opts)
		var locked *store.LockedError
		if errors.As(err, &locked) && !*storeReadonly {
			// Another process owns the directory; borrow its results instead
			// of failing, as a second replica sharing a store dir would.
			fmt.Fprintf(os.Stderr, "qsd: %v\n", err)
			opts.ReadOnly = true
			st, err = store.Open(*storeDir, opts)
		}
		if err != nil {
			return err
		}
		eng.Backend = st
		defer func() {
			stats := st.Stats()
			st.Close()
			fmt.Fprintf(os.Stderr,
				"qsd: store %s: %d hits, %d misses, %d puts, %d entries, %d bytes on disk\n",
				*storeDir, stats.Hits, stats.Misses, stats.Puts, stats.Entries, stats.FileBytes)
		}()
	}
	e := core.NewExperiments()
	e.Bits = *bits
	e.Engine = eng
	p := core.RunParams{Trials: *trials, Seed: *seed, Sparse: *sparse, BitSliced: *bitsliced,
		CI: *ci, Conf: *conf, Buckets: *buckets,
		MaxScale: *maxScale, Benchmark: *benchName, Arch: *arch, Buffer: *buffer, Tiles: *tiles,
		Faults: *faults}
	if err := p.Validate(); err != nil {
		return err
	}

	cfg := server.Config{
		MaxConcurrent:  *maxConcurrent,
		MaxQueue:       *maxQueue,
		QueueTimeout:   *queueTimeout,
		RequestTimeout: *requestTimeout,
		RatePerClient:  *rateLimit,
		BurstPerClient: *rateBurst,
	}

	if id == "serve" {
		if err := cfg.Validate(); err != nil {
			return err
		}
		var level slog.Level
		if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
			return fmt.Errorf("bad -log-level %q: want debug, info, warn or error", *logLevel)
		}
		o := obs.New()
		o.Log = slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
		if *slowSpan > 0 {
			o.Tracer.SetSlowSpan(*slowSpan, o.Log)
		}
		cfg.Obs = o
		cfg.AccessLog = *accessLog
		// Bound the long-lived server: cap the memoisation cache so distinct
		// requests can't grow memory forever, and time out header reads so
		// slow-drip connections can't exhaust the listener.  No WriteTimeout:
		// /v1/progress streams indefinitely.
		eng.CacheLimit = 1 << 14
		h := server.NewWithConfig(e, p, cfg)
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			return err
		}
		if *debugAddr != "" {
			dln, err := net.Listen("tcp", *debugAddr)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "qsd: debug endpoints (pprof, metrics) on %s\n", dln.Addr())
			dbg := &http.Server{Handler: o.DebugHandler(), ReadHeaderTimeout: 10 * time.Second}
			go dbg.Serve(dln)
			defer dbg.Close()
		}
		fmt.Fprintf(os.Stderr, "qsd: serving on %s\n", ln.Addr())
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		return serveUntilShutdown(ctx, ln, h, *drainTimeout)
	}

	if id == "loadtest" {
		if err := cfg.Validate(); err != nil {
			return err
		}
		base := *ltURL
		if base == "" {
			// Spin an in-process server on a loopback port: the loadtest then
			// measures this build end to end with no external dependency.
			eng.CacheLimit = 1 << 14
			h := server.NewWithConfig(e, p, cfg)
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			srv := &http.Server{Handler: h, ReadHeaderTimeout: 10 * time.Second}
			go srv.Serve(ln)
			defer srv.Close()
			base = "http://" + ln.Addr().String()
			fmt.Fprintf(os.Stderr, "qsd: loadtest against in-process server %s\n", base)
		}
		mix, err := parseMix(*ltMix, *ltCacheHit, *ltSSE)
		if err != nil {
			return err
		}
		res, err := loadgen.Run(context.Background(), loadgen.Config{
			BaseURL:  base,
			Rate:     *ltRate,
			Duration: *ltDuration,
			Seed:     *seed,
			Mix:      mix,
		})
		if err != nil {
			return err
		}
		return writeLoadResult(out, *format, res)
	}

	f, err := report.ParseFormat(*format)
	if err != nil {
		return err
	}
	if *progress {
		eng.Progress = progressLine(os.Stderr)
	}

	ids := []string{id}
	if id == "all" {
		ids = core.AllExperimentOrder
	} else if _, ok := core.CanonicalExperimentID(id); !ok {
		usage(fs)
		return fmt.Errorf("unknown experiment %q", id)
	}

	doc, err := core.RunReport(context.Background(), e, p, ids)
	if err != nil {
		return err
	}
	clearProgress(os.Stderr, *progress)
	return doc.Encode(out, f)
}

// serveUntilShutdown runs the HTTP server on ln until ctx cancels (signal),
// then drains: the application layer stops first (SSE streams close, new
// requests get 503), connections drain within the deadline, and past it the
// in-flight experiment batches are cancelled and the server force-closed.
func serveUntilShutdown(ctx context.Context, ln net.Listener, h *server.Server, drain time.Duration) error {
	baseCtx, cancelInFlight := context.WithCancel(context.Background())
	defer cancelInFlight()
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(os.Stderr, "qsd: shutting down, draining for up to %v\n", drain)
	h.Shutdown()
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		cancelInFlight()
		srv.Close()
		return fmt.Errorf("drain deadline exceeded, connections force-closed: %v", err)
	}
	return nil
}

// parseMix expands a "-lt-mix" spec into a loadgen mix.  Each comma-separated
// entry is "id[?query]:weight"; the optional query is fixed on every request
// to that endpoint, and a fresh random seed parameter is added to non-replay
// requests so a cache-cold mix defeats the fingerprint cache.
func parseMix(spec string, cacheHit, sse float64) (loadgen.Mix, error) {
	mix := loadgen.Mix{CacheHit: cacheHit, SSE: sse}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		i := strings.LastIndexByte(entry, ':')
		if i <= 0 || i == len(entry)-1 {
			return mix, fmt.Errorf("bad mix entry %q: want id[?query]:weight", entry)
		}
		weight, err := strconv.ParseFloat(entry[i+1:], 64)
		if err != nil || weight <= 0 {
			return mix, fmt.Errorf("bad mix weight in %q", entry)
		}
		id, fixedQuery := entry[:i], ""
		if j := strings.IndexByte(id, '?'); j >= 0 {
			id, fixedQuery = id[:j], id[j+1:]
		}
		if _, ok := core.CanonicalExperimentID(id); !ok && id != "all" {
			return mix, fmt.Errorf("unknown experiment %q in mix", id)
		}
		fixed, err := url.ParseQuery(fixedQuery)
		if err != nil {
			return mix, fmt.Errorf("bad mix query in %q: %v", entry, err)
		}
		mix.Endpoints = append(mix.Endpoints, loadgen.Endpoint{
			ID:     id,
			Weight: weight,
			Params: func(r *rand.Rand) url.Values {
				v := url.Values{}
				for k, vals := range fixed {
					v[k] = vals
				}
				v.Set("seed", strconv.Itoa(r.Intn(1<<30)))
				return v
			},
		})
	}
	if len(mix.Endpoints) == 0 {
		return mix, fmt.Errorf("empty mix %q", spec)
	}
	return mix, nil
}

// writeLoadResult renders a loadtest result as JSON or a readable summary.
func writeLoadResult(out *os.File, format string, res loadgen.Result) error {
	switch format {
	case "json":
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	case "text", "":
		fmt.Fprintf(out, "offered %.1f/s achieved %.1f/s\n", res.OfferedPerSec, res.AchievedPerSec)
		fmt.Fprintf(out, "sent %d ok %d shed %d errors %d (retry-after on %d/%d sheds)\n",
			res.Sent, res.OK, res.Shed, res.Errors, res.RetryAfterSeen, res.Shed)
		if res.Errors > 0 {
			fmt.Fprintf(out, "error breakdown: %d timeout %d transport %d http-status\n",
				res.Timeouts, res.TransportErrors, res.HTTPErrors)
		}
		fmt.Fprintf(out, "latency p50 %v p90 %v p99 %v p999 %v max %v\n",
			res.P50, res.P90, res.P99, res.P999, res.Max)
		if res.SSESessions > 0 {
			fmt.Fprintf(out, "sse sessions %d events %d\n", res.SSESessions, res.SSEEvents)
		}
		return nil
	default:
		return fmt.Errorf("loadtest supports -format text or json, got %q", format)
	}
}

// progressLine returns an engine progress callback that keeps one updating
// status line on w.  Batch runs carry no trace, so the trace ID is unused
// here; the server's SSE hub is the consumer that forwards it.
func progressLine(w *os.File) func(done, total int, key, traceID string) {
	return func(done, total int, key, traceID string) {
		if i := strings.IndexByte(key, '|'); i > 0 {
			key = key[:i]
		}
		fmt.Fprintf(w, "\r[%4d jobs done] %-24.24s", done, key)
	}
}

func clearProgress(w *os.File, enabled bool) {
	if enabled {
		fmt.Fprintf(w, "\r%-42s\r", "")
	}
}

func usage(fs *flag.FlagSet) {
	fmt.Fprintln(os.Stderr, "usage: qsd <experiment> [flags]")
	fmt.Fprintln(os.Stderr, "       qsd serve [flags]")
	fmt.Fprintln(os.Stderr, "       qsd loadtest [flags]")
	fmt.Fprintln(os.Stderr, "experiments: table1..table9, fig4, fig7, fig8, fig15, fowler, shor,")
	fmt.Fprintln(os.Stderr, "             simple-factory, zero-factory, pi8-factory, qalypso, all,")
	fmt.Fprintln(os.Stderr, "             fig15buf, buffersweep, contention, factory-sim (event-driven),")
	fmt.Fprintln(os.Stderr, "             netsweep, netcontention (teleportation interconnect)")
	fs.PrintDefaults()
}
