// Command qsd ("quantum speed of data") regenerates the tables and figures of
// "Running a Quantum Circuit at the Speed of Data" (ISCA 2008) from the
// reproduction library.
//
// Usage:
//
//	qsd <experiment> [flags]
//
// Experiments: table1, table2, table3, table4, table5, table6, table7,
// table8, table9, fig4, fig7, fig8, fig15, fowler, shor, simple-factory,
// zero-factory, pi8-factory, qalypso, all.
//
// Every experiment runs as a job batch on the shared experiment engine
// (internal/engine): -parallel selects the worker count, a progress line on
// stderr tracks job completion, and all output is rendered from the engine's
// collected results through one code path (report.Document), so `qsd all -
// parallel 8` and a sequential run print byte-identical reports.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"

	"speedofdata/internal/circuits"
	"speedofdata/internal/core"
	"speedofdata/internal/engine"
	"speedofdata/internal/factory"
	"speedofdata/internal/iontrap"
	"speedofdata/internal/microarch"
	"speedofdata/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qsd:", err)
		os.Exit(1)
	}
}

// params carries the per-run experiment settings parsed from flags.
type params struct {
	trials   int
	seed     int64
	buckets  int
	maxScale int
	bench    string
}

// renderer regenerates one experiment as rendered text.
type renderer func(e core.Experiments, p params) (string, error)

// experimentOrder is the presentation order of `qsd all`.
var experimentOrder = []string{
	"table1", "table2", "table3", "table5", "table6", "table7", "table8",
	"table9", "fig7", "fig8", "fowler",
}

// renderers maps every experiment id to its renderer.  Aliases share an
// entry.
var renderers = map[string]renderer{
	"table1":         func(core.Experiments, params) (string, error) { return renderTechnology() },
	"table4":         func(core.Experiments, params) (string, error) { return renderTechnology() },
	"table2":         func(e core.Experiments, _ params) (string, error) { return renderCharacterization(e, "table2") },
	"table3":         func(e core.Experiments, _ params) (string, error) { return renderCharacterization(e, "table3") },
	"table5":         renderTable5,
	"table7":         renderTable7,
	"table6":         renderZeroFactory,
	"zero-factory":   renderZeroFactory,
	"table8":         renderPi8Factory,
	"pi8-factory":    renderPi8Factory,
	"simple-factory": renderSimpleFactory,
	"table9":         renderTable9,
	"qalypso":        renderTable9,
	"fig4":           func(e core.Experiments, p params) (string, error) { return renderFigure4(e, p.trials, p.seed) },
	"fig7":           func(e core.Experiments, p params) (string, error) { return renderFigure7(e, p.buckets) },
	"fig8":           func(e core.Experiments, _ params) (string, error) { return renderFigure8(e) },
	"fig15":          func(e core.Experiments, p params) (string, error) { return renderFigure15(e, p.bench, p.maxScale) },
	"fowler":         func(e core.Experiments, _ params) (string, error) { return renderFowler(e) },
	"shor":           func(e core.Experiments, _ params) (string, error) { return renderShor(e) },
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("qsd", flag.ContinueOnError)
	bits := fs.Int("bits", 32, "benchmark operand width")
	trials := fs.Int("trials", 200000, "Monte Carlo trials for fig4")
	seed := fs.Int64("seed", 1, "Monte Carlo seed for fig4")
	buckets := fs.Int("buckets", 20, "time buckets for fig7")
	maxScale := fs.Int("max-scale", 64, "largest resource scale for fig15")
	benchName := fs.String("benchmark", "QCLA", "benchmark for fig15 (QRCA, QCLA, QFT)")
	parallel := fs.Int("parallel", 0, "experiment engine workers (0 = GOMAXPROCS, 1 = sequential)")
	progress := fs.Bool("progress", true, "print a job progress line on stderr")
	if len(args) == 0 {
		usage(fs)
		return fmt.Errorf("missing experiment id")
	}
	id := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *trials <= 0 {
		return fmt.Errorf("-trials must be positive, got %d", *trials)
	}

	eng := engine.New(*parallel)
	if *progress {
		eng.Progress = progressLine(os.Stderr)
	}
	e := core.NewExperiments()
	e.Bits = *bits
	e.Engine = eng
	p := params{trials: *trials, seed: *seed, buckets: *buckets, maxScale: *maxScale, bench: *benchName}

	ids := []string{id}
	if id == "all" {
		ids = experimentOrder
	} else if _, ok := renderers[id]; !ok {
		usage(fs)
		return fmt.Errorf("unknown experiment %q", id)
	}

	doc, err := renderAll(e, p, ids)
	if err != nil {
		return err
	}
	clearProgress(os.Stderr, *progress)
	fmt.Fprint(out, doc.String())
	return nil
}

// renderAll regenerates the requested experiments as one engine job batch
// and collects the rendered sections in presentation order.  Experiments
// that share work (e.g. the Table 2/3 characterisations feeding Figure 8)
// hit the engine's result cache through their inner jobs.
func renderAll(e core.Experiments, p params, ids []string) (report.Document, error) {
	jobs := make([]engine.Job[string], len(ids))
	for i, id := range ids {
		id := id
		r := renderers[id]
		jobs[i] = engine.Job[string]{
			Key: engine.Fingerprint("qsd", id, e.Bits, p),
			Run: func(context.Context, *rand.Rand) (string, error) {
				body, err := r(e, p)
				if err != nil {
					return "", fmt.Errorf("%s: %w", id, err)
				}
				return body, nil
			},
		}
	}
	bodies, err := engine.Run(context.Background(), e.Engine, jobs)
	if err != nil {
		return report.Document{}, err
	}
	var doc report.Document
	for i, id := range ids {
		doc.Add(id, bodies[i])
	}
	return doc, nil
}

// progressLine returns an engine progress callback that keeps one updating
// status line on w.
func progressLine(w *os.File) func(done, total int, key string) {
	return func(done, total int, key string) {
		if i := strings.IndexByte(key, '|'); i > 0 {
			key = key[:i]
		}
		fmt.Fprintf(w, "\r[%4d jobs done] %-24.24s", done, key)
	}
}

func clearProgress(w *os.File, enabled bool) {
	if enabled {
		fmt.Fprintf(w, "\r%-42s\r", "")
	}
}

func usage(fs *flag.FlagSet) {
	fmt.Fprintln(os.Stderr, "usage: qsd <experiment> [flags]")
	fmt.Fprintln(os.Stderr, "experiments: table1..table9, fig4, fig7, fig8, fig15, fowler, shor,")
	fmt.Fprintln(os.Stderr, "             simple-factory, zero-factory, pi8-factory, qalypso, all")
	fs.PrintDefaults()
}

func renderTechnology() (string, error) {
	tech := iontrap.Default()
	tb := report.Table{
		Title:   "Tables 1 and 4: ion trap physical operation latencies",
		Headers: []string{"Operation", "Symbol", "Latency (us)"},
	}
	names := map[iontrap.Op]string{
		iontrap.OpOneQubitGate: "One-Qubit Gate",
		iontrap.OpTwoQubitGate: "Two-Qubit Gate",
		iontrap.OpMeasure:      "Measurement",
		iontrap.OpZeroPrep:     "Zero Prepare",
		iontrap.OpStraightMove: "Straight Move",
		iontrap.OpTurn:         "Turn",
	}
	for _, op := range iontrap.Ops() {
		tb.AddRow(names[op], op.String(), float64(tech.LatencyOf(op)))
	}
	return tb.String(), nil
}

func renderCharacterization(e core.Experiments, id string) (string, error) {
	rows, err := e.Table2And3()
	if err != nil {
		return "", err
	}
	if id == "table2" {
		tb := report.Table{
			Title: "Table 2: critical-path latency split (no overlap)",
			Headers: []string{"Circuit", "Data Op (us)", "%", "QEC Interact (us)", "%",
				"Ancilla Prep (us)", "%", "Speed-of-data (us)", "Speedup"},
		}
		for _, r := range rows {
			d, i, p := r.Fractions()
			tb.AddRow(r.Name, float64(r.DataOpLatency), pct(d), float64(r.QECInteractLatency), pct(i),
				float64(r.AncillaPrepLatency), pct(p), float64(r.SpeedOfDataTime), r.Speedup())
		}
		return tb.String(), nil
	}
	tb := report.Table{
		Title:   "Table 3: average encoded ancilla bandwidths at the speed of data",
		Headers: []string{"Circuit", "Zero ancillae/ms (QEC)", "pi/8 ancillae/ms", "Total gates", "pi/8 gates"},
	}
	for _, r := range rows {
		tb.AddRow(r.Name, r.ZeroBandwidthPerMs, r.Pi8BandwidthPerMs, r.TotalGates, r.Pi8Gates)
	}
	return tb.String(), nil
}

func renderTable5(e core.Experiments, _ params) (string, error) {
	return unitTable("Table 5: pipelined zero-factory functional units", e.Table5()), nil
}

func renderTable7(e core.Experiments, _ params) (string, error) {
	return unitTable("Table 7: encoded pi/8 factory stages", e.Table7()), nil
}

func renderZeroFactory(e core.Experiments, _ params) (string, error) {
	_, zero, _ := e.FactoryDesigns()
	return designTable("Table 6 / Section 4.4.1: pipelined encoded-zero factory", zero), nil
}

func renderPi8Factory(e core.Experiments, _ params) (string, error) {
	_, _, pi8 := e.FactoryDesigns()
	return designTable("Table 8 / Section 4.4.2: encoded pi/8 factory", pi8), nil
}

func renderSimpleFactory(e core.Experiments, _ params) (string, error) {
	simple, _, _ := e.FactoryDesigns()
	var b strings.Builder
	fmt.Fprintf(&b, "Simple encoded-zero factory (Section 4.3)\n")
	fmt.Fprintf(&b, "  latency    : %s = %v us\n", simple.Latency(), simple.LatencyUs())
	fmt.Fprintf(&b, "  throughput : %.1f encoded ancillae / ms\n", simple.ThroughputPerMs())
	fmt.Fprintf(&b, "  area       : %v macroblocks\n", simple.Area())
	return b.String(), nil
}

func unitTable(title string, rows []core.Table5Row) string {
	tb := report.Table{
		Title:   title,
		Headers: []string{"Functional Unit", "Symbolic Latency", "Latency (us)", "Stages", "In BW (q/ms)", "Out BW (q/ms)", "Area"},
	}
	for _, r := range rows {
		tb.AddRow(r.Name, r.SymbolicLatency, r.LatencyUs, r.Stages, r.InBWPerMs, r.OutBWPerMs, r.Area)
	}
	return tb.String()
}

func designTable(title string, d factory.Design) string {
	tb := report.Table{
		Title:   title,
		Headers: []string{"Stage", "Unit", "Count", "Total Height", "Total Area"},
	}
	for _, s := range d.Stages {
		for _, a := range s.Allocations {
			tb.AddRow(s.Name, a.Unit.Name, a.Count, a.TotalHeight(), float64(a.TotalArea()))
		}
	}
	out := tb.String()
	out += fmt.Sprintf("functional area %v + crossbar area %v = %v macroblocks; throughput %.1f encoded ancillae/ms\n",
		d.FunctionalArea(), d.CrossbarArea(), d.TotalArea(), d.ThroughputPerMs)
	return out
}

func renderTable9(e core.Experiments, _ params) (string, error) {
	rows, err := e.Table9()
	if err != nil {
		return "", err
	}
	tb := report.Table{
		Title: "Table 9: area breakdown to generate encoded ancillae at the Table 3 bandwidths",
		Headers: []string{"Circuit", "Zero BW (/ms)", "Data Area", "%", "QEC Factories", "%",
			"pi/8 Factories", "%", "Total"},
	}
	for _, r := range rows {
		d, q, p := r.Fractions()
		tb.AddRow(r.Name, r.ZeroBandwidthPerMs, float64(r.DataArea), pct(d),
			float64(r.QECFactoryArea), pct(q), float64(r.Pi8FactoryArea), pct(p), float64(r.TotalArea()))
	}
	return tb.String(), nil
}

func renderFigure4(e core.Experiments, trials int, seed int64) (string, error) {
	rows, err := e.Figure4(trials, seed)
	if err != nil {
		return "", err
	}
	tb := report.Table{
		Title: "Figure 4: encoded-zero preparation error rates (uncorrectable = logical error after ideal decode)",
		Headers: []string{"Circuit", "Paper rate", "First-order uncorrectable", "MC uncorrectable", "MC residual",
			"Verify reject", "Physical ops"},
	}
	for _, r := range rows {
		tb.AddRow(r.Name, r.PaperRate, r.FirstOrder.UncorrectableRate, r.MonteCarlo.UncorrectableRate,
			r.MonteCarlo.ResidualRate, r.MonteCarlo.RejectRate, r.Ops.Total())
	}
	return tb.String(), nil
}

func renderFigure7(e core.Experiments, buckets int) (string, error) {
	profiles, err := e.Figure7(buckets)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, name := range benchmarkOrder(profiles) {
		s := report.Series{
			Title:  fmt.Sprintf("Figure 7 (%s): encoded zero ancillae needed per time bucket", name),
			XLabel: "time (ms)", YLabel: "encoded zero ancillae",
		}
		for _, p := range profiles[name] {
			s.Add(p.TimeMs, float64(p.ZeroAncillae))
		}
		b.WriteString(s.String())
		b.WriteByte('\n')
	}
	return b.String(), nil
}

func renderFigure8(e core.Experiments) (string, error) {
	sweeps, err := e.Figure8()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, name := range benchmarkOrder(sweeps) {
		s := report.Series{
			Title:  fmt.Sprintf("Figure 8 (%s): execution time vs steady zero-ancilla throughput", name),
			XLabel: "ancillae/ms", YLabel: "execution time (ms)",
		}
		for _, p := range sweeps[name] {
			s.Add(p.ThroughputPerMs, p.ExecutionTimeMs)
		}
		b.WriteString(s.String())
		b.WriteByte('\n')
	}
	return b.String(), nil
}

func renderFigure15(e core.Experiments, benchName string, maxScale int) (string, error) {
	var bench circuits.Benchmark
	switch benchName {
	case "QRCA":
		bench = circuits.QRCA
	case "QCLA":
		bench = circuits.QCLA
	case "QFT":
		bench = circuits.QFT
	default:
		return "", fmt.Errorf("unknown benchmark %q", benchName)
	}
	curves, err := e.Figure15(bench, maxScale)
	if err != nil {
		return "", err
	}
	tb := report.Table{
		Title:   fmt.Sprintf("Figure 15 (%d-bit %s): execution time vs ancilla factory area", e.Bits, bench),
		Headers: []string{"Architecture", "Scale", "Factory area (macroblocks)", "Execution time (ms)"},
	}
	for _, arch := range microarch.Architectures() {
		for _, p := range curves[arch].Points {
			tb.AddRow(arch.String(), p.Scale, p.AreaMacroblocks, p.ExecutionTimeMs)
		}
	}
	return tb.String(), nil
}

func renderFowler(e core.Experiments) (string, error) {
	res, err := e.Fowler(10)
	if err != nil {
		return "", err
	}
	tb := report.Table{
		Title:   "Section 2.5: H/T approximation of pi/2^k rotations",
		Headers: []string{"k", "Sequence", "Length", "T count", "Error"},
	}
	for i, seq := range res.Sequences {
		tb.AddRow(res.TargetsK[i], seq.Gates, seq.Len(), seq.TCount(), seq.Error)
	}
	var b strings.Builder
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "modelled H/T sequence length at 1e-4 precision: %d gates\n\n", res.LengthAt1em4)
	tb2 := report.Table{
		Title:   "Figure 6: exact recursive pi/2^k cascade",
		Headers: []string{"k", "Factories", "Worst-case CX", "Expected CX", "Expected X"},
	}
	for _, c := range res.Cascade {
		tb2.AddRow(c.K, c.AncillaFactories, c.WorstCaseCX, c.ExpectedCX, c.ExpectedX)
	}
	b.WriteString(tb2.String())
	return b.String(), nil
}

func renderShor(e core.Experiments) (string, error) {
	tb := report.Table{
		Title: fmt.Sprintf("Extension: Shor's algorithm resource estimate (%d-bit modulus, speed-of-data execution)", e.Bits),
		Headers: []string{"Adder", "Adder calls", "Exec time (s)", "Zero anc/ms", "pi/8 anc/ms",
			"Zero factories", "pi/8 factories", "Chip (macroblocks)", "Speedup vs no-overlap"},
	}
	ripple, lookahead, err := core.CompareShorAddersEngine(context.Background(), e.Engine, e.Bits, e.Options)
	if err != nil {
		return "", err
	}
	for _, est := range []core.ShorEstimate{ripple, lookahead} {
		tb.AddRow(est.Adder.String(), est.AdderInvocations, est.ExecutionTimeSeconds(),
			est.ZeroBandwidthPerMs, est.Pi8BandwidthPerMs, est.ZeroFactories, est.Pi8Factories,
			float64(est.ChipArea), est.Speedup())
	}
	return tb.String(), nil
}

func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

func benchmarkOrder[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
