// Command qsd ("quantum speed of data") regenerates the tables and figures of
// "Running a Quantum Circuit at the Speed of Data" (ISCA 2008) from the
// reproduction library.
//
// Usage:
//
//	qsd <experiment> [flags]
//
// Experiments: table1, table2, table3, table4, table5, table6, table7,
// table8, table9, fig4, fig7, fig8, fig15, fowler, simple-factory,
// zero-factory, pi8-factory, qalypso, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"speedofdata/internal/circuits"
	"speedofdata/internal/core"
	"speedofdata/internal/factory"
	"speedofdata/internal/iontrap"
	"speedofdata/internal/microarch"
	"speedofdata/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "qsd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("qsd", flag.ContinueOnError)
	bits := fs.Int("bits", 32, "benchmark operand width")
	trials := fs.Int("trials", 200000, "Monte Carlo trials for fig4")
	seed := fs.Int64("seed", 1, "Monte Carlo seed for fig4")
	buckets := fs.Int("buckets", 20, "time buckets for fig7")
	maxScale := fs.Int("max-scale", 64, "largest resource scale for fig15")
	benchName := fs.String("benchmark", "QCLA", "benchmark for fig15 (QRCA, QCLA, QFT)")
	if len(args) == 0 {
		usage(fs)
		return fmt.Errorf("missing experiment id")
	}
	id := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	e := core.NewExperiments()
	e.Bits = *bits

	switch id {
	case "table1", "table4":
		return printTechnology()
	case "table2", "table3":
		return printCharacterization(e, id)
	case "table5":
		fmt.Print(unitTable("Table 5: pipelined zero-factory functional units", e.Table5()))
		return nil
	case "table7":
		fmt.Print(unitTable("Table 7: encoded pi/8 factory stages", e.Table7()))
		return nil
	case "table6", "zero-factory":
		_, zero, _ := e.FactoryDesigns()
		fmt.Print(designTable("Table 6 / Section 4.4.1: pipelined encoded-zero factory", zero))
		return nil
	case "table8", "pi8-factory":
		_, _, pi8 := e.FactoryDesigns()
		fmt.Print(designTable("Table 8 / Section 4.4.2: encoded pi/8 factory", pi8))
		return nil
	case "simple-factory":
		simple, _, _ := e.FactoryDesigns()
		fmt.Printf("Simple encoded-zero factory (Section 4.3)\n")
		fmt.Printf("  latency    : %s = %v us\n", simple.Latency(), simple.LatencyUs())
		fmt.Printf("  throughput : %.1f encoded ancillae / ms\n", simple.ThroughputPerMs())
		fmt.Printf("  area       : %v macroblocks\n", simple.Area())
		return nil
	case "table9", "qalypso":
		return printTable9(e)
	case "fig4":
		return printFigure4(e, *trials, *seed)
	case "fig7":
		return printFigure7(e, *buckets)
	case "fig8":
		return printFigure8(e)
	case "fig15":
		return printFigure15(e, *benchName, *maxScale)
	case "fowler":
		return printFowler(e)
	case "shor":
		return printShor(e)
	case "all":
		for _, sub := range []string{"table1", "table2", "table3", "table5", "table6", "table7", "table8", "table9", "fig7", "fig8", "fowler"} {
			fmt.Printf("=== %s ===\n", sub)
			if err := run(append([]string{sub}, args[1:]...)); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	default:
		usage(fs)
		return fmt.Errorf("unknown experiment %q", id)
	}
}

func usage(fs *flag.FlagSet) {
	fmt.Fprintln(os.Stderr, "usage: qsd <experiment> [flags]")
	fmt.Fprintln(os.Stderr, "experiments: table1..table9, fig4, fig7, fig8, fig15, fowler, shor,")
	fmt.Fprintln(os.Stderr, "             simple-factory, zero-factory, pi8-factory, qalypso, all")
	fs.PrintDefaults()
}

func printTechnology() error {
	tech := iontrap.Default()
	tb := report.Table{
		Title:   "Tables 1 and 4: ion trap physical operation latencies",
		Headers: []string{"Operation", "Symbol", "Latency (us)"},
	}
	names := map[iontrap.Op]string{
		iontrap.OpOneQubitGate: "One-Qubit Gate",
		iontrap.OpTwoQubitGate: "Two-Qubit Gate",
		iontrap.OpMeasure:      "Measurement",
		iontrap.OpZeroPrep:     "Zero Prepare",
		iontrap.OpStraightMove: "Straight Move",
		iontrap.OpTurn:         "Turn",
	}
	for _, op := range iontrap.Ops() {
		tb.AddRow(names[op], op.String(), float64(tech.LatencyOf(op)))
	}
	fmt.Print(tb.String())
	return nil
}

func printCharacterization(e core.Experiments, id string) error {
	rows, err := e.Table2And3()
	if err != nil {
		return err
	}
	if id == "table2" {
		tb := report.Table{
			Title: "Table 2: critical-path latency split (no overlap)",
			Headers: []string{"Circuit", "Data Op (us)", "%", "QEC Interact (us)", "%",
				"Ancilla Prep (us)", "%", "Speed-of-data (us)", "Speedup"},
		}
		for _, r := range rows {
			d, i, p := r.Fractions()
			tb.AddRow(r.Name, float64(r.DataOpLatency), pct(d), float64(r.QECInteractLatency), pct(i),
				float64(r.AncillaPrepLatency), pct(p), float64(r.SpeedOfDataTime), r.Speedup())
		}
		fmt.Print(tb.String())
		return nil
	}
	tb := report.Table{
		Title:   "Table 3: average encoded ancilla bandwidths at the speed of data",
		Headers: []string{"Circuit", "Zero ancillae/ms (QEC)", "pi/8 ancillae/ms", "Total gates", "pi/8 gates"},
	}
	for _, r := range rows {
		tb.AddRow(r.Name, r.ZeroBandwidthPerMs, r.Pi8BandwidthPerMs, r.TotalGates, r.Pi8Gates)
	}
	fmt.Print(tb.String())
	return nil
}

func unitTable(title string, rows []core.Table5Row) string {
	tb := report.Table{
		Title:   title,
		Headers: []string{"Functional Unit", "Symbolic Latency", "Latency (us)", "Stages", "In BW (q/ms)", "Out BW (q/ms)", "Area"},
	}
	for _, r := range rows {
		tb.AddRow(r.Name, r.SymbolicLatency, r.LatencyUs, r.Stages, r.InBWPerMs, r.OutBWPerMs, r.Area)
	}
	return tb.String()
}

func designTable(title string, d factory.Design) string {
	tb := report.Table{
		Title:   title,
		Headers: []string{"Stage", "Unit", "Count", "Total Height", "Total Area"},
	}
	for _, s := range d.Stages {
		for _, a := range s.Allocations {
			tb.AddRow(s.Name, a.Unit.Name, a.Count, a.TotalHeight(), float64(a.TotalArea()))
		}
	}
	out := tb.String()
	out += fmt.Sprintf("functional area %v + crossbar area %v = %v macroblocks; throughput %.1f encoded ancillae/ms\n",
		d.FunctionalArea(), d.CrossbarArea(), d.TotalArea(), d.ThroughputPerMs)
	return out
}

func printTable9(e core.Experiments) error {
	rows, err := e.Table9()
	if err != nil {
		return err
	}
	tb := report.Table{
		Title: "Table 9: area breakdown to generate encoded ancillae at the Table 3 bandwidths",
		Headers: []string{"Circuit", "Zero BW (/ms)", "Data Area", "%", "QEC Factories", "%",
			"pi/8 Factories", "%", "Total"},
	}
	for _, r := range rows {
		d, q, p := r.Fractions()
		tb.AddRow(r.Name, r.ZeroBandwidthPerMs, float64(r.DataArea), pct(d),
			float64(r.QECFactoryArea), pct(q), float64(r.Pi8FactoryArea), pct(p), float64(r.TotalArea()))
	}
	fmt.Print(tb.String())
	return nil
}

func printFigure4(e core.Experiments, trials int, seed int64) error {
	rows, err := e.Figure4(trials, seed)
	if err != nil {
		return err
	}
	tb := report.Table{
		Title: "Figure 4: encoded-zero preparation error rates (uncorrectable = logical error after ideal decode)",
		Headers: []string{"Circuit", "Paper rate", "First-order uncorrectable", "MC uncorrectable", "MC residual",
			"Verify reject", "Physical ops"},
	}
	for _, r := range rows {
		tb.AddRow(r.Name, r.PaperRate, r.FirstOrder.UncorrectableRate, r.MonteCarlo.UncorrectableRate,
			r.MonteCarlo.ResidualRate, r.MonteCarlo.RejectRate, r.Ops.Total())
	}
	fmt.Print(tb.String())
	return nil
}

func printFigure7(e core.Experiments, buckets int) error {
	profiles, err := e.Figure7(buckets)
	if err != nil {
		return err
	}
	for _, name := range benchmarkOrder(profiles) {
		s := report.Series{
			Title:  fmt.Sprintf("Figure 7 (%s): encoded zero ancillae needed per time bucket", name),
			XLabel: "time (ms)", YLabel: "encoded zero ancillae",
		}
		for _, p := range profiles[name] {
			s.Add(p.TimeMs, float64(p.ZeroAncillae))
		}
		fmt.Print(s.String())
		fmt.Println()
	}
	return nil
}

func printFigure8(e core.Experiments) error {
	sweeps, err := e.Figure8()
	if err != nil {
		return err
	}
	for _, name := range benchmarkOrder(sweeps) {
		s := report.Series{
			Title:  fmt.Sprintf("Figure 8 (%s): execution time vs steady zero-ancilla throughput", name),
			XLabel: "ancillae/ms", YLabel: "execution time (ms)",
		}
		for _, p := range sweeps[name] {
			s.Add(p.ThroughputPerMs, p.ExecutionTimeMs)
		}
		fmt.Print(s.String())
		fmt.Println()
	}
	return nil
}

func printFigure15(e core.Experiments, benchName string, maxScale int) error {
	var bench circuits.Benchmark
	switch benchName {
	case "QRCA":
		bench = circuits.QRCA
	case "QCLA":
		bench = circuits.QCLA
	case "QFT":
		bench = circuits.QFT
	default:
		return fmt.Errorf("unknown benchmark %q", benchName)
	}
	curves, err := e.Figure15(bench, maxScale)
	if err != nil {
		return err
	}
	tb := report.Table{
		Title:   fmt.Sprintf("Figure 15 (%d-bit %s): execution time vs ancilla factory area", e.Bits, bench),
		Headers: []string{"Architecture", "Scale", "Factory area (macroblocks)", "Execution time (ms)"},
	}
	for _, arch := range microarch.Architectures() {
		for _, p := range curves[arch].Points {
			tb.AddRow(arch.String(), p.Scale, p.AreaMacroblocks, p.ExecutionTimeMs)
		}
	}
	fmt.Print(tb.String())
	return nil
}

func printFowler(e core.Experiments) error {
	res, err := e.Fowler(10)
	if err != nil {
		return err
	}
	tb := report.Table{
		Title:   "Section 2.5: H/T approximation of pi/2^k rotations",
		Headers: []string{"k", "Sequence", "Length", "T count", "Error"},
	}
	for i, seq := range res.Sequences {
		tb.AddRow(res.TargetsK[i], seq.Gates, seq.Len(), seq.TCount(), seq.Error)
	}
	fmt.Print(tb.String())
	fmt.Printf("modelled H/T sequence length at 1e-4 precision: %d gates\n\n", res.LengthAt1em4)
	tb2 := report.Table{
		Title:   "Figure 6: exact recursive pi/2^k cascade",
		Headers: []string{"k", "Factories", "Worst-case CX", "Expected CX", "Expected X"},
	}
	for _, c := range res.Cascade {
		tb2.AddRow(c.K, c.AncillaFactories, c.WorstCaseCX, c.ExpectedCX, c.ExpectedX)
	}
	fmt.Print(tb2.String())
	return nil
}

func printShor(e core.Experiments) error {
	tb := report.Table{
		Title: fmt.Sprintf("Extension: Shor's algorithm resource estimate (%d-bit modulus, speed-of-data execution)", e.Bits),
		Headers: []string{"Adder", "Adder calls", "Exec time (s)", "Zero anc/ms", "pi/8 anc/ms",
			"Zero factories", "pi/8 factories", "Chip (macroblocks)", "Speedup vs no-overlap"},
	}
	ripple, lookahead, err := core.CompareShorAdders(e.Bits, e.Options)
	if err != nil {
		return err
	}
	for _, est := range []core.ShorEstimate{ripple, lookahead} {
		tb.AddRow(est.Adder.String(), est.AdderInvocations, est.ExecutionTimeSeconds(),
			est.ZeroBandwidthPerMs, est.Pi8BandwidthPerMs, est.ZeroFactories, est.Pi8Factories,
			float64(est.ChipArea), est.Speedup())
	}
	fmt.Print(tb.String())
	return nil
}

func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

func benchmarkOrder[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
