package main

import (
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"speedofdata/internal/core"
	"speedofdata/internal/engine"
	"speedofdata/internal/server"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("table1:3, fig4?trials=20000:1", 0.25, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(mix.Endpoints) != 2 || mix.CacheHit != 0.25 || mix.SSE != 0.1 {
		t.Fatalf("unexpected mix: %+v", mix)
	}
	if mix.Endpoints[0].ID != "table1" || mix.Endpoints[0].Weight != 3 {
		t.Errorf("first endpoint: %+v", mix.Endpoints[0])
	}
	// The fig4 entry keeps its fixed query and gains a random seed.
	rng := rand.New(rand.NewSource(1))
	v := mix.Endpoints[1].Params(rng)
	if v.Get("trials") != "20000" {
		t.Errorf("fixed query lost: %v", v)
	}
	if v.Get("seed") == "" {
		t.Errorf("random seed param missing: %v", v)
	}

	for _, bad := range []string{
		"",
		"table1",
		"table1:",
		":3",
		"table1:-1",
		"table1:zero",
		"nonsense:1",
		"fig4?%zz:1",
	} {
		if _, err := parseMix(bad, 0, 0); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

// TestLoadtestInProcess runs the loadtest subcommand end to end against its
// own in-process server and checks the JSON report it prints.
func TestLoadtestInProcess(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "loadtest-*.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	err = run([]string{
		"loadtest",
		"-lt-rate", "30",
		"-lt-duration", "1s",
		"-lt-mix", "table1:1",
		"-lt-cache-hit", "0.5",
		"-format", "json",
		"-seed", "9",
	}, f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	var res struct {
		Sent int64 `json:"sent"`
		OK   int64 `json:"ok"`
		P50  int64 `json:"p50_ns"`
	}
	if err := json.NewDecoder(f).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 || res.OK != res.Sent {
		t.Errorf("loadtest result: sent=%d ok=%d, want all OK", res.Sent, res.OK)
	}
	if res.P50 <= 0 {
		t.Errorf("p50 %d, want positive", res.P50)
	}
}

// TestServeUntilShutdownGraceful covers the serve drain path without
// signals: an SSE client is connected when shutdown triggers and must see a
// clean stream close (EOF after a complete frame), and the server must stop
// within the drain deadline.
func TestServeUntilShutdownGraceful(t *testing.T) {
	exp := core.NewExperiments()
	exp.Engine = engine.New(2)
	h := server.New(exp, core.DefaultRunParams())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveUntilShutdown(ctx, ln, h, 5*time.Second) }()

	// Wait for the listener to answer, then hold an SSE stream open.
	var resp *http.Response
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err = http.Get(base + "/v1/progress")
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer resp.Body.Close()

	cancel() // the signal
	body, readErr := io.ReadAll(resp.Body)
	if readErr != nil {
		t.Errorf("SSE stream ended with %v, want clean EOF", readErr)
	}
	if !strings.Contains(string(body), "server shutting down") {
		t.Errorf("SSE stream missing shutdown frame: %q", body)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serveUntilShutdown did not return")
	}
}
