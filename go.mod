module speedofdata

go 1.24
