// Quickstart: characterise a benchmark kernel, find the ancilla bandwidth it
// needs to run at the speed of data, and size the factories and chip area to
// supply it — the end-to-end flow of the paper in a dozen lines of API.
package main

import (
	"fmt"
	"log"

	"speedofdata/internal/circuits"
	"speedofdata/internal/core"
)

func main() {
	opts := core.DefaultOptions()

	// Analyse the 32-bit quantum carry-lookahead adder, the paper's most
	// parallel (and hungriest) kernel.
	analysis, err := core.AnalyzeBenchmark(circuits.QCLA, 32, opts)
	if err != nil {
		log.Fatal(err)
	}

	ch := analysis.Characterization
	fmt.Printf("%s\n", analysis.Circuit.Name)
	fmt.Printf("  gates                   : %d (%d of them pi/8 gates)\n", ch.TotalGates, ch.Pi8Gates)
	fmt.Printf("  speed-of-data time      : %.1f ms\n", ch.SpeedOfDataTime.Milliseconds())
	fmt.Printf("  no-overlap time         : %.1f ms (speedup %.1fx from offline ancilla prep)\n",
		ch.NoOverlapTotal().Milliseconds(), analysis.Speedup())
	fmt.Printf("  zero-ancilla bandwidth  : %.1f encoded ancillae / ms\n", ch.ZeroBandwidthPerMs)
	fmt.Printf("  pi/8-ancilla bandwidth  : %.1f encoded ancillae / ms\n", ch.Pi8BandwidthPerMs)

	zeroCount, pi8Count := core.FactoriesForBandwidth(opts.Tech, ch.ZeroBandwidthPerMs, ch.Pi8BandwidthPerMs)
	fmt.Printf("  factories needed        : %d pipelined zero factories, %d pi/8 factories\n", zeroCount, pi8Count)

	b := analysis.Breakdown
	dataFrac, qecFrac, pi8Frac := b.Fractions()
	fmt.Printf("  chip area               : %.0f macroblocks total\n", float64(b.TotalArea()))
	fmt.Printf("    data region           : %.0f (%.0f%%)\n", float64(b.DataArea), 100*dataFrac)
	fmt.Printf("    QEC ancilla factories : %.0f (%.0f%%)\n", float64(b.QECFactoryArea), 100*qecFrac)
	fmt.Printf("    pi/8 ancilla supply   : %.0f (%.0f%%)\n", float64(b.Pi8FactoryArea), 100*pi8Frac)

	fmt.Printf("  Qalypso plan            : %d tiles, %.0f macroblocks, net %.1f zero anc/ms\n",
		len(analysis.Qalypso.Tiles), float64(analysis.Qalypso.TotalArea()), analysis.Qalypso.ZeroBandwidthPerMs())
}
