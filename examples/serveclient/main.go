// Serveclient: start the experiment HTTP API in-process, query two endpoints
// and decode the structured JSON — the programmatic counterpart of
//
//	qsd serve &
//	curl 'localhost:8080/v1/experiments/table2?format=json'
//	curl 'localhost:8080/v1/experiments/figure15?arch=gcqla&scale=8'
//
// The server wraps one shared engine, so repeating a request is answered
// from the fingerprint-keyed result cache without recomputation.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	"speedofdata/internal/core"
	"speedofdata/internal/engine"
	"speedofdata/internal/server"
)

// document mirrors the report JSON schema far enough for this client: every
// experiment response is a list of sections holding typed blocks.
type document struct {
	Sections []struct {
		ID     string `json:"id"`
		Blocks []struct {
			Type  string `json:"type"`
			Table *struct {
				Title   string   `json:"title"`
				Headers []string `json:"headers"`
				Rows    [][]any  `json:"rows"`
			} `json:"table"`
		} `json:"blocks"`
	} `json:"sections"`
}

func fetch(base, path string) (document, error) {
	resp, err := http.Get(base + path)
	if err != nil {
		return document{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return document{}, fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	var doc document
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return document{}, err
	}
	return doc, nil
}

func main() {
	// Start the API on an ephemeral port, exactly as `qsd serve` would but
	// in-process.
	exp := core.NewExperiments()
	exp.Engine = engine.New(0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, server.New(exp, core.DefaultRunParams()))
	base := "http://" + ln.Addr().String()

	// Table 2: the critical-path latency split that motivates the paper.
	doc, err := fetch(base, "/v1/experiments/table2?format=json")
	if err != nil {
		log.Fatal(err)
	}
	table := doc.Sections[0].Blocks[0].Table
	fmt.Println(table.Title)
	for _, row := range table.Rows {
		// row[0] is the circuit name, row[7] the speed-of-data time in µs —
		// full precision, unlike the rounded text rendering.
		fmt.Printf("  %-14v speed-of-data %.0f us\n", row[0], row[7])
	}

	// Figure 15 restricted to GCQLA: ?arch= avoids simulating the other four
	// organisations, and ?scale= bounds the resource sweep.
	doc, err = fetch(base, "/v1/experiments/figure15?arch=gcqla&scale=8&format=json")
	if err != nil {
		log.Fatal(err)
	}
	table = doc.Sections[0].Blocks[0].Table
	fmt.Println(table.Title)
	for _, row := range table.Rows {
		fmt.Printf("  %v scale %v: %.1f macroblocks -> %.2f ms\n", row[0], row[1], row[2], row[3])
	}

	// Re-issuing an identical request is served from the engine's
	// fingerprint cache without recomputation.
	if _, err := fetch(base, "/v1/experiments/table2?format=json"); err != nil {
		log.Fatal(err)
	}
	hits, misses := exp.Engine.CacheStats()
	fmt.Printf("engine: %d cache hits, %d computed jobs after repeating the first request\n", hits, misses)
}
