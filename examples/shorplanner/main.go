// Shor-kernel planner: the workloads that motivate the paper (Shor's
// factorisation) are built from adders and QFTs.  This example sweeps operand
// widths, characterises each kernel, and reports how the ancilla bandwidth
// and the Qalypso chip area scale — the resource-estimation use case a
// downstream architect would run.
package main

import (
	"fmt"
	"log"

	"speedofdata/internal/circuits"
	"speedofdata/internal/core"
)

func main() {
	opts := core.DefaultOptions()
	widths := []int{8, 16, 32}

	fmt.Println("Kernel scaling for Shor-style workloads (ion trap, [[7,1,3]] code)")
	fmt.Printf("%-14s %8s %10s %14s %14s %12s %10s\n",
		"kernel", "qubits", "gates", "time@SoD (ms)", "zero anc/ms", "pi/8 anc/ms", "chip (mb)")
	for _, b := range []circuits.Benchmark{circuits.QRCA, circuits.QCLA, circuits.QFT} {
		for _, w := range widths {
			a, err := core.AnalyzeBenchmark(b, w, opts)
			if err != nil {
				log.Fatal(err)
			}
			ch := a.Characterization
			fmt.Printf("%-14s %8d %10d %14.1f %14.1f %12.1f %10.0f\n",
				a.Circuit.Name, a.Circuit.NumQubits, ch.TotalGates,
				ch.SpeedOfDataTime.Milliseconds(), ch.ZeroBandwidthPerMs, ch.Pi8BandwidthPerMs,
				float64(a.Breakdown.TotalArea()))
		}
	}

	fmt.Println()
	fmt.Println("Observations (matching the paper's conclusions):")
	fmt.Println("  - ancilla generation, not data, dominates every chip;")
	fmt.Println("  - the parallel carry-lookahead adder needs an order of magnitude more")
	fmt.Println("    ancilla bandwidth than the ripple-carry adder of the same width;")
	fmt.Println("  - bandwidth, and therefore factory area, grows with both width and parallelism.")
}
