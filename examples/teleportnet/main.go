// Teleportation interconnect walkthrough: place a benchmark on a 2x2 mesh of
// Qalypso tiles, replay it through the routed network simulator, and see
// where the time goes — then verify the 1-tile degenerate mesh reproduces
// the single-region fluid replay exactly (the parity anchor of
// internal/network).
package main

import (
	"fmt"

	"speedofdata/internal/circuits"
	"speedofdata/internal/network"
	"speedofdata/internal/schedule"
)

func main() {
	m := schedule.DefaultLatencyModel()
	c, err := circuits.Generate(circuits.QCLA, 8)
	if err != nil {
		panic(err)
	}
	ch, err := schedule.Characterize(c, m)
	if err != nil {
		panic(err)
	}

	// Plan a 4-tile machine provisioned for twice the benchmark's average
	// zero-ancilla demand, so the interconnect is the interesting constraint.
	cfg, err := network.PlanConfig(m, c.NumQubits, 4, 2*ch.ZeroBandwidthPerMs, ch.Pi8BandwidthPerMs)
	if err != nil {
		panic(err)
	}
	topo := network.NewTopology(len(cfg.Machine.Tiles))
	part, err := network.PartitionCircuit(c, topo.TileCount())
	if err != nil {
		panic(err)
	}
	matched := network.MatchedLinkEPRPerMs(c, m, topo, part)
	fmt.Printf("== %s on a %dx%d mesh ==\n", c.Name, topo.Cols, topo.Rows)
	fmt.Printf("  cross-tile gates    : %d of %d\n", part.CrossGates, len(c.Gates))
	fmt.Printf("  matched link EPR bw : %.2f pairs/ms (geometric ceiling %.0f)\n",
		matched, cfg.Machine.LinkEPRPerMs())

	fmt.Println("\n== Link bandwidth sweep ==")
	for _, factor := range []float64{0.5, 1, 4} {
		cfg.LinkEPRPerMs = matched * factor
		cfg.LinkBufferPairs = 16
		run, err := network.Replay(c, cfg)
		if err != nil {
			panic(err)
		}
		r := run.Results[0]
		fmt.Printf("  %.1fx matched: exec %.1f ms (dataflow bound %.1f), network-blocked %.1f ms, ancilla wait %.1f ms\n",
			factor, r.ExecutionTime.Milliseconds(), r.SpeedOfData.Milliseconds(),
			r.NetworkBlocked.Milliseconds(), r.AncillaWait.Milliseconds())
		fmt.Printf("       %d teleports, hop histogram %v, busiest link high water %.0f pairs\n",
			r.Teleports, r.HopHistogram, run.MaxLinkHighWater())
	}

	// The degenerate 1-tile mesh has no links: the routed replayer collapses
	// to the single-region fluid replay of internal/schedule, bit for bit.
	rate := ch.ZeroBandwidthPerMs
	one, err := network.PlanConfig(m, c.NumQubits, 1, rate, 0)
	if err != nil {
		panic(err)
	}
	one.Machine.Movement.BallisticPerGateUs = 0
	one.TileZeroRatePerMs = rate
	mesh, err := network.Replay(c, one)
	if err != nil {
		panic(err)
	}
	fluid, err := schedule.Replay(c, m, schedule.Supply{RatePerMs: rate})
	if err != nil {
		panic(err)
	}
	fmt.Println("\n== 1-tile degenerate mesh vs schedule.Replay (fluid) ==")
	fmt.Printf("  mesh  : exec %v us, ancilla wait %v us\n",
		mesh.Results[0].ExecutionTime, mesh.Results[0].AncillaWait)
	fmt.Printf("  fluid : exec %v us, ancilla wait %v us\n",
		fluid.Results[0].ExecutionTime, fluid.Results[0].AncillaWait)
	fmt.Printf("  bit-identical: %v\n", mesh.Results[0].ReplayResult == fluid.Results[0])
}
