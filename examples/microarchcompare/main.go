// Microarchitecture comparison: regenerate the Figure 15 experiment for one
// benchmark and print the execution-time/area trade-off of QLA, CQLA, their
// generalisations and the paper's fully-multiplexed ancilla distribution.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"speedofdata/internal/circuits"
	"speedofdata/internal/engine"
	"speedofdata/internal/microarch"
	"speedofdata/internal/schedule"
)

func main() {
	bits := flag.Int("bits", 16, "benchmark width")
	parallel := flag.Int("parallel", 0, "experiment engine workers (0 = GOMAXPROCS)")
	flag.Parse()

	c, err := circuits.Generate(circuits.QCLA, *bits)
	if err != nil {
		log.Fatal(err)
	}
	ch, err := schedule.Characterize(c, schedule.DefaultLatencyModel())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: speed-of-data bound %.1f ms, average demand %.1f zero ancillae/ms\n\n",
		c.Name, ch.SpeedOfDataTime.Milliseconds(), ch.ZeroBandwidthPerMs)

	base := microarch.DefaultConfig(microarch.FullyMultiplexed)
	base.CacheSlots = 16
	base.Pi8BandwidthPerMs = ch.Pi8BandwidthPerMs
	// The architecture × scale grid fans out across the experiment engine's
	// workers; the curves are identical to a sequential run.
	eng := engine.New(*parallel)
	curves, err := microarch.Figure15Engine(context.Background(), eng, c,
		microarch.Figure15Config{Base: base, MaxScale: 64})
	if err != nil {
		log.Fatal(err)
	}

	for _, arch := range microarch.Architectures() {
		curve := curves[arch]
		fmt.Printf("%-18s", arch)
		for _, p := range curve.Points {
			fmt.Printf("  [%6.0f mb -> %7.1f ms]", p.AreaMacroblocks, p.ExecutionTimeMs)
		}
		fmt.Println()
	}

	fm := curves[microarch.FullyMultiplexed]
	gqla := curves[microarch.GQLA]
	fmt.Printf("\nFully-multiplexed plateau: %.1f ms (reached with %.0f macroblocks of factories)\n",
		microarch.PlateauTimeMs(fm), microarch.AreaToReach(fm, 1.5))
	fmt.Printf("GQLA plateau:              %.1f ms (needs %.0f macroblocks to get within 1.5x)\n",
		microarch.PlateauTimeMs(gqla), microarch.AreaToReach(gqla, 1.5))
	qla := curves[microarch.QLA].Points[0]
	fmt.Printf("QLA as proposed:           %.1f ms at %.0f macroblocks\n", qla.ExecutionTimeMs, qla.AreaMacroblocks)
}
