// Factory design walkthrough: build the paper's ancilla factories from their
// functional units, inspect the bandwidth matching, and compare the simple
// and pipelined designs (the Section 5.3 observation that pipelining buys
// concentrated output ports rather than density).
package main

import (
	"fmt"

	"speedofdata/internal/factory"
	"speedofdata/internal/iontrap"
)

func main() {
	tech := iontrap.Default()

	fmt.Println("== Functional units of the pipelined encoded-zero factory (Table 5) ==")
	for _, u := range factory.ZeroFactoryUnits() {
		fmt.Printf("  %-16s latency %s = %v us, in %.1f q/ms, out %.1f q/ms, area %v\n",
			u.Name, u.Latency, u.LatencyUs(tech), u.InBandwidth(tech), u.OutBandwidth(tech), u.Area)
	}

	zero := factory.PipelinedZeroFactory(tech)
	fmt.Println("\n== Bandwidth-matched design (Table 6) ==")
	for _, s := range zero.Stages {
		for _, a := range s.Allocations {
			fmt.Printf("  %-22s %-16s x%d  (height %d, area %v)\n",
				s.Name, a.Unit.Name, a.Count, a.TotalHeight(), a.TotalArea())
		}
	}
	fmt.Printf("  total: %v macroblocks (functional %v + crossbar %v), %.1f encoded zeros/ms\n",
		zero.TotalArea(), zero.FunctionalArea(), zero.CrossbarArea(), zero.ThroughputPerMs)

	pi8 := factory.Pi8Factory(tech)
	fmt.Println("\n== Encoded pi/8 factory (Tables 7 and 8) ==")
	for _, s := range pi8.Stages {
		for _, a := range s.Allocations {
			fmt.Printf("  %-24s x%d (area %v)\n", a.Unit.Name, a.Count, a.TotalArea())
		}
	}
	fmt.Printf("  total: %v macroblocks, %.1f encoded pi/8 ancillae/ms (each consuming one encoded zero)\n",
		pi8.TotalArea(), pi8.ThroughputPerMs)

	simple := factory.SimpleZeroFactory{Tech: tech}
	fmt.Println("\n== Simple vs pipelined zero factory (Section 5.3) ==")
	fmt.Printf("  simple   : %v us latency, %.1f anc/ms, %v macroblocks -> %.4f anc/ms per macroblock\n",
		simple.LatencyUs(), simple.ThroughputPerMs(), simple.Area(),
		simple.ThroughputPerMs()/float64(simple.Area()))
	fmt.Printf("  pipelined: %.1f anc/ms, %v macroblocks -> %.4f anc/ms per macroblock\n",
		zero.ThroughputPerMs, zero.TotalArea(), zero.ThroughputPerMs/float64(zero.TotalArea()))
	fmt.Println("  -> virtually the same bandwidth per unit area; the pipelined design wins by")
	fmt.Println("     funnelling its output through a single port next to the data region.")

	fmt.Println("\n== Sizing for the paper's benchmarks (Table 3 bandwidths) ==")
	for _, bench := range []struct {
		name      string
		zero, pi8 float64
	}{
		{"32-Bit QRCA", 34.8, 7.0},
		{"32-Bit QCLA", 306.1, 62.7},
		{"32-Bit QFT", 36.8, 8.6},
	} {
		fmt.Printf("  %-12s %2d zero factories (%6.1f mb) + pi/8 supply %7.1f mb\n",
			bench.name,
			zero.CountForBandwidth(bench.zero),
			float64(zero.AreaForBandwidth(bench.zero)),
			float64(factory.Pi8SupplyArea(pi8, zero, bench.pi8)))
	}
}
