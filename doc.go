// Package speedofdata is a from-scratch Go reproduction of "Running a Quantum
// Circuit at the Speed of Data" (Isailovic, Whitney, Patel, Kubiatowicz,
// ISCA 2008).
//
// The implementation lives under internal/ and is layered from the quantum IR
// up to the experiment runners; every arrow points downward:
//
//	quantum IR            internal/quantum    — gate set, circuit IR, dataflow DAG
//	    │
//	circuit layer         internal/circuits   — QRCA, QCLA, QFT generators (§3.1)
//	                      internal/steane     — [[7,1,3]] code + ancilla preparation (§2)
//	                      internal/fowler     — H/T synthesis, π/2^k cascade (§2.5)
//	                      internal/factory    — simple/pipelined zero and π/8 factories (§4.3-4.4)
//	    │
//	technology layer      internal/iontrap    — ion-trap latencies and macroblocks (§4.1)
//	                      internal/layout     — data regions, movement, Qalypso tiles (§4.2, §5.3)
//	    │
//	simulation kernel     internal/sim        — deterministic discrete-event kernel: event queue,
//	    │                                       finite-buffer resources, rate producers
//	evaluation layer      internal/microarch  — QLA/CQLA/GQLA/GCQLA/fully-multiplexed sim (§5.2)
//	                      internal/network    — teleportation interconnect: routed 2D mesh,
//	                                            EPR-channel contention, multi-tile replay (§5.3, §6)
//	                      internal/noise      — Monte Carlo / first-order error evaluation (§2.2-2.3)
//	                      internal/schedule   — critical paths, demand profiles, sweeps,
//	                                            event-driven replay and contention (§3.2-3.3)
//	    │
//	experiment engine     internal/engine     — parallel Job/Result runner: worker pool,
//	    │                                       deterministic per-job RNG streams, result cache
//	presentation layer    internal/core       — speed-of-data analysis + experiment registry
//	                      internal/report     — typed tables/series + text, JSON and CSV encoders
//	    │
//	surfaces              cmd/qsd             — batch CLI and `qsd serve`
//	                      internal/server     — HTTP/JSON API + SSE progress stream
//
// Every sweep, grid, and Monte Carlo evaluation is dispatched through
// internal/engine: experiments describe their work as batches of jobs keyed
// by stable input fingerprints, and the engine executes them on a
// GOMAXPROCS-bounded worker pool with context cancellation and an in-memory
// result cache.  Per-job RNG streams are seeded from a hash of the job key,
// so parallel runs are byte-identical to sequential ones — `qsd all
// -parallel 8` and `-parallel 1` print the same report.
//
// The simulation layers execute on internal/sim, a deterministic
// discrete-event kernel.  With infinite buffers its fluid sources reproduce
// the paper's closed-form token-bucket arithmetic bit for bit (the retained
// closed forms are the parity oracles, enforced in CI); finite buffers
// unlock the dynamics the closed forms cannot express — factory pipeline
// stalls, bursty demand against bounded storage, and co-scheduled
// benchmarks contending for one shared factory bank (the fig15buf,
// buffersweep, contention and factory-sim experiments).  internal/network
// extends the kernel across tiles: benchmark dataflow graphs replay on a
// 2D mesh of Qalypso tiles where cross-tile gates teleport operands over
// dimension-order routes, each hop drawing an EPR pair from a finite link
// channel and teleport ancillae from the departing tile (the netsweep and
// netcontention experiments); a 1-tile mesh with ballistic movement
// disabled reproduces the single-region replay bit for bit.
//
// The cmd/qsd tool regenerates every table and figure of the paper's
// evaluation — as plain text, JSON or CSV (-format) — and `qsd serve`
// exposes the same experiments as parameterized HTTP endpoints on a shared
// engine, so repeated requests hit the result cache and identical
// concurrent requests coalesce.  The benchmarks in bench_test.go wrap the
// same experiments for `go test -bench`, including engine speedup benches
// and the comparisons that emit BENCH_sim.json (closed-form vs
// event-driven) and BENCH_network.json (routed-mesh replay throughput).
// See README.md for the CLI and API reference and ARCHITECTURE.md for the
// data flow.
package speedofdata
