// Package speedofdata is a from-scratch Go reproduction of "Running a Quantum
// Circuit at the Speed of Data" (Isailovic, Whitney, Patel, Kubiatowicz,
// ISCA 2008).
//
// The implementation lives under internal/ and is organised by subsystem:
//
//   - internal/iontrap   — ion-trap latency and macroblock abstraction (§4.1)
//   - internal/quantum   — gate set, circuit IR and dataflow DAG
//   - internal/steane    — the [[7,1,3]] code and ancilla preparation circuits (§2)
//   - internal/noise     — Monte Carlo / first-order error evaluation (§2.2-2.3)
//   - internal/fowler    — H/T rotation synthesis and the π/2^k cascade (§2.5)
//   - internal/circuits  — QRCA, QCLA and QFT benchmark generators (§3.1)
//   - internal/schedule  — critical-path characterisation and ancilla demand (§3.2-3.3)
//   - internal/factory   — simple, pipelined zero and π/8 ancilla factories (§4.3-4.4)
//   - internal/layout    — data regions, movement model and Qalypso tiles (§4.2, §5.3)
//   - internal/microarch — QLA/CQLA/GQLA/GCQLA/fully-multiplexed simulation (§5.2)
//   - internal/core      — the top-level speed-of-data analysis and experiment runners
//   - internal/report    — plain-text table and series rendering
//
// The cmd/qsd tool regenerates every table and figure of the paper's
// evaluation; the benchmarks in bench_test.go wrap the same experiments for
// `go test -bench`.  See README.md, DESIGN.md and EXPERIMENTS.md.
package speedofdata
