package iontrap

import "fmt"

// MacroblockKind enumerates the abstract layout building blocks of Figure 9.
// Wide channels are valid paths for qubit movement; black squares are gate
// locations; a gate location may not occur in an intersection.
type MacroblockKind int

const (
	// DeadEndGate is a dead-end channel terminating in a gate location.
	DeadEndGate MacroblockKind = iota
	// StraightChannelGate is a straight channel containing a gate location.
	StraightChannelGate
	// StraightChannel is a straight movement channel with no gate location.
	StraightChannel
	// Turn is a 90-degree corner channel.
	Turn
	// ThreeWayIntersection joins three channels; no gate location allowed.
	ThreeWayIntersection
	// FourWayIntersection joins four channels; no gate location allowed.
	FourWayIntersection
)

var macroblockNames = [...]string{
	DeadEndGate:          "dead-end gate",
	StraightChannelGate:  "straight channel gate",
	StraightChannel:      "straight channel",
	Turn:                 "turn",
	ThreeWayIntersection: "three-way intersection",
	FourWayIntersection:  "four-way intersection",
}

// String returns the human-readable name of the macroblock kind.
func (k MacroblockKind) String() string {
	if k < 0 || int(k) >= len(macroblockNames) {
		return fmt.Sprintf("macroblock(%d)", int(k))
	}
	return macroblockNames[k]
}

// MacroblockKinds returns all macroblock kinds in a stable order.
func MacroblockKinds() []MacroblockKind {
	return []MacroblockKind{
		DeadEndGate, StraightChannelGate, StraightChannel,
		Turn, ThreeWayIntersection, FourWayIntersection,
	}
}

// HasGateLocation reports whether a qubit can perform a gate inside this
// macroblock.  Per Figure 9, gate locations may not occur in intersections.
func (k MacroblockKind) HasGateLocation() bool {
	return k == DeadEndGate || k == StraightChannelGate
}

// Ports returns how many adjacent macroblocks this kind connects to.
func (k MacroblockKind) Ports() int {
	switch k {
	case DeadEndGate:
		return 1
	case StraightChannelGate, StraightChannel, Turn:
		return 2
	case ThreeWayIntersection:
		return 3
	case FourWayIntersection:
		return 4
	default:
		return 0
	}
}

// Area is a chip area measured in macroblocks.  The paper reports every area
// this way because electrode structure is still evolving (Section 4.1).
type Area float64

// Macroblock is a single placed macroblock in a layout.
type Macroblock struct {
	Kind MacroblockKind
	// Row and Col position the macroblock on an integer grid.
	Row, Col int
}

// Layout is a rectangular arrangement of macroblocks, used for data regions
// and factory floorplans.  Area is simply the number of macroblocks.
type Layout struct {
	Name   string
	Blocks []Macroblock
}

// Area returns the total area of the layout in macroblocks.
func (l *Layout) Area() Area { return Area(len(l.Blocks)) }

// GateLocations returns how many macroblocks in the layout can host a gate.
func (l *Layout) GateLocations() int {
	n := 0
	for _, b := range l.Blocks {
		if b.Kind.HasGateLocation() {
			n++
		}
	}
	return n
}

// Bounds returns the number of rows and columns spanned by the layout.
func (l *Layout) Bounds() (rows, cols int) {
	for _, b := range l.Blocks {
		if b.Row+1 > rows {
			rows = b.Row + 1
		}
		if b.Col+1 > cols {
			cols = b.Col + 1
		}
	}
	return rows, cols
}

// NewColumnLayout builds a single column of n macroblocks of the given kind,
// the shape used for the encoded data qubit region of Figure 10 and for the
// gate rows inside factories.
func NewColumnLayout(name string, kind MacroblockKind, n int) *Layout {
	l := &Layout{Name: name}
	for i := 0; i < n; i++ {
		l.Blocks = append(l.Blocks, Macroblock{Kind: kind, Row: i, Col: 0})
	}
	return l
}

// NewGridLayout builds a rows×cols grid of macroblocks.  The kindAt function
// chooses the kind for each cell; a nil function yields straight channel
// gates everywhere.
func NewGridLayout(name string, rows, cols int, kindAt func(r, c int) MacroblockKind) *Layout {
	l := &Layout{Name: name}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			kind := StraightChannelGate
			if kindAt != nil {
				kind = kindAt(r, c)
			}
			l.Blocks = append(l.Blocks, Macroblock{Kind: kind, Row: r, Col: c})
		}
	}
	return l
}

// MovePath describes a qubit movement as a count of straight segments and
// turns, which is all the latency model needs.
type MovePath struct {
	Straights int
	Turns     int
}

// Latency returns the symbolic latency of traversing the path.
func (p MovePath) Latency() LatencyExpr {
	return Expr(OpStraightMove, p.Straights, OpTurn, p.Turns)
}

// Eval evaluates the path latency against a technology parameter set.
func (p MovePath) Eval(t Technology) Microseconds {
	return p.Latency().Eval(t)
}
