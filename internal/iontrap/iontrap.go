// Package iontrap models the ion-trap technology abstraction used throughout
// the paper (Section 4.1): physical operation latencies (Tables 1 and 4), the
// macroblock building blocks of layouts (Figure 9), and symbolic latency
// expressions that can be evaluated against any technology parameter set.
//
// All latencies are expressed in microseconds.  The paper presents most of
// its results symbolically ("2×t2q + 4×tturn + ...") before substituting the
// ion-trap values; LatencyExpr mirrors that style so factory and schedule
// code can be checked term-for-term against the published formulas.
package iontrap

import (
	"fmt"
	"sort"
	"strings"
)

// Microseconds is the unit for all latencies in this package.
type Microseconds float64

// Milliseconds converts a latency to milliseconds.
func (m Microseconds) Milliseconds() float64 { return float64(m) / 1000.0 }

// Op identifies a primitive physical operation whose latency is a technology
// parameter.  These are exactly the rows of Tables 1 and 4 of the paper.
type Op int

const (
	// OpOneQubitGate is a single-qubit physical gate (t1q).
	OpOneQubitGate Op = iota
	// OpTwoQubitGate is a two-qubit physical gate (t2q).
	OpTwoQubitGate
	// OpMeasure is a physical measurement (tmeas).
	OpMeasure
	// OpZeroPrep is a physical |0> preparation (tprep).
	OpZeroPrep
	// OpStraightMove is a move across a single macroblock (tmove).
	OpStraightMove
	// OpTurn is a move around a corner (tturn).
	OpTurn

	numOps
)

var opNames = [...]string{
	OpOneQubitGate: "t1q",
	OpTwoQubitGate: "t2q",
	OpMeasure:      "tmeas",
	OpZeroPrep:     "tprep",
	OpStraightMove: "tmove",
	OpTurn:         "tturn",
}

// String returns the symbolic name the paper uses for the operation latency.
func (o Op) String() string {
	if o < 0 || int(o) >= len(opNames) {
		return fmt.Sprintf("op(%d)", int(o))
	}
	return opNames[o]
}

// Ops returns all primitive operations in a stable order.
func Ops() []Op {
	ops := make([]Op, numOps)
	for i := range ops {
		ops[i] = Op(i)
	}
	return ops
}

// Technology holds the latency of every primitive physical operation.
type Technology struct {
	// Name identifies the parameter set (e.g. "ion trap (Steane 2004)").
	Name string
	// Latency maps each primitive operation to its duration.
	Latency map[Op]Microseconds
}

// Default returns the ion-trap technology parameters from Tables 1 and 4:
// one-qubit gate 1 µs, two-qubit gate 10 µs, measurement 50 µs, physical zero
// prepare 51 µs, straight move 1 µs, turn 10 µs.
func Default() Technology {
	return Technology{
		Name: "ion trap",
		Latency: map[Op]Microseconds{
			OpOneQubitGate: 1,
			OpTwoQubitGate: 10,
			OpMeasure:      50,
			OpZeroPrep:     51,
			OpStraightMove: 1,
			OpTurn:         10,
		},
	}
}

// TechKey is a comparable identity of a Technology: its name plus the full
// latency table in op order.  Derived quantities (factory designs, matched
// bandwidths) depend only on this, so packages memoise them in maps keyed
// by it.
type TechKey struct {
	Name    string
	Latency [numOps]Microseconds
}

// Key returns the technology's comparable cache identity.
func (t Technology) Key() TechKey {
	k := TechKey{Name: t.Name}
	for op, l := range t.Latency {
		if op >= 0 && op < numOps {
			k.Latency[op] = l
		}
	}
	return k
}

// Validate reports an error if any primitive operation is missing or has a
// non-positive latency.
func (t Technology) Validate() error {
	if t.Latency == nil {
		return fmt.Errorf("iontrap: technology %q has no latency table", t.Name)
	}
	for _, op := range Ops() {
		l, ok := t.Latency[op]
		if !ok {
			return fmt.Errorf("iontrap: technology %q missing latency for %s", t.Name, op)
		}
		if l <= 0 {
			return fmt.Errorf("iontrap: technology %q has non-positive latency %v for %s", t.Name, l, op)
		}
	}
	return nil
}

// LatencyOf returns the latency of a single primitive operation.
func (t Technology) LatencyOf(op Op) Microseconds {
	return t.Latency[op]
}

// LatencyExpr is a symbolic latency: an integer combination of primitive
// operation latencies, e.g. "3×t2q + 6×tturn + 5×tmove".
type LatencyExpr struct {
	counts map[Op]int
}

// NewLatencyExpr returns an empty (zero) latency expression.
func NewLatencyExpr() LatencyExpr {
	return LatencyExpr{counts: make(map[Op]int)}
}

// Expr builds a latency expression from (op, count) pairs.  It panics if the
// argument list has odd length, which indicates a programming error.
func Expr(pairs ...interface{}) LatencyExpr {
	if len(pairs)%2 != 0 {
		panic("iontrap.Expr: arguments must be (Op, count) pairs")
	}
	e := NewLatencyExpr()
	for i := 0; i < len(pairs); i += 2 {
		op, ok := pairs[i].(Op)
		if !ok {
			panic(fmt.Sprintf("iontrap.Expr: argument %d is not an Op", i))
		}
		n, ok := pairs[i+1].(int)
		if !ok {
			panic(fmt.Sprintf("iontrap.Expr: argument %d is not an int", i+1))
		}
		e.Add(op, n)
	}
	return e
}

// Add adds n occurrences of op to the expression and returns the expression
// for chaining.
func (e LatencyExpr) Add(op Op, n int) LatencyExpr {
	if e.counts == nil {
		panic("iontrap.LatencyExpr: use NewLatencyExpr or Expr to construct")
	}
	e.counts[op] += n
	return e
}

// Plus returns the sum of two latency expressions without modifying either.
func (e LatencyExpr) Plus(other LatencyExpr) LatencyExpr {
	sum := NewLatencyExpr()
	for op, n := range e.counts {
		sum.counts[op] += n
	}
	for op, n := range other.counts {
		sum.counts[op] += n
	}
	return sum
}

// Scale returns the expression multiplied by an integer factor.
func (e LatencyExpr) Scale(k int) LatencyExpr {
	out := NewLatencyExpr()
	for op, n := range e.counts {
		out.counts[op] = n * k
	}
	return out
}

// Count returns how many times op appears in the expression.
func (e LatencyExpr) Count(op Op) int {
	if e.counts == nil {
		return 0
	}
	return e.counts[op]
}

// Eval evaluates the expression against a technology parameter set.
func (e LatencyExpr) Eval(t Technology) Microseconds {
	var total Microseconds
	for op, n := range e.counts {
		total += Microseconds(n) * t.LatencyOf(op)
	}
	return total
}

// String renders the expression in the paper's style, with terms in a fixed
// operation order, e.g. "3*t2q + 6*tturn + 5*tmove".
func (e LatencyExpr) String() string {
	type term struct {
		op Op
		n  int
	}
	var terms []term
	for op, n := range e.counts {
		if n != 0 {
			terms = append(terms, term{op, n})
		}
	}
	if len(terms) == 0 {
		return "0"
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].op < terms[j].op })
	parts := make([]string, 0, len(terms))
	for _, t := range terms {
		if t.n == 1 {
			parts = append(parts, t.op.String())
		} else {
			parts = append(parts, fmt.Sprintf("%d*%s", t.n, t.op))
		}
	}
	return strings.Join(parts, " + ")
}

// Equal reports whether two expressions have identical term counts.
func (e LatencyExpr) Equal(other LatencyExpr) bool {
	for _, op := range Ops() {
		if e.Count(op) != other.Count(op) {
			return false
		}
	}
	return true
}
