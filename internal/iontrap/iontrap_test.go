package iontrap

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultTechnologyValues(t *testing.T) {
	tech := Default()
	if err := tech.Validate(); err != nil {
		t.Fatalf("default technology invalid: %v", err)
	}
	want := map[Op]Microseconds{
		OpOneQubitGate: 1,
		OpTwoQubitGate: 10,
		OpMeasure:      50,
		OpZeroPrep:     51,
		OpStraightMove: 1,
		OpTurn:         10,
	}
	for op, w := range want {
		if got := tech.LatencyOf(op); got != w {
			t.Errorf("LatencyOf(%s) = %v, want %v", op, got, w)
		}
	}
}

func TestValidateMissingOp(t *testing.T) {
	tech := Default()
	delete(tech.Latency, OpMeasure)
	if err := tech.Validate(); err == nil {
		t.Fatal("expected error for missing measurement latency")
	}
}

func TestValidateNonPositive(t *testing.T) {
	tech := Default()
	tech.Latency[OpTurn] = 0
	if err := tech.Validate(); err == nil {
		t.Fatal("expected error for zero turn latency")
	}
	tech.Latency[OpTurn] = -3
	if err := tech.Validate(); err == nil {
		t.Fatal("expected error for negative turn latency")
	}
}

func TestValidateNilTable(t *testing.T) {
	tech := Technology{Name: "empty"}
	if err := tech.Validate(); err == nil {
		t.Fatal("expected error for nil latency table")
	}
}

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpOneQubitGate: "t1q",
		OpTwoQubitGate: "t2q",
		OpMeasure:      "tmeas",
		OpZeroPrep:     "tprep",
		OpStraightMove: "tmove",
		OpTurn:         "tturn",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
	if got := Op(99).String(); got != "op(99)" {
		t.Errorf("unknown op string = %q", got)
	}
}

func TestExprSimpleFactoryLatency(t *testing.T) {
	// The paper's hand-optimised simple factory schedule (Section 4.3):
	// tprep + 2*tmeas + 6*t2q + 2*t1q + 8*tturn + 30*tmove = 323 µs.
	e := Expr(
		OpZeroPrep, 1,
		OpMeasure, 2,
		OpTwoQubitGate, 6,
		OpOneQubitGate, 2,
		OpTurn, 8,
		OpStraightMove, 30,
	)
	if got := e.Eval(Default()); got != 323 {
		t.Fatalf("simple factory latency = %v µs, want 323", got)
	}
}

func TestExprTable5Latencies(t *testing.T) {
	tech := Default()
	cases := []struct {
		name string
		expr LatencyExpr
		want Microseconds
	}{
		{"zero prep", Expr(OpZeroPrep, 1, OpOneQubitGate, 1, OpTurn, 2, OpStraightMove, 1), 73},
		{"cx stage", Expr(OpTwoQubitGate, 3, OpTurn, 6, OpStraightMove, 5), 95},
		{"cat state prep", Expr(OpTwoQubitGate, 2, OpTurn, 4, OpStraightMove, 2), 62},
		{"verification", Expr(OpMeasure, 1, OpTwoQubitGate, 1, OpTurn, 2, OpStraightMove, 2), 82},
		{"b/p correction", Expr(OpMeasure, 1, OpTwoQubitGate, 2, OpTurn, 6, OpStraightMove, 8), 138},
	}
	for _, c := range cases {
		if got := c.expr.Eval(tech); got != c.want {
			t.Errorf("%s latency = %v, want %v (expr %s)", c.name, got, c.want, c.expr)
		}
	}
}

func TestExprString(t *testing.T) {
	e := Expr(OpTwoQubitGate, 3, OpTurn, 6, OpStraightMove, 5)
	if got := e.String(); got != "3*t2q + 5*tmove + 6*tturn" {
		t.Errorf("String() = %q", got)
	}
	if got := NewLatencyExpr().String(); got != "0" {
		t.Errorf("empty expr String() = %q, want 0", got)
	}
	single := Expr(OpMeasure, 1)
	if got := single.String(); got != "tmeas" {
		t.Errorf("single-term String() = %q, want tmeas", got)
	}
}

func TestExprPlusScaleCount(t *testing.T) {
	a := Expr(OpTwoQubitGate, 2, OpTurn, 1)
	b := Expr(OpTwoQubitGate, 1, OpMeasure, 3)
	sum := a.Plus(b)
	if sum.Count(OpTwoQubitGate) != 3 || sum.Count(OpTurn) != 1 || sum.Count(OpMeasure) != 3 {
		t.Errorf("Plus produced wrong counts: %s", sum)
	}
	// Plus must not mutate its operands.
	if a.Count(OpTwoQubitGate) != 2 || b.Count(OpTwoQubitGate) != 1 {
		t.Error("Plus mutated its operands")
	}
	scaled := a.Scale(3)
	if scaled.Count(OpTwoQubitGate) != 6 || scaled.Count(OpTurn) != 3 {
		t.Errorf("Scale produced wrong counts: %s", scaled)
	}
}

func TestExprEqual(t *testing.T) {
	a := Expr(OpTwoQubitGate, 2, OpTurn, 1)
	b := Expr(OpTurn, 1, OpTwoQubitGate, 2)
	if !a.Equal(b) {
		t.Error("expressions with same terms should be equal")
	}
	c := Expr(OpTwoQubitGate, 2)
	if a.Equal(c) {
		t.Error("expressions with different terms should not be equal")
	}
}

func TestExprPanicsOnBadArgs(t *testing.T) {
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanics("odd args", func() { Expr(OpMeasure) })
	assertPanics("non-op", func() { Expr("tmeas", 1) })
	assertPanics("non-int", func() { Expr(OpMeasure, "1") })
	assertPanics("zero-value expr Add", func() {
		var e LatencyExpr
		e.Add(OpMeasure, 1)
	})
}

func TestMicrosecondsMilliseconds(t *testing.T) {
	if got := Microseconds(323).Milliseconds(); math.Abs(got-0.323) > 1e-12 {
		t.Errorf("Milliseconds() = %v, want 0.323", got)
	}
}

// Property: evaluating a sum of expressions equals the sum of evaluations.
func TestExprLinearityProperty(t *testing.T) {
	tech := Default()
	f := func(a1, a2, b1, b2 uint8) bool {
		x := Expr(OpTwoQubitGate, int(a1%16), OpTurn, int(a2%16))
		y := Expr(OpMeasure, int(b1%16), OpStraightMove, int(b2%16))
		lhs := x.Plus(y).Eval(tech)
		rhs := x.Eval(tech) + y.Eval(tech)
		return math.Abs(float64(lhs-rhs)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: scaling an expression by k multiplies its evaluation by k.
func TestExprScaleProperty(t *testing.T) {
	tech := Default()
	f := func(n1, n2, k uint8) bool {
		x := Expr(OpTwoQubitGate, int(n1%16), OpZeroPrep, int(n2%16))
		kk := int(k % 8)
		lhs := x.Scale(kk).Eval(tech)
		rhs := Microseconds(float64(kk) * float64(x.Eval(tech)))
		return math.Abs(float64(lhs-rhs)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMacroblockKindProperties(t *testing.T) {
	if !DeadEndGate.HasGateLocation() || !StraightChannelGate.HasGateLocation() {
		t.Error("gate macroblocks must have gate locations")
	}
	for _, k := range []MacroblockKind{StraightChannel, Turn, ThreeWayIntersection, FourWayIntersection} {
		if k.HasGateLocation() {
			t.Errorf("%s should not have a gate location", k)
		}
	}
	wantPorts := map[MacroblockKind]int{
		DeadEndGate:          1,
		StraightChannelGate:  2,
		StraightChannel:      2,
		Turn:                 2,
		ThreeWayIntersection: 3,
		FourWayIntersection:  4,
	}
	for k, w := range wantPorts {
		if got := k.Ports(); got != w {
			t.Errorf("%s.Ports() = %d, want %d", k, got, w)
		}
	}
	if MacroblockKind(42).Ports() != 0 {
		t.Error("unknown macroblock kind should have 0 ports")
	}
	if MacroblockKind(42).String() != "macroblock(42)" {
		t.Error("unknown macroblock kind string")
	}
}

func TestMacroblockKindsStable(t *testing.T) {
	kinds := MacroblockKinds()
	if len(kinds) != 6 {
		t.Fatalf("expected 6 macroblock kinds, got %d", len(kinds))
	}
	seen := map[MacroblockKind]bool{}
	for _, k := range kinds {
		if seen[k] {
			t.Errorf("duplicate kind %s", k)
		}
		seen[k] = true
	}
}

func TestColumnLayout(t *testing.T) {
	// The data qubit region of Figure 10: a single column of straight
	// channel gate macroblocks, 7 for the [[7,1,3]] code.
	l := NewColumnLayout("data qubit", StraightChannelGate, 7)
	if l.Area() != 7 {
		t.Errorf("column layout area = %v, want 7", l.Area())
	}
	if l.GateLocations() != 7 {
		t.Errorf("gate locations = %d, want 7", l.GateLocations())
	}
	rows, cols := l.Bounds()
	if rows != 7 || cols != 1 {
		t.Errorf("bounds = (%d,%d), want (7,1)", rows, cols)
	}
}

func TestGridLayout(t *testing.T) {
	l := NewGridLayout("grid", 3, 4, func(r, c int) MacroblockKind {
		if c == 0 {
			return StraightChannel
		}
		return StraightChannelGate
	})
	if l.Area() != 12 {
		t.Errorf("grid area = %v, want 12", l.Area())
	}
	if l.GateLocations() != 9 {
		t.Errorf("grid gate locations = %d, want 9", l.GateLocations())
	}
	rows, cols := l.Bounds()
	if rows != 3 || cols != 4 {
		t.Errorf("bounds = (%d,%d), want (3,4)", rows, cols)
	}
	// nil kindAt defaults to straight channel gates everywhere.
	l2 := NewGridLayout("default", 2, 2, nil)
	if l2.GateLocations() != 4 {
		t.Errorf("default grid gate locations = %d, want 4", l2.GateLocations())
	}
}

func TestMovePathLatency(t *testing.T) {
	p := MovePath{Straights: 30, Turns: 8}
	tech := Default()
	if got := p.Eval(tech); got != 110 {
		t.Errorf("move path latency = %v, want 110", got)
	}
	e := p.Latency()
	if e.Count(OpStraightMove) != 30 || e.Count(OpTurn) != 8 {
		t.Errorf("move path expression has wrong counts: %s", e)
	}
}

// Property: a layout's area always equals its macroblock count and gate
// locations never exceed the area.
func TestLayoutAreaProperty(t *testing.T) {
	f := func(rows, cols uint8) bool {
		r := int(rows%12) + 1
		c := int(cols%12) + 1
		l := NewGridLayout("p", r, c, nil)
		return l.Area() == Area(r*c) && l.GateLocations() <= r*c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
