package noise

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"speedofdata/internal/engine"
	"speedofdata/internal/steane"
)

func mustSimulator(t *testing.T, p *steane.Protocol, m Model) *Simulator {
	t.Helper()
	s, err := NewSimulator(steane.NewCode(), p, m)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDefaultModel(t *testing.T) {
	m := DefaultModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.GateError != 1e-4 || m.MoveError != 1e-6 {
		t.Errorf("default model = %+v, want the paper's 1e-4 / 1e-6", m)
	}
}

func TestModelValidate(t *testing.T) {
	bad := []Model{
		{GateError: -0.1, MoveError: 0},
		{GateError: 0, MoveError: 2},
		{GateError: 0, MoveError: 0, MovementOpsPerTwoQubitGate: -1},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("model %+v should be invalid", m)
		}
	}
}

func TestErrorProbabilityByKind(t *testing.T) {
	m := DefaultModel()
	if m.ErrorProbability(LocMove) != 1e-6 {
		t.Error("movement locations must use the movement error rate")
	}
	for _, k := range []LocationKind{LocPrep, LocOneQubit, LocTwoQubit, LocMeasure} {
		if m.ErrorProbability(k) != 1e-4 {
			t.Errorf("%v should use the gate error rate", k)
		}
	}
}

func TestFaultChoices(t *testing.T) {
	if got := len(FaultChoices(LocTwoQubit)); got != 6 {
		t.Errorf("two-qubit fault choices = %d, want 6 (a Pauli on one participant)", got)
	}
	if got := len(FaultChoices(LocOneQubit)); got != 3 {
		t.Errorf("one-qubit fault choices = %d, want 3", got)
	}
	if got := len(FaultChoices(LocMeasure)); got != 1 {
		t.Errorf("measurement fault choices = %d, want 1", got)
	}
	for _, f := range FaultChoices(LocTwoQubit) {
		if f.IsTrivial() {
			t.Error("fault choices must not include the identity")
		}
	}
}

func TestPauliErrorComponents(t *testing.T) {
	if !PauliX.HasX() || PauliX.HasZ() {
		t.Error("X component wrong")
	}
	if !PauliY.HasX() || !PauliY.HasZ() {
		t.Error("Y components wrong")
	}
	if PauliZ.HasX() || !PauliZ.HasZ() {
		t.Error("Z component wrong")
	}
	if PauliNone.HasX() || PauliNone.HasZ() {
		t.Error("identity has no components")
	}
	if PauliX.String() != "X" || PauliNone.String() != "I" {
		t.Error("pauli strings wrong")
	}
	if LocMove.String() != "move" || LocTwoQubit.String() != "2q-gate" {
		t.Error("location kind strings wrong")
	}
}

func TestNoiselessRunsAreClean(t *testing.T) {
	code := steane.NewCode()
	model := DefaultModel()
	for name, p := range steane.StandardProtocols(code) {
		s := mustSimulator(t, p, model)
		if err := s.VerifyNoiselessIsClean(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	s := mustSimulator(t, steane.Pi8AncillaProtocol(code), model)
	if err := s.VerifyNoiselessIsClean(); err != nil {
		t.Errorf("pi/8: %v", err)
	}
}

func TestZeroErrorModelGivesZeroRates(t *testing.T) {
	code := steane.NewCode()
	zero := Model{GateError: 0, MoveError: 0, MovementOpsPerTwoQubitGate: 2}
	for name, p := range steane.StandardProtocols(code) {
		s := mustSimulator(t, p, zero)
		est := s.MonteCarlo(200, 1)
		if est.UncorrectableRate != 0 || est.ResidualRate != 0 || est.RejectRate != 0 {
			t.Errorf("%s: zero-error model produced non-zero rates: %+v", name, est)
		}
	}
}

func TestFirstOrderBasicPrepMagnitude(t *testing.T) {
	// The basic (non-fault-tolerant) encoder has ~19 gate locations at 1e-4;
	// its first-order uncorrectable rate should be within an order of
	// magnitude of the paper's 1.8e-3 (we expect a few e-4 because only a
	// fraction of single faults propagate into logical errors).
	code := steane.NewCode()
	s := mustSimulator(t, steane.BasicZeroProtocol(code), DefaultModel())
	est := s.FirstOrder()
	if est.UncorrectableRate <= 1e-5 || est.UncorrectableRate >= 5e-3 {
		t.Errorf("basic prep first-order uncorrectable rate = %v, expected O(1e-4..1e-3)", est.UncorrectableRate)
	}
	if est.ResidualRate < est.UncorrectableRate {
		t.Error("residual rate must be at least the uncorrectable rate")
	}
	// Residual rate should be close to the total fault probability (every
	// fault in an unprotected encoder leaves some residual error), i.e.
	// around 19 * 1e-4.
	if est.ResidualRate < 5e-4 || est.ResidualRate > 5e-3 {
		t.Errorf("basic prep first-order residual rate = %v, expected O(2e-3)", est.ResidualRate)
	}
}

func TestFirstOrderOrderingAcrossVariants(t *testing.T) {
	// The paper's conclusion (Section 2.3): verification plus correction is
	// the highest-fidelity preparation and is the circuit used for the
	// factories.  At first order it must beat both the basic circuit and
	// verification alone, and verification alone must beat the basic circuit.
	code := steane.NewCode()
	model := DefaultModel()
	basic := mustSimulator(t, steane.BasicZeroProtocol(code), model).FirstOrder()
	verify := mustSimulator(t, steane.VerifyOnlyProtocol(code), model).FirstOrder()
	vc := mustSimulator(t, steane.VerifyAndCorrectProtocol(code), model).FirstOrder()

	// Verification discards runs whose encoded bit value was flipped, so it
	// cuts the uncorrectable-error rate by several times (the paper sees
	// 1.8e-3 -> 3.7e-4).
	if verify.UncorrectableRate >= basic.UncorrectableRate/2 {
		t.Errorf("verify-only (%v) should be well below basic (%v) on uncorrectable errors",
			verify.UncorrectableRate, basic.UncorrectableRate)
	}
	if vc.UncorrectableRate >= basic.UncorrectableRate {
		t.Errorf("verify-and-correct (%v) should be below basic (%v)", vc.UncorrectableRate, basic.UncorrectableRate)
	}
	// At first order verify-and-correct and verify-only are comparable (the
	// correction stages add a second verified block whose escaped errors can
	// propagate); the factor between them stays small.
	if vc.UncorrectableRate > verify.UncorrectableRate*3 {
		t.Errorf("verify-and-correct (%v) should stay within 3x of verify-only (%v)",
			vc.UncorrectableRate, verify.UncorrectableRate)
	}
}

func TestFirstOrderCorrectOnlyIsWeakest(t *testing.T) {
	// Figure 4: correction alone is the weakest of the improvements — it
	// repairs single correctable errors but cannot undo the correlated
	// (logical) errors the non-fault-tolerant encoder produces, so its
	// uncorrectable rate stays on the same order as the basic circuit and
	// above the verified variants.
	code := steane.NewCode()
	model := DefaultModel()
	basic := mustSimulator(t, steane.BasicZeroProtocol(code), model).FirstOrder()
	verify := mustSimulator(t, steane.VerifyOnlyProtocol(code), model).FirstOrder()
	correct := mustSimulator(t, steane.CorrectOnlyProtocol(code), model).FirstOrder()
	if correct.UncorrectableRate < verify.UncorrectableRate {
		t.Errorf("correct-only (%v) should not beat verify-only (%v) on uncorrectable errors",
			correct.UncorrectableRate, verify.UncorrectableRate)
	}
	if correct.UncorrectableRate > basic.UncorrectableRate*5 {
		t.Errorf("correct-only (%v) should stay within the same order of magnitude as basic (%v)",
			correct.UncorrectableRate, basic.UncorrectableRate)
	}
}

func TestVerificationRejectRateMagnitude(t *testing.T) {
	// Section 2.3: the verification failure rate of the verified subunit is
	// about 0.2%.  Our first-order rejection rate should be of that order
	// (between 0.01% and 1%).
	code := steane.NewCode()
	s := mustSimulator(t, steane.VerifyOnlyProtocol(code), DefaultModel())
	est := s.FirstOrder()
	if est.RejectRate < 1e-4 || est.RejectRate > 1e-2 {
		t.Errorf("verification failure rate = %v, expected around 0.2%%", est.RejectRate)
	}
}

func TestMonteCarloMatchesFirstOrderForBasic(t *testing.T) {
	// For the basic circuit the error rate is dominated by single faults, so
	// Monte Carlo and first-order enumeration must agree within statistics.
	code := steane.NewCode()
	s := mustSimulator(t, steane.BasicZeroProtocol(code), DefaultModel())
	fo := s.FirstOrder()
	mc := s.MonteCarlo(400000, 42)
	if mc.Trials != 400000 {
		t.Fatalf("trials = %d", mc.Trials)
	}
	diff := math.Abs(mc.UncorrectableRate - fo.UncorrectableRate)
	tolerance := 4*mc.StdErr + 0.3*fo.UncorrectableRate
	if diff > tolerance {
		t.Errorf("Monte Carlo (%v ± %v) and first-order (%v) disagree beyond tolerance %v",
			mc.UncorrectableRate, mc.StdErr, fo.UncorrectableRate, tolerance)
	}
}

func TestMonteCarloVerifiedVariantsBeatBasic(t *testing.T) {
	code := steane.NewCode()
	model := DefaultModel()
	basic := mustSimulator(t, steane.BasicZeroProtocol(code), model).MonteCarlo(400000, 7)
	verify := mustSimulator(t, steane.VerifyOnlyProtocol(code), model).MonteCarlo(400000, 7)
	vc := mustSimulator(t, steane.VerifyAndCorrectProtocol(code), model).MonteCarlo(400000, 7)
	if verify.UncorrectableRate >= basic.UncorrectableRate {
		t.Errorf("verify-only MC rate (%v) should beat basic (%v)",
			verify.UncorrectableRate, basic.UncorrectableRate)
	}
	if vc.UncorrectableRate >= basic.UncorrectableRate {
		t.Errorf("verify-and-correct MC rate (%v) should beat basic (%v)",
			vc.UncorrectableRate, basic.UncorrectableRate)
	}
}

func TestMonteCarloDeterministicForSeed(t *testing.T) {
	code := steane.NewCode()
	s := mustSimulator(t, steane.VerifyOnlyProtocol(code), DefaultModel())
	a := s.MonteCarlo(20000, 99)
	b := s.MonteCarlo(20000, 99)
	if a != b {
		t.Errorf("same seed must give identical estimates: %+v vs %+v", a, b)
	}
	c := s.MonteCarlo(20000, 100)
	if a == c && a.UncorrectableRate != 0 {
		t.Log("different seeds gave identical estimates; acceptable but unusual")
	}
}

// The engine acceptance criterion: a parallel Monte Carlo run of the same
// seeded experiment must produce estimates byte-identical to the sequential
// run, for any worker count.
func TestMonteCarloParallelMatchesSequential(t *testing.T) {
	code := steane.NewCode()
	model := DefaultModel()
	// 3 full chunks plus a ragged tail exercises the chunk plan.
	trials := 3*8192 + 1234
	for name, p := range steane.StandardProtocols(code) {
		s := mustSimulator(t, p, model)
		seq, err := s.MonteCarloEngine(context.Background(), engine.Sequential(), trials, 42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, workers := range []int{2, 7} {
			par, err := s.MonteCarloEngine(context.Background(), engine.New(workers), trials, 42)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if par != seq {
				t.Errorf("%s: %d-worker estimate %+v != sequential %+v", name, workers, par, seq)
			}
		}
		if plain := s.MonteCarlo(trials, 42); plain != seq {
			t.Errorf("%s: MonteCarlo %+v != engine sequential %+v", name, plain, seq)
		}
	}
}

func TestMonteCarloEngineCancellation(t *testing.T) {
	code := steane.NewCode()
	s := mustSimulator(t, steane.BasicZeroProtocol(code), DefaultModel())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.MonteCarloEngine(ctx, engine.New(2), 100000, 1); err == nil {
		t.Error("cancelled Monte Carlo must report the context error")
	}
}

func TestNewSimulatorRejectsBadInput(t *testing.T) {
	code := steane.NewCode()
	p := steane.BasicZeroProtocol(code)
	if _, err := NewSimulator(code, p, Model{GateError: 5}); err == nil {
		t.Error("invalid model should be rejected")
	}
	bad := steane.NewProtocol("bad", 8)
	bad.Ops = append(bad.Ops, steane.ProtocolOp{Kind: steane.OpVerify, MeasIDs: []int{3}})
	if _, err := NewSimulator(code, bad, DefaultModel()); err == nil {
		t.Error("invalid protocol should be rejected")
	}
}

func TestMonteCarloPanicsOnZeroTrials(t *testing.T) {
	code := steane.NewCode()
	s := mustSimulator(t, steane.BasicZeroProtocol(code), DefaultModel())
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero trials")
		}
	}()
	s.MonteCarlo(0, 1)
}

func TestLocationCountConsistency(t *testing.T) {
	code := steane.NewCode()
	model := DefaultModel()
	for name, p := range steane.StandardProtocols(code) {
		s := mustSimulator(t, p, model)
		if got, want := s.locationCount(), len(s.locationKinds()); got != want {
			t.Errorf("%s: locationCount %d != len(locationKinds) %d", name, got, want)
		}
		counts := p.CountOps()
		expected := counts.Total() + counts.TwoQubitGates*model.MovementOpsPerTwoQubitGate
		if got := s.locationCount(); got != expected {
			t.Errorf("%s: locationCount = %d, want %d", name, got, expected)
		}
	}
}

// Property: error rates scale roughly linearly with the gate error rate in
// the first-order analysis (exactly linearly, in fact, because every term is
// proportional to one location probability).
func TestFirstOrderLinearInGateError(t *testing.T) {
	code := steane.NewCode()
	p := steane.BasicZeroProtocol(code)
	f := func(scaleRaw uint8) bool {
		scale := float64(scaleRaw%9+1) / 5.0
		base := Model{GateError: 1e-4, MoveError: 0, MovementOpsPerTwoQubitGate: 0}
		scaled := Model{GateError: 1e-4 * scale, MoveError: 0, MovementOpsPerTwoQubitGate: 0}
		sBase, err := NewSimulator(code, p, base)
		if err != nil {
			return false
		}
		sScaled, err := NewSimulator(code, p, scaled)
		if err != nil {
			return false
		}
		a := sBase.FirstOrder().UncorrectableRate
		b := sScaled.FirstOrder().UncorrectableRate
		return math.Abs(b-a*scale) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: estimates are probabilities.
func TestEstimatesAreProbabilities(t *testing.T) {
	code := steane.NewCode()
	model := DefaultModel()
	for name, p := range steane.StandardProtocols(code) {
		s := mustSimulator(t, p, model)
		for _, est := range []Estimate{s.FirstOrder(), s.MonteCarlo(5000, 3)} {
			for _, v := range []float64{est.UncorrectableRate, est.ResidualRate, est.RejectRate} {
				if v < 0 || v > 1 {
					t.Errorf("%s: rate %v outside [0,1]", name, v)
				}
			}
		}
	}
}
