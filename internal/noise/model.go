// Package noise evaluates ancilla preparation protocols under the paper's
// error model (Section 2.2): an independent error probability for each gate
// and qubit-movement operation (10^-4 per gate, 10^-6 per movement op), with
// two-qubit gates propagating bit and phase flips between qubits.  Errors are
// tracked in the Pauli frame (X and Z bitmasks per physical qubit), which is
// exact for the Clifford circuits that make up the encoded-zero preparation
// protocols and is the standard twirling approximation for the π/8 gates in
// the π/8 ancilla protocol.
//
// Two estimators are provided: a Monte Carlo simulator (matching the paper's
// methodology) and a deterministic first-order fault enumeration that
// computes the leading-order contribution exactly and is used as a fast test
// oracle for the ordering of the Figure 4 circuit variants.
package noise

import (
	"fmt"
	"strconv"
)

// Model holds the error-model parameters of Section 2.2.
type Model struct {
	// GateError is the independent error probability per physical gate,
	// preparation or measurement (the paper uses 1e-4).
	GateError float64
	// MoveError is the error probability per movement operation (1e-6).
	MoveError float64
	// MovementOpsPerTwoQubitGate is how many movement operations accompany
	// each two-qubit gate in the layout; the paper derives movement from its
	// detailed layout tool, we expose it as a parameter (default 6, roughly
	// the per-gate share of the simple factory's 30 moves + 8 turns).
	MovementOpsPerTwoQubitGate int
}

// DefaultModel returns the paper's error parameters.
func DefaultModel() Model {
	return Model{
		GateError:                  1e-4,
		MoveError:                  1e-6,
		MovementOpsPerTwoQubitGate: 6,
	}
}

// AppendKey implements engine.Keyer: the byte-exact %v rendering of the
// struct ("{GateError MoveError MovementOpsPerTwoQubitGate}") without fmt's
// reflection.  Monte Carlo chunk keys embed the model and are built per
// chunk on the experiment hot path; the rendering must stay identical
// because job keys seed the chunk RNG streams.
func (m Model) AppendKey(b []byte) []byte {
	b = append(b, '{')
	b = strconv.AppendFloat(b, m.GateError, 'g', -1, 64)
	b = append(b, ' ')
	b = strconv.AppendFloat(b, m.MoveError, 'g', -1, 64)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(m.MovementOpsPerTwoQubitGate), 10)
	return append(b, '}')
}

// Validate reports an error for out-of-range probabilities.
func (m Model) Validate() error {
	if m.GateError < 0 || m.GateError > 1 {
		return fmt.Errorf("noise: gate error %v outside [0,1]", m.GateError)
	}
	if m.MoveError < 0 || m.MoveError > 1 {
		return fmt.Errorf("noise: movement error %v outside [0,1]", m.MoveError)
	}
	if m.MovementOpsPerTwoQubitGate < 0 {
		return fmt.Errorf("noise: negative movement op count %d", m.MovementOpsPerTwoQubitGate)
	}
	return nil
}

// PauliError is a single-qubit Pauli fault used for injection.
type PauliError int

const (
	// PauliNone injects nothing.
	PauliNone PauliError = iota
	// PauliX injects a bit flip.
	PauliX
	// PauliY injects both a bit and a phase flip.
	PauliY
	// PauliZ injects a phase flip.
	PauliZ
)

// String names the Pauli fault.
func (p PauliError) String() string {
	switch p {
	case PauliNone:
		return "I"
	case PauliX:
		return "X"
	case PauliY:
		return "Y"
	case PauliZ:
		return "Z"
	default:
		return fmt.Sprintf("pauli(%d)", int(p))
	}
}

// HasX reports whether the fault includes a bit-flip component.
func (p PauliError) HasX() bool { return p == PauliX || p == PauliY }

// HasZ reports whether the fault includes a phase-flip component.
func (p PauliError) HasZ() bool { return p == PauliZ || p == PauliY }

// Fault is a concrete error event at one error location: a Pauli on each
// involved qubit (second entry unused for one-qubit locations) or a
// measurement outcome flip.
type Fault struct {
	First, Second PauliError
	FlipOutcome   bool
}

// IsTrivial reports whether the fault does nothing.
func (f Fault) IsTrivial() bool {
	return f.First == PauliNone && f.Second == PauliNone && !f.FlipOutcome
}

// LocationKind classifies error locations for enumeration.
type LocationKind int

const (
	// LocPrep is a physical state preparation.
	LocPrep LocationKind = iota
	// LocOneQubit is a one-qubit gate.
	LocOneQubit
	// LocTwoQubit is a two-qubit gate.
	LocTwoQubit
	// LocMeasure is a measurement.
	LocMeasure
	// LocMove is a qubit movement operation.
	LocMove
)

// String names the location kind.
func (k LocationKind) String() string {
	switch k {
	case LocPrep:
		return "prep"
	case LocOneQubit:
		return "1q-gate"
	case LocTwoQubit:
		return "2q-gate"
	case LocMeasure:
		return "measure"
	case LocMove:
		return "move"
	default:
		return fmt.Sprintf("loc(%d)", int(k))
	}
}

// ErrorProbability returns the model's error probability for a location kind.
func (m Model) ErrorProbability(kind LocationKind) float64 {
	if kind == LocMove {
		return m.MoveError
	}
	return m.GateError
}

// FaultChoices enumerates the equally likely non-trivial faults at a location
// of the given kind, matching the sampling used by the Monte Carlo simulator.
// A faulty two-qubit gate deposits a Pauli error on one of its two
// participants; correlated multi-qubit errors then arise through the
// propagation of bit and phase flips by subsequent two-qubit gates, which is
// the effect the paper's methodology highlights (Section 2.2).
func FaultChoices(kind LocationKind) []Fault {
	switch kind {
	case LocMeasure:
		return []Fault{{FlipOutcome: true}}
	case LocPrep:
		// A faulty |0> preparation produces |1>: a bit flip.  (A phase flip
		// on a fresh |0> acts trivially and is not an error.)
		return []Fault{{First: PauliX}}
	case LocTwoQubit:
		return []Fault{
			{First: PauliX}, {First: PauliY}, {First: PauliZ},
			{Second: PauliX}, {Second: PauliY}, {Second: PauliZ},
		}
	default: // one-qubit gate, movement
		return []Fault{{First: PauliX}, {First: PauliY}, {First: PauliZ}}
	}
}
