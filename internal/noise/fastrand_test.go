package noise

import (
	"math/rand"
	"testing"
)

// The whole compiled Monte Carlo rests on lfRand reproducing math/rand's
// stream exactly.  Compare against a twin *rand.Rand across every draw kind
// the trial loop uses, over enough values to cycle the 607-entry state
// vector many times (and so cover both the replayed warm-up revolution and
// the live recurrence).
func TestLFRandMatchesMathRand(t *testing.T) {
	for _, seed := range []int64{0, 1, -7, 42, 1 << 40, -(1 << 52)} {
		var lf lfRand
		lf.capture(rand.New(rand.NewSource(seed)))
		ref := rand.New(rand.NewSource(seed))
		for i := 0; i < 20000; i++ {
			if got, want := lf.int63(), ref.Int63(); got != want {
				t.Fatalf("seed %d draw %d: int63 = %d, want %d", seed, i, got, want)
			}
		}
	}
}

func TestLFRandFloat64AndIntnMatchMathRand(t *testing.T) {
	for _, seed := range []int64{1, 99, -12345} {
		var lf lfRand
		lf.capture(rand.New(rand.NewSource(seed)))
		ref := rand.New(rand.NewSource(seed))
		// Interleave the exact call mix of a Monte Carlo trial: mostly
		// Float64, with occasional Intn of the fault-choice sizes.
		for i := 0; i < 20000; i++ {
			if got, want := lf.Float64(), ref.Float64(); got != want {
				t.Fatalf("seed %d draw %d: Float64 = %v, want %v", seed, i, got, want)
			}
			if i%7 == 0 {
				n := []int{1, 3, 6}[i%3]
				if got, want := lf.intn(n), ref.Intn(n); got != want {
					t.Fatalf("seed %d draw %d: intn(%d) = %d, want %d", seed, i, n, got, want)
				}
			}
		}
	}
}

// The integer threshold comparison used by the dense trial loop must agree
// with Float64() < p for every location probability, because that is how
// the legacy injector decides faults.  The raw-value retry bound must match
// the f == 1 resample too.
func TestLFRandThresholdEquivalence(t *testing.T) {
	probs := []float64{1e-6, 1e-4, 0.5, 0.999999, 1}
	var a, b lfRand
	a.capture(rand.New(rand.NewSource(7)))
	b.capture(rand.New(rand.NewSource(7)))
	for i := 0; i < 50000; i++ {
		p := probs[i%len(probs)]
		vthresh := intThreshold(p)
		v := b.gen() & lfMask
		for v >= lfRetryMin {
			v = b.gen() & lfMask
		}
		if got, want := v < vthresh, a.Float64() < p; got != want {
			t.Fatalf("draw %d p=%v: integer compare = %v, Float64 compare = %v", i, p, got, want)
		}
	}
}

// The retry bound and threshold compiler agree with the float64 rounding
// boundary at the edges.
func TestIntThresholdBoundaries(t *testing.T) {
	if intThreshold(0) != -1 || intThreshold(-0.5) != -1 {
		t.Error("non-positive probabilities must compile to the no-draw sentinel")
	}
	for _, v := range []int64{lfRetryMin - 1, lfRetryMin, lfRetryMin + 1} {
		want := float64(v)/(1<<63) == 1
		if got := v >= lfRetryMin; got != want {
			t.Errorf("retry bound wrong at %d: integer %v, float %v", v, got, want)
		}
	}
	for _, p := range []float64{1e-300, 1e-9, 1e-4, 0.25, 0.5, 1 - 1e-16, 1} {
		vt := intThreshold(p)
		for _, v := range []int64{vt - 1, vt, vt + 1} {
			if v < 0 || v > lfMask {
				continue
			}
			f := float64(v) / (1 << 63)
			if f == 1 {
				continue // resampled before the compare
			}
			if got, want := v < vt, f < p; got != want {
				t.Errorf("p=%v v=%d: integer compare %v, float compare %v", p, v, got, want)
			}
		}
	}
}
