package noise

import (
	"math/rand"
	"testing"

	"speedofdata/internal/steane"
)

// benchmarkChunk measures raw Monte Carlo trial throughput per sampling
// mode on the verify-and-correct circuit (the paper's factory preparation,
// and the costliest Figure 4 variant).  BENCH_noise.json at the repository
// root records the same comparison.
func benchmarkChunk(b *testing.B, mode Sampling) {
	code := steane.NewCode()
	s, err := NewSimulator(code, steane.VerifyAndCorrectProtocol(code), DefaultModel())
	if err != nil {
		b.Fatal(err)
	}
	s.Sampling = mode
	const trials = 8192
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.monteCarloChunk(rand.New(rand.NewSource(int64(i))), trials)
	}
	b.ReportMetric(float64(trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/sec")
}

func BenchmarkMonteCarloChunkLegacy(b *testing.B)    { benchmarkChunk(b, SamplingLegacy) }
func BenchmarkMonteCarloChunkDense(b *testing.B)     { benchmarkChunk(b, SamplingDense) }
func BenchmarkMonteCarloChunkSparse(b *testing.B)    { benchmarkChunk(b, SamplingSparse) }
func BenchmarkMonteCarloChunkBitSliced(b *testing.B) { benchmarkChunk(b, SamplingBitSliced) }
