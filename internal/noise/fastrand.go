package noise

import "math/rand"

// math/rand's default Source (rand.NewSource) is an additive lagged-Fibonacci
// generator over a 607-entry vector with tap offset 273:
//
//	x[n] = x[n-273] + x[n-607]  (wrapping int64 addition)
//
// Its value stream for a given seed is frozen by the Go 1 compatibility
// promise, and the experiment engine seeds every job's *rand.Rand from
// rand.NewSource, so the Monte Carlo hot loop is entitled to rely on it.
// Drawing through *rand.Rand costs an interface dispatch plus two method
// calls per value, and every draw's cursor update is a serial
// store-load chain; lfRand removes all of that by continuing the exact same
// recurrence with batched, data-parallel refills (values 273 apart are
// independent, so a refill of 128 has no loop-carried dependency) into a
// buffer the trial loop indexes with a register-resident cursor.
const (
	lfLen   = 607
	lfTap   = 273
	lfMask  = 1<<63 - 1
	lfTwo63 = float64(1 << 63)
	// lfBuf is the refill batch size; it must stay below lfTap so the
	// batched recurrence never reads a slot the same batch wrote.
	lfBuf = 128
)

// lfRand continues a math/rand lagged-Fibonacci stream.  It is initialised
// by capture, which exploits a structural property of the generator: over
// any 607 consecutive draws, every vector slot is overwritten exactly once
// with the value that was just returned, and the tap/feed cursors complete
// one full revolution.  Capturing 607 raw outputs from the source therefore
// yields (a) the exact next internal state and (b) the outputs themselves,
// which are replayed before the recurrence takes over — so an lfRand's value
// stream is byte-identical to the *rand.Rand it captured, from the first
// draw on.  The dense Monte Carlo's golden tests against the *rand.Rand
// reference enforce this end to end.
type lfRand struct {
	tap, feed int32
	warm      int32 // captured outputs still to replay
	bi        int32 // next unread buf index; lfBuf means "refill needed"
	buf       [lfBuf]int64
	vec       [lfLen]int64
}

// capture drains 607 values from src (one full state revolution) and
// positions the replay cursor at the stream's beginning.
func (r *lfRand) capture(src *rand.Rand) {
	// After Seed, math/rand's rngSource starts at tap=0, feed=607-273; the
	// k-th draw (1-based) decrements both cursors first and stores its
	// output at the new feed position.
	r.tap, r.feed, r.warm, r.bi = 0, lfLen-lfTap, lfLen, lfBuf
	for k := 1; k <= lfLen; k++ {
		i := lfLen - lfTap - k
		if i < 0 {
			i += lfLen
		}
		r.vec[i] = int64(src.Uint64())
	}
}

// genSlow is the scalar recurrence step: the next raw 64-bit value
// (math/rand Source64.Uint64 as int64).  During the warm-up revolution it
// replays the captured outputs by reading them back from the vector without
// modifying it; afterwards it applies the recurrence in place.
func (r *lfRand) genSlow() int64 {
	t, f := r.tap-1, r.feed-1
	if t < 0 {
		t += lfLen
	}
	if f < 0 {
		f += lfLen
	}
	r.tap, r.feed = t, f
	x := r.vec[f]
	if r.warm > 0 {
		r.warm--
		return x
	}
	x += r.vec[t]
	r.vec[f] = x
	return x
}

// refill fills buf with the next lfBuf raw values and rewinds the read
// cursor.  After the warm-up the batch is generated in wrap-free segments
// of independent adds (no carried dependency: lfBuf < lfTap, so a batch
// never reads a slot it wrote); the warm-up revolution itself goes through
// the scalar replay step.
func (r *lfRand) refill() {
	i := int32(0)
	for r.warm > 0 && i < lfBuf {
		r.buf[i] = r.genSlow()
		i++
	}
	t, f := r.tap, r.feed
	for i < lfBuf {
		n := lfBuf - i
		if t == 0 {
			t = lfLen
		}
		if f == 0 {
			f = lfLen
		}
		if t < n {
			n = t
		}
		if f < n {
			n = f
		}
		for j := int32(0); j < n; j++ {
			t--
			f--
			x := r.vec[f] + r.vec[t]
			r.vec[f] = x
			r.buf[i] = x
			i++
		}
	}
	r.tap, r.feed = t, f
	r.bi = 0
}

// gen returns the next raw value through the buffer.  Hot loops that keep
// their own copy of bi (see runDense) bypass this accessor.
func (r *lfRand) gen() int64 {
	if r.bi == lfBuf {
		r.refill()
	}
	v := r.buf[r.bi]
	r.bi++
	return v
}

// int63 matches rand.Rand.Int63.
func (r *lfRand) int63() int64 { return r.gen() & lfMask }

// int31 matches rand.Rand.Int31.
func (r *lfRand) int31() int32 { return int32(r.int63() >> 32) }

// Float64 matches rand.Rand.Float64, including the documented resample when
// the 63-bit value rounds up to 1.0.
func (r *lfRand) Float64() float64 {
	f := float64(r.int63()) / (1 << 63)
	for f == 1 {
		f = float64(r.int63()) / (1 << 63)
	}
	return f
}

// intn matches rand.Rand.Intn for 0 < n <= 1<<31: the power-of-two mask
// shortcut and the modulo-bias rejection loop consume draws in exactly the
// same pattern.
func (r *lfRand) intn(n int) int {
	if n&(n-1) == 0 {
		return int(r.int31() & int32(n-1))
	}
	max := int32((1 << 31) - 1 - (1<<31)%uint32(n))
	v := r.int31()
	for v > max {
		v = r.int31()
	}
	return int(v % int32(n))
}
