package noise

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"speedofdata/internal/engine"
)

// DefaultConfidence is the confidence level of sequential sampling when the
// caller leaves Target.Confidence zero.
const DefaultConfidence = 0.95

// Target is a precision goal for sequential Monte Carlo: run trials until
// the Wilson score interval of the uncorrectable rate, at the given
// confidence level, has a relative half-width no larger than Epsilon — or
// until MaxTrials is spent.
type Target struct {
	// Epsilon is the target relative confidence-interval half-width
	// (half-width / interval center), in (0, 1).
	Epsilon float64
	// Confidence is the confidence level of the interval, in (0, 1).
	// Zero means DefaultConfidence.
	Confidence float64
	// MaxTrials caps the total effort (the run stops unconverged at the
	// cap).  It must be positive.
	MaxTrials int
}

func (t Target) validate() error {
	if !(t.Epsilon > 0 && t.Epsilon < 1) {
		return fmt.Errorf("noise: target epsilon %v outside (0, 1)", t.Epsilon)
	}
	if t.Confidence != 0 && !(t.Confidence > 0 && t.Confidence < 1) {
		return fmt.Errorf("noise: target confidence %v outside (0, 1)", t.Confidence)
	}
	if t.MaxTrials <= 0 {
		return fmt.Errorf("noise: target max trials must be positive, got %d", t.MaxTrials)
	}
	return nil
}

// Partial is one refining estimate of a sequential sampling run, published
// after each batch of chunks.
type Partial struct {
	// Seq numbers the partials of one run from 1; later partials use
	// strictly more trials.
	Seq int
	// Estimate is the estimate over all trials so far.
	Estimate Estimate
	// HalfWidth and Relative are the absolute and relative Wilson
	// half-widths of the uncorrectable rate at the target confidence.
	HalfWidth, Relative float64
	// Done marks the terminal partial (converged or trial cap reached).
	Done bool
}

// MonteCarloTarget estimates error rates by sequential sampling: it runs
// doubling batches of the fixed deterministic chunks until the Wilson score
// interval of the uncorrectable rate meets the target relative half-width,
// or until t.MaxTrials is spent.  The returned bool reports convergence.
//
// The stopping rule only ever acts at batch boundaries over the
// order-independent merged tallies, so the decision — like the estimate —
// is byte-identical across worker counts.  Chunks are keyed exactly as a
// fixed-trial MonteCarloEngine run of the same seed (chunk index order,
// full mcChunkTrials words, a ragged final chunk only at the cap), so a
// target run and a fixed run share engine cache entries chunk for chunk.
//
// onPartial (optional) observes each refining estimate, including a final
// one with Done set.  It is called between batches on the caller's
// goroutine.
//
// A zero-count caveat is built into the rule: while no uncorrectable
// outcome has been seen, the Wilson relative half-width is exactly 1, so
// rare-event protocols never converge spuriously — they run to the cap.
func (s *Simulator) MonteCarloTarget(ctx context.Context, eng *engine.Engine, t Target, seed int64, onPartial func(Partial)) (Estimate, bool, error) {
	if err := t.validate(); err != nil {
		return Estimate{}, false, err
	}
	conf := t.Confidence
	if conf == 0 {
		conf = DefaultConfidence
	}
	z := normalQuantile((1 + conf) / 2)
	_, fp := s.compiled()

	var total mcCounts
	trials, chunk, seq := 0, 0, 0
	for batch := 1; ; batch *= 2 {
		want := batch * mcChunkTrials
		if remaining := t.MaxTrials - trials; want > remaining {
			want = remaining
		}
		jobs := make([]engine.Job[mcCounts], 0, (want+mcChunkTrials-1)/mcChunkTrials)
		for done := 0; done < want; done += mcChunkTrials {
			n := mcChunkTrials
			if want-done < n {
				n = want - done
			}
			i := chunk + len(jobs)
			jobs = append(jobs, engine.Job[mcCounts]{
				Key: s.chunkKey(fp, seed, i, n),
				Run: func(_ context.Context, rng *rand.Rand) (mcCounts, error) {
					return s.monteCarloChunk(rng, n), nil
				},
			})
		}
		tallies, err := engine.Run(ctx, eng, jobs)
		if err != nil {
			return Estimate{}, false, err
		}
		for _, c := range tallies {
			total = total.add(c)
		}
		chunk += len(jobs)
		trials += want

		est := estimateFrom(total, trials)
		center, half := wilson(total.Uncorrectable, total.Accepted, z)
		rel := 1.0
		if center > 0 {
			rel = half / center
		}
		converged := total.Accepted > 0 && rel <= t.Epsilon
		capped := trials >= t.MaxTrials
		seq++
		if onPartial != nil {
			onPartial(Partial{Seq: seq, Estimate: est, HalfWidth: half, Relative: rel, Done: converged || capped})
		}
		if converged || capped {
			return est, converged, nil
		}
	}
}

// wilson returns the center and half-width of the Wilson score interval for
// k successes in n trials at critical value z.  Unlike the Wald interval it
// is well behaved at k = 0, where half/center is exactly 1 — the property
// the sequential stopping rule relies on to never converge before the first
// observed event.
func wilson(k, n int, z float64) (center, half float64) {
	if n == 0 {
		return 0, 0
	}
	nf := float64(n)
	p := float64(k) / nf
	z2 := z * z
	denom := 1 + z2/nf
	center = (p + z2/(2*nf)) / denom
	half = z / denom * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	return center, half
}

// normalQuantile is the inverse standard normal CDF (Acklam's rational
// approximation, relative error below 1.15e-9 — far tighter than any Monte
// Carlo stopping rule needs).
func normalQuantile(p float64) float64 {
	if !(p > 0 && p < 1) {
		panic(fmt.Sprintf("noise: normal quantile of %v", p))
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const low, high = 0.02425, 1 - 0.02425
	switch {
	case p < low:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > high:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}
