package noise

import "speedofdata/internal/engine"

// Monte Carlo chunk counts persist in the engine's disk cache tier so a
// restarted process resumes a partially computed grid instead of resampling
// it.  The chunk keys already encode seed, sampler mode, chunk index and
// noise parameters; bump the version if the sampling semantics behind those
// keys ever change without a key-namespace change.
func init() {
	engine.RegisterResultType(mcCounts{}, 1)
}
