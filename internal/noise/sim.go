package noise

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sync"

	"speedofdata/internal/engine"
	"speedofdata/internal/steane"
)

// injector decides which fault (if any) occurs at each error location of a
// protocol run.  Location indices are assigned in execution order and are
// stable across runs of the same protocol and model.
type injector interface {
	faultAt(loc int, kind LocationKind) Fault
}

// randomInjector samples faults independently per location according to the
// model, as in the paper's Monte Carlo methodology.  The *rand.Rand is always
// injected by the caller (never the global math/rand source) so trials are
// reproducible and race-free under parallel execution: every Monte Carlo
// chunk owns a private stream derived from a stable hash of its job key.
type randomInjector struct {
	model Model
	rng   *rand.Rand
}

func (r *randomInjector) faultAt(_ int, kind LocationKind) Fault {
	p := r.model.ErrorProbability(kind)
	if p <= 0 || r.rng.Float64() >= p {
		return Fault{}
	}
	choices := FaultChoices(kind)
	return choices[r.rng.Intn(len(choices))]
}

// singleFaultInjector injects exactly one prescribed fault at one location,
// used by the deterministic first-order enumeration.
type singleFaultInjector struct {
	loc   int
	fault Fault
}

func (s *singleFaultInjector) faultAt(loc int, _ LocationKind) Fault {
	if loc == s.loc {
		return s.fault
	}
	return Fault{}
}

// TrialResult is the outcome of simulating one protocol run.
type TrialResult struct {
	// Rejected is true when a verification step failed and the run's output
	// would be discarded and retried.
	Rejected bool
	// Uncorrectable is true when the output block carries a logical error
	// after ideal decoding (the paper's Figure 4 metric).
	Uncorrectable bool
	// Residual is true when the output block carries any non-trivial error
	// pattern at all (a stricter metric also reported by EXPERIMENTS.md).
	Residual bool
}

// Sampling selects the Monte Carlo trial executor.
type Sampling int

const (
	// SamplingDense is the default: the compiled trial program draws one
	// random value per error location in exactly the order the legacy
	// interpreter did, so estimates are byte-identical for the same seed.
	SamplingDense Sampling = iota
	// SamplingSparse samples the set of faulty locations directly
	// (geometric skipping) and short-circuits fault-free trials.  It is
	// statistically exact but draws random values in a different order, so
	// estimates differ from dense within Monte Carlo error.  Opt-in.
	SamplingSparse
	// SamplingLegacy is the original op-list interpreter, retained as the
	// golden reference the compiled dense path is tested against (and the
	// pre-optimisation baseline in BENCH_noise.json).  Identical estimates
	// to SamplingDense.
	SamplingLegacy
	// SamplingBitSliced advances 64 independent trials per uint64 word
	// operation: qubit error states are lane vectors and fault masks are
	// Bernoulli words (see bitsliced.go).  Statistically exact like sparse,
	// but lane order consumes the RNG stream differently from both dense and
	// sparse, so it owns a third cache-key namespace.  Opt-in.
	SamplingBitSliced
)

// String names the sampling mode.
func (s Sampling) String() string {
	switch s {
	case SamplingDense:
		return "dense"
	case SamplingSparse:
		return "sparse"
	case SamplingLegacy:
		return "legacy"
	case SamplingBitSliced:
		return "bitsliced"
	default:
		return fmt.Sprintf("sampling(%d)", int(s))
	}
}

// Simulator evaluates one preparation protocol under one error model.
type Simulator struct {
	Code     steane.Code
	Protocol *steane.Protocol
	Model    Model
	// Sampling selects the Monte Carlo executor (default SamplingDense).
	// It must be set before the first Monte Carlo call and not changed
	// afterwards.
	Sampling Sampling

	// compiled holds the lazily built trial program and the cached protocol
	// fingerprint.  Protocol and Model must not be mutated once the first
	// Monte Carlo call has compiled them.
	compileOnce sync.Once
	prog        *trialProgram
	fp          string
}

// NewSimulator constructs a simulator, validating the protocol and model.
func NewSimulator(code steane.Code, p *steane.Protocol, m Model) (*Simulator, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("noise: invalid protocol: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if p.NumQubits > 64 {
		return nil, fmt.Errorf("noise: protocol %q has %d qubits; the Pauli-frame simulator supports up to 64", p.Name, p.NumQubits)
	}
	return &Simulator{Code: code, Protocol: p, Model: m}, nil
}

// compiled returns the trial program and protocol fingerprint, building
// them on first use (once; Monte Carlo chunks race here under the engine).
func (s *Simulator) compiled() (*trialProgram, string) {
	s.compileOnce.Do(func() {
		s.prog = compileProgram(s.Code, s.Protocol, s.Model)
		s.fp = protocolFingerprint(s.Protocol)
	})
	return s.prog, s.fp
}

// frame is the Pauli frame of a run: X and Z error bitmasks over the
// protocol's physical qubits, plus recorded measurement-outcome flips.
type frame struct {
	x, z      uint64
	measFlips []bool
}

func (f *frame) hasX(q int) bool { return f.x&(1<<uint(q)) != 0 }
func (f *frame) hasZ(q int) bool { return f.z&(1<<uint(q)) != 0 }
func (f *frame) flipX(q int)     { f.x ^= 1 << uint(q) }
func (f *frame) flipZ(q int)     { f.z ^= 1 << uint(q) }
func (f *frame) clear(q int) {
	f.x &^= 1 << uint(q)
	f.z &^= 1 << uint(q)
}

func (f *frame) inject(q int, p PauliError) {
	if p.HasX() {
		f.flipX(q)
	}
	if p.HasZ() {
		f.flipZ(q)
	}
}

// runTrial executes the protocol once with the given fault injector and
// returns the outcome.  The trial propagates errors through every physical
// operation, honours verification rejections, and applies the
// classically-controlled corrections exactly as hardware would (including
// mis-corrections caused by errors on the measured ancilla block).
func (s *Simulator) runTrial(inj injector) TrialResult {
	fr := frame{measFlips: make([]bool, s.Protocol.NumMeasurements())}
	loc := 0
	rejected := false

	for _, op := range s.Protocol.Ops {
		switch op.Kind {
		case steane.OpPrepZero:
			q := op.Qubits[0]
			fr.clear(q)
			f := inj.faultAt(loc, LocPrep)
			loc++
			fr.inject(q, f.First)

		case steane.OpH:
			q := op.Qubits[0]
			// H exchanges X and Z errors.
			x, z := fr.hasX(q), fr.hasZ(q)
			if x != z {
				fr.flipX(q)
				fr.flipZ(q)
			}
			f := inj.faultAt(loc, LocOneQubit)
			loc++
			fr.inject(q, f.First)

		case steane.OpS, steane.OpT:
			q := op.Qubits[0]
			// S maps X to Y (adds a Z component when an X error is present).
			// T is treated the same way under the Pauli-twirl approximation.
			if op.Kind == steane.OpS && fr.hasX(q) {
				fr.flipZ(q)
			}
			f := inj.faultAt(loc, LocOneQubit)
			loc++
			fr.inject(q, f.First)

		case steane.OpX, steane.OpZ:
			// Pauli gates commute or anticommute with the frame; they do not
			// change which errors are present.
			f := inj.faultAt(loc, LocOneQubit)
			loc++
			fr.inject(op.Qubits[0], f.First)

		case steane.OpCX:
			c, t := op.Qubits[0], op.Qubits[1]
			// Movement to bring the two qubits together.
			for i := 0; i < s.Model.MovementOpsPerTwoQubitGate; i++ {
				mf := inj.faultAt(loc, LocMove)
				loc++
				if i%2 == 0 {
					fr.inject(c, mf.First)
				} else {
					fr.inject(t, mf.First)
				}
			}
			// CX propagates X from control to target and Z from target to control.
			if fr.hasX(c) {
				fr.flipX(t)
			}
			if fr.hasZ(t) {
				fr.flipZ(c)
			}
			f := inj.faultAt(loc, LocTwoQubit)
			loc++
			fr.inject(c, f.First)
			fr.inject(t, f.Second)

		case steane.OpCZ:
			a, b := op.Qubits[0], op.Qubits[1]
			for i := 0; i < s.Model.MovementOpsPerTwoQubitGate; i++ {
				mf := inj.faultAt(loc, LocMove)
				loc++
				if i%2 == 0 {
					fr.inject(a, mf.First)
				} else {
					fr.inject(b, mf.First)
				}
			}
			// CZ propagates X on either qubit into a Z on the other.
			if fr.hasX(a) {
				fr.flipZ(b)
			}
			if fr.hasX(b) {
				fr.flipZ(a)
			}
			f := inj.faultAt(loc, LocTwoQubit)
			loc++
			fr.inject(a, f.First)
			fr.inject(b, f.Second)

		case steane.OpMeasureZ, steane.OpMeasureX:
			q := op.Qubits[0]
			flipped := false
			if op.Kind == steane.OpMeasureZ {
				flipped = fr.hasX(q)
			} else {
				flipped = fr.hasZ(q)
			}
			f := inj.faultAt(loc, LocMeasure)
			loc++
			if f.FlipOutcome {
				flipped = !flipped
			}
			fr.measFlips[op.MeasID] = flipped
			// The measured qubit is recycled; its frame no longer matters.
			fr.clear(q)

		case steane.OpVerify:
			parity := false
			for _, id := range op.MeasIDs {
				if fr.measFlips[id] {
					parity = !parity
				}
			}
			if parity {
				rejected = true
			}

		case steane.OpCorrectX, steane.OpCorrectZ:
			var syndromePattern uint8
			for i, id := range op.MeasIDs {
				if fr.measFlips[id] {
					syndromePattern |= 1 << uint(i)
				}
			}
			correction := s.Code.CorrectionFor(s.Code.Syndrome(syndromePattern))
			for i := 0; i < steane.N; i++ {
				if correction&(1<<uint(i)) == 0 {
					continue
				}
				q := op.Qubits[i]
				if op.Kind == steane.OpCorrectX {
					fr.flipX(q)
				} else {
					fr.flipZ(q)
				}
				// The applied correction is itself a physical gate and can fail.
				f := inj.faultAt(loc, LocOneQubit)
				loc++
				fr.inject(q, f.First)
			}

		default:
			panic(fmt.Sprintf("noise: unhandled protocol op %v", op.Kind))
		}
	}

	var xOut, zOut uint8
	for i, q := range s.Protocol.OutputBlock {
		if fr.hasX(q) {
			xOut |= 1 << uint(i)
		}
		if fr.hasZ(q) {
			zOut |= 1 << uint(i)
		}
	}
	return TrialResult{
		Rejected: rejected,
		// The output is an encoded |0> ancilla: only a surviving logical X
		// (flipped bit value) is fatal, and frames that are stabilizers of
		// |0>_L are not errors at all (see steane.IsUncorrectableZeroAncilla).
		Uncorrectable: s.Code.IsUncorrectableZeroAncilla(xOut, zOut),
		Residual:      !s.Code.IsHarmlessOnZeroAncilla(xOut, zOut),
	}
}

// locationCount walks the protocol once and returns how many error locations
// it contains under the current model (movement included).
func (s *Simulator) locationCount() int {
	count := 0
	for _, op := range s.Protocol.Ops {
		switch {
		case op.Kind == steane.OpVerify:
			// no error locations
		case op.Kind == steane.OpCorrectX || op.Kind == steane.OpCorrectZ:
			// correction locations depend on the syndrome; for enumeration we
			// conservatively skip them (they are second-order anyway).
		case op.Kind.IsTwoQubit():
			count += 1 + s.Model.MovementOpsPerTwoQubitGate
		case op.Kind.IsPhysical():
			count++
		}
	}
	return count
}

// locationKinds returns the kind of every enumerable error location in order.
func (s *Simulator) locationKinds() []LocationKind {
	var kinds []LocationKind
	for _, op := range s.Protocol.Ops {
		switch {
		case op.Kind == steane.OpVerify, op.Kind == steane.OpCorrectX, op.Kind == steane.OpCorrectZ:
			// skip (see locationCount)
		case op.Kind.IsTwoQubit():
			for i := 0; i < s.Model.MovementOpsPerTwoQubitGate; i++ {
				kinds = append(kinds, LocMove)
			}
			kinds = append(kinds, LocTwoQubit)
		case op.Kind == steane.OpPrepZero:
			kinds = append(kinds, LocPrep)
		case op.Kind.IsMeasurement():
			kinds = append(kinds, LocMeasure)
		case op.Kind.IsPhysical():
			kinds = append(kinds, LocOneQubit)
		}
	}
	return kinds
}

// Estimate is the result of evaluating a protocol.
type Estimate struct {
	// Trials is the number of Monte Carlo runs performed (0 for the
	// first-order analysis).
	Trials int
	// UncorrectableRate is the probability that an accepted run produces an
	// output block with a logical error (the Figure 4 metric).
	UncorrectableRate float64
	// ResidualRate is the probability that an accepted run produces any
	// non-trivial residual error on the output block.
	ResidualRate float64
	// RejectRate is the verification failure rate (Section 2.3 reports 0.2%
	// for the verified subunit).
	RejectRate float64
	// StdErr is the binomial standard error of UncorrectableRate.
	StdErr float64
}

// mcChunkTrials is the fixed Monte Carlo chunk size.  The chunk plan depends
// only on the trial count — never on the worker count — which is what makes
// parallel and sequential runs of the same seed byte-identical.
const mcChunkTrials = 8192

// mcCounts are the raw outcome tallies of one chunk of trials; chunks merge
// by addition, which is order-independent.
type mcCounts struct {
	Accepted, Rejected, Uncorrectable, Residual int
}

func (a mcCounts) add(b mcCounts) mcCounts {
	return mcCounts{
		Accepted:      a.Accepted + b.Accepted,
		Rejected:      a.Rejected + b.Rejected,
		Uncorrectable: a.Uncorrectable + b.Uncorrectable,
		Residual:      a.Residual + b.Residual,
	}
}

// tally records one trial outcome.
func (c *mcCounts) tally(r TrialResult) {
	c.tallyN(r, 1)
}

// tallyN records n identical trial outcomes at once (the bit-sliced
// executor's bulk path for all-clean words).
func (c *mcCounts) tallyN(r TrialResult, n int) {
	if r.Rejected {
		c.Rejected += n
		return
	}
	c.Accepted += n
	if r.Uncorrectable {
		c.Uncorrectable += n
	}
	if r.Residual {
		c.Residual += n
	}
}

// monteCarloChunk runs `trials` protocol simulations drawing faults from the
// injected RNG stream and tallies the outcomes, dispatching on the
// configured sampling mode.
func (s *Simulator) monteCarloChunk(rng *rand.Rand, trials int) mcCounts {
	countTrials(s.Sampling, trials)
	switch s.Sampling {
	case SamplingLegacy:
		return s.monteCarloChunkLegacy(rng, trials)
	case SamplingSparse:
		prog, _ := s.compiled()
		return prog.sparseChunk(rng, trials)
	case SamplingBitSliced:
		prog, _ := s.compiled()
		return prog.bitslicedChunk(rng, trials)
	default:
		prog, _ := s.compiled()
		return prog.denseChunk(rng, trials)
	}
}

// monteCarloChunkLegacy is the original interpreter chunk: one runTrial per
// trial through the injector interface.  It is the golden reference for the
// compiled dense executor and the pre-optimisation benchmark baseline.
func (s *Simulator) monteCarloChunkLegacy(rng *rand.Rand, trials int) mcCounts {
	inj := &randomInjector{model: s.Model, rng: rng}
	var c mcCounts
	for i := 0; i < trials; i++ {
		c.tally(s.runTrial(inj))
	}
	return c
}

// protocolFingerprint identifies a protocol for cache keys by hashing its
// full op sequence: protocols that differ anywhere must never share Monte
// Carlo chunk results or RNG streams, even if name and shape coincide.
// It walks (and formats) every op, so the Simulator computes it once and
// caches it alongside the compiled program (see compiled) instead of
// re-deriving it on every MonteCarloEngine call.
func protocolFingerprint(p *steane.Protocol) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|", p.Name, p.NumQubits)
	for _, op := range p.Ops {
		fmt.Fprintf(h, "%d%v%d%v;", int(op.Kind), op.Qubits, op.MeasID, op.MeasIDs)
	}
	return fmt.Sprintf("%s/%d/%x", p.Name, len(p.Ops), h.Sum64())
}

// DefaultTrials is the standard Monte Carlo effort for the Figure 4 error
// estimates: enough samples to resolve the smallest published rate (2.9e-5
// for verify-and-correct) with a usable confidence interval.  The qsd CLI
// (-trials) and the HTTP API (?trials=) both default to it.
const DefaultTrials = 200000

// MonteCarlo estimates error rates with the given number of trials and seed.
// It is the sequential form of MonteCarloEngine and produces identical
// estimates for the same seed.
func (s *Simulator) MonteCarlo(trials int, seed int64) Estimate {
	est, err := s.MonteCarloEngine(context.Background(), nil, trials, seed)
	if err != nil {
		// Chunk jobs cannot fail and the context is never cancelled.
		panic(fmt.Sprintf("noise: sequential Monte Carlo failed: %v", err))
	}
	return est
}

// MonteCarloEngine estimates error rates by splitting the trials into fixed
// deterministic chunks and running them as engine jobs.  Each chunk owns an
// independent RNG stream seeded from a stable hash of (engine seed, chunk
// key), so two engines with the same seed produce byte-identical estimates
// regardless of worker count; the merged tallies are order-independent.
func (s *Simulator) MonteCarloEngine(ctx context.Context, eng *engine.Engine, trials int, seed int64) (Estimate, error) {
	if trials <= 0 {
		panic("noise: trials must be positive")
	}
	chunks := (trials + mcChunkTrials - 1) / mcChunkTrials
	_, fp := s.compiled()
	jobs := make([]engine.Job[mcCounts], chunks)
	for i := 0; i < chunks; i++ {
		n := mcChunkTrials
		if i == chunks-1 {
			n = trials - i*mcChunkTrials
		}
		jobs[i] = engine.Job[mcCounts]{
			Key: s.chunkKey(fp, seed, i, n),
			Run: func(_ context.Context, rng *rand.Rand) (mcCounts, error) {
				return s.monteCarloChunk(rng, n), nil
			},
		}
	}
	tallies, err := engine.Run(ctx, eng, jobs)
	if err != nil {
		return Estimate{}, err
	}
	var total mcCounts
	for _, c := range tallies {
		total = total.add(c)
	}
	return estimateFrom(total, trials), nil
}

// chunkKey is the engine job key of Monte Carlo chunk i (of n trials) under
// the current sampling mode.  Dense and legacy sampling share keys (and
// therefore RNG streams and cached results): they are the same estimator.
// Sparse and bit-sliced each draw random values in their own order and get
// their own namespace — neither may ever share a chunk result with another
// mode.  MonteCarloTarget builds the same keys, so a sequential-sampling run
// and a fixed-trial run of the same seed share cache entries chunk for chunk.
func (s *Simulator) chunkKey(fp string, seed int64, i, n int) string {
	key := engine.NewKey("noise.mc").Str(fp).Keyer(s.Model).Int64(seed).Int(i).Int(n)
	switch s.Sampling {
	case SamplingSparse:
		key = key.Str("sparse")
	case SamplingBitSliced:
		key = key.Str("bitsliced")
	}
	return key.String()
}

// estimateFrom converts merged chunk tallies into the rate estimate.
func estimateFrom(total mcCounts, trials int) Estimate {
	est := Estimate{Trials: trials, RejectRate: float64(total.Rejected) / float64(trials)}
	if total.Accepted > 0 {
		est.UncorrectableRate = float64(total.Uncorrectable) / float64(total.Accepted)
		est.ResidualRate = float64(total.Residual) / float64(total.Accepted)
		est.StdErr = math.Sqrt(est.UncorrectableRate * (1 - est.UncorrectableRate) / float64(total.Accepted))
	}
	return est
}

// FirstOrder computes the leading-order error rates exactly by enumerating
// every single-fault event, weighting each by its probability.  It is
// deterministic and fast, and is the oracle used by tests to check the
// ordering of the Figure 4 variants.  Protocols that are fault-tolerant to
// single faults (verify-and-correct) report a (near-)zero first-order
// uncorrectable rate; their true rate is second order and is measured by
// MonteCarlo.
func (s *Simulator) FirstOrder() Estimate {
	kinds := s.locationKinds()
	var uncorrectable, residual, reject float64
	for loc, kind := range kinds {
		p := s.Model.ErrorProbability(kind)
		if p == 0 {
			continue
		}
		choices := FaultChoices(kind)
		perChoice := p / float64(len(choices))
		for _, f := range choices {
			r := s.runTrial(&singleFaultInjector{loc: loc, fault: f})
			switch {
			case r.Rejected:
				reject += perChoice
			default:
				if r.Uncorrectable {
					uncorrectable += perChoice
				}
				if r.Residual {
					residual += perChoice
				}
			}
		}
	}
	return Estimate{
		UncorrectableRate: uncorrectable,
		ResidualRate:      residual,
		RejectRate:        reject,
	}
}

// LocationContribution describes, for one error location, how many of the
// equally likely faults at that location lead to each outcome.  It is used by
// FirstOrderBreakdown to explain where a protocol's error rate comes from.
type LocationContribution struct {
	// Index is the location index in execution order.
	Index int
	// Kind is the location kind (prep, gate, measurement, movement).
	Kind LocationKind
	// Op describes the protocol operation the location belongs to.
	Op string
	// Choices is the number of equally likely faults at this location.
	Choices int
	// Uncorrectable, Residual and Rejected count fault choices leading to
	// each outcome (rejected runs are not counted as uncorrectable/residual).
	Uncorrectable, Residual, Rejected int
}

// FirstOrderBreakdown enumerates every single-fault event and reports the
// per-location outcome counts, which is the detail behind FirstOrder.  Only
// locations with at least one non-benign outcome are returned.
func (s *Simulator) FirstOrderBreakdown() []LocationContribution {
	kinds := s.locationKinds()
	ops := s.locationOps()
	var out []LocationContribution
	for loc, kind := range kinds {
		choices := FaultChoices(kind)
		contrib := LocationContribution{Index: loc, Kind: kind, Op: ops[loc], Choices: len(choices)}
		for _, f := range choices {
			r := s.runTrial(&singleFaultInjector{loc: loc, fault: f})
			switch {
			case r.Rejected:
				contrib.Rejected++
			default:
				if r.Uncorrectable {
					contrib.Uncorrectable++
				}
				if r.Residual {
					contrib.Residual++
				}
			}
		}
		if contrib.Uncorrectable > 0 || contrib.Residual > 0 || contrib.Rejected > 0 {
			out = append(out, contrib)
		}
	}
	return out
}

// locationOps returns a short description of the protocol op behind each
// enumerable error location, aligned with locationKinds.
func (s *Simulator) locationOps() []string {
	var ops []string
	for i, op := range s.Protocol.Ops {
		desc := fmt.Sprintf("#%d %s %v", i, op.Kind, op.Qubits)
		switch {
		case op.Kind == steane.OpVerify, op.Kind == steane.OpCorrectX, op.Kind == steane.OpCorrectZ:
			// skip
		case op.Kind.IsTwoQubit():
			for j := 0; j < s.Model.MovementOpsPerTwoQubitGate; j++ {
				ops = append(ops, desc+" (move)")
			}
			ops = append(ops, desc)
		case op.Kind.IsPhysical():
			ops = append(ops, desc)
		}
	}
	return ops
}

// VerifyNoiselessIsClean runs the protocol once with no faults and reports an
// error if the output is rejected or carries any residual error — a sanity
// check that the protocol and propagation rules are self-consistent.
func (s *Simulator) VerifyNoiselessIsClean() error {
	r := s.runTrial(&singleFaultInjector{loc: -1})
	if r.Rejected {
		return fmt.Errorf("noise: protocol %q rejects its own noiseless run", s.Protocol.Name)
	}
	if r.Residual {
		return fmt.Errorf("noise: protocol %q leaves residual error in a noiseless run", s.Protocol.Name)
	}
	return nil
}
