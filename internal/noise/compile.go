package noise

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"speedofdata/internal/steane"
)

// This file compiles a (steane.Protocol, Model) pair into a flat trial
// program — the Monte Carlo hot path.  The interpreter in runTrial walks the
// protocol's op list through an injector interface, allocates a measFlips
// slice per trial and re-derives each location's error probability and fault
// choices on every visit.  The compiled form precomputes all of that once:
//
//   - one dense instruction per physical operation, with the location's
//     fault decision precompiled to a single integer compare against the raw
//     RNG value (see intThreshold) and the per-gate movement ops fused into
//     one run instruction;
//   - measurement flips bit-packed into uint64 words, with verification
//     parity masks and correction syndrome tables precomputed;
//   - the decode outcome of every possible output frame tabulated, so a
//     trial ends in one lookup;
//   - RNG draws devirtualised through lfRand's batched buffer.
//
// The dense executor consumes random values in exactly the order the
// interpreter does, so its estimates are byte-identical for the same seed
// (golden-tested).  The sparse executor gives up that equivalence for speed:
// it samples the set of faulty locations directly (geometric skips within
// groups of equal-probability locations), short-circuits fault-free trials
// to the precomputed clean outcome, and starts execution at the first faulty
// instruction — statistically exact, validated against the dense path and
// the first-order oracle.

// Instruction opcodes.  Location-bearing instructions carry static error
// locations; verify/correct are classical.
const (
	cPrep uint8 = iota
	cHad
	cPhaseS
	cInject  // T/X/Z: a location with no frame transform
	cMoveRun // the fused movement ops preceding one two-qubit gate
	cCX
	cCZ
	cMeasZ
	cMeasX
	cVerify
	cCorrectX
	cCorrectZ
)

// pinstr is one compiled instruction.
type pinstr struct {
	op      uint8
	kind    uint8  // LocationKind of the instruction's error location(s)
	q0, q1  uint8  // operand qubits
	meas    uint16 // measurement bit index (cMeas*) or move count (cMoveRun)
	aux     uint16 // verifyMasks / corrects index (cVerify/cCorrect*)
	loc     int32  // first static location index, -1 for classical instrs
	vthresh int64
	// vthresh is the location's fault decision as an integer threshold on
	// the raw 63-bit RNG value (fault iff value < vthresh, exactly
	// equivalent to Float64() < p), or -1 when no draw happens here: p <= 0
	// locations (the interpreter skips the RNG draw entirely in that case,
	// so the compiled path must too to keep the streams aligned), classical
	// instructions, and cMoveRun (which draws per move against the shared
	// moveVThresh).
}

// correctData is the precomputed operand table of one correction step.
type correctData struct {
	qubits [steane.N]uint8
	meas   [steane.N]uint16
}

// Outcome flag bits of the per-frame decode table.
const (
	outUncorrectable = 1 << 0
	outResidual      = 1 << 1
)

// probClass groups static locations that share one fault probability, for
// the sparse sampler's geometric skipping.
type probClass struct {
	prob      float64
	invLogQ   float64 // 1 / ln(1-p), negative; multiplies ln(U) into a skip
	allFaulty bool    // p >= 1: every location in the class faults
	locs      []int32
}

// trialProgram is a compiled (protocol, model) pair.  It is immutable after
// compile and safe for concurrent executors.
type trialProgram struct {
	ops         []pinstr
	nStatic     int // static error locations (== Simulator.locationCount)
	measWords   int
	verifyMasks [][]uint64
	corrects    []correctData
	correction  [1 << steane.N]uint8 // syndrome pattern -> correction mask
	outcome     []uint8              // (xOut<<7 | zOut) -> outcome flags
	output      [steane.N]uint8
	moveVThresh int64 // fault threshold of movement ops (cMoveRun)
	corrVThresh int64 // fault threshold of correction gates (LocOneQubit)
	corrProb    float64
	classes     []probClass
	locInstr    []int32 // static location index -> instruction index
	// vthreshByLoc is each static location's integer fault threshold in
	// location order (-1 = never faults, no draw), the scan loop's table.
	vthreshByLoc []int64
	clean        TrialResult // outcome of a fault-free run
}

// choicesByKind caches FaultChoices per location kind so the executors index
// a table instead of allocating a fresh slice at every faulty location.
var choicesByKind = [...][]Fault{
	LocPrep:     FaultChoices(LocPrep),
	LocOneQubit: FaultChoices(LocOneQubit),
	LocTwoQubit: FaultChoices(LocTwoQubit),
	LocMeasure:  FaultChoices(LocMeasure),
	LocMove:     FaultChoices(LocMove),
}

// lfRetryMin is the smallest raw 63-bit value whose Float64 image rounds up
// to 1.0 — math/rand resamples those, so the integer draw must too.
var lfRetryMin = minValueReaching(lfTwo63)

// minValueReaching returns the smallest non-negative v <= lfMask with
// float64(v) >= bound (lfMask+1 if none), by monotonicity of the conversion.
func minValueReaching(bound float64) int64 {
	lo, hi := int64(0), int64(lfMask)
	if float64(hi) < bound {
		return hi + 1
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if float64(mid) >= bound {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// intThreshold compiles a location probability into an integer threshold on
// the raw 63-bit RNG value: fault iff value < intThreshold(p), which is
// exactly `Float64() < p` because float64(v)·2⁻⁶³ is monotone in v and
// p·2⁶³ is computed exactly (a power-of-two scale).  Returns -1 for p <= 0,
// where the interpreter draws nothing.
func intThreshold(p float64) int64 {
	if p <= 0 {
		return -1
	}
	return minValueReaching(p * lfTwo63)
}

// compile builds the trial program.  The protocol and model are the
// Simulator's own (already validated).
func compileProgram(code steane.Code, p *steane.Protocol, m Model) *trialProgram {
	prog := &trialProgram{
		measWords:   (p.NumMeasurements() + 63) / 64,
		moveVThresh: intThreshold(m.ErrorProbability(LocMove)),
		corrVThresh: intThreshold(m.ErrorProbability(LocOneQubit)),
		corrProb:    m.ErrorProbability(LocOneQubit),
	}
	loc := int32(0)
	// classLoc registers one static location for the sparse sampler.
	classLoc := func(kind LocationKind) {
		prob := m.ErrorProbability(kind)
		prog.locInstr = append(prog.locInstr, int32(len(prog.ops)))
		prog.vthreshByLoc = append(prog.vthreshByLoc, intThreshold(prob))
		loc++
		prog.addToClass(prob, loc-1, 1)
	}
	emitLoc := func(in pinstr, kind LocationKind) {
		in.kind = uint8(kind)
		in.loc = loc
		in.vthresh = intThreshold(m.ErrorProbability(kind))
		classLoc(kind)
		prog.ops = append(prog.ops, in)
	}
	for _, op := range p.Ops {
		switch op.Kind {
		case steane.OpPrepZero:
			emitLoc(pinstr{op: cPrep, q0: uint8(op.Qubits[0])}, LocPrep)
		case steane.OpH:
			emitLoc(pinstr{op: cHad, q0: uint8(op.Qubits[0])}, LocOneQubit)
		case steane.OpS:
			emitLoc(pinstr{op: cPhaseS, q0: uint8(op.Qubits[0])}, LocOneQubit)
		case steane.OpT, steane.OpX, steane.OpZ:
			// T is twirled to an injection-only location; Paulis commute with
			// the frame.  All three execute identically.
			emitLoc(pinstr{op: cInject, q0: uint8(op.Qubits[0])}, LocOneQubit)
		case steane.OpCX, steane.OpCZ:
			a, b := uint8(op.Qubits[0]), uint8(op.Qubits[1])
			if k := m.MovementOpsPerTwoQubitGate; k > 0 {
				// One fused instruction for the k movement ops; the executor
				// draws per move, alternating the injection target a,b,a,...
				run := pinstr{op: cMoveRun, kind: uint8(LocMove), q0: a, q1: b,
					meas: uint16(k), loc: loc, vthresh: -1}
				prog.ops = append(prog.ops, run)
				// The k fused locations all map to the one run instruction
				// just emitted (classLoc would point past it).
				for i := 0; i < k; i++ {
					prog.locInstr = append(prog.locInstr, int32(len(prog.ops)-1))
					prog.vthreshByLoc = append(prog.vthreshByLoc, prog.moveVThresh)
					loc++
				}
				prog.addToClass(m.ErrorProbability(LocMove), loc-int32(k), k)
			}
			gate := cCX
			if op.Kind == steane.OpCZ {
				gate = cCZ
			}
			emitLoc(pinstr{op: gate, q0: a, q1: b}, LocTwoQubit)
		case steane.OpMeasureZ, steane.OpMeasureX:
			gate := cMeasZ
			if op.Kind == steane.OpMeasureX {
				gate = cMeasX
			}
			emitLoc(pinstr{op: gate, q0: uint8(op.Qubits[0]), meas: uint16(op.MeasID)}, LocMeasure)
		case steane.OpVerify:
			mask := make([]uint64, prog.measWords)
			for _, id := range op.MeasIDs {
				mask[id>>6] |= 1 << (uint(id) & 63)
			}
			prog.ops = append(prog.ops, pinstr{op: cVerify, aux: uint16(len(prog.verifyMasks)), loc: -1, vthresh: -1})
			prog.verifyMasks = append(prog.verifyMasks, mask)
		case steane.OpCorrectX, steane.OpCorrectZ:
			var cd correctData
			for i := 0; i < steane.N; i++ {
				cd.qubits[i] = uint8(op.Qubits[i])
				cd.meas[i] = uint16(op.MeasIDs[i])
			}
			gate := cCorrectX
			if op.Kind == steane.OpCorrectZ {
				gate = cCorrectZ
			}
			prog.ops = append(prog.ops, pinstr{op: gate, aux: uint16(len(prog.corrects)), loc: -1, vthresh: -1})
			prog.corrects = append(prog.corrects, cd)
		default:
			panic(fmt.Sprintf("noise: unhandled protocol op %v", op.Kind))
		}
	}
	prog.nStatic = int(loc)
	for i := range prog.output {
		prog.output[i] = uint8(p.OutputBlock[i])
	}
	for pat := 0; pat < 1<<steane.N; pat++ {
		prog.correction[pat] = code.CorrectionFor(code.Syndrome(uint8(pat)))
	}
	prog.outcome = make([]uint8, 1<<(2*steane.N))
	for x := 0; x < 1<<steane.N; x++ {
		for z := 0; z < 1<<steane.N; z++ {
			var f uint8
			if code.IsUncorrectableZeroAncilla(uint8(x), uint8(z)) {
				f |= outUncorrectable
			}
			if !code.IsHarmlessOnZeroAncilla(uint8(x), uint8(z)) {
				f |= outResidual
			}
			prog.outcome[x<<steane.N|z] = f
		}
	}
	prog.clean = (&Simulator{Code: code, Protocol: p, Model: m}).runTrial(&singleFaultInjector{loc: -1})
	return prog
}

// addToClass registers k consecutive static locations starting at base with
// the probability class for prob, creating the class on first sight.
// Locations with p <= 0 never fault and are not registered.
func (p *trialProgram) addToClass(prob float64, base int32, k int) {
	if prob <= 0 {
		return
	}
	ci := -1
	for i := range p.classes {
		if p.classes[i].prob == prob {
			ci = i
			break
		}
	}
	if ci < 0 {
		c := probClass{prob: prob, allFaulty: prob >= 1}
		if !c.allFaulty {
			c.invLogQ = 1 / math.Log1p(-prob)
		}
		p.classes = append(p.classes, c)
		ci = len(p.classes) - 1
	}
	for i := 0; i < k; i++ {
		p.classes[ci].locs = append(p.classes[ci].locs, base+int32(i))
	}
}

// scanToFault consumes location value draws exactly like a fault-free trial
// until it finds the first faulty static location, whose index it returns
// (nStatic when the trial is fault-free).  This is the dense hot path: at
// physical error rates the expected faults per trial are ~p·locations << 1,
// so most trials are a single pass through this tight loop — one buffered
// load, one threshold load and two compares per location — and short-circuit
// to the precompiled clean outcome without touching the op interpreter.
// Stream parity with the interpreter holds because a fault-free prefix
// consumes exactly one value per positive-probability location (plus the
// documented f==1 resamples), in location order.
func (p *trialProgram) scanToFault(rng *lfRand) int {
	bi := rng.bi
	retryMin := lfRetryMin
	th := p.vthreshByLoc
	for i := 0; i < len(th); i++ {
		t := th[i]
		if t < 0 {
			continue // p <= 0: the interpreter draws nothing here
		}
		if bi == lfBuf {
			rng.refill()
			bi = 0
		}
		v := rng.buf[bi&(lfBuf-1)] & lfMask
		bi++
		for v >= retryMin {
			if bi == lfBuf {
				rng.refill()
				bi = 0
			}
			v = rng.buf[bi&(lfBuf-1)] & lfMask
			bi++
		}
		if v < t {
			rng.bi = bi
			return i
		}
	}
	rng.bi = bi
	return p.nStatic
}

// runDenseFrom finishes a dense trial whose scan found its first fault at
// static location k (the value draw for k is already consumed; the fault's
// choice draw is not).  Everything before k is clean — transforms on an
// empty frame are no-ops, measurements record zeros, verifies pass and
// corrections do nothing — so execution starts at k's instruction with the
// forced fault injected and proceeds live (value and choice draws in
// interpreter order) from there.
func (p *trialProgram) runDenseFrom(rng *lfRand, meas []uint64, k int) TrialResult {
	var x, z uint64
	for i := range meas {
		meas[i] = 0
	}
	ii := int(p.locInstr[k])
	in := &p.ops[ii]
	switch in.op {
	case cMoveRun:
		// Forced fault at move offset k-loc; later moves of the run draw
		// live, earlier ones were consumed by the scan.
		j0 := k - int(in.loc)
		x, z = p.injectMove(rng, in, j0, x, z)
		for j := j0 + 1; j < int(in.meas); j++ {
			if p.moveVThresh >= 0 {
				v := rng.gen() & lfMask
				for v >= lfRetryMin {
					v = rng.gen() & lfMask
				}
				if v < p.moveVThresh {
					x, z = p.injectMove(rng, in, j, x, z)
				}
			}
		}
	case cMeasZ, cMeasX:
		// A forced measurement fault flips the (clean) outcome; the choice
		// draw still happens to keep the stream aligned.
		rng.intn(len(choicesByKind[LocMeasure]))
		meas[in.meas>>6] |= 1 << (in.meas & 63)
	default:
		ch := choicesByKind[in.kind]
		f := ch[rng.intn(len(ch))]
		b := uint64(1) << in.q0
		if f.First.HasX() {
			x ^= b
		}
		if f.First.HasZ() {
			z ^= b
		}
		if in.kind == uint8(LocTwoQubit) {
			b = uint64(1) << in.q1
			if f.Second.HasX() {
				x ^= b
			}
			if f.Second.HasZ() {
				z ^= b
			}
		}
	}
	return p.execDense(rng, meas, ii+1, x, z)
}

// injectMove draws the fault choice for move j of a fused run and injects
// it on the run's alternating operand.
func (p *trialProgram) injectMove(rng *lfRand, in *pinstr, j int, x, z uint64) (uint64, uint64) {
	ch := choicesByKind[LocMove]
	f := ch[rng.intn(len(ch))]
	b := uint64(1) << in.q0
	if j&1 == 1 {
		b = uint64(1) << in.q1
	}
	if f.First.HasX() {
		x ^= b
	}
	if f.First.HasZ() {
		z ^= b
	}
	return x, z
}

// runDense executes one full trial through the op interpreter, drawing
// random values in exactly the order runTrial with randomInjector does.
// meas must have p.measWords capacity; it is zeroed here.  The chunk
// executor prefers scanToFault + runDenseFrom (same stream, same results);
// this entry is the oracle used by unit tests.
func (p *trialProgram) runDense(rng *lfRand, meas []uint64) TrialResult {
	for i := range meas {
		meas[i] = 0
	}
	return p.execDense(rng, meas, 0, 0, 0)
}

// execDense interprets ops[startII:] with the given initial frame, drawing
// value and choice draws in interpreter order.  The loop performs zero heap
// allocations (guarded by TestRunDenseAllocations).
//
// The per-location fault draw sits below the op switch: frame transforms
// consume no randomness, so drawing after them leaves the value stream
// untouched while giving the loop a single shared draw site.  That site
// keeps the RNG's buffer cursor in a local (register) and only falls back
// to lfRand methods on the rare fault, so the common path per location is
// one buffered load, one mask and two integer compares.
func (p *trialProgram) execDense(rng *lfRand, meas []uint64, startII int, x, z uint64) TrialResult {
	rejected := false
	bi := rng.bi
	retryMin := lfRetryMin
	ops := p.ops
	for ii := startII; ii < len(ops); ii++ {
		in := &ops[ii]
		// The switch applies the op's frame transform; instructions with
		// non-uniform draw patterns (movement runs, measurements, classical
		// steps) handle themselves and skip the shared draw site below.
		switch in.op {
		case cPrep:
			b := uint64(1) << in.q0
			x &^= b
			z &^= b
		case cHad:
			b := uint64(1) << in.q0
			// H exchanges X and Z errors.
			if (x&b != 0) != (z&b != 0) {
				x ^= b
				z ^= b
			}
		case cPhaseS:
			// S maps X to Y (adds a Z component when an X error is present).
			if x&(1<<in.q0) != 0 {
				z ^= 1 << in.q0
			}
		case cInject:
			// No transform; the shared draw site does the rest.
		case cMoveRun:
			// The fused movement ops of one two-qubit gate: one draw per
			// move (skipped entirely when movement is error-free, exactly
			// like the interpreter), injecting on alternating operands.
			if p.moveVThresh >= 0 {
				k := int(in.meas)
				for j := 0; j < k; j++ {
					if bi == lfBuf {
						rng.refill()
						bi = 0
					}
					v := rng.buf[bi&(lfBuf-1)] & lfMask
					bi++
					for v >= retryMin {
						if bi == lfBuf {
							rng.refill()
							bi = 0
						}
						v = rng.buf[bi&(lfBuf-1)] & lfMask
						bi++
					}
					if v < p.moveVThresh {
						rng.bi = bi
						ch := choicesByKind[LocMove]
						f := ch[rng.intn(len(ch))]
						bi = rng.bi
						b := uint64(1) << in.q0
						if j&1 == 1 {
							b = uint64(1) << in.q1
						}
						if f.First.HasX() {
							x ^= b
						}
						if f.First.HasZ() {
							z ^= b
						}
					}
				}
			}
			continue
		case cCX:
			bc, bt := uint64(1)<<in.q0, uint64(1)<<in.q1
			// CX propagates X control->target and Z target->control.
			if x&bc != 0 {
				x ^= bt
			}
			if z&bt != 0 {
				z ^= bc
			}
		case cCZ:
			ba, bb := uint64(1)<<in.q0, uint64(1)<<in.q1
			// CZ propagates X on either qubit into a Z on the other.
			if x&ba != 0 {
				z ^= bb
			}
			if x&bb != 0 {
				z ^= ba
			}
		case cMeasZ, cMeasX:
			b := uint64(1) << in.q0
			flipped := x&b != 0
			if in.op == cMeasX {
				flipped = z&b != 0
			}
			// The draw happens between reading the pre-fault outcome and
			// recording it, exactly like the interpreter.
			if in.vthresh >= 0 {
				if bi == lfBuf {
					rng.refill()
					bi = 0
				}
				v := rng.buf[bi&(lfBuf-1)] & lfMask
				bi++
				for v >= retryMin {
					if bi == lfBuf {
						rng.refill()
						bi = 0
					}
					v = rng.buf[bi&(lfBuf-1)] & lfMask
					bi++
				}
				if v < in.vthresh {
					// The single measurement fault is an outcome flip; the
					// choice draw still happens to keep the stream aligned.
					rng.bi = bi
					rng.intn(len(choicesByKind[LocMeasure]))
					bi = rng.bi
					flipped = !flipped
				}
			}
			if flipped {
				meas[in.meas>>6] |= 1 << (in.meas & 63)
			}
			// The measured qubit is recycled; its frame no longer matters.
			x &^= b
			z &^= b
			continue
		case cVerify:
			mask := p.verifyMasks[in.aux]
			parity := 0
			for w, m := range mask {
				parity += bits.OnesCount64(meas[w] & m)
			}
			if parity&1 == 1 {
				rejected = true
			}
		case cCorrectX, cCorrectZ:
			cd := &p.corrects[in.aux]
			var pat uint8
			for i := 0; i < steane.N; i++ {
				id := cd.meas[i]
				if meas[id>>6]>>(id&63)&1 != 0 {
					pat |= 1 << i
				}
			}
			corr := p.correction[pat]
			for i := 0; corr != 0 && i < steane.N; i++ {
				if corr>>i&1 == 0 {
					continue
				}
				b := uint64(1) << cd.qubits[i]
				if in.op == cCorrectX {
					x ^= b
				} else {
					z ^= b
				}
				// The applied correction is itself a physical gate and can
				// fail.  Syndromes are rare, so this cold path draws through
				// the lfRand methods (cursor synced around it).
				if p.corrVThresh >= 0 {
					rng.bi = bi
					v := rng.gen() & lfMask
					for v >= retryMin {
						v = rng.gen() & lfMask
					}
					if v < p.corrVThresh {
						f := choicesByKind[LocOneQubit][rng.intn(len(choicesByKind[LocOneQubit]))]
						if f.First.HasX() {
							x ^= b
						}
						if f.First.HasZ() {
							z ^= b
						}
					}
					bi = rng.bi
				}
			}
			continue
		}
		// Shared draw site for single-location instructions (prep, H, S,
		// inject, CX, CZ): one buffered load, one mask, two compares on the
		// common no-fault path.  Injection applies the first Pauli to q0
		// and, for two-qubit locations, the second to q1.
		if in.vthresh >= 0 {
			if bi == lfBuf {
				rng.refill()
				bi = 0
			}
			v := rng.buf[bi&(lfBuf-1)] & lfMask
			bi++
			for v >= retryMin {
				if bi == lfBuf {
					rng.refill()
					bi = 0
				}
				v = rng.buf[bi&(lfBuf-1)] & lfMask
				bi++
			}
			if v < in.vthresh {
				rng.bi = bi
				ch := choicesByKind[in.kind]
				f := ch[rng.intn(len(ch))]
				bi = rng.bi
				b := uint64(1) << in.q0
				if f.First.HasX() {
					x ^= b
				}
				if f.First.HasZ() {
					z ^= b
				}
				if in.kind == uint8(LocTwoQubit) {
					b = uint64(1) << in.q1
					if f.Second.HasX() {
						x ^= b
					}
					if f.Second.HasZ() {
						z ^= b
					}
				}
			}
		}
	}
	rng.bi = bi
	return p.finish(x, z, rejected)
}

// finish extracts the output-block frame and looks up the decode outcome.
func (p *trialProgram) finish(x, z uint64, rejected bool) TrialResult {
	var xOut, zOut int
	for i, q := range p.output {
		xOut |= int(x>>q&1) << i
		zOut |= int(z>>q&1) << i
	}
	f := p.outcome[xOut<<steane.N|zOut]
	return TrialResult{
		Rejected:      rejected,
		Uncorrectable: f&outUncorrectable != 0,
		Residual:      f&outResidual != 0,
	}
}

// sampleFaults draws the set of faulty static locations for one sparse
// trial: for each probability class, geometric skips jump straight to the
// next faulty location.  The result (appended to scratch) is sorted by
// location index.
func (p *trialProgram) sampleFaults(rng *lfRand, scratch []int32) []int32 {
	out := scratch[:0]
	for ci := range p.classes {
		c := &p.classes[ci]
		if c.allFaulty {
			out = append(out, c.locs...)
			continue
		}
		pos := 0
		remaining := float64(len(c.locs))
		for {
			skip := math.Log(rng.Float64()) * c.invLogQ
			// NaN or +Inf skips (measure-zero draws) mean "no further fault".
			if !(skip < remaining) {
				break
			}
			pos += int(skip)
			out = append(out, c.locs[pos])
			pos++
			remaining = float64(len(c.locs) - pos)
		}
	}
	// Classes emit sorted runs; a tiny insertion sort merges them.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// runSparse executes one trial given its pre-sampled fault set.  Execution
// starts at the first faulty instruction: before it the frame is clean,
// every recorded measurement is unflipped, verifications pass and
// corrections are no-ops, so the skipped prefix cannot affect the outcome.
// Correction-gate faults (which only exist when a syndrome fired, i.e. only
// in trials that are already executing) are drawn Bernoulli on the fly,
// exactly as the dense path does.
func (p *trialProgram) runSparse(rng *lfRand, meas []uint64, faults []int32) TrialResult {
	if len(faults) == 0 {
		return p.clean
	}
	var x, z uint64
	for i := range meas {
		meas[i] = 0
	}
	rejected := false
	fi := 0
	ops := p.ops
	for ii := int(p.locInstr[faults[0]]); ii < len(ops); ii++ {
		in := &ops[ii]
		faulty := false
		if in.loc >= 0 && in.op != cMoveRun && fi < len(faults) && faults[fi] == in.loc {
			faulty = true
			fi++
		}
		switch in.op {
		case cPrep:
			b := uint64(1) << in.q0
			x &^= b
			z &^= b
			if faulty {
				f := choicesByKind[in.kind][rng.intn(len(choicesByKind[in.kind]))]
				if f.First.HasX() {
					x ^= b
				}
				if f.First.HasZ() {
					z ^= b
				}
			}
		case cHad:
			b := uint64(1) << in.q0
			if (x&b != 0) != (z&b != 0) {
				x ^= b
				z ^= b
			}
			if faulty {
				f := choicesByKind[in.kind][rng.intn(len(choicesByKind[in.kind]))]
				if f.First.HasX() {
					x ^= b
				}
				if f.First.HasZ() {
					z ^= b
				}
			}
		case cPhaseS:
			if x&(1<<in.q0) != 0 {
				z ^= 1 << in.q0
			}
			fallthrough
		case cInject:
			if faulty {
				b := uint64(1) << in.q0
				f := choicesByKind[in.kind][rng.intn(len(choicesByKind[in.kind]))]
				if f.First.HasX() {
					x ^= b
				}
				if f.First.HasZ() {
					z ^= b
				}
			}
		case cMoveRun:
			// Movement faults are matched by location index within the run.
			k := int32(in.meas)
			for fi < len(faults) && faults[fi] < in.loc+k {
				j := faults[fi] - in.loc
				fi++
				b := uint64(1) << in.q0
				if j&1 == 1 {
					b = uint64(1) << in.q1
				}
				f := choicesByKind[LocMove][rng.intn(len(choicesByKind[LocMove]))]
				if f.First.HasX() {
					x ^= b
				}
				if f.First.HasZ() {
					z ^= b
				}
			}
		case cCX:
			bc, bt := uint64(1)<<in.q0, uint64(1)<<in.q1
			if x&bc != 0 {
				x ^= bt
			}
			if z&bt != 0 {
				z ^= bc
			}
			if faulty {
				f := choicesByKind[in.kind][rng.intn(len(choicesByKind[in.kind]))]
				if f.First.HasX() {
					x ^= bc
				}
				if f.First.HasZ() {
					z ^= bc
				}
				if f.Second.HasX() {
					x ^= bt
				}
				if f.Second.HasZ() {
					z ^= bt
				}
			}
		case cCZ:
			ba, bb := uint64(1)<<in.q0, uint64(1)<<in.q1
			if x&ba != 0 {
				z ^= bb
			}
			if x&bb != 0 {
				z ^= ba
			}
			if faulty {
				f := choicesByKind[in.kind][rng.intn(len(choicesByKind[in.kind]))]
				if f.First.HasX() {
					x ^= ba
				}
				if f.First.HasZ() {
					z ^= ba
				}
				if f.Second.HasX() {
					x ^= bb
				}
				if f.Second.HasZ() {
					z ^= bb
				}
			}
		case cMeasZ, cMeasX:
			b := uint64(1) << in.q0
			flipped := x&b != 0
			if in.op == cMeasX {
				flipped = z&b != 0
			}
			if faulty {
				flipped = !flipped
			}
			if flipped {
				meas[in.meas>>6] |= 1 << (in.meas & 63)
			}
			x &^= b
			z &^= b
		case cVerify:
			mask := p.verifyMasks[in.aux]
			parity := 0
			for w, m := range mask {
				parity += bits.OnesCount64(meas[w] & m)
			}
			if parity&1 == 1 {
				rejected = true
			}
		case cCorrectX, cCorrectZ:
			cd := &p.corrects[in.aux]
			var pat uint8
			for i := 0; i < steane.N; i++ {
				id := cd.meas[i]
				if meas[id>>6]>>(id&63)&1 != 0 {
					pat |= 1 << i
				}
			}
			corr := p.correction[pat]
			for i := 0; corr != 0 && i < steane.N; i++ {
				if corr>>i&1 == 0 {
					continue
				}
				b := uint64(1) << cd.qubits[i]
				if in.op == cCorrectX {
					x ^= b
				} else {
					z ^= b
				}
				if p.corrProb > 0 && rng.Float64() < p.corrProb {
					f := choicesByKind[LocOneQubit][rng.intn(len(choicesByKind[LocOneQubit]))]
					if f.First.HasX() {
						x ^= b
					}
					if f.First.HasZ() {
						z ^= b
					}
				}
			}
		}
	}
	return p.finish(x, z, rejected)
}

// denseChunk runs `trials` compiled dense trials, continuing src's stream
// through lfRand, and tallies the outcomes.  Byte-identical to the legacy
// chunk for the same source.
func (p *trialProgram) denseChunk(src *rand.Rand, trials int) mcCounts {
	var lf lfRand
	lf.capture(src)
	var measArr [4]uint64
	meas := measArr[:]
	if p.measWords > len(measArr) {
		meas = make([]uint64, p.measWords)
	}
	meas = meas[:p.measWords]
	var c mcCounts
	for i := 0; i < trials; i++ {
		// Most trials are fault-free: one pass through the scan loop, then
		// straight to the precompiled clean outcome.  Only faulty trials
		// (expected fraction ~ sum of location probabilities) pay for the
		// op interpreter.
		k := p.scanToFault(&lf)
		if k == p.nStatic {
			c.tally(p.clean)
			continue
		}
		c.tally(p.runDenseFrom(&lf, meas, k))
	}
	return c
}

// sparseChunk runs `trials` sparse trials.
func (p *trialProgram) sparseChunk(src *rand.Rand, trials int) mcCounts {
	var lf lfRand
	lf.capture(src)
	var measArr [4]uint64
	meas := measArr[:]
	if p.measWords > len(measArr) {
		meas = make([]uint64, p.measWords)
	}
	meas = meas[:p.measWords]
	var faultArr [32]int32
	scratch := faultArr[:0]
	var c mcCounts
	for i := 0; i < trials; i++ {
		faults := p.sampleFaults(&lf, scratch)
		if cap(faults) > cap(scratch) {
			scratch = faults // a heavy trial grew the buffer; keep it
		}
		c.tally(p.runSparse(&lf, meas, faults))
	}
	return c
}
