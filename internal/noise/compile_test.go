package noise

import (
	"context"
	"math/rand"
	"testing"

	"speedofdata/internal/engine"
	"speedofdata/internal/noise/stattest"
	"speedofdata/internal/steane"
)

func allProtocols(code steane.Code) map[string]*steane.Protocol {
	ps := steane.StandardProtocols(code)
	ps["pi8"] = steane.Pi8AncillaProtocol(code)
	return ps
}

// The golden acceptance test of the compiled Monte Carlo: for every protocol
// and several seeds, the compiled dense chunk must tally byte-identical
// outcomes to the legacy interpreter chunk driven by the same RNG stream.
func TestDenseChunkMatchesLegacyChunk(t *testing.T) {
	code := steane.NewCode()
	for name, p := range allProtocols(code) {
		for _, model := range []Model{
			DefaultModel(),
			{GateError: 1e-2, MoveError: 1e-3, MovementOpsPerTwoQubitGate: 2},
			{GateError: 0.3, MoveError: 0, MovementOpsPerTwoQubitGate: 0},
		} {
			s := mustSimulator(t, p, model)
			prog, _ := s.compiled()
			for _, seed := range []int64{1, 2, 42, -9, 1 << 50} {
				legacy := s.monteCarloChunkLegacy(rand.New(rand.NewSource(seed)), 3000)
				compiled := prog.denseChunk(rand.New(rand.NewSource(seed)), 3000)
				if legacy != compiled {
					t.Errorf("%s model %+v seed %d: compiled %+v != legacy %+v", name, model, seed, compiled, legacy)
				}
			}
		}
	}
}

// Byte-identical estimates end to end: a Simulator in legacy mode and one in
// (default) dense mode must produce the same Estimate through the engine,
// sequentially and in parallel.
func TestMonteCarloCompiledMatchesLegacyEstimates(t *testing.T) {
	code := steane.NewCode()
	trials := 2*8192 + 777
	for name, p := range allProtocols(code) {
		dense := mustSimulator(t, p, DefaultModel())
		legacy := mustSimulator(t, p, DefaultModel())
		legacy.Sampling = SamplingLegacy
		for _, seed := range []int64{1, 7, 123} {
			want, err := legacy.MonteCarloEngine(context.Background(), engine.Sequential(), trials, seed)
			if err != nil {
				t.Fatal(err)
			}
			got, err := dense.MonteCarloEngine(context.Background(), engine.New(4), trials, seed)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("%s seed %d: compiled estimate %+v != legacy %+v", name, seed, got, want)
			}
		}
	}
}

// The sparse sampler is statistically exact: its estimate must agree with
// the dense path within 3 combined standard errors, and with the
// first-order oracle where first order dominates (the basic circuit).
func TestSparseSamplingMatchesDenseWithinStatistics(t *testing.T) {
	code := steane.NewCode()
	trials := 400000
	for name, p := range allProtocols(code) {
		dense := mustSimulator(t, p, DefaultModel())
		sparse := mustSimulator(t, p, DefaultModel())
		sparse.Sampling = SamplingSparse
		d := dense.MonteCarlo(trials, 11)
		s := sparse.MonteCarlo(trials, 11)
		for _, c := range []struct {
			what           string
			dv, sv, de, se float64
		}{
			{"uncorrectable", d.UncorrectableRate, s.UncorrectableRate, d.StdErr, s.StdErr},
			{"reject", d.RejectRate, s.RejectRate,
				stattest.BinomialSE(d.RejectRate, trials),
				stattest.BinomialSE(s.RejectRate, trials)},
		} {
			if err := stattest.Compatible(name+" "+c.what, c.sv, c.se, c.dv, c.de, 3); err != nil {
				t.Errorf("sparse vs dense %v", err)
			}
		}
	}
}

func TestSparseSamplingConsistentWithFirstOrder(t *testing.T) {
	// For the basic circuit single faults dominate, so the sparse Monte
	// Carlo must agree with the exact first-order enumeration the same way
	// the dense one does (tolerances as in
	// TestMonteCarloMatchesFirstOrderForBasic).
	code := steane.NewCode()
	s := mustSimulator(t, steane.BasicZeroProtocol(code), DefaultModel())
	s.Sampling = SamplingSparse
	fo := s.FirstOrder()
	mc := s.MonteCarlo(400000, 42)
	if err := stattest.CompatibleOneSided("basic uncorrectable", mc.UncorrectableRate, mc.StdErr,
		fo.UncorrectableRate, 4, 0.3); err != nil {
		t.Errorf("sparse vs first-order %v", err)
	}
}

// Sparse runs are deterministic for a seed and byte-identical across worker
// counts, like every other estimator.
func TestSparseSamplingDeterministicAndParallelSafe(t *testing.T) {
	code := steane.NewCode()
	s := mustSimulator(t, steane.VerifyAndCorrectProtocol(code), DefaultModel())
	s.Sampling = SamplingSparse
	trials := 2*8192 + 99
	seq, err := s.MonteCarloEngine(context.Background(), engine.Sequential(), trials, 5)
	if err != nil {
		t.Fatal(err)
	}
	par, err := s.MonteCarloEngine(context.Background(), engine.New(7), trials, 5)
	if err != nil {
		t.Fatal(err)
	}
	if seq != par {
		t.Errorf("sparse parallel %+v != sequential %+v", par, seq)
	}
}

// Sparse and dense must not share engine cache entries: same seed, same
// protocol, different sampling — the chunk keys must differ.
func TestSparseAndDenseUseDistinctJobKeys(t *testing.T) {
	code := steane.NewCode()
	eng := engine.New(1)
	dense := mustSimulator(t, steane.VerifyOnlyProtocol(code), DefaultModel())
	sparse := mustSimulator(t, steane.VerifyOnlyProtocol(code), DefaultModel())
	sparse.Sampling = SamplingSparse
	if _, err := dense.MonteCarloEngine(context.Background(), eng, 8192, 3); err != nil {
		t.Fatal(err)
	}
	hits0, _ := eng.CacheStats()
	if _, err := sparse.MonteCarloEngine(context.Background(), eng, 8192, 3); err != nil {
		t.Fatal(err)
	}
	hits1, _ := eng.CacheStats()
	if hits1 != hits0 {
		t.Errorf("sparse run hit the dense cache (%d -> %d hits); keys must differ", hits0, hits1)
	}
}

// Zero-fault sparse trials short-circuit to the precompiled clean outcome;
// with a zero-error model every trial does.
func TestSparseZeroErrorModelIsClean(t *testing.T) {
	code := steane.NewCode()
	zero := Model{GateError: 0, MoveError: 0, MovementOpsPerTwoQubitGate: 2}
	for name, p := range allProtocols(code) {
		s := mustSimulator(t, p, zero)
		s.Sampling = SamplingSparse
		est := s.MonteCarlo(500, 1)
		if est.UncorrectableRate != 0 || est.ResidualRate != 0 || est.RejectRate != 0 {
			t.Errorf("%s: sparse zero-error model produced non-zero rates: %+v", name, est)
		}
	}
}

// The compiled program's static location count must match the interpreter's
// enumeration, and each probability class must partition those locations.
func TestCompiledProgramLocationAccounting(t *testing.T) {
	code := steane.NewCode()
	for name, p := range allProtocols(code) {
		s := mustSimulator(t, p, DefaultModel())
		prog, _ := s.compiled()
		if prog.nStatic != s.locationCount() {
			t.Errorf("%s: compiled static locations = %d, want %d", name, prog.nStatic, s.locationCount())
		}
		if len(prog.locInstr) != prog.nStatic {
			t.Errorf("%s: locInstr table has %d entries, want %d", name, len(prog.locInstr), prog.nStatic)
		}
		classed := 0
		for _, c := range prog.classes {
			classed += len(c.locs)
			if !(c.prob > 0) {
				t.Errorf("%s: class with non-positive probability %v", name, c.prob)
			}
		}
		if classed != prog.nStatic {
			t.Errorf("%s: classes cover %d locations, want all %d (default model has no p=0 kinds)",
				name, classed, prog.nStatic)
		}
	}
}

// The dense trial loop is the hottest code in the repository and must not
// allocate: one allocation per trial was a measurable share of the legacy
// profile.
func TestRunDenseAllocations(t *testing.T) {
	code := steane.NewCode()
	s := mustSimulator(t, steane.VerifyAndCorrectProtocol(code), DefaultModel())
	prog, _ := s.compiled()
	var lf lfRand
	lf.capture(rand.New(rand.NewSource(1)))
	meas := make([]uint64, prog.measWords)
	allocs := testing.AllocsPerRun(200, func() {
		prog.runDense(&lf, meas)
	})
	if allocs != 0 {
		t.Fatalf("runDense allocations = %v per trial, want 0", allocs)
	}
}

// Fingerprints are computed once per simulator (they used to be re-derived
// from the full op list on every MonteCarloEngine call).
func TestProtocolFingerprintCached(t *testing.T) {
	code := steane.NewCode()
	s := mustSimulator(t, steane.VerifyOnlyProtocol(code), DefaultModel())
	_, fp1 := s.compiled()
	_, fp2 := s.compiled()
	if fp1 != fp2 || fp1 == "" {
		t.Fatalf("cached fingerprint unstable: %q vs %q", fp1, fp2)
	}
	if want := protocolFingerprint(s.Protocol); fp1 != want {
		t.Fatalf("cached fingerprint %q != direct %q", fp1, want)
	}
}
