package noise

import (
	"context"
	"math/rand"
	"testing"

	"speedofdata/internal/engine"
	"speedofdata/internal/noise/stattest"
	"speedofdata/internal/steane"
)

// The bit-sliced sampler is statistically exact: its estimate must agree
// with the dense path within 3 combined standard errors, for every protocol
// and at both physical and stress error rates.
func TestBitSlicedMatchesDenseWithinStatistics(t *testing.T) {
	code := steane.NewCode()
	trials := 400000
	for _, model := range []Model{
		DefaultModel(),
		{GateError: 1e-2, MoveError: 1e-3, MovementOpsPerTwoQubitGate: 2},
	} {
		for name, p := range allProtocols(code) {
			dense := mustSimulator(t, p, model)
			bs := mustSimulator(t, p, model)
			bs.Sampling = SamplingBitSliced
			d := dense.MonteCarlo(trials, 11)
			b := bs.MonteCarlo(trials, 11)
			for _, c := range []struct {
				what           string
				dv, sv, de, se float64
			}{
				{"uncorrectable", d.UncorrectableRate, b.UncorrectableRate, d.StdErr, b.StdErr},
				{"residual", d.ResidualRate, b.ResidualRate,
					stattest.BinomialSE(d.ResidualRate, trials), stattest.BinomialSE(b.ResidualRate, trials)},
				{"reject", d.RejectRate, b.RejectRate,
					stattest.BinomialSE(d.RejectRate, trials), stattest.BinomialSE(b.RejectRate, trials)},
			} {
				if err := stattest.Compatible(name+" "+c.what, c.sv, c.se, c.dv, c.de, 3); err != nil {
					t.Errorf("bitsliced vs dense %v", err)
				}
			}
		}
	}
}

// For the basic circuit single faults dominate, so bit-sliced Monte Carlo
// must also agree with the exact first-order enumeration (tolerances as in
// the dense and sparse oracle tests).
func TestBitSlicedConsistentWithFirstOrder(t *testing.T) {
	code := steane.NewCode()
	s := mustSimulator(t, steane.BasicZeroProtocol(code), DefaultModel())
	s.Sampling = SamplingBitSliced
	fo := s.FirstOrder()
	mc := s.MonteCarlo(400000, 42)
	if err := stattest.CompatibleOneSided("basic uncorrectable", mc.UncorrectableRate, mc.StdErr,
		fo.UncorrectableRate, 4, 0.3); err != nil {
		t.Errorf("bitsliced vs first-order %v", err)
	}
}

// Bit-sliced runs are deterministic for a seed and byte-identical across
// worker counts, like every other estimator — including with a ragged
// trial count that exercises both a short final chunk and a masked tail
// word inside it.
func TestBitSlicedDeterministicAndParallelSafe(t *testing.T) {
	code := steane.NewCode()
	s := mustSimulator(t, steane.VerifyAndCorrectProtocol(code), DefaultModel())
	s.Sampling = SamplingBitSliced
	trials := 2*8192 + 99
	seq, err := s.MonteCarloEngine(context.Background(), engine.Sequential(), trials, 5)
	if err != nil {
		t.Fatal(err)
	}
	par, err := s.MonteCarloEngine(context.Background(), engine.New(7), trials, 5)
	if err != nil {
		t.Fatal(err)
	}
	if seq != par {
		t.Errorf("bitsliced parallel %+v != sequential %+v", par, seq)
	}
}

// Every trial of a word lands in exactly one tally bucket, including the
// masked lanes of a ragged tail word.
func TestBitSlicedTrialConservation(t *testing.T) {
	code := steane.NewCode()
	for name, p := range allProtocols(code) {
		s := mustSimulator(t, p, Model{GateError: 0.2, MoveError: 0.05, MovementOpsPerTwoQubitGate: 2})
		s.Sampling = SamplingBitSliced
		prog, _ := s.compiled()
		for _, trials := range []int{1, 63, 64, 65, 1000} {
			c := prog.bitslicedChunk(rand.New(rand.NewSource(9)), trials)
			if c.Accepted+c.Rejected != trials {
				t.Errorf("%s trials=%d: accepted %d + rejected %d != trials", name, trials, c.Accepted, c.Rejected)
			}
			if c.Uncorrectable > c.Accepted || c.Residual > c.Accepted {
				t.Errorf("%s trials=%d: outcome counts exceed accepted: %+v", name, trials, c)
			}
		}
	}
}

// Bit-sliced chunks must not share engine cache entries with dense or
// sparse chunks of the same protocol and seed: the lane draw order is a
// different RNG stream.
func TestBitSlicedUsesDistinctJobKeys(t *testing.T) {
	code := steane.NewCode()
	eng := engine.New(1)
	for _, mode := range []Sampling{SamplingDense, SamplingSparse} {
		other := mustSimulator(t, steane.VerifyOnlyProtocol(code), DefaultModel())
		other.Sampling = mode
		if _, err := other.MonteCarloEngine(context.Background(), eng, 8192, 3); err != nil {
			t.Fatal(err)
		}
	}
	hits0, _ := eng.CacheStats()
	bs := mustSimulator(t, steane.VerifyOnlyProtocol(code), DefaultModel())
	bs.Sampling = SamplingBitSliced
	if _, err := bs.MonteCarloEngine(context.Background(), eng, 8192, 3); err != nil {
		t.Fatal(err)
	}
	hits1, _ := eng.CacheStats()
	if hits1 != hits0 {
		t.Errorf("bitsliced run hit another sampler's cache (%d -> %d hits); keys must differ", hits0, hits1)
	}
	// A second bit-sliced run must hit its own entries.
	if _, err := bs.MonteCarloEngine(context.Background(), eng, 8192, 3); err != nil {
		t.Fatal(err)
	}
	if hits2, _ := eng.CacheStats(); hits2 == hits1 {
		t.Errorf("repeated bitsliced run missed its own cache (%d hits unchanged)", hits1)
	}
}

// With a zero-error model every word short-circuits to the clean outcome.
func TestBitSlicedZeroErrorModelIsClean(t *testing.T) {
	code := steane.NewCode()
	zero := Model{GateError: 0, MoveError: 0, MovementOpsPerTwoQubitGate: 2}
	for name, p := range allProtocols(code) {
		s := mustSimulator(t, p, zero)
		s.Sampling = SamplingBitSliced
		est := s.MonteCarlo(500, 1)
		if est.UncorrectableRate != 0 || est.ResidualRate != 0 || est.RejectRate != 0 {
			t.Errorf("%s: bitsliced zero-error model produced non-zero rates: %+v", name, est)
		}
	}
}

// The word executor is the new hottest code and must not allocate: the
// chunk loop's only allocations are its one-time scratch buffers.
func TestBitSlicedWordAllocations(t *testing.T) {
	code := steane.NewCode()
	s := mustSimulator(t, steane.VerifyAndCorrectProtocol(code), DefaultModel())
	prog, _ := s.compiled()
	var lf lfRand
	lf.capture(rand.New(rand.NewSource(1)))
	var st wordState
	st.measLane = make([]uint64, prog.measWords*64)
	scratch := make([]wordFault, 0, 256)
	var c mcCounts
	allocs := testing.AllocsPerRun(200, func() {
		faults := prog.sampleWordFaults(&lf, scratch)
		if len(faults) == 0 {
			c.tallyN(prog.clean, 64)
			return
		}
		rejected := prog.runWord(&st, &lf, faults)
		prog.tallyWord(&st, rejected, ^uint64(0), &c)
	})
	if allocs != 0 {
		t.Fatalf("bit-sliced word executor allocations = %v per word, want 0", allocs)
	}
}
