// Package stattest centralizes the statistical acceptance checks the noise
// tests and benchmarks use to compare Monte Carlo estimators: two samplers
// of the same quantity must agree within a few combined standard errors.
//
// The API takes primitive floats (estimate value + standard error per side)
// so it can be used both by the noise package's own tests and by the
// repository-root benchmark report without importing noise.
package stattest

import (
	"fmt"
	"math"
)

// BinomialSE is the standard error of an observed proportion p over n
// trials.  It returns 0 for n <= 0.
func BinomialSE(p float64, n int) float64 {
	if n <= 0 {
		return 0
	}
	return math.Sqrt(p * (1 - p) / float64(n))
}

// Compatible checks that two estimates of the same quantity agree within
// `sigmas` combined standard errors: |v1-v2| <= sigmas*sqrt(se1²+se2²) (a
// small epsilon absorbs float noise when both estimates are exact zeros).
// It returns nil on agreement and a descriptive error on disagreement, so
// tests can t.Error it and benchmarks can count parity failures.
func Compatible(what string, v1, se1, v2, se2, sigmas float64) error {
	sigma := math.Sqrt(se1*se1 + se2*se2)
	if diff := math.Abs(v1 - v2); diff > sigmas*sigma+1e-12 {
		return fmt.Errorf("%s: %v vs %v differ by %v > %v sigma (%v)",
			what, v1, v2, diff, sigmas, sigmas*sigma)
	}
	return nil
}

// CompatibleOneSided checks an estimate against an exact reference value
// with an extra relative slack on the reference — the shape of the
// first-order-oracle comparisons, where the oracle deliberately omits
// higher-order terms: |mc-ref| <= sigmas*se + slack*|ref|.
func CompatibleOneSided(what string, mc, se, ref, sigmas, slack float64) error {
	tolerance := sigmas*se + slack*math.Abs(ref)
	if diff := math.Abs(mc - ref); diff > tolerance {
		return fmt.Errorf("%s: estimate %v ± %v vs reference %v differ by %v > tolerance %v",
			what, mc, se, ref, diff, tolerance)
	}
	return nil
}
