package noise

import (
	"sync/atomic"

	"speedofdata/internal/obs"
)

// trialCounts tallies Monte Carlo trials per sampling mode, indexed by the
// Sampling constants.  One atomic add per chunk (thousands of trials), read
// by func-backed registry series, so the executors themselves are untouched.
var trialCounts [4]atomic.Int64

// countTrials records a chunk's trials against its sampling mode.
func countTrials(mode Sampling, trials int) {
	if mode >= 0 && int(mode) < len(trialCounts) {
		trialCounts[mode].Add(int64(trials))
	}
}

// Instrument registers per-mode Monte Carlo trial counters with reg.
// Together with a scrape interval they give trials/sec per executor — the
// live view of the dense/sparse/bitsliced speedups the benchmarks measure
// offline.  Call once, before serving.
func Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	for _, mode := range []Sampling{SamplingDense, SamplingSparse, SamplingLegacy, SamplingBitSliced} {
		mode := mode
		reg.CounterFunc("qsd_noise_trials_total",
			"Monte Carlo trials executed, by sampling mode.",
			obs.Labels{"mode": mode.String()},
			func() float64 { return float64(trialCounts[mode].Load()) })
	}
}
