package noise

import (
	"math"
	"math/bits"
	"math/rand"

	"speedofdata/internal/steane"
)

// This file is the bit-sliced Monte Carlo executor (SamplingBitSliced): 64
// independent trials advance per uint64 word operation.  Each qubit's X/Z
// error state is a lane vector (bit l of x[q] is trial l's bit-flip on qubit
// q), so the Clifford frame transforms of the compiled trial program become
// word-parallel boolean algebra — H is a swap of the two planes, S is
// z ^= x, CX is x[t] ^= x[c]; z[c] ^= z[t] — and a whole word whose fault
// set is empty short-circuits to 64 precompiled clean outcomes, exactly like
// the dense fault-scan fast path but for 64 trials at once.
//
// Draw discipline (seed-stable, documented because it differs from dense):
//
//  1. Per 64-trial word the fault set is sampled first: probability classes
//     in compile order, geometric skips over the class's location-major ×
//     lane-minor slot grid (slot = locIdx*64 + lane), one Float64 draw per
//     skip — the exact distribution of a Bernoulli scan over 64·len(locs)
//     independent slots, without the per-slot draws.
//  2. Faulty locations are then visited in instruction order; each faulty
//     lane (ascending) draws one fault choice.  Single-choice kinds (prep,
//     measurement) need no choice draw: the lane mask is the injection.
//  3. Correction-gate faults draw one Bernoulli per applied correction
//     (dirty lanes ascending, block qubits ascending) plus a choice draw on
//     fault — the same conditional structure as the dense and sparse paths.
//
// Lane order therefore consumes the RNG stream differently from the dense
// location order: bit-sliced estimates are statistically — not byte —
// equivalent to dense, validated within 3σ of the dense sampler and the
// first-order oracle, and never share engine cache keys (the chunk key
// carries a "bitsliced" namespace, see Simulator.chunkKey).
//
// Lanes are fully independent, so a ragged tail word simply masks the tally
// to its first `trials mod 64` lanes; the word executor itself performs zero
// heap allocations (TestBitSlicedWordAllocations).

// wordFault is one faulty static location of a trial word and the lanes
// (trials) it faults in.
type wordFault struct {
	loc  int32
	mask uint64
}

// wordState is the lane-vector state of one 64-trial word.  The qubit
// planes are fixed-size (the simulator admits at most 64 qubits); measLane
// is chunk-owned scratch with one lane word per measurement id, the
// transpose of the dense path's bit-packed per-trial measurement words.
type wordState struct {
	x, z     [64]uint64
	measLane []uint64
}

// sampleWordFaults draws the fault set of one 64-trial word: for each
// probability class, geometric skips (⌊ln U / ln(1-p)⌋) jump between faulty
// slots of the location-major × lane-minor grid.  The result (reusing
// scratch) is sorted by location index with per-location lane masks
// coalesced; classes partition the locations, so no location appears twice
// after the merge.
func (p *trialProgram) sampleWordFaults(rng *lfRand, scratch []wordFault) []wordFault {
	out := scratch[:0]
	for ci := range p.classes {
		c := &p.classes[ci]
		if c.allFaulty {
			for _, loc := range c.locs {
				out = append(out, wordFault{loc: loc, mask: ^uint64(0)})
			}
			continue
		}
		slots := 64 * len(c.locs)
		pos := 0
		remaining := float64(slots)
		start := len(out)
		for {
			skip := math.Log(rng.Float64()) * c.invLogQ
			// NaN or +Inf skips (measure-zero draws) mean "no further fault".
			if !(skip < remaining) {
				break
			}
			pos += int(skip)
			loc := c.locs[pos>>6]
			bit := uint64(1) << (pos & 63)
			// Consecutive faulty slots of one location are adjacent: coalesce.
			if n := len(out); n > start && out[n-1].loc == loc {
				out[n-1].mask |= bit
			} else {
				out = append(out, wordFault{loc: loc, mask: bit})
			}
			pos++
			remaining = float64(slots - pos)
		}
	}
	// Classes emit sorted runs over disjoint locations; a tiny insertion
	// sort merges them (expected faults per word ~ 64·p·locations, single
	// digits at physical error rates).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].loc < out[j-1].loc; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// injectLanes draws one fault choice per set lane of mask (ascending) and
// injects it on qubit q.
func (p *trialProgram) injectLanes(st *wordState, rng *lfRand, kind, q uint8, mask uint64) {
	ch := choicesByKind[kind]
	for m := mask; m != 0; m &= m - 1 {
		b := m & -m
		f := ch[rng.intn(len(ch))]
		if f.First.HasX() {
			st.x[q] ^= b
		}
		if f.First.HasZ() {
			st.z[q] ^= b
		}
	}
}

// injectLanes2 is injectLanes for two-qubit locations: each faulty lane
// draws one of the six choices and deposits the First Pauli on q0 and the
// Second on q1.
func (p *trialProgram) injectLanes2(st *wordState, rng *lfRand, q0, q1 uint8, mask uint64) {
	ch := choicesByKind[LocTwoQubit]
	for m := mask; m != 0; m &= m - 1 {
		b := m & -m
		f := ch[rng.intn(len(ch))]
		if f.First.HasX() {
			st.x[q0] ^= b
		}
		if f.First.HasZ() {
			st.z[q0] ^= b
		}
		if f.Second.HasX() {
			st.x[q1] ^= b
		}
		if f.Second.HasZ() {
			st.z[q1] ^= b
		}
	}
}

// runWord executes one 64-trial word given its pre-sampled, non-empty fault
// set and returns the rejected-lane mask.  Execution starts at the first
// faulty instruction: before it every lane's frame is clean and every
// recorded measurement lane is zero, so the skipped prefix cannot affect
// any lane (the same argument as runSparse, applied per lane).
func (p *trialProgram) runWord(st *wordState, rng *lfRand, faults []wordFault) uint64 {
	for i := range st.x {
		st.x[i] = 0
		st.z[i] = 0
	}
	for i := range st.measLane {
		st.measLane[i] = 0
	}
	x, z := &st.x, &st.z
	meas := st.measLane
	var rejected uint64
	fi := 0
	ops := p.ops
	for ii := int(p.locInstr[faults[0].loc]); ii < len(ops); ii++ {
		in := &ops[ii]
		var fmask uint64
		if in.loc >= 0 && in.op != cMoveRun && fi < len(faults) && faults[fi].loc == in.loc {
			fmask = faults[fi].mask
			fi++
		}
		switch in.op {
		case cPrep:
			// The only prep fault is a bit flip, so the lane mask is the
			// injection itself: no choice draws.
			x[in.q0] = fmask
			z[in.q0] = 0
		case cHad:
			// H exchanges X and Z errors lane-wise.
			x[in.q0], z[in.q0] = z[in.q0], x[in.q0]
			if fmask != 0 {
				p.injectLanes(st, rng, uint8(LocOneQubit), in.q0, fmask)
			}
		case cPhaseS:
			// S maps X to Y: lanes with an X error gain a Z component.
			z[in.q0] ^= x[in.q0]
			if fmask != 0 {
				p.injectLanes(st, rng, uint8(LocOneQubit), in.q0, fmask)
			}
		case cInject:
			if fmask != 0 {
				p.injectLanes(st, rng, uint8(LocOneQubit), in.q0, fmask)
			}
		case cMoveRun:
			// Movement faults are matched by location index within the run,
			// injecting on the run's alternating operand.
			end := in.loc + int32(in.meas)
			for fi < len(faults) && faults[fi].loc < end {
				q := in.q0
				if (faults[fi].loc-in.loc)&1 == 1 {
					q = in.q1
				}
				p.injectLanes(st, rng, uint8(LocMove), q, faults[fi].mask)
				fi++
			}
		case cCX:
			// CX propagates X control->target and Z target->control.
			x[in.q1] ^= x[in.q0]
			z[in.q0] ^= z[in.q1]
			if fmask != 0 {
				p.injectLanes2(st, rng, in.q0, in.q1, fmask)
			}
		case cCZ:
			// CZ propagates X on either qubit into a Z on the other.  The
			// transform only writes Z planes, so both reads of the X planes
			// see pre-gate values, like the scalar executors.
			z[in.q1] ^= x[in.q0]
			z[in.q0] ^= x[in.q1]
			if fmask != 0 {
				p.injectLanes2(st, rng, in.q0, in.q1, fmask)
			}
		case cMeasZ, cMeasX:
			out := x[in.q0]
			if in.op == cMeasX {
				out = z[in.q0]
			}
			// A measurement fault flips the outcome on its lanes; no choice
			// draw (FlipOutcome is the single choice).
			meas[in.meas] = out ^ fmask
			// The measured qubit is recycled; its planes no longer matter.
			x[in.q0] = 0
			z[in.q0] = 0
		case cVerify:
			// Per-lane parity over the verified measurement set: XOR of the
			// lane words of every id in the mask.
			var par uint64
			for w, m := range p.verifyMasks[in.aux] {
				for ; m != 0; m &= m - 1 {
					par ^= meas[w<<6+bits.TrailingZeros64(m)]
				}
			}
			rejected |= par
		case cCorrectX, cCorrectZ:
			cd := &p.corrects[in.aux]
			// Only lanes with at least one flipped syndrome measurement can
			// receive a correction; the rest decode to pattern 0 (no-op).
			var dirty uint64
			for i := 0; i < steane.N; i++ {
				dirty |= meas[cd.meas[i]]
			}
			for d := dirty; d != 0; d &= d - 1 {
				lane := uint(bits.TrailingZeros64(d))
				b := uint64(1) << lane
				var pat uint8
				for i := 0; i < steane.N; i++ {
					pat |= uint8(meas[cd.meas[i]]>>lane&1) << i
				}
				corr := p.correction[pat]
				for i := 0; corr != 0 && i < steane.N; i++ {
					if corr>>i&1 == 0 {
						continue
					}
					q := cd.qubits[i]
					if in.op == cCorrectX {
						x[q] ^= b
					} else {
						z[q] ^= b
					}
					// The applied correction is itself a physical gate and
					// can fail — drawn Bernoulli on the fly, exactly like the
					// dense and sparse executors.
					if p.corrProb > 0 && rng.Float64() < p.corrProb {
						f := choicesByKind[LocOneQubit][rng.intn(len(choicesByKind[LocOneQubit]))]
						if f.First.HasX() {
							x[q] ^= b
						}
						if f.First.HasZ() {
							z[q] ^= b
						}
					}
				}
			}
		}
	}
	return rejected
}

// tallyWord decodes the active lanes of an executed word into c.  Accepted
// lanes whose output frame is clean are bulk-counted (their decode is the
// fault-free outcome, which carries no error flags); only lanes with a
// residual frame pay for the scalar outcome-table lookup.
func (p *trialProgram) tallyWord(st *wordState, rejected, active uint64, c *mcCounts) {
	c.Rejected += bits.OnesCount64(rejected & active)
	accepted := active &^ rejected
	c.Accepted += bits.OnesCount64(accepted)
	var any uint64
	for _, q := range p.output {
		any |= st.x[q] | st.z[q]
	}
	for d := any & accepted; d != 0; d &= d - 1 {
		lane := uint(bits.TrailingZeros64(d))
		var xOut, zOut int
		for i, q := range p.output {
			xOut |= int(st.x[q]>>lane&1) << i
			zOut |= int(st.z[q]>>lane&1) << i
		}
		f := p.outcome[xOut<<steane.N|zOut]
		if f&outUncorrectable != 0 {
			c.Uncorrectable++
		}
		if f&outResidual != 0 {
			c.Residual++
		}
	}
}

// bitslicedChunk runs `trials` bit-sliced trials in words of 64 lanes,
// continuing src's stream through lfRand, and tallies the outcomes.  The
// word plan depends only on the trial count, so parallel and sequential
// engine runs stay byte-identical; a ragged final word masks its tally to
// the first trials mod 64 lanes (lanes are independent, so the surplus
// lanes are simulated and discarded deterministically).
func (p *trialProgram) bitslicedChunk(src *rand.Rand, trials int) mcCounts {
	var lf lfRand
	lf.capture(src)
	var st wordState
	st.measLane = make([]uint64, p.measWords*64)
	var faultArr [32]wordFault
	scratch := faultArr[:0]
	var c mcCounts
	for done := 0; done < trials; done += 64 {
		active := ^uint64(0)
		if n := trials - done; n < 64 {
			active = uint64(1)<<uint(n) - 1
		}
		faults := p.sampleWordFaults(&lf, scratch)
		if cap(faults) > cap(scratch) {
			scratch = faults // a heavy word grew the buffer; keep it
		}
		if len(faults) == 0 {
			// Every lane of the word is fault-free: 64 (or the tail's worth
			// of) precompiled clean outcomes, no execution.
			c.tallyN(p.clean, bits.OnesCount64(active))
			continue
		}
		rejected := p.runWord(&st, &lf, faults)
		p.tallyWord(&st, rejected, active, &c)
	}
	return c
}
