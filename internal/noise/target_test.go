package noise

import (
	"context"
	"math"
	"testing"

	"speedofdata/internal/engine"
	"speedofdata/internal/noise/stattest"
	"speedofdata/internal/steane"
)

// highErrorModel is an error rate high enough that the 1e-2 relative
// half-width target is reachable well under the fixed DefaultTrials budget
// (the physical-rate protocols are rare-event estimates that need far more
// than 200k trials for that precision — see the k=0 caveat on
// MonteCarloTarget).
func highErrorModel() Model {
	return Model{GateError: 0.1, MoveError: 1e-3, MovementOpsPerTwoQubitGate: 6}
}

// The acceptance-criteria scenario: sequential sampling reaches the 1e-2
// relative half-width with fewer trials than the fixed default, streaming
// at least 3 refining partials, and the converged estimate agrees with a
// fixed-budget run of the same executor.
func TestMonteCarloTargetConvergesUnderFixedDefault(t *testing.T) {
	code := steane.NewCode()
	s := mustSimulator(t, steane.BasicZeroProtocol(code), highErrorModel())
	s.Sampling = SamplingBitSliced
	var partials []Partial
	est, converged, err := s.MonteCarloTarget(context.Background(), nil,
		Target{Epsilon: 0.01, Confidence: 0.9, MaxTrials: DefaultTrials}, 7,
		func(p Partial) { partials = append(partials, p) })
	if err != nil {
		t.Fatal(err)
	}
	if !converged {
		t.Fatalf("target run did not converge within %d trials (final %+v)", DefaultTrials, est)
	}
	if est.Trials >= DefaultTrials {
		t.Errorf("target run used %d trials, want fewer than the fixed default %d", est.Trials, DefaultTrials)
	}
	if len(partials) < 3 {
		t.Errorf("target run streamed %d partials, want at least 3 refinements", len(partials))
	}
	for i, p := range partials {
		if p.Seq != i+1 {
			t.Errorf("partial %d has Seq %d, want %d", i, p.Seq, i+1)
		}
		if i > 0 && p.Estimate.Trials <= partials[i-1].Estimate.Trials {
			t.Errorf("partial %d trials %d did not refine past %d", i, p.Estimate.Trials, partials[i-1].Estimate.Trials)
		}
		if wantDone := i == len(partials)-1; p.Done != wantDone {
			t.Errorf("partial %d Done = %v, want %v", i, p.Done, wantDone)
		}
	}
	last := partials[len(partials)-1]
	if last.Relative > 0.01 || last.Estimate != est {
		t.Errorf("terminal partial %+v does not carry the converged estimate %+v", last, est)
	}
	// Same executor, fixed budget: the sequential estimate is the same
	// statistical quantity.
	fixed := mustSimulator(t, steane.BasicZeroProtocol(code), highErrorModel())
	fixed.Sampling = SamplingBitSliced
	f := fixed.MonteCarlo(DefaultTrials, 7)
	if err := stattest.Compatible("target vs fixed uncorrectable",
		est.UncorrectableRate, est.StdErr, f.UncorrectableRate, f.StdErr, 3); err != nil {
		t.Error(err)
	}
}

// While no uncorrectable outcome has been observed the Wilson relative
// half-width is exactly 1, so the run must not converge — it spends the
// full cap and reports converged = false.
func TestMonteCarloTargetRunsToCapOnRareEvents(t *testing.T) {
	code := steane.NewCode()
	zero := Model{GateError: 0, MoveError: 0, MovementOpsPerTwoQubitGate: 2}
	s := mustSimulator(t, steane.VerifyAndCorrectProtocol(code), zero)
	s.Sampling = SamplingBitSliced
	cap := 3 * mcChunkTrials
	var last Partial
	est, converged, err := s.MonteCarloTarget(context.Background(), nil,
		Target{Epsilon: 0.01, MaxTrials: cap}, 1, func(p Partial) { last = p })
	if err != nil {
		t.Fatal(err)
	}
	if converged {
		t.Error("zero-event run reported convergence")
	}
	if est.Trials != cap {
		t.Errorf("capped run used %d trials, want the full cap %d", est.Trials, cap)
	}
	if !last.Done || last.Relative != 1 {
		t.Errorf("terminal partial %+v: want Done with relative half-width exactly 1", last)
	}
}

// The stopping decision acts on merged batch tallies, so the converged
// estimate and trial count are byte-identical across worker counts.
func TestMonteCarloTargetDeterministicAcrossWorkers(t *testing.T) {
	code := steane.NewCode()
	tgt := Target{Epsilon: 0.05, Confidence: 0.9, MaxTrials: DefaultTrials}
	run := func(eng *engine.Engine) (Estimate, bool) {
		s := mustSimulator(t, steane.BasicZeroProtocol(code), highErrorModel())
		s.Sampling = SamplingBitSliced
		est, conv, err := s.MonteCarloTarget(context.Background(), eng, tgt, 13, nil)
		if err != nil {
			t.Fatal(err)
		}
		return est, conv
	}
	seqEst, seqConv := run(engine.Sequential())
	parEst, parConv := run(engine.New(7))
	if seqEst != parEst || seqConv != parConv {
		t.Errorf("parallel target run (%+v, %v) != sequential (%+v, %v)", parEst, parConv, seqEst, seqConv)
	}
}

// Target batches are keyed exactly like fixed-trial chunks, so a sequential
// run pre-populates the cache a later fixed run reuses (and vice versa).
func TestMonteCarloTargetSharesChunkCacheWithFixedRun(t *testing.T) {
	code := steane.NewCode()
	eng := engine.New(2)
	s := mustSimulator(t, steane.BasicZeroProtocol(code), highErrorModel())
	s.Sampling = SamplingBitSliced
	est, _, err := s.MonteCarloTarget(context.Background(), eng,
		Target{Epsilon: 0.05, Confidence: 0.9, MaxTrials: DefaultTrials}, 21, nil)
	if err != nil {
		t.Fatal(err)
	}
	hits0, _ := eng.CacheStats()
	fixed, err := s.MonteCarloEngine(context.Background(), eng, est.Trials, 21)
	if err != nil {
		t.Fatal(err)
	}
	hits1, _ := eng.CacheStats()
	if got, want := hits1-hits0, (est.Trials+mcChunkTrials-1)/mcChunkTrials; got != want {
		t.Errorf("fixed run after target run hit %d cached chunks, want all %d", got, want)
	}
	if fixed != est {
		t.Errorf("fixed run over the same trials %+v != target estimate %+v", fixed, est)
	}
}

func TestTargetValidation(t *testing.T) {
	code := steane.NewCode()
	s := mustSimulator(t, steane.BasicZeroProtocol(code), DefaultModel())
	for _, tgt := range []Target{
		{Epsilon: 0, MaxTrials: 100},
		{Epsilon: 1, MaxTrials: 100},
		{Epsilon: -0.1, MaxTrials: 100},
		{Epsilon: 0.1, Confidence: 1.5, MaxTrials: 100},
		{Epsilon: 0.1, Confidence: -0.5, MaxTrials: 100},
		{Epsilon: 0.1, MaxTrials: 0},
	} {
		if _, _, err := s.MonteCarloTarget(context.Background(), nil, tgt, 1, nil); err == nil {
			t.Errorf("target %+v: want validation error, got nil", tgt)
		}
	}
}

// Wilson interval sanity: k = 0 gives half == center exactly (relative
// half-width 1), and large-n intervals approach the Wald interval.
func TestWilsonInterval(t *testing.T) {
	z := normalQuantile(0.975)
	if math.Abs(z-1.959964) > 1e-5 {
		t.Errorf("normalQuantile(0.975) = %v, want 1.959964", z)
	}
	center, half := wilson(0, 100000, z)
	if center <= 0 || math.Abs(half-center) > 1e-15 {
		t.Errorf("wilson(0, n): center %v half %v, want half == center > 0", center, half)
	}
	center, half = wilson(50000, 100000, z)
	wald := z * stattest.BinomialSE(0.5, 100000)
	if math.Abs(center-0.5) > 1e-6 || math.Abs(half-wald)/wald > 1e-4 {
		t.Errorf("wilson(n/2, n): center %v half %v, want ~0.5 and ~Wald %v", center, half, wald)
	}
	if c, h := wilson(0, 0, z); c != 0 || h != 0 {
		t.Errorf("wilson(0, 0) = %v, %v, want zeros", c, h)
	}
}
