package fowler

import (
	"fmt"
	"math"
	"sort"
)

// Sequence is an H/T gate string (most significant gate applied last), the
// output of the approximation search.
type Sequence struct {
	// Gates is the gate string using 'H' and 'T' characters, applied left to
	// right.
	Gates string
	// Matrix is the product of the gates.
	Matrix Unitary
	// Error is the distance to the target unitary.
	Error float64
}

// Len returns the number of gates in the sequence.
func (s Sequence) Len() int { return len(s.Gates) }

// TCount returns the number of T gates (the expensive, π/8-ancilla-consuming
// gates) in the sequence.
func (s Sequence) TCount() int {
	n := 0
	for _, c := range s.Gates {
		if c == 'T' {
			n++
		}
	}
	return n
}

// Searcher enumerates products of H and T gates breadth-first, deduplicating
// states up to global phase, and answers closest-approximation queries.  The
// state space is the paper's "exhaustively search all permutations of T and H
// gates to find a minimum length sequence" (Section 2.5), bounded by MaxGates
// because the group is infinite.
type Searcher struct {
	// MaxGates bounds the sequence length explored.
	MaxGates int
	// MaxStates bounds memory; enumeration stops early if reached.
	MaxStates int

	states []Sequence
	built  bool
}

// NewSearcher returns a searcher with the given gate-count bound.
func NewSearcher(maxGates int) *Searcher {
	if maxGates < 1 {
		panic("fowler: maxGates must be positive")
	}
	return &Searcher{MaxGates: maxGates, MaxStates: 400000}
}

// Build enumerates the reachable states.  It is called automatically by
// Approximate but may be invoked eagerly (e.g. by benchmarks).
func (s *Searcher) Build() {
	if s.built {
		return
	}
	s.built = true
	h, t := HGate(), TGate()
	type node struct {
		seq Sequence
	}
	seen := make(map[[8]int64]bool)
	start := Sequence{Gates: "", Matrix: Identity()}
	seen[canonicalKey(start.Matrix)] = true
	frontier := []node{{seq: start}}
	s.states = append(s.states, start)

	for depth := 0; depth < s.MaxGates && len(s.states) < s.MaxStates; depth++ {
		var next []node
		for _, n := range frontier {
			for _, g := range []struct {
				name rune
				m    Unitary
			}{{'H', h}, {'T', t}} {
				// Prune trivial redundancies: HH = I and TTTTTTTT = I (up to
				// phase), so never follow an H with an H and never emit more
				// than seven consecutive T gates.
				gl := len(n.seq.Gates)
				if g.name == 'H' && gl > 0 && n.seq.Gates[gl-1] == 'H' {
					continue
				}
				if g.name == 'T' && gl >= 7 && allT(n.seq.Gates[gl-7:]) {
					continue
				}
				m := Mul(g.m, n.seq.Matrix)
				key := canonicalKey(m)
				if seen[key] {
					continue
				}
				seen[key] = true
				ns := Sequence{Gates: n.seq.Gates + string(g.name), Matrix: m}
				s.states = append(s.states, ns)
				next = append(next, node{seq: ns})
				if len(s.states) >= s.MaxStates {
					break
				}
			}
			if len(s.states) >= s.MaxStates {
				break
			}
		}
		frontier = next
	}
}

func allT(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != 'T' {
			return false
		}
	}
	return true
}

// StateCount returns the number of distinct states enumerated.
func (s *Searcher) StateCount() int {
	s.Build()
	return len(s.states)
}

// Approximate returns the shortest enumerated H/T sequence within eps of the
// target, or, if none reaches eps, the closest sequence found (with its
// achieved error).  The boolean reports whether eps was met.
func (s *Searcher) Approximate(target Unitary, eps float64) (Sequence, bool) {
	s.Build()
	best := Sequence{Error: math.Inf(1)}
	bestWithin := Sequence{Error: math.Inf(1)}
	foundWithin := false
	for _, st := range s.states {
		d := Distance(st.Matrix, target)
		if d < best.Error || (d == best.Error && len(st.Gates) < len(best.Gates)) {
			best = st
			best.Error = d
		}
		if d <= eps {
			if !foundWithin || len(st.Gates) < len(bestWithin.Gates) ||
				(len(st.Gates) == len(bestWithin.Gates) && d < bestWithin.Error) {
				bestWithin = st
				bestWithin.Error = d
				foundWithin = true
			}
		}
	}
	if foundWithin {
		return bestWithin, true
	}
	return best, false
}

// ApproximateRz is a convenience wrapper targeting the π/2^k rotation.
func (s *Searcher) ApproximateRz(k int, eps float64) (Sequence, bool) {
	return s.Approximate(RzPiOver2k(k), eps)
}

// LengthModel is a calibrated log-linear model for the H/T sequence length
// needed to reach a given precision: length ≈ A + B·ln(1/eps).  Fowler's
// exhaustive search exhibits this scaling; the model lets benchmark circuit
// generators cost rotations whose precision is beyond direct enumeration.
type LengthModel struct {
	A, B float64
	// CalibrationPoints records the (error, length) pairs used for the fit.
	CalibrationPoints int
}

// CalibrateLengthModel fits the model from the Pareto frontier (best error
// per sequence length) of the searcher's state space against a set of target
// rotations.
func (s *Searcher) CalibrateLengthModel(targets []Unitary) (LengthModel, error) {
	s.Build()
	if len(targets) == 0 {
		return LengthModel{}, fmt.Errorf("fowler: no calibration targets")
	}
	// For each target, compute best error achievable at each length.
	type point struct{ lnInvErr, length float64 }
	var pts []point
	for _, target := range targets {
		bestByLen := map[int]float64{}
		for _, st := range s.states {
			d := Distance(st.Matrix, target)
			l := len(st.Gates)
			if cur, ok := bestByLen[l]; !ok || d < cur {
				bestByLen[l] = d
			}
		}
		// Keep only lengths that improve on all shorter lengths (the Pareto
		// frontier), ignoring exact hits (log blows up).
		lengths := make([]int, 0, len(bestByLen))
		for l := range bestByLen {
			lengths = append(lengths, l)
		}
		sort.Ints(lengths)
		bestSoFar := math.Inf(1)
		for _, l := range lengths {
			e := bestByLen[l]
			// Skip the trivial empty sequence and exact hits (log blows up);
			// only frontier points where extra gates bought extra precision
			// carry information about the scaling.
			if l >= 1 && e < bestSoFar && e > 1e-12 {
				bestSoFar = e
				pts = append(pts, point{lnInvErr: math.Log(1 / e), length: float64(l)})
			}
		}
	}
	if len(pts) < 2 {
		return LengthModel{}, fmt.Errorf("fowler: not enough calibration points (%d)", len(pts))
	}
	// Least squares fit length = A + B*lnInvErr.
	var sx, sy, sxx, sxy float64
	for _, p := range pts {
		sx += p.lnInvErr
		sy += p.length
		sxx += p.lnInvErr * p.lnInvErr
		sxy += p.lnInvErr * p.length
	}
	n := float64(len(pts))
	denom := n*sxx - sx*sx
	if math.Abs(denom) < 1e-12 {
		return LengthModel{}, fmt.Errorf("fowler: degenerate calibration data")
	}
	b := (n*sxy - sx*sy) / denom
	a := (sy - b*sx) / n
	return LengthModel{A: a, B: b, CalibrationPoints: len(pts)}, nil
}

// Length returns the estimated sequence length for a target precision.
func (m LengthModel) Length(eps float64) int {
	if eps <= 0 {
		panic("fowler: eps must be positive")
	}
	l := m.A + m.B*math.Log(1/eps)
	if l < 1 {
		l = 1
	}
	return int(math.Ceil(l))
}

// DefaultLengthModel returns a conservative model consistent with Fowler's
// reported results (sequences of a few dozen gates for 1e-4 precision) used
// when no calibration has been run.
func DefaultLengthModel() LengthModel {
	return LengthModel{A: 2.0, B: 4.5}
}

// CascadeStats analyses the exact fault-tolerant π/2^k cascade of Figure 6:
// with dedicated π/2^i ancilla factories for i = 3..k, the construction uses
// k-2 CX and X gates in the worst case, and on the data's critical path the
// expected number of CX gates is sum_{i=0}^{k-3} 1/2^i (each measurement has
// an equal chance of terminating the cascade early) with one fewer X gate.
type CascadeStats struct {
	K int
	// AncillaFactories is the number of distinct π/2^i factories required.
	AncillaFactories int
	// WorstCaseCX and WorstCaseX are the gate counts if every measurement
	// comes out "wrong".
	WorstCaseCX, WorstCaseX int
	// ExpectedCX and ExpectedX are the expected data-critical-path gate
	// counts.
	ExpectedCX, ExpectedX float64
}

// Cascade returns the Figure 6 statistics for a π/2^k rotation (k >= 3).
func Cascade(k int) (CascadeStats, error) {
	if k < 3 {
		return CascadeStats{}, fmt.Errorf("fowler: cascade requires k >= 3 (π/8 and larger are native), got %d", k)
	}
	stats := CascadeStats{
		K:                k,
		AncillaFactories: k - 2,
		WorstCaseCX:      k - 2,
		WorstCaseX:       k - 3,
	}
	for i := 0; i <= k-3; i++ {
		stats.ExpectedCX += 1 / math.Pow(2, float64(i))
	}
	stats.ExpectedX = stats.ExpectedCX - 1
	if stats.ExpectedX < 0 {
		stats.ExpectedX = 0
	}
	return stats, nil
}
