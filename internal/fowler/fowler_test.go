package fowler

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBasicGatesAreUnitary(t *testing.T) {
	gates := map[string]Unitary{
		"I": Identity(), "H": HGate(), "T": TGate(), "S": SGate(),
		"X": XGate(), "Z": ZGate(), "Rz(0.3)": Rz(0.3), "Rz(pi/16)": RzPiOver2k(4),
	}
	for name, g := range gates {
		if !IsUnitary(g, 1e-12) {
			t.Errorf("%s is not unitary", name)
		}
	}
}

func TestGateAlgebra(t *testing.T) {
	// H^2 = I, T^2 = S, S^2 = Z, T^8 = I (up to phase), HZH = X.
	if d := Distance(Mul(HGate(), HGate()), Identity()); d > 1e-9 {
		t.Errorf("H^2 != I (distance %v)", d)
	}
	if d := Distance(Mul(TGate(), TGate()), SGate()); d > 1e-9 {
		t.Errorf("T^2 != S (distance %v)", d)
	}
	if d := Distance(Mul(SGate(), SGate()), ZGate()); d > 1e-9 {
		t.Errorf("S^2 != Z (distance %v)", d)
	}
	t8 := Identity()
	for i := 0; i < 8; i++ {
		t8 = Mul(TGate(), t8)
	}
	if d := Distance(t8, Identity()); d > 1e-9 {
		t.Errorf("T^8 != I up to phase (distance %v)", d)
	}
	hzh := Mul(HGate(), Mul(ZGate(), HGate()))
	if d := Distance(hzh, XGate()); d > 1e-9 {
		t.Errorf("HZH != X (distance %v)", d)
	}
}

func TestRzPiOver2kMatchesT(t *testing.T) {
	// π/2^3 = π/8 rotation is exactly the T gate.
	if d := Distance(RzPiOver2k(3), TGate()); d > 1e-12 {
		t.Errorf("Rz(π/8) != T (distance %v)", d)
	}
	// π/2^2 is the S gate, π/2^1 is Z.
	if d := Distance(RzPiOver2k(2), SGate()); d > 1e-12 {
		t.Errorf("Rz(π/4) != S (distance %v)", d)
	}
	if d := Distance(RzPiOver2k(1), ZGate()); d > 1e-12 {
		t.Errorf("Rz(π/2) != Z (distance %v)", d)
	}
}

func TestRzPanicsOnNegativeK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	RzPiOver2k(-1)
}

func TestDistanceProperties(t *testing.T) {
	if d := Distance(HGate(), HGate()); d > 1e-12 {
		t.Errorf("distance to self = %v", d)
	}
	// Global phase invariance.
	phased := HGate()
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			phased[i][j] *= complex(0, 1)
		}
	}
	if d := Distance(HGate(), phased); d > 1e-9 {
		t.Errorf("distance should ignore global phase, got %v", d)
	}
	// Distinct gates have positive distance, symmetric.
	d1 := Distance(HGate(), TGate())
	d2 := Distance(TGate(), HGate())
	if d1 < 1e-3 {
		t.Errorf("H and T should be far apart, distance %v", d1)
	}
	if math.Abs(d1-d2) > 1e-12 {
		t.Errorf("distance not symmetric: %v vs %v", d1, d2)
	}
}

// Property: products of unitaries are unitary and distance is bounded by 1.
func TestUnitaryClosureProperty(t *testing.T) {
	gates := []Unitary{HGate(), TGate(), SGate(), XGate(), ZGate()}
	f := func(seq []uint8) bool {
		m := Identity()
		for _, g := range seq {
			m = Mul(gates[int(g)%len(gates)], m)
		}
		if !IsUnitary(m, 1e-9) {
			return false
		}
		d := Distance(m, Identity())
		return d >= 0 && d <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func newTestSearcher() *Searcher {
	s := NewSearcher(10)
	s.MaxStates = 60000
	return s
}

func TestSearcherFindsExactCliffordTargets(t *testing.T) {
	s := newTestSearcher()
	// T itself must be found as the single-gate sequence.
	seq, ok := s.ApproximateRz(3, 1e-9)
	if !ok {
		t.Fatal("searcher failed to find T for Rz(π/8)")
	}
	if seq.Gates != "T" {
		t.Errorf("Rz(π/8) sequence = %q, want \"T\"", seq.Gates)
	}
	// S = TT.
	seq, ok = s.ApproximateRz(2, 1e-9)
	if !ok || seq.Len() != 2 || seq.TCount() != 2 {
		t.Errorf("Rz(π/4) sequence = %+v, want two T gates", seq)
	}
	// X = HTTTTH (H Z H).
	seqX, ok := s.Approximate(XGate(), 1e-9)
	if !ok {
		t.Fatal("searcher failed to find X")
	}
	if d := Distance(seqX.Matrix, XGate()); d > 1e-9 {
		t.Errorf("X sequence has error %v", d)
	}
}

func TestSearcherApproximatesSmallRotation(t *testing.T) {
	s := newTestSearcher()
	// π/16 is not exactly representable with H/T; the searcher must return
	// its best approximation and report whether the tolerance was met.
	seq, ok := s.ApproximateRz(4, 0.5)
	if !ok {
		t.Fatalf("no approximation within 0.5 found (best error %v)", seq.Error)
	}
	if seq.Error > 0.5 {
		t.Errorf("returned sequence error %v exceeds tolerance", seq.Error)
	}
	// Asking for an impossible precision must return ok=false with the best
	// effort sequence.
	best, ok := s.ApproximateRz(10, 1e-12)
	if ok {
		t.Error("1e-12 precision should not be reachable with 10 gates")
	}
	if best.Error <= 0 || best.Error > 1 {
		t.Errorf("best-effort error %v out of range", best.Error)
	}
}

func TestSearcherSequenceMatricesConsistent(t *testing.T) {
	s := newTestSearcher()
	s.Build()
	if s.StateCount() < 100 {
		t.Fatalf("searcher enumerated only %d states", s.StateCount())
	}
	// Spot check: rebuild each sequence's matrix from its gate string.
	checked := 0
	for _, st := range s.states {
		if st.Len() > 6 {
			continue
		}
		m := Identity()
		for _, c := range st.Gates {
			switch c {
			case 'H':
				m = Mul(HGate(), m)
			case 'T':
				m = Mul(TGate(), m)
			}
		}
		if d := Distance(m, st.Matrix); d > 1e-9 {
			t.Fatalf("sequence %q matrix mismatch (distance %v)", st.Gates, d)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no sequences checked")
	}
}

func TestCalibrateLengthModel(t *testing.T) {
	s := NewSearcher(12)
	s.MaxStates = 120000
	// Calibrate against rotations far from any Clifford so the searcher has
	// to trade gates for precision.
	targets := []Unitary{Rz(0.7), Rz(1.1), Rz(2.0)}
	m, err := s.CalibrateLengthModel(targets)
	if err != nil {
		t.Fatal(err)
	}
	if m.B <= 0 {
		t.Errorf("length model slope %v should be positive (more precision needs more gates)", m.B)
	}
	if m.CalibrationPoints < 3 {
		t.Errorf("too few calibration points: %d", m.CalibrationPoints)
	}
	// Lengths must be monotone in precision.
	if m.Length(1e-2) > m.Length(1e-4) {
		t.Error("higher precision should not need fewer gates")
	}
	if m.Length(1e-4) < 4 {
		t.Errorf("1e-4 precision estimated at %d gates; implausibly small", m.Length(1e-4))
	}
}

func TestCalibrateLengthModelErrors(t *testing.T) {
	s := newTestSearcher()
	if _, err := s.CalibrateLengthModel(nil); err == nil {
		t.Error("calibration with no targets should fail")
	}
}

func TestDefaultLengthModel(t *testing.T) {
	m := DefaultLengthModel()
	l4 := m.Length(1e-4)
	if l4 < 20 || l4 > 80 {
		t.Errorf("default model length for 1e-4 = %d, expected a few dozen gates", l4)
	}
	if m.Length(1e-2) >= l4 {
		t.Error("default model should be monotone in precision")
	}
}

func TestLengthModelPanicsOnBadEps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for eps <= 0")
		}
	}()
	DefaultLengthModel().Length(0)
}

func TestCascade(t *testing.T) {
	if _, err := Cascade(2); err == nil {
		t.Error("cascade for k < 3 should fail")
	}
	c, err := Cascade(3)
	if err != nil {
		t.Fatal(err)
	}
	if c.AncillaFactories != 1 || c.WorstCaseCX != 1 || c.ExpectedCX != 1 {
		t.Errorf("k=3 cascade = %+v", c)
	}
	c5, err := Cascade(5)
	if err != nil {
		t.Fatal(err)
	}
	if c5.AncillaFactories != 3 || c5.WorstCaseCX != 3 || c5.WorstCaseX != 2 {
		t.Errorf("k=5 cascade = %+v", c5)
	}
	// Expected CX = 1 + 1/2 + 1/4 = 1.75 for k=5.
	if math.Abs(c5.ExpectedCX-1.75) > 1e-12 {
		t.Errorf("k=5 expected CX = %v, want 1.75", c5.ExpectedCX)
	}
	if math.Abs(c5.ExpectedX-0.75) > 1e-12 {
		t.Errorf("k=5 expected X = %v, want 0.75", c5.ExpectedX)
	}
	// The expected critical path approaches 2 CX gates as k grows (Section 4.4.2).
	c20, err := Cascade(20)
	if err != nil {
		t.Fatal(err)
	}
	if c20.ExpectedCX < 1.99 || c20.ExpectedCX > 2.0 {
		t.Errorf("k=20 expected CX = %v, want approaching 2", c20.ExpectedCX)
	}
}

func TestSequenceTCount(t *testing.T) {
	s := Sequence{Gates: "HTHTTH"}
	if s.TCount() != 3 {
		t.Errorf("TCount = %d, want 3", s.TCount())
	}
	if s.Len() != 6 {
		t.Errorf("Len = %d, want 6", s.Len())
	}
}

func TestNewSearcherPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive maxGates")
		}
	}()
	NewSearcher(0)
}

// Edge cases: searches whose enumerated state space offers no candidate
// within the requested precision, and degenerate searcher bounds.
func TestSearcherWithNoCandidateWithinEps(t *testing.T) {
	// MaxStates=1 stops enumeration at the identity: the only candidate.
	s := NewSearcher(3)
	s.MaxStates = 1
	seq, within := s.ApproximateRz(4, 1e-6)
	if within {
		t.Error("the identity alone cannot approximate Rz(pi/16) to 1e-6")
	}
	if seq.Len() != 0 {
		t.Errorf("closest candidate should be the empty sequence, got %q", seq.Gates)
	}
	if seq.Error <= 0 {
		t.Errorf("the fallback candidate must report its achieved error, got %v", seq.Error)
	}
	if s.StateCount() != 1 {
		t.Errorf("state count = %d, want 1", s.StateCount())
	}
}

func TestSearcherUnreachablePrecisionReturnsClosest(t *testing.T) {
	// A tiny gate budget cannot reach 1e-9 for a generic rotation; the
	// search must fall back to its best candidate rather than fail.
	s := NewSearcher(2)
	seq, within := s.ApproximateRz(5, 1e-9)
	if within {
		t.Error("a 2-gate budget should not reach 1e-9 precision")
	}
	if seq.Error <= 0 || seq.Error > 2 {
		t.Errorf("achieved error %v outside the unitary distance range", seq.Error)
	}
	// The reported matrix must be consistent with the reported gate string.
	m := Identity()
	for _, g := range seq.Gates {
		switch g {
		case 'H':
			m = Mul(HGate(), m)
		case 'T':
			m = Mul(TGate(), m)
		}
	}
	if d := Distance(m, seq.Matrix); d > 1e-12 {
		t.Errorf("sequence matrix inconsistent with gate string: distance %v", d)
	}
}

func TestEmptySequenceCounts(t *testing.T) {
	var seq Sequence
	if seq.Len() != 0 || seq.TCount() != 0 {
		t.Errorf("empty sequence counts = %d/%d, want 0/0", seq.Len(), seq.TCount())
	}
}
