// Package fowler implements the fault-tolerant small-angle rotation machinery
// of Section 2.5: exhaustive search over H/T gate sequences approximating
// π/2^k rotations (Fowler's technique, reference [14] of the paper), a
// calibrated sequence-length model for precisions beyond direct search, and
// the analysis of the exact recursive π/2^k cascade of Figure 6.
package fowler

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Unitary is a 2x2 complex matrix acting on a single qubit.
type Unitary [2][2]complex128

// Identity returns the identity gate.
func Identity() Unitary {
	return Unitary{{1, 0}, {0, 1}}
}

// HGate returns the Hadamard gate.
func HGate() Unitary {
	s := complex(1/math.Sqrt2, 0)
	return Unitary{{s, s}, {s, -s}}
}

// TGate returns the π/8 gate: diag(1, exp(iπ/4)).
func TGate() Unitary {
	return Unitary{{1, 0}, {0, cmplx.Exp(complex(0, math.Pi/4))}}
}

// SGate returns the phase gate: diag(1, i).
func SGate() Unitary {
	return Unitary{{1, 0}, {0, complex(0, 1)}}
}

// XGate returns the Pauli X gate.
func XGate() Unitary {
	return Unitary{{0, 1}, {1, 0}}
}

// ZGate returns the Pauli Z gate.
func ZGate() Unitary {
	return Unitary{{1, 0}, {0, -1}}
}

// Rz returns a rotation about the Z axis by angle theta:
// diag(1, exp(i·theta)) up to global phase — the controlled-phase convention
// used by the QFT decomposition in Section 2.5.
func Rz(theta float64) Unitary {
	return Unitary{{1, 0}, {0, cmplx.Exp(complex(0, theta))}}
}

// RzPiOver2k returns the "π/2^k gate" in the paper's nomenclature, where the
// π/8 gate (k = 3) is the T gate, k = 2 is the phase gate S and k = 1 is Z.
// In the diag(1, e^{iθ}) convention this is a relative phase of π/2^(k-1):
// the gate named for the angle ±π/2^k that appears in its traceless form.
func RzPiOver2k(k int) Unitary {
	if k < 1 {
		panic(fmt.Sprintf("fowler: k must be >= 1, got %d", k))
	}
	return Rz(math.Pi / math.Pow(2, float64(k-1)))
}

// Mul returns the matrix product a·b (apply b first, then a).
func Mul(a, b Unitary) Unitary {
	var out Unitary
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			out[i][j] = a[i][0]*b[0][j] + a[i][1]*b[1][j]
		}
	}
	return out
}

// Dagger returns the conjugate transpose.
func Dagger(a Unitary) Unitary {
	var out Unitary
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			out[i][j] = cmplx.Conj(a[j][i])
		}
	}
	return out
}

// Distance returns a global-phase-invariant distance between two unitaries:
// sqrt(1 - |tr(a†b)|/2), which is zero exactly when a and b agree up to a
// global phase and grows to one for orthogonal operations.  This is the
// metric Fowler's search minimises.
func Distance(a, b Unitary) float64 {
	p := Mul(Dagger(a), b)
	tr := p[0][0] + p[1][1]
	v := 1 - cmplx.Abs(tr)/2
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// IsUnitary reports whether the matrix is unitary to within tol.
func IsUnitary(a Unitary, tol float64) bool {
	p := Mul(Dagger(a), a)
	id := Identity()
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if cmplx.Abs(p[i][j]-id[i][j]) > tol {
				return false
			}
		}
	}
	return true
}

// canonicalKey produces a dedup key for a unitary up to global phase, by
// rotating the phase so the largest-magnitude entry is real positive and then
// quantising the entries.
func canonicalKey(a Unitary) [8]int64 {
	// Find the entry with the largest magnitude to define the phase.
	var ref complex128
	refAbs := 0.0
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if ab := cmplx.Abs(a[i][j]); ab > refAbs {
				refAbs = ab
				ref = a[i][j]
			}
		}
	}
	phase := complex(1, 0)
	if refAbs > 1e-12 {
		phase = cmplx.Conj(ref) / complex(refAbs, 0)
	}
	const scale = 1e7
	var key [8]int64
	idx := 0
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			v := a[i][j] * phase
			key[idx] = int64(math.Round(real(v) * scale))
			key[idx+1] = int64(math.Round(imag(v) * scale))
			idx += 2
		}
	}
	return key
}
