package core

import (
	"math"
	"testing"

	"speedofdata/internal/circuits"
	"speedofdata/internal/quantum"
)

func TestAnalyzeBenchmarkQRCA(t *testing.T) {
	a, err := AnalyzeBenchmark(circuits.QRCA, 32, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Table 9 row shape for the 32-bit QRCA: data area exactly 679
	// macroblocks; ancilla factories dominate the chip (the paper reports
	// two thirds for this most serial benchmark).
	if float64(a.Breakdown.DataArea) != 679 {
		t.Errorf("QRCA data area = %v, want 679", a.Breakdown.DataArea)
	}
	dataFrac, qecFrac, pi8Frac := a.Breakdown.Fractions()
	if dataFrac > 0.5 {
		t.Errorf("data fraction = %.2f; ancilla generation should dominate the chip", dataFrac)
	}
	if qecFrac <= pi8Frac {
		t.Errorf("QEC factories (%.2f) should outweigh π/8 factories (%.2f)", qecFrac, pi8Frac)
	}
	if math.Abs(dataFrac+qecFrac+pi8Frac-1) > 1e-9 {
		t.Error("fractions should sum to one")
	}
	// Taking ancilla preparation off the critical path buys a substantial
	// speedup (the whole premise of the paper).
	if a.Speedup() < 3 {
		t.Errorf("speedup = %.2f, expected several times", a.Speedup())
	}
	// The Qalypso plan must cover the demand.
	if a.Qalypso.ZeroBandwidthPerMs() < a.Characterization.ZeroBandwidthPerMs {
		t.Error("Qalypso plan does not cover the zero-ancilla demand")
	}
	if a.Qalypso.Pi8BandwidthPerMs() < a.Characterization.Pi8BandwidthPerMs {
		t.Error("Qalypso plan does not cover the π/8 demand")
	}
}

func TestAnalyzeAllBenchmarksShape(t *testing.T) {
	analyses, err := AnalyzeAllBenchmarks(16, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(analyses) != 3 {
		t.Fatalf("expected 3 analyses, got %d", len(analyses))
	}
	qrca, qcla := analyses[0], analyses[1]
	// The QCLA needs far more factory area than the QRCA at the same width
	// (Table 9: 8682 vs 987 macroblocks of QEC factories for 32 bits).
	if float64(qcla.Breakdown.QECFactoryArea) < 2*float64(qrca.Breakdown.QECFactoryArea) {
		t.Errorf("QCLA QEC factory area (%v) should be several times the QRCA's (%v)",
			qcla.Breakdown.QECFactoryArea, qrca.Breakdown.QECFactoryArea)
	}
	for _, a := range analyses {
		if a.Breakdown.TotalArea() <= 0 {
			t.Errorf("%s: non-positive total area", a.Circuit.Name)
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	c := quantum.NewCircuit("tiny", 2)
	c.Add(quantum.GateH, 0)
	opts := DefaultOptions()
	opts.TileQubits = 0
	if _, err := Analyze(c, opts); err == nil {
		t.Error("zero tile size should fail")
	}
	opts = DefaultOptions()
	opts.Latency.ZeroAncillaePerQEC = 0
	if _, err := Analyze(c, opts); err == nil {
		t.Error("invalid latency model should fail")
	}
}

func TestFactoriesForBandwidth(t *testing.T) {
	opts := DefaultOptions()
	zero, pi8 := FactoriesForBandwidth(opts.Tech, 34.8, 7.0)
	if pi8 != 1 {
		t.Errorf("π/8 factories = %d, want 1", pi8)
	}
	// 34.8 + 7.0 zeros/ms -> ceil(41.8/10.5) = 4.
	if zero != 4 {
		t.Errorf("zero factories = %d, want 4", zero)
	}
	z0, p0 := FactoriesForBandwidth(opts.Tech, 0, 0)
	if z0 != 0 || p0 != 0 {
		t.Errorf("no demand should need no factories, got %d/%d", z0, p0)
	}
}

func TestExperimentsTable2And3(t *testing.T) {
	e := NewExperiments()
	e.Bits = 8
	rows, err := e.Table2And3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("expected 3 rows, got %d", len(rows))
	}
	for _, r := range rows {
		_, _, prep := r.Fractions()
		if prep < 0.5 {
			t.Errorf("%s: ancilla prep fraction %.2f should dominate", r.Name, prep)
		}
		if r.ZeroBandwidthPerMs <= 0 || r.Pi8BandwidthPerMs <= 0 {
			t.Errorf("%s: non-positive bandwidths", r.Name)
		}
	}
	// QCLA (row 1) needs the most bandwidth, as in Table 3.
	if rows[1].ZeroBandwidthPerMs <= rows[0].ZeroBandwidthPerMs {
		t.Error("QCLA should need more bandwidth than QRCA")
	}
}

func TestExperimentsTables5And7(t *testing.T) {
	e := NewExperiments()
	t5 := e.Table5()
	if len(t5) != 5 {
		t.Fatalf("Table 5 rows = %d, want 5", len(t5))
	}
	wantLatency := map[string]float64{
		"Zero Prep": 73, "CX Stage": 95, "Cat State Prep": 62,
		"Verification": 82, "B/P Correction": 138,
	}
	for _, r := range t5 {
		if r.LatencyUs != wantLatency[r.Name] {
			t.Errorf("%s latency = %v, want %v", r.Name, r.LatencyUs, wantLatency[r.Name])
		}
		if r.SymbolicLatency == "" || r.InBWPerMs <= 0 {
			t.Errorf("%s row incomplete: %+v", r.Name, r)
		}
	}
	t7 := e.Table7()
	if len(t7) != 4 {
		t.Fatalf("Table 7 rows = %d, want 4", len(t7))
	}
}

func TestExperimentsFactoryDesigns(t *testing.T) {
	e := NewExperiments()
	simple, zero, pi8 := e.FactoryDesigns()
	if simple.LatencyUs() != 323 {
		t.Errorf("simple factory latency = %v", simple.LatencyUs())
	}
	if zero.TotalArea() != 298 || pi8.TotalArea() != 403 {
		t.Errorf("factory areas = %v / %v, want 298 / 403", zero.TotalArea(), pi8.TotalArea())
	}
}

func TestExperimentsTable9SmallWidth(t *testing.T) {
	e := NewExperiments()
	e.Bits = 8
	rows, err := e.Table9()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("expected 3 rows, got %d", len(rows))
	}
	for _, r := range rows {
		dataFrac, _, _ := r.Fractions()
		if dataFrac >= 0.5 {
			t.Errorf("%s: data should not dominate the chip (%.2f)", r.Name, dataFrac)
		}
	}
}

func TestExperimentsFigure4Small(t *testing.T) {
	e := NewExperiments()
	results, err := e.Figure4(2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("expected 4 preparation variants, got %d", len(results))
	}
	byName := map[string]PrepErrorResult{}
	for _, r := range results {
		byName[r.Name] = r
		if r.PaperRate <= 0 {
			t.Errorf("%s: missing paper rate", r.Name)
		}
		if r.Ops.Total() <= 0 {
			t.Errorf("%s: missing op counts", r.Name)
		}
	}
	if byName["verify-and-correct"].FirstOrder.UncorrectableRate >= byName["basic"].FirstOrder.UncorrectableRate {
		t.Error("verify-and-correct should beat basic at first order")
	}
}

func TestExperimentsFigures7And8(t *testing.T) {
	e := NewExperiments()
	e.Bits = 8
	profiles, err := e.Figure7(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 3 {
		t.Fatalf("expected 3 profiles, got %d", len(profiles))
	}
	for name, p := range profiles {
		if len(p) != 10 {
			t.Errorf("%s: %d buckets, want 10", name, len(p))
		}
	}
	sweeps, err := e.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range sweeps {
		if len(s) == 0 {
			t.Errorf("%s: empty sweep", name)
		}
		// Execution time decreases (weakly) with throughput.
		for i := 1; i < len(s); i++ {
			if s[i].ExecutionTimeMs > s[i-1].ExecutionTimeMs*1.000001 {
				t.Errorf("%s: execution time not monotone", name)
				break
			}
		}
	}
}

func TestExperimentsFigure15Small(t *testing.T) {
	e := NewExperiments()
	e.Bits = 8
	curves, err := e.Figure15(circuits.QCLA, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 5 {
		t.Fatalf("expected 5 curves, got %d", len(curves))
	}
	for arch, c := range curves {
		if len(c.Points) == 0 {
			t.Errorf("%v: empty curve", arch)
		}
	}
}

func TestExperimentsFowler(t *testing.T) {
	e := NewExperiments()
	res, err := e.Fowler(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sequences) != 4 || len(res.TargetsK) != 4 {
		t.Fatalf("expected sequences for k=3..6, got %d", len(res.Sequences))
	}
	// k=3 is the T gate itself.
	if res.Sequences[0].Gates != "T" {
		t.Errorf("k=3 sequence = %q, want T", res.Sequences[0].Gates)
	}
	if len(res.Cascade) != 6 {
		t.Errorf("expected 6 cascade rows, got %d", len(res.Cascade))
	}
	if res.LengthAt1em4 < 20 {
		t.Errorf("modelled length at 1e-4 = %d, expected a few dozen", res.LengthAt1em4)
	}
}

// Parallel experiment runs must reproduce the sequential results exactly:
// the engine's per-job RNG streams and order-preserving collection make
// worker count invisible in the output.
func TestParallelExperimentsMatchSequential(t *testing.T) {
	seq := NewExperiments()
	seq.Bits = 8
	par := NewParallelExperiments(4)
	par.Bits = 8

	seqCh, err := seq.Table2And3()
	if err != nil {
		t.Fatal(err)
	}
	parCh, err := par.Table2And3()
	if err != nil {
		t.Fatal(err)
	}
	if len(seqCh) != len(parCh) {
		t.Fatalf("characterisation counts differ: %d vs %d", len(seqCh), len(parCh))
	}
	for i := range seqCh {
		if seqCh[i] != parCh[i] {
			t.Errorf("characterisation %d: parallel %+v != sequential %+v", i, parCh[i], seqCh[i])
		}
	}

	seqF4, err := seq.Figure4(5000, 11)
	if err != nil {
		t.Fatal(err)
	}
	parF4, err := par.Figure4(5000, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seqF4 {
		if seqF4[i] != parF4[i] {
			t.Errorf("figure 4 row %d: parallel %+v != sequential %+v", i, parF4[i], seqF4[i])
		}
	}

	seq15, err := seq.Figure15(circuits.QRCA, 8)
	if err != nil {
		t.Fatal(err)
	}
	par15, err := par.Figure15(circuits.QRCA, 8)
	if err != nil {
		t.Fatal(err)
	}
	for arch, want := range seq15 {
		got := par15[arch]
		if len(got.Points) != len(want.Points) {
			t.Fatalf("%v: point counts differ", arch)
		}
		for i := range want.Points {
			if got.Points[i] != want.Points[i] {
				t.Errorf("%v point %d: parallel %+v != sequential %+v", arch, i, got.Points[i], want.Points[i])
			}
		}
	}
}

// Repeating an experiment on the same runner must be served from the
// engine's result cache.
func TestExperimentsCacheAcrossRepeats(t *testing.T) {
	e := NewParallelExperiments(2)
	e.Bits = 8
	if _, err := e.Table2And3(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Table2And3(); err != nil {
		t.Fatal(err)
	}
	hits, _ := e.Engine.CacheStats()
	if hits == 0 {
		t.Error("repeated experiment should hit the engine cache")
	}
}
