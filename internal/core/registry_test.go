package core

import (
	"context"
	"strings"
	"testing"

	"speedofdata/internal/engine"
)

func TestCanonicalExperimentID(t *testing.T) {
	cases := map[string]string{
		"table2":       "table2",
		"TABLE2":       "table2",
		"figure15":     "fig15",
		"fig15":        "fig15",
		"qalypso":      "table9",
		"zero-factory": "table6",
		"table4":       "table1",
	}
	for in, want := range cases {
		got, ok := CanonicalExperimentID(in)
		if !ok || got != want {
			t.Errorf("CanonicalExperimentID(%q) = %q, %v; want %q", in, got, ok, want)
		}
	}
	if _, ok := CanonicalExperimentID("nope"); ok {
		t.Error("unknown id should not resolve")
	}
	if _, ok := CanonicalExperimentID("all"); ok {
		t.Error(`"all" is not an experiment id`)
	}
}

func TestRegistryCoversAllOrder(t *testing.T) {
	for _, id := range AllExperimentOrder {
		if _, ok := CanonicalExperimentID(id); !ok {
			t.Errorf("AllExperimentOrder id %q is not registered", id)
		}
	}
	infos := ExperimentInfos()
	if len(infos) != len(ExperimentIDs()) {
		t.Fatal("infos and ids disagree")
	}
	for _, info := range infos {
		if info.Title == "" {
			t.Errorf("experiment %q has no title", info.ID)
		}
	}
}

func TestRunParamsValidate(t *testing.T) {
	p := DefaultRunParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	bad := p
	bad.Trials = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero trials should fail")
	}
	bad = p
	bad.Benchmark = "QXYZ"
	if err := bad.Validate(); err == nil {
		t.Error("unknown benchmark should fail")
	}
	bad = p
	bad.Arch = "warp"
	if err := bad.Validate(); err == nil {
		t.Error("unknown arch should fail")
	}
	p.Arch = "cqla"
	if err := p.Validate(); err != nil {
		t.Errorf("compact arch spelling rejected: %v", err)
	}
}

// TestRunExperimentSections runs the cheap experiments end to end and checks
// the structured sections carry their ids and render non-empty text.
func TestRunExperimentSections(t *testing.T) {
	e := NewExperiments()
	p := DefaultRunParams()
	for _, id := range []string{"table1", "table5", "table6", "table7", "table8", "simple-factory"} {
		sec, err := RunExperiment(e, id, p)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if sec.ID != id {
			t.Errorf("%s: section id = %q", id, sec.ID)
		}
		if len(sec.Blocks) == 0 || sec.Text() == "" {
			t.Errorf("%s: empty section", id)
		}
	}
	if _, err := RunExperiment(e, "nope", p); err == nil {
		t.Error("unknown id should error")
	}
}

// TestRunReportDeterministic renders the same batch twice on one engine and
// expects identical text, with the second render served from the cache.
func TestRunReportDeterministic(t *testing.T) {
	e := NewExperiments()
	e.Engine = engine.New(2)
	p := DefaultRunParams()
	ids := []string{"table1", "table5", "table6"}
	first, err := RunReport(context.Background(), e, p, ids)
	if err != nil {
		t.Fatal(err)
	}
	hits0, misses0 := e.Engine.CacheStats()
	second, err := RunReport(context.Background(), e, p, ids)
	if err != nil {
		t.Fatal(err)
	}
	hits1, misses1 := e.Engine.CacheStats()
	if first.String() != second.String() {
		t.Error("repeated report differs")
	}
	if hits1 <= hits0 {
		t.Errorf("expected cache hits on repeat, got %d -> %d", hits0, hits1)
	}
	if misses1 != misses0 {
		t.Errorf("repeat recomputed: misses %d -> %d", misses0, misses1)
	}
	if !strings.Contains(first.String(), "=== table5 ===") {
		t.Errorf("missing section banner:\n%s", first.String())
	}
	if _, err := RunReport(context.Background(), e, p, []string{"bogus"}); err == nil {
		t.Error("unknown id in batch should error")
	}
}

// TestEventDrivenScenarioSections runs the new event-driven scenarios end to
// end at a small width and checks they render and honour their parameters.
func TestEventDrivenScenarioSections(t *testing.T) {
	e := NewExperiments()
	e.Bits = 4
	p := DefaultRunParams()
	p.MaxScale = 4
	p.Arch = "fm"
	for _, id := range []string{"fig15buf", "buffersweep", "contention", "factory-sim"} {
		sec, err := RunExperiment(e, id, p)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if sec.ID != id || sec.Text() == "" {
			t.Errorf("%s: empty or mislabelled section", id)
		}
	}
	// Aliases resolve.
	for alias, want := range map[string]string{
		"figure15-buffered": "fig15buf",
		"buffer-sweep":      "buffersweep",
		"co-schedule":       "contention",
		"pipeline-sim":      "factory-sim",
	} {
		got, ok := CanonicalExperimentID(alias)
		if !ok || got != want {
			t.Errorf("alias %q resolved to %q, %v; want %q", alias, got, ok, want)
		}
	}
	// The finite buffer must show up in the rendered output.
	sec, err := RunExperiment(e, "fig15buf", p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sec.Text(), "16-ancilla buffers") {
		t.Errorf("fig15buf should mention the default 16-ancilla buffer:\n%s", sec.Text())
	}
	// Negative buffer is rejected by parameter validation.
	bad := p
	bad.Buffer = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative buffer should fail validation")
	}
}

// The contention scenario's per-benchmark slowdowns must ease monotonically
// as the shared supply grows.
func TestContentionSlowdownEasesWithSupply(t *testing.T) {
	e := NewExperiments()
	e.Bits = 4
	levels, err := e.Contention(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != len(DefaultContentionFractions) {
		t.Fatalf("got %d levels, want %d", len(levels), len(DefaultContentionFractions))
	}
	for bench := range levels[0].Run.Results {
		prev := -1.0
		for _, lv := range levels {
			s := lv.Run.Results[bench].Slowdown()
			if s < 1-1e-9 {
				t.Errorf("%s at %.2fx: slowdown %v below 1", lv.Run.Results[bench].Name, lv.DemandFraction, s)
			}
			if prev > 0 && s > prev*1.0001 {
				t.Errorf("%s: slowdown rose with more supply: %v -> %v", lv.Run.Results[bench].Name, prev, s)
			}
			prev = s
		}
	}
}

// TestNetworkScenarioRegistration keeps the two network scenarios in sync
// across both surfaces: they are listed with their aliases and parameters
// (the /v1/experiments index and the qsd usage text are both generated from
// ExperimentInfos), resolve from either spelling, and render end to end.
func TestNetworkScenarioRegistration(t *testing.T) {
	wantParams := map[string][]string{
		"netsweep":      {"bits", "benchmark", "tiles", "buffer"},
		"netcontention": {"bits", "tiles", "buffer"},
		"netfault":      {"bits", "benchmark", "tiles", "buffer"},
		"netdegrade":    {"bits", "benchmark", "tiles", "buffer", "faults"},
	}
	listed := map[string]ExperimentInfo{}
	for _, info := range ExperimentInfos() {
		listed[info.ID] = info
	}
	for id, params := range wantParams {
		info, ok := listed[id]
		if !ok {
			t.Fatalf("%s missing from the experiment index", id)
		}
		if len(info.Aliases) == 0 {
			t.Errorf("%s has no aliases", id)
		}
		if strings.Join(info.Params, ",") != strings.Join(params, ",") {
			t.Errorf("%s params = %v, want %v", id, info.Params, params)
		}
	}
	for alias, want := range map[string]string{
		"network-sweep":      "netsweep",
		"network-contention": "netcontention",
		"network-fault":      "netfault",
		"network-degrade":    "netdegrade",
		"NETSWEEP":           "netsweep",
	} {
		got, ok := CanonicalExperimentID(alias)
		if !ok || got != want {
			t.Errorf("alias %q resolved to %q, %v; want %q", alias, got, ok, want)
		}
	}

	e := NewExperiments()
	e.Bits = 4
	p := DefaultRunParams()
	p.Tiles = 2
	for _, id := range []string{"netsweep", "netcontention"} {
		sec, err := RunExperiment(e, id, p)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if sec.ID != id || sec.Text() == "" {
			t.Errorf("%s: empty or mislabelled section", id)
		}
	}
	// The fault scenarios need a mesh that survives a dead bisection link, so
	// they run at four tiles (a 2x2 with a redundant path around any one link).
	p.Tiles = 4
	for _, id := range []string{"netfault", "netdegrade"} {
		sec, err := RunExperiment(e, id, p)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if sec.ID != id || sec.Text() == "" {
			t.Errorf("%s: empty or mislabelled section", id)
		}
	}
	bad := p
	bad.Tiles = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero tiles should fail validation")
	}
	bad = p
	bad.Faults = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative faults should fail validation")
	}
}

// Same circuit and parameters must give identical network sections whether
// the engine runs one worker or eight — the partitioner, routes and replays
// are deterministic, so the rendered bytes are too.
func TestNetworkScenariosDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) string {
		e := NewExperiments()
		e.Bits = 4
		e.Engine = engine.New(workers)
		p := DefaultRunParams()
		p.Tiles = 4
		doc, err := RunReport(context.Background(), e, p, []string{"netsweep", "netcontention"})
		if err != nil {
			t.Fatal(err)
		}
		return doc.String()
	}
	if seq, par := render(1), render(8); seq != par {
		t.Errorf("network sections differ between 1 and 8 workers:\n--- seq ---\n%s\n--- par ---\n%s", seq, par)
	}
}
