package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"speedofdata/internal/circuits"
	"speedofdata/internal/engine"
	"speedofdata/internal/factory"
	"speedofdata/internal/fowler"
	"speedofdata/internal/microarch"
	"speedofdata/internal/network"
	"speedofdata/internal/noise"
	"speedofdata/internal/quantum"
	"speedofdata/internal/schedule"
	"speedofdata/internal/steane"
)

// Experiments bundles the options shared by every experiment runner.  Each
// method regenerates one table or figure from the paper's evaluation; the
// command-line tool and the benchmark harness are thin wrappers around it.
// All sweeps, grids and Monte Carlo runs are dispatched through the shared
// experiment engine, so one Experiments value fans its work across Engine's
// workers while producing output identical to a sequential run.
type Experiments struct {
	Options Options
	// Bits is the benchmark operand width (32 in the paper).
	Bits int
	// Engine executes every experiment's job batches.  nil runs
	// sequentially without caching; use engine.New(n) for an n-worker
	// engine whose result cache is shared across experiments.
	Engine *engine.Engine
	// Ctx, when non-nil, bounds every experiment method's engine batches:
	// cancelling it stops in-flight sweeps between jobs.  nil means
	// context.Background().  The HTTP server sets it to the request context
	// on its per-request copy, so a disconnected client stops paying for
	// unread work.
	Ctx context.Context
}

// ctx returns the context bounding the experiment runs.
func (e Experiments) ctx() context.Context {
	if e.Ctx != nil {
		return e.Ctx
	}
	return context.Background()
}

// NewExperiments returns a sequential experiment runner with the paper's
// parameters.
func NewExperiments() Experiments {
	return Experiments{Options: DefaultOptions(), Bits: 32, Engine: engine.Sequential()}
}

// NewParallelExperiments returns an experiment runner whose sweeps and Monte
// Carlo runs fan out over the given number of workers (<= 0 means
// GOMAXPROCS).  Results are identical to NewExperiments for every
// experiment.
func NewParallelExperiments(workers int) Experiments {
	e := NewExperiments()
	e.Engine = engine.New(workers)
	return e
}

// generateBenchmarks produces the paper's three kernels at the configured
// width, one engine job per kernel.
func (e Experiments) generateBenchmarks(ctx context.Context) ([]*quantum.Circuit, error) {
	jobs := make([]engine.Job[*quantum.Circuit], len(circuits.Benchmarks()))
	for i, b := range circuits.Benchmarks() {
		b := b
		jobs[i] = engine.Job[*quantum.Circuit]{
			Key: engine.Fingerprint("circuits.generate", b, e.Bits),
			Run: func(context.Context, *rand.Rand) (*quantum.Circuit, error) {
				return circuits.Generate(b, e.Bits)
			},
		}
	}
	return engine.Run(ctx, e.Engine, jobs)
}

// Table2And3 characterises the three benchmarks (Tables 2 and 3), one engine
// job per benchmark.
func (e Experiments) Table2And3() ([]schedule.Characterization, error) {
	ctx := e.ctx()
	cs, err := e.generateBenchmarks(ctx)
	if err != nil {
		return nil, err
	}
	out, err := schedule.CharacterizeAll(ctx, e.Engine, cs, e.Options.Latency)
	if err != nil {
		return nil, err
	}
	for i, b := range circuits.Benchmarks() {
		out[i].Name = fmt.Sprintf("%d-Bit %s", e.Bits, b)
	}
	return out, nil
}

// Table5Rows describes the pipelined zero factory's functional units under
// the configured technology (Table 5).
type Table5Row struct {
	Name            string
	SymbolicLatency string
	LatencyUs       float64
	Stages          int
	InBWPerMs       float64
	OutBWPerMs      float64
	Area            float64
}

// Table5 returns the zero-factory functional unit characteristics.
func (e Experiments) Table5() []Table5Row {
	return unitRows(factory.ZeroFactoryUnits(), e)
}

// Table7 returns the π/8-factory stage characteristics.
func (e Experiments) Table7() []Table5Row {
	return unitRows(factory.Pi8FactoryUnits(), e)
}

func unitRows(units []factory.FunctionalUnit, e Experiments) []Table5Row {
	rows := make([]Table5Row, 0, len(units))
	for _, u := range units {
		rows = append(rows, Table5Row{
			Name:            u.Name,
			SymbolicLatency: u.Latency.String(),
			LatencyUs:       float64(u.LatencyUs(e.Options.Tech)),
			Stages:          u.InternalStages,
			InBWPerMs:       u.InBandwidth(e.Options.Tech),
			OutBWPerMs:      u.OutBandwidth(e.Options.Tech),
			Area:            float64(u.Area),
		})
	}
	return rows
}

// FactoryDesigns returns the sized zero and π/8 factories (Tables 6 and 8,
// Sections 4.4.1-4.4.2) plus the simple factory of Section 4.3.
func (e Experiments) FactoryDesigns() (simple factory.SimpleZeroFactory, zero, pi8 factory.Design) {
	return factory.SimpleZeroFactory{Tech: e.Options.Tech},
		factory.PipelinedZeroFactory(e.Options.Tech),
		factory.Pi8Factory(e.Options.Tech)
}

// Table9 returns the per-benchmark chip area breakdown.
func (e Experiments) Table9() ([]AreaBreakdown, error) {
	analyses, err := AnalyzeAllBenchmarksEngine(e.ctx(), e.Engine, e.Bits, e.Options)
	if err != nil {
		return nil, err
	}
	out := make([]AreaBreakdown, 0, len(analyses))
	for i, a := range analyses {
		b := a.Breakdown
		b.Name = fmt.Sprintf("%d-Bit %s", e.Bits, circuits.Benchmarks()[i])
		out = append(out, b)
	}
	return out, nil
}

// PrepErrorResult is one Figure 4 data point: the estimated error rates of an
// encoded-zero preparation variant.
type PrepErrorResult struct {
	Name       string
	PaperRate  float64
	FirstOrder noise.Estimate
	MonteCarlo noise.Estimate
	Ops        steane.Counts
	// Converged reports whether a sequential-sampling run (Figure4Target)
	// met its precision target before hitting the trial cap.  Fixed-budget
	// runs leave it false.
	Converged bool
}

// Figure4 evaluates the four encoded-zero preparation circuits under the
// paper's error model.  trials controls the Monte Carlo effort.  Each
// preparation variant is one engine job whose Monte Carlo trials fan out
// further as chunk jobs on the same engine.
func (e Experiments) Figure4(trials int, seed int64) ([]PrepErrorResult, error) {
	return e.Figure4Sampled(trials, seed, noise.SamplingDense)
}

// Figure4Sampled is Figure4 with an explicit Monte Carlo sampling mode.
// Dense (the default everywhere) draws per error location and is
// byte-identical across releases for a seed; sparse samples fault sets
// directly — statistically equivalent and much faster at physical error
// rates, behind the qsd -sparse flag and the HTTP sparse parameter.  The
// two modes never share cache keys.
func (e Experiments) Figure4Sampled(trials int, seed int64, sampling noise.Sampling) ([]PrepErrorResult, error) {
	code := steane.NewCode()
	model := noise.DefaultModel()
	paperRates := map[string]float64{
		"basic":              1.8e-3,
		"verify-only":        3.7e-4,
		"correct-only":       1.1e-3,
		"verify-and-correct": 2.9e-5,
	}
	order := []string{"basic", "verify-only", "correct-only", "verify-and-correct"}
	protocols := steane.StandardProtocols(code)
	ctx := e.ctx()
	jobs := make([]engine.Job[PrepErrorResult], len(order))
	for i, name := range order {
		name := name
		p := protocols[name]
		key := engine.Fingerprint("core.figure4", name, model, trials, seed)
		if sampling != noise.SamplingDense && sampling != noise.SamplingLegacy {
			// Dense keys stay exactly as they always were (they seed the
			// chunk RNG streams); sparse and bitsliced each get their own
			// key space, named by the sampling mode.
			key = engine.Fingerprint("core.figure4", name, model, trials, seed, sampling)
		}
		jobs[i] = engine.Job[PrepErrorResult]{
			Key: key,
			Run: func(ctx context.Context, _ *rand.Rand) (PrepErrorResult, error) {
				sim, err := noise.NewSimulator(code, p, model)
				if err != nil {
					return PrepErrorResult{}, err
				}
				sim.Sampling = sampling
				mc, err := sim.MonteCarloEngine(ctx, e.Engine, trials, seed)
				if err != nil {
					return PrepErrorResult{}, err
				}
				return PrepErrorResult{
					Name:       name,
					PaperRate:  paperRates[name],
					FirstOrder: sim.FirstOrder(),
					MonteCarlo: mc,
					Ops:        p.CountOps(),
				}, nil
			},
		}
	}
	return engine.Run(ctx, e.Engine, jobs)
}

// PartialEstimate is one refining estimate of a sequential-sampling Figure 4
// run, published through the engine's Partial callback (and streamed to SSE
// subscribers by the HTTP server as "partial" events).
type PartialEstimate struct {
	Experiment string `json:"experiment"`
	Protocol   string `json:"protocol"`
	// Trials is the cumulative trial count behind this estimate; later
	// partials of one protocol always carry strictly more trials.
	Trials            int     `json:"trials"`
	UncorrectableRate float64 `json:"uncorrectable_rate"`
	// RelativeHalfWidth is the Wilson relative confidence-interval
	// half-width at the requested confidence (1.0 until the first
	// uncorrectable outcome is observed).
	RelativeHalfWidth float64 `json:"relative_half_width"`
	// Done marks the protocol's terminal estimate (converged or capped).
	Done bool `json:"done"`
}

// Figure4Target is Figure4 with sequential sampling: each preparation
// variant runs bit-sliced Monte Carlo until the uncorrectable rate's Wilson
// interval reaches the target relative half-width epsilon at the given
// confidence (0 = noise.DefaultConfidence), capped at maxTrials.  Refining
// partial estimates stream through the engine's Partial callback.
//
// The per-protocol trial counts are data-dependent, so results are keyed by
// the full target (epsilon, confidence, cap); the underlying Monte Carlo
// chunks still share cache entries with fixed-trial bit-sliced runs.
func (e Experiments) Figure4Target(epsilon, confidence float64, maxTrials int, seed int64) ([]PrepErrorResult, error) {
	code := steane.NewCode()
	model := noise.DefaultModel()
	paperRates := map[string]float64{
		"basic":              1.8e-3,
		"verify-only":        3.7e-4,
		"correct-only":       1.1e-3,
		"verify-and-correct": 2.9e-5,
	}
	order := []string{"basic", "verify-only", "correct-only", "verify-and-correct"}
	protocols := steane.StandardProtocols(code)
	ctx := e.ctx()
	jobs := make([]engine.Job[PrepErrorResult], len(order))
	for i, name := range order {
		name := name
		p := protocols[name]
		key := engine.Fingerprint("core.figure4", name, model, maxTrials, seed, "ci", epsilon, confidence)
		jobs[i] = engine.Job[PrepErrorResult]{
			Key: key,
			Run: func(ctx context.Context, _ *rand.Rand) (PrepErrorResult, error) {
				sim, err := noise.NewSimulator(code, p, model)
				if err != nil {
					return PrepErrorResult{}, err
				}
				sim.Sampling = noise.SamplingBitSliced
				tgt := noise.Target{Epsilon: epsilon, Confidence: confidence, MaxTrials: maxTrials}
				mc, converged, err := sim.MonteCarloTarget(ctx, e.Engine, tgt, seed, func(pe noise.Partial) {
					e.Engine.PublishPartial(key, pe.Seq, PartialEstimate{
						Experiment:        "fig4",
						Protocol:          name,
						Trials:            pe.Estimate.Trials,
						UncorrectableRate: pe.Estimate.UncorrectableRate,
						RelativeHalfWidth: pe.Relative,
						Done:              pe.Done,
					})
				})
				if err != nil {
					return PrepErrorResult{}, err
				}
				return PrepErrorResult{
					Name:       name,
					PaperRate:  paperRates[name],
					FirstOrder: sim.FirstOrder(),
					MonteCarlo: mc,
					Ops:        p.CountOps(),
					Converged:  converged,
				}, nil
			},
		}
	}
	return engine.Run(ctx, e.Engine, jobs)
}

// Figure7 computes the ancilla demand profiles of the three benchmarks, one
// engine job per benchmark.
func (e Experiments) Figure7(buckets int) (map[string][]schedule.DemandPoint, error) {
	ctx := e.ctx()
	benchmarks := circuits.Benchmarks()
	jobs := make([]engine.Job[[]schedule.DemandPoint], len(benchmarks))
	for i, b := range benchmarks {
		b := b
		jobs[i] = engine.Job[[]schedule.DemandPoint]{
			Key: engine.Fingerprint("core.figure7", b, e.Bits, e.Options.Latency, buckets),
			Run: func(context.Context, *rand.Rand) ([]schedule.DemandPoint, error) {
				c, err := circuits.Generate(b, e.Bits)
				if err != nil {
					return nil, err
				}
				return schedule.DemandProfile(c, e.Options.Latency, buckets)
			},
		}
	}
	profiles, err := engine.Run(ctx, e.Engine, jobs)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]schedule.DemandPoint, len(benchmarks))
	for i, b := range benchmarks {
		out[b.String()] = profiles[i]
	}
	return out, nil
}

// Figure8 computes execution time versus steady ancilla throughput for the
// three benchmarks.  Each benchmark is one engine job whose per-rate
// simulations fan out further on the same engine.
func (e Experiments) Figure8() (map[string][]schedule.SweepPoint, error) {
	ctx := e.ctx()
	benchmarks := circuits.Benchmarks()
	jobs := make([]engine.Job[[]schedule.SweepPoint], len(benchmarks))
	for i, b := range benchmarks {
		b := b
		jobs[i] = engine.Job[[]schedule.SweepPoint]{
			Key: engine.Fingerprint("core.figure8", b, e.Bits, e.Options.Latency),
			Run: func(ctx context.Context, _ *rand.Rand) ([]schedule.SweepPoint, error) {
				c, err := circuits.Generate(b, e.Bits)
				if err != nil {
					return nil, err
				}
				ch, err := schedule.Characterize(c, e.Options.Latency)
				if err != nil {
					return nil, err
				}
				return schedule.ThroughputSweepEngine(ctx, e.Engine, c, e.Options.Latency,
					schedule.DefaultSweepRates(ch.ZeroBandwidthPerMs))
			},
		}
	}
	sweeps, err := engine.Run(ctx, e.Engine, jobs)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]schedule.SweepPoint, len(benchmarks))
	for i, b := range benchmarks {
		out[b.String()] = sweeps[i]
	}
	return out, nil
}

// Figure15 runs the microarchitecture comparison for one benchmark, fanning
// the architecture × scale grid across the engine's workers.
func (e Experiments) Figure15(b circuits.Benchmark, maxScale int) (map[microarch.Architecture]microarch.Curve, error) {
	return e.Figure15Archs(b, maxScale, nil)
}

// Figure15Archs is Figure15 restricted to a subset of architectures (nil =
// all).  Simulation job keys are architecture-filter independent, so a
// filtered request (e.g. the HTTP API's ?arch=) shares its grid points with
// full runs through the engine cache.
func (e Experiments) Figure15Archs(b circuits.Benchmark, maxScale int, archs []microarch.Architecture) (map[microarch.Architecture]microarch.Curve, error) {
	return e.Figure15Buffered(b, maxScale, archs, 0)
}

// Figure15Buffered is the finite-buffer form of the Figure 15 grid: every
// ancilla source keeps at most bufferAncillae encoded zeros in flight (zero
// buffers infinitely, reproducing the closed-form grid exactly).  Curve
// points carry the stall and high-water metrics the closed form cannot see.
func (e Experiments) Figure15Buffered(b circuits.Benchmark, maxScale int, archs []microarch.Architecture, bufferAncillae float64) (map[microarch.Architecture]microarch.Curve, error) {
	c, ch, err := e.characterizedBenchmark(b)
	if err != nil {
		return nil, err
	}
	base := microarch.DefaultConfig(microarch.FullyMultiplexed)
	base.Latency = e.Options.Latency
	base.CacheSlots = 16
	base.Pi8BandwidthPerMs = ch.Pi8BandwidthPerMs
	base.BufferAncillae = bufferAncillae
	return microarch.Figure15Engine(e.ctx(), e.Engine, c,
		microarch.Figure15Config{Base: base, MaxScale: maxScale, Archs: archs})
}

// characterizedBenchmark generates one benchmark and its Table 2/3
// characterisation.
func (e Experiments) characterizedBenchmark(b circuits.Benchmark) (*quantum.Circuit, schedule.Characterization, error) {
	c, err := circuits.Generate(b, e.Bits)
	if err != nil {
		return nil, schedule.Characterization{}, err
	}
	ch, err := schedule.Characterize(c, e.Options.Latency)
	if err != nil {
		return nil, schedule.Characterization{}, err
	}
	return c, ch, nil
}

// BufferSweep sweeps the ancilla buffer capacity for one benchmark on one
// architecture, with the generation resources matched to the benchmark's
// average demand so the buffer — not raw bandwidth — is the variable under
// test.  Capacities run through DefaultBufferCaps, ending on the
// infinite-buffer reference point.
func (e Experiments) BufferSweep(b circuits.Benchmark, arch microarch.Architecture) ([]microarch.BufferPoint, error) {
	c, ch, err := e.characterizedBenchmark(b)
	if err != nil {
		return nil, err
	}
	base := microarch.DefaultConfig(arch)
	base.Latency = e.Options.Latency
	base.Pi8BandwidthPerMs = ch.Pi8BandwidthPerMs
	// Match the aggregate generation rate to the benchmark's average demand:
	// shared pipelined factories for Fully-Multiplexed, replicated simple
	// generators per site for the generator-based organisations.
	switch arch {
	case microarch.FullyMultiplexed:
		pipe := factory.PipelinedZeroFactory(e.Options.Tech)
		if n := pipe.CountForBandwidth(ch.ZeroBandwidthPerMs); n > base.SharedFactories {
			base.SharedFactories = n
		}
	default:
		perGen := factory.SimpleZeroFactory{Tech: e.Options.Tech}.ThroughputPerMs()
		sites := c.NumQubits
		if arch == microarch.CQLA || arch == microarch.GCQLA {
			sites = base.CacheSlots
		}
		if perGen > 0 && sites > 0 {
			if n := int(math.Ceil(ch.ZeroBandwidthPerMs / (perGen * float64(sites)))); n > base.GeneratorsPerQubit {
				base.GeneratorsPerQubit = n
			}
		}
	}
	return microarch.BufferSweepEngine(e.ctx(), e.Engine, c, base, microarch.DefaultBufferCaps())
}

// ContentionLevel is one shared-supply operating point of the co-scheduling
// scenario: every benchmark replayed concurrently against one factory bank.
type ContentionLevel struct {
	// DemandFraction is the supply rate as a fraction of the benchmarks'
	// aggregate average zero-ancilla demand.
	DemandFraction float64
	// Supply is the configured shared supply.
	Supply schedule.Supply
	// Run holds the per-benchmark results and the shared-buffer statistics.
	Run schedule.ReplayRun
}

// DefaultContentionFractions are the supply levels of the contention
// scenario, as fractions of the aggregate average demand.
var DefaultContentionFractions = []float64{0.25, 0.5, 1, 2}

// Contention co-schedules the paper's three benchmarks against one shared
// encoded-zero supply at several provisioning levels, one engine job per
// level.  bufferAncillae bounds the supply's output buffer (zero =
// infinite).  Even at 100% of the aggregate average demand the benchmarks
// interfere: demand is bursty, and a neighbour's burst steals headroom.
func (e Experiments) Contention(bufferAncillae float64) ([]ContentionLevel, error) {
	ctx := e.ctx()
	cs, err := e.generateBenchmarks(ctx)
	if err != nil {
		return nil, err
	}
	chs, err := schedule.CharacterizeAll(ctx, e.Engine, cs, e.Options.Latency)
	if err != nil {
		return nil, err
	}
	demand := 0.0
	for _, ch := range chs {
		demand += ch.ZeroBandwidthPerMs
	}
	m := e.Options.Latency
	jobs := make([]engine.Job[ContentionLevel], len(DefaultContentionFractions))
	for i, frac := range DefaultContentionFractions {
		frac := frac
		supply := schedule.Supply{RatePerMs: demand * frac, BufferAncillae: bufferAncillae}
		jobs[i] = engine.Job[ContentionLevel]{
			Key: engine.Fingerprint("core.contention", e.Bits, m, supply),
			Run: func(context.Context, *rand.Rand) (ContentionLevel, error) {
				run, err := schedule.ReplayShared(cs, m, supply)
				if err != nil {
					return ContentionLevel{}, err
				}
				return ContentionLevel{DemandFraction: frac, Supply: supply, Run: run}, nil
			},
		}
	}
	return engine.Run(ctx, e.Engine, jobs)
}

// NetSupplyHeadroom over-provisions the zero-factory demand of the network
// scenarios so the interconnect — not ancilla generation — is the binding
// constraint under a link-bandwidth sweep.
const NetSupplyHeadroom = 2

// NetSweep runs the netsweep scenario for one benchmark: the circuit
// replayed on routed 2D meshes over a link-bandwidth × tile-count grid
// (tile counts are powers of two up to maxTiles), one engine job per cell.
// linkBufferPairs bounds each link's EPR channel buffer (0 = unbounded).
func (e Experiments) NetSweep(b circuits.Benchmark, maxTiles, linkBufferPairs int) ([]network.SweepPoint, error) {
	if maxTiles < 2 {
		return nil, fmt.Errorf("netsweep needs a tile bound of at least 2, got %d (a 1-tile mesh has no links to sweep)", maxTiles)
	}
	c, ch, err := e.characterizedBenchmark(b)
	if err != nil {
		return nil, err
	}
	sc := network.SweepConfig{
		Latency:         e.Options.Latency,
		ZeroPerMs:       ch.ZeroBandwidthPerMs * NetSupplyHeadroom,
		Pi8PerMs:        ch.Pi8BandwidthPerMs,
		LinkBufferPairs: float64(linkBufferPairs),
		TileCounts:      network.DefaultTileCounts(maxTiles),
		LinkFactors:     network.DefaultLinkFactors(),
	}
	return network.SweepEngine(e.ctx(), e.Engine, c, sc)
}

// NetContentionLevel is one link-bandwidth operating point of the shared-mesh
// scenario: every benchmark replayed concurrently on one mesh.
type NetContentionLevel struct {
	// LinkFactor scales the aggregate demand-matched link EPR bandwidth
	// (the sum of every co-scheduled benchmark's network.MatchedLinkEPRPerMs).
	LinkFactor float64
	// LinkEPRPerMs is the effective per-link bandwidth.
	LinkEPRPerMs float64
	// Run holds the per-benchmark results and the per-link statistics.
	Run network.ReplayRun
}

// DefaultNetContentionFactors are the link-bandwidth levels of the
// netcontention scenario, as multiples of the aggregate demand-matched
// bandwidth.
var DefaultNetContentionFactors = []float64{0.5, 1, 2}

// NetContention co-schedules the paper's three benchmarks on one shared
// tiles-tile teleportation mesh at several link-bandwidth levels, one engine
// job per level.  Each circuit is partitioned across the same tiles, so
// cross-tile traffic from one benchmark queues behind another's at shared
// links even when the factories keep up.
func (e Experiments) NetContention(tiles, linkBufferPairs int) ([]NetContentionLevel, error) {
	ctx := e.ctx()
	cs, err := e.generateBenchmarks(ctx)
	if err != nil {
		return nil, err
	}
	chs, err := schedule.CharacterizeAll(ctx, e.Engine, cs, e.Options.Latency)
	if err != nil {
		return nil, err
	}
	zeroDemand, pi8Demand, qubits := 0.0, 0.0, 0
	for i, ch := range chs {
		zeroDemand += ch.ZeroBandwidthPerMs
		pi8Demand += ch.Pi8BandwidthPerMs
		qubits += cs[i].NumQubits
	}
	base, err := network.PlanConfig(e.Options.Latency, qubits, tiles, zeroDemand*NetSupplyHeadroom, pi8Demand)
	if err != nil {
		return nil, err
	}
	// The baseline link bandwidth moves data exactly as fast as the
	// co-scheduled programs collectively demand it; the ceiling is what the
	// tile perimeter can physically carry.
	topo := network.NewTopology(len(base.Machine.Tiles))
	matched := 0.0
	parts := make([]network.Partition, len(cs))
	for i, c := range cs {
		part, err := network.PartitionCircuit(c, topo.TileCount())
		if err != nil {
			return nil, err
		}
		parts[i] = part
		matched += network.MatchedLinkEPRPerMs(c, e.Options.Latency, topo, part)
	}
	// Pin the assignments so every replay level reuses them instead of
	// re-partitioning.
	base.Partitions = parts
	ceiling := base.Machine.LinkEPRPerMs()
	jobs := make([]engine.Job[NetContentionLevel], len(DefaultNetContentionFactors))
	for i, factor := range DefaultNetContentionFactors {
		factor := factor
		jobs[i] = engine.Job[NetContentionLevel]{
			Key: engine.Fingerprint("core.netcontention", e.Bits, e.Options.Latency, tiles, linkBufferPairs, factor),
			Run: func(context.Context, *rand.Rand) (NetContentionLevel, error) {
				cfg := base
				cfg.LinkBufferPairs = float64(linkBufferPairs)
				cfg.LinkEPRPerMs = matched * factor
				if cfg.LinkEPRPerMs > ceiling {
					cfg.LinkEPRPerMs = ceiling
				}
				run, err := network.ReplayShared(cs, cfg)
				if err != nil {
					return NetContentionLevel{}, err
				}
				return NetContentionLevel{LinkFactor: factor, LinkEPRPerMs: cfg.LinkEPRPerMs, Run: run}, nil
			},
		}
	}
	return engine.Run(ctx, e.Engine, jobs)
}

// NetFault runs the netfault scenario for one benchmark: the circuit
// replayed on one routed tiles-tile mesh across a (fault mode × link
// bandwidth) grid — pristine, every link degraded, and the bisection boundary
// dead — sweeping the bandwidth around the Section 6 balance point.
// linkBufferPairs bounds each link's EPR channel buffer (0 = unbounded).
func (e Experiments) NetFault(b circuits.Benchmark, tiles, linkBufferPairs int) ([]network.FaultSweepPoint, error) {
	c, ch, err := e.characterizedBenchmark(b)
	if err != nil {
		return nil, err
	}
	sc := network.FaultSweepConfig{
		Latency:         e.Options.Latency,
		ZeroPerMs:       ch.ZeroBandwidthPerMs * NetSupplyHeadroom,
		Pi8PerMs:        ch.Pi8BandwidthPerMs,
		LinkBufferPairs: float64(linkBufferPairs),
		Tiles:           tiles,
		LinkFactors:     network.DefaultFaultLinkFactors(),
	}
	return network.FaultSweepEngine(e.ctx(), e.Engine, c, sc)
}

// NetDegrade runs the netdegrade scenario for one benchmark: the circuit
// replayed at matched link bandwidth on a tiles-tile mesh while mesh
// boundaries die one by one, up to maxFailures, reporting Partitioned rows
// once the failures disconnect the routed traffic.
func (e Experiments) NetDegrade(b circuits.Benchmark, tiles, linkBufferPairs, maxFailures int) ([]network.DegradePoint, error) {
	c, ch, err := e.characterizedBenchmark(b)
	if err != nil {
		return nil, err
	}
	sc := network.DegradeConfig{
		Latency:         e.Options.Latency,
		ZeroPerMs:       ch.ZeroBandwidthPerMs * NetSupplyHeadroom,
		Pi8PerMs:        ch.Pi8BandwidthPerMs,
		LinkBufferPairs: float64(linkBufferPairs),
		Tiles:           tiles,
		MaxFailures:     maxFailures,
	}
	return network.DegradeSweepEngine(e.ctx(), e.Engine, c, sc)
}

// FactoryPipelineHorizonMs is the simulated duration of the factory-sim
// scenario: long enough for both pipelines to reach their steady state.
const FactoryPipelineHorizonMs = 50

// FactoryPipelines runs the event-driven pipeline simulation of the zero and
// π/8 factories, one engine job each, with the given inter-stage buffer
// capacity in physical qubits (zero = unbounded crossbars).
func (e Experiments) FactoryPipelines(bufferQubits float64) (zero, pi8 factory.PipelineRun, err error) {
	designs := []factory.Design{factory.PipelinedZeroFactory(e.Options.Tech), factory.Pi8Factory(e.Options.Tech)}
	jobs := make([]engine.Job[factory.PipelineRun], len(designs))
	for i, d := range designs {
		d := d
		jobs[i] = engine.Job[factory.PipelineRun]{
			Key: engine.Fingerprint("core.factorysim", d.Name, e.Options.Tech, bufferQubits),
			Run: func(context.Context, *rand.Rand) (factory.PipelineRun, error) {
				return factory.SimulatePipeline(d, FactoryPipelineHorizonMs, bufferQubits)
			},
		}
	}
	runs, err := engine.Run(e.ctx(), e.Engine, jobs)
	if err != nil {
		return factory.PipelineRun{}, factory.PipelineRun{}, err
	}
	return runs[0], runs[1], nil
}

// FowlerResult summarises the Section 2.5 rotation-synthesis machinery.
type FowlerResult struct {
	// Sequences holds searched approximations for the first few π/2^k
	// rotations.
	Sequences []fowler.Sequence
	// TargetsK are the k values matching Sequences.
	TargetsK []int
	// Cascade holds the Figure 6 cascade statistics for a range of k.
	Cascade []fowler.CascadeStats
	// LengthAt1em4 is the modelled H/T sequence length at 1e-4 precision.
	LengthAt1em4 int
}

// Fowler runs the rotation-synthesis experiment (Section 2.5, Figure 6).
// The per-k sequence searches and cascade evaluations fan out as engine
// jobs (each search builds its own Searcher, so jobs are independent).
func (e Experiments) Fowler(maxGates int) (FowlerResult, error) {
	ctx := e.ctx()
	var res FowlerResult
	var searchJobs []engine.Job[fowler.Sequence]
	for k := 3; k <= 6; k++ {
		k := k
		res.TargetsK = append(res.TargetsK, k)
		searchJobs = append(searchJobs, engine.Job[fowler.Sequence]{
			Key: engine.Fingerprint("fowler.search", k, maxGates),
			Run: func(context.Context, *rand.Rand) (fowler.Sequence, error) {
				seq, _ := fowler.NewSearcher(maxGates).ApproximateRz(k, 1e-9)
				return seq, nil
			},
		})
	}
	cascadeKs := []int{3, 4, 6, 8, 16, 32}
	cascadeJobs := make([]engine.Job[fowler.CascadeStats], len(cascadeKs))
	for i, k := range cascadeKs {
		k := k
		cascadeJobs[i] = engine.Job[fowler.CascadeStats]{
			Key: engine.Fingerprint("fowler.cascade", k),
			Run: func(context.Context, *rand.Rand) (fowler.CascadeStats, error) {
				return fowler.Cascade(k)
			},
		}
	}
	var err error
	if res.Sequences, err = engine.Run(ctx, e.Engine, searchJobs); err != nil {
		return FowlerResult{}, err
	}
	if res.Cascade, err = engine.Run(ctx, e.Engine, cascadeJobs); err != nil {
		return FowlerResult{}, err
	}
	res.LengthAt1em4 = fowler.DefaultLengthModel().Length(1e-4)
	return res, nil
}
