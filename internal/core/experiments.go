package core

import (
	"fmt"

	"speedofdata/internal/circuits"
	"speedofdata/internal/factory"
	"speedofdata/internal/fowler"
	"speedofdata/internal/microarch"
	"speedofdata/internal/noise"
	"speedofdata/internal/schedule"
	"speedofdata/internal/steane"
)

// Experiments bundles the options shared by every experiment runner.  Each
// method regenerates one table or figure from the paper's evaluation; the
// command-line tool and the benchmark harness are thin wrappers around it.
type Experiments struct {
	Options Options
	// Bits is the benchmark operand width (32 in the paper).
	Bits int
}

// NewExperiments returns an experiment runner with the paper's parameters.
func NewExperiments() Experiments {
	return Experiments{Options: DefaultOptions(), Bits: 32}
}

// Table2And3 characterises the three benchmarks (Tables 2 and 3).
func (e Experiments) Table2And3() ([]schedule.Characterization, error) {
	var out []schedule.Characterization
	for _, b := range circuits.Benchmarks() {
		c, err := circuits.Generate(b, e.Bits)
		if err != nil {
			return nil, err
		}
		ch, err := schedule.Characterize(c, e.Options.Latency)
		if err != nil {
			return nil, err
		}
		ch.Name = fmt.Sprintf("%d-Bit %s", e.Bits, b)
		out = append(out, ch)
	}
	return out, nil
}

// Table5Rows describes the pipelined zero factory's functional units under
// the configured technology (Table 5).
type Table5Row struct {
	Name            string
	SymbolicLatency string
	LatencyUs       float64
	Stages          int
	InBWPerMs       float64
	OutBWPerMs      float64
	Area            float64
}

// Table5 returns the zero-factory functional unit characteristics.
func (e Experiments) Table5() []Table5Row {
	return unitRows(factory.ZeroFactoryUnits(), e)
}

// Table7 returns the π/8-factory stage characteristics.
func (e Experiments) Table7() []Table5Row {
	return unitRows(factory.Pi8FactoryUnits(), e)
}

func unitRows(units []factory.FunctionalUnit, e Experiments) []Table5Row {
	rows := make([]Table5Row, 0, len(units))
	for _, u := range units {
		rows = append(rows, Table5Row{
			Name:            u.Name,
			SymbolicLatency: u.Latency.String(),
			LatencyUs:       float64(u.LatencyUs(e.Options.Tech)),
			Stages:          u.InternalStages,
			InBWPerMs:       u.InBandwidth(e.Options.Tech),
			OutBWPerMs:      u.OutBandwidth(e.Options.Tech),
			Area:            float64(u.Area),
		})
	}
	return rows
}

// FactoryDesigns returns the sized zero and π/8 factories (Tables 6 and 8,
// Sections 4.4.1-4.4.2) plus the simple factory of Section 4.3.
func (e Experiments) FactoryDesigns() (simple factory.SimpleZeroFactory, zero, pi8 factory.Design) {
	return factory.SimpleZeroFactory{Tech: e.Options.Tech},
		factory.PipelinedZeroFactory(e.Options.Tech),
		factory.Pi8Factory(e.Options.Tech)
}

// Table9 returns the per-benchmark chip area breakdown.
func (e Experiments) Table9() ([]AreaBreakdown, error) {
	analyses, err := AnalyzeAllBenchmarks(e.Bits, e.Options)
	if err != nil {
		return nil, err
	}
	out := make([]AreaBreakdown, 0, len(analyses))
	for i, a := range analyses {
		b := a.Breakdown
		b.Name = fmt.Sprintf("%d-Bit %s", e.Bits, circuits.Benchmarks()[i])
		out = append(out, b)
	}
	return out, nil
}

// PrepErrorResult is one Figure 4 data point: the estimated error rates of an
// encoded-zero preparation variant.
type PrepErrorResult struct {
	Name       string
	PaperRate  float64
	FirstOrder noise.Estimate
	MonteCarlo noise.Estimate
	Ops        steane.Counts
}

// Figure4 evaluates the four encoded-zero preparation circuits under the
// paper's error model.  trials controls the Monte Carlo effort.
func (e Experiments) Figure4(trials int, seed int64) ([]PrepErrorResult, error) {
	code := steane.NewCode()
	model := noise.DefaultModel()
	paperRates := map[string]float64{
		"basic":              1.8e-3,
		"verify-only":        3.7e-4,
		"correct-only":       1.1e-3,
		"verify-and-correct": 2.9e-5,
	}
	order := []string{"basic", "verify-only", "correct-only", "verify-and-correct"}
	protocols := steane.StandardProtocols(code)
	var out []PrepErrorResult
	for _, name := range order {
		p := protocols[name]
		sim, err := noise.NewSimulator(code, p, model)
		if err != nil {
			return nil, err
		}
		out = append(out, PrepErrorResult{
			Name:       name,
			PaperRate:  paperRates[name],
			FirstOrder: sim.FirstOrder(),
			MonteCarlo: sim.MonteCarlo(trials, seed),
			Ops:        p.CountOps(),
		})
	}
	return out, nil
}

// Figure7 computes the ancilla demand profiles of the three benchmarks.
func (e Experiments) Figure7(buckets int) (map[string][]schedule.DemandPoint, error) {
	out := make(map[string][]schedule.DemandPoint)
	for _, b := range circuits.Benchmarks() {
		c, err := circuits.Generate(b, e.Bits)
		if err != nil {
			return nil, err
		}
		profile, err := schedule.DemandProfile(c, e.Options.Latency, buckets)
		if err != nil {
			return nil, err
		}
		out[b.String()] = profile
	}
	return out, nil
}

// Figure8 computes execution time versus steady ancilla throughput for the
// three benchmarks.
func (e Experiments) Figure8() (map[string][]schedule.SweepPoint, error) {
	out := make(map[string][]schedule.SweepPoint)
	for _, b := range circuits.Benchmarks() {
		c, err := circuits.Generate(b, e.Bits)
		if err != nil {
			return nil, err
		}
		ch, err := schedule.Characterize(c, e.Options.Latency)
		if err != nil {
			return nil, err
		}
		sweep, err := schedule.ThroughputSweep(c, e.Options.Latency, schedule.DefaultSweepRates(ch.ZeroBandwidthPerMs))
		if err != nil {
			return nil, err
		}
		out[b.String()] = sweep
	}
	return out, nil
}

// Figure15 runs the microarchitecture comparison for one benchmark.
func (e Experiments) Figure15(b circuits.Benchmark, maxScale int) (map[microarch.Architecture]microarch.Curve, error) {
	c, err := circuits.Generate(b, e.Bits)
	if err != nil {
		return nil, err
	}
	ch, err := schedule.Characterize(c, e.Options.Latency)
	if err != nil {
		return nil, err
	}
	base := microarch.DefaultConfig(microarch.FullyMultiplexed)
	base.Latency = e.Options.Latency
	base.CacheSlots = 16
	base.Pi8BandwidthPerMs = ch.Pi8BandwidthPerMs
	return microarch.Figure15(c, microarch.Figure15Config{Base: base, MaxScale: maxScale})
}

// FowlerResult summarises the Section 2.5 rotation-synthesis machinery.
type FowlerResult struct {
	// Sequences holds searched approximations for the first few π/2^k
	// rotations.
	Sequences []fowler.Sequence
	// TargetsK are the k values matching Sequences.
	TargetsK []int
	// Cascade holds the Figure 6 cascade statistics for a range of k.
	Cascade []fowler.CascadeStats
	// LengthAt1em4 is the modelled H/T sequence length at 1e-4 precision.
	LengthAt1em4 int
}

// Fowler runs the rotation-synthesis experiment (Section 2.5, Figure 6).
func (e Experiments) Fowler(maxGates int) (FowlerResult, error) {
	s := fowler.NewSearcher(maxGates)
	var res FowlerResult
	for k := 3; k <= 6; k++ {
		seq, _ := s.ApproximateRz(k, 1e-9)
		res.Sequences = append(res.Sequences, seq)
		res.TargetsK = append(res.TargetsK, k)
	}
	for _, k := range []int{3, 4, 6, 8, 16, 32} {
		c, err := fowler.Cascade(k)
		if err != nil {
			return FowlerResult{}, err
		}
		res.Cascade = append(res.Cascade, c)
	}
	res.LengthAt1em4 = fowler.DefaultLengthModel().Length(1e-4)
	return res, nil
}
