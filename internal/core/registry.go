package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"speedofdata/internal/circuits"
	"speedofdata/internal/engine"
	"speedofdata/internal/factory"
	"speedofdata/internal/iontrap"
	"speedofdata/internal/microarch"
	"speedofdata/internal/noise"
	"speedofdata/internal/report"
	"speedofdata/internal/schedule"
)

// RunParams carries the per-request experiment settings shared by the qsd
// command-line flags and the HTTP API query parameters.  Every field has a
// stable %v rendering, so a RunParams value participates directly in engine
// job fingerprints: two requests with equal parameters map to the same job
// key and the second is served from the engine cache (or coalesced onto the
// first while it is still running).
type RunParams struct {
	// Trials is the Monte Carlo effort for fig4.
	Trials int
	// Seed is the Monte Carlo seed for fig4.
	Seed int64
	// Buckets is the time-bucket count for fig7.
	Buckets int
	// MaxScale is the largest resource scale swept for fig15.
	MaxScale int
	// Benchmark selects the fig15 kernel (QRCA, QCLA or QFT).
	Benchmark string
	// Arch optionally restricts fig15 to one architecture ("" = all).
	Arch string
	// Buffer is the buffer capacity for the finite-buffer scenarios
	// (fig15buf, contention: encoded ancillae per source; factory-sim:
	// physical qubits per crossbar; netsweep, netcontention: EPR pairs per
	// link channel).  Zero means infinite.
	Buffer int
	// Tiles is the mesh tile bound for the network scenarios: netsweep
	// sweeps tile counts in powers of two up to it, netcontention, netfault
	// and netdegrade run one mesh planned for exactly this many tiles.
	Tiles int
	// Faults is the boundary-failure bound of netdegrade: the sweep kills
	// mesh boundaries one by one up to this count (capped at the mesh's
	// boundary total).
	Faults int
	// Sparse switches the fig4 Monte Carlo to the sparse fault-set sampler
	// (geometric skipping, fault-free trials short-circuited).  The default
	// dense sampler is byte-identical across releases for a seed; sparse is
	// statistically equivalent and much faster at physical error rates.
	Sparse bool
	// BitSliced switches the fig4 Monte Carlo to the bit-sliced executor
	// (64 trials per word operation).  Statistically equivalent to dense
	// and sparse; mutually exclusive with Sparse.
	BitSliced bool
	// CI, when positive, switches fig4 to sequential sampling: run the
	// bit-sliced executor until the uncorrectable rate's Wilson interval
	// reaches this relative half-width (or Trials is spent), streaming
	// refining partial estimates.  Mutually exclusive with Sparse.
	CI float64
	// Conf is the confidence level of the CI stopping rule (0 means
	// noise.DefaultConfidence).  Requires CI.
	Conf float64
}

// DefaultBufferAncillae is the standard finite buffer capacity of the
// event-driven scenarios, in encoded ancillae per source.
const DefaultBufferAncillae = 16

// DefaultTiles is the standard mesh tile bound of the network scenarios.
const DefaultTiles = 4

// DefaultFaults is the standard boundary-failure bound of netdegrade: on the
// default 2x2 mesh it sweeps past the partition point.
const DefaultFaults = 4

// DefaultRunParams returns the paper's standard settings.
func DefaultRunParams() RunParams {
	return RunParams{
		Trials:    noise.DefaultTrials,
		Seed:      1,
		Buckets:   schedule.DefaultDemandBuckets,
		MaxScale:  microarch.DefaultMaxScale,
		Benchmark: circuits.QCLA.String(),
		Buffer:    DefaultBufferAncillae,
		Tiles:     DefaultTiles,
		Faults:    DefaultFaults,
	}
}

// SamplingConflictError reports a request that selects mutually exclusive
// fig4 sampling modes.  It lists the allowed combinations so CLI and HTTP
// users see how to fix the request rather than having one selector silently
// win.
type SamplingConflictError struct {
	// Selected are the conflicting selectors as their flag/query spellings.
	Selected []string
}

func (e *SamplingConflictError) Error() string {
	return fmt.Sprintf("sampling selectors %s are mutually exclusive; allowed: none (dense), sparse alone, bitsliced alone, ci alone or with conf, ci+bitsliced",
		strings.Join(e.Selected, "+"))
}

// Validate rejects parameter combinations no experiment can run.
func (p RunParams) Validate() error {
	if p.Trials <= 0 {
		return fmt.Errorf("trials must be positive, got %d", p.Trials)
	}
	// Sparse cannot combine with the bit-sliced executor or the CI mode
	// (which implies bit-sliced); ci+bitsliced is redundant but consistent,
	// so it stays allowed.
	if p.Sparse && (p.BitSliced || p.CI > 0) {
		conflict := []string{"sparse"}
		if p.BitSliced {
			conflict = append(conflict, "bitsliced")
		}
		if p.CI > 0 {
			conflict = append(conflict, "ci")
		}
		return &SamplingConflictError{Selected: conflict}
	}
	if p.CI < 0 || p.CI >= 1 {
		return fmt.Errorf("ci must be a relative half-width in (0, 1), or 0 for a fixed trial budget; got %v", p.CI)
	}
	if p.Conf != 0 {
		if p.CI == 0 {
			return fmt.Errorf("conf requires ci (a confidence level needs a half-width target)")
		}
		if p.Conf < 0 || p.Conf >= 1 {
			return fmt.Errorf("conf must be a confidence level in (0, 1), got %v", p.Conf)
		}
	}
	if p.Buckets <= 0 {
		return fmt.Errorf("buckets must be positive, got %d", p.Buckets)
	}
	if p.MaxScale <= 0 {
		return fmt.Errorf("max scale must be positive, got %d", p.MaxScale)
	}
	if _, err := circuits.ParseBenchmark(p.Benchmark); err != nil {
		return err
	}
	if p.Arch != "" {
		if _, err := microarch.ParseArchitecture(p.Arch); err != nil {
			return err
		}
	}
	if p.Buffer < 0 {
		return fmt.Errorf("buffer must be non-negative (0 = infinite), got %d", p.Buffer)
	}
	if p.Tiles <= 0 {
		return fmt.Errorf("tiles must be positive, got %d", p.Tiles)
	}
	if p.Faults < 0 {
		return fmt.Errorf("faults must be non-negative, got %d", p.Faults)
	}
	return nil
}

// ExperimentInfo describes one registered experiment for listings (the qsd
// usage text and the HTTP API index).
type ExperimentInfo struct {
	// ID is the canonical experiment id.
	ID string
	// Title is the human-readable name (the paper table/figure it renders).
	Title string
	// Aliases are alternate ids accepted for the same experiment.
	Aliases []string
	// Params names the RunParams fields the experiment honours, as their
	// flag/query spellings.
	Params []string
}

// renderFunc regenerates one experiment as a structured report section.
type renderFunc func(e Experiments, p RunParams) (report.Section, error)

// experiment is one registry entry.
type experiment struct {
	info   ExperimentInfo
	render renderFunc
}

// registry maps every canonical experiment id to its entry; aliases are
// resolved by CanonicalExperimentID.
var registry = map[string]experiment{
	"table1": {
		info:   ExperimentInfo{ID: "table1", Title: "Tables 1 and 4: ion trap physical operation latencies", Aliases: []string{"table4"}},
		render: func(Experiments, RunParams) (report.Section, error) { return renderTechnology() },
	},
	"table2": {
		info:   ExperimentInfo{ID: "table2", Title: "Table 2: critical-path latency split", Params: []string{"bits"}},
		render: func(e Experiments, _ RunParams) (report.Section, error) { return renderCharacterization(e, "table2") },
	},
	"table3": {
		info:   ExperimentInfo{ID: "table3", Title: "Table 3: encoded ancilla bandwidths at the speed of data", Params: []string{"bits"}},
		render: func(e Experiments, _ RunParams) (report.Section, error) { return renderCharacterization(e, "table3") },
	},
	"table5": {
		info:   ExperimentInfo{ID: "table5", Title: "Table 5: pipelined zero-factory functional units"},
		render: func(e Experiments, _ RunParams) (report.Section, error) { return renderTable5(e) },
	},
	"table6": {
		info:   ExperimentInfo{ID: "table6", Title: "Table 6: pipelined encoded-zero factory", Aliases: []string{"zero-factory"}},
		render: func(e Experiments, _ RunParams) (report.Section, error) { return renderZeroFactory(e) },
	},
	"table7": {
		info:   ExperimentInfo{ID: "table7", Title: "Table 7: encoded pi/8 factory stages"},
		render: func(e Experiments, _ RunParams) (report.Section, error) { return renderTable7(e) },
	},
	"table8": {
		info:   ExperimentInfo{ID: "table8", Title: "Table 8: encoded pi/8 factory", Aliases: []string{"pi8-factory"}},
		render: func(e Experiments, _ RunParams) (report.Section, error) { return renderPi8Factory(e) },
	},
	"table9": {
		info:   ExperimentInfo{ID: "table9", Title: "Table 9: chip area breakdown (Qalypso)", Aliases: []string{"qalypso"}, Params: []string{"bits"}},
		render: func(e Experiments, _ RunParams) (report.Section, error) { return renderTable9(e) },
	},
	"simple-factory": {
		info:   ExperimentInfo{ID: "simple-factory", Title: "Section 4.3: simple encoded-zero factory"},
		render: func(e Experiments, _ RunParams) (report.Section, error) { return renderSimpleFactory(e) },
	},
	"fig4": {
		info: ExperimentInfo{ID: "fig4", Title: "Figure 4: encoded-zero preparation error rates", Aliases: []string{"figure4"}, Params: []string{"trials", "seed", "sparse", "bitsliced", "ci", "conf"}},
		render: func(e Experiments, p RunParams) (report.Section, error) {
			if p.CI > 0 {
				return renderFigure4CI(e, p.CI, p.Conf, p.Trials, p.Seed)
			}
			sampling := noise.SamplingDense
			switch {
			case p.Sparse:
				sampling = noise.SamplingSparse
			case p.BitSliced:
				sampling = noise.SamplingBitSliced
			}
			return renderFigure4(e, p.Trials, p.Seed, sampling)
		},
	},
	"fig7": {
		info:   ExperimentInfo{ID: "fig7", Title: "Figure 7: ancilla demand profiles", Aliases: []string{"figure7"}, Params: []string{"bits", "buckets"}},
		render: func(e Experiments, p RunParams) (report.Section, error) { return renderFigure7(e, p.Buckets) },
	},
	"fig8": {
		info:   ExperimentInfo{ID: "fig8", Title: "Figure 8: execution time vs ancilla throughput", Aliases: []string{"figure8"}, Params: []string{"bits"}},
		render: func(e Experiments, _ RunParams) (report.Section, error) { return renderFigure8(e) },
	},
	"fig15": {
		info: ExperimentInfo{ID: "fig15", Title: "Figure 15: execution time vs ancilla factory area", Aliases: []string{"figure15"}, Params: []string{"bits", "benchmark", "max-scale", "arch"}},
		render: func(e Experiments, p RunParams) (report.Section, error) {
			return renderFigure15(e, p.Benchmark, p.MaxScale, p.Arch)
		},
	},
	"fig15buf": {
		info: ExperimentInfo{ID: "fig15buf", Title: "Figure 15 with finite ancilla buffers (event-driven)",
			Aliases: []string{"figure15-buffered"}, Params: []string{"bits", "benchmark", "max-scale", "arch", "buffer"}},
		render: func(e Experiments, p RunParams) (report.Section, error) {
			return renderFigure15Buffered(e, p.Benchmark, p.MaxScale, p.Arch, p.Buffer)
		},
	},
	"buffersweep": {
		info: ExperimentInfo{ID: "buffersweep", Title: "Ancilla buffer capacity sweep (event-driven)",
			Aliases: []string{"buffer-sweep"}, Params: []string{"bits", "benchmark", "arch"}},
		render: func(e Experiments, p RunParams) (report.Section, error) {
			return renderBufferSweep(e, p.Benchmark, p.Arch)
		},
	},
	"contention": {
		info: ExperimentInfo{ID: "contention", Title: "Co-scheduled benchmarks contending for one shared ancilla supply",
			Aliases: []string{"co-schedule"}, Params: []string{"bits", "buffer"}},
		render: func(e Experiments, p RunParams) (report.Section, error) {
			return renderContention(e, p.Buffer)
		},
	},
	"netsweep": {
		info: ExperimentInfo{ID: "netsweep", Title: "Teleportation network: execution time vs link bandwidth and tile count",
			Aliases: []string{"network-sweep"}, Params: []string{"bits", "benchmark", "tiles", "buffer"}},
		render: func(e Experiments, p RunParams) (report.Section, error) {
			return renderNetSweep(e, p.Benchmark, p.Tiles, p.Buffer)
		},
	},
	"netcontention": {
		info: ExperimentInfo{ID: "netcontention", Title: "Teleportation network: co-scheduled benchmarks sharing one mesh",
			Aliases: []string{"network-contention"}, Params: []string{"bits", "tiles", "buffer"}},
		render: func(e Experiments, p RunParams) (report.Section, error) {
			return renderNetContention(e, p.Tiles, p.Buffer)
		},
	},
	"netfault": {
		info: ExperimentInfo{ID: "netfault", Title: "Teleportation network under faults: dead and degraded EPR links",
			Aliases: []string{"network-fault"}, Params: []string{"bits", "benchmark", "tiles", "buffer"}},
		render: func(e Experiments, p RunParams) (report.Section, error) {
			return renderNetFault(e, p.Benchmark, p.Tiles, p.Buffer)
		},
	},
	"netdegrade": {
		info: ExperimentInfo{ID: "netdegrade", Title: "Teleportation network: link failures until the mesh partitions",
			Aliases: []string{"network-degrade"}, Params: []string{"bits", "benchmark", "tiles", "buffer", "faults"}},
		render: func(e Experiments, p RunParams) (report.Section, error) {
			return renderNetDegrade(e, p.Benchmark, p.Tiles, p.Buffer, p.Faults)
		},
	},
	"factory-sim": {
		info: ExperimentInfo{ID: "factory-sim", Title: "Event-driven factory pipelines: measured vs bandwidth-matched throughput",
			Aliases: []string{"pipeline-sim"}, Params: []string{"buffer"}},
		render: func(e Experiments, p RunParams) (report.Section, error) {
			return renderFactorySim(e, p.Buffer)
		},
	},
	"fowler": {
		info:   ExperimentInfo{ID: "fowler", Title: "Section 2.5 / Figure 6: H/T rotation synthesis"},
		render: func(e Experiments, _ RunParams) (report.Section, error) { return renderFowler(e) },
	},
	"shor": {
		info:   ExperimentInfo{ID: "shor", Title: "Extension: Shor's algorithm resource estimate", Params: []string{"bits"}},
		render: func(e Experiments, _ RunParams) (report.Section, error) { return renderShor(e) },
	},
}

// AllExperimentOrder is the presentation order of `qsd all` and of the
// aggregate HTTP report.  The Monte Carlo and grid-heavy experiments (fig4,
// fig15) are excluded to keep the aggregate run fast; they remain
// individually addressable.
var AllExperimentOrder = []string{
	"table1", "table2", "table3", "table5", "table6", "table7", "table8",
	"table9", "fig7", "fig8", "fowler",
}

// ExperimentIDs returns every canonical experiment id, sorted.
func ExperimentIDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// ExperimentInfos returns the registry metadata sorted by id.
func ExperimentInfos() []ExperimentInfo {
	infos := make([]ExperimentInfo, 0, len(registry))
	for _, id := range ExperimentIDs() {
		infos = append(infos, registry[id].info)
	}
	return infos
}

// CanonicalExperimentID resolves an id or alias (case-insensitive) to the
// canonical experiment id, reporting whether it is known.  "all" is not an
// experiment; callers expand it with AllExperimentOrder.
func CanonicalExperimentID(id string) (string, bool) {
	id = strings.ToLower(id)
	if _, ok := registry[id]; ok {
		return id, true
	}
	for canon, exp := range registry {
		for _, a := range exp.info.Aliases {
			if id == a {
				return canon, true
			}
		}
	}
	return "", false
}

// RunExperiment regenerates one experiment (by id or alias) as a structured
// section, dispatching its inner sweeps through e.Engine.
func RunExperiment(e Experiments, id string, p RunParams) (report.Section, error) {
	canon, ok := CanonicalExperimentID(id)
	if !ok {
		return report.Section{}, fmt.Errorf("unknown experiment %q", id)
	}
	sec, err := registry[canon].render(e, p)
	if err != nil {
		return report.Section{}, fmt.Errorf("%s: %w", id, err)
	}
	sec.ID = id
	return sec, nil
}

// RunReport regenerates the requested experiments as one engine job batch
// and collects the sections in request order.  Experiments that share work
// (e.g. the Table 2/3 characterisations feeding Figure 8) hit the engine's
// result cache through their inner jobs, and identical concurrent requests
// coalesce onto one in-flight computation.
func RunReport(ctx context.Context, e Experiments, p RunParams, ids []string) (report.Document, error) {
	jobs := make([]engine.Job[report.Section], len(ids))
	for i, id := range ids {
		id := id
		if _, ok := CanonicalExperimentID(id); !ok {
			return report.Document{}, fmt.Errorf("unknown experiment %q", id)
		}
		jobs[i] = engine.Job[report.Section]{
			Key: engine.Fingerprint("qsd", id, e.Bits, p),
			Run: func(ctx context.Context, _ *rand.Rand) (report.Section, error) {
				// Bound the experiment's nested batches by the batch context
				// so cancelling the request stops the inner sweeps too.
				e := e
				e.Ctx = ctx
				return RunExperiment(e, id, p)
			},
		}
	}
	sections, err := engine.Run(ctx, e.Engine, jobs)
	if err != nil {
		return report.Document{}, err
	}
	var doc report.Document
	for _, sec := range sections {
		doc.AddSection(sec)
	}
	return doc, nil
}

func renderTechnology() (report.Section, error) {
	tech := iontrap.Default()
	tb := report.Table{
		Title:   "Tables 1 and 4: ion trap physical operation latencies",
		Headers: []string{"Operation", "Symbol", "Latency (us)"},
	}
	names := map[iontrap.Op]string{
		iontrap.OpOneQubitGate: "One-Qubit Gate",
		iontrap.OpTwoQubitGate: "Two-Qubit Gate",
		iontrap.OpMeasure:      "Measurement",
		iontrap.OpZeroPrep:     "Zero Prepare",
		iontrap.OpStraightMove: "Straight Move",
		iontrap.OpTurn:         "Turn",
	}
	for _, op := range iontrap.Ops() {
		tb.AddRow(names[op], op.String(), float64(tech.LatencyOf(op)))
	}
	return report.NewSection("", tb), nil
}

func renderCharacterization(e Experiments, id string) (report.Section, error) {
	rows, err := e.Table2And3()
	if err != nil {
		return report.Section{}, err
	}
	if id == "table2" {
		tb := report.Table{
			Title: "Table 2: critical-path latency split (no overlap)",
			Headers: []string{"Circuit", "Data Op (us)", "%", "QEC Interact (us)", "%",
				"Ancilla Prep (us)", "%", "Speed-of-data (us)", "Speedup"},
		}
		for _, r := range rows {
			d, i, p := r.Fractions()
			tb.AddRow(r.Name, float64(r.DataOpLatency), pct(d), float64(r.QECInteractLatency), pct(i),
				float64(r.AncillaPrepLatency), pct(p), float64(r.SpeedOfDataTime), r.Speedup())
		}
		return report.NewSection("", tb), nil
	}
	tb := report.Table{
		Title:   "Table 3: average encoded ancilla bandwidths at the speed of data",
		Headers: []string{"Circuit", "Zero ancillae/ms (QEC)", "pi/8 ancillae/ms", "Total gates", "pi/8 gates"},
	}
	for _, r := range rows {
		tb.AddRow(r.Name, r.ZeroBandwidthPerMs, r.Pi8BandwidthPerMs, r.TotalGates, r.Pi8Gates)
	}
	return report.NewSection("", tb), nil
}

func renderTable5(e Experiments) (report.Section, error) {
	return report.NewSection("", unitTable("Table 5: pipelined zero-factory functional units", e.Table5())), nil
}

func renderTable7(e Experiments) (report.Section, error) {
	return report.NewSection("", unitTable("Table 7: encoded pi/8 factory stages", e.Table7())), nil
}

func renderZeroFactory(e Experiments) (report.Section, error) {
	_, zero, _ := e.FactoryDesigns()
	return designSection("Table 6 / Section 4.4.1: pipelined encoded-zero factory", zero), nil
}

func renderPi8Factory(e Experiments) (report.Section, error) {
	_, _, pi8 := e.FactoryDesigns()
	return designSection("Table 8 / Section 4.4.2: encoded pi/8 factory", pi8), nil
}

func renderSimpleFactory(e Experiments) (report.Section, error) {
	simple, _, _ := e.FactoryDesigns()
	var b strings.Builder
	fmt.Fprintf(&b, "Simple encoded-zero factory (Section 4.3)\n")
	fmt.Fprintf(&b, "  latency    : %s = %v us\n", simple.Latency(), simple.LatencyUs())
	fmt.Fprintf(&b, "  throughput : %.1f encoded ancillae / ms\n", simple.ThroughputPerMs())
	fmt.Fprintf(&b, "  area       : %v macroblocks\n", simple.Area())
	return report.NewSection("", report.Text(b.String())), nil
}

func unitTable(title string, rows []Table5Row) report.Table {
	tb := report.Table{
		Title:   title,
		Headers: []string{"Functional Unit", "Symbolic Latency", "Latency (us)", "Stages", "In BW (q/ms)", "Out BW (q/ms)", "Area"},
	}
	for _, r := range rows {
		tb.AddRow(r.Name, r.SymbolicLatency, r.LatencyUs, r.Stages, r.InBWPerMs, r.OutBWPerMs, r.Area)
	}
	return tb
}

func designSection(title string, d factory.Design) report.Section {
	tb := report.Table{
		Title:   title,
		Headers: []string{"Stage", "Unit", "Count", "Total Height", "Total Area"},
	}
	for _, s := range d.Stages {
		for _, a := range s.Allocations {
			tb.AddRow(s.Name, a.Unit.Name, a.Count, a.TotalHeight(), float64(a.TotalArea()))
		}
	}
	foot := fmt.Sprintf("functional area %v + crossbar area %v = %v macroblocks; throughput %.1f encoded ancillae/ms\n",
		d.FunctionalArea(), d.CrossbarArea(), d.TotalArea(), d.ThroughputPerMs)
	return report.NewSection("", tb, report.Text(foot))
}

func renderTable9(e Experiments) (report.Section, error) {
	rows, err := e.Table9()
	if err != nil {
		return report.Section{}, err
	}
	tb := report.Table{
		Title: "Table 9: area breakdown to generate encoded ancillae at the Table 3 bandwidths",
		Headers: []string{"Circuit", "Zero BW (/ms)", "Data Area", "%", "QEC Factories", "%",
			"pi/8 Factories", "%", "Total"},
	}
	for _, r := range rows {
		d, q, p := r.Fractions()
		tb.AddRow(r.Name, r.ZeroBandwidthPerMs, float64(r.DataArea), pct(d),
			float64(r.QECFactoryArea), pct(q), float64(r.Pi8FactoryArea), pct(p), float64(r.TotalArea()))
	}
	return report.NewSection("", tb), nil
}

func renderFigure4(e Experiments, trials int, seed int64, sampling noise.Sampling) (report.Section, error) {
	rows, err := e.Figure4Sampled(trials, seed, sampling)
	if err != nil {
		return report.Section{}, err
	}
	tb := report.Table{
		Title: "Figure 4: encoded-zero preparation error rates (uncorrectable = logical error after ideal decode)",
		Headers: []string{"Circuit", "Paper rate", "First-order uncorrectable", "MC uncorrectable", "MC residual",
			"Verify reject", "Physical ops"},
	}
	for _, r := range rows {
		tb.AddRow(r.Name, r.PaperRate, r.FirstOrder.UncorrectableRate, r.MonteCarlo.UncorrectableRate,
			r.MonteCarlo.ResidualRate, r.MonteCarlo.RejectRate, r.Ops.Total())
	}
	return report.NewSection("", tb), nil
}

func renderFigure4CI(e Experiments, epsilon, confidence float64, maxTrials int, seed int64) (report.Section, error) {
	rows, err := e.Figure4Target(epsilon, confidence, maxTrials, seed)
	if err != nil {
		return report.Section{}, err
	}
	conf := confidence
	if conf == 0 {
		conf = noise.DefaultConfidence
	}
	tb := report.Table{
		Title: fmt.Sprintf("Figure 4, sequential sampling to %.3g relative half-width at %.2g confidence (bit-sliced, cap %d trials)",
			epsilon, conf, maxTrials),
		Headers: []string{"Circuit", "Paper rate", "MC uncorrectable", "MC residual", "Verify reject",
			"Trials used", "Converged"},
	}
	for _, r := range rows {
		tb.AddRow(r.Name, r.PaperRate, r.MonteCarlo.UncorrectableRate, r.MonteCarlo.ResidualRate,
			r.MonteCarlo.RejectRate, r.MonteCarlo.Trials, r.Converged)
	}
	note := report.Text("Unconverged rows spent the full trial cap without meeting the half-width target " +
		"(rare-event rates need more trials; raise -trials or loosen -ci).\n")
	return report.NewSection("", tb, note), nil
}

func renderFigure7(e Experiments, buckets int) (report.Section, error) {
	profiles, err := e.Figure7(buckets)
	if err != nil {
		return report.Section{}, err
	}
	var blocks []report.Block
	for _, name := range sortedKeys(profiles) {
		s := report.Series{
			Title:  fmt.Sprintf("Figure 7 (%s): encoded zero ancillae needed per time bucket", name),
			XLabel: "time (ms)", YLabel: "encoded zero ancillae",
		}
		for _, p := range profiles[name] {
			s.Add(p.TimeMs, float64(p.ZeroAncillae))
		}
		blocks = append(blocks, s, report.Text("\n"))
	}
	return report.Section{Blocks: blocks}, nil
}

func renderFigure8(e Experiments) (report.Section, error) {
	sweeps, err := e.Figure8()
	if err != nil {
		return report.Section{}, err
	}
	var blocks []report.Block
	for _, name := range sortedKeys(sweeps) {
		s := report.Series{
			Title:  fmt.Sprintf("Figure 8 (%s): execution time vs steady zero-ancilla throughput", name),
			XLabel: "ancillae/ms", YLabel: "execution time (ms)",
		}
		for _, p := range sweeps[name] {
			s.Add(p.ThroughputPerMs, p.ExecutionTimeMs)
		}
		blocks = append(blocks, s, report.Text("\n"))
	}
	return report.Section{Blocks: blocks}, nil
}

func renderFigure15(e Experiments, benchName string, maxScale int, archName string) (report.Section, error) {
	bench, archs, err := parseFig15Selection(benchName, archName)
	if err != nil {
		return report.Section{}, err
	}
	curves, err := e.Figure15Archs(bench, maxScale, archs)
	if err != nil {
		return report.Section{}, err
	}
	tb := report.Table{
		Title:   fmt.Sprintf("Figure 15 (%d-bit %s): execution time vs ancilla factory area", e.Bits, bench),
		Headers: []string{"Architecture", "Scale", "Factory area (macroblocks)", "Execution time (ms)"},
	}
	for _, arch := range archs {
		for _, p := range curves[arch].Points {
			tb.AddRow(arch.String(), p.Scale, p.AreaMacroblocks, p.ExecutionTimeMs)
		}
	}
	return report.NewSection("", tb), nil
}

// parseFig15Selection resolves the benchmark and optional architecture filter
// shared by the fig15 and fig15buf renderers.
func parseFig15Selection(benchName, archName string) (circuits.Benchmark, []microarch.Architecture, error) {
	bench, err := circuits.ParseBenchmark(benchName)
	if err != nil {
		return 0, nil, err
	}
	archs := microarch.Architectures()
	if archName != "" {
		arch, err := microarch.ParseArchitecture(archName)
		if err != nil {
			return 0, nil, err
		}
		archs = []microarch.Architecture{arch}
	}
	return bench, archs, nil
}

func renderFigure15Buffered(e Experiments, benchName string, maxScale int, archName string, buffer int) (report.Section, error) {
	bench, archs, err := parseFig15Selection(benchName, archName)
	if err != nil {
		return report.Section{}, err
	}
	curves, err := e.Figure15Buffered(bench, maxScale, archs, float64(buffer))
	if err != nil {
		return report.Section{}, err
	}
	tb := report.Table{
		Title: fmt.Sprintf("Figure 15, event-driven with %s-ancilla buffers (%d-bit %s)",
			bufferLabel(buffer), e.Bits, bench),
		Headers: []string{"Architecture", "Scale", "Factory area (macroblocks)", "Execution time (ms)",
			"Ancilla stall (ms)", "Buffer high water"},
	}
	for _, arch := range archs {
		for _, p := range curves[arch].Points {
			tb.AddRow(arch.String(), p.Scale, p.AreaMacroblocks, p.ExecutionTimeMs,
				p.AncillaStallMs, p.BufferHighWater)
		}
	}
	return report.NewSection("", tb), nil
}

func renderBufferSweep(e Experiments, benchName, archName string) (report.Section, error) {
	bench, err := circuits.ParseBenchmark(benchName)
	if err != nil {
		return report.Section{}, err
	}
	arch := microarch.FullyMultiplexed
	if archName != "" {
		if arch, err = microarch.ParseArchitecture(archName); err != nil {
			return report.Section{}, err
		}
	}
	points, err := e.BufferSweep(bench, arch)
	if err != nil {
		return report.Section{}, err
	}
	tb := report.Table{
		Title: fmt.Sprintf("Ancilla buffer sweep (%d-bit %s on %v, demand-matched supply)", e.Bits, bench, arch),
		Headers: []string{"Buffer (ancillae)", "Execution time (ms)", "Ancilla stall (ms)",
			"Producer stall (ms)", "Buffer high water", "Kernel events"},
	}
	for _, p := range points {
		tb.AddRow(bufferLabel(int(p.BufferAncillae)), p.ExecutionTimeMs, p.AncillaStallMs,
			p.ProducerStallMs, p.BufferHighWater, p.Events)
	}
	note := report.Text("The final row is the infinite-buffer (closed-form) reference the finite capacities converge to.\n")
	return report.NewSection("", tb, note), nil
}

func renderContention(e Experiments, buffer int) (report.Section, error) {
	levels, err := e.Contention(float64(buffer))
	if err != nil {
		return report.Section{}, err
	}
	tb := report.Table{
		Title: fmt.Sprintf("Co-scheduled benchmarks on one shared zero-ancilla supply (%d-bit, %s-ancilla buffer)",
			e.Bits, bufferLabel(buffer)),
		Headers: []string{"Supply (x avg demand)", "Rate (anc/ms)", "Benchmark", "Exec (ms)",
			"Speed-of-data (ms)", "Slowdown", "Ancilla wait (ms)", "Producer stall (ms)"},
	}
	for _, lv := range levels {
		for _, r := range lv.Run.Results {
			tb.AddRow(fmt.Sprintf("%.2fx", lv.DemandFraction), lv.Supply.RatePerMs, r.Name,
				r.ExecutionTime.Milliseconds(), r.SpeedOfData.Milliseconds(), r.Slowdown(),
				r.AncillaWait.Milliseconds(), lv.Run.ProducerStall.Milliseconds())
		}
	}
	note := report.Text("Each supply level replays all benchmarks concurrently against one factory bank; " +
		"bursty neighbours steal headroom even when the average supply matches the average demand.\n")
	return report.NewSection("", tb, note), nil
}

func renderFactorySim(e Experiments, buffer int) (report.Section, error) {
	zero, pi8, err := e.FactoryPipelines(float64(buffer))
	if err != nil {
		return report.Section{}, err
	}
	var blocks []report.Block
	for _, r := range []factory.PipelineRun{zero, pi8} {
		tb := report.Table{
			Title: fmt.Sprintf("Event-driven %s (%v ms horizon, %s-qubit crossbar buffers)",
				r.Name, r.HorizonMs, bufferLabel(int(r.BufferQubits))),
			Headers: []string{"Stage", "Unit", "Count", "Ops", "Starve (ms)", "Stall (ms)", "Busy"},
		}
		for _, s := range r.Stages {
			tb.AddRow(s.Stage, s.Unit, s.Count, s.Ops, s.StarveMs, s.StallMs, s.BusyFrac)
		}
		foot := report.Text(fmt.Sprintf("measured %.2f encoded ancillae/ms vs bandwidth-matched %.2f/ms (%d kernel events)\n\n",
			r.MeasuredPerMs, r.AnalyticPerMs, r.Events))
		blocks = append(blocks, tb, foot)
	}
	return report.Section{Blocks: blocks}, nil
}

func renderNetSweep(e Experiments, benchName string, tiles, buffer int) (report.Section, error) {
	bench, err := circuits.ParseBenchmark(benchName)
	if err != nil {
		return report.Section{}, err
	}
	points, err := e.NetSweep(bench, tiles, buffer)
	if err != nil {
		return report.Section{}, err
	}
	tb := report.Table{
		Title: fmt.Sprintf("Teleportation network sweep (%d-bit %s, meshes up to %d tiles, %s-pair link buffers)",
			e.Bits, bench, tiles, bufferLabel(buffer)),
		Headers: []string{"Tiles", "Link BW factor", "Link BW (pairs/ms)", "Exec (ms)",
			"Network-blocked (ms)", "Ancilla wait (ms)", "Cross gates", "Mean hops", "Link high water"},
	}
	for _, p := range points {
		tb.AddRow(p.Tiles, fmt.Sprintf("%.2fx", p.LinkFactor), p.LinkEPRPerMs, p.ExecutionTimeMs,
			p.NetworkBlockedMs, p.AncillaWaitMs, p.CrossGates, p.MeanHops, p.MaxLinkHighWater)
	}
	note := report.Text("Each row replays the benchmark on a routed 2D mesh with per-link EPR-pair generators; " +
		"raising the link bandwidth monotonically drains the network-blocked share of the makespan.\n")
	return report.NewSection("", tb, note), nil
}

func renderNetContention(e Experiments, tiles, buffer int) (report.Section, error) {
	levels, err := e.NetContention(tiles, buffer)
	if err != nil {
		return report.Section{}, err
	}
	tb := report.Table{
		Title: fmt.Sprintf("Co-scheduled benchmarks on one %d-tile teleportation mesh (%d-bit, %s-pair link buffers)",
			tiles, e.Bits, bufferLabel(buffer)),
		Headers: []string{"Link BW factor", "Benchmark", "Exec (ms)", "Speed-of-data (ms)", "Slowdown",
			"Network-blocked (ms)", "Ancilla wait (ms)", "Teleports", "Max link high water"},
	}
	for _, lv := range levels {
		for _, r := range lv.Run.Results {
			tb.AddRow(fmt.Sprintf("%.2fx", lv.LinkFactor), r.Name,
				r.ExecutionTime.Milliseconds(), r.SpeedOfData.Milliseconds(), r.Slowdown(),
				r.NetworkBlocked.Milliseconds(), r.AncillaWait.Milliseconds(), r.Teleports,
				lv.Run.MaxLinkHighWater())
		}
	}
	note := report.Text("All benchmarks run concurrently on one mesh: cross-tile teleports from different " +
		"programs queue at the same EPR links, so a chatty neighbour inflates everyone's network-blocked time.\n")
	return report.NewSection("", tb, note), nil
}

func renderNetFault(e Experiments, benchName string, tiles, buffer int) (report.Section, error) {
	bench, err := circuits.ParseBenchmark(benchName)
	if err != nil {
		return report.Section{}, err
	}
	points, err := e.NetFault(bench, tiles, buffer)
	if err != nil {
		return report.Section{}, err
	}
	tb := report.Table{
		Title: fmt.Sprintf("Teleportation network under faults (%d-bit %s, %d-tile mesh, %s-pair link buffers)",
			e.Bits, bench, tiles, bufferLabel(buffer)),
		Headers: []string{"Fault", "Link BW factor", "Link BW (pairs/ms)", "Exec (ms)", "Network-blocked (ms)",
			"Reroutes", "In-flight", "Detour hops", "Degraded wait (ms)", "Dead links"},
	}
	for _, p := range points {
		tb.AddRow(p.Mode, fmt.Sprintf("%.2fx", p.LinkFactor), p.LinkEPRPerMs, p.ExecutionTimeMs,
			p.NetworkBlockedMs, p.Reroutes, p.InFlightReroutes, p.DetourHops, p.DegradedWaitMs, p.FailedLinks)
	}
	note := report.Text("Each link-bandwidth factor replays the benchmark three ways — pristine mesh, every link " +
		"degraded to 75% of its EPR rate, and the bisection boundary dead — with routes re-resolved around the " +
		"damage; any damage costs makespan over the pristine mesh, and at matched bandwidth and above the dead " +
		"link (detours) costs more than uniform degradation (at starved factors slowing every link can hurt more " +
		"than losing one).\n")
	return report.NewSection("", tb, note), nil
}

func renderNetDegrade(e Experiments, benchName string, tiles, buffer, faults int) (report.Section, error) {
	bench, err := circuits.ParseBenchmark(benchName)
	if err != nil {
		return report.Section{}, err
	}
	rows, err := e.NetDegrade(bench, tiles, buffer, faults)
	if err != nil {
		return report.Section{}, err
	}
	tb := report.Table{
		Title: fmt.Sprintf("Link failures until partition (%d-bit %s, %d-tile mesh at matched link bandwidth, %s-pair link buffers)",
			e.Bits, bench, tiles, bufferLabel(buffer)),
		Headers: []string{"Boundaries dead", "Dead links", "Exec (ms)", "Network-blocked (ms)",
			"Reroutes", "In-flight", "Detour hops", "Mean hops", "Partitioned"},
	}
	for _, r := range rows {
		if r.Partitioned {
			tb.AddRow(r.Failures, r.FailedLinks, "-", "-", "-", "-", "-", "-", true)
			continue
		}
		tb.AddRow(r.Failures, r.FailedLinks, r.ExecutionTimeMs, r.NetworkBlockedMs,
			r.Reroutes, r.InFlightReroutes, r.DetourHops, r.MeanHops, false)
	}
	note := report.Text("Mesh boundaries die one by one (both directions each) in stable order while teleports " +
		"re-route around the damage; rows past the partition point report Partitioned instead of a makespan.\n")
	return report.NewSection("", tb, note), nil
}

// bufferLabel renders a buffer capacity, spelling out the infinite case.
func bufferLabel(buffer int) string {
	if buffer <= 0 {
		return "infinite"
	}
	return fmt.Sprintf("%d", buffer)
}

func renderFowler(e Experiments) (report.Section, error) {
	res, err := e.Fowler(10)
	if err != nil {
		return report.Section{}, err
	}
	tb := report.Table{
		Title:   "Section 2.5: H/T approximation of pi/2^k rotations",
		Headers: []string{"k", "Sequence", "Length", "T count", "Error"},
	}
	for i, seq := range res.Sequences {
		tb.AddRow(res.TargetsK[i], seq.Gates, seq.Len(), seq.TCount(), seq.Error)
	}
	note := report.Text(fmt.Sprintf("modelled H/T sequence length at 1e-4 precision: %d gates\n\n", res.LengthAt1em4))
	tb2 := report.Table{
		Title:   "Figure 6: exact recursive pi/2^k cascade",
		Headers: []string{"k", "Factories", "Worst-case CX", "Expected CX", "Expected X"},
	}
	for _, c := range res.Cascade {
		tb2.AddRow(c.K, c.AncillaFactories, c.WorstCaseCX, c.ExpectedCX, c.ExpectedX)
	}
	return report.NewSection("", tb, note, tb2), nil
}

func renderShor(e Experiments) (report.Section, error) {
	tb := report.Table{
		Title: fmt.Sprintf("Extension: Shor's algorithm resource estimate (%d-bit modulus, speed-of-data execution)", e.Bits),
		Headers: []string{"Adder", "Adder calls", "Exec time (s)", "Zero anc/ms", "pi/8 anc/ms",
			"Zero factories", "pi/8 factories", "Chip (macroblocks)", "Speedup vs no-overlap"},
	}
	ripple, lookahead, err := CompareShorAddersEngine(e.ctx(), e.Engine, e.Bits, e.Options)
	if err != nil {
		return report.Section{}, err
	}
	for _, est := range []ShorEstimate{ripple, lookahead} {
		tb.AddRow(est.Adder.String(), est.AdderInvocations, est.ExecutionTimeSeconds(),
			est.ZeroBandwidthPerMs, est.Pi8BandwidthPerMs, est.ZeroFactories, est.Pi8Factories,
			float64(est.ChipArea), est.Speedup())
	}
	return report.NewSection("", tb), nil
}

func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
