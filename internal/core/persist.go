package core

import (
	"speedofdata/internal/engine"
	"speedofdata/internal/report"
)

// Persistable result types for the engine's disk cache tier
// (internal/store).  report.Section is the registry's top-level unit —
// RunReport caches one section per (experiment, bits, params) fingerprint —
// so persisting it is what makes a restarted qsd serve replica answer its
// first report request from disk.  Bump a version when a code change alters
// the results behind the type's keys in a way the key itself does not encode.
func init() {
	engine.RegisterResultType(report.Section{}, 1)
	engine.RegisterResultType(PrepErrorResult{}, 1)
}
