package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"speedofdata/internal/circuits"
	"speedofdata/internal/engine"
	"speedofdata/internal/iontrap"
)

// This file extends the paper's per-kernel analysis to a whole-application
// resource estimate for Shor's factoring algorithm, the workload the paper's
// introduction motivates.  The estimator composes the measured kernel
// characteristics (adder latency and ancilla bandwidth at the speed of data)
// into the standard modular-exponentiation structure: factoring an n-bit
// modulus needs about 2n controlled modular multiplications, each built from
// about 2n modular additions, i.e. roughly 4n^2 + O(n) adder invocations,
// followed by an n-bit QFT.  This is the "factory sizing" use a downstream
// resource estimator would put the library to.

// ShorAdder selects which adder kernel the modular arithmetic uses.
type ShorAdder int

const (
	// ShorRippleCarry uses the serial QRCA (minimal area, maximal time).
	ShorRippleCarry ShorAdder = iota
	// ShorCarryLookahead uses the parallel QCLA (minimal time, maximal area).
	ShorCarryLookahead
)

// String names the adder choice.
func (a ShorAdder) String() string {
	switch a {
	case ShorRippleCarry:
		return "ripple-carry"
	case ShorCarryLookahead:
		return "carry-lookahead"
	default:
		return fmt.Sprintf("adder(%d)", int(a))
	}
}

// ShorEstimate is the resource estimate for factoring one modulus.
type ShorEstimate struct {
	// Bits is the modulus width n.
	Bits int
	// Adder is the kernel used for modular arithmetic.
	Adder ShorAdder
	// AdderInvocations is the number of adder calls in the modular
	// exponentiation (≈ 4n² + 2n).
	AdderInvocations int
	// AdderAnalysis and QFTAnalysis are the per-kernel speed-of-data analyses.
	AdderAnalysis Analysis
	QFTAnalysis   Analysis
	// ExecutionTime is the speed-of-data execution time of the whole
	// modular exponentiation plus the final QFT.
	ExecutionTime iontrap.Microseconds
	// ZeroBandwidthPerMs / Pi8BandwidthPerMs are the sustained ancilla
	// bandwidths the application needs (the adder phase dominates).
	ZeroBandwidthPerMs float64
	Pi8BandwidthPerMs  float64
	// ZeroFactories and Pi8Factories are the whole factories a Qalypso chip
	// needs to sustain those bandwidths.
	ZeroFactories int
	Pi8Factories  int
	// ChipArea is the total chip area: data region for 2n+O(n) logical
	// qubits plus the ancilla factories.
	ChipArea iontrap.Area
}

// ExecutionTimeSeconds is the estimated wall-clock time in seconds.
func (s ShorEstimate) ExecutionTimeSeconds() float64 {
	return float64(s.ExecutionTime) / 1e6
}

// EstimateShor estimates the resources needed to run Shor's algorithm on an
// n-bit modulus with the chosen adder kernel, under the library's
// speed-of-data execution model.
func EstimateShor(bits int, adder ShorAdder, opts Options) (ShorEstimate, error) {
	if bits < 2 {
		return ShorEstimate{}, fmt.Errorf("core: Shor estimate needs a modulus of at least 2 bits, got %d", bits)
	}
	var adderKind circuits.Benchmark
	switch adder {
	case ShorRippleCarry:
		adderKind = circuits.QRCA
	case ShorCarryLookahead:
		adderKind = circuits.QCLA
	default:
		return ShorEstimate{}, fmt.Errorf("core: unknown adder kind %v", adder)
	}

	adderAnalysis, err := AnalyzeBenchmark(adderKind, bits, opts)
	if err != nil {
		return ShorEstimate{}, err
	}
	qftAnalysis, err := AnalyzeBenchmark(circuits.QFT, bits, opts)
	if err != nil {
		return ShorEstimate{}, err
	}

	// Modular exponentiation: 2n controlled multiplications, each of about
	// 2n modular additions, each modular addition costing roughly one adder
	// invocation plus a comparison/correction of similar size (folded into a
	// constant factor of 2).  The final inverse QFT runs once.
	adderCalls := 2 * (4*bits*bits + 2*bits)
	est := ShorEstimate{
		Bits:             bits,
		Adder:            adder,
		AdderInvocations: adderCalls,
		AdderAnalysis:    adderAnalysis,
		QFTAnalysis:      qftAnalysis,
	}

	adderTime := float64(adderAnalysis.Characterization.SpeedOfDataTime)
	qftTime := float64(qftAnalysis.Characterization.SpeedOfDataTime)
	est.ExecutionTime = iontrap.Microseconds(float64(adderCalls)*adderTime + qftTime)

	// The sustained bandwidth is dominated by the adder phase; the QFT phase
	// is shorter and cheaper, so the chip is provisioned for the maximum of
	// the two.
	est.ZeroBandwidthPerMs = math.Max(adderAnalysis.Characterization.ZeroBandwidthPerMs,
		qftAnalysis.Characterization.ZeroBandwidthPerMs)
	est.Pi8BandwidthPerMs = math.Max(adderAnalysis.Characterization.Pi8BandwidthPerMs,
		qftAnalysis.Characterization.Pi8BandwidthPerMs)
	est.ZeroFactories, est.Pi8Factories = FactoriesForBandwidth(opts.Tech,
		est.ZeroBandwidthPerMs, est.Pi8BandwidthPerMs)

	// Data region: the exponentiation keeps the adder's working registers
	// plus an n-bit exponent register alive.
	dataQubits := adderAnalysis.Circuit.NumQubits + bits
	zeroArea := adderAnalysis.ZeroFactory.AreaForBandwidth(est.ZeroBandwidthPerMs)
	pi8Area := adderAnalysis.Pi8Factory.AreaForBandwidth(est.Pi8BandwidthPerMs) +
		adderAnalysis.ZeroFactory.AreaForBandwidth(est.Pi8BandwidthPerMs)
	est.ChipArea = iontrap.Area(float64(dataQubits)*7) + zeroArea + pi8Area
	return est, nil
}

// CompareShorAdders estimates Shor's algorithm with both adder kernels,
// exposing the latency/area trade-off the paper's two adder benchmarks stand
// for.
func CompareShorAdders(bits int, opts Options) (ripple, lookahead ShorEstimate, err error) {
	return CompareShorAddersEngine(context.Background(), nil, bits, opts)
}

// CompareShorAddersEngine estimates both adder variants as concurrent engine
// jobs.
func CompareShorAddersEngine(ctx context.Context, eng *engine.Engine, bits int, opts Options) (ripple, lookahead ShorEstimate, err error) {
	adders := []ShorAdder{ShorRippleCarry, ShorCarryLookahead}
	jobs := make([]engine.Job[ShorEstimate], len(adders))
	for i, a := range adders {
		a := a
		jobs[i] = engine.Job[ShorEstimate]{
			Key: engine.Fingerprint("core.shor", a, bits, opts.Tech, opts.Latency, opts.TileQubits),
			Run: func(context.Context, *rand.Rand) (ShorEstimate, error) {
				return EstimateShor(bits, a, opts)
			},
		}
	}
	out, err := engine.Run(ctx, eng, jobs)
	if err != nil {
		return ShorEstimate{}, ShorEstimate{}, err
	}
	return out[0], out[1], nil
}

// NoOverlapExecutionTime is the execution time of the same workload when
// ancilla preparation is fully serialised behind the data, used to report the
// benefit of offline ancilla generation at application scale.
func (s ShorEstimate) NoOverlapExecutionTime() iontrap.Microseconds {
	adderTime := float64(s.AdderAnalysis.Characterization.NoOverlapTotal())
	qftTime := float64(s.QFTAnalysis.Characterization.NoOverlapTotal())
	return iontrap.Microseconds(float64(s.AdderInvocations)*adderTime + qftTime)
}

// Speedup is the application-level speedup from running at the speed of data.
func (s ShorEstimate) Speedup() float64 {
	if s.ExecutionTime == 0 {
		return 0
	}
	return float64(s.NoOverlapExecutionTime()) / float64(s.ExecutionTime)
}
