package core

import (
	"testing"
	"testing/quick"
)

func TestEstimateShorBasics(t *testing.T) {
	opts := DefaultOptions()
	est, err := EstimateShor(16, ShorRippleCarry, opts)
	if err != nil {
		t.Fatal(err)
	}
	if est.Bits != 16 || est.Adder != ShorRippleCarry {
		t.Errorf("estimate header wrong: %+v", est)
	}
	// 2*(4n^2 + 2n) adder calls for n=16.
	if want := 2 * (4*16*16 + 2*16); est.AdderInvocations != want {
		t.Errorf("adder invocations = %d, want %d", est.AdderInvocations, want)
	}
	if est.ExecutionTime <= 0 || est.ExecutionTimeSeconds() <= 0 {
		t.Error("execution time must be positive")
	}
	if est.ZeroFactories < 1 || est.Pi8Factories < 1 {
		t.Errorf("factory counts = %d/%d, want at least one each", est.ZeroFactories, est.Pi8Factories)
	}
	if est.ChipArea <= 0 {
		t.Error("chip area must be positive")
	}
	// The application-level speedup from offline ancilla preparation matches
	// the per-kernel speedups (around 5x).
	if est.Speedup() < 3 || est.Speedup() > 8 {
		t.Errorf("application speedup = %.1f, expected around 5x", est.Speedup())
	}
	// The exponentiation dominated by adders: execution time is at least the
	// adder count times the per-adder speed-of-data time.
	perAdder := float64(est.AdderAnalysis.Characterization.SpeedOfDataTime)
	if float64(est.ExecutionTime) < float64(est.AdderInvocations)*perAdder {
		t.Error("execution time must cover all adder invocations")
	}
}

func TestEstimateShorErrors(t *testing.T) {
	opts := DefaultOptions()
	if _, err := EstimateShor(1, ShorRippleCarry, opts); err == nil {
		t.Error("1-bit modulus should be rejected")
	}
	if _, err := EstimateShor(8, ShorAdder(99), opts); err == nil {
		t.Error("unknown adder should be rejected")
	}
	if ShorAdder(99).String() == "" {
		t.Error("unknown adder should still render")
	}
	if ShorRippleCarry.String() != "ripple-carry" || ShorCarryLookahead.String() != "carry-lookahead" {
		t.Error("adder names wrong")
	}
}

func TestCompareShorAddersTradeoff(t *testing.T) {
	// The latency/area trade-off the paper's two adders stand for: the
	// carry-lookahead build finishes sooner but needs a bigger chip (more
	// ancilla factories).
	ripple, lookahead, err := CompareShorAdders(16, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if lookahead.ExecutionTime >= ripple.ExecutionTime {
		t.Errorf("carry-lookahead Shor (%.1fs) should beat ripple-carry (%.1fs)",
			lookahead.ExecutionTimeSeconds(), ripple.ExecutionTimeSeconds())
	}
	if lookahead.ZeroBandwidthPerMs <= ripple.ZeroBandwidthPerMs {
		t.Error("carry-lookahead should demand more ancilla bandwidth")
	}
	if lookahead.ChipArea <= ripple.ChipArea {
		t.Error("carry-lookahead should need a larger chip")
	}
}

// Property: execution time and chip area grow monotonically with modulus
// width for the ripple-carry build.
func TestShorScalingProperty(t *testing.T) {
	opts := DefaultOptions()
	cache := map[int]ShorEstimate{}
	estimate := func(bits int) ShorEstimate {
		if e, ok := cache[bits]; ok {
			return e
		}
		e, err := EstimateShor(bits, ShorRippleCarry, opts)
		if err != nil {
			t.Fatal(err)
		}
		cache[bits] = e
		return e
	}
	f := func(raw uint8) bool {
		bits := int(raw%5)*4 + 4 // 4, 8, 12, 16, 20
		small := estimate(bits)
		big := estimate(bits + 4)
		return big.ExecutionTime > small.ExecutionTime && big.ChipArea >= small.ChipArea
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
