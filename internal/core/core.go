// Package core ties the reproduction together: it is the paper's primary
// contribution as a library.  Given a logical benchmark circuit and a
// technology, it computes the ancilla bandwidth the circuit needs to run at
// the speed of data (Section 3), sizes the pipelined encoded-zero and
// encoded-π/8 factories to supply it (Section 4), produces the chip area
// breakdown of Table 9 and the Qalypso tile plan of Section 5.3, and exposes
// the experiment runners used by the command-line tool and the benchmark
// harness to regenerate every table and figure in the evaluation.
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"speedofdata/internal/circuits"
	"speedofdata/internal/engine"
	"speedofdata/internal/factory"
	"speedofdata/internal/iontrap"
	"speedofdata/internal/layout"
	"speedofdata/internal/quantum"
	"speedofdata/internal/schedule"
)

// Options configures an analysis.
type Options struct {
	// Tech is the physical technology (default: ion trap, Tables 1 and 4).
	Tech iontrap.Technology
	// Latency is the logical latency / QEC accounting model.
	Latency schedule.LatencyModel
	// TileQubits is the Qalypso data-region size used for the tile plan.
	TileQubits int
}

// DefaultOptions returns the paper's parameters.
func DefaultOptions() Options {
	return Options{
		Tech:       iontrap.Default(),
		Latency:    schedule.DefaultLatencyModel(),
		TileQubits: 32,
	}
}

// AreaBreakdown is one Table 9 row: the chip area needed to run one
// benchmark at the speed of data, split into data, QEC ancilla factories and
// π/8 ancilla factories (including the zero factories feeding the encoders).
type AreaBreakdown struct {
	Name string
	// ZeroBandwidthPerMs is the encoded-zero bandwidth for QEC (Table 9
	// column 2, identical to Table 3).
	ZeroBandwidthPerMs float64
	// Pi8BandwidthPerMs is the matching π/8 bandwidth.
	Pi8BandwidthPerMs float64
	// DataArea, QECFactoryArea and Pi8FactoryArea are the three area
	// components in macroblocks.
	DataArea       iontrap.Area
	QECFactoryArea iontrap.Area
	Pi8FactoryArea iontrap.Area
}

// TotalArea is the summed chip area.
func (a AreaBreakdown) TotalArea() iontrap.Area {
	return a.DataArea + a.QECFactoryArea + a.Pi8FactoryArea
}

// Fractions returns each component as a fraction of the total.
func (a AreaBreakdown) Fractions() (data, qec, pi8 float64) {
	total := float64(a.TotalArea())
	if total == 0 {
		return 0, 0, 0
	}
	return float64(a.DataArea) / total, float64(a.QECFactoryArea) / total, float64(a.Pi8FactoryArea) / total
}

// Analysis is the complete speed-of-data analysis of one benchmark circuit.
type Analysis struct {
	// Circuit is the analysed logical circuit.
	Circuit *quantum.Circuit
	// Characterization carries the Table 2 / Table 3 numbers.
	Characterization schedule.Characterization
	// ZeroFactory and Pi8Factory are the factory designs used for supply.
	ZeroFactory factory.Design
	Pi8Factory  factory.Design
	// Breakdown is the Table 9 row.
	Breakdown AreaBreakdown
	// Qalypso is the tiled chip plan (Section 5.3).
	Qalypso layout.Qalypso
}

// Speedup returns how much faster the circuit runs at the speed of data than
// with fully serialised ancilla preparation (the ratio of the Table 2 total
// to the speed-of-data time).
func (a Analysis) Speedup() float64 { return a.Characterization.Speedup() }

// Analyze performs the full analysis of a logical circuit.
func Analyze(c *quantum.Circuit, opts Options) (Analysis, error) {
	if opts.TileQubits <= 0 {
		return Analysis{}, fmt.Errorf("core: tile size must be positive, got %d", opts.TileQubits)
	}
	if err := opts.Latency.Validate(); err != nil {
		return Analysis{}, err
	}
	ch, err := schedule.Characterize(c, opts.Latency)
	if err != nil {
		return Analysis{}, err
	}
	zero := factory.PipelinedZeroFactory(opts.Tech)
	pi8 := factory.Pi8Factory(opts.Tech)

	breakdown := AreaBreakdown{
		Name:               c.Name,
		ZeroBandwidthPerMs: ch.ZeroBandwidthPerMs,
		Pi8BandwidthPerMs:  ch.Pi8BandwidthPerMs,
		DataArea:           layout.DataRegionArea(dataQubitCount(c)),
		QECFactoryArea:     zero.AreaForBandwidth(ch.ZeroBandwidthPerMs),
		Pi8FactoryArea:     factory.Pi8SupplyArea(pi8, zero, ch.Pi8BandwidthPerMs),
	}

	plan, err := layout.PlanQalypso(opts.Tech, dataQubitCount(c), opts.TileQubits,
		ch.ZeroBandwidthPerMs, ch.Pi8BandwidthPerMs)
	if err != nil {
		return Analysis{}, err
	}

	return Analysis{
		Circuit:          c,
		Characterization: ch,
		ZeroFactory:      zero,
		Pi8Factory:       pi8,
		Breakdown:        breakdown,
		Qalypso:          plan,
	}, nil
}

// dataQubitCount returns the number of encoded data qubits (including data
// ancillae) a circuit keeps alive, which determines the data-region area.
func dataQubitCount(c *quantum.Circuit) int { return c.NumQubits }

// AnalyzeBenchmark generates one of the paper's kernels at the given width
// and analyses it.
func AnalyzeBenchmark(b circuits.Benchmark, bits int, opts Options) (Analysis, error) {
	c, err := circuits.Generate(b, bits)
	if err != nil {
		return Analysis{}, err
	}
	return Analyze(c, opts)
}

// AnalyzeAllBenchmarks analyses the paper's three kernels at the given width
// (32 in the paper).  It runs sequentially; AnalyzeAllBenchmarksEngine is
// the parallel form.
func AnalyzeAllBenchmarks(bits int, opts Options) ([]Analysis, error) {
	return AnalyzeAllBenchmarksEngine(context.Background(), nil, bits, opts)
}

// AnalyzeAllBenchmarksEngine analyses the paper's three kernels through the
// experiment engine, one job per kernel, in benchmark order.
func AnalyzeAllBenchmarksEngine(ctx context.Context, eng *engine.Engine, bits int, opts Options) ([]Analysis, error) {
	benchmarks := circuits.Benchmarks()
	jobs := make([]engine.Job[Analysis], len(benchmarks))
	for i, b := range benchmarks {
		b := b
		jobs[i] = engine.Job[Analysis]{
			Key: engine.Fingerprint("core.analyze", b, bits, opts.Tech, opts.Latency, opts.TileQubits),
			Run: func(context.Context, *rand.Rand) (Analysis, error) {
				return AnalyzeBenchmark(b, bits, opts)
			},
		}
	}
	return engine.Run(ctx, eng, jobs)
}

// FactoriesForBandwidth returns the whole number of pipelined zero factories
// and π/8 factories needed for a demand pair, a convenience used by examples.
func FactoriesForBandwidth(tech iontrap.Technology, zeroPerMs, pi8PerMs float64) (zeroCount, pi8Count int) {
	zero := factory.PipelinedZeroFactory(tech)
	pi8 := factory.Pi8Factory(tech)
	pi8Count = pi8.CountForBandwidth(pi8PerMs)
	zeroCount = zero.CountForBandwidth(zeroPerMs + math.Min(pi8PerMs, float64(pi8Count)*pi8.ThroughputPerMs))
	return zeroCount, pi8Count
}
