package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"speedofdata/internal/engine"
)

// testPayload is the result type used throughout these tests; it is
// registered at version 1 and re-registered by the invalidation test.
type testPayload struct {
	N int
	S string
}

func init() {
	engine.RegisterResultType(testPayload{}, 1)
}

func openWriter(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func wantGet(t *testing.T, s *Store, key string, want testPayload) {
	t.Helper()
	v, ok := s.Get(key)
	if !ok {
		t.Fatalf("Get(%q): miss, want hit", key)
	}
	got, ok := v.(testPayload)
	if !ok || got != want {
		t.Fatalf("Get(%q) = %#v, want %#v", key, v, want)
	}
}

func wantMiss(t *testing.T, s *Store, key string) {
	t.Helper()
	if v, ok := s.Get(key); ok {
		t.Fatalf("Get(%q) = %#v, want miss", key, v)
	}
}

func TestRoundTripAndWarmStart(t *testing.T) {
	dir := t.TempDir()
	s := openWriter(t, dir, Options{})
	for i := 0; i < 10; i++ {
		s.Put(fmt.Sprintf("k%d", i), testPayload{N: i, S: "v"})
	}
	wantGet(t, s, "k3", testPayload{N: 3, S: "v"})
	st := s.Stats()
	if st.Puts != 10 || st.Entries != 10 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 10 puts, 10 entries, 1 hit", st)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Warm start: a fresh open serves everything from the rebuilt index.
	s2 := openWriter(t, dir, Options{})
	for i := 0; i < 10; i++ {
		wantGet(t, s2, fmt.Sprintf("k%d", i), testPayload{N: i, S: "v"})
	}
	if got := s2.Stats().Entries; got != 10 {
		t.Fatalf("warm entries = %d, want 10", got)
	}
}

func TestOverwriteSupersedes(t *testing.T) {
	s := openWriter(t, t.TempDir(), Options{})
	s.Put("k", testPayload{N: 1})
	s.Put("k", testPayload{N: 2})
	wantGet(t, s, "k", testPayload{N: 2})
	st := s.Stats()
	if st.Entries != 1 || st.DeadBytes == 0 {
		t.Fatalf("stats = %+v, want 1 entry and dead bytes from the superseded record", st)
	}
}

func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openWriter(t, dir, Options{})
	for i := 0; i < 5; i++ {
		s.Put(fmt.Sprintf("k%d", i), testPayload{N: i})
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Simulate a crash mid-append: chop bytes off the final record.
	path := filepath.Join(dir, segmentName)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	s2 := openWriter(t, dir, Options{})
	st := s2.Stats()
	if st.Entries != 4 {
		t.Fatalf("entries after torn tail = %d, want 4", st.Entries)
	}
	for i := 0; i < 4; i++ {
		wantGet(t, s2, fmt.Sprintf("k%d", i), testPayload{N: i})
	}
	wantMiss(t, s2, "k4")
	// The tail was truncated, so new appends land on a clean boundary.
	s2.Put("k4", testPayload{N: 44})
	wantGet(t, s2, "k4", testPayload{N: 44})
	if err := s2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s3 := openWriter(t, dir, Options{})
	wantGet(t, s3, "k4", testPayload{N: 44})
}

func TestCorruptRecordTruncated(t *testing.T) {
	dir := t.TempDir()
	s := openWriter(t, dir, Options{})
	s.Put("a", testPayload{N: 1})
	s.Put("b", testPayload{N: 2})
	off := s.Stats().FileBytes
	s.Put("c", testPayload{N: 3})
	s.Close()

	// Flip a byte inside record c's body: the checksum catches it and the
	// reopen truncates from there.
	f, err := os.OpenFile(filepath.Join(dir, segmentName), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, off+recHdrLen+2); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openWriter(t, dir, Options{})
	if got := s2.Stats().Entries; got != 2 {
		t.Fatalf("entries after corrupt record = %d, want 2", got)
	}
	wantGet(t, s2, "a", testPayload{N: 1})
	wantGet(t, s2, "b", testPayload{N: 2})
	wantMiss(t, s2, "c")
}

func TestVersionBumpInvalidates(t *testing.T) {
	type bumped struct{ N int }
	engine.RegisterResultType(bumped{}, 1)
	s := openWriter(t, t.TempDir(), Options{})
	s.Put("k", bumped{N: 7})
	if v, ok := s.Get("k"); !ok || v.(bumped).N != 7 {
		t.Fatalf("Get before bump = %#v, %v", v, ok)
	}

	// A semantic version bump makes every stored record of the type stale.
	engine.RegisterResultType(bumped{}, 2)
	wantMiss(t, s, "k")
	st := s.Stats()
	if st.Stale != 1 || st.Entries != 0 || st.DeadBytes == 0 {
		t.Fatalf("stats after bump = %+v, want the record stale and dead", st)
	}
	// The new version's results take its place.
	s.Put("k", bumped{N: 8})
	if v, ok := s.Get("k"); !ok || v.(bumped).N != 8 {
		t.Fatalf("Get after re-put = %#v, %v", v, ok)
	}
}

func TestUnregisteredTypeSkipped(t *testing.T) {
	type unregistered struct{ N int }
	s := openWriter(t, t.TempDir(), Options{})
	s.Put("k", unregistered{N: 1})
	st := s.Stats()
	if st.Puts != 0 || st.Skipped != 1 {
		t.Fatalf("stats = %+v, want the unregistered put skipped", st)
	}
	wantMiss(t, s, "k")
}

func TestLockContention(t *testing.T) {
	dir := t.TempDir()
	s := openWriter(t, dir, Options{})
	s.Put("k", testPayload{N: 5})

	// A second writer is refused with the typed error.
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second writer Open succeeded, want *LockedError")
	} else {
		var le *LockedError
		if !errors.As(err, &le) || le.Dir != dir {
			t.Fatalf("second writer error = %v, want *LockedError for %s", err, dir)
		}
	}

	// A read-only open succeeds alongside the writer and sees its records —
	// including ones appended after the reader opened, via tail refresh.
	r, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatalf("read-only Open: %v", err)
	}
	defer r.Close()
	wantGet(t, r, "k", testPayload{N: 5})
	s.Put("late", testPayload{N: 6})
	wantGet(t, r, "late", testPayload{N: 6})
	if !r.Stats().ReadOnly {
		t.Fatal("reader Stats().ReadOnly = false")
	}
	// Reader puts are dropped silently.
	r.Put("nope", testPayload{N: 9})
	wantMiss(t, s, "nope")

	// Releasing the writer lock admits the next writer.
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after release: %v", err)
	}
	s2.Close()
}

func TestCompaction(t *testing.T) {
	s := openWriter(t, t.TempDir(), Options{CompactMinBytes: 1 << 40}) // no auto compaction
	for i := 0; i < 100; i++ {
		s.Put("hot", testPayload{N: i, S: "xxxxxxxxxxxxxxxx"})
	}
	s.Put("cold", testPayload{N: -1})
	before := s.Stats()
	if before.DeadBytes == 0 {
		t.Fatalf("stats = %+v, want dead bytes before compaction", before)
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := s.Stats()
	if after.DeadBytes != 0 || after.Entries != 2 || after.Compactions != 1 {
		t.Fatalf("stats after compaction = %+v", after)
	}
	if after.FileBytes >= before.FileBytes || after.LastCompactionReclaimedBytes == 0 {
		t.Fatalf("compaction reclaimed nothing: before=%+v after=%+v", before, after)
	}
	if after.LastCompactionLiveEntries != 2 {
		t.Fatalf("LastCompactionLiveEntries = %d, want 2", after.LastCompactionLiveEntries)
	}
	wantGet(t, s, "hot", testPayload{N: 99, S: "xxxxxxxxxxxxxxxx"})
	wantGet(t, s, "cold", testPayload{N: -1})
}

func TestAutoCompaction(t *testing.T) {
	s := openWriter(t, t.TempDir(), Options{CompactMinBytes: 1})
	for i := 0; i < 50; i++ {
		s.Put("k", testPayload{N: i, S: "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"})
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("stats = %+v, want automatic compactions", st)
	}
	wantGet(t, s, "k", testPayload{N: 49, S: "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"})
}

func TestByteBoundEvictsOldest(t *testing.T) {
	s := openWriter(t, t.TempDir(), Options{MaxBytes: 1 << 10, CompactMinBytes: 1})
	big := string(make([]byte, 200))
	for i := 0; i < 20; i++ {
		s.Put(fmt.Sprintf("k%d", i), testPayload{N: i, S: big})
	}
	st := s.Stats()
	if st.Evicted == 0 || st.LiveBytes > 1<<10 {
		t.Fatalf("stats = %+v, want evictions holding live bytes under the bound", st)
	}
	// The newest entry survives; the oldest is gone.
	wantGet(t, s, "k19", testPayload{N: 19, S: big})
	wantMiss(t, s, "k0")
}

func TestConcurrentReaderDuringCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openWriter(t, dir, Options{CompactMinBytes: 1 << 40})
	for i := 0; i < 20; i++ {
		s.Put(fmt.Sprintf("k%d", i), testPayload{N: i})
	}
	r, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatalf("read-only Open: %v", err)
	}
	defer r.Close()
	wantGet(t, r, "k0", testPayload{N: 0})

	// Reads race the writer's churn and compactions; the reader must never
	// see a wrong value — only hits on its open snapshot or clean misses.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("k%d", i%20)
			if v, ok := r.Get(key); ok {
				if got := v.(testPayload).N; got != i%20 {
					t.Errorf("reader Get(%q) = %d, want %d", key, got, i%20)
					return
				}
			}
		}
	}()
	for round := 0; round < 5; round++ {
		for i := 0; i < 20; i++ {
			s.Put(fmt.Sprintf("k%d", i), testPayload{N: i})
		}
		if err := s.Compact(); err != nil {
			t.Fatalf("Compact: %v", err)
		}
	}
	close(stop)
	wg.Wait()

	// After the dust settles the reader refreshes onto the new segment.
	r.Refresh()
	for i := 0; i < 20; i++ {
		wantGet(t, r, fmt.Sprintf("k%d", i), testPayload{N: i})
	}
}

func TestForeignSchemaDiscarded(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segmentName), []byte("not a qsd store segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openWriter(t, dir, Options{})
	if got := s.Stats().Entries; got != 0 {
		t.Fatalf("entries = %d, want 0 for a foreign segment", got)
	}
	s.Put("k", testPayload{N: 1})
	wantGet(t, s, "k", testPayload{N: 1})
	s.Close()
	s2 := openWriter(t, dir, Options{})
	wantGet(t, s2, "k", testPayload{N: 1})
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"", SyncOnCompact}, {"compact", SyncOnCompact}, {"always", SyncAlways}, {"never", SyncNever}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy(sometimes): want error")
	}
}

func TestSyncAlways(t *testing.T) {
	s := openWriter(t, t.TempDir(), Options{Sync: SyncAlways})
	s.Put("k", testPayload{N: 1})
	wantGet(t, s, "k", testPayload{N: 1})
}

func TestClosedStore(t *testing.T) {
	s := openWriter(t, t.TempDir(), Options{})
	s.Put("k", testPayload{N: 1})
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wantMiss(t, s, "k")
	s.Put("k2", testPayload{N: 2}) // must not panic
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
