// Package store is the disk tier of the experiment engine's result cache: a
// log-structured, content-addressed store that maps typed engine job keys to
// gob-encoded results, so a restarted process (or a second replica pointed
// at the same directory) serves previously computed grids as key lookups
// instead of simulations.
//
// Layout: one append-only segment file of length-prefixed, checksummed
// (key, type, version, payload) records behind an in-memory index.  Updates
// append; superseded records become dead bytes that a snapshot+compaction
// pass reclaims once they dominate the file.  Crash safety comes from the
// record checksums: a torn tail record (a crash or kill -9 mid-append) is
// detected and truncated on the next writer open, never poisoning the
// surviving records.
//
// Validity is versioned at two levels.  The segment header carries the
// store's schema version — a format change abandons old files wholesale —
// and every record carries its result type's semantic version
// (engine.RegisterResultType): bumping that version invalidates every stored
// record of the type, the on-disk extension of the cache-key-namespace
// discipline the in-memory tiers already follow.
//
// Concurrency: a flock on the directory's LOCK file admits one writer at a
// time (a second writer gets *LockedError).  Readers (Options.ReadOnly) take
// no lock at all — the log is append-only and compaction replaces the
// segment atomically via rename — and re-scan the tail on a miss, so a
// replica borrows the writer's results as they land (cross-process
// read-through).
package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"

	"speedofdata/internal/engine"
)

// SchemaVersion is the on-disk record format version.  Segments written
// under any other schema are discarded on open (truncated by a writer,
// treated as empty by a reader).
const SchemaVersion = 1

const (
	segmentName = "store.log"
	lockName    = "LOCK"
	magic       = "QSDSTORE"
	headerLen   = len(magic) + 4 // magic + uint32 schema
	recHdrLen   = 8              // uint32 body length + uint32 CRC32-C
	// maxRecordBytes rejects absurd length prefixes while scanning (a torn
	// header read as a huge length must not allocate gigabytes).
	maxRecordBytes = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// LockedError reports that another process holds the store's writer lock.
// Open the store with Options.ReadOnly to borrow its results instead.
type LockedError struct{ Dir string }

func (e *LockedError) Error() string {
	return fmt.Sprintf("store: %s is locked by another writer (open read-only to share it)", e.Dir)
}

// SyncPolicy selects when the segment file is fsynced.
type SyncPolicy int

const (
	// SyncOnCompact (the default) fsyncs at compaction and Close.  A crash
	// can lose recent appends — which are only cached results, recomputable
	// by definition — but never corrupts the store (torn tails truncate).
	SyncOnCompact SyncPolicy = iota
	// SyncAlways fsyncs after every Put.
	SyncAlways
	// SyncNever leaves all flushing to the OS.
	SyncNever
)

// ParseSyncPolicy parses a -store-sync flag value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "compact":
		return SyncOnCompact, nil
	case "always":
		return SyncAlways, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("store: unknown sync policy %q (want compact, always or never)", s)
}

// DefaultMaxBytes bounds the disk tier's live bytes when Options.MaxBytes is
// zero; past it the oldest entries are evicted at the next compaction check.
const DefaultMaxBytes = 256 << 20

// Options tunes a store.
type Options struct {
	// ReadOnly opens the store without the writer lock: Get works (with
	// tail re-scans on miss, so another process's appends become visible),
	// Put is a no-op.
	ReadOnly bool
	// Sync is the fsync policy (default SyncOnCompact).
	Sync SyncPolicy
	// MaxBytes bounds live record bytes (<= 0 selects DefaultMaxBytes); the
	// oldest entries are evicted to stay under it.  The memory tier above
	// (engine.CacheLimit) is bounded by entries; the disk tier by bytes.
	MaxBytes int64
	// CompactFraction triggers compaction when dead bytes exceed this
	// fraction of the file (<= 0 selects 0.5).
	CompactFraction float64
	// CompactMinBytes suppresses compaction until dead bytes reach it
	// (<= 0 selects 1 MiB), so small stores never churn.
	CompactMinBytes int64
}

func (o Options) withDefaults() Options {
	if o.MaxBytes <= 0 {
		o.MaxBytes = DefaultMaxBytes
	}
	if o.CompactFraction <= 0 {
		o.CompactFraction = 0.5
	}
	if o.CompactMinBytes <= 0 {
		o.CompactMinBytes = 1 << 20
	}
	return o
}

// recordRef locates one live record in the segment.
type recordRef struct {
	off      int64 // record start (length prefix)
	n        int64 // total record bytes including the 8-byte header
	typeName string
	version  int
	seq      int64 // append order, for oldest-first eviction
}

// Store is a disk-backed engine.CacheBackend.  It is safe for concurrent
// use; one process may write (flock-guarded) while others read.
type Store struct {
	dir  string
	path string
	opts Options

	mu     sync.RWMutex
	f      *os.File // nil for a reader whose segment does not exist yet
	lock   *os.File // writer lock holder
	index  map[string]recordRef
	size   int64 // bytes scanned/written so far (writer: file length)
	live   int64
	dead   int64
	next   int64 // next record seq
	closed bool

	hits, misses, puts, skipped int64
	evicted, stale              int64
	compactions                 int64
	lastReclaimed               int64
	lastLive                    int
}

// Open opens (creating if needed) the store in dir.  A writer takes the
// directory's flock; a concurrent second writer gets *LockedError.  Opening
// truncates any torn tail left by a crashed writer and drops segments with a
// foreign schema version.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	s := &Store{
		dir:   dir,
		path:  filepath.Join(dir, segmentName),
		opts:  opts,
		index: make(map[string]recordRef),
	}
	if opts.ReadOnly {
		// Missing directory or segment is an empty store; refresh retries.
		s.reopenLocked()
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	lock, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		return nil, &LockedError{Dir: dir}
	}
	s.lock = lock
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		lock.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	s.f = f
	valid, headerOK := s.scan(f)
	if !headerOK {
		// Empty file or foreign schema: start the segment over.
		if err := f.Truncate(0); err != nil {
			f.Close()
			lock.Close()
			return nil, fmt.Errorf("store: %w", err)
		}
		hdr := append([]byte(magic), 0, 0, 0, 0)
		binary.LittleEndian.PutUint32(hdr[len(magic):], SchemaVersion)
		if _, err := f.WriteAt(hdr, 0); err != nil {
			f.Close()
			lock.Close()
			return nil, fmt.Errorf("store: %w", err)
		}
		valid = int64(headerLen)
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > valid {
		// Torn or corrupt tail (e.g. a kill -9 mid-append): drop it so the
		// next append starts on a clean boundary.
		if err := f.Truncate(valid); err != nil {
			f.Close()
			lock.Close()
			return nil, fmt.Errorf("store: truncating torn tail: %w", err)
		}
	}
	s.size = valid
	return s, nil
}

// scan reads records from s.size (or from the header when starting fresh)
// through f, extending the index.  It returns the offset of the first byte
// that is not a valid record, and whether the segment header matched.
// Everything past the returned offset is a torn tail or foreign data.
func (s *Store) scan(f *os.File) (valid int64, headerOK bool) {
	off := s.size
	if off < int64(headerLen) {
		hdr := make([]byte, headerLen)
		if _, err := io.ReadFull(io.NewSectionReader(f, 0, int64(headerLen)), hdr); err != nil {
			return 0, false
		}
		if string(hdr[:len(magic)]) != magic ||
			binary.LittleEndian.Uint32(hdr[len(magic):]) != SchemaVersion {
			return 0, false
		}
		off = int64(headerLen)
	}
	var hdr [recHdrLen]byte
	for {
		if _, err := io.ReadFull(io.NewSectionReader(f, off, recHdrLen), hdr[:]); err != nil {
			return off, true
		}
		bodyLen := int64(binary.LittleEndian.Uint32(hdr[:4]))
		sum := binary.LittleEndian.Uint32(hdr[4:])
		if bodyLen <= 0 || bodyLen > maxRecordBytes {
			return off, true
		}
		body := make([]byte, bodyLen)
		if _, err := io.ReadFull(io.NewSectionReader(f, off+recHdrLen, bodyLen), body); err != nil {
			return off, true
		}
		if crc32.Checksum(body, crcTable) != sum {
			return off, true
		}
		key, typeName, version, ok := parseBodyHeader(body)
		if !ok {
			return off, true
		}
		n := recHdrLen + bodyLen
		if old, exists := s.index[key]; exists {
			s.dead += old.n
			s.live -= old.n
		}
		s.index[key] = recordRef{off: off, n: n, typeName: typeName, version: version, seq: s.next}
		s.next++
		s.live += n
		off += n
	}
}

// parseBodyHeader splits a record body into key, type name and version,
// leaving the payload behind (its offset is recomputed on read).
func parseBodyHeader(body []byte) (key, typeName string, version int, ok bool) {
	key, rest, ok := takeString(body)
	if !ok {
		return "", "", 0, false
	}
	typeName, rest, ok = takeString(rest)
	if !ok {
		return "", "", 0, false
	}
	v, n := binary.Uvarint(rest)
	if n <= 0 {
		return "", "", 0, false
	}
	return key, typeName, int(v), true
}

func takeString(b []byte) (string, []byte, bool) {
	l, n := binary.Uvarint(b)
	if n <= 0 || int64(l) > int64(len(b)-n) {
		return "", nil, false
	}
	return string(b[n : n+int(l)]), b[n+int(l):], true
}

// payloadOf re-parses a record body and returns its payload bytes.
func payloadOf(body []byte) ([]byte, bool) {
	_, rest, ok := takeString(body)
	if !ok {
		return nil, false
	}
	_, rest, ok = takeString(rest)
	if !ok {
		return nil, false
	}
	_, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, false
	}
	return rest[n:], true
}

// box wraps payload values so gob carries the concrete type (which must be
// registered via engine.RegisterResultType).
type box struct{ V any }

func encodePayload(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(box{V: v}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodePayload(b []byte) (any, error) {
	var bx box
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&bx); err != nil {
		return nil, err
	}
	return bx.V, nil
}

// Get implements engine.CacheBackend.  Records whose result type is
// unregistered, registered under a different semantic version, or that fail
// to read or decode are misses.  A read-only store that misses re-scans the
// segment tail first, so it sees a live writer's recent appends.
func (s *Store) Get(key string) (any, bool) {
	s.mu.RLock()
	ref, ok := s.index[key]
	f := s.f
	s.mu.RUnlock()
	if !ok && s.opts.ReadOnly {
		if s.refresh() {
			s.mu.RLock()
			ref, ok = s.index[key]
			f = s.f
			s.mu.RUnlock()
		}
	}
	if !ok || f == nil {
		s.miss()
		return nil, false
	}
	rt, registered := engine.ResultTypeByName(ref.typeName)
	if !registered || rt.Version != ref.version {
		s.mu.Lock()
		s.stale++
		s.misses++
		// A stale record is dead weight; let compaction reclaim it.
		if cur, ok := s.index[key]; ok && cur.off == ref.off {
			delete(s.index, key)
			s.live -= cur.n
			s.dead += cur.n
		}
		s.mu.Unlock()
		return nil, false
	}
	body := make([]byte, ref.n-recHdrLen)
	if _, err := f.ReadAt(body, ref.off+recHdrLen); err != nil {
		s.miss()
		return nil, false
	}
	payload, ok := payloadOf(body)
	if !ok {
		s.miss()
		return nil, false
	}
	v, err := decodePayload(payload)
	if err != nil {
		s.miss()
		return nil, false
	}
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
	return v, true
}

func (s *Store) miss() {
	s.mu.Lock()
	s.misses++
	s.mu.Unlock()
}

// Put implements engine.CacheBackend: it appends a record for the value and
// updates the index, then evicts and compacts if thresholds are crossed.
// Values whose concrete type is not registered (engine.RegisterResultType),
// or that fail to encode, are skipped — the memory tier still holds them.
// On a read-only store Put is a no-op.
func (s *Store) Put(key string, v any) {
	if s.opts.ReadOnly || key == "" {
		return
	}
	rt, ok := engine.ResultTypeOf(v)
	if !ok {
		s.skip()
		return
	}
	payload, err := encodePayload(v)
	if err != nil {
		s.skip()
		return
	}
	body := binary.AppendUvarint(nil, uint64(len(key)))
	body = append(body, key...)
	body = binary.AppendUvarint(body, uint64(len(rt.Name)))
	body = append(body, rt.Name...)
	body = binary.AppendUvarint(body, uint64(rt.Version))
	body = append(body, payload...)
	rec := make([]byte, recHdrLen+len(body))
	binary.LittleEndian.PutUint32(rec[:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(body, crcTable))
	copy(rec[recHdrLen:], body)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.f == nil {
		return
	}
	if _, err := s.f.WriteAt(rec, s.size); err != nil {
		s.skipped++
		return
	}
	if old, exists := s.index[key]; exists {
		s.dead += old.n
		s.live -= old.n
	}
	s.index[key] = recordRef{
		off: s.size, n: int64(len(rec)),
		typeName: rt.Name, version: rt.Version, seq: s.next,
	}
	s.next++
	s.size += int64(len(rec))
	s.live += int64(len(rec))
	s.puts++
	if s.opts.Sync == SyncAlways {
		s.f.Sync()
	}
	s.maybeCompactLocked()
}

func (s *Store) skip() {
	s.mu.Lock()
	s.skipped++
	s.mu.Unlock()
}

// maybeCompactLocked enforces the byte bound (evicting oldest entries) and
// runs a compaction when dead bytes dominate the segment.
func (s *Store) maybeCompactLocked() {
	if s.live > s.opts.MaxBytes {
		refs := make([]recordRef, 0, len(s.index))
		byOff := make(map[int64]string, len(s.index))
		for k, ref := range s.index {
			refs = append(refs, ref)
			byOff[ref.off] = k
		}
		sort.Slice(refs, func(i, j int) bool { return refs[i].seq < refs[j].seq })
		for _, ref := range refs {
			if s.live <= s.opts.MaxBytes {
				break
			}
			delete(s.index, byOff[ref.off])
			s.live -= ref.n
			s.dead += ref.n
			s.evicted++
		}
	}
	if s.dead >= s.opts.CompactMinBytes &&
		float64(s.dead) > s.opts.CompactFraction*float64(s.live+s.dead) {
		s.compactLocked()
	}
}

// Compact forces a snapshot+compaction pass: live records are rewritten to a
// fresh segment that atomically replaces the old one via rename.  Readers in
// other processes keep serving from their open (now unlinked) segment and
// pick up the new one on their next refresh.
func (s *Store) Compact() error {
	if s.opts.ReadOnly {
		return fmt.Errorf("store: cannot compact a read-only store")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.f == nil {
		return fmt.Errorf("store: closed")
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	tmpPath := s.path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	hdr := append([]byte(magic), 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(hdr[len(magic):], SchemaVersion)
	if _, err := tmp.Write(hdr); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: compact: %w", err)
	}
	// Copy live records in append order so eviction ordering survives.
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return s.index[keys[i]].seq < s.index[keys[j]].seq })
	newIndex := make(map[string]recordRef, len(keys))
	off := int64(headerLen)
	for _, k := range keys {
		ref := s.index[k]
		rec := make([]byte, ref.n)
		if _, err := s.f.ReadAt(rec, ref.off); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("store: compact: %w", err)
		}
		if _, err := tmp.Write(rec); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("store: compact: %w", err)
		}
		ref.off = off
		newIndex[k] = ref
		off += ref.n
	}
	if s.opts.Sync != SyncNever {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("store: compact: %w", err)
		}
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: compact: %w", err)
	}
	if s.opts.Sync != SyncNever {
		if d, err := os.Open(s.dir); err == nil {
			d.Sync()
			d.Close()
		}
	}
	reclaimed := s.size - off
	s.f.Close()
	s.f = tmp
	s.index = newIndex
	s.size = off
	s.live = off - int64(headerLen)
	s.dead = 0
	s.compactions++
	s.lastReclaimed = reclaimed
	s.lastLive = len(newIndex)
	return nil
}

// refresh brings a read-only store up to date with the writer: it extends
// the index over newly appended records, and reopens from scratch when
// compaction has replaced the segment.  It reports whether anything changed.
func (s *Store) refresh() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	cur, err := os.Stat(s.path)
	if err != nil {
		return false
	}
	if s.f != nil {
		if fi, err := s.f.Stat(); err == nil && os.SameFile(fi, cur) {
			if cur.Size() <= s.size {
				return false
			}
			// The writer appended: scan just the tail.  An invalid tail here
			// may simply be an append in progress — keep the scanned prefix
			// and retry from the same offset next time.
			old := s.size
			valid, _ := s.scan(s.f)
			s.size = valid
			return valid > old
		}
	}
	return s.reopenLocked()
}

// reopenLocked (re)opens the segment read-only and rebuilds the index.
func (s *Store) reopenLocked() bool {
	f, err := os.Open(s.path)
	if err != nil {
		return false
	}
	if s.f != nil {
		s.f.Close()
	}
	s.f = f
	s.index = make(map[string]recordRef)
	s.size, s.live, s.dead, s.next = 0, 0, 0, 0
	valid, headerOK := s.scan(f)
	if !headerOK {
		// Foreign schema or not yet initialised: treat as empty.
		s.f.Close()
		s.f = nil
		return false
	}
	s.size = valid
	return true
}

// Refresh makes a read-only store pick up the writer's latest records
// immediately instead of on the next miss.
func (s *Store) Refresh() {
	if s.opts.ReadOnly {
		s.refresh()
	}
}

// Stats implements engine.StatBackend.
func (s *Store) Stats() engine.BackendStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return engine.BackendStats{
		Hits:                         s.hits,
		Misses:                       s.misses,
		Puts:                         s.puts,
		Skipped:                      s.skipped,
		Entries:                      len(s.index),
		LiveBytes:                    s.live,
		DeadBytes:                    s.dead,
		FileBytes:                    s.size,
		Evicted:                      s.evicted,
		Stale:                        s.stale,
		Compactions:                  s.compactions,
		LastCompactionReclaimedBytes: s.lastReclaimed,
		LastCompactionLiveEntries:    s.lastLive,
		ReadOnly:                     s.opts.ReadOnly,
	}
}

// Close flushes (per the sync policy) and releases the segment and the
// writer lock.  A closed store misses every Get and drops every Put.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.f != nil {
		if !s.opts.ReadOnly && s.opts.Sync != SyncNever {
			err = s.f.Sync()
		}
		if cerr := s.f.Close(); err == nil {
			err = cerr
		}
		s.f = nil
	}
	if s.lock != nil {
		if cerr := s.lock.Close(); err == nil {
			err = cerr
		}
		s.lock = nil
	}
	s.index = nil
	return err
}
