// Package layout models the physical organisation of a quantum chip the way
// Section 4.2 and Section 5.3 of the paper do: dense data-only regions
// (Figure 10), ancilla factories with output ports adjacent to the data, the
// Qalypso tile (Figure 16), and the movement model that distinguishes cheap
// ballistic movement inside a region from expensive teleportation between
// regions.
package layout

import (
	"fmt"
	"math"

	"speedofdata/internal/factory"
	"speedofdata/internal/iontrap"
	"speedofdata/internal/steane"
)

// DataRegionArea returns the macroblock area of a dense data-only region
// holding n encoded qubits: one single-column compute region of seven
// macroblocks per qubit (Figure 10), which is the m×n_q accounting used by
// Table 9.
func DataRegionArea(nQubits int) iontrap.Area {
	if nQubits < 0 {
		return 0
	}
	return iontrap.Area(nQubits * steane.N)
}

// MovementModel captures the two ways encoded qubits move in Qalypso:
// ballistic movement through channels inside a region and teleportation over
// the inter-tile interconnect (Section 5.3, reference [16]).
type MovementModel struct {
	// BallisticPerGateUs is the average movement latency added to a
	// two-qubit gate whose operands share a data region.
	BallisticPerGateUs iontrap.Microseconds
	// TeleportUs is the latency of teleporting an encoded qubit between
	// regions (EPR distribution, Bell measurement, Pauli fixup).
	TeleportUs iontrap.Microseconds
	// TeleportAncillae is the number of encoded zero ancillae a teleport
	// consumes; the paper notes QEC performed as part of teleportation needs
	// twice as many ancillae as a straightforward QEC step.
	TeleportAncillae int
}

// DefaultMovementModel derives a movement model from a technology and the
// size of the data region: ballistic movement crosses on the order of the
// region's column height, and teleportation costs two two-qubit gates, a
// measurement, a correction and the channel crossing.
func DefaultMovementModel(tech iontrap.Technology, regionQubits int) MovementModel {
	if regionQubits < 1 {
		regionQubits = 1
	}
	// A dense data-only region of n encoded qubits occupies about 7n
	// macroblocks; laid out compactly its side is the square root of that.
	// The average ballistic trip crosses about half a side and two corners.
	side := int(math.Ceil(math.Sqrt(float64(regionQubits * steane.N))))
	ballistic := iontrap.Expr(
		iontrap.OpStraightMove, (side+1)/2,
		iontrap.OpTurn, 2,
	).Eval(tech)
	// Teleportation between regions: EPR-pair interaction, Bell measurement,
	// Pauli fixup, plus crossing the interconnect (a full region side and
	// several corners).
	teleport := iontrap.Expr(
		iontrap.OpTwoQubitGate, 2,
		iontrap.OpMeasure, 1,
		iontrap.OpOneQubitGate, 1,
		iontrap.OpStraightMove, side,
		iontrap.OpTurn, 4,
	).Eval(tech)
	return MovementModel{
		BallisticPerGateUs: ballistic,
		TeleportUs:         teleport,
		TeleportAncillae:   4,
	}
}

// Validate reports an error for non-physical movement parameters.  Both the
// microarchitecture simulations (microarch.Config) and the interconnect
// replayer (network.Config) call it before running, so a negative, NaN or
// infinite latency fails fast instead of silently producing nonsense
// makespans.
func (m MovementModel) Validate() error {
	for _, l := range []float64{float64(m.BallisticPerGateUs), float64(m.TeleportUs)} {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			return fmt.Errorf("layout: non-finite movement latency %v", l)
		}
		if l < 0 {
			return fmt.Errorf("layout: negative movement latency %v", l)
		}
	}
	if m.TeleportAncillae < 0 {
		return fmt.Errorf("layout: negative teleport ancilla count")
	}
	return nil
}

// Tile is one Qalypso tile (Figure 16b): a dense data region surrounded by
// ancilla factories whose output ports face the data.
type Tile struct {
	// DataQubits is the number of encoded data qubits in the tile's region.
	DataQubits int
	// ZeroFactories and Pi8Factories are the whole factories placed around
	// the region.
	ZeroFactories int
	Pi8Factories  int
	// ZeroDesign and Pi8Design are the factory designs used.
	ZeroDesign factory.Design
	Pi8Design  factory.Design
	// ZeroDemandPerMs and Pi8DemandPerMs record the demand the tile was
	// provisioned for; the π/8 factories only consume encoded zeros at the
	// demanded rate, not at their full capacity.
	ZeroDemandPerMs float64
	Pi8DemandPerMs  float64
}

// DataArea is the tile's data-region area.
func (t Tile) DataArea() iontrap.Area { return DataRegionArea(t.DataQubits) }

// FactoryArea is the tile's total factory area.
func (t Tile) FactoryArea() iontrap.Area {
	return iontrap.Area(float64(t.ZeroFactories)*float64(t.ZeroDesign.TotalArea()) +
		float64(t.Pi8Factories)*float64(t.Pi8Design.TotalArea()))
}

// TotalArea is the tile's full footprint.
func (t Tile) TotalArea() iontrap.Area { return t.DataArea() + t.FactoryArea() }

// ZeroBandwidthPerMs is the tile's aggregate encoded-zero production rate,
// net of the zeros consumed by its π/8 factories running at the demanded
// π/8 rate.
func (t Tile) ZeroBandwidthPerMs() float64 {
	gross := float64(t.ZeroFactories) * t.ZeroDesign.ThroughputPerMs
	consumedByPi8 := math.Min(t.Pi8DemandPerMs, float64(t.Pi8Factories)*t.Pi8Design.ThroughputPerMs)
	net := gross - consumedByPi8
	if net < 0 {
		return 0
	}
	return net
}

// Pi8BandwidthPerMs is the tile's aggregate encoded-π/8 production rate.
func (t Tile) Pi8BandwidthPerMs() float64 {
	return float64(t.Pi8Factories) * t.Pi8Design.ThroughputPerMs
}

// PlanTile sizes one Qalypso tile for a region of dataQubits encoded qubits
// that must be fed zeroPerMs encoded zero ancillae and pi8PerMs encoded π/8
// ancillae: enough π/8 factories for the π/8 demand and enough zero factories
// for the QEC demand plus the π/8 factories' own zero consumption.
func PlanTile(tech iontrap.Technology, dataQubits int, zeroPerMs, pi8PerMs float64) (Tile, error) {
	if dataQubits <= 0 {
		return Tile{}, fmt.Errorf("layout: tile needs at least one data qubit, got %d", dataQubits)
	}
	if zeroPerMs < 0 || pi8PerMs < 0 {
		return Tile{}, fmt.Errorf("layout: negative ancilla demand")
	}
	zero := factory.PipelinedZeroFactory(tech)
	pi8 := factory.Pi8Factory(tech)
	pi8Count := pi8.CountForBandwidth(pi8PerMs)
	// Zero factories must cover the QEC demand plus the zeros consumed by
	// the π/8 factories running at the demanded rate.
	zeroDemand := zeroPerMs + pi8PerMs
	zeroCount := zero.CountForBandwidth(zeroDemand)
	if zeroCount == 0 && zeroDemand > 0 {
		zeroCount = 1
	}
	return Tile{
		DataQubits:      dataQubits,
		ZeroFactories:   zeroCount,
		Pi8Factories:    pi8Count,
		ZeroDesign:      zero,
		Pi8Design:       pi8,
		ZeroDemandPerMs: zeroPerMs,
		Pi8DemandPerMs:  pi8PerMs,
	}, nil
}

// MeshDims returns the near-square 2D mesh dimensions the teleport
// interconnect arranges n tiles on (Section 5.3): cols is ceil(sqrt(n)) and
// rows the smallest count covering n, so only the last row may be partial.
// Non-positive n returns (0, 0).
func MeshDims(n int) (cols, rows int) {
	if n <= 0 {
		return 0, 0
	}
	cols = int(math.Ceil(math.Sqrt(float64(n))))
	rows = (n + cols - 1) / cols
	return cols, rows
}

// LinkPorts returns the number of teleport channel ports along one edge of
// the tile: the side length of its square footprint in macroblocks.  Each
// port terminates one EPR distribution channel of the inter-tile link, so
// link bandwidth grows with tile perimeter the way the paper's interconnect
// discussion assumes.
func (t Tile) LinkPorts() int {
	side := int(math.Ceil(math.Sqrt(float64(t.TotalArea()))))
	if side < 1 {
		side = 1
	}
	return side
}

// Qalypso is a complete tiled microarchitecture (Figure 16a): identical tiles
// joined by a teleport-based interconnect.
type Qalypso struct {
	Tiles    []Tile
	Movement MovementModel
}

// PlanQalypso splits a circuit's data qubits into tiles of at most
// tileQubits encoded qubits each and provisions every tile for its share of
// the total ancilla demand.
func PlanQalypso(tech iontrap.Technology, totalQubits, tileQubits int, zeroPerMs, pi8PerMs float64) (Qalypso, error) {
	if totalQubits <= 0 {
		return Qalypso{}, fmt.Errorf("layout: circuit has no data qubits")
	}
	if tileQubits <= 0 {
		return Qalypso{}, fmt.Errorf("layout: tile size must be positive")
	}
	nTiles := int(math.Ceil(float64(totalQubits) / float64(tileQubits)))
	q := Qalypso{Movement: DefaultMovementModel(tech, tileQubits)}
	remaining := totalQubits
	for i := 0; i < nTiles; i++ {
		qubits := tileQubits
		if remaining < qubits {
			qubits = remaining
		}
		remaining -= qubits
		share := float64(qubits) / float64(totalQubits)
		tile, err := PlanTile(tech, qubits, zeroPerMs*share, pi8PerMs*share)
		if err != nil {
			return Qalypso{}, err
		}
		q.Tiles = append(q.Tiles, tile)
	}
	return q, nil
}

// TotalArea is the whole microarchitecture's area.
func (q Qalypso) TotalArea() iontrap.Area {
	var a iontrap.Area
	for _, t := range q.Tiles {
		a += t.TotalArea()
	}
	return a
}

// DataArea is the total data-region area across tiles.
func (q Qalypso) DataArea() iontrap.Area {
	var a iontrap.Area
	for _, t := range q.Tiles {
		a += t.DataArea()
	}
	return a
}

// FactoryArea is the total factory area across tiles.
func (q Qalypso) FactoryArea() iontrap.Area {
	var a iontrap.Area
	for _, t := range q.Tiles {
		a += t.FactoryArea()
	}
	return a
}

// ZeroBandwidthPerMs is the chip-wide net encoded-zero production rate.
func (q Qalypso) ZeroBandwidthPerMs() float64 {
	total := 0.0
	for _, t := range q.Tiles {
		total += t.ZeroBandwidthPerMs()
	}
	return total
}

// MeshDims returns the near-square mesh arrangement of the machine's tiles.
func (q Qalypso) MeshDims() (cols, rows int) { return MeshDims(len(q.Tiles)) }

// LinkEPRPerMs derives the EPR-pair distribution bandwidth of one inter-tile
// link from the machine's geometry: each of the LinkPorts channel ports along
// the shared tile edge sustains one distributed pair per teleport latency.
// Machines with no tiles or a non-positive teleport latency report zero.
func (q Qalypso) LinkEPRPerMs() float64 {
	if len(q.Tiles) == 0 || q.Movement.TeleportUs <= 0 {
		return 0
	}
	return float64(q.Tiles[0].LinkPorts()) * 1000.0 / float64(q.Movement.TeleportUs)
}

// Pi8BandwidthPerMs is the chip-wide encoded-π/8 production rate.
func (q Qalypso) Pi8BandwidthPerMs() float64 {
	total := 0.0
	for _, t := range q.Tiles {
		total += t.Pi8BandwidthPerMs()
	}
	return total
}
