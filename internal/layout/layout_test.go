package layout

import (
	"math"
	"testing"
	"testing/quick"

	"speedofdata/internal/iontrap"
	"speedofdata/internal/steane"
)

func TestDataRegionAreaMatchesTable9(t *testing.T) {
	// Table 9 data areas: 97 qubits -> 679, 123 -> 861, 32 -> 224.
	cases := map[int]iontrap.Area{97: 679, 123: 861, 32: 224, 0: 0}
	for n, want := range cases {
		if got := DataRegionArea(n); got != want {
			t.Errorf("DataRegionArea(%d) = %v, want %v", n, got, want)
		}
	}
	if DataRegionArea(-3) != 0 {
		t.Error("negative qubit count should give zero area")
	}
}

func TestDefaultMovementModel(t *testing.T) {
	tech := iontrap.Default()
	m := DefaultMovementModel(tech, 16)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.BallisticPerGateUs <= 0 || m.TeleportUs <= 0 {
		t.Error("movement latencies must be positive")
	}
	// Teleportation must be substantially more expensive than ballistic
	// movement (that is the premise of keeping data regions dense).
	if float64(m.TeleportUs) < 1.5*float64(m.BallisticPerGateUs) {
		t.Errorf("teleport (%v) should cost more than ballistic movement (%v)", m.TeleportUs, m.BallisticPerGateUs)
	}
	if m.TeleportAncillae < 2 {
		t.Errorf("teleport should consume extra ancillae, got %d", m.TeleportAncillae)
	}
	// Degenerate region size still yields a valid model.
	if err := DefaultMovementModel(tech, 0).Validate(); err != nil {
		t.Error(err)
	}
}

func TestMovementModelValidate(t *testing.T) {
	bad := MovementModel{BallisticPerGateUs: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative ballistic latency should be invalid")
	}
	bad = MovementModel{TeleportAncillae: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative teleport ancillae should be invalid")
	}
}

func TestPlanTile(t *testing.T) {
	tech := iontrap.Default()
	tile, err := PlanTile(tech, 32, 36.8, 8.6)
	if err != nil {
		t.Fatal(err)
	}
	if tile.DataArea() != 224 {
		t.Errorf("tile data area = %v, want 224", tile.DataArea())
	}
	// 36.8 + 8.6 zeros/ms needs ceil(45.4/10.5) = 5 zero factories; 8.6
	// π/8/ms needs 1 π/8 factory.
	if tile.ZeroFactories != 5 {
		t.Errorf("zero factories = %d, want 5", tile.ZeroFactories)
	}
	if tile.Pi8Factories != 1 {
		t.Errorf("π/8 factories = %d, want 1", tile.Pi8Factories)
	}
	if tile.FactoryArea() != iontrap.Area(5*298+403) {
		t.Errorf("factory area = %v, want %v", tile.FactoryArea(), 5*298+403)
	}
	if tile.TotalArea() != tile.DataArea()+tile.FactoryArea() {
		t.Error("total area should be data + factory area")
	}
	// Net zero bandwidth: 5*10.5 minus the π/8 factory's consumption.
	if tile.ZeroBandwidthPerMs() <= 30 || tile.ZeroBandwidthPerMs() >= 5*10.6 {
		t.Errorf("net zero bandwidth = %v", tile.ZeroBandwidthPerMs())
	}
	if math.Abs(tile.Pi8BandwidthPerMs()-18.3) > 0.2 {
		t.Errorf("π/8 bandwidth = %v, want one factory's 18.3", tile.Pi8BandwidthPerMs())
	}
	// The factory area dominates the data area, the paper's headline
	// observation (Table 9, Figure 14c).
	if tile.FactoryArea() < 3*tile.DataArea() {
		t.Error("ancilla factories should dominate the tile area")
	}
}

func TestPlanTileErrors(t *testing.T) {
	tech := iontrap.Default()
	if _, err := PlanTile(tech, 0, 1, 1); err == nil {
		t.Error("zero data qubits should fail")
	}
	if _, err := PlanTile(tech, 4, -1, 0); err == nil {
		t.Error("negative demand should fail")
	}
}

func TestPlanQalypso(t *testing.T) {
	tech := iontrap.Default()
	q, err := PlanQalypso(tech, 97, 32, 34.8, 7.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tiles) != 4 {
		t.Fatalf("97 qubits at 32 per tile should give 4 tiles, got %d", len(q.Tiles))
	}
	totalQubits := 0
	for _, tile := range q.Tiles {
		totalQubits += tile.DataQubits
	}
	if totalQubits != 97 {
		t.Errorf("tiles hold %d qubits, want 97", totalQubits)
	}
	if q.DataArea() != DataRegionArea(97) {
		t.Errorf("data area = %v, want %v", q.DataArea(), DataRegionArea(97))
	}
	if q.TotalArea() != q.DataArea()+q.FactoryArea() {
		t.Error("total area mismatch")
	}
	// Provisioned bandwidth must cover the demand.
	if q.ZeroBandwidthPerMs() < 34.8 {
		t.Errorf("net zero bandwidth %v does not cover the 34.8/ms demand", q.ZeroBandwidthPerMs())
	}
	if q.Pi8BandwidthPerMs() < 7.0 {
		t.Errorf("π/8 bandwidth %v does not cover the 7.0/ms demand", q.Pi8BandwidthPerMs())
	}
	if err := q.Movement.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPlanQalypsoErrors(t *testing.T) {
	tech := iontrap.Default()
	if _, err := PlanQalypso(tech, 0, 16, 1, 1); err == nil {
		t.Error("no data qubits should fail")
	}
	if _, err := PlanQalypso(tech, 10, 0, 1, 1); err == nil {
		t.Error("zero tile size should fail")
	}
}

// Property: a Qalypso plan always provisions at least the requested
// bandwidth and its area grows monotonically with the demand.
func TestQalypsoProvisioningProperty(t *testing.T) {
	tech := iontrap.Default()
	f := func(zRaw, pRaw uint8) bool {
		zero := float64(zRaw%120) + 1
		pi8 := float64(pRaw % 40)
		q, err := PlanQalypso(tech, 64, 16, zero, pi8)
		if err != nil {
			return false
		}
		if q.ZeroBandwidthPerMs() < zero-1e-9 {
			return false
		}
		if q.Pi8BandwidthPerMs() < pi8-1e-9 {
			return false
		}
		bigger, err := PlanQalypso(tech, 64, 16, zero*2, pi8)
		if err != nil {
			return false
		}
		return bigger.TotalArea() >= q.TotalArea()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Edge cases: empty circuits, single-qubit layouts, zero demand.
func TestDataRegionAreaEdgeCases(t *testing.T) {
	if DataRegionArea(0) != 0 {
		t.Error("an empty circuit needs no data region")
	}
	if DataRegionArea(-3) != 0 {
		t.Error("negative qubit counts clamp to zero area")
	}
	if DataRegionArea(1) != iontrap.Area(steane.N) {
		t.Errorf("a single logical qubit occupies %d macroblocks, got %v", steane.N, DataRegionArea(1))
	}
}

func TestDefaultMovementModelDegenerateRegion(t *testing.T) {
	tech := iontrap.Default()
	// Region sizes at and below one qubit clamp to the single-qubit layout.
	one := DefaultMovementModel(tech, 1)
	zero := DefaultMovementModel(tech, 0)
	neg := DefaultMovementModel(tech, -5)
	if one != zero || one != neg {
		t.Errorf("degenerate regions should clamp to the 1-qubit model: %+v / %+v / %+v", one, zero, neg)
	}
	if one.BallisticPerGateUs <= 0 || one.TeleportUs <= one.BallisticPerGateUs {
		t.Errorf("single-qubit model not physical: %+v", one)
	}
	if err := one.Validate(); err != nil {
		t.Errorf("single-qubit model invalid: %v", err)
	}
}

func TestPlanTileSingleQubitZeroDemand(t *testing.T) {
	tech := iontrap.Default()
	tile, err := PlanTile(tech, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tile.ZeroFactories != 0 || tile.Pi8Factories != 0 {
		t.Errorf("zero demand should provision no factories: %+v", tile)
	}
	if tile.TotalArea() != tile.DataArea() {
		t.Errorf("a factory-less tile is all data: total %v, data %v", tile.TotalArea(), tile.DataArea())
	}
	if tile.ZeroBandwidthPerMs() != 0 || tile.Pi8BandwidthPerMs() != 0 {
		t.Errorf("no factories, no bandwidth: %+v", tile)
	}
}

func TestPlanQalypsoSingleQubit(t *testing.T) {
	tech := iontrap.Default()
	q, err := PlanQalypso(tech, 1, 32, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tiles) != 1 {
		t.Fatalf("one qubit fits one tile, got %d", len(q.Tiles))
	}
	if q.Tiles[0].DataQubits != 1 {
		t.Errorf("tile should hold the single qubit: %+v", q.Tiles[0])
	}
	if q.ZeroBandwidthPerMs() < 5 {
		t.Errorf("tile under-provisioned: %v < 5", q.ZeroBandwidthPerMs())
	}
}

func TestMeshDims(t *testing.T) {
	cases := []struct{ n, cols, rows int }{
		{0, 0, 0}, {-1, 0, 0}, {1, 1, 1}, {2, 2, 1}, {3, 2, 2}, {4, 2, 2},
		{5, 3, 2}, {6, 3, 2}, {9, 3, 3}, {10, 4, 3}, {16, 4, 4},
	}
	for _, c := range cases {
		cols, rows := MeshDims(c.n)
		if cols != c.cols || rows != c.rows {
			t.Errorf("MeshDims(%d) = (%d, %d), want (%d, %d)", c.n, cols, rows, c.cols, c.rows)
		}
		if c.n > 0 {
			if cols*rows < c.n {
				t.Errorf("MeshDims(%d) = %dx%d does not cover the tiles", c.n, cols, rows)
			}
			if cols*(rows-1) >= c.n {
				t.Errorf("MeshDims(%d) = %dx%d leaves a whole row empty", c.n, cols, rows)
			}
		}
	}
}

func TestLinkPortsAndEPRBandwidth(t *testing.T) {
	tech := iontrap.Default()
	tile, err := PlanTile(tech, 32, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	ports := tile.LinkPorts()
	wantSide := int(math.Ceil(math.Sqrt(float64(tile.TotalArea()))))
	if ports != wantSide {
		t.Errorf("LinkPorts = %d, want footprint side %d", ports, wantSide)
	}
	// A degenerate tile still exposes at least one port.
	if (Tile{}).LinkPorts() < 1 {
		t.Error("empty tile should still have one port")
	}

	q, err := PlanQalypso(tech, 64, 32, 200, 20)
	if err != nil {
		t.Fatal(err)
	}
	cols, rows := q.MeshDims()
	if wc, wr := MeshDims(len(q.Tiles)); cols != wc || rows != wr {
		t.Errorf("Qalypso.MeshDims = (%d, %d), want (%d, %d)", cols, rows, wc, wr)
	}
	// One pair per teleport latency per edge port.
	want := float64(q.Tiles[0].LinkPorts()) * 1000.0 / float64(q.Movement.TeleportUs)
	if got := q.LinkEPRPerMs(); math.Abs(got-want) > 1e-9 {
		t.Errorf("LinkEPRPerMs = %v, want %v", got, want)
	}
	if (Qalypso{}).LinkEPRPerMs() != 0 {
		t.Error("tile-less machine should report zero link bandwidth")
	}
	zeroTele := q
	zeroTele.Movement.TeleportUs = 0
	if zeroTele.LinkEPRPerMs() != 0 {
		t.Error("zero teleport latency should report zero link bandwidth")
	}
}

func TestMovementModelValidateRejectsNonFinite(t *testing.T) {
	good := DefaultMovementModel(iontrap.Default(), 32)
	if err := good.Validate(); err != nil {
		t.Fatalf("default movement model invalid: %v", err)
	}
	for _, m := range []MovementModel{
		{BallisticPerGateUs: iontrap.Microseconds(math.NaN())},
		{TeleportUs: iontrap.Microseconds(math.Inf(1))},
		{BallisticPerGateUs: iontrap.Microseconds(math.Inf(-1))},
	} {
		if err := m.Validate(); err == nil {
			t.Errorf("%+v should be invalid", m)
		}
	}
}
