package circuits

import (
	"fmt"

	"speedofdata/internal/fowler"
	"speedofdata/internal/quantum"
)

// QFTConfig parameterises the quantum Fourier transform generator.
type QFTConfig struct {
	// Bits is the transform width n (the paper uses 32).
	Bits int
	// MaxK truncates the controlled rotations: controlled-π/2^k gates with
	// k > MaxK are dropped.  Rotations below the physical error floor
	// contribute nothing, so truncation at k ≈ 8 is standard practice; set
	// MaxK to Bits+1 for the full exponential-precision transform.
	MaxK int
	// SynthesisEps is the target precision for each synthesised single-qubit
	// rotation (Section 2.5: exhaustive search over H/T sequences up to an
	// acceptable error).
	SynthesisEps float64
	// Searcher optionally provides a fowler.Searcher used to find real H/T
	// sequences; when nil or when the searcher cannot reach SynthesisEps, the
	// generator falls back to LengthModel to size a representative sequence.
	Searcher *fowler.Searcher
	// LengthModel estimates H/T sequence lengths for precisions beyond the
	// searcher's reach.
	LengthModel fowler.LengthModel
}

// DefaultQFTConfig returns the configuration used for the paper reproduction:
// truncation at k = 8 and 1e-3 synthesis precision from the default length
// model (no live search, so generation is fast and deterministic).
func DefaultQFTConfig(bits int) QFTConfig {
	return QFTConfig{
		Bits:         bits,
		MaxK:         8,
		SynthesisEps: 1e-3,
		LengthModel:  fowler.DefaultLengthModel(),
	}
}

// QFTStats reports how the generator synthesised the transform.
type QFTStats struct {
	// ControlledRotations is the number of controlled-π/2^k gates kept.
	ControlledRotations int
	// TruncatedRotations is the number dropped by the MaxK cutoff.
	TruncatedRotations int
	// SynthesisedRotations is the number of single-qubit rotations replaced
	// by H/T sequences (as opposed to exact Clifford+T gates).
	SynthesisedRotations int
	// SearchedSequences counts rotations whose sequence came from a live
	// Fowler search rather than the length model.
	SearchedSequences int
}

// GenerateQFT builds the n-qubit QFT lowered to the fault-tolerant gate set:
// Hadamards, CX, and single-qubit π/2^k rotations realised exactly (Z, S, T
// and daggers) or as synthesised H/T sequences per Section 2.5.
func GenerateQFT(cfg QFTConfig) (*quantum.Circuit, error) {
	c, _, err := GenerateQFTWithStats(cfg)
	return c, err
}

// GenerateQFTWithStats is GenerateQFT plus synthesis statistics.
func GenerateQFTWithStats(cfg QFTConfig) (*quantum.Circuit, QFTStats, error) {
	n := cfg.Bits
	if n < 1 {
		return nil, QFTStats{}, fmt.Errorf("circuits: QFT width must be >= 1, got %d", n)
	}
	if cfg.MaxK < 2 {
		return nil, QFTStats{}, fmt.Errorf("circuits: QFT MaxK must be >= 2 (controlled-S), got %d", cfg.MaxK)
	}
	if cfg.SynthesisEps <= 0 {
		return nil, QFTStats{}, fmt.Errorf("circuits: QFT synthesis precision must be positive")
	}
	var stats QFTStats
	c := quantum.NewCircuit(fmt.Sprintf("%d-bit QFT", n), n)
	for i := 0; i < n; i++ {
		c.Add(quantum.GateH, i)
		for j := i + 1; j < n; j++ {
			// Controlled rotation between qubits i and j at distance d is a
			// controlled-π/2^(d+1) gate in the paper's naming (adjacent
			// qubits interact through a controlled-S).
			k := (j - i) + 1
			if k > cfg.MaxK {
				stats.TruncatedRotations++
				continue
			}
			stats.ControlledRotations++
			appendControlledRotation(c, &cfg, &stats, j, i, k)
		}
	}
	return c, stats, nil
}

// appendControlledRotation decomposes a controlled-π/2^k gate into CX gates
// and three single-qubit π/2^(k+1) rotations (Section 2.5 / reference [14]):
// Rz(θ/2) on the control, Rz(θ/2) on the target, then CX, Rz(-θ/2) on the
// target, CX.
func appendControlledRotation(c *quantum.Circuit, cfg *QFTConfig, stats *QFTStats, control, target, k int) {
	appendRotation(c, cfg, stats, control, k+1, false)
	appendRotation(c, cfg, stats, target, k+1, false)
	c.Add(quantum.GateCX, control, target)
	appendRotation(c, cfg, stats, target, k+1, true)
	c.Add(quantum.GateCX, control, target)
}

// appendRotation appends a single-qubit π/2^k rotation (or its inverse).
// k <= 3 is exact in the fault-tolerant gate set; larger k is synthesised
// into an H/T sequence.
func appendRotation(c *quantum.Circuit, cfg *QFTConfig, stats *QFTStats, qubit, k int, dagger bool) {
	switch {
	case k <= 1:
		c.Add(quantum.GateZ, qubit)
		return
	case k == 2:
		if dagger {
			c.Add(quantum.GateSdg, qubit)
		} else {
			c.Add(quantum.GateS, qubit)
		}
		return
	case k == 3:
		if dagger {
			c.Add(quantum.GateTdg, qubit)
		} else {
			c.Add(quantum.GateT, qubit)
		}
		return
	}
	stats.SynthesisedRotations++
	// Try a real Fowler search first; fall back to a representative sequence
	// sized by the length model.  For the architectural evaluation what
	// matters is the gate count, mix and dependence structure of the
	// sequence, all of which the fallback preserves.
	if cfg.Searcher != nil {
		if seq, ok := cfg.Searcher.ApproximateRz(k, cfg.SynthesisEps); ok {
			stats.SearchedSequences++
			appendSequence(c, qubit, seq.Gates, dagger)
			return
		}
	}
	length := cfg.LengthModel.Length(cfg.SynthesisEps)
	appendSequence(c, qubit, representativeSequence(length), dagger)
}

// representativeSequence builds an alternating H/T string of the given
// length, the canonical shape of Fowler-search output (syllables of T gates
// separated by Hadamards).
func representativeSequence(length int) string {
	buf := make([]byte, length)
	for i := range buf {
		if i%2 == 0 {
			buf[i] = 'T'
		} else {
			buf[i] = 'H'
		}
	}
	return string(buf)
}

// appendSequence appends an H/T gate string to the circuit.  For an inverse
// rotation the sequence is reversed with T replaced by Tdg (H is self
// inverse).
func appendSequence(c *quantum.Circuit, qubit int, gates string, dagger bool) {
	if !dagger {
		for i := 0; i < len(gates); i++ {
			appendHT(c, qubit, gates[i], false)
		}
		return
	}
	for i := len(gates) - 1; i >= 0; i-- {
		appendHT(c, qubit, gates[i], true)
	}
}

func appendHT(c *quantum.Circuit, qubit int, gate byte, dagger bool) {
	switch gate {
	case 'H':
		c.Add(quantum.GateH, qubit)
	case 'T':
		if dagger {
			c.Add(quantum.GateTdg, qubit)
		} else {
			c.Add(quantum.GateT, qubit)
		}
	default:
		panic(fmt.Sprintf("circuits: unexpected synthesis gate %q", gate))
	}
}
