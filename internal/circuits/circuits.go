// Package circuits generates the paper's benchmark kernels (Section 3.1):
// the 32-bit Quantum Ripple-Carry Adder (QRCA), the 32-bit Quantum
// Carry-Lookahead Adder (QCLA) and the 32-bit Quantum Fourier Transform
// (QFT), all expressed as logical circuits over encoded qubits in the shared
// quantum.Circuit IR.
//
// The adders are generated first with explicit Toffoli gates (so their
// arithmetic can be verified exactly with the package's classical reversible
// simulator) and then lowered to the Clifford+T set the [[7,1,3]] code
// supports, with each Toffoli expanded into the standard 7-T-gate network.
// The QFT's controlled-phase rotations are decomposed per Section 2.5 into CX
// gates plus single-qubit π/2^k rotations, which are synthesised into H/T
// sequences using the fowler package.
package circuits

import (
	"fmt"
	"strings"

	"speedofdata/internal/quantum"
)

// Benchmark identifies one of the paper's three kernels.
type Benchmark int

const (
	// QRCA is the quantum ripple-carry adder.
	QRCA Benchmark = iota
	// QCLA is the quantum carry-lookahead adder.
	QCLA
	// QFT is the quantum Fourier transform.
	QFT
)

// String names the benchmark the way the paper's tables do.
func (b Benchmark) String() string {
	switch b {
	case QRCA:
		return "QRCA"
	case QCLA:
		return "QCLA"
	case QFT:
		return "QFT"
	default:
		return fmt.Sprintf("benchmark(%d)", int(b))
	}
}

// Benchmarks returns the paper's three kernels in presentation order.
func Benchmarks() []Benchmark { return []Benchmark{QRCA, QCLA, QFT} }

// ParseBenchmark resolves a flag or request parameter value to a benchmark.
// Matching is case-insensitive.
func ParseBenchmark(name string) (Benchmark, error) {
	for _, b := range Benchmarks() {
		if strings.EqualFold(name, b.String()) {
			return b, nil
		}
	}
	return 0, fmt.Errorf("circuits: unknown benchmark %q (want QRCA, QCLA or QFT)", name)
}

// Generate builds the named benchmark at the given width with default
// options (Toffolis decomposed, QFT rotations synthesised).
func Generate(b Benchmark, bits int) (*quantum.Circuit, error) {
	switch b {
	case QRCA:
		return GenerateQRCA(QRCAConfig{Bits: bits, DecomposeToffoli: true})
	case QCLA:
		return GenerateQCLA(QCLAConfig{Bits: bits, DecomposeToffoli: true})
	case QFT:
		return GenerateQFT(DefaultQFTConfig(bits))
	default:
		return nil, fmt.Errorf("circuits: unknown benchmark %v", b)
	}
}

// appendToffoli appends a Toffoli gate either directly or expanded into the
// standard Clifford+T network (7 T/Tdg, 6 CX, 2 H), depending on decompose.
func appendToffoli(c *quantum.Circuit, a, b, target int, decompose bool) {
	if !decompose {
		c.Add(quantum.GateToffoli, a, b, target)
		return
	}
	// Standard decomposition (Nielsen & Chuang Fig. 4.9).
	c.Add(quantum.GateH, target)
	c.Add(quantum.GateCX, b, target)
	c.Add(quantum.GateTdg, target)
	c.Add(quantum.GateCX, a, target)
	c.Add(quantum.GateT, target)
	c.Add(quantum.GateCX, b, target)
	c.Add(quantum.GateTdg, target)
	c.Add(quantum.GateCX, a, target)
	c.Add(quantum.GateT, b)
	c.Add(quantum.GateT, target)
	c.Add(quantum.GateH, target)
	c.Add(quantum.GateCX, a, b)
	c.Add(quantum.GateT, a)
	c.Add(quantum.GateTdg, b)
	c.Add(quantum.GateCX, a, b)
}

// ToffoliGateBudget reports the size of the Clifford+T expansion of a single
// Toffoli gate, useful for resource estimates.
type ToffoliGateBudget struct {
	TGates, CXGates, HGates int
}

// ToffoliBudget returns the per-Toffoli gate budget used by appendToffoli.
func ToffoliBudget() ToffoliGateBudget {
	return ToffoliGateBudget{TGates: 7, CXGates: 6, HGates: 2}
}
