package circuits

import (
	"math/rand"
	"testing"
	"testing/quick"

	"speedofdata/internal/quantum"
)

// runAdder loads a and b into an adder circuit built without Toffoli
// decomposition, runs the classical reversible simulator, and returns the
// computed sum register value and carry-out.
func runQRCA(t *testing.T, bits int, a, b uint64) (sum uint64, carryOut bool, carriesClean bool) {
	t.Helper()
	c, layout, err := GenerateQRCAWithLayout(QRCAConfig{Bits: bits, DecomposeToffoli: false})
	if err != nil {
		t.Fatal(err)
	}
	st := NewReversibleState(c.NumQubits)
	st.SetUint(layout.A, a)
	st.SetUint(layout.B, b)
	if err := ApplyReversible(c, st); err != nil {
		t.Fatal(err)
	}
	carriesClean = true
	for i := 0; i < bits; i++ {
		if st.Get(layout.Carry[i]) {
			carriesClean = false
		}
	}
	if got := st.Uint(layout.A); got != a {
		t.Fatalf("QRCA modified operand A: %d -> %d", a, got)
	}
	return st.Uint(layout.B), st.Get(layout.Carry[bits]), carriesClean
}

func runQCLA(t *testing.T, bits int, a, b uint64) (sum uint64, carryOut bool) {
	t.Helper()
	c, layout, err := GenerateQCLAWithLayout(QCLAConfig{Bits: bits, DecomposeToffoli: false})
	if err != nil {
		t.Fatal(err)
	}
	st := NewReversibleState(c.NumQubits)
	st.SetUint(layout.A, a)
	st.SetUint(layout.B, b)
	if err := ApplyReversible(c, st); err != nil {
		t.Fatal(err)
	}
	if got := st.Uint(layout.A); got != a {
		t.Fatalf("QCLA modified operand A: %d -> %d", a, got)
	}
	return st.Uint(layout.B), st.Get(layout.Carry[bits-1])
}

func TestQRCAAddsCorrectly(t *testing.T) {
	cases := []struct {
		bits int
		a, b uint64
	}{
		{1, 0, 0}, {1, 1, 1}, {2, 3, 1}, {4, 9, 7}, {4, 15, 15},
		{8, 200, 100}, {8, 255, 1}, {16, 65535, 12345}, {32, 4000000000, 300000001},
	}
	for _, tc := range cases {
		sum, carry, clean := runQRCA(t, tc.bits, tc.a, tc.b)
		mod := uint64(1) << uint(tc.bits)
		wantSum := (tc.a + tc.b) % mod
		wantCarry := (tc.a + tc.b) >= mod
		if sum != wantSum || carry != wantCarry {
			t.Errorf("%d-bit QRCA %d+%d = %d carry %v, want %d carry %v",
				tc.bits, tc.a, tc.b, sum, carry, wantSum, wantCarry)
		}
		if !clean {
			t.Errorf("%d-bit QRCA left intermediate carries dirty", tc.bits)
		}
	}
}

func TestQCLAAddsCorrectly(t *testing.T) {
	cases := []struct {
		bits int
		a, b uint64
	}{
		{1, 1, 1}, {2, 3, 2}, {4, 9, 7}, {4, 15, 15}, {8, 171, 85},
		{8, 255, 255}, {16, 40000, 30000}, {32, 4000000000, 300000001}, {32, 1, 4294967295},
	}
	for _, tc := range cases {
		sum, carry := runQCLA(t, tc.bits, tc.a, tc.b)
		mod := uint64(1) << uint(tc.bits)
		wantSum := (tc.a + tc.b) % mod
		wantCarry := (tc.a + tc.b) >= mod
		if sum != wantSum || carry != wantCarry {
			t.Errorf("%d-bit QCLA %d+%d = %d carry %v, want %d carry %v",
				tc.bits, tc.a, tc.b, sum, carry, wantSum, wantCarry)
		}
	}
}

// Property: both adders agree with native addition on random operands.
func TestAddersAgreeWithNativeAdditionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		bits := []int{3, 5, 8, 13}[r.Intn(4)]
		mod := uint64(1) << uint(bits)
		a := r.Uint64() % mod
		b := r.Uint64() % mod
		sumR, carryR, _ := runQRCA(t, bits, a, b)
		sumC, carryC := runQCLA(t, bits, a, b)
		want := (a + b) % mod
		wantCarry := (a + b) >= mod
		return sumR == want && sumC == want && carryR == wantCarry && carryC == wantCarry
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQRCAQubitCountMatchesPaper(t *testing.T) {
	// Section 3: an n-bit QRCA uses two n-bit data inputs plus n+1 ancillae.
	// Table 9: 32-bit QRCA data area 679 macroblocks = 7 x 97 qubits.
	c, _, err := GenerateQRCAWithLayout(QRCAConfig{Bits: 32, DecomposeToffoli: true})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 97 {
		t.Errorf("32-bit QRCA uses %d qubits, want 97 (2n + n+1)", c.NumQubits)
	}
}

func TestQCLAQubitCountPlausible(t *testing.T) {
	// Table 9: 32-bit QCLA data area 861 macroblocks = 123 qubits.  Our
	// Brent–Kung variant uses 2n operands + n carries + (n-1) prefix
	// ancillas = 127 qubits; within a few qubits of the paper's netlist.
	c, layout, err := GenerateQCLAWithLayout(QCLAConfig{Bits: 32, DecomposeToffoli: true})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits < 110 || c.NumQubits > 140 {
		t.Errorf("32-bit QCLA uses %d qubits, expected around 123-127", c.NumQubits)
	}
	if len(layout.PrefixAncillas) != 31 {
		t.Errorf("32-bit QCLA prefix ancillas = %d, want 31", len(layout.PrefixAncillas))
	}
}

func TestQCLAIsShallowerThanQRCA(t *testing.T) {
	// The whole point of the carry-lookahead adder: a much shorter critical
	// path for a similar gate count (Table 2: 15.7 ms vs 125 ms at the speed
	// of data).
	qrca, err := Generate(QRCA, 32)
	if err != nil {
		t.Fatal(err)
	}
	qcla, err := Generate(QCLA, 32)
	if err != nil {
		t.Fatal(err)
	}
	dr := qrca.ComputeStats().Depth
	dc := qcla.ComputeStats().Depth
	if dc*3 > dr {
		t.Errorf("QCLA depth %d should be at least 3x shallower than QRCA depth %d", dc, dr)
	}
	gr := qrca.Len()
	gc := qcla.Len()
	if gc > 2*gr || gr > 2*gc {
		t.Errorf("QRCA (%d gates) and QCLA (%d gates) should have comparable gate counts", gr, gc)
	}
}

func TestToffoliDecompositionCounts(t *testing.T) {
	c := quantum.NewCircuit("toffoli", 3)
	appendToffoli(c, 0, 1, 2, true)
	s := c.ComputeStats()
	budget := ToffoliBudget()
	if s.CountByKind[quantum.GateT]+s.CountByKind[quantum.GateTdg] != budget.TGates {
		t.Errorf("Toffoli T count = %d, want %d",
			s.CountByKind[quantum.GateT]+s.CountByKind[quantum.GateTdg], budget.TGates)
	}
	if s.CountByKind[quantum.GateCX] != budget.CXGates {
		t.Errorf("Toffoli CX count = %d, want %d", s.CountByKind[quantum.GateCX], budget.CXGates)
	}
	if s.CountByKind[quantum.GateH] != budget.HGates {
		t.Errorf("Toffoli H count = %d, want %d", s.CountByKind[quantum.GateH], budget.HGates)
	}
}

func TestDecomposedAddersAreCliffordT(t *testing.T) {
	for _, b := range []Benchmark{QRCA, QCLA} {
		c, err := Generate(b, 8)
		if err != nil {
			t.Fatal(err)
		}
		for i, g := range c.Gates {
			switch g.Kind {
			case quantum.GateToffoli:
				t.Fatalf("%s gate %d is an undecomposed Toffoli", b, i)
			case quantum.GateCPhase, quantum.GateRz:
				t.Fatalf("%s gate %d is an unsynthesised rotation", b, i)
			}
		}
	}
}

func TestNonTransversalFractionNearPaper(t *testing.T) {
	// Section 3.3: non-transversal one-qubit gates account for 40.5%, 41.0%
	// and 46.9% of the QRCA, QCLA and QFT respectively.  Our netlists differ
	// in detail, so accept a generous band around those values.
	for _, tc := range []struct {
		b        Benchmark
		lo, hi   float64
		paperPct float64
	}{
		{QRCA, 0.25, 0.60, 40.5},
		{QCLA, 0.25, 0.60, 41.0},
		{QFT, 0.25, 0.65, 46.9},
	} {
		c, err := Generate(tc.b, 32)
		if err != nil {
			t.Fatal(err)
		}
		s := c.ComputeStats()
		frac := float64(s.Pi8Gates) / float64(s.TotalGates)
		if frac < tc.lo || frac > tc.hi {
			t.Errorf("%s π/8-gate fraction = %.1f%%, expected %.0f%%-%.0f%% (paper: %.1f%%)",
				tc.b, 100*frac, 100*tc.lo, 100*tc.hi, tc.paperPct)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := GenerateQRCA(QRCAConfig{Bits: 0}); err == nil {
		t.Error("zero-width QRCA should fail")
	}
	if _, err := GenerateQCLA(QCLAConfig{Bits: -1}); err == nil {
		t.Error("negative-width QCLA should fail")
	}
	if _, err := GenerateQFT(QFTConfig{Bits: 0, MaxK: 8, SynthesisEps: 1e-3}); err == nil {
		t.Error("zero-width QFT should fail")
	}
	if _, err := GenerateQFT(QFTConfig{Bits: 4, MaxK: 1, SynthesisEps: 1e-3}); err == nil {
		t.Error("QFT MaxK < 2 should fail")
	}
	if _, err := GenerateQFT(QFTConfig{Bits: 4, MaxK: 8, SynthesisEps: 0}); err == nil {
		t.Error("QFT with zero synthesis precision should fail")
	}
	if _, err := Generate(Benchmark(99), 8); err == nil {
		t.Error("unknown benchmark should fail")
	}
}

func TestBenchmarkNames(t *testing.T) {
	if QRCA.String() != "QRCA" || QCLA.String() != "QCLA" || QFT.String() != "QFT" {
		t.Error("benchmark names wrong")
	}
	if len(Benchmarks()) != 3 {
		t.Error("expected three benchmarks")
	}
}

func TestReversibleSimulatorRejectsQuantumGates(t *testing.T) {
	c := quantum.NewCircuit("h", 1)
	c.Add(quantum.GateH, 0)
	if err := ApplyReversible(c, NewReversibleState(1)); err == nil {
		t.Error("Hadamard should be rejected by the reversible simulator")
	}
	small := NewReversibleState(1)
	big := quantum.NewCircuit("big", 3)
	big.Add(quantum.GateX, 2)
	if err := ApplyReversible(big, small); err == nil {
		t.Error("undersized state should be rejected")
	}
}

func TestReversibleStateHelpers(t *testing.T) {
	s := NewReversibleState(8)
	s.SetUint([]int{0, 1, 2, 3}, 0b1011)
	if !s.Get(0) || !s.Get(1) || s.Get(2) || !s.Get(3) {
		t.Error("SetUint wrong")
	}
	if s.Uint([]int{0, 1, 2, 3}) != 0b1011 {
		t.Error("Uint wrong")
	}
	s.Set(7, true)
	if !s.Get(7) {
		t.Error("Set/Get wrong")
	}
}
