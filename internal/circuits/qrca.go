package circuits

import (
	"fmt"

	"speedofdata/internal/quantum"
)

// QRCAConfig parameterises the quantum ripple-carry adder generator.
type QRCAConfig struct {
	// Bits is the operand width n (the paper uses 32).
	Bits int
	// DecomposeToffoli expands every Toffoli into the Clifford+T network; set
	// it to false to obtain a purely classical-reversible circuit that the
	// package's reversible simulator can verify.
	DecomposeToffoli bool
}

// QRCALayout describes where the adder's registers live inside the generated
// circuit, so tests and examples can load operands and read results.
type QRCALayout struct {
	// A and B are the two n-bit operands (little endian).  The sum a+b mod
	// 2^n is produced in place of B.
	A, B []int
	// Carry is the n+1 qubit carry register: Carry[0] is the carry-in
	// (restored to zero), Carry[n] receives the carry-out.  These are the
	// paper's "n+1 ancillae" for the ripple-carry adder (Section 3).
	Carry []int
}

// GenerateQRCA builds the n-bit Vedral–Barenco–Ekert style ripple-carry adder
// the paper uses as its most serial benchmark: two n-bit data inputs plus
// n+1 ancillae, with the sum produced in the second operand.
func GenerateQRCA(cfg QRCAConfig) (*quantum.Circuit, error) {
	c, _, err := GenerateQRCAWithLayout(cfg)
	return c, err
}

// GenerateQRCAWithLayout is GenerateQRCA plus the register layout.
func GenerateQRCAWithLayout(cfg QRCAConfig) (*quantum.Circuit, QRCALayout, error) {
	n := cfg.Bits
	if n < 1 {
		return nil, QRCALayout{}, fmt.Errorf("circuits: QRCA width must be >= 1, got %d", n)
	}
	layout := QRCALayout{
		A:     make([]int, n),
		B:     make([]int, n),
		Carry: make([]int, n+1),
	}
	for i := 0; i < n; i++ {
		layout.A[i] = i
		layout.B[i] = n + i
	}
	for i := 0; i <= n; i++ {
		layout.Carry[i] = 2*n + i
	}
	total := 3*n + 1
	c := quantum.NewCircuit(fmt.Sprintf("%d-bit QRCA", n), total)
	c.DataQubits = append(append([]int(nil), layout.A...), layout.B...)

	carry := func(ci, a, b, co int) {
		appendToffoli(c, a, b, co, cfg.DecomposeToffoli)
		c.Add(quantum.GateCX, a, b)
		appendToffoli(c, ci, b, co, cfg.DecomposeToffoli)
	}
	carryInverse := func(ci, a, b, co int) {
		appendToffoli(c, ci, b, co, cfg.DecomposeToffoli)
		c.Add(quantum.GateCX, a, b)
		appendToffoli(c, a, b, co, cfg.DecomposeToffoli)
	}
	sum := func(ci, a, b int) {
		c.Add(quantum.GateCX, a, b)
		c.Add(quantum.GateCX, ci, b)
	}

	// Forward carry ripple.
	for i := 0; i < n; i++ {
		carry(layout.Carry[i], layout.A[i], layout.B[i], layout.Carry[i+1])
	}
	// Top bit: undo the intermediate CX and produce the top sum.
	c.Add(quantum.GateCX, layout.A[n-1], layout.B[n-1])
	sum(layout.Carry[n-1], layout.A[n-1], layout.B[n-1])
	// Unwind the carries while producing the remaining sum bits.
	for i := n - 2; i >= 0; i-- {
		carryInverse(layout.Carry[i], layout.A[i], layout.B[i], layout.Carry[i+1])
		sum(layout.Carry[i], layout.A[i], layout.B[i])
	}
	return c, layout, nil
}
