package circuits

import (
	"fmt"

	"speedofdata/internal/quantum"
)

// QCLAConfig parameterises the quantum carry-lookahead adder generator.
type QCLAConfig struct {
	// Bits is the operand width n (the paper uses 32).
	Bits int
	// DecomposeToffoli expands every Toffoli into the Clifford+T network.
	DecomposeToffoli bool
}

// QCLALayout describes the registers of the generated carry-lookahead adder.
type QCLALayout struct {
	// A and B are the operands; the sum is produced in B.
	A, B []int
	// Carry[i] holds, at the end of the circuit, the carry out of position i
	// (so Carry[n-1] is the adder's carry-out).
	Carry []int
	// PrefixAncillas lists the extra ancillas used by the Brent–Kung prefix
	// network for block-propagate values; they are left dirty (see the
	// package documentation and DESIGN.md for the substitution note).
	PrefixAncillas []int
}

// GenerateQCLA builds an n-bit carry-lookahead adder whose carries are
// computed by a logarithmic-depth Brent–Kung parallel-prefix network (the
// same asymptotics as the Draper–Kutin–Rains–Svore adder the paper cites),
// the paper's most parallel benchmark.  The sum is produced in the B
// register.
func GenerateQCLA(cfg QCLAConfig) (*quantum.Circuit, error) {
	c, _, err := GenerateQCLAWithLayout(cfg)
	return c, err
}

// GenerateQCLAWithLayout is GenerateQCLA plus the register layout.
func GenerateQCLAWithLayout(cfg QCLAConfig) (*quantum.Circuit, QCLALayout, error) {
	n := cfg.Bits
	if n < 1 {
		return nil, QCLALayout{}, fmt.Errorf("circuits: QCLA width must be >= 1, got %d", n)
	}
	layout := QCLALayout{
		A:     make([]int, n),
		B:     make([]int, n),
		Carry: make([]int, n),
	}
	for i := 0; i < n; i++ {
		layout.A[i] = i
		layout.B[i] = n + i
		layout.Carry[i] = 2*n + i
	}

	// Plan the Brent–Kung prefix network: an up-sweep that builds
	// power-of-two block (G, P) pairs and a down-sweep that completes every
	// prefix.  Each up-sweep combine needs one fresh ancilla to hold the
	// combined block-propagate value (ANDing in place is not reversible);
	// down-sweep combines only update G.
	type combine struct {
		i, j     int // combine target i with source j = i - d
		pAncilla int // fresh qubit for the combined P, or -1 in the down-sweep
	}
	next := 3 * n
	var combines []combine
	for d := 1; d < n; d *= 2 { // up-sweep
		for i := 2*d - 1; i < n; i += 2 * d {
			cb := combine{i: i, j: i - d, pAncilla: next}
			next++
			combines = append(combines, cb)
		}
	}
	largest := 1
	for largest*2 < n {
		largest *= 2
	}
	for d := largest / 2; d >= 1; d /= 2 { // down-sweep
		for i := 3*d - 1; i < n; i += 2 * d {
			combines = append(combines, combine{i: i, j: i - d, pAncilla: -1})
		}
	}
	for q := 3 * n; q < next; q++ {
		layout.PrefixAncillas = append(layout.PrefixAncillas, q)
	}

	c := quantum.NewCircuit(fmt.Sprintf("%d-bit QCLA", n), next)
	c.DataQubits = append(append([]int(nil), layout.A...), layout.B...)

	// Step 1: generate bits g[i] = a_i AND b_i into the carry register.
	for i := 0; i < n; i++ {
		appendToffoli(c, layout.A[i], layout.B[i], layout.Carry[i], cfg.DecomposeToffoli)
	}
	// Step 2: propagate bits p[i] = a_i XOR b_i in place of b.
	for i := 0; i < n; i++ {
		c.Add(quantum.GateCX, layout.A[i], layout.B[i])
	}

	// Step 3: prefix network.  curP[i] tracks the qubit currently holding
	// the block-propagate value of the block ending at i; the block-generate
	// values (which become the carries) accumulate in place in the carry
	// register.
	curP := make([]int, n)
	for i := 0; i < n; i++ {
		curP[i] = layout.B[i]
	}
	for _, cb := range combines {
		// G[i] ^= P[i] & G[j]
		appendToffoli(c, curP[cb.i], layout.Carry[cb.j], layout.Carry[cb.i], cfg.DecomposeToffoli)
		if cb.pAncilla >= 0 {
			// P[i] = P[i] & P[j], written to a fresh ancilla.
			appendToffoli(c, curP[cb.i], curP[cb.j], cb.pAncilla, cfg.DecomposeToffoli)
			curP[cb.i] = cb.pAncilla
		}
	}

	// Step 4: sums s[i] = p[i] XOR carry-in(i) = b[i] XOR Carry[i-1].
	for i := 1; i < n; i++ {
		c.Add(quantum.GateCX, layout.Carry[i-1], layout.B[i])
	}
	return c, layout, nil
}
