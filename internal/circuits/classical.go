package circuits

import (
	"fmt"

	"speedofdata/internal/quantum"
)

// ReversibleState is a computational-basis state of a circuit, used to verify
// the adders' arithmetic exactly: every gate in an undecomposed adder (X, CX,
// Toffoli) permutes basis states, so classical simulation is exact.
type ReversibleState struct {
	bits []bool
}

// NewReversibleState returns an all-zero basis state over n qubits.
func NewReversibleState(n int) *ReversibleState {
	return &ReversibleState{bits: make([]bool, n)}
}

// Set assigns the value of qubit q.
func (s *ReversibleState) Set(q int, v bool) { s.bits[q] = v }

// Get returns the value of qubit q.
func (s *ReversibleState) Get(q int) bool { return s.bits[q] }

// SetUint loads the unsigned integer v little-endian into the given qubits.
func (s *ReversibleState) SetUint(qubits []int, v uint64) {
	for i, q := range qubits {
		s.Set(q, v&(1<<uint(i)) != 0)
	}
}

// Uint reads the little-endian unsigned integer stored in the given qubits.
func (s *ReversibleState) Uint(qubits []int) uint64 {
	var v uint64
	for i, q := range qubits {
		if s.Get(q) {
			v |= 1 << uint(i)
		}
	}
	return v
}

// ApplyReversible runs a circuit consisting solely of classical reversible
// gates (X, CX, Toffoli, and identity) on the state.  Any other gate kind is
// an error — callers should generate adders with DecomposeToffoli=false for
// verification.
func ApplyReversible(c *quantum.Circuit, s *ReversibleState) error {
	if len(s.bits) < c.NumQubits {
		return fmt.Errorf("circuits: state has %d qubits, circuit needs %d", len(s.bits), c.NumQubits)
	}
	for i, g := range c.Gates {
		switch g.Kind {
		case quantum.GateI:
			// no-op
		case quantum.GateX:
			s.bits[g.Qubits[0]] = !s.bits[g.Qubits[0]]
		case quantum.GateCX:
			if s.bits[g.Qubits[0]] {
				s.bits[g.Qubits[1]] = !s.bits[g.Qubits[1]]
			}
		case quantum.GateToffoli:
			if s.bits[g.Qubits[0]] && s.bits[g.Qubits[1]] {
				s.bits[g.Qubits[2]] = !s.bits[g.Qubits[2]]
			}
		default:
			return fmt.Errorf("circuits: gate %d (%s) is not classically reversible", i, g)
		}
	}
	return nil
}
