package circuits

import (
	"testing"

	"speedofdata/internal/fowler"
	"speedofdata/internal/quantum"
)

func TestQFTStructureSmall(t *testing.T) {
	// A 3-qubit QFT with no truncation needs 3 Hadamards and 3 controlled
	// rotations (k = 2, 3, 2).
	cfg := QFTConfig{Bits: 3, MaxK: 10, SynthesisEps: 1e-3, LengthModel: fowler.DefaultLengthModel()}
	c, stats, err := GenerateQFTWithStats(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ControlledRotations != 3 || stats.TruncatedRotations != 0 {
		t.Errorf("3-qubit QFT rotations = %+v, want 3 kept, 0 truncated", stats)
	}
	s := c.ComputeStats()
	// Controlled-S decomposes into 3 exact T-level rotations; controlled-T
	// (k=3) needs k+1=4 synthesis.  No controlled rotation here is Clifford
	// only, so there must be T gates and CX gates.
	if s.CountByKind[quantum.GateCX] != 6 {
		t.Errorf("3-qubit QFT CX count = %d, want 6 (two per controlled rotation)", s.CountByKind[quantum.GateCX])
	}
	if s.CountByKind[quantum.GateH] < 3 {
		t.Errorf("3-qubit QFT has %d H gates, want at least the 3 top-level Hadamards", s.CountByKind[quantum.GateH])
	}
}

func TestQFTTruncation(t *testing.T) {
	full, statsFull, err := GenerateQFTWithStats(QFTConfig{Bits: 16, MaxK: 17, SynthesisEps: 1e-3, LengthModel: fowler.DefaultLengthModel()})
	if err != nil {
		t.Fatal(err)
	}
	trunc, statsTrunc, err := GenerateQFTWithStats(QFTConfig{Bits: 16, MaxK: 5, SynthesisEps: 1e-3, LengthModel: fowler.DefaultLengthModel()})
	if err != nil {
		t.Fatal(err)
	}
	if statsFull.TruncatedRotations != 0 {
		t.Errorf("untruncated QFT reports %d truncated rotations", statsFull.TruncatedRotations)
	}
	if statsTrunc.TruncatedRotations == 0 {
		t.Error("truncated QFT reports no truncated rotations")
	}
	if statsFull.ControlledRotations != 16*15/2 {
		t.Errorf("full QFT controlled rotations = %d, want %d", statsFull.ControlledRotations, 16*15/2)
	}
	if statsTrunc.ControlledRotations+statsTrunc.TruncatedRotations != statsFull.ControlledRotations {
		t.Error("kept + truncated should equal the total pair count")
	}
	if trunc.Len() >= full.Len() {
		t.Error("truncation should reduce the gate count")
	}
}

func TestQFT32MatchesPaperShape(t *testing.T) {
	// The paper's 32-bit QFT is its largest benchmark: several thousand
	// gates, the largest π/8-gate fraction of the three kernels, and a long
	// critical path.
	c, err := Generate(QFT, 32)
	if err != nil {
		t.Fatal(err)
	}
	s := c.ComputeStats()
	if s.NumQubits != 32 {
		t.Errorf("32-bit QFT qubits = %d, want 32 (in-place transform)", s.NumQubits)
	}
	if s.TotalGates < 3000 || s.TotalGates > 60000 {
		t.Errorf("32-bit QFT gate count = %d, expected several thousand", s.TotalGates)
	}
	qrca, err := Generate(QRCA, 32)
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalGates <= qrca.ComputeStats().TotalGates {
		t.Error("the 32-bit QFT should contain more gates than the 32-bit QRCA")
	}
}

func TestQFTWithLiveSearcher(t *testing.T) {
	searcher := fowler.NewSearcher(8)
	searcher.MaxStates = 20000
	cfg := QFTConfig{Bits: 6, MaxK: 8, SynthesisEps: 0.2, Searcher: searcher, LengthModel: fowler.DefaultLengthModel()}
	_, stats, err := GenerateQFTWithStats(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SynthesisedRotations == 0 {
		t.Fatal("expected some synthesised rotations")
	}
	if stats.SearchedSequences == 0 {
		t.Error("with a generous precision target the live searcher should supply some sequences")
	}
}

func TestQFTDeterministic(t *testing.T) {
	a, err := Generate(QFT, 12)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(QFT, 12)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("QFT generation not deterministic: %d vs %d gates", a.Len(), b.Len())
	}
	for i := range a.Gates {
		if a.Gates[i].Kind != b.Gates[i].Kind {
			t.Fatalf("gate %d differs between runs", i)
		}
	}
}

func TestRepresentativeSequence(t *testing.T) {
	s := representativeSequence(5)
	if len(s) != 5 {
		t.Fatalf("length = %d", len(s))
	}
	for i := 0; i < len(s); i++ {
		if s[i] != 'H' && s[i] != 'T' {
			t.Fatalf("unexpected character %q", s[i])
		}
	}
}

func TestAppendSequenceDagger(t *testing.T) {
	c := quantum.NewCircuit("seq", 1)
	appendSequence(c, 0, "HT", false)
	appendSequence(c, 0, "HT", true)
	// Forward: H then T. Dagger: Tdg then H (reversed order, T inverted).
	kinds := []quantum.GateKind{quantum.GateH, quantum.GateT, quantum.GateTdg, quantum.GateH}
	if c.Len() != len(kinds) {
		t.Fatalf("sequence length = %d, want %d", c.Len(), len(kinds))
	}
	for i, k := range kinds {
		if c.Gates[i].Kind != k {
			t.Errorf("gate %d = %s, want %s", i, c.Gates[i].Kind, k)
		}
	}
}
