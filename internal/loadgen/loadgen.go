// Package loadgen is an open-loop HTTP load generator for the experiment
// API: requests fire on a Poisson arrival schedule regardless of how fast
// the server answers, so a saturated server accumulates queueing (and must
// shed) instead of silently slowing the generator down — the failure mode a
// closed-loop benchmark hides.
//
// A run is driven by a Mix: weighted experiment endpoints with per-request
// parameter distributions, a cache-hit ratio knob (that fraction of requests
// replays an earlier request's exact parameters, exercising the engine's
// fingerprint cache), and an SSE fraction (that fraction of arrivals opens a
// /v1/progress subscription held to the end of the run).  Latencies land in
// an HDR-style histogram; the Result reports p50/p90/p99/p999, shed (429)
// and error counts, and achieved versus offered rate.
//
// The whole schedule — arrival times, endpoint choices, parameters, replay
// picks — is generated up front from Config.Seed, so two runs against the
// same server are identical load.
package loadgen

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Endpoint is one weighted entry of a workload mix.
type Endpoint struct {
	// ID is the experiment id requested as /v1/experiments/{id}.
	ID string
	// Weight is the relative probability of choosing this endpoint.
	Weight float64
	// Params draws the query parameters of one request; nil means none.
	Params func(r *rand.Rand) url.Values
}

// Mix is the workload specification of a run.
type Mix struct {
	// Endpoints are the weighted experiment requests.
	Endpoints []Endpoint
	// CacheHit in [0, 1] is the fraction of requests that replay the exact
	// URL of an earlier request in the schedule (a guaranteed fingerprint
	// cache hit once the first occurrence completes).
	CacheHit float64
	// SSE in [0, 1] is the fraction of arrivals that open a /v1/progress
	// subscription (held until the run ends) instead of an experiment
	// request.
	SSE float64
}

// Config parameterises one load run.
type Config struct {
	// BaseURL is the server under test, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Rate is the offered arrival rate in requests per second.
	Rate float64
	// Duration is the span of the arrival schedule.  The run waits for
	// in-flight requests (up to Timeout) after the last arrival.
	Duration time.Duration
	// Seed makes the schedule deterministic.
	Seed int64
	// Mix is the workload; it must contain at least one endpoint.
	Mix Mix
	// Timeout bounds one request; 0 means 30s.
	Timeout time.Duration
	// Client overrides the HTTP client (its Timeout is ignored in favour of
	// per-request contexts); nil uses a pooled default.
	Client *http.Client
}

// Validate rejects configurations that cannot drive a run.
func (c Config) Validate() error {
	if c.BaseURL == "" {
		return errors.New("loadgen: BaseURL is required")
	}
	if c.Rate <= 0 {
		return fmt.Errorf("loadgen: Rate must be positive, got %v", c.Rate)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("loadgen: Duration must be positive, got %v", c.Duration)
	}
	if len(c.Mix.Endpoints) == 0 {
		return errors.New("loadgen: Mix needs at least one endpoint")
	}
	for _, e := range c.Mix.Endpoints {
		if e.ID == "" || e.Weight < 0 {
			return fmt.Errorf("loadgen: bad endpoint %+v", e)
		}
	}
	if c.Mix.CacheHit < 0 || c.Mix.CacheHit > 1 {
		return fmt.Errorf("loadgen: CacheHit must be in [0,1], got %v", c.Mix.CacheHit)
	}
	if c.Mix.SSE < 0 || c.Mix.SSE > 1 {
		return fmt.Errorf("loadgen: SSE must be in [0,1], got %v", c.Mix.SSE)
	}
	return nil
}

// Result is the outcome of one load run.
type Result struct {
	// OfferedPerSec is the configured arrival rate; AchievedPerSec is the
	// completed-request rate actually measured over the run.
	OfferedPerSec  float64 `json:"offered_per_sec"`
	AchievedPerSec float64 `json:"achieved_per_sec"`
	// Sent counts experiment requests fired; OK those answered 2xx; Shed
	// those answered 429; Errors transport failures and other non-2xx.
	Sent   int64 `json:"sent"`
	OK     int64 `json:"ok"`
	Shed   int64 `json:"shed"`
	Errors int64 `json:"errors"`
	// Errors decomposed: Timeouts are requests the per-request deadline
	// killed, TransportErrors every other failure before an HTTP status
	// arrived (refused connection, reset, bad URL), and HTTPErrors responses
	// that did arrive with a non-2xx, non-429 status.  The three sum to
	// Errors, so a saturated server (timeouts) reads differently from a dead
	// one (transport) or a broken workload (HTTP status).
	Timeouts        int64 `json:"timeouts"`
	TransportErrors int64 `json:"transport_errors"`
	HTTPErrors      int64 `json:"http_errors"`
	// RetryAfterSeen counts 429 responses that carried a Retry-After header
	// (every shed should).
	RetryAfterSeen int64 `json:"retry_after_seen"`
	// SSESessions is the number of progress subscriptions held open;
	// SSEEvents the total events they received.
	SSESessions int64 `json:"sse_sessions"`
	SSEEvents   int64 `json:"sse_events"`
	// Latency quantiles of successful (2xx) requests, reported in
	// nanoseconds like time.Duration.
	P50  time.Duration `json:"p50_ns"`
	P90  time.Duration `json:"p90_ns"`
	P99  time.Duration `json:"p99_ns"`
	P999 time.Duration `json:"p999_ns"`
	Max  time.Duration `json:"max_ns"`
	// ByStatus counts responses per HTTP status code.
	ByStatus map[int]int64 `json:"by_status"`
}

// plannedRequest is one precomputed arrival of the schedule.
type plannedRequest struct {
	at  time.Duration // offset from run start
	url string        // full request URL ("" marks an SSE arrival)
}

// plan expands the config into the deterministic arrival schedule.
func plan(cfg Config) []plannedRequest {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var totalWeight float64
	for _, e := range cfg.Mix.Endpoints {
		totalWeight += e.Weight
	}
	pick := func() Endpoint {
		x := rng.Float64() * totalWeight
		for _, e := range cfg.Mix.Endpoints {
			if x -= e.Weight; x < 0 {
				return e
			}
		}
		return cfg.Mix.Endpoints[len(cfg.Mix.Endpoints)-1]
	}
	var (
		reqs []plannedRequest
		past []string // URLs already scheduled, for cache-hit replay
		at   time.Duration
	)
	for {
		// Poisson arrivals: exponential inter-arrival gaps at the offered rate.
		at += time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second))
		if at > cfg.Duration {
			return reqs
		}
		if rng.Float64() < cfg.Mix.SSE {
			reqs = append(reqs, plannedRequest{at: at})
			continue
		}
		var u string
		if len(past) > 0 && rng.Float64() < cfg.Mix.CacheHit {
			u = past[rng.Intn(len(past))]
		} else {
			e := pick()
			u = cfg.BaseURL + "/v1/experiments/" + e.ID
			if e.Params != nil {
				if q := e.Params(rng).Encode(); q != "" {
					u += "?" + q
				}
			}
			past = append(past, u)
		}
		reqs = append(reqs, plannedRequest{at: at, url: u})
	}
}

// Run executes the load schedule against cfg.BaseURL and reports the
// measured result.  ctx aborts the run early (in-flight requests are
// cancelled); the schedule itself always runs to cfg.Duration otherwise.
func Run(ctx context.Context, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	timeout := cfg.Timeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 128,
			MaxConnsPerHost:     0,
		}}
	}

	schedule := plan(cfg)
	res := Result{OfferedPerSec: cfg.Rate, ByStatus: map[int]int64{}}
	var (
		hist      Hist
		mu        sync.Mutex // guards ByStatus
		wg        sync.WaitGroup
		sseWG     sync.WaitGroup
		sent      atomic.Int64
		ok        atomic.Int64
		shed      atomic.Int64
		errs      atomic.Int64
		timeouts  atomic.Int64
		transport atomic.Int64
		httpErrs  atomic.Int64
		retrySaw  atomic.Int64
		sseN      atomic.Int64
		sseEv     atomic.Int64
	)
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	sseCtx, cancelSSE := context.WithCancel(runCtx)
	defer cancelSSE()

	record := func(status int) {
		mu.Lock()
		res.ByStatus[status]++
		mu.Unlock()
	}

	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	for _, pr := range schedule {
		// Open loop: wait until the scheduled arrival, then fire without
		// waiting for earlier requests — server slowness must not throttle us.
		wait := pr.at - time.Since(start)
		if wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-runCtx.Done():
				return res, runCtx.Err()
			}
		}
		if pr.url == "" {
			sseWG.Add(1)
			sseN.Add(1)
			go func() {
				defer sseWG.Done()
				subscribeProgress(sseCtx, client, cfg.BaseURL, &sseEv)
			}()
			continue
		}
		sent.Add(1)
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			reqCtx, cancel := context.WithTimeout(runCtx, timeout)
			defer cancel()
			req, err := http.NewRequestWithContext(reqCtx, "GET", u, nil)
			if err != nil {
				errs.Add(1)
				transport.Add(1)
				return
			}
			t0 := time.Now()
			resp, err := client.Do(req)
			if err != nil {
				errs.Add(1)
				if isTimeout(err) {
					timeouts.Add(1)
				} else {
					transport.Add(1)
				}
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			elapsed := time.Since(t0)
			record(resp.StatusCode)
			switch {
			case resp.StatusCode >= 200 && resp.StatusCode < 300:
				ok.Add(1)
				hist.Record(elapsed)
			case resp.StatusCode == http.StatusTooManyRequests:
				shed.Add(1)
				if resp.Header.Get("Retry-After") != "" {
					retrySaw.Add(1)
				}
			default:
				errs.Add(1)
				httpErrs.Add(1)
			}
		}(pr.url)
	}
	wg.Wait()
	// The offered window spans the whole schedule even when the last
	// requests finish early; only responses outliving it stretch the
	// measurement window.
	elapsed := time.Since(start)
	if elapsed < cfg.Duration {
		elapsed = cfg.Duration
	}
	// SSE sessions hold to the end of the run by design; release them now.
	cancelSSE()
	sseWG.Wait()

	res.Sent = sent.Load()
	res.OK = ok.Load()
	res.Shed = shed.Load()
	res.Errors = errs.Load()
	res.Timeouts = timeouts.Load()
	res.TransportErrors = transport.Load()
	res.HTTPErrors = httpErrs.Load()
	res.RetryAfterSeen = retrySaw.Load()
	res.SSESessions = sseN.Load()
	res.SSEEvents = sseEv.Load()
	if secs := elapsed.Seconds(); secs > 0 {
		res.AchievedPerSec = float64(res.OK+res.Shed+res.Errors) / secs
	}
	res.P50 = hist.Quantile(0.50)
	res.P90 = hist.Quantile(0.90)
	res.P99 = hist.Quantile(0.99)
	res.P999 = hist.Quantile(0.999)
	res.Max = hist.Max()
	return res, ctx.Err()
}

// isTimeout reports whether a request failed on its deadline rather than on
// the wire.  client.Do wraps the cause in a *url.Error, so this checks both
// the context sentinel and the net.Error timeout flag.
func isTimeout(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// subscribeProgress holds one /v1/progress subscription open until ctx
// cancels, counting the events it receives.
func subscribeProgress(ctx context.Context, client *http.Client, baseURL string, events *atomic.Int64) {
	req, err := http.NewRequestWithContext(ctx, "GET", baseURL+"/v1/progress", nil)
	if err != nil {
		return
	}
	resp, err := client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		if strings.HasPrefix(scanner.Text(), "data: ") {
			events.Add(1)
		}
	}
}
