package loadgen

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// Hist's own tests (quantile error bounds, bucket monotonicity) moved to
// internal/obs with the histogram itself; TestHistIsObsHistogram pins the
// alias so the generator and the server keep sharing one implementation.
func TestHistIsObsHistogram(t *testing.T) {
	var h Hist
	h.Record(5 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("count %d, want 1", h.Count())
	}
	if h.Sum() < 4*time.Millisecond || h.Sum() > 6*time.Millisecond {
		t.Fatalf("sum %v, want ~5ms", h.Sum())
	}
}

// TestPlanDeterministic checks the schedule is a pure function of the seed
// and respects the mix: arrival count near rate*duration, cache-hit
// fraction producing URL replays, SSE fraction producing subscriptions.
func TestPlanDeterministic(t *testing.T) {
	cfg := Config{
		BaseURL:  "http://test",
		Rate:     1000,
		Duration: 2 * time.Second,
		Seed:     42,
		Mix: Mix{
			CacheHit: 0.5,
			SSE:      0.1,
			Endpoints: []Endpoint{
				{ID: "table1", Weight: 3},
				{ID: "fig4", Weight: 1, Params: func(r *rand.Rand) url.Values {
					return url.Values{"seed": {fmt.Sprint(r.Intn(1000))}}
				}},
			},
		},
	}
	a, b := plan(cfg), plan(cfg)
	if len(a) != len(b) {
		t.Fatalf("same seed, different schedule lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, schedules diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	cfg.Seed = 43
	if c := plan(cfg); len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical schedules")
		}
	}

	// ~2000 expected arrivals; Poisson fluctuation is ~sqrt(2000)≈45.
	if n := len(a); math.Abs(float64(n)-2000) > 250 {
		t.Errorf("schedule has %d arrivals, want ≈2000", n)
	}
	var sse, replays, table1, fig4 int
	seen := map[string]int{}
	for _, pr := range a {
		switch {
		case pr.url == "":
			sse++
		default:
			if seen[pr.url] > 0 {
				replays++
			}
			seen[pr.url]++
			if strings.Contains(pr.url, "table1") {
				table1++
			} else {
				fig4++
			}
		}
	}
	if frac := float64(sse) / float64(len(a)); math.Abs(frac-0.1) > 0.03 {
		t.Errorf("SSE fraction %.3f, want ≈0.10", frac)
	}
	// CacheHit=0.5 replays at least that fraction (weighted endpoints can
	// also collide naturally, e.g. parameterless table1).
	if frac := float64(replays) / float64(table1+fig4); frac < 0.4 {
		t.Errorf("replay fraction %.3f, want ≥0.4 with CacheHit=0.5", frac)
	}
	if table1 < 2*fig4 {
		t.Errorf("weights not respected: table1=%d fig4=%d, want ≈3:1", table1, fig4)
	}
	// Arrivals are sorted and within the duration.
	for i := 1; i < len(a); i++ {
		if a[i].at < a[i-1].at {
			t.Fatalf("arrivals out of order at %d", i)
		}
	}
	if last := a[len(a)-1].at; last > cfg.Duration {
		t.Errorf("arrival past duration: %v", last)
	}
}

// stubServer answers /v1/experiments/* after a fixed delay and streams
// events on /v1/progress, so Run is tested without a real engine.
func stubServer(t *testing.T, delay time.Duration, status func(r *http.Request) int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/experiments/", func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		time.Sleep(delay)
		code := http.StatusOK
		if status != nil {
			code = status(r)
		}
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		w.WriteHeader(code)
		fmt.Fprintln(w, `{"sections":[]}`)
	})
	mux.HandleFunc("/v1/progress", func(w http.ResponseWriter, r *http.Request) {
		f := w.(http.Flusher)
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-r.Context().Done():
				return
			case <-tick.C:
				fmt.Fprintf(w, "event: job\ndata: {\"done\":%d}\n\n", i)
				f.Flush()
			}
		}
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &hits
}

func baseMix() Mix {
	return Mix{Endpoints: []Endpoint{{ID: "table1", Weight: 1}}}
}

// TestRunMeasuresLatency drives the stub at a modest rate and checks the
// counters and quantiles reflect the stub's behavior.
func TestRunMeasuresLatency(t *testing.T) {
	const delay = 20 * time.Millisecond
	ts, hits := stubServer(t, delay, nil)
	res, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		Rate:     100,
		Duration: 500 * time.Millisecond,
		Seed:     7,
		Mix:      baseMix(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 || res.OK != res.Sent || res.Errors != 0 || res.Shed != 0 {
		t.Fatalf("sent=%d ok=%d shed=%d errors=%d; want all sent OK", res.Sent, res.OK, res.Shed, res.Errors)
	}
	if hits.Load() != res.Sent {
		t.Errorf("server saw %d requests, generator sent %d", hits.Load(), res.Sent)
	}
	if res.P50 < delay || res.P50 > delay+100*time.Millisecond {
		t.Errorf("p50 %v implausible for a %v stub", res.P50, delay)
	}
	if res.P99 < res.P50 || res.P999 < res.P99 || res.Max < res.P999 {
		t.Errorf("quantiles not ordered: p50=%v p99=%v p999=%v max=%v", res.P50, res.P99, res.P999, res.Max)
	}
	if res.OfferedPerSec != 100 {
		t.Errorf("offered %v, want 100", res.OfferedPerSec)
	}
	if res.AchievedPerSec <= 0 {
		t.Errorf("achieved rate %v, want positive", res.AchievedPerSec)
	}
	if res.ByStatus[http.StatusOK] != res.OK {
		t.Errorf("ByStatus[200]=%d, want %d", res.ByStatus[http.StatusOK], res.OK)
	}
}

// TestRunCountsShedAndErrors makes the stub shed every third request with
// 429 + Retry-After and fail every fifth with 500, and checks the
// classification.
func TestRunCountsShedAndErrors(t *testing.T) {
	var n atomic.Int64
	ts, _ := stubServer(t, 0, func(r *http.Request) int {
		switch n.Add(1) % 5 {
		case 0:
			return http.StatusInternalServerError
		case 1, 2:
			return http.StatusTooManyRequests
		default:
			return http.StatusOK
		}
	})
	res, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		Rate:     200,
		Duration: 300 * time.Millisecond,
		Seed:     11,
		Mix:      baseMix(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 || res.Errors == 0 || res.OK == 0 {
		t.Fatalf("expected a mix of outcomes: %+v", res)
	}
	if res.RetryAfterSeen != res.Shed {
		t.Errorf("RetryAfterSeen=%d, want every shed (%d)", res.RetryAfterSeen, res.Shed)
	}
	if res.OK+res.Shed+res.Errors != res.Sent {
		t.Errorf("outcomes %d+%d+%d don't add to sent %d", res.OK, res.Shed, res.Errors, res.Sent)
	}
	if res.ByStatus[429] != res.Shed {
		t.Errorf("ByStatus[429]=%d, want %d", res.ByStatus[429], res.Shed)
	}
	// Every error here arrived as an HTTP status (500), not on the wire.
	if res.HTTPErrors != res.Errors || res.TransportErrors != 0 || res.Timeouts != 0 {
		t.Errorf("error decomposition http=%d transport=%d timeout=%d, want all %d HTTP",
			res.HTTPErrors, res.TransportErrors, res.Timeouts, res.Errors)
	}
}

// TestRunClassifiesTransportErrors points the generator at a closed listener:
// every request dies on connect, so the errors are transport, not HTTP.
func TestRunClassifiesTransportErrors(t *testing.T) {
	ts, _ := stubServer(t, 0, nil)
	ts.Close() // keep the URL, kill the listener
	res, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		Rate:     100,
		Duration: 200 * time.Millisecond,
		Seed:     5,
		Mix:      baseMix(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 || res.Errors != res.Sent {
		t.Fatalf("sent=%d errors=%d; want every request to fail", res.Sent, res.Errors)
	}
	if res.TransportErrors != res.Errors || res.HTTPErrors != 0 {
		t.Errorf("refused connections classified as transport=%d http=%d timeout=%d, want all %d transport",
			res.TransportErrors, res.HTTPErrors, res.Timeouts, res.Errors)
	}
	if len(res.ByStatus) != 0 {
		t.Errorf("no response ever arrived, but ByStatus=%v", res.ByStatus)
	}
}

// TestRunClassifiesTimeouts gives requests a deadline shorter than the
// stub's delay: every request dies on its per-request timeout.
func TestRunClassifiesTimeouts(t *testing.T) {
	ts, _ := stubServer(t, 500*time.Millisecond, nil)
	res, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		Rate:     50,
		Duration: 200 * time.Millisecond,
		Seed:     9,
		Timeout:  50 * time.Millisecond,
		Mix:      baseMix(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 || res.Errors != res.Sent {
		t.Fatalf("sent=%d errors=%d; want every request to time out", res.Sent, res.Errors)
	}
	if res.Timeouts != res.Errors || res.OK != 0 {
		t.Errorf("deadline kills classified as timeout=%d transport=%d http=%d, want all %d timeouts",
			res.Timeouts, res.TransportErrors, res.HTTPErrors, res.Errors)
	}
	if res.Timeouts+res.TransportErrors+res.HTTPErrors != res.Errors {
		t.Errorf("decomposition %d+%d+%d doesn't add to errors %d",
			res.Timeouts, res.TransportErrors, res.HTTPErrors, res.Errors)
	}
}

// TestRunSSESessions checks the SSE fraction opens progress subscriptions
// that collect events until the run ends.
func TestRunSSESessions(t *testing.T) {
	ts, _ := stubServer(t, 0, nil)
	mix := baseMix()
	mix.SSE = 0.5
	res, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		Rate:     50,
		Duration: 400 * time.Millisecond,
		Seed:     3,
		Mix:      mix,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SSESessions == 0 {
		t.Fatal("no SSE sessions opened with SSE=0.5")
	}
	if res.SSEEvents == 0 {
		t.Error("SSE sessions received no events from the streaming stub")
	}
}

// TestRunContextCancel aborts a run mid-schedule.
func TestRunContextCancel(t *testing.T) {
	ts, _ := stubServer(t, 0, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := Run(ctx, Config{
		BaseURL:  ts.URL,
		Rate:     10,
		Duration: 10 * time.Second,
		Seed:     1,
		Mix:      baseMix(),
	})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
}

// TestConfigValidation enumerates rejected configurations.
func TestConfigValidation(t *testing.T) {
	good := Config{BaseURL: "http://x", Rate: 1, Duration: time.Second, Mix: baseMix()}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{Rate: 1, Duration: time.Second, Mix: baseMix()},
		{BaseURL: "http://x", Duration: time.Second, Mix: baseMix()},
		{BaseURL: "http://x", Rate: -1, Duration: time.Second, Mix: baseMix()},
		{BaseURL: "http://x", Rate: 1, Mix: baseMix()},
		{BaseURL: "http://x", Rate: 1, Duration: time.Second},
		{BaseURL: "http://x", Rate: 1, Duration: time.Second, Mix: Mix{CacheHit: 2, Endpoints: baseMix().Endpoints}},
		{BaseURL: "http://x", Rate: 1, Duration: time.Second, Mix: Mix{SSE: -0.1, Endpoints: baseMix().Endpoints}},
		{BaseURL: "http://x", Rate: 1, Duration: time.Second, Mix: Mix{Endpoints: []Endpoint{{ID: "", Weight: 1}}}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}
