package loadgen

import "speedofdata/internal/obs"

// Hist is the shared HDR-style latency histogram, which started here and
// now lives in internal/obs so the server's latency metrics use the same
// buckets and error bounds as the load generator's report.
type Hist = obs.Histogram
