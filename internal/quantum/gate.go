// Package quantum provides the circuit intermediate representation shared by
// every other package: gate kinds, logical circuits over encoded qubits,
// physical circuits over individual ions, and the dataflow DAG used by the
// scheduler and the microarchitecture simulators.
//
// The paper distinguishes two levels:
//
//   - logical circuits, whose qubits are encoded [[7,1,3]] blocks and whose
//     gates are classified transversal vs non-transversal (Section 2.1);
//   - physical circuits, whose qubits are single ions and whose operations
//     carry the ion-trap latencies of Tables 1 and 4.
//
// Both levels share the Gate vocabulary defined here.
package quantum

import "fmt"

// GateKind identifies a quantum gate or circuit-level operation.
type GateKind int

const (
	// GateI is the identity (used for explicit waits).
	GateI GateKind = iota
	// GateX is the Pauli X (bit flip).
	GateX
	// GateY is the Pauli Y.
	GateY
	// GateZ is the Pauli Z (phase flip).
	GateZ
	// GateH is the Hadamard gate.
	GateH
	// GateS is the phase gate (sqrt of Z, π/4 rotation about Z).
	GateS
	// GateSdg is the inverse phase gate.
	GateSdg
	// GateT is the π/8 gate (π/4 phase), the non-transversal gate of the
	// [[7,1,3]] code that requires an encoded π/8 ancilla (Section 2.4).
	GateT
	// GateTdg is the inverse π/8 gate.
	GateTdg
	// GateRz is a Z rotation by an arbitrary angle (π/2^k in the QFT); it
	// must be synthesised from H/T sequences (Section 2.5).
	GateRz
	// GateCX is the controlled-NOT gate.
	GateCX
	// GateCZ is the controlled-Z gate.
	GateCZ
	// GateCS is the controlled-S gate (appears in the π/8 ancilla prep).
	GateCS
	// GateCPhase is a controlled phase rotation by an arbitrary angle, the
	// gate the QFT is built from before decomposition.
	GateCPhase
	// GateToffoli is the doubly-controlled NOT; benchmark generators expand
	// it into Clifford+T before scheduling.
	GateToffoli
	// GateMeasure is a computational-basis measurement.
	GateMeasure
	// GateMeasureX is an X-basis measurement.
	GateMeasureX
	// GatePrepZero prepares |0>.
	GatePrepZero
	// GatePrepPlus prepares |+>.
	GatePrepPlus

	numGateKinds
)

var gateNames = [...]string{
	GateI:        "I",
	GateX:        "X",
	GateY:        "Y",
	GateZ:        "Z",
	GateH:        "H",
	GateS:        "S",
	GateSdg:      "Sdg",
	GateT:        "T",
	GateTdg:      "Tdg",
	GateRz:       "Rz",
	GateCX:       "CX",
	GateCZ:       "CZ",
	GateCS:       "CS",
	GateCPhase:   "CPhase",
	GateToffoli:  "Toffoli",
	GateMeasure:  "M",
	GateMeasureX: "Mx",
	GatePrepZero: "Prep0",
	GatePrepPlus: "Prep+",
}

// String returns the conventional short name of the gate.
func (k GateKind) String() string {
	if k < 0 || int(k) >= len(gateNames) {
		return fmt.Sprintf("gate(%d)", int(k))
	}
	return gateNames[k]
}

// Arity returns how many qubits the gate acts on.
func (k GateKind) Arity() int {
	switch k {
	case GateCX, GateCZ, GateCS, GateCPhase:
		return 2
	case GateToffoli:
		return 3
	default:
		return 1
	}
}

// IsMeasurement reports whether the gate is a measurement.
func (k GateKind) IsMeasurement() bool {
	return k == GateMeasure || k == GateMeasureX
}

// IsPreparation reports whether the gate is a state preparation.
func (k GateKind) IsPreparation() bool {
	return k == GatePrepZero || k == GatePrepPlus
}

// IsClifford reports whether the gate is in the Clifford group (and therefore
// has a transversal implementation on the [[7,1,3]] code, Section 2.1).
func (k GateKind) IsClifford() bool {
	switch k {
	case GateI, GateX, GateY, GateZ, GateH, GateS, GateSdg, GateCX, GateCZ,
		GateMeasure, GateMeasureX, GatePrepZero, GatePrepPlus:
		return true
	default:
		return false
	}
}

// TransversalOnSteane reports whether the encoded gate can be applied
// transversally on the [[7,1,3]] CSS code.  The paper lists CX, X, Y, Z,
// Phase (S) and Hadamard as transversal; the π/8 gate, arbitrary rotations,
// Toffoli and controlled-phase are not (Sections 2.1, 2.4, 2.5).
func (k GateKind) TransversalOnSteane() bool {
	switch k {
	case GateI, GateX, GateY, GateZ, GateH, GateS, GateSdg, GateCX, GateCZ,
		GateMeasure, GateMeasureX, GatePrepZero, GatePrepPlus:
		return true
	case GateT, GateTdg, GateRz, GateCPhase, GateToffoli, GateCS:
		return false
	default:
		return false
	}
}

// RequiresPi8Ancilla reports whether performing the encoded gate consumes an
// encoded π/8 ancilla (the paper's fault-tolerant T construction, Fig 5a).
func (k GateKind) RequiresPi8Ancilla() bool {
	return k == GateT || k == GateTdg
}

// GateKinds returns every defined gate kind in a stable order.
func GateKinds() []GateKind {
	out := make([]GateKind, numGateKinds)
	for i := range out {
		out[i] = GateKind(i)
	}
	return out
}

// Gate is one operation in a circuit.  Qubits are indices into the owning
// circuit's qubit list; for controlled gates the control(s) come first and
// the target last.  Angle is only meaningful for GateRz and GateCPhase and
// is expressed as the rotation angle in units of π (e.g. 1/8 for π/8... the
// convention used throughout is Angle = θ/π).
type Gate struct {
	Kind   GateKind
	Qubits []int
	Angle  float64
	// Label optionally carries provenance (e.g. "carry", "uma") used by
	// tests and reports; it has no semantic effect.
	Label string
}

// NewGate builds a gate, validating the qubit arity.
func NewGate(kind GateKind, qubits ...int) Gate {
	g := Gate{Kind: kind, Qubits: qubits}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g
}

// NewRz builds a Z rotation by angle θ = anglePi·π.
func NewRz(qubit int, anglePi float64) Gate {
	return Gate{Kind: GateRz, Qubits: []int{qubit}, Angle: anglePi}
}

// NewCPhase builds a controlled phase rotation by angle θ = anglePi·π.
func NewCPhase(control, target int, anglePi float64) Gate {
	return Gate{Kind: GateCPhase, Qubits: []int{control, target}, Angle: anglePi}
}

// Validate reports an error if the gate's qubit list does not match its
// arity or contains duplicates.
func (g Gate) Validate() error {
	if len(g.Qubits) != g.Kind.Arity() {
		return fmt.Errorf("quantum: gate %s expects %d qubits, got %d", g.Kind, g.Kind.Arity(), len(g.Qubits))
	}
	seen := make(map[int]bool, len(g.Qubits))
	for _, q := range g.Qubits {
		if q < 0 {
			return fmt.Errorf("quantum: gate %s has negative qubit index %d", g.Kind, q)
		}
		if seen[q] {
			return fmt.Errorf("quantum: gate %s touches qubit %d twice", g.Kind, q)
		}
		seen[q] = true
	}
	return nil
}

// String renders the gate as e.g. "CX q0,q3" or "Rz(1/16 π) q2".
func (g Gate) String() string {
	qs := ""
	for i, q := range g.Qubits {
		if i > 0 {
			qs += ","
		}
		qs += fmt.Sprintf("q%d", q)
	}
	switch g.Kind {
	case GateRz, GateCPhase:
		return fmt.Sprintf("%s(%.6gπ) %s", g.Kind, g.Angle, qs)
	default:
		return fmt.Sprintf("%s %s", g.Kind, qs)
	}
}
