package quantum

import "fmt"

// DAG is the dataflow graph of a circuit: node i is gate i of the source
// circuit, and an edge u->v means gate v consumes a qubit last touched by
// gate u.  The scheduler and the microarchitecture simulators both execute
// circuits in dataflow order, which is what "running at the speed of data"
// means in the paper.
type DAG struct {
	Circuit *Circuit
	// Succ[i] lists the successors of gate i; Pred[i] its predecessors.
	Succ [][]int
	Pred [][]int
	// InDegree[i] is len(Pred[i]), kept separately so simulations can copy
	// and decrement it cheaply.
	InDegree []int
}

// BuildDAG constructs the dataflow graph of the circuit.  Gates are connected
// through the last writer of each qubit; measurements and preparations take
// part in the dependence chain like any other gate (a preparation after a
// measurement models qubit reuse).
func BuildDAG(c *Circuit) *DAG {
	n := len(c.Gates)
	d := &DAG{
		Circuit:  c,
		Succ:     make([][]int, n),
		Pred:     make([][]int, n),
		InDegree: make([]int, n),
	}
	lastWriter := make([]int, c.NumQubits)
	for i := range lastWriter {
		lastWriter[i] = -1
	}
	for i, g := range c.Gates {
		seen := make(map[int]bool, len(g.Qubits))
		for _, q := range g.Qubits {
			w := lastWriter[q]
			if w >= 0 && !seen[w] {
				d.Succ[w] = append(d.Succ[w], i)
				d.Pred[i] = append(d.Pred[i], w)
				seen[w] = true
			}
		}
		for _, q := range g.Qubits {
			lastWriter[q] = i
		}
		d.InDegree[i] = len(d.Pred[i])
	}
	return d
}

// Roots returns the gates with no predecessors.
func (d *DAG) Roots() []int {
	var roots []int
	for i, deg := range d.InDegree {
		if deg == 0 {
			roots = append(roots, i)
		}
	}
	return roots
}

// TopoOrder returns a topological ordering of the gates.  Because BuildDAG
// only ever adds edges from earlier to later gates, program order is already
// topological; the method exists so callers do not have to rely on that.
func (d *DAG) TopoOrder() ([]int, error) {
	n := len(d.InDegree)
	indeg := make([]int, n)
	copy(indeg, d.InDegree)
	queue := make([]int, 0, n)
	for i, deg := range indeg {
		if deg == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range d.Succ[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("quantum: dependence graph of %q has a cycle", d.Circuit.Name)
	}
	return order, nil
}

// CriticalPath returns, for each gate, the length (in gates) of the longest
// dependence chain ending at that gate, along with the overall maximum.
// This is the circuit depth used by Stats.
func (d *DAG) CriticalPath() (perGate []int, depth int) {
	order, err := d.TopoOrder()
	if err != nil {
		// BuildDAG cannot create cycles; a cycle here is a programming error.
		panic(err)
	}
	perGate = make([]int, len(order))
	for _, u := range order {
		longest := 0
		for _, p := range d.Pred[u] {
			if perGate[p] > longest {
				longest = perGate[p]
			}
		}
		perGate[u] = longest + 1
		if perGate[u] > depth {
			depth = perGate[u]
		}
	}
	return perGate, depth
}

// WeightedCriticalPath returns the longest weighted dependence chain where
// weight(i) is the duration of gate i.  finish[i] is the earliest finish time
// of gate i when every gate starts as soon as its predecessors finish
// (infinite hardware); the returned makespan is the maximum finish time.
// This is the "speed of data" execution time of Section 3.
func (d *DAG) WeightedCriticalPath(weight func(g Gate) float64) (finish []float64, makespan float64) {
	order, err := d.TopoOrder()
	if err != nil {
		panic(err)
	}
	finish = make([]float64, len(order))
	for _, u := range order {
		start := 0.0
		for _, p := range d.Pred[u] {
			if finish[p] > start {
				start = finish[p]
			}
		}
		finish[u] = start + weight(d.Circuit.Gates[u])
		if finish[u] > makespan {
			makespan = finish[u]
		}
	}
	return finish, makespan
}
