package quantum

import "fmt"

// DAG is the dataflow graph of a circuit: node i is gate i of the source
// circuit, and an edge u->v means gate v consumes a qubit last touched by
// gate u.  The scheduler and the microarchitecture simulators both execute
// circuits in dataflow order, which is what "running at the speed of data"
// means in the paper.
type DAG struct {
	Circuit *Circuit
	// Succ[i] lists the successors of gate i; Pred[i] its predecessors.
	Succ [][]int
	Pred [][]int
	// InDegree[i] is len(Pred[i]), kept separately so simulations can copy
	// and decrement it cheaply.
	InDegree []int
}

// BuildDAG constructs the dataflow graph of the circuit.  Gates are connected
// through the last writer of each qubit; measurements and preparations take
// part in the dependence chain like any other gate (a preparation after a
// measurement models qubit reuse).
//
// The builder is allocation-lean — it used to sit on the profile of every
// sweep.  Edges are counted in a first pass (duplicate predecessors deduped
// with a stamp array instead of a per-gate map) and laid out in two shared
// backing arrays in a second, so a build costs a handful of allocations
// regardless of gate count.  Edge order is unchanged: Succ in discovery
// (gate-index) order, Pred in operand order.
func BuildDAG(c *Circuit) *DAG {
	n := len(c.Gates)
	d := &DAG{
		Circuit:  c,
		Succ:     make([][]int, n),
		Pred:     make([][]int, n),
		InDegree: make([]int, n),
	}
	lastWriter := make([]int, c.NumQubits)
	for i := range lastWriter {
		lastWriter[i] = -1
	}
	// Pass 1: count each gate's in- and out-degree.  stamp[w] == i+1 marks
	// writer w as already linked to gate i (a two-qubit gate whose operands
	// share a last writer contributes one edge, not two).
	stamp := make([]int, n)
	outDeg := make([]int, n)
	edges := 0
	for i, g := range c.Gates {
		for _, q := range g.Qubits {
			if w := lastWriter[q]; w >= 0 && stamp[w] != i+1 {
				stamp[w] = i + 1
				d.InDegree[i]++
				outDeg[w]++
				edges++
			}
		}
		for _, q := range g.Qubits {
			lastWriter[q] = i
		}
	}
	// Pass 2: carve per-gate slices out of two shared arrays and fill them
	// in the same discovery order as pass 1.
	succBack := make([]int, 0, edges)
	predBack := make([]int, 0, edges)
	pos := 0
	for i := range d.Succ {
		d.Succ[i] = succBack[pos : pos : pos+outDeg[i]]
		pos += outDeg[i]
	}
	pos = 0
	for i := range d.Pred {
		d.Pred[i] = predBack[pos : pos : pos+d.InDegree[i]]
		pos += d.InDegree[i]
	}
	for i := range lastWriter {
		lastWriter[i] = -1
	}
	for i, g := range c.Gates {
		for _, q := range g.Qubits {
			// A distinct stamp space (offset by n) redoes the dedup.
			if w := lastWriter[q]; w >= 0 && stamp[w] != n+i+1 {
				stamp[w] = n + i + 1
				d.Succ[w] = append(d.Succ[w], i)
				d.Pred[i] = append(d.Pred[i], w)
			}
		}
		for _, q := range g.Qubits {
			lastWriter[q] = i
		}
	}
	return d
}

// DAG returns the circuit's dataflow graph, built once and cached: sweeps
// simulate the same circuit at hundreds of configurations, and the graph
// only depends on the gate sequence.  Call it only after the circuit is
// fully constructed (appending gates afterwards would desynchronise the
// cache); the returned DAG is shared and must be treated as read-only —
// simulators copy InDegree before decrementing it.  Safe for concurrent
// use.
func (c *Circuit) DAG() *DAG {
	c.dagOnce.Do(func() { c.dag = BuildDAG(c) })
	return c.dag
}

// Roots returns the gates with no predecessors.
func (d *DAG) Roots() []int {
	var roots []int
	for i, deg := range d.InDegree {
		if deg == 0 {
			roots = append(roots, i)
		}
	}
	return roots
}

// TopoOrder returns a topological ordering of the gates.  Because BuildDAG
// only ever adds edges from earlier to later gates, program order is already
// topological; the method exists so callers do not have to rely on that.
func (d *DAG) TopoOrder() ([]int, error) {
	n := len(d.InDegree)
	indeg := make([]int, n)
	copy(indeg, d.InDegree)
	queue := make([]int, 0, n)
	for i, deg := range indeg {
		if deg == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range d.Succ[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("quantum: dependence graph of %q has a cycle", d.Circuit.Name)
	}
	return order, nil
}

// CriticalPath returns, for each gate, the length (in gates) of the longest
// dependence chain ending at that gate, along with the overall maximum.
// This is the circuit depth used by Stats.
func (d *DAG) CriticalPath() (perGate []int, depth int) {
	order, err := d.TopoOrder()
	if err != nil {
		// BuildDAG cannot create cycles; a cycle here is a programming error.
		panic(err)
	}
	perGate = make([]int, len(order))
	for _, u := range order {
		longest := 0
		for _, p := range d.Pred[u] {
			if perGate[p] > longest {
				longest = perGate[p]
			}
		}
		perGate[u] = longest + 1
		if perGate[u] > depth {
			depth = perGate[u]
		}
	}
	return perGate, depth
}

// WeightedCriticalPath returns the longest weighted dependence chain where
// weight(i) is the duration of gate i.  finish[i] is the earliest finish time
// of gate i when every gate starts as soon as its predecessors finish
// (infinite hardware); the returned makespan is the maximum finish time.
// This is the "speed of data" execution time of Section 3.
func (d *DAG) WeightedCriticalPath(weight func(g Gate) float64) (finish []float64, makespan float64) {
	order, err := d.TopoOrder()
	if err != nil {
		panic(err)
	}
	finish = make([]float64, len(order))
	for _, u := range order {
		start := 0.0
		for _, p := range d.Pred[u] {
			if finish[p] > start {
				start = finish[p]
			}
		}
		finish[u] = start + weight(d.Circuit.Gates[u])
		if finish[u] > makespan {
			makespan = finish[u]
		}
	}
	return finish, makespan
}
