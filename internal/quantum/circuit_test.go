package quantum

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func buildSampleCircuit() *Circuit {
	// The Figure 1 example: H on three qubits, CX Q0,Q1; T Q1; CX Q0,Q1; T Q1.
	c := NewCircuit("figure1", 3)
	c.Add(GateH, 0).Add(GateH, 1).Add(GateH, 2)
	c.Add(GateCX, 0, 1)
	c.Add(GateT, 1)
	c.Add(GateCX, 0, 1)
	c.Add(GateT, 1)
	return c
}

func TestCircuitAppendAndValidate(t *testing.T) {
	c := buildSampleCircuit()
	if c.Len() != 7 {
		t.Fatalf("Len() = %d, want 7", c.Len())
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate() = %v", err)
	}
}

func TestCircuitAppendPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("appending a gate on a qubit outside the circuit should panic")
		}
	}()
	NewCircuit("bad", 2).Add(GateH, 5)
}

func TestNewCircuitPanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative qubit count should panic")
		}
	}()
	NewCircuit("bad", -1)
}

func TestComputeStats(t *testing.T) {
	c := buildSampleCircuit()
	s := c.ComputeStats()
	if s.TotalGates != 7 {
		t.Errorf("TotalGates = %d, want 7", s.TotalGates)
	}
	if s.CountByKind[GateH] != 3 || s.CountByKind[GateCX] != 2 || s.CountByKind[GateT] != 2 {
		t.Errorf("CountByKind wrong: %v", s.CountByKind)
	}
	if s.Pi8Gates != 2 {
		t.Errorf("Pi8Gates = %d, want 2", s.Pi8Gates)
	}
	if s.NonTransversal != 2 || s.Transversal != 5 {
		t.Errorf("transversal split = %d/%d, want 5/2", s.Transversal, s.NonTransversal)
	}
	if s.TwoQubitGates != 2 {
		t.Errorf("TwoQubitGates = %d, want 2", s.TwoQubitGates)
	}
	// Depth: q1 participates in H, CX, T, CX, T -> depth 5.
	if s.Depth != 5 {
		t.Errorf("Depth = %d, want 5", s.Depth)
	}
	frac := s.NonTransversalFraction()
	if frac < 0.28 || frac > 0.29 {
		t.Errorf("NonTransversalFraction = %v, want 2/7", frac)
	}
}

func TestNonTransversalFractionEmpty(t *testing.T) {
	var s Stats
	if s.NonTransversalFraction() != 0 {
		t.Error("empty stats should have zero non-transversal fraction")
	}
}

func TestStatsKindsSorted(t *testing.T) {
	c := buildSampleCircuit()
	kinds := c.ComputeStats().KindsSorted()
	for i := 1; i < len(kinds); i++ {
		if kinds[i-1] >= kinds[i] {
			t.Fatalf("kinds not sorted: %v", kinds)
		}
	}
	if len(kinds) != 3 {
		t.Errorf("expected 3 distinct kinds, got %d", len(kinds))
	}
}

func TestConcatOffsets(t *testing.T) {
	a := NewCircuit("a", 4)
	a.Add(GateH, 0)
	b := NewCircuit("b", 2)
	b.Add(GateCX, 0, 1)
	a.Concat(b, 2)
	if a.Len() != 2 {
		t.Fatalf("Len = %d, want 2", a.Len())
	}
	g := a.Gates[1]
	if g.Qubits[0] != 2 || g.Qubits[1] != 3 {
		t.Errorf("Concat did not offset qubits: %v", g.Qubits)
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := buildSampleCircuit()
	c.DataQubits = []int{0, 1}
	clone := c.Clone()
	clone.Gates[0].Qubits[0] = 2
	clone.DataQubits[0] = 9
	if c.Gates[0].Qubits[0] != 0 {
		t.Error("Clone shares gate qubit slices with the original")
	}
	if c.DataQubits[0] != 0 {
		t.Error("Clone shares DataQubits with the original")
	}
	if clone.Len() != c.Len() || clone.NumQubits != c.NumQubits {
		t.Error("Clone lost gates or qubits")
	}
}

func TestAddRzAndCPhase(t *testing.T) {
	c := NewCircuit("rot", 2)
	c.AddRz(0, 0.125)
	c.AddCPhase(0, 1, 0.25)
	if c.Gates[0].Kind != GateRz || c.Gates[0].Angle != 0.125 {
		t.Error("AddRz wrong")
	}
	if c.Gates[1].Kind != GateCPhase || c.Gates[1].Angle != 0.25 {
		t.Error("AddCPhase wrong")
	}
}

// randomCircuit builds a random but valid circuit for property tests.
func randomCircuit(r *rand.Rand, maxQubits, maxGates int) *Circuit {
	n := r.Intn(maxQubits) + 2
	c := NewCircuit("random", n)
	kinds := []GateKind{GateH, GateX, GateZ, GateS, GateT, GateCX, GateCZ, GateMeasure, GatePrepZero}
	for i := 0; i < r.Intn(maxGates)+1; i++ {
		k := kinds[r.Intn(len(kinds))]
		if k.Arity() == 1 {
			c.Add(k, r.Intn(n))
		} else {
			a := r.Intn(n)
			b := r.Intn(n)
			for b == a {
				b = r.Intn(n)
			}
			c.Add(k, a, b)
		}
	}
	return c
}

// Property: circuit depth never exceeds gate count and per-kind counts sum to
// the total.
func TestStatsInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomCircuit(r, 8, 60)
		s := c.ComputeStats()
		sum := 0
		for _, n := range s.CountByKind {
			sum += n
		}
		if sum != s.TotalGates {
			return false
		}
		if s.Depth > s.TotalGates {
			return false
		}
		if s.Transversal+s.NonTransversal != s.TotalGates {
			return false
		}
		return s.Pi8Gates <= s.NonTransversal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
