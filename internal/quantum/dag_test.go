package quantum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuildDAGFigure1(t *testing.T) {
	c := buildSampleCircuit()
	d := BuildDAG(c)
	// Gate indices: 0:H q0, 1:H q1, 2:H q2, 3:CX q0q1, 4:T q1, 5:CX q0q1, 6:T q1.
	roots := d.Roots()
	if len(roots) != 3 {
		t.Fatalf("roots = %v, want the three H gates", roots)
	}
	// CX at 3 depends on both H q0 (0) and H q1 (1).
	if len(d.Pred[3]) != 2 {
		t.Errorf("CX preds = %v, want 2 predecessors", d.Pred[3])
	}
	// T at 4 depends only on the CX.
	if len(d.Pred[4]) != 1 || d.Pred[4][0] != 3 {
		t.Errorf("T preds = %v, want [3]", d.Pred[4])
	}
	// H q2 has no successors.
	if len(d.Succ[2]) != 0 {
		t.Errorf("H q2 successors = %v, want none", d.Succ[2])
	}
}

func TestTopoOrderIsValid(t *testing.T) {
	c := buildSampleCircuit()
	d := BuildDAG(c)
	order, err := d.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, len(order))
	for i, g := range order {
		pos[g] = i
	}
	for u, succs := range d.Succ {
		for _, v := range succs {
			if pos[u] >= pos[v] {
				t.Fatalf("topological order violated: %d before %d", u, v)
			}
		}
	}
}

func TestCriticalPathDepthMatchesStats(t *testing.T) {
	c := buildSampleCircuit()
	d := BuildDAG(c)
	_, depth := d.CriticalPath()
	if depth != c.ComputeStats().Depth {
		t.Errorf("DAG depth = %d, stats depth = %d", depth, c.ComputeStats().Depth)
	}
}

func TestWeightedCriticalPath(t *testing.T) {
	c := buildSampleCircuit()
	d := BuildDAG(c)
	// Weight every gate 1: makespan equals depth.
	_, makespan := d.WeightedCriticalPath(func(g Gate) float64 { return 1 })
	if makespan != 5 {
		t.Errorf("unit-weight makespan = %v, want 5", makespan)
	}
	// Two-qubit gates 10, single-qubit 1: the q1 chain is H(1) CX(10) T(1) CX(10) T(1) = 23.
	finish, makespan := d.WeightedCriticalPath(func(g Gate) float64 {
		if g.Kind.Arity() >= 2 {
			return 10
		}
		return 1
	})
	if makespan != 23 {
		t.Errorf("weighted makespan = %v, want 23", makespan)
	}
	if len(finish) != c.Len() {
		t.Errorf("finish has %d entries, want %d", len(finish), c.Len())
	}
	for i, f := range finish {
		if f <= 0 {
			t.Errorf("gate %d finish time %v not positive", i, f)
		}
	}
}

func TestDAGEmptyCircuit(t *testing.T) {
	c := NewCircuit("empty", 3)
	d := BuildDAG(c)
	if len(d.Roots()) != 0 {
		t.Error("empty circuit should have no roots")
	}
	order, err := d.TopoOrder()
	if err != nil || len(order) != 0 {
		t.Error("empty circuit topo order should be empty")
	}
	_, depth := d.CriticalPath()
	if depth != 0 {
		t.Error("empty circuit depth should be 0")
	}
}

// Property: for random circuits, (1) the weighted makespan with unit weights
// equals the depth, (2) the makespan is at least the largest single weight
// and at most the sum of all weights.
func TestWeightedCriticalPathBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomCircuit(r, 6, 50)
		d := BuildDAG(c)
		_, unitMakespan := d.WeightedCriticalPath(func(Gate) float64 { return 1 })
		_, depth := d.CriticalPath()
		if int(unitMakespan) != depth {
			return false
		}
		weight := func(g Gate) float64 {
			if g.Kind.Arity() >= 2 {
				return 10
			}
			return 1
		}
		_, makespan := d.WeightedCriticalPath(weight)
		sum := 0.0
		maxW := 0.0
		for _, g := range c.Gates {
			w := weight(g)
			sum += w
			if w > maxW {
				maxW = w
			}
		}
		return makespan >= maxW-1e-9 && makespan <= sum+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: every non-root gate has at least one predecessor that shares a
// qubit with it.
func TestDAGEdgesShareQubitsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomCircuit(r, 6, 40)
		d := BuildDAG(c)
		for i := range c.Gates {
			for _, p := range d.Pred[i] {
				if !gatesShareQubit(c.Gates[i], c.Gates[p]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func gatesShareQubit(a, b Gate) bool {
	for _, qa := range a.Qubits {
		for _, qb := range b.Qubits {
			if qa == qb {
				return true
			}
		}
	}
	return false
}

// Property: serial circuits (every gate on the same qubit) have depth equal
// to gate count and weighted makespan equal to the weight sum.
func TestSerialCircuitProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%40) + 1
		c := NewCircuit("serial", 1)
		for i := 0; i < n; i++ {
			c.Add(GateT, 0)
		}
		d := BuildDAG(c)
		_, depth := d.CriticalPath()
		_, makespan := d.WeightedCriticalPath(func(Gate) float64 { return 2.5 })
		return depth == n && math.Abs(makespan-2.5*float64(n)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
