package quantum

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Circuit is an ordered list of gates over a fixed set of qubits.  The same
// structure is used both for logical circuits (qubits are encoded blocks) and
// physical circuits (qubits are ions); the interpretation is up to the
// consumer.
type Circuit struct {
	// Name identifies the circuit in reports (e.g. "32-bit QCLA").
	Name string
	// NumQubits is the number of qubits the circuit acts on.
	NumQubits int
	// Gates is the gate sequence in program order.
	Gates []Gate
	// DataQubits optionally lists which qubits are long-lived data (or data
	// ancillae) as opposed to scratch; nil means all qubits are data.
	DataQubits []int

	// dag memoises the dataflow graph (see DAG); it is built on first use
	// and assumes the gate sequence is final by then.
	dagOnce sync.Once
	dag     *DAG
}

// NewCircuit returns an empty circuit over n qubits.
func NewCircuit(name string, n int) *Circuit {
	if n < 0 {
		panic(fmt.Sprintf("quantum: negative qubit count %d", n))
	}
	return &Circuit{Name: name, NumQubits: n}
}

// Append validates and appends gates to the circuit.  It returns the circuit
// to allow chaining.
func (c *Circuit) Append(gates ...Gate) *Circuit {
	for _, g := range gates {
		if err := g.Validate(); err != nil {
			panic(err)
		}
		for _, q := range g.Qubits {
			if q >= c.NumQubits {
				panic(fmt.Sprintf("quantum: circuit %q has %d qubits but gate %s references q%d",
					c.Name, c.NumQubits, g, q))
			}
		}
		c.Gates = append(c.Gates, g)
	}
	return c
}

// Add builds a gate from kind and qubits and appends it.
func (c *Circuit) Add(kind GateKind, qubits ...int) *Circuit {
	return c.Append(Gate{Kind: kind, Qubits: qubits})
}

// AddRz appends a Z rotation by angle θ = anglePi·π on the given qubit.
func (c *Circuit) AddRz(qubit int, anglePi float64) *Circuit {
	return c.Append(NewRz(qubit, anglePi))
}

// AddCPhase appends a controlled phase rotation by θ = anglePi·π.
func (c *Circuit) AddCPhase(control, target int, anglePi float64) *Circuit {
	return c.Append(NewCPhase(control, target, anglePi))
}

// Len returns the number of gates in the circuit.
func (c *Circuit) Len() int { return len(c.Gates) }

// Fingerprint returns a stable structural hash of the circuit (name, qubit
// count and the full gate sequence), suitable for keying experiment caches:
// two circuits share a fingerprint exactly when every gate matches.
func (c *Circuit) Fingerprint() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|", c.Name, c.NumQubits, len(c.Gates))
	for _, g := range c.Gates {
		fmt.Fprintf(h, "%d%v%g;", int(g.Kind), g.Qubits, g.Angle)
	}
	return fmt.Sprintf("%s/%d/%dq/%x", c.Name, len(c.Gates), c.NumQubits, h.Sum64())
}

// Validate checks every gate references qubits inside the circuit.
func (c *Circuit) Validate() error {
	for i, g := range c.Gates {
		if err := g.Validate(); err != nil {
			return fmt.Errorf("gate %d: %w", i, err)
		}
		for _, q := range g.Qubits {
			if q >= c.NumQubits {
				return fmt.Errorf("gate %d (%s): qubit %d out of range (circuit has %d)", i, g, q, c.NumQubits)
			}
		}
	}
	return nil
}

// Stats summarises a circuit's composition, used by the characterisation
// tables in Section 3.
type Stats struct {
	NumQubits int
	// TotalGates counts every gate, including preparations and measurements.
	TotalGates int
	// CountByKind is the per-kind gate count.
	CountByKind map[GateKind]int
	// Transversal and NonTransversal split gates by the [[7,1,3]]
	// transversality classification of Section 2.1.
	Transversal    int
	NonTransversal int
	// Pi8Gates counts gates that consume an encoded π/8 ancilla (T/Tdg).
	Pi8Gates int
	// TwoQubitGates counts gates with arity >= 2.
	TwoQubitGates int
	// Depth is the dataflow depth (longest chain of dependent gates).
	Depth int
}

// NonTransversalFraction is the fraction of gates that are non-transversal,
// reported in Section 3.3 (40.5% / 41.0% / 46.9% for the three benchmarks).
func (s Stats) NonTransversalFraction() float64 {
	if s.TotalGates == 0 {
		return 0
	}
	return float64(s.NonTransversal) / float64(s.TotalGates)
}

// ComputeStats analyses the circuit.
func (c *Circuit) ComputeStats() Stats {
	s := Stats{
		NumQubits:   c.NumQubits,
		TotalGates:  len(c.Gates),
		CountByKind: make(map[GateKind]int),
	}
	lastLayer := make([]int, c.NumQubits)
	for _, g := range c.Gates {
		s.CountByKind[g.Kind]++
		if g.Kind.TransversalOnSteane() {
			s.Transversal++
		} else {
			s.NonTransversal++
		}
		if g.Kind.RequiresPi8Ancilla() {
			s.Pi8Gates++
		}
		if g.Kind.Arity() >= 2 {
			s.TwoQubitGates++
		}
		layer := 0
		for _, q := range g.Qubits {
			if lastLayer[q] > layer {
				layer = lastLayer[q]
			}
		}
		layer++
		for _, q := range g.Qubits {
			lastLayer[q] = layer
		}
		if layer > s.Depth {
			s.Depth = layer
		}
	}
	return s
}

// KindsSorted returns the gate kinds present in the stats in a stable order,
// convenient for deterministic report output.
func (s Stats) KindsSorted() []GateKind {
	kinds := make([]GateKind, 0, len(s.CountByKind))
	for k := range s.CountByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds
}

// Concat appends a copy of other's gates to c, offsetting other's qubit
// indices by qubitOffset.  The circuit must already have enough qubits.
func (c *Circuit) Concat(other *Circuit, qubitOffset int) *Circuit {
	for _, g := range other.Gates {
		ng := Gate{Kind: g.Kind, Angle: g.Angle, Label: g.Label}
		ng.Qubits = make([]int, len(g.Qubits))
		for i, q := range g.Qubits {
			ng.Qubits[i] = q + qubitOffset
		}
		c.Append(ng)
	}
	return c
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{Name: c.Name, NumQubits: c.NumQubits}
	out.Gates = make([]Gate, len(c.Gates))
	for i, g := range c.Gates {
		q := make([]int, len(g.Qubits))
		copy(q, g.Qubits)
		out.Gates[i] = Gate{Kind: g.Kind, Qubits: q, Angle: g.Angle, Label: g.Label}
	}
	if c.DataQubits != nil {
		out.DataQubits = append([]int(nil), c.DataQubits...)
	}
	return out
}
