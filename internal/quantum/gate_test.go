package quantum

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestGateArity(t *testing.T) {
	oneQubit := []GateKind{GateI, GateX, GateY, GateZ, GateH, GateS, GateSdg,
		GateT, GateTdg, GateRz, GateMeasure, GateMeasureX, GatePrepZero, GatePrepPlus}
	for _, k := range oneQubit {
		if k.Arity() != 1 {
			t.Errorf("%s arity = %d, want 1", k, k.Arity())
		}
	}
	twoQubit := []GateKind{GateCX, GateCZ, GateCS, GateCPhase}
	for _, k := range twoQubit {
		if k.Arity() != 2 {
			t.Errorf("%s arity = %d, want 2", k, k.Arity())
		}
	}
	if GateToffoli.Arity() != 3 {
		t.Errorf("Toffoli arity = %d, want 3", GateToffoli.Arity())
	}
}

func TestTransversalClassification(t *testing.T) {
	// The paper: CX, X, Y, Z, Phase (S), Hadamard are transversal on
	// [[7,1,3]]; the π/8 gate is not (Sections 2.1, 2.4).
	transversal := []GateKind{GateX, GateY, GateZ, GateH, GateS, GateCX, GateCZ}
	for _, k := range transversal {
		if !k.TransversalOnSteane() {
			t.Errorf("%s should be transversal on the Steane code", k)
		}
	}
	nonTransversal := []GateKind{GateT, GateTdg, GateRz, GateCPhase, GateToffoli, GateCS}
	for _, k := range nonTransversal {
		if k.TransversalOnSteane() {
			t.Errorf("%s should be non-transversal on the Steane code", k)
		}
	}
}

func TestRequiresPi8Ancilla(t *testing.T) {
	if !GateT.RequiresPi8Ancilla() || !GateTdg.RequiresPi8Ancilla() {
		t.Error("T and Tdg must consume a π/8 ancilla")
	}
	for _, k := range []GateKind{GateH, GateCX, GateRz, GateMeasure} {
		if k.RequiresPi8Ancilla() {
			t.Errorf("%s should not consume a π/8 ancilla", k)
		}
	}
}

func TestMeasurementPreparationPredicates(t *testing.T) {
	if !GateMeasure.IsMeasurement() || !GateMeasureX.IsMeasurement() {
		t.Error("measurement predicates wrong")
	}
	if GateH.IsMeasurement() {
		t.Error("H is not a measurement")
	}
	if !GatePrepZero.IsPreparation() || !GatePrepPlus.IsPreparation() {
		t.Error("preparation predicates wrong")
	}
	if GateMeasure.IsPreparation() {
		t.Error("measurement is not a preparation")
	}
}

func TestCliffordPredicate(t *testing.T) {
	for _, k := range []GateKind{GateX, GateH, GateS, GateCX, GateCZ} {
		if !k.IsClifford() {
			t.Errorf("%s should be Clifford", k)
		}
	}
	for _, k := range []GateKind{GateT, GateRz, GateToffoli, GateCPhase} {
		if k.IsClifford() {
			t.Errorf("%s should not be Clifford", k)
		}
	}
}

func TestGateKindString(t *testing.T) {
	if GateCX.String() != "CX" || GateT.String() != "T" || GatePrepZero.String() != "Prep0" {
		t.Error("gate names wrong")
	}
	if !strings.HasPrefix(GateKind(250).String(), "gate(") {
		t.Error("unknown gate kind string")
	}
}

func TestGateValidate(t *testing.T) {
	if err := NewGate(GateCX, 0, 1).Validate(); err != nil {
		t.Errorf("valid CX rejected: %v", err)
	}
	bad := Gate{Kind: GateCX, Qubits: []int{0}}
	if err := bad.Validate(); err == nil {
		t.Error("CX with one qubit should be invalid")
	}
	dup := Gate{Kind: GateCX, Qubits: []int{2, 2}}
	if err := dup.Validate(); err == nil {
		t.Error("CX with duplicate qubits should be invalid")
	}
	neg := Gate{Kind: GateH, Qubits: []int{-1}}
	if err := neg.Validate(); err == nil {
		t.Error("negative qubit index should be invalid")
	}
}

func TestNewGatePanicsOnBadArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGate with wrong arity should panic")
		}
	}()
	NewGate(GateCX, 0)
}

func TestGateString(t *testing.T) {
	g := NewGate(GateCX, 0, 3)
	if got := g.String(); got != "CX q0,q3" {
		t.Errorf("String() = %q", got)
	}
	rz := NewRz(2, 1.0/16)
	if got := rz.String(); !strings.Contains(got, "Rz(") || !strings.Contains(got, "q2") {
		t.Errorf("Rz String() = %q", got)
	}
}

func TestGateKindsComplete(t *testing.T) {
	kinds := GateKinds()
	if len(kinds) != int(numGateKinds) {
		t.Fatalf("GateKinds() returned %d kinds, want %d", len(kinds), numGateKinds)
	}
	for i, k := range kinds {
		if int(k) != i {
			t.Errorf("GateKinds()[%d] = %v", i, k)
		}
	}
}

// Property: every π/8-ancilla-consuming gate is non-transversal, and every
// Clifford gate is transversal on the Steane code.
func TestClassificationConsistencyProperty(t *testing.T) {
	f := func(raw uint8) bool {
		k := GateKind(int(raw) % int(numGateKinds))
		if k.RequiresPi8Ancilla() && k.TransversalOnSteane() {
			return false
		}
		if k.IsClifford() && !k.TransversalOnSteane() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
