package factory

import (
	"math"
	"testing"
	"testing/quick"

	"speedofdata/internal/iontrap"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestSimpleZeroFactoryMatchesPaper(t *testing.T) {
	f := SimpleZeroFactory{Tech: iontrap.Default()}
	if got := f.LatencyUs(); got != 323 {
		t.Errorf("simple factory latency = %v µs, want 323", got)
	}
	approx(t, "simple factory throughput", f.ThroughputPerMs(), 3.1, 0.05)
	if f.Area() != 90 {
		t.Errorf("simple factory area = %v, want 90 macroblocks", f.Area())
	}
	// Replication: 10.5/ms needs about 10.5/3.1 * 90 ≈ 305 macroblocks.
	approx(t, "simple factory area for 10.5/ms", float64(f.AreaForBandwidth(10.5)), 305, 5)
	if f.AreaForBandwidth(0) != 0 {
		t.Error("zero bandwidth needs zero area")
	}
}

func TestZeroFactoryUnitLatenciesMatchTable5(t *testing.T) {
	tech := iontrap.Default()
	want := map[string]iontrap.Microseconds{
		"Zero Prep":      73,
		"CX Stage":       95,
		"Cat State Prep": 62,
		"Verification":   82,
		"B/P Correction": 138,
	}
	units := ZeroFactoryUnits()
	if len(units) != 5 {
		t.Fatalf("expected 5 zero-factory units, got %d", len(units))
	}
	for _, u := range units {
		if err := u.Validate(); err != nil {
			t.Errorf("%s: %v", u.Name, err)
		}
		if got := u.LatencyUs(tech); got != want[u.Name] {
			t.Errorf("%s latency = %v µs, want %v (Table 5)", u.Name, got, want[u.Name])
		}
	}
}

func TestZeroFactoryUnitBandwidthsMatchTable5(t *testing.T) {
	tech := iontrap.Default()
	cases := []struct {
		name    string
		in, out float64
	}{
		{"Zero Prep", 13.7, 13.7},
		{"CX Stage", 221.1, 221.1},
		{"Cat State Prep", 96.8, 96.8},
		{"Verification", 122.0, 85.2},
		{"B/P Correction", 152.2, 50.7},
	}
	for _, c := range cases {
		u := zeroUnitByName(c.name)
		approx(t, c.name+" in BW", u.InBandwidth(tech), c.in, 0.15)
		approx(t, c.name+" out BW", u.OutBandwidth(tech), c.out, 0.15)
	}
}

func TestZeroFactoryUnitAreasMatchTable5(t *testing.T) {
	want := map[string]iontrap.Area{
		"Zero Prep":      1,
		"CX Stage":       28,
		"Cat State Prep": 6,
		"Verification":   10,
		"B/P Correction": 21,
	}
	for name, area := range want {
		if got := zeroUnitByName(name).Area; got != area {
			t.Errorf("%s area = %v, want %v (Table 5)", name, got, area)
		}
	}
}

func TestPipelinedZeroFactoryMatchesTable6(t *testing.T) {
	d := PipelinedZeroFactory(iontrap.Default())
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Table 6 unit counts.
	wantCounts := map[string]int{
		"Zero Prep":      24,
		"CX Stage":       1,
		"Cat State Prep": 1,
		"Verification":   3,
		"B/P Correction": 2,
	}
	for _, s := range d.Stages {
		for _, a := range s.Allocations {
			if want, ok := wantCounts[a.Unit.Name]; ok {
				if a.Count != want {
					t.Errorf("%s count = %d, want %d (Table 6)", a.Unit.Name, a.Count, want)
				}
				delete(wantCounts, a.Unit.Name)
			}
		}
	}
	for name := range wantCounts {
		t.Errorf("unit %s missing from the design", name)
	}
	// Table 6 stage heights and areas.
	wantHeights := []int{24, 6, 30, 42}
	wantAreas := []float64{24, 34, 30, 42}
	for i, s := range d.Stages {
		if s.Height() != wantHeights[i] {
			t.Errorf("stage %q height = %d, want %d", s.Name, s.Height(), wantHeights[i])
		}
		if math.Abs(float64(s.Area())-wantAreas[i]) > 1e-9 {
			t.Errorf("stage %q area = %v, want %v", s.Name, s.Area(), wantAreas[i])
		}
	}
	// Section 4.4.1 totals: 168 crossbar + 130 functional = 298 macroblocks,
	// 10.5 encoded ancillae / ms.
	if got := float64(d.CrossbarArea()); got != 168 {
		t.Errorf("crossbar area = %v, want 168", got)
	}
	if got := float64(d.FunctionalArea()); got != 130 {
		t.Errorf("functional area = %v, want 130", got)
	}
	if got := float64(d.TotalArea()); got != 298 {
		t.Errorf("total area = %v, want 298", got)
	}
	approx(t, "pipelined zero factory throughput", d.ThroughputPerMs, 10.5, 0.1)
}

func TestPi8FactoryUnitLatenciesMatchTable7(t *testing.T) {
	tech := iontrap.Default()
	want := map[string]iontrap.Microseconds{
		"Cat State Prepare":        218,
		"Transversal CX/CS/CZ/pi8": 53,
		"Decode (plus Store)":      218,
		"H/M/Transversal Z":        74,
	}
	units := Pi8FactoryUnits()
	if len(units) != 4 {
		t.Fatalf("expected 4 pi/8-factory units, got %d", len(units))
	}
	for _, u := range units {
		if err := u.Validate(); err != nil {
			t.Errorf("%s: %v", u.Name, err)
		}
		if got := u.LatencyUs(tech); got != want[u.Name] {
			t.Errorf("%s latency = %v µs, want %v (Table 7)", u.Name, got, want[u.Name])
		}
	}
}

func TestPi8FactoryUnitBandwidthsMatchTable7(t *testing.T) {
	tech := iontrap.Default()
	cases := []struct {
		name    string
		in, out float64
	}{
		{"Cat State Prepare", 32.1, 32.1},
		{"Transversal CX/CS/CZ/pi8", 264.2, 264.2},
		{"Decode (plus Store)", 64.2, 36.7},
		{"H/M/Transversal Z", 108.1, 94.6},
	}
	for _, c := range cases {
		u := pi8UnitByName(c.name)
		approx(t, c.name+" in BW", u.InBandwidth(tech), c.in, 0.15)
		approx(t, c.name+" out BW", u.OutBandwidth(tech), c.out, 0.15)
	}
}

func TestPi8FactoryMatchesTable8(t *testing.T) {
	d := Pi8Factory(iontrap.Default())
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	wantCounts := map[string]int{
		"Cat State Prepare":        4,
		"Transversal CX/CS/CZ/pi8": 1,
		"Decode (plus Store)":      4,
		"H/M/Transversal Z":        2,
	}
	for _, s := range d.Stages {
		for _, a := range s.Allocations {
			if want, ok := wantCounts[a.Unit.Name]; ok {
				if a.Count != want {
					t.Errorf("%s count = %d, want %d (Table 8)", a.Unit.Name, a.Count, want)
				}
				delete(wantCounts, a.Unit.Name)
			}
		}
	}
	for name := range wantCounts {
		t.Errorf("unit %s missing from the design", name)
	}
	wantHeights := []int{24, 7, 52, 16}
	wantAreas := []float64{48, 7, 76, 16}
	for i, s := range d.Stages {
		if s.Height() != wantHeights[i] {
			t.Errorf("stage %q height = %d, want %d", s.Name, s.Height(), wantHeights[i])
		}
		if math.Abs(float64(s.Area())-wantAreas[i]) > 1e-9 {
			t.Errorf("stage %q area = %v, want %v", s.Name, s.Area(), wantAreas[i])
		}
	}
	// Section 4.4.2 totals: 256 crossbar + 147 functional = 403 macroblocks,
	// 18.3 encoded π/8 ancillae / ms.
	if got := float64(d.CrossbarArea()); got != 256 {
		t.Errorf("crossbar area = %v, want 256", got)
	}
	if got := float64(d.FunctionalArea()); got != 147 {
		t.Errorf("functional area = %v, want 147", got)
	}
	if got := float64(d.TotalArea()); got != 403 {
		t.Errorf("total area = %v, want 403", got)
	}
	approx(t, "pi/8 factory throughput", d.ThroughputPerMs, 18.3, 0.1)
}

func TestAreaForBandwidthScaling(t *testing.T) {
	d := PipelinedZeroFactory(iontrap.Default())
	// Table 9: 34.8 zero ancillae/ms requires ≈ 987 macroblocks of QEC
	// factories.
	approx(t, "QRCA QEC factory area", float64(d.AreaForBandwidth(34.8)), 987, 12)
	// 306.1/ms (QCLA) requires ≈ 8682 macroblocks.
	approx(t, "QCLA QEC factory area", float64(d.AreaForBandwidth(306.1)), 8682, 110)
	if d.CountForBandwidth(34.8) != 4 {
		t.Errorf("whole factories for 34.8/ms = %d, want 4", d.CountForBandwidth(34.8))
	}
	if d.CountForBandwidth(0) != 0 {
		t.Error("zero bandwidth needs zero factories")
	}
}

func TestPi8SupplyAreaMatchesTable9(t *testing.T) {
	tech := iontrap.Default()
	zero := PipelinedZeroFactory(tech)
	pi8 := Pi8Factory(tech)
	// Table 9 last column: QRCA needs 7.0 π/8 ancillae/ms → ≈ 355
	// macroblocks including the zero factories feeding the encoders.
	approx(t, "QRCA pi/8 supply area", float64(Pi8SupplyArea(pi8, zero, 7.0)), 354.7, 8)
	// QCLA at 62.7/ms → ≈ 3154 macroblocks.
	approx(t, "QCLA pi/8 supply area", float64(Pi8SupplyArea(pi8, zero, 62.7)), 3154, 60)
	// QFT at 8.6/ms → ≈ 434 macroblocks.
	approx(t, "QFT pi/8 supply area", float64(Pi8SupplyArea(pi8, zero, 8.6)), 433.7, 10)
}

func TestPipelinedVsSimpleBandwidthPerArea(t *testing.T) {
	// Section 5.3: the simple and pipelined factories produce virtually the
	// same bandwidth per unit area (the pipelined one wins on concentrated
	// ports, not density).
	tech := iontrap.Default()
	simple := SimpleZeroFactory{Tech: tech}
	pipe := PipelinedZeroFactory(tech)
	simpleDensity := simple.ThroughputPerMs() / float64(simple.Area())
	pipeDensity := pipe.ThroughputPerMs / float64(pipe.TotalArea())
	ratio := pipeDensity / simpleDensity
	if ratio < 0.8 || ratio > 1.3 {
		t.Errorf("bandwidth-per-area ratio pipelined/simple = %.2f, expected ≈ 1", ratio)
	}
}

func TestDesignValidateCatchesErrors(t *testing.T) {
	good := PipelinedZeroFactory(iontrap.Default())
	bad := good
	bad.Stages = nil
	if err := bad.Validate(); err == nil {
		t.Error("design without stages should be invalid")
	}
	bad = good
	bad.CrossbarColumns = []int{1}
	if err := bad.Validate(); err == nil {
		t.Error("wrong crossbar count should be invalid")
	}
	bad = good
	bad.ThroughputPerMs = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero throughput should be invalid")
	}
	u := zeroUnitByName("Zero Prep")
	u.InternalStages = 0
	if err := u.Validate(); err == nil {
		t.Error("zero internal stages should be invalid")
	}
	u = zeroUnitByName("Zero Prep")
	u.SuccessRate = 2
	if err := u.Validate(); err == nil {
		t.Error("success rate above 1 should be invalid")
	}
}

func TestUnitsFor(t *testing.T) {
	if unitsFor(10, 5) != 2 {
		t.Error("exact division")
	}
	if unitsFor(10.1, 5) != 3 {
		t.Error("rounding up")
	}
	if unitsFor(10, 0) != 0 {
		t.Error("zero capacity")
	}
	if unitsFor(0, 5) != 0 {
		t.Error("zero demand")
	}
}

// Property: factory area scales linearly with requested bandwidth and the
// integer count is always enough.
func TestAreaForBandwidthProperty(t *testing.T) {
	d := PipelinedZeroFactory(iontrap.Default())
	f := func(raw uint16) bool {
		bw := float64(raw%2000) / 7.0
		area := float64(d.AreaForBandwidth(bw))
		area2 := float64(d.AreaForBandwidth(2 * bw))
		if math.Abs(area2-2*area) > 1e-6 {
			return false
		}
		count := d.CountForBandwidth(bw)
		return float64(count)*d.ThroughputPerMs >= bw-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: under any valid technology scaling, the pipelined factory's
// throughput stays positive and its area stays at the Table 6 value (area is
// latency independent).
func TestFactoryUnderScaledTechnologyProperty(t *testing.T) {
	f := func(scaleRaw uint8) bool {
		scale := float64(scaleRaw%20+1) / 5.0
		tech := iontrap.Default()
		for op, l := range tech.Latency {
			tech.Latency[op] = iontrap.Microseconds(float64(l) * scale)
		}
		d := PipelinedZeroFactory(tech)
		if d.ThroughputPerMs <= 0 {
			return false
		}
		return d.TotalArea() == 298
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
