package factory

import (
	"fmt"

	"speedofdata/internal/iontrap"
	"speedofdata/internal/sim"
)

// This file is the event-driven view of a pipelined factory Design: every
// functional-unit allocation becomes a stage process on the discrete-event
// kernel, emitting completions at its OpsPerMs cadence (success-rate
// discards scale the output flow), consuming physical qubits from the
// previous stage's crossbar buffer and depositing into its own.  Where the
// bandwidth-matching arithmetic of Section 4.4 sizes the pipeline in the
// steady state, the simulation exposes the transient behaviour: pipeline
// fill, stages starving on undersized neighbours, and back-pressure through
// finite crossbar buffers.

// StageStats reports one functional-unit group's behaviour during an
// event-driven factory run.
type StageStats struct {
	// Stage and Unit name the pipeline stage and the functional unit.
	Stage string
	Unit  string
	// Count is the unit replica count (the Table 6 / Table 8 allocation).
	Count int
	// Ops is the number of completed operations across the replicas.
	Ops int
	// StarveMs is time spent waiting on input qubits from the upstream
	// buffer; StallMs is time blocked on a full downstream buffer.
	StarveMs float64
	StallMs  float64
	// BusyFrac is the fraction of the horizon the group was neither
	// starving nor stalled.
	BusyFrac float64
}

// PipelineRun is a completed event-driven factory simulation.
type PipelineRun struct {
	// Name is the design's name.
	Name string
	// HorizonMs is the simulated duration.
	HorizonMs float64
	// BufferQubits is the inter-stage (crossbar) buffer capacity used, in
	// physical qubits; zero means unbounded.
	BufferQubits float64
	// MeasuredPerMs is the encoded-ancilla output rate the simulation
	// delivered; AnalyticPerMs is the closed-form ThroughputPerMs it should
	// converge to once the pipeline fills.
	MeasuredPerMs float64
	AnalyticPerMs float64
	// OutputAncillae is the total encoded ancillae delivered.
	OutputAncillae int
	// Stages holds per-unit-group statistics in pipeline order.
	Stages []StageStats
	// Events is the number of kernel events processed.
	Events int
}

// unitProc is one functional-unit group executing on the kernel.
type unitProc struct {
	k         *sim.Kernel
	stats     *StageStats
	in        *sim.Resource // nil: unlimited physical supply (first stage)
	out       *sim.Resource
	interval  iontrap.Microseconds // aggregated completion cadence
	latency   iontrap.Microseconds // pipeline-fill delay of the first op
	qubitsIn  float64
	qubitsOut float64 // success-rate scaled
	held      float64
	first     bool

	// starving/stalled mark a wait in progress since blockedAt, so a run
	// that ends mid-wait can account the trailing segment.
	starving  bool
	stalled   bool
	blockedAt iontrap.Microseconds
}

// unitProc event payloads for the sim.Handler interface: every stage event
// schedules the proc itself with a phase instead of a bound-method closure.
const (
	procStart = iota
	procAcquired
	procComplete
	procFlush
)

// Fire implements sim.Handler.
func (u *unitProc) Fire(idx int) {
	switch idx {
	case procStart:
		u.request()
	case procAcquired:
		u.starving = false
		u.stats.StarveMs += (u.k.Now() - u.blockedAt).Milliseconds()
		u.work()
	case procComplete:
		u.complete()
	case procFlush:
		u.flush()
	}
}

func (u *unitProc) start() { u.k.AtFire(0, sim.PriorityNormal, u, procStart) }

// request begins one operation by acquiring the input qubits.
func (u *unitProc) request() {
	if u.in == nil {
		u.work()
		return
	}
	u.starving = true
	u.blockedAt = u.k.Now()
	u.in.AcquireFire(u.qubitsIn, u, procAcquired)
}

// work runs the operation itself: the pipeline-fill latency for the first
// product, the steady cadence afterwards.
func (u *unitProc) work() {
	d := u.interval
	if u.first {
		u.first = false
		if u.latency > d {
			d = u.latency
		}
	}
	u.k.AfterFire(d, sim.PriorityNormal, u, procComplete)
}

// complete deposits the product, stalling on a full downstream buffer.
func (u *unitProc) complete() {
	u.stats.Ops++
	u.held += u.qubitsOut
	u.flush()
}

func (u *unitProc) flush() {
	u.held -= u.out.Put(u.held)
	if u.held > 1e-9 {
		if !u.stalled {
			u.stalled = true
			u.blockedAt = u.k.Now()
		}
		u.out.OnSpaceFire(u, procFlush)
		return
	}
	u.held = 0
	if u.stalled {
		u.stalled = false
		u.stats.StallMs += (u.k.Now() - u.blockedAt).Milliseconds()
	}
	u.request()
}

// finish accounts a wait still in progress when the run's horizon ends.
func (u *unitProc) finish(end iontrap.Microseconds) {
	if u.starving {
		u.stats.StarveMs += (end - u.blockedAt).Milliseconds()
	}
	if u.stalled {
		u.stats.StallMs += (end - u.blockedAt).Milliseconds()
	}
}

// SimulatePipeline runs a factory design's pipeline on the discrete-event
// kernel for horizonMs milliseconds with the given inter-stage buffer
// capacity (physical qubits; zero = unbounded) and reports the measured
// throughput against the bandwidth-matching prediction, plus per-stage
// starve/stall behaviour.
func SimulatePipeline(d Design, horizonMs, bufferQubits float64) (PipelineRun, error) {
	if err := d.Validate(); err != nil {
		return PipelineRun{}, err
	}
	if horizonMs <= 0 {
		return PipelineRun{}, fmt.Errorf("factory: non-positive simulation horizon %v ms", horizonMs)
	}
	if bufferQubits < 0 {
		return PipelineRun{}, fmt.Errorf("factory: negative buffer capacity %v", bufferQubits)
	}

	run := PipelineRun{
		Name:          d.Name,
		HorizonMs:     horizonMs,
		BufferQubits:  bufferQubits,
		AnalyticPerMs: d.ThroughputPerMs,
	}
	k := sim.AcquireKernel()
	defer k.Release()

	// One buffer after each stage; the last collects the factory's output
	// and is unbounded so throughput is demand-unconstrained.
	buffers := make([]*sim.Resource, len(d.Stages))
	for i, s := range d.Stages {
		capacity := bufferQubits
		if i == len(d.Stages)-1 {
			capacity = 0
		}
		buffers[i] = sim.NewResource(k, s.Name, capacity)
	}

	nAlloc := 0
	for _, s := range d.Stages {
		nAlloc += len(s.Allocations)
	}
	run.Stages = make([]StageStats, 0, nAlloc)

	var procs []*unitProc
	lastOutputs := 0 // unit groups whose ops count as factory output
	for si, s := range d.Stages {
		for _, a := range s.Allocations {
			ops := a.Unit.OpsPerMs(d.Tech) * float64(a.Count)
			if !(ops > 0) {
				return PipelineRun{}, fmt.Errorf("factory: unit %q rate %v ops/ms: %w", a.Unit.Name, ops, sim.ErrZeroRate)
			}
			run.Stages = append(run.Stages, StageStats{Stage: s.Name, Unit: a.Unit.Name, Count: a.Count})
			stats := &run.Stages[len(run.Stages)-1]
			var in *sim.Resource
			// The crossbar only carries the previous stage's product; a
			// unit's ExternalIn qubits (the π/8 transversal stage's encoded
			// zero, fed from a zero factory) arrive from outside the
			// pipeline, which the simulation treats as abundant.
			qubitsIn := float64(a.Unit.QubitsIn - a.Unit.ExternalIn)
			if si > 0 {
				in = buffers[si-1]
			}
			p := &unitProc{
				k:         k,
				stats:     stats,
				in:        in,
				out:       buffers[si],
				interval:  iontrap.Microseconds(1000.0 / ops),
				latency:   a.Unit.LatencyUs(d.Tech),
				qubitsIn:  qubitsIn,
				qubitsOut: float64(a.Unit.QubitsOut) * a.Unit.successRate(),
				first:     true,
			}
			procs = append(procs, p)
			if si == len(d.Stages)-1 {
				lastOutputs++
			}
		}
	}

	for _, p := range procs {
		p.start()
	}
	k.At(iontrap.Microseconds(horizonMs*1000.0), sim.PriorityLate, k.Stop)
	stats := k.Run()
	for _, p := range procs {
		p.finish(k.Now())
	}

	run.Events = stats.Events
	// The factory's output is the completed operations of every unit group
	// in the final stage (current designs end in one group, but the sum is
	// correct for any Design).
	for _, st := range run.Stages[len(run.Stages)-lastOutputs:] {
		run.OutputAncillae += st.Ops
	}
	run.MeasuredPerMs = float64(run.OutputAncillae) / horizonMs
	for i := range run.Stages {
		st := &run.Stages[i]
		st.BusyFrac = 1 - (st.StarveMs+st.StallMs)/horizonMs
		if st.BusyFrac < 0 {
			st.BusyFrac = 0
		}
	}
	return run, nil
}
