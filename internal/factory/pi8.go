package factory

import (
	"math"

	"speedofdata/internal/iontrap"
	"speedofdata/internal/steane"
)

// Pi8FactoryUnits returns the four pipeline stages of the encoded-π/8 ancilla
// factory exactly as Table 7 defines them.  Bandwidths here are in physical
// qubits: the transversal stage consumes fourteen qubits per operation (the
// seven-qubit cat state plus the encoded zero supplied by a zero factory) and
// the decode stage emits eight (the decoded cat qubit plus the stored encoded
// block).
func Pi8FactoryUnits() []FunctionalUnit {
	return []FunctionalUnit{
		{
			Name: "Cat State Prepare",
			Latency: iontrap.Expr(
				iontrap.OpTwoQubitGate, 7, iontrap.OpTurn, 14, iontrap.OpStraightMove, 8),
			InternalStages: 1,
			QubitsIn:       steane.N, QubitsOut: steane.N,
			Height: 6, Area: 12,
		},
		{
			Name: "Transversal CX/CS/CZ/pi8",
			Latency: iontrap.Expr(
				iontrap.OpTwoQubitGate, 3, iontrap.OpTurn, 2, iontrap.OpStraightMove, 3),
			InternalStages: 1,
			QubitsIn:       2 * steane.N, QubitsOut: 2 * steane.N,
			// Half the input is the encoded zero supplied by a zero factory,
			// not by the preceding cat-prepare stage.
			ExternalIn: steane.N,
			Height:     7, Area: 7,
		},
		{
			Name: "Decode (plus Store)",
			Latency: iontrap.Expr(
				iontrap.OpTwoQubitGate, 7, iontrap.OpTurn, 14, iontrap.OpStraightMove, 8),
			InternalStages: 1,
			QubitsIn:       2 * steane.N, QubitsOut: steane.N + 1,
			Height: 13, Area: 19,
		},
		{
			Name: "H/M/Transversal Z",
			Latency: iontrap.Expr(
				iontrap.OpMeasure, 1, iontrap.OpOneQubitGate, 2,
				iontrap.OpTurn, 2, iontrap.OpStraightMove, 2),
			InternalStages: 1,
			QubitsIn:       steane.N + 1, QubitsOut: steane.N,
			Height: 8, Area: 8,
		},
	}
}

func pi8UnitByName(name string) FunctionalUnit {
	for _, u := range Pi8FactoryUnits() {
		if u.Name == name {
			return u
		}
	}
	panic("factory: unknown pi/8 factory unit " + name)
}

// Pi8Factory sizes the encoded-π/8 ancilla factory of Section 4.4.2 by
// bandwidth matching.  A single transversal-interaction unit paces the
// design; the expensive cat-state-preparation stage is sized to come as close
// to that pace as possible without over-provisioning (making it the
// bottleneck, as the paper observes), and the decode and measurement stages
// are sized to keep up with the realised rate.  With ion-trap parameters this
// reproduces the Table 8 unit counts (4 / 1 / 4 / 2), the 403-macroblock area
// and the ~18.3 encoded π/8 ancillae per millisecond throughput.
//
// The factory consumes one encoded zero ancilla per produced π/8 ancilla;
// that supply is accounted separately (Section 5.1, ZeroInputPerMs).
func Pi8Factory(tech iontrap.Technology) Design {
	cat := pi8UnitByName("Cat State Prepare")
	trans := pi8UnitByName("Transversal CX/CS/CZ/pi8")
	decode := pi8UnitByName("Decode (plus Store)")
	hmz := pi8UnitByName("H/M/Transversal Z")

	// One transversal unit sets the ceiling: each of its operations turns one
	// 7-qubit cat plus one encoded zero into one candidate π/8 ancilla.
	transOpsPerMs := trans.OpsPerMs(tech)

	// Each cat unit produces one 7-qubit cat per pass.  Size the stage as
	// large as possible without exceeding the transversal ceiling: the cat
	// stage then paces the whole factory.
	catOpsPerUnit := cat.OpsPerMs(tech)
	catUnits := int(math.Floor(transOpsPerMs/catOpsPerUnit + 1e-9))
	if catUnits < 1 {
		catUnits = 1
	}
	throughput := float64(catUnits) * catOpsPerUnit
	if throughput > transOpsPerMs {
		throughput = transOpsPerMs
	}

	decodeUnits := unitsFor(throughput, decode.OpsPerMs(tech))
	hmzUnits := unitsFor(throughput, hmz.OpsPerMs(tech))

	return Design{
		Name: "encoded pi/8 ancilla factory",
		Tech: tech,
		Stages: []Stage{
			{Name: "Cat State Prepare", Allocations: []Allocation{{Unit: cat, Count: catUnits}}},
			{Name: "Transversal Interaction", Allocations: []Allocation{{Unit: trans, Count: 1}}},
			{Name: "Decode", Allocations: []Allocation{{Unit: decode, Count: decodeUnits}}},
			{Name: "Measure/Fixup", Allocations: []Allocation{{Unit: hmz, Count: hmzUnits}}},
		},
		// Qubits must move in both directions through every crossbar
		// (recycling the decoded cat qubits), so all crossbars get two
		// columns (Section 4.4.2).
		CrossbarColumns: []int{2, 2, 2},
		ThroughputPerMs: throughput,
		OutputLatencyUs: cat.LatencyUs(tech) + trans.LatencyUs(tech) +
			decode.LatencyUs(tech) + hmz.LatencyUs(tech),
	}
}

// ZeroInputPerMs is the encoded-zero ancilla bandwidth a π/8 factory consumes
// when running at full throughput: one encoded zero per produced π/8 ancilla.
func ZeroInputPerMs(pi8 Design) float64 { return pi8.ThroughputPerMs }

// Pi8SupplyArea returns the total area needed to supply a π/8 ancilla
// bandwidth: the π/8 encoding factories themselves plus the encoded-zero
// factories that feed them (the accounting used by Table 9's last column).
func Pi8SupplyArea(pi8 Design, zero Design, pi8PerMs float64) iontrap.Area {
	return pi8.AreaForBandwidth(pi8PerMs) + zero.AreaForBandwidth(pi8PerMs)
}
