package factory

import (
	"speedofdata/internal/iontrap"
	"speedofdata/internal/steane"
)

// DefaultVerificationSuccess is the fraction of encoded zero ancillae that
// pass verification (Section 2.3 estimates a 0.2% failure rate by Monte
// Carlo; the noise package reproduces a rate of the same order).
const DefaultVerificationSuccess = 0.998

// SimpleZeroFactory models the non-pipelined factory of Figure 11: a fixed
// 90-macroblock layout executing the verify-and-correct preparation with a
// hand-optimised schedule, producing one encoded zero ancilla per pass.
type SimpleZeroFactory struct {
	Tech iontrap.Technology
}

// Latency returns the symbolic latency of one ancilla preparation:
// tprep + 2·tmeas + 6·t2q + 2·t1q + 8·tturn + 30·tmove (Section 4.3).
func (SimpleZeroFactory) Latency() iontrap.LatencyExpr {
	return iontrap.Expr(
		iontrap.OpZeroPrep, 1,
		iontrap.OpMeasure, 2,
		iontrap.OpTwoQubitGate, 6,
		iontrap.OpOneQubitGate, 2,
		iontrap.OpTurn, 8,
		iontrap.OpStraightMove, 30,
	)
}

// LatencyUs evaluates the preparation latency (323 µs with ion-trap numbers).
func (f SimpleZeroFactory) LatencyUs() iontrap.Microseconds {
	return f.Latency().Eval(f.Tech)
}

// ThroughputPerMs is the encoded ancilla production rate (about 3.1/ms).
func (f SimpleZeroFactory) ThroughputPerMs() float64 {
	lat := float64(f.LatencyUs())
	if lat <= 0 {
		return 0
	}
	return 1000.0 / lat
}

// Area returns the simple factory's footprint: ten gate locations per row for
// three rows (seven encoding plus three verification qubits each) plus the
// interleaved communication rows, 90 macroblocks in total (Figure 11).
func (SimpleZeroFactory) Area() iontrap.Area { return 90 }

// AreaForBandwidth returns the area of enough replicated simple factories to
// sustain a bandwidth, allowing fractional replication.
func (f SimpleZeroFactory) AreaForBandwidth(perMs float64) iontrap.Area {
	tp := f.ThroughputPerMs()
	if perMs <= 0 || tp <= 0 {
		return 0
	}
	return iontrap.Area(perMs / tp * float64(f.Area()))
}

// ZeroFactoryUnits returns the five functional units of the pipelined
// encoded-zero factory exactly as Table 5 defines them: symbolic latency,
// internal pipeline stages, per-operation qubit flow, verification success,
// and macroblock footprint.
func ZeroFactoryUnits() []FunctionalUnit {
	return []FunctionalUnit{
		{
			Name: "Zero Prep",
			Latency: iontrap.Expr(
				iontrap.OpZeroPrep, 1, iontrap.OpOneQubitGate, 1,
				iontrap.OpTurn, 2, iontrap.OpStraightMove, 1),
			InternalStages: 1,
			QubitsIn:       1, QubitsOut: 1,
			Height: 1, Area: 1,
		},
		{
			Name: "CX Stage",
			Latency: iontrap.Expr(
				iontrap.OpTwoQubitGate, 3, iontrap.OpTurn, 6, iontrap.OpStraightMove, 5),
			InternalStages: 3,
			QubitsIn:       steane.N, QubitsOut: steane.N,
			Height: 4, Area: 28,
		},
		{
			Name: "Cat State Prep",
			Latency: iontrap.Expr(
				iontrap.OpTwoQubitGate, 2, iontrap.OpTurn, 4, iontrap.OpStraightMove, 2),
			InternalStages: 2,
			QubitsIn:       3, QubitsOut: 3,
			Height: 2, Area: 6,
		},
		{
			Name: "Verification",
			Latency: iontrap.Expr(
				iontrap.OpMeasure, 1, iontrap.OpTwoQubitGate, 1,
				iontrap.OpTurn, 2, iontrap.OpStraightMove, 2),
			InternalStages: 1,
			QubitsIn:       steane.N + 3, QubitsOut: steane.N,
			SuccessRate: DefaultVerificationSuccess,
			Height:      10, Area: 10,
		},
		{
			Name: "B/P Correction",
			Latency: iontrap.Expr(
				iontrap.OpMeasure, 1, iontrap.OpTwoQubitGate, 2,
				iontrap.OpTurn, 6, iontrap.OpStraightMove, 8),
			InternalStages: 1,
			QubitsIn:       3 * steane.N, QubitsOut: steane.N,
			Height: 21, Area: 21,
		},
	}
}

// zeroUnitByName finds a Table 5 unit.
func zeroUnitByName(name string) FunctionalUnit {
	for _, u := range ZeroFactoryUnits() {
		if u.Name == name {
			return u
		}
	}
	panic("factory: unknown zero factory unit " + name)
}

// PipelinedZeroFactory sizes the four-stage pipelined encoded-zero factory of
// Figure 12 by bandwidth matching (Section 4.4.1): the single CX unit sets
// the base encoded-ancilla rate, the cat-prepare units are matched 7:3 to it,
// and the preparation, verification and correction stages are sized to keep
// up.  With ion-trap parameters this reproduces the Table 6 unit counts
// (24 / 1+1 / 3 / 2), the 298-macroblock area and the ~10.5 encoded ancillae
// per millisecond throughput.
func PipelinedZeroFactory(tech iontrap.Technology) Design {
	zeroPrep := zeroUnitByName("Zero Prep")
	cx := zeroUnitByName("CX Stage")
	cat := zeroUnitByName("Cat State Prep")
	verify := zeroUnitByName("Verification")
	correct := zeroUnitByName("B/P Correction")

	// The CX unit is the pipeline's pacing element: each seven physical
	// qubits leaving it form one encoded zero ancilla awaiting verification.
	encodedPerMs := cx.OutBandwidth(tech) / float64(steane.N)

	// Stage 2: cat-prepare units matched so the 3-qubit cat supply meets the
	// 7-qubit encoded supply (the paper's 7:3 matching).
	catUnits := unitsFor(encodedPerMs, cat.OutBandwidth(tech)/3.0)

	// Stage 1: physical zero preparation must feed both the CX units (7
	// qubits per encoded ancilla) and the cat-prepare units (3 per ancilla).
	prepDemand := cx.InBandwidth(tech) + float64(catUnits)*cat.InBandwidth(tech)
	// Cat units may be slightly over-provisioned; demand what is actually
	// consumed: 7 + 3 physical qubits per encoded ancilla.
	if consumed := encodedPerMs * float64(steane.N+3); consumed < prepDemand {
		prepDemand = consumed
	}
	prepUnits := unitsFor(prepDemand, zeroPrep.OutBandwidth(tech))

	// Stage 3: verification operates on one encoded ancilla plus its cat per
	// operation.
	verifyUnits := unitsFor(encodedPerMs, verify.OpsPerMs(tech))

	// Stage 4: bit/phase correction consumes three verified encoded ancillae
	// per output ancilla.
	verifiedPerMs := encodedPerMs * verify.successRate()
	correctionOpsPerMs := verifiedPerMs / 3.0
	correctUnits := unitsFor(correctionOpsPerMs, correct.OpsPerMs(tech))

	design := Design{
		Name: "pipelined encoded-zero factory",
		Tech: tech,
		Stages: []Stage{
			{Name: "Physical Prepare", Allocations: []Allocation{{Unit: zeroPrep, Count: prepUnits}}},
			{Name: "Encode", Allocations: []Allocation{{Unit: cx, Count: 1}, {Unit: cat, Count: catUnits}}},
			{Name: "Verification", Allocations: []Allocation{{Unit: verify, Count: verifyUnits}}},
			{Name: "Bit/Phase Correction", Allocations: []Allocation{{Unit: correct, Count: correctUnits}}},
		},
		// Qubits leaving Stage 1 funnel inward to the much smaller Stage 2,
		// so that crossbar needs a single column; the later crossbars carry
		// bidirectional traffic (recycling) and use two.
		CrossbarColumns: []int{1, 2, 2},
		ThroughputPerMs: correctionOpsPerMs,
		OutputLatencyUs: zeroPrep.LatencyUs(tech) + cx.LatencyUs(tech) +
			verify.LatencyUs(tech) + correct.LatencyUs(tech),
	}
	return design
}
