package factory

import (
	"testing"

	"speedofdata/internal/iontrap"
)

// The event-driven pipeline must converge on the bandwidth-matching
// throughput once the pipeline fills: the closed-form Table 6 / Table 8
// numbers are the steady state of the simulated dynamics.
func TestSimulatePipelineConvergesOnAnalyticThroughput(t *testing.T) {
	tech := iontrap.Default()
	for _, d := range []Design{PipelinedZeroFactory(tech), Pi8Factory(tech)} {
		run, err := SimulatePipeline(d, 100, 0)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		ratio := run.MeasuredPerMs / run.AnalyticPerMs
		if ratio < 0.97 || ratio > 1.03 {
			t.Errorf("%s: measured %.2f/ms vs analytic %.2f/ms (ratio %.3f), want within 3%%",
				d.Name, run.MeasuredPerMs, run.AnalyticPerMs, ratio)
		}
		if run.Events == 0 || run.OutputAncillae == 0 {
			t.Errorf("%s: empty run: %+v", d.Name, run)
		}
		for _, s := range run.Stages {
			if s.Ops == 0 {
				t.Errorf("%s: stage %s/%s never operated", d.Name, s.Stage, s.Unit)
			}
			if s.BusyFrac < 0 || s.BusyFrac > 1 {
				t.Errorf("%s: stage %s/%s busy fraction %v out of range", d.Name, s.Stage, s.Unit, s.BusyFrac)
			}
		}
	}
}

// Over-provisioned stages starve on input (that slack is what the paper's
// unit counts buy); finite crossbar buffers push back on the prep stage.
func TestSimulatePipelineStageDynamics(t *testing.T) {
	tech := iontrap.Default()
	d := PipelinedZeroFactory(tech)

	unbounded, err := SimulatePipeline(d, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	starve := map[string]float64{}
	stall := map[string]float64{}
	for _, s := range unbounded.Stages {
		starve[s.Unit] = s.StarveMs
		stall[s.Unit] = s.StallMs
	}
	// The correction stage is sized for a third of the verified flow per op,
	// so it idles waiting on input; with unbounded buffers nothing stalls.
	if starve["B/P Correction"] <= 0 {
		t.Error("the over-provisioned correction stage should starve on input")
	}
	for unit, ms := range stall {
		if ms != 0 {
			t.Errorf("unit %q stalled %v ms with unbounded buffers", unit, ms)
		}
	}

	bounded, err := SimulatePipeline(d, 50, 32)
	if err != nil {
		t.Fatal(err)
	}
	producerStalled := false
	for _, s := range bounded.Stages {
		if s.Unit == "Zero Prep" && s.StallMs > 0 {
			producerStalled = true
		}
	}
	if !producerStalled {
		t.Error("a 32-qubit crossbar buffer should back-pressure the prep stage")
	}
	// Back-pressure must not change the steady throughput: the pipeline is
	// bandwidth-matched.
	if ratio := bounded.MeasuredPerMs / unbounded.MeasuredPerMs; ratio < 0.97 {
		t.Errorf("finite crossbar buffers collapsed throughput: ratio %.3f", ratio)
	}
}

func TestSimulatePipelineRejectsBadInput(t *testing.T) {
	d := PipelinedZeroFactory(iontrap.Default())
	if _, err := SimulatePipeline(d, 0, 0); err == nil {
		t.Error("zero horizon should fail")
	}
	if _, err := SimulatePipeline(d, 10, -1); err == nil {
		t.Error("negative buffer should fail")
	}
	if _, err := SimulatePipeline(Design{}, 10, 0); err == nil {
		t.Error("invalid design should fail")
	}
}

func TestExternalInValidation(t *testing.T) {
	u := ZeroFactoryUnits()[0]
	u.ExternalIn = u.QubitsIn + 1
	if err := u.Validate(); err == nil {
		t.Error("external input exceeding total input should be invalid")
	}
	u.ExternalIn = -1
	if err := u.Validate(); err == nil {
		t.Error("negative external input should be invalid")
	}
	// The π/8 transversal stage declares its zero-factory feed.
	for _, pu := range Pi8FactoryUnits() {
		if pu.Name == "Transversal CX/CS/CZ/pi8" && pu.ExternalIn == 0 {
			t.Error("transversal stage should declare its encoded-zero external input")
		}
		if err := pu.Validate(); err != nil {
			t.Errorf("unit %q invalid: %v", pu.Name, err)
		}
	}
}
