// Package factory implements the ancilla factory designs of Section 4: the
// simple (replicated) encoded-zero factory of Figure 11, the fully pipelined
// encoded-zero factory of Figures 12-13 (Tables 5 and 6), and the encoded-π/8
// factory of Section 4.4.2 (Tables 7 and 8), together with the
// bandwidth-matching arithmetic that sizes each pipeline stage and the
// area/throughput summaries the architectural evaluation consumes.
package factory

import (
	"fmt"
	"math"

	"speedofdata/internal/iontrap"
)

// FunctionalUnit is one pipeline functional unit: a fixed patch of
// macroblocks that repeatedly performs one subcircuit (a row of Table 5 or
// Table 7).
type FunctionalUnit struct {
	// Name identifies the unit ("Zero Prep", "CX Stage", ...).
	Name string
	// Latency is the symbolic latency of one pass through the unit.
	Latency iontrap.LatencyExpr
	// InternalStages is the number of pipeline stages inside the unit itself
	// (Table 5's "Stages" column): the unit holds this many qubit groups in
	// flight at once.
	InternalStages int
	// QubitsIn and QubitsOut are the physical qubits consumed and produced
	// per operation.
	QubitsIn, QubitsOut int
	// ExternalIn is the portion of QubitsIn supplied from outside the
	// factory's own pipeline rather than by the preceding stage (the π/8
	// factory's transversal stage receives an encoded zero from a zero
	// factory this way).  The bandwidth tables count it as input bandwidth;
	// the event-driven pipeline simulation does not charge it to the
	// upstream crossbar buffer.
	ExternalIn int
	// SuccessRate scales the output bandwidth for units that discard some of
	// their product (verification keeps ~99.8% of encoded ancillae).
	SuccessRate float64
	// Height and Area describe the unit's macroblock footprint (Area may
	// exceed Height×1 for multi-column units).
	Height int
	Area   iontrap.Area
}

// LatencyUs evaluates the unit latency for a technology.
func (u FunctionalUnit) LatencyUs(t iontrap.Technology) iontrap.Microseconds {
	return u.Latency.Eval(t)
}

// OpsPerMs is the operation issue rate of one unit: with k internal pipeline
// stages, a new operation completes every latency/k.
func (u FunctionalUnit) OpsPerMs(t iontrap.Technology) float64 {
	lat := float64(u.LatencyUs(t))
	if lat <= 0 {
		return 0
	}
	return float64(u.InternalStages) * 1000.0 / lat
}

// InBandwidth is the physical-qubit input bandwidth of one unit in qubits per
// millisecond (Table 5 / Table 7 "In BW").
func (u FunctionalUnit) InBandwidth(t iontrap.Technology) float64 {
	return float64(u.QubitsIn) * u.OpsPerMs(t)
}

// OutBandwidth is the physical-qubit output bandwidth of one unit in qubits
// per millisecond (Table 5 / Table 7 "Out BW"), including the success rate.
func (u FunctionalUnit) OutBandwidth(t iontrap.Technology) float64 {
	return float64(u.QubitsOut) * u.OpsPerMs(t) * u.successRate()
}

func (u FunctionalUnit) successRate() float64 {
	if u.SuccessRate == 0 {
		return 1
	}
	return u.SuccessRate
}

// Validate reports an error for inconsistent unit definitions.
func (u FunctionalUnit) Validate() error {
	if u.InternalStages <= 0 {
		return fmt.Errorf("factory: unit %q has non-positive internal stage count", u.Name)
	}
	if u.QubitsIn <= 0 || u.QubitsOut <= 0 {
		return fmt.Errorf("factory: unit %q has non-positive qubit flow", u.Name)
	}
	if u.ExternalIn < 0 || u.ExternalIn > u.QubitsIn {
		return fmt.Errorf("factory: unit %q external input %d outside [0, %d]", u.Name, u.ExternalIn, u.QubitsIn)
	}
	if u.SuccessRate < 0 || u.SuccessRate > 1 {
		return fmt.Errorf("factory: unit %q has success rate %v outside [0,1]", u.Name, u.SuccessRate)
	}
	if u.Height <= 0 || u.Area <= 0 {
		return fmt.Errorf("factory: unit %q has non-positive footprint", u.Name)
	}
	return nil
}

// Allocation is a functional unit replicated Count times inside a stage.
type Allocation struct {
	Unit  FunctionalUnit
	Count int
}

// TotalHeight is the stacked height of the allocation (Table 6 / Table 8
// "Total Height").
func (a Allocation) TotalHeight() int { return a.Count * a.Unit.Height }

// TotalArea is the allocation's macroblock area (Table 6 / Table 8 "Total
// Area").
func (a Allocation) TotalArea() iontrap.Area {
	return iontrap.Area(float64(a.Count) * float64(a.Unit.Area))
}

// Stage is one pipeline stage: one or more unit allocations whose combined
// output feeds the next stage through a crossbar.
type Stage struct {
	Name        string
	Allocations []Allocation
}

// Height is the stage's stacked height.
func (s Stage) Height() int {
	h := 0
	for _, a := range s.Allocations {
		h += a.TotalHeight()
	}
	return h
}

// Area is the stage's functional-unit area.
func (s Stage) Area() iontrap.Area {
	var area iontrap.Area
	for _, a := range s.Allocations {
		area += a.TotalArea()
	}
	return area
}

// Design is a complete ancilla factory: stages separated by crossbars, with a
// resulting throughput of encoded ancillae.
type Design struct {
	Name   string
	Tech   iontrap.Technology
	Stages []Stage
	// CrossbarColumns[i] is the number of crossbar columns between stage i
	// and stage i+1 (the paper uses one column where traffic is
	// unidirectional and funnelling inward, two otherwise).
	CrossbarColumns []int
	// ThroughputPerMs is the encoded-ancilla output rate of the whole
	// factory.
	ThroughputPerMs float64
	// OutputLatencyUs is the end-to-end latency of one ancilla through the
	// factory (the sum of stage latencies), used by consumers that care
	// about freshness rather than rate.
	OutputLatencyUs iontrap.Microseconds
}

// FunctionalArea is the total functional-unit area of the factory.
func (d Design) FunctionalArea() iontrap.Area {
	var a iontrap.Area
	for _, s := range d.Stages {
		a += s.Area()
	}
	return a
}

// CrossbarArea is the total crossbar area: each crossbar spans the taller of
// the two stages it connects, times its column count.
func (d Design) CrossbarArea() iontrap.Area {
	var a iontrap.Area
	for i, cols := range d.CrossbarColumns {
		if i+1 >= len(d.Stages) {
			break
		}
		h := d.Stages[i].Height()
		if next := d.Stages[i+1].Height(); next > h {
			h = next
		}
		a += iontrap.Area(cols * h)
	}
	return a
}

// TotalArea is the factory's full macroblock footprint.
func (d Design) TotalArea() iontrap.Area { return d.FunctionalArea() + d.CrossbarArea() }

// AreaForBandwidth returns the factory area needed to sustain a given encoded
// ancilla bandwidth, allowing fractional replication (the Table 9
// accounting).
func (d Design) AreaForBandwidth(perMs float64) iontrap.Area {
	if perMs <= 0 || d.ThroughputPerMs <= 0 {
		return 0
	}
	return iontrap.Area(perMs / d.ThroughputPerMs * float64(d.TotalArea()))
}

// CountForBandwidth returns the whole number of factory instances needed to
// sustain a bandwidth.
func (d Design) CountForBandwidth(perMs float64) int {
	if perMs <= 0 {
		return 0
	}
	if d.ThroughputPerMs <= 0 {
		return 0
	}
	return int(math.Ceil(perMs / d.ThroughputPerMs))
}

// Validate checks the design's internal consistency.
func (d Design) Validate() error {
	if len(d.Stages) == 0 {
		return fmt.Errorf("factory: design %q has no stages", d.Name)
	}
	if len(d.CrossbarColumns) != len(d.Stages)-1 {
		return fmt.Errorf("factory: design %q has %d crossbars for %d stages", d.Name, len(d.CrossbarColumns), len(d.Stages))
	}
	for _, s := range d.Stages {
		if len(s.Allocations) == 0 {
			return fmt.Errorf("factory: design %q stage %q has no units", d.Name, s.Name)
		}
		for _, a := range s.Allocations {
			if err := a.Unit.Validate(); err != nil {
				return err
			}
			if a.Count <= 0 {
				return fmt.Errorf("factory: design %q stage %q allocates %d of %q", d.Name, s.Name, a.Count, a.Unit.Name)
			}
		}
	}
	if d.ThroughputPerMs <= 0 {
		return fmt.Errorf("factory: design %q has non-positive throughput", d.Name)
	}
	return nil
}

// unitsFor returns the number of unit replicas needed so that count×perUnit
// meets demand (the bandwidth matching step of Section 4.4).
func unitsFor(demand, perUnit float64) int {
	if perUnit <= 0 {
		return 0
	}
	return int(math.Ceil(demand/perUnit - 1e-9))
}
