package engine

import (
	"fmt"
	"strings"
	"testing"
)

// legacyFingerprint is the original reflection-based implementation, kept
// here as the oracle: every key the typed builder produces must be
// byte-identical, because keys seed the per-job RNG streams and changing a
// single byte would silently change every Monte Carlo estimate.
func legacyFingerprint(parts ...any) string {
	var b strings.Builder
	for i, p := range parts {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%v", p)
	}
	return b.String()
}

type stringerPart struct{ name string }

func (s stringerPart) String() string { return "str:" + s.name }

type structPart struct {
	A float64
	B float64
	C int
}

type keyerPart struct{ v int }

func (k keyerPart) AppendKey(b []byte) []byte {
	// Matches %v of the struct: "{<v>}".
	b = append(b, '{')
	b = fmt.Appendf(b, "%d", k.v)
	return append(b, '}')
}

func TestFingerprintMatchesLegacyRendering(t *testing.T) {
	cases := [][]any{
		{"mc", 3, 1.5},
		{"noise.mc", "verify-and-correct/133/abcdef", structPart{1e-4, 1e-6, 6}, int64(-7), 0, 8192},
		{"floats", 0.0, 1e-300, -2.5, 1.0 / 3.0, 42.0},
		{"bools", true, false},
		{"stringer", stringerPart{"qcla"}, stringerPart{""}},
		{"slices", []int{1, 2, 3}, []string{"a", "b"}},
		{"mixed", int64(1 << 62), -1, uint8(7), 3.14},
		{"empty", ""},
	}
	for _, parts := range cases {
		want := legacyFingerprint(parts...)
		if got := Fingerprint(parts...); got != want {
			t.Errorf("Fingerprint(%v) = %q, want legacy %q", parts, got, want)
		}
	}
}

func TestKeyBuilderMatchesFingerprint(t *testing.T) {
	want := Fingerprint("noise.mc", "fp/1/2", keyerPart{7}, int64(-9), 3, 8192)
	got := NewKey("noise.mc").Str("fp/1/2").Keyer(keyerPart{7}).Int64(-9).Int(3).Int(8192).String()
	if got != want {
		t.Fatalf("Key builder = %q, want %q", got, want)
	}
}

func TestFingerprintUsesKeyerFastPath(t *testing.T) {
	if got, want := Fingerprint("k", keyerPart{12}), "k|{12}"; got != want {
		t.Fatalf("Keyer part = %q, want %q", got, want)
	}
	if got, want := NewKey("k").Keyer(keyerPart{12}).String(), "k|{12}"; got != want {
		t.Fatalf("Key.Keyer = %q, want %q", got, want)
	}
}

// The typed key builder is on the per-job critical path of every experiment
// batch: it must stay allocation-light (one buffer, one final string).
func TestKeyBuilderAllocations(t *testing.T) {
	allocs := testing.AllocsPerRun(1000, func() {
		_ = NewKey("noise.mc").Str("some/protocol/fingerprint").Keyer(keyerPart{4}).Int64(42).Int(17).Int(8192).String()
	})
	if allocs > 2 {
		t.Fatalf("Key builder allocations = %v, want <= 2 (buffer + string)", allocs)
	}
}

// Fingerprint itself pays interface boxing for non-constant ints but must
// not regress to reflection-level allocation counts.
func TestFingerprintAllocations(t *testing.T) {
	fp := "some/protocol/fingerprint"
	seed := int64(42)
	allocs := testing.AllocsPerRun(1000, func() {
		_ = Fingerprint("noise.mc", fp, seed, 300, 8192)
	})
	if allocs > 4 {
		t.Fatalf("Fingerprint allocations = %v, want <= 4", allocs)
	}
}
