package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// rngJobs builds a batch whose results depend only on each job's RNG stream,
// so any scheduling nondeterminism would show up as a value change.
func rngJobs(n int) []Job[float64] {
	jobs := make([]Job[float64], n)
	for i := range jobs {
		jobs[i] = Job[float64]{
			Key: Fingerprint("rng-job", i),
			Run: func(_ context.Context, rng *rand.Rand) (float64, error) {
				sum := 0.0
				for k := 0; k < 1000; k++ {
					sum += rng.Float64()
				}
				return sum, nil
			},
		}
	}
	return jobs
}

func TestParallelMatchesSequential(t *testing.T) {
	jobs := rngJobs(32)
	seq, err := Run(context.Background(), Sequential(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(context.Background(), New(8), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("job %d: sequential %v != parallel %v", i, seq[i], par[i])
		}
	}
}

func TestNilEngineRunsSequentially(t *testing.T) {
	jobs := rngJobs(4)
	got, err := Run(context.Background(), nil, jobs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(context.Background(), Sequential(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("job %d: nil engine %v != sequential %v", i, got[i], want[i])
		}
	}
}

func TestResultsKeepJobOrder(t *testing.T) {
	jobs := make([]Job[int], 20)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key: Fingerprint("order", i),
			Run: func(context.Context, *rand.Rand) (int, error) { return i * i, nil },
		}
	}
	out, err := Run(context.Background(), New(4), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestCancellationMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	var ran atomic.Int32
	jobs := make([]Job[int], 64)
	for i := range jobs {
		jobs[i] = Job[int]{
			Key: Fingerprint("cancel", i),
			Run: func(ctx context.Context, _ *rand.Rand) (int, error) {
				ran.Add(1)
				select {
				case started <- struct{}{}:
				default:
				}
				<-ctx.Done()
				return 0, ctx.Err()
			},
		}
	}
	go func() {
		<-started
		cancel()
	}()
	_, err := Run(ctx, New(2), jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run after cancellation = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 64 {
		t.Fatalf("cancellation mid-sweep still ran all %d jobs", n)
	}
}

func TestCacheHitOnRepeatedFingerprint(t *testing.T) {
	var computed atomic.Int32
	job := Job[int]{
		Key: Fingerprint("cache-me", 7),
		Run: func(context.Context, *rand.Rand) (int, error) {
			computed.Add(1)
			return 42, nil
		},
	}
	e := New(4)
	for round := 0; round < 3; round++ {
		out, err := Run(context.Background(), e, []Job[int]{job})
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != 42 {
			t.Fatalf("round %d: got %d, want 42", round, out[0])
		}
	}
	if n := computed.Load(); n != 1 {
		t.Fatalf("job computed %d times, want 1 (cache hits after the first)", n)
	}
	hits, misses := e.CacheStats()
	if hits != 2 || misses != 1 {
		t.Fatalf("cache stats = %d hits / %d misses, want 2 / 1", hits, misses)
	}
}

func TestEmptyKeyDisablesCaching(t *testing.T) {
	var computed atomic.Int32
	job := Job[int]{
		Run: func(context.Context, *rand.Rand) (int, error) {
			computed.Add(1)
			return 1, nil
		},
	}
	e := New(1)
	for round := 0; round < 2; round++ {
		if _, err := Run(context.Background(), e, []Job[int]{job}); err != nil {
			t.Fatal(err)
		}
	}
	if n := computed.Load(); n != 2 {
		t.Fatalf("uncached job computed %d times, want 2", n)
	}
}

func TestFirstErrorCancelsBatch(t *testing.T) {
	boom := errors.New("boom")
	jobs := make([]Job[int], 16)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key: Fingerprint("err", i),
			Run: func(ctx context.Context, _ *rand.Rand) (int, error) {
				if i == 3 {
					return 0, boom
				}
				return i, nil
			},
		}
	}
	if _, err := Run(context.Background(), New(2), jobs); !errors.Is(err, boom) {
		t.Fatalf("Run = %v, want the job error", err)
	}
}

func TestSeedForIsStable(t *testing.T) {
	a := SeedFor(1, "key")
	if a != SeedFor(1, "key") {
		t.Fatal("SeedFor must be deterministic")
	}
	if a == SeedFor(2, "key") {
		t.Fatal("SeedFor must depend on the base seed")
	}
	if a == SeedFor(1, "other") {
		t.Fatal("SeedFor must depend on the key")
	}
}

func TestFingerprint(t *testing.T) {
	got := Fingerprint("mc", 3, 1.5)
	if got != "mc|3|1.5" {
		t.Fatalf("Fingerprint = %q", got)
	}
}

func TestProgressReporting(t *testing.T) {
	var calls atomic.Int32
	var lastDone atomic.Int32
	e := New(3)
	e.Progress = func(done, total int, key, traceID string) {
		calls.Add(1)
		lastDone.Store(int32(done))
		if total != 10 {
			t.Errorf("total = %d, want 10", total)
		}
		if key == "" {
			t.Error("progress key must not be empty")
		}
		if traceID != "" {
			t.Errorf("untraced batch reported trace ID %q", traceID)
		}
	}
	jobs := make([]Job[int], 10)
	for i := range jobs {
		jobs[i] = Job[int]{
			Key: Fingerprint("progress", i),
			Run: func(context.Context, *rand.Rand) (int, error) { return 0, nil },
		}
	}
	if _, err := Run(context.Background(), e, jobs); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 10 || lastDone.Load() != 10 {
		t.Fatalf("progress calls = %d (last done %d), want 10/10", calls.Load(), lastDone.Load())
	}
}

func TestRunEmptyBatch(t *testing.T) {
	out, err := Run[int](context.Background(), New(4), nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v, %v", out, err)
	}
}

func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := rngJobs(4)
	if _, err := Run(ctx, New(2), jobs); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Run = %v, want context.Canceled", err)
	}
}

// The engine must support nested Run calls from inside jobs (the Monte Carlo
// path fans out chunks from within a per-protocol job).
func TestNestedRun(t *testing.T) {
	e := New(4)
	outer := make([]Job[int], 4)
	for i := range outer {
		i := i
		outer[i] = Job[int]{
			Key: Fingerprint("outer", i),
			Run: func(ctx context.Context, _ *rand.Rand) (int, error) {
				inner := make([]Job[int], 4)
				for j := range inner {
					j := j
					inner[j] = Job[int]{
						Key: Fingerprint("inner", i, j),
						Run: func(context.Context, *rand.Rand) (int, error) { return i*10 + j, nil },
					}
				}
				vals, err := Run(ctx, e, inner)
				if err != nil {
					return 0, err
				}
				sum := 0
				for _, v := range vals {
					sum += v
				}
				return sum, nil
			},
		}
	}
	out, err := Run(context.Background(), e, outer)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		want := i*40 + 6
		if v != want {
			t.Fatalf("outer[%d] = %d, want %d", i, v, want)
		}
	}
}

func ExampleFingerprint() {
	fmt.Println(Fingerprint("noise.mc", "verify-only", 42, 0))
	// Output: noise.mc|verify-only|42|0
}

// The worker bound is engine-wide: nested Run calls reuse their caller's
// slot instead of stacking fresh pools, so total concurrency never exceeds
// Workers.
func TestNestedRunRespectsWorkerBudget(t *testing.T) {
	const workers = 3
	e := New(workers)
	var cur, peak atomic.Int32
	enter := func() {
		c := cur.Add(1)
		for {
			m := peak.Load()
			if c <= m || peak.CompareAndSwap(m, c) {
				break
			}
		}
	}
	leave := func() { cur.Add(-1) }
	outer := make([]Job[int], 8)
	for i := range outer {
		i := i
		outer[i] = Job[int]{
			Key: Fingerprint("budget-outer", i),
			Run: func(ctx context.Context, _ *rand.Rand) (int, error) {
				inner := make([]Job[int], 8)
				for j := range inner {
					j := j
					inner[j] = Job[int]{
						Key: Fingerprint("budget-inner", i, j),
						Run: func(context.Context, *rand.Rand) (int, error) {
							enter()
							defer leave()
							time.Sleep(2 * time.Millisecond)
							return 0, nil
						},
					}
				}
				_, err := Run(ctx, e, inner)
				return 0, err
			},
		}
	}
	if _, err := Run(context.Background(), e, outer); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeded the engine-wide budget of %d", p, workers)
	}
}

// TestSingleflightCoalesces starts two concurrent batches computing the same
// slow job key on one engine and asserts the job body runs once: the second
// batch waits on the in-flight computation instead of duplicating it.
func TestSingleflightCoalesces(t *testing.T) {
	eng := New(4)
	var computes atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	slow := func(first bool) []Job[int] {
		return []Job[int]{{
			Key: "singleflight-job",
			Run: func(context.Context, *rand.Rand) (int, error) {
				computes.Add(1)
				if first {
					close(started)
					<-release
				}
				return 42, nil
			},
		}}
	}
	firstDone := make(chan error, 1)
	var firstOut []int
	go func() {
		out, err := Run(context.Background(), eng, slow(true))
		firstOut = out
		firstDone <- err
	}()
	<-started
	secondDone := make(chan error, 1)
	var secondOut []int
	go func() {
		out, err := Run(context.Background(), eng, slow(false))
		secondOut = out
		secondDone <- err
	}()
	// Wait until the second batch has joined the flight, then release the
	// leader.
	deadline := time.After(5 * time.Second)
	for eng.Coalesced() == 0 {
		select {
		case <-deadline:
			t.Fatal("second batch never joined the in-flight job")
		case err := <-secondDone:
			t.Fatalf("second batch finished before the leader (err=%v)", err)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(release)
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}
	if err := <-secondDone; err != nil {
		t.Fatal(err)
	}
	if firstOut[0] != 42 || secondOut[0] != 42 {
		t.Fatalf("results = %v, %v; want 42, 42", firstOut, secondOut)
	}
	if got := computes.Load(); got != 1 {
		t.Errorf("job body ran %d times; want 1", got)
	}
	if eng.Coalesced() != 1 {
		t.Errorf("Coalesced() = %d; want 1", eng.Coalesced())
	}
}

// TestSingleflightPropagatesError ensures a coalesced follower receives the
// leader's error instead of hanging or recomputing.
func TestSingleflightPropagatesError(t *testing.T) {
	eng := New(4)
	boom := errors.New("boom")
	started := make(chan struct{})
	release := make(chan struct{})
	leaderJobs := []Job[int]{{
		Key: "singleflight-err",
		Run: func(context.Context, *rand.Rand) (int, error) {
			close(started)
			<-release
			return 0, boom
		},
	}}
	followerJobs := []Job[int]{{
		Key: "singleflight-err",
		Run: func(context.Context, *rand.Rand) (int, error) {
			t.Error("follower should not recompute")
			return 0, nil
		},
	}}
	firstDone := make(chan error, 1)
	go func() {
		_, err := Run(context.Background(), eng, leaderJobs)
		firstDone <- err
	}()
	<-started
	secondDone := make(chan error, 1)
	go func() {
		_, err := Run(context.Background(), eng, followerJobs)
		secondDone <- err
	}()
	deadline := time.After(5 * time.Second)
	for eng.Coalesced() == 0 {
		select {
		case <-deadline:
			t.Fatal("follower never joined")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(release)
	if err := <-firstDone; !errors.Is(err, boom) {
		t.Errorf("leader error = %v; want boom", err)
	}
	if err := <-secondDone; !errors.Is(err, boom) {
		t.Errorf("follower error = %v; want boom", err)
	}
}

// TestSingleflightSettlesOnPanic ensures a panicking leader releases its
// flight so later identical jobs do not hang on a stale entry.
func TestSingleflightSettlesOnPanic(t *testing.T) {
	eng := New(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected the job panic to propagate")
			}
		}()
		Run(context.Background(), eng, []Job[int]{{
			Key: "panic-job",
			Run: func(context.Context, *rand.Rand) (int, error) { panic("kaboom") },
		}})
	}()
	done := make(chan int, 1)
	go func() {
		out, err := Run(context.Background(), eng, []Job[int]{{
			Key: "panic-job",
			Run: func(context.Context, *rand.Rand) (int, error) { return 7, nil },
		}})
		if err != nil {
			done <- -1
			return
		}
		done <- out[0]
	}()
	select {
	case v := <-done:
		if v != 7 {
			t.Errorf("second run returned %d; want 7", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second run hung on a stale flight")
	}
}

// TestCacheLimitEvicts caps the memoisation cache and checks insertions
// beyond the limit evict rather than grow.
func TestCacheLimitEvicts(t *testing.T) {
	eng := New(1)
	eng.CacheLimit = 4
	jobs := make([]Job[int], 10)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key: Fingerprint("evict", i),
			Run: func(context.Context, *rand.Rand) (int, error) { return i, nil },
		}
	}
	if _, err := Run(context.Background(), eng, jobs); err != nil {
		t.Fatal(err)
	}
	eng.mu.Lock()
	size := len(eng.cache)
	eng.mu.Unlock()
	if size > 4 {
		t.Errorf("cache grew to %d entries despite limit 4", size)
	}
}

func TestPublishPartial(t *testing.T) {
	type rec struct {
		key string
		seq int
		val any
	}
	var got []rec
	e := New(2)
	e.Partial = func(key string, seq int, value any) {
		got = append(got, rec{key, seq, value})
	}
	e.PublishPartial("exp", 1, 10)
	e.PublishPartial("exp", 2, 20)
	want := []rec{{"exp", 1, 10}, {"exp", 2, 20}}
	if len(got) != len(want) {
		t.Fatalf("published %d partials, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("partial %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// No callback installed and nil engines are safe no-ops.
	New(1).PublishPartial("exp", 1, nil)
	var nilEngine *Engine
	nilEngine.PublishPartial("exp", 1, nil)
}

// TestSingleflightLeaderCancelledReleasesFollowers cancels the leader of an
// in-flight key mid-job: followers coalesced onto that flight must receive
// the cancellation error promptly instead of hanging, and the flight must be
// settled so a later identical job computes fresh.
func TestSingleflightLeaderCancelledReleasesFollowers(t *testing.T) {
	eng := New(4)
	started := make(chan struct{})
	var reusable atomic.Bool
	jobs := func(first bool) []Job[int] {
		return []Job[int]{{
			Key: "cancel-leader",
			Run: func(ctx context.Context, _ *rand.Rand) (int, error) {
				if reusable.Load() {
					return 7, nil
				}
				if first {
					close(started)
				}
				<-ctx.Done()
				return 0, ctx.Err()
			},
		}}
	}
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	leaderDone := make(chan error, 1)
	go func() {
		_, err := Run(leaderCtx, eng, jobs(true))
		leaderDone <- err
	}()
	<-started
	// The follower's own context stays live: the error it sees must be the
	// settled flight's, not its own cancellation.
	followerDone := make(chan error, 1)
	go func() {
		_, err := Run(context.Background(), eng, jobs(false))
		followerDone <- err
	}()
	deadline := time.After(5 * time.Second)
	for eng.Coalesced() == 0 {
		select {
		case <-deadline:
			t.Fatal("follower never joined the flight")
		case err := <-followerDone:
			t.Fatalf("follower finished before the leader was cancelled (err=%v)", err)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancelLeader()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Errorf("leader error = %v; want context.Canceled", err)
	}
	select {
	case err := <-followerDone:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("follower error = %v; want the leader's context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower hung after the leader was cancelled")
	}
	// The flight must be settled: a fresh identical job computes and succeeds
	// rather than waiting on a stale entry or being served a cached error.
	reusable.Store(true)
	retryDone := make(chan error, 1)
	var out []int
	go func() {
		o, err := Run(context.Background(), eng, jobs(false))
		out = o
		retryDone <- err
	}()
	select {
	case err := <-retryDone:
		if err != nil || out[0] != 7 {
			t.Errorf("retry after cancellation: out=%v err=%v; want 7, nil", out, err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry hung on a stale flight after leader cancellation")
	}
}

// TestSingleflightFollowerCancelledLeaderCompletes cancels only the follower:
// the follower's batch must return its own context error promptly while the
// leader keeps computing, completes, and populates the cache.
func TestSingleflightFollowerCancelledLeaderCompletes(t *testing.T) {
	eng := New(4)
	var computes atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	jobs := func(first bool) []Job[int] {
		return []Job[int]{{
			Key: "cancel-follower",
			Run: func(context.Context, *rand.Rand) (int, error) {
				computes.Add(1)
				if first {
					close(started)
					<-release
				}
				return 11, nil
			},
		}}
	}
	leaderDone := make(chan error, 1)
	go func() {
		_, err := Run(context.Background(), eng, jobs(true))
		leaderDone <- err
	}()
	<-started
	followerCtx, cancelFollower := context.WithCancel(context.Background())
	defer cancelFollower()
	followerDone := make(chan error, 1)
	go func() {
		_, err := Run(followerCtx, eng, jobs(false))
		followerDone <- err
	}()
	deadline := time.After(5 * time.Second)
	for eng.Coalesced() == 0 {
		select {
		case <-deadline:
			t.Fatal("follower never joined the flight")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancelFollower()
	select {
	case err := <-followerDone:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("follower error = %v; want its own context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled follower hung while the leader was still running")
	}
	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader failed after follower cancellation: %v", err)
	}
	// The leader's result is cached: a repeat run is a cache hit, not a
	// recomputation.
	hits0, _ := eng.CacheStats()
	out, err := Run(context.Background(), eng, jobs(false))
	if err != nil || out[0] != 11 {
		t.Fatalf("repeat run: out=%v err=%v; want 11, nil", out, err)
	}
	if hits1, _ := eng.CacheStats(); hits1 <= hits0 {
		t.Errorf("repeat run missed the cache: hits %d -> %d", hits0, hits1)
	}
	if got := computes.Load(); got != 1 {
		t.Errorf("job body ran %d times; want 1 (leader only)", got)
	}
}

// TestInFlightGauge tracks the running-job gauge around a blocked job.
func TestInFlightGauge(t *testing.T) {
	eng := New(2)
	if got := eng.InFlight(); got != 0 {
		t.Fatalf("idle engine InFlight() = %d; want 0", got)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := Run(context.Background(), eng, []Job[int]{{
			Key: "inflight-job",
			Run: func(context.Context, *rand.Rand) (int, error) {
				close(started)
				<-release
				return 1, nil
			},
		}})
		done <- err
	}()
	<-started
	if got := eng.InFlight(); got != 1 {
		t.Errorf("InFlight() during a running job = %d; want 1", got)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := eng.InFlight(); got != 0 {
		t.Errorf("InFlight() after drain = %d; want 0", got)
	}
	// A cache-served repeat never touches the gauge; nil engines report zero.
	if _, err := Run(context.Background(), eng, []Job[int]{{
		Key: "inflight-job",
		Run: func(context.Context, *rand.Rand) (int, error) { return 1, nil },
	}}); err != nil {
		t.Fatal(err)
	}
	if got := eng.InFlight(); got != 0 {
		t.Errorf("InFlight() after cache hit = %d; want 0", got)
	}
	var nilEngine *Engine
	if got := nilEngine.InFlight(); got != 0 {
		t.Errorf("nil engine InFlight() = %d; want 0", got)
	}
}
