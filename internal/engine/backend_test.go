package engine

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// mapBackend is an in-memory CacheBackend standing in for internal/store.
type mapBackend struct {
	mu   sync.Mutex
	m    map[string]any
	gets atomic.Int64
	puts atomic.Int64
}

func newMapBackend() *mapBackend { return &mapBackend{m: make(map[string]any)} }

func (b *mapBackend) Get(key string) (any, bool) {
	b.gets.Add(1)
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.m[key]
	return v, ok
}

func (b *mapBackend) Put(key string, v any) {
	b.puts.Add(1)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[key] = v
}

// TestLRUEvictsColdestKey fills the cache past its limit and checks that the
// entry evicted is the least recently used one, not an arbitrary victim.
func TestLRUEvictsColdestKey(t *testing.T) {
	eng := New(1)
	eng.CacheLimit = 2
	eng.cachePut("a", 1)
	eng.cachePut("b", 2)
	// Touch a so b becomes the eviction candidate.
	if _, ok := eng.cacheGet("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	eng.cachePut("c", 3)
	if _, ok := eng.cacheGet("b"); ok {
		t.Fatal("b survived eviction; want the LRU entry evicted")
	}
	if v, ok := eng.cacheGet("a"); !ok || v != 1 {
		t.Fatalf("a = %v, %v after eviction; want 1 (recently used)", v, ok)
	}
	if v, ok := eng.cacheGet("c"); !ok || v != 3 {
		t.Fatalf("c = %v, %v; want 3 (just inserted)", v, ok)
	}
}

// TestLRUUpdateMovesToFront re-putting an existing key must refresh both its
// value and its recency.
func TestLRUUpdateMovesToFront(t *testing.T) {
	eng := New(1)
	eng.CacheLimit = 2
	eng.cachePut("a", 1)
	eng.cachePut("b", 2)
	eng.cachePut("a", 10) // refresh a; b is now LRU
	eng.cachePut("c", 3)
	if _, ok := eng.cacheGet("b"); ok {
		t.Fatal("b survived; want it evicted as LRU")
	}
	if v, ok := eng.cacheGet("a"); !ok || v != 10 {
		t.Fatalf("a = %v, %v; want updated value 10", v, ok)
	}
}

// TestBackendWriteThroughAndWarmStart computes through one engine, then
// checks a second engine sharing the backend serves the result without
// recomputing — the warm-restart path in miniature.
func TestBackendWriteThroughAndWarmStart(t *testing.T) {
	backend := newMapBackend()
	var computes atomic.Int64
	job := Job[int]{
		Key: Fingerprint("warm", 1),
		Run: func(context.Context, *rand.Rand) (int, error) {
			computes.Add(1)
			return 42, nil
		},
	}

	eng1 := New(1)
	eng1.Backend = backend
	got, err := Run(context.Background(), eng1, []Job[int]{job})
	if err != nil || got[0] != 42 {
		t.Fatalf("first run = %v, %v", got, err)
	}
	if backend.puts.Load() != 1 {
		t.Fatalf("backend puts = %d, want 1 (write-through on compute)", backend.puts.Load())
	}

	// A fresh engine (cold memory tier) resolves the same key from the
	// backend without running the job.
	eng2 := New(1)
	eng2.Backend = backend
	got, err = Run(context.Background(), eng2, []Job[int]{job})
	if err != nil || got[0] != 42 {
		t.Fatalf("second run = %v, %v", got, err)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("job computed %d times, want 1 (backend hit)", n)
	}
	tiers := eng2.Tiers()
	if tiers.StoreHits != 1 || tiers.MemoryHits != 0 {
		t.Fatalf("tiers = %+v, want exactly one store hit", tiers)
	}

	// The backend hit was promoted: the next lookup is a memory hit and the
	// backend is not consulted again.
	getsBefore := backend.gets.Load()
	got, err = Run(context.Background(), eng2, []Job[int]{job})
	if err != nil || got[0] != 42 {
		t.Fatalf("third run = %v, %v", got, err)
	}
	if backend.gets.Load() != getsBefore {
		t.Fatal("backend consulted on a memory hit; want promotion to skip it")
	}
	if tiers := eng2.Tiers(); tiers.MemoryHits != 1 {
		t.Fatalf("tiers = %+v, want a memory hit after promotion", tiers)
	}
}

// TestBackendPromotionDoesNotWriteBack a store hit must not be re-Put: the
// record is already on disk.
func TestBackendPromotionDoesNotWriteBack(t *testing.T) {
	backend := newMapBackend()
	backend.m["k"] = 7
	eng := New(1)
	eng.Backend = backend
	if v, ok := eng.cacheGet("k"); !ok || v != 7 {
		t.Fatalf("cacheGet = %v, %v; want backend hit", v, ok)
	}
	if backend.puts.Load() != 0 {
		t.Fatalf("backend puts = %d, want 0 on promotion", backend.puts.Load())
	}
}

// TestTiersStats exercises the counter plumbing behind /v1/healthz.
func TestTiersStats(t *testing.T) {
	backend := newMapBackend()
	eng := New(1)
	eng.Backend = backend
	eng.cacheGet("missing") // memory miss + store miss
	eng.cachePut("k", 1)    // memory + write-through
	eng.cacheGet("k")       // memory hit
	backend.m["disk-only"] = 2
	eng.cacheGet("disk-only") // memory miss + store hit
	got := eng.Tiers()
	want := TierStats{MemoryHits: 1, MemoryMisses: 2, MemoryEntries: 2, StoreHits: 1, StoreMisses: 1}
	if got != want {
		t.Fatalf("Tiers() = %+v, want %+v", got, want)
	}
	var nilEng *Engine
	if s := nilEng.Tiers(); s != (TierStats{}) {
		t.Fatalf("nil engine Tiers() = %+v, want zero", s)
	}
}

// TestCacheHitAllocations guards the memory tier's hit path: an LRU
// move-to-front must not allocate.
func TestCacheHitAllocations(t *testing.T) {
	eng := New(1)
	eng.cachePut("a", 1)
	eng.cachePut("b", 2)
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := eng.cacheGet("a"); !ok {
			t.Fatal("unexpected miss")
		}
		if _, ok := eng.cacheGet("b"); !ok {
			t.Fatal("unexpected miss")
		}
	})
	if allocs > 0 {
		t.Fatalf("cache hit allocates %.1f times; want 0", allocs)
	}
}
