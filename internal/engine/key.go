package engine

import (
	"fmt"
	"strconv"
)

// Keyer lets a value append its own stable key rendering without going
// through reflection.  Implementations must produce exactly the bytes fmt's
// %v verb would (so keys — and therefore the RNG streams seeded from them —
// are unchanged by the fast path), and must depend only on the value: keys
// are cache identities and RNG seeds, so two equal values must render
// identically across runs and platforms.
type Keyer interface {
	AppendKey(b []byte) []byte
}

// Key builds a job fingerprint incrementally without reflection.  The zero
// value is not useful; start with NewKey.  Methods use value receivers and
// return the extended key, so calls chain:
//
//	key := engine.NewKey("noise.mc").Str(fp).Int64(seed).Int(chunk).String()
//
// A Key's backing buffer is owned by the chain that builds it: extend a key
// along one chain only (branching two chains off one prefix would alias the
// buffer).  Each append writes '|' then the value, matching the layout
// Fingerprint has always produced, so typed and reflected paths yield
// byte-identical keys.  The method set is deliberately only what the hot
// key-building loops need; everything else goes through Fingerprint.
type Key struct {
	b []byte
}

// NewKey starts a key with the given domain prefix (no leading separator).
func NewKey(domain string) Key {
	b := make([]byte, 0, 96)
	return Key{b: append(b, domain...)}
}

// String finalises the key.
func (k Key) String() string { return string(k.b) }

// Str appends a separator and a string part.
func (k Key) Str(s string) Key {
	k.b = append(append(k.b, '|'), s...)
	return k
}

// Int appends a separator and a decimal int part.
func (k Key) Int(v int) Key {
	k.b = strconv.AppendInt(append(k.b, '|'), int64(v), 10)
	return k
}

// Int64 appends a separator and a decimal int64 part.
func (k Key) Int64(v int64) Key {
	k.b = strconv.AppendInt(append(k.b, '|'), v, 10)
	return k
}

// Keyer appends a separator and a Keyer-rendered part.
func (k Key) Keyer(v Keyer) Key {
	k.b = v.AppendKey(append(k.b, '|'))
	return k
}

// appendPart renders one fingerprint part.  The typed cases cover the
// experiment layers' common part types without fmt's reflection; every case
// matches the bytes %v would produce for that type, and anything else falls
// back to %v itself, so Fingerprint's output is stable across the rewrite.
func appendPart(b []byte, p any) []byte {
	switch v := p.(type) {
	case string:
		return append(b, v...)
	case int:
		return strconv.AppendInt(b, int64(v), 10)
	case int64:
		return strconv.AppendInt(b, v, 10)
	case float64:
		return strconv.AppendFloat(b, v, 'g', -1, 64)
	case bool:
		return strconv.AppendBool(b, v)
	case Keyer:
		return v.AppendKey(b)
	case error:
		return append(b, v.Error()...)
	case fmt.Stringer:
		return append(b, v.String()...)
	default:
		return fmt.Appendf(b, "%v", p)
	}
}
