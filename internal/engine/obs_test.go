package engine

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"speedofdata/internal/obs"
)

// TestKindOf pins the key→label mapping for both key shapes in use.
func TestKindOf(t *testing.T) {
	cases := map[string]string{
		"qsd|fig4|32|1000":          "fig4",
		"qsd|table1|32":             "table1",
		"circuits.generate|QCLA|32": "circuits.generate",
		"mc|3|1.5":                  "mc",
		"bare":                      "bare",
		"":                          "anon",
	}
	for key, want := range cases {
		if got := kindOf(key); got != want {
			t.Errorf("kindOf(%q) = %q, want %q", key, got, want)
		}
	}
}

// TestEngineInstrument runs a batch twice on an instrumented engine and
// checks the registry view agrees with the engine's own counters.
func TestEngineInstrument(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(2)
	e.Instrument(reg)

	jobs := make([]Job[int], 4)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key: Fingerprint("qsd", "obs-test", i),
			Run: func(context.Context, *rand.Rand) (int, error) {
				time.Sleep(time.Millisecond)
				return i, nil
			},
		}
	}
	for pass := 0; pass < 2; pass++ {
		if _, err := Run(context.Background(), e, jobs); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"qsd_engine_jobs_total 4",       // second pass fully cached
		"qsd_engine_cache_hits_total 4", // the 4 repeats
		"qsd_engine_cache_misses_total 4",
		"qsd_engine_coalesced_total 0",
		"qsd_engine_cache_memory_entries 4",
		`qsd_engine_job_seconds_count{kind="obs-test"} 4`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
	// The histogram recorded the ~1ms jobs.
	h := reg.Histogram("qsd_engine_job_seconds",
		"Compute latency of engine jobs by kind.", obs.Labels{"kind": "obs-test"})
	if p50 := h.Quantile(0.5); p50 < 500*time.Microsecond {
		t.Errorf("job p50 %v, want >= ~1ms", p50)
	}
}

// TestEngineTracePropagation runs a traced batch whose jobs schedule a
// nested batch, and checks the finished trace's span tree: root → outer
// jobs → inner jobs with correct parentage and cache-tier outcomes.
func TestEngineTracePropagation(t *testing.T) {
	tracer := obs.NewTracer(4)
	e := New(2)

	inner := func(ctx context.Context) error {
		jobs := []Job[int]{{
			Key: "stage.inner|x",
			Run: func(context.Context, *rand.Rand) (int, error) { return 1, nil },
		}}
		_, err := Run(ctx, e, jobs)
		return err
	}
	outer := make([]Job[int], 2)
	for i := range outer {
		outer[i] = Job[int]{
			Key: Fingerprint("qsd", "traced", i),
			Run: func(ctx context.Context, _ *rand.Rand) (int, error) {
				return 0, inner(ctx)
			},
		}
	}

	trace := tracer.Start("GET /v1/experiments/traced")
	ctx := obs.ContextWithSpan(context.Background(), trace.Root())
	if _, err := Run(ctx, e, outer); err != nil {
		t.Fatal(err)
	}
	// Second traced run: everything cached.
	trace2 := tracer.Start("GET /v1/experiments/traced")
	ctx2 := obs.ContextWithSpan(context.Background(), trace2.Root())
	if _, err := Run(ctx2, e, outer); err != nil {
		t.Fatal(err)
	}
	tracer.Finish(trace)
	tracer.Finish(trace2)

	got, ok := tracer.Get(trace.ID())
	if !ok {
		t.Fatal("trace not retained")
	}
	spans := got.Spans()
	byID := map[int64]*obs.Span{}
	for _, s := range spans {
		byID[s.ID] = s
	}
	var outerSpans, innerSpans []*obs.Span
	for _, s := range spans {
		switch s.Name {
		case "traced":
			outerSpans = append(outerSpans, s)
		case "stage.inner":
			innerSpans = append(innerSpans, s)
		}
	}
	if len(outerSpans) != 2 {
		t.Fatalf("outer spans %d, want 2", len(outerSpans))
	}
	// The nested batch runs once (first outer job computes it; the second
	// sees a cache hit or coalesces), so at least one inner span exists.
	if len(innerSpans) < 1 {
		t.Fatalf("no inner spans recorded; spans: %+v", spans)
	}
	root := got.Root()
	for _, s := range outerSpans {
		if s.Parent != root.ID {
			t.Errorf("outer span parented to %d, want root %d", s.Parent, root.ID)
		}
		if s.Outcome != "computed" {
			t.Errorf("outer outcome %q, want computed on first run", s.Outcome)
		}
	}
	for _, s := range innerSpans {
		p, ok := byID[s.Parent]
		if !ok || p.Name != "traced" {
			t.Errorf("inner span parented to %v, want an outer job span", s.Parent)
		}
	}

	// The cached second trace marks every outer job as a cache hit.
	got2, _ := tracer.Get(trace2.ID())
	for _, s := range got2.Spans() {
		if s.Name == "traced" && s.Outcome != "cache-memory" {
			t.Errorf("second-run outer outcome %q, want cache-memory", s.Outcome)
		}
	}
}
