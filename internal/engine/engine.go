// Package engine is the shared parallel experiment runner behind every sweep,
// grid and Monte Carlo evaluation in the reproduction.  An experiment layer
// (core, microarch, noise, schedule) describes its work as a slice of Jobs —
// pure functions keyed by a stable fingerprint of their inputs — and Run
// executes them on a worker pool, returning results in job order.
//
// Three properties make the engine safe to drop under existing experiment
// code:
//
//   - Determinism: each job draws randomness only from a *rand.Rand seeded by
//     a stable hash of (engine seed, job key), so results are byte-identical
//     whether the batch runs on one worker or many, and identical across
//     processes and platforms.
//   - Order preservation: Run returns results indexed exactly like the input
//     job slice, so callers keep their presentation order for free.
//   - Memoisation: results are cached by job key — in memory (an LRU tier
//     bounded by CacheLimit entries) and, when a CacheBackend is attached,
//     in a second tier that survives the process (internal/store) — so
//     repeating a job fingerprint (e.g. the same benchmark characterisation
//     feeding two figures, or a restarted server re-serving a grid) returns
//     the cached value without recomputation.
//   - Coalescing: identical jobs that are in flight at the same time (e.g.
//     two HTTP requests racing on the same sweep) are computed once; the
//     followers wait for the leader's result instead of duplicating work
//     (singleflight).  A job must therefore never schedule a nested batch
//     containing its own key, which would wait on itself.
package engine

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"speedofdata/internal/obs"
)

// Job is one unit of experiment work.
type Job[R any] struct {
	// Key is a stable fingerprint of everything the job's result depends on
	// (use Fingerprint).  It seeds the job's RNG stream and keys the result
	// cache.  An empty key disables caching for the job and seeds the RNG
	// from the job's batch index instead.
	Key string
	// Run computes the result.  rng is the job's private deterministic
	// stream; jobs must not use any other randomness source.  Long-running
	// jobs should poll ctx and return ctx.Err() when cancelled.
	Run func(ctx context.Context, rng *rand.Rand) (R, error)
}

// Engine executes job batches on a bounded worker pool with a shared result
// cache.  The zero value runs with GOMAXPROCS workers and no cache; a nil
// *Engine runs sequentially with no cache.  Construct with New for a
// parallel, caching engine.  An Engine is safe for concurrent use, including
// nested Run calls from inside jobs: the worker bound applies to the whole
// engine, not per batch, so fanning out chunks from inside a job never
// multiplies concurrency beyond Workers.
type Engine struct {
	// Workers bounds the total number of jobs executing concurrently across
	// every (possibly nested) Run on this engine; values <= 0 mean
	// GOMAXPROCS.
	Workers int
	// Seed offsets every job's RNG stream.  Engines with equal seeds produce
	// identical results regardless of worker count.
	Seed int64
	// Progress, when set, is called after each job completes with the number
	// of finished jobs in the current batch, the batch size, the job's key,
	// and the trace ID of the request the batch runs under ("" when the batch
	// context carries no trace).  Calls are serialised and done counts are
	// monotonic per batch.
	Progress func(done, total int, key, traceID string)
	// CacheLimit bounds the number of memoised results; 0 means unlimited.
	// When the cache is full, the least-recently-used entry is evicted per
	// insertion, so the memory tier keeps the hottest keys resident (in
	// front of the Backend tier, when one is attached) while capping a
	// long-lived server's memory growth; the one-shot CLI stays unlimited.
	// The memory tier is bounded by entry count; a disk Backend bounds
	// itself by bytes (see internal/store).
	CacheLimit int
	// Backend is an optional second cache tier (typically the disk-backed
	// internal/store).  On a memory miss the engine consults it before
	// computing and promotes hits into the memory tier; computed results are
	// written through.  Evicting a memory entry loses nothing: the entry was
	// already written through when it was computed.  Set it before the first
	// Run and leave it in place; a nil Backend keeps the engine memory-only.
	Backend CacheBackend
	// Partial, when set, receives intermediate results of long-running
	// experiments via PublishPartial (e.g. the refining estimates of a
	// sequential Monte Carlo run).  Unlike Progress it is not tied to job
	// batches: an experiment publishes under its own key with its own
	// monotonically increasing sequence number.  Calls are serialised.
	Partial func(key string, seq int, value any)

	mu    sync.Mutex
	cache map[string]*cacheEntry
	// lru is the recency ring of cache entries: lru.next is the most
	// recently used, lru.prev the eviction candidate.  Only New initialises
	// it (alongside cache); a zero-value Engine has no cache at all.
	lru       cacheEntry
	hits      int
	misses    int
	storeHits int
	storeMiss int
	coalesced int
	inflight  map[string]*flight
	// partialMu serialises PublishPartial calls, separately from mu so
	// publishing never contends with the job hot path.
	partialMu sync.Mutex
	// running counts jobs whose Run function is executing right now, across
	// every concurrent batch.  Cache hits and coalesced followers are not
	// counted: the gauge reflects computation actually in progress, which is
	// what the serving tier's health endpoint reports.
	running atomic.Int64
	// extras grants slots for helper goroutines beyond the one goroutine
	// each Run call already runs jobs on.  Lazily sized to Workers-1.
	extras chan struct{}

	// obsReg and jobsRun are set by Instrument; jobHists caches the per-kind
	// latency histogram so the job path doesn't rebuild a label set per job.
	obsReg   *obs.Registry
	jobsRun  *obs.Counter
	jobHists sync.Map // kind string -> *obs.Histogram
}

// New returns an engine with the given worker bound and an empty cache.
func New(workers int) *Engine {
	e := &Engine{Workers: workers, cache: make(map[string]*cacheEntry)}
	e.lru.next, e.lru.prev = &e.lru, &e.lru
	return e
}

// cacheEntry is one memoised result on the LRU recency ring.
type cacheEntry struct {
	key        string
	val        any
	prev, next *cacheEntry
}

// lruUnlink removes ent from the recency ring.
func (e *Engine) lruUnlink(ent *cacheEntry) {
	ent.prev.next = ent.next
	ent.next.prev = ent.prev
}

// lruFront moves (or inserts) ent to the most-recently-used position.
func (e *Engine) lruFront(ent *cacheEntry) {
	ent.prev = &e.lru
	ent.next = e.lru.next
	ent.prev.next = ent
	ent.next.prev = ent
}

// Sequential returns a single-worker caching engine: the reference executor
// that parallel runs must match byte for byte.
func Sequential() *Engine { return New(1) }

func (e *Engine) workerCount() int {
	if e == nil {
		return 1
	}
	if e.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return e.Workers
}

// CacheStats reports how many jobs were served from the cache and how many
// were computed.
func (e *Engine) CacheStats() (hits, misses int) {
	if e == nil {
		return 0, 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.hits, e.misses
}

// TierStats describes both cache tiers' lookup effectiveness.
type TierStats struct {
	// MemoryHits and MemoryMisses count memory-tier lookups; MemoryEntries
	// is the tier's current size (bounded by CacheLimit).
	MemoryHits, MemoryMisses, MemoryEntries int
	// StoreHits and StoreMisses count the memory misses that went on to the
	// Backend tier and found / did not find the key there.  Both stay zero
	// without a Backend.
	StoreHits, StoreMisses int
}

// Tiers reports the two-tier cache counters.  A memory miss that the
// Backend serves counts as both a MemoryMiss and a StoreHit: the hit-rate of
// each tier is computed over the lookups that reached it.
func (e *Engine) Tiers() TierStats {
	if e == nil {
		return TierStats{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return TierStats{
		MemoryHits:    e.hits,
		MemoryMisses:  e.misses,
		MemoryEntries: len(e.cache),
		StoreHits:     e.storeHits,
		StoreMisses:   e.storeMiss,
	}
}

// InFlight reports how many jobs are executing on the engine at this moment,
// across every concurrent Run batch.  It is the engine-side load signal of
// the HTTP serving tier: /v1/healthz exposes it so an external harness can
// assert the engine has drained after a load burst.
func (e *Engine) InFlight() int {
	if e == nil {
		return 0
	}
	return int(e.running.Load())
}

// Coalesced reports how many jobs were served by waiting on an identical
// in-flight computation instead of recomputing (singleflight hits).
func (e *Engine) Coalesced() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.coalesced
}

// Instrument registers the engine's metrics with reg.  Cache, coalescing
// and in-flight series are func-backed readers of the engine's own counters
// — the engine stays the single source of truth, so /metrics can never
// disagree with Tiers() or /v1/healthz — while the computed-jobs counter
// and per-kind latency histograms are owned here because no existing
// counter covers them.  Call once, before serving.
func (e *Engine) Instrument(reg *obs.Registry) {
	if e == nil || reg == nil {
		return
	}
	e.obsReg = reg
	e.jobsRun = reg.Counter("qsd_engine_jobs_total",
		"Jobs computed by the engine (cache hits and coalesced followers excluded).", nil)
	reg.CounterFunc("qsd_engine_cache_hits_total",
		"Memory-tier cache hits.", nil,
		func() float64 { return float64(e.Tiers().MemoryHits) })
	reg.CounterFunc("qsd_engine_cache_misses_total",
		"Memory-tier cache misses.", nil,
		func() float64 { return float64(e.Tiers().MemoryMisses) })
	reg.CounterFunc("qsd_engine_store_hits_total",
		"Memory misses served by the store tier.", nil,
		func() float64 { return float64(e.Tiers().StoreHits) })
	reg.CounterFunc("qsd_engine_store_misses_total",
		"Memory misses the store tier could not serve.", nil,
		func() float64 { return float64(e.Tiers().StoreMisses) })
	reg.CounterFunc("qsd_engine_coalesced_total",
		"Jobs served by waiting on an identical in-flight computation.", nil,
		func() float64 { return float64(e.Coalesced()) })
	reg.GaugeFunc("qsd_engine_jobs_in_flight",
		"Jobs whose Run function is executing right now.", nil,
		func() float64 { return float64(e.InFlight()) })
	reg.GaugeFunc("qsd_engine_cache_memory_entries",
		"Entries resident in the memory cache tier.", nil,
		func() float64 { return float64(e.Tiers().MemoryEntries) })
}

// jobHist returns the latency histogram for a job kind, or nil when the
// engine is uninstrumented.
func (e *Engine) jobHist(kind string) *obs.Histogram {
	if e == nil || e.obsReg == nil {
		return nil
	}
	if h, ok := e.jobHists.Load(kind); ok {
		return h.(*obs.Histogram)
	}
	h := e.obsReg.Histogram("qsd_engine_job_seconds",
		"Compute latency of engine jobs by kind.", obs.Labels{"kind": kind})
	e.jobHists.Store(kind, h)
	return h
}

// kindOf maps a job key to its metric/span label: the experiment id for
// top-level "qsd|<id>|..." keys, the stage name (first segment) for nested
// keys like "circuits.generate|QCLA|32", "anon" for uncacheable jobs.  The
// label space is bounded by the experiment registry and stage names, as the
// registry requires.
func kindOf(key string) string {
	if key == "" {
		return "anon"
	}
	first, rest, ok := strings.Cut(key, "|")
	if !ok {
		return first
	}
	if first == "qsd" {
		second, _, _ := strings.Cut(rest, "|")
		return second
	}
	return first
}

// flight is one in-progress computation of a job key.  Followers wait on
// done and then read val/err; the leader settles and closes it.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// joinFlight registers interest in the computation of key.  It returns the
// flight and whether the caller is the leader (must compute and settle it).
// A nil flight means singleflight does not apply (empty key or nil engine)
// and the caller should just compute.
func (e *Engine) joinFlight(key string) (*flight, bool) {
	if e == nil || key == "" {
		return nil, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if f, ok := e.inflight[key]; ok {
		e.coalesced++
		return f, false
	}
	if e.inflight == nil {
		e.inflight = make(map[string]*flight)
	}
	f := &flight{done: make(chan struct{})}
	e.inflight[key] = f
	return f, true
}

// settleFlight publishes the leader's result and releases the followers.
func (e *Engine) settleFlight(key string, f *flight, val any, err error) {
	f.val, f.err = val, err
	e.mu.Lock()
	delete(e.inflight, key)
	e.mu.Unlock()
	close(f.done)
}

func (e *Engine) cacheGet(key string) (any, bool) {
	v, _, ok := e.cacheGetTier(key)
	return v, ok
}

// cacheGetTier is cacheGet reporting which tier served the hit
// ("cache-memory" or "cache-store" — the span outcome vocabulary).
func (e *Engine) cacheGetTier(key string) (any, string, bool) {
	if e == nil {
		return nil, "", false
	}
	e.mu.Lock()
	if e.cache == nil || key == "" {
		e.misses++
		e.mu.Unlock()
		return nil, "", false
	}
	if ent, ok := e.cache[key]; ok {
		e.hits++
		e.lruUnlink(ent)
		e.lruFront(ent)
		v := ent.val
		e.mu.Unlock()
		return v, "cache-memory", true
	}
	e.misses++
	backend := e.Backend
	e.mu.Unlock()
	if backend == nil {
		return nil, "", false
	}
	// Memory miss: consult the second tier outside the lock (it may do disk
	// I/O) and promote a hit into the memory tier so repeats stay cheap.
	v, ok := backend.Get(key)
	e.mu.Lock()
	if ok {
		e.storeHits++
		e.memPutLocked(key, v)
	} else {
		e.storeMiss++
	}
	e.mu.Unlock()
	return v, "cache-store", ok
}

func (e *Engine) cachePut(key string, v any) {
	if e == nil || key == "" {
		return
	}
	e.mu.Lock()
	if e.cache == nil {
		e.mu.Unlock()
		return
	}
	e.memPutLocked(key, v)
	backend := e.Backend
	e.mu.Unlock()
	if backend != nil {
		backend.Put(key, v)
	}
}

// memPutLocked inserts or refreshes a memory-tier entry at the front of the
// recency ring, evicting from the back past CacheLimit.  Callers hold e.mu.
func (e *Engine) memPutLocked(key string, v any) {
	if ent, ok := e.cache[key]; ok {
		ent.val = v
		e.lruUnlink(ent)
		e.lruFront(ent)
		return
	}
	if e.CacheLimit > 0 {
		for len(e.cache) >= e.CacheLimit {
			oldest := e.lru.prev
			e.lruUnlink(oldest)
			delete(e.cache, oldest.key)
		}
	}
	ent := &cacheEntry{key: key, val: v}
	e.cache[key] = ent
	e.lruFront(ent)
}

// SeedFor derives the RNG seed of a job from a base seed and the job key via
// FNV-1a, the "stable hash of the job key" that makes parallel batches
// reproduce sequential ones exactly.
func SeedFor(base int64, key string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|", base)
	h.Write([]byte(key))
	return int64(h.Sum64())
}

// Fingerprint joins the %v renderings of its arguments with '|' into a job
// key.  Callers must include every input the job's result depends on.
//
// Strings, ints, floats, bools and Keyer/Stringer values are appended
// through typed fast paths (no reflection); everything else goes through
// %v.  Both produce identical bytes, so keys — and the RNG streams seeded
// from them — are unchanged from the reflection-based implementation.
// Hot loops building many keys with a shared prefix should use NewKey
// directly.
func Fingerprint(parts ...any) string {
	b := make([]byte, 0, 96)
	for i, p := range parts {
		if i > 0 {
			b = append(b, '|')
		}
		b = appendPart(b, p)
	}
	return string(b)
}

// Run executes the batch on e's worker pool and returns the results in job
// order.  A nil engine runs sequentially.  The first job error (or context
// cancellation) cancels the remaining jobs and is returned; results computed
// before the failure are discarded.
//
// The calling goroutine itself runs jobs, and helper goroutines are added
// only while the engine-wide worker budget has spare slots.  A nested Run
// from inside a job therefore executes on the job's own goroutine (plus any
// spare slots) instead of stacking a fresh pool on top of the outer one.
func Run[R any](ctx context.Context, e *Engine, jobs []Job[R]) ([]R, error) {
	out := make([]R, len(jobs))
	if len(jobs) == 0 {
		return out, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		stateMu  sync.Mutex
		firstErr error
		done     int
		next     int
	)
	fail := func(err error) {
		stateMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		stateMu.Unlock()
		cancel()
	}
	// takeJob hands out job indices in order; finish keeps the progress
	// callback serialised and its done count monotonic.
	takeJob := func() (int, bool) {
		stateMu.Lock()
		defer stateMu.Unlock()
		if next >= len(jobs) {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	// Tracing costs one context lookup per batch when off.  When the batch
	// context carries a span (the HTTP middleware put one there, or an outer
	// job's ctx did — core experiments re-expose the job ctx to nested
	// batches), each job gets a child span recording its cache-tier outcome.
	parentSpan := obs.SpanFromContext(ctx)
	traceID := parentSpan.TraceID()
	finish := func(key string) {
		stateMu.Lock()
		done++
		if progress := e.progressFn(); progress != nil {
			progress(done, len(jobs), key, traceID)
		}
		stateMu.Unlock()
	}
	workerLoop := func() {
		for ctx.Err() == nil {
			i, ok := takeJob()
			if !ok {
				return
			}
			job := jobs[i]
			kind := kindOf(job.Key)
			span := parentSpan.Child(kind)
			if v, tier, ok := e.cacheGetTier(job.Key); ok {
				if r, isR := v.(R); isR {
					out[i] = r
					span.EndWith(tier)
					finish(job.Key)
					continue
				}
			}
			fl, leader := e.joinFlight(job.Key)
			if fl != nil && !leader {
				// An identical job is already computing somewhere on this
				// engine (possibly for another Run batch, e.g. a concurrent
				// HTTP request): wait for its result instead of recomputing.
				select {
				case <-ctx.Done():
					return
				case <-fl.done:
				}
				if fl.err != nil {
					span.Fail(fl.err)
					fail(fl.err)
					return
				}
				if r, isR := fl.val.(R); isR {
					out[i] = r
					span.EndWith("coalesced")
					finish(job.Key)
					continue
				}
				// Result type differs across generic instantiations sharing
				// a key; fall through and compute locally.
			}
			seed := SeedFor(e.engineSeed(), job.Key)
			if job.Key == "" {
				seed = SeedFor(e.engineSeed(), fmt.Sprintf("#%d", i))
			}
			jobCtx := ctx
			if span != nil {
				// Nested batches scheduled by this job parent under its span.
				jobCtx = obs.ContextWithSpan(ctx, span)
			}
			start := time.Now()
			var v R
			var err error
			if fl != nil && leader {
				// Settle the flight even if job.Run panics (e.g. a server
				// handler recovering the panic keeps the process alive):
				// otherwise followers of this key would block forever.
				settled := false
				func() {
					e.jobStart()
					defer func() {
						e.jobEnd()
						if !settled {
							e.settleFlight(job.Key, fl, nil,
								fmt.Errorf("engine: job %q panicked", job.Key))
						}
					}()
					v, err = job.Run(jobCtx, rand.New(rand.NewSource(seed)))
					if err == nil {
						e.cachePut(job.Key, v)
					}
					e.settleFlight(job.Key, fl, v, err)
					settled = true
				}()
			} else {
				e.jobStart()
				v, err = job.Run(jobCtx, rand.New(rand.NewSource(seed)))
				e.jobEnd()
				if err == nil {
					e.cachePut(job.Key, v)
				}
			}
			if e != nil {
				e.jobsRun.Inc()
				if h := e.jobHist(kind); h != nil {
					h.Record(time.Since(start))
				}
			}
			if err != nil {
				span.Fail(err)
				fail(err)
				return
			}
			span.EndWith("computed")
			out[i] = v
			finish(job.Key)
		}
	}

	// Spawn helpers only while the engine-wide budget has spare slots; the
	// caller always participates as one worker.
	for spawned := 1; spawned < len(jobs); spawned++ {
		if !e.acquireExtra() {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer e.releaseExtra()
			workerLoop()
		}()
	}
	workerLoop()
	wg.Wait()

	if err := ctx.Err(); err != nil {
		fail(err)
	}
	stateMu.Lock()
	err := firstErr
	stateMu.Unlock()
	if err != nil {
		return nil, err
	}
	return out, nil
}

// acquireExtra tries to claim one engine-wide helper slot without blocking.
func (e *Engine) acquireExtra() bool {
	if e == nil {
		return false
	}
	e.mu.Lock()
	if e.extras == nil {
		n := e.workerCount() - 1
		if n < 0 {
			n = 0
		}
		e.extras = make(chan struct{}, n)
	}
	extras := e.extras
	e.mu.Unlock()
	select {
	case extras <- struct{}{}:
		return true
	default:
		return false
	}
}

func (e *Engine) releaseExtra() {
	e.mu.Lock()
	extras := e.extras
	e.mu.Unlock()
	<-extras
}

// jobStart and jobEnd maintain the in-flight job gauge around Run calls;
// both are safe on a nil engine.
func (e *Engine) jobStart() {
	if e != nil {
		e.running.Add(1)
	}
}

func (e *Engine) jobEnd() {
	if e != nil {
		e.running.Add(-1)
	}
}

func (e *Engine) engineSeed() int64 {
	if e == nil {
		return 0
	}
	return e.Seed
}

func (e *Engine) progressFn() func(done, total int, key, traceID string) {
	if e == nil {
		return nil
	}
	return e.Progress
}

// PublishPartial forwards an intermediate experiment result to the Partial
// callback, if one is installed.  It is safe on a nil engine (no-op) and
// serialises concurrent publishers.
func (e *Engine) PublishPartial(key string, seq int, value any) {
	if e == nil {
		return
	}
	e.partialMu.Lock()
	defer e.partialMu.Unlock()
	if e.Partial != nil {
		e.Partial(key, seq, value)
	}
}
