package engine

import (
	"encoding/gob"
	"reflect"
	"sync"
)

// CacheBackend is a second result-cache tier behind the engine's in-memory
// map.  On a memory miss the engine consults the backend before computing,
// and every computed result is written through to it, so a disk-backed
// implementation (internal/store) turns repeated work into a key lookup that
// survives process restarts and can be shared between processes.
//
// Both methods must be safe for concurrent use.  Put is best-effort: a
// backend that cannot encode or persist a value simply drops it — the
// in-memory tier and the computation itself are never affected, so attaching
// a backend can never change results, only how often they are recomputed.
type CacheBackend interface {
	// Get returns the stored result for key, or ok == false on a miss.
	Get(key string) (v any, ok bool)
	// Put stores a computed result under key.
	Put(key string, v any)
}

// BackendStats describes a cache backend's effectiveness and footprint; the
// serving tier reports it on /v1/healthz.  Backends expose it through the
// optional StatBackend interface.
type BackendStats struct {
	// Hits and Misses count Get lookups that found / did not find a usable
	// record (stale-version and corrupt records count as misses).
	Hits, Misses int64
	// Puts counts records persisted; Skipped counts Put values the backend
	// declined (unregistered result type or encoding failure).
	Puts, Skipped int64
	// Entries is the number of live keys; LiveBytes their record bytes.
	Entries   int
	LiveBytes int64
	// DeadBytes is the garbage awaiting compaction (superseded, evicted and
	// stale-version records); FileBytes the total on-disk segment size.
	DeadBytes, FileBytes int64
	// Evicted counts entries dropped to keep the store under its byte bound;
	// Stale counts records invalidated by a result-type version bump.
	Evicted, Stale int64
	// Compactions counts snapshot+compaction passes;
	// LastCompactionReclaimedBytes and LastCompactionLiveEntries describe
	// the most recent one.
	Compactions                  int64
	LastCompactionReclaimedBytes int64
	LastCompactionLiveEntries    int
	// ReadOnly reports a reader-mode backend (borrowing another process's
	// results; Put is a no-op).
	ReadOnly bool
}

// StatBackend is implemented by backends that report their effectiveness.
type StatBackend interface {
	CacheBackend
	Stats() BackendStats
}

// ResultType describes one registered cacheable result type.
type ResultType struct {
	// Sample is a zero value of the concrete type.
	Sample any
	// Name is the stable type name recorded on disk (reflect's package-
	// qualified rendering, e.g. "report.Section").
	Name string
	// Version is the type's semantic version.  Records written under a
	// different version are invalid.
	Version int
}

var (
	resultTypeMu     sync.RWMutex
	resultTypeByType = map[reflect.Type]ResultType{}
	resultTypeByName = map[string]ResultType{}
)

// RegisterResultType declares that cached results of sample's concrete type
// may be persisted by a CacheBackend, and registers the type with gob so the
// backend can encode it.  version is the type's semantic version: bump it
// whenever a code change alters the meaning of the computation behind the
// type's job keys (new fields derived differently, changed units, a fixed
// bug in the producing simulation), and every record persisted under the old
// version becomes invalid — the on-disk analogue of the cache-key-namespace
// discipline that keeps in-memory results honest across samplers.
//
// Unregistered result types are simply never persisted (they stay in the
// memory tier), so registration is an opt-in per type.  Re-registering a
// type replaces its version, which is how tests exercise invalidation.
// Register from an init function: backends snapshot versions per lookup, but
// a store opened before registration cannot decode the type's records.
func RegisterResultType(sample any, version int) {
	t := reflect.TypeOf(sample)
	if t == nil {
		panic("engine: RegisterResultType of untyped nil")
	}
	gob.Register(sample)
	rt := ResultType{Sample: sample, Name: t.String(), Version: version}
	resultTypeMu.Lock()
	defer resultTypeMu.Unlock()
	resultTypeByType[t] = rt
	resultTypeByName[rt.Name] = rt
}

// ResultTypeOf returns the registration of v's concrete type.
func ResultTypeOf(v any) (ResultType, bool) {
	resultTypeMu.RLock()
	defer resultTypeMu.RUnlock()
	rt, ok := resultTypeByType[reflect.TypeOf(v)]
	return rt, ok
}

// ResultTypeByName returns the registration for a stored type name.
func ResultTypeByName(name string) (ResultType, bool) {
	resultTypeMu.RLock()
	defer resultTypeMu.RUnlock()
	rt, ok := resultTypeByName[name]
	return rt, ok
}
