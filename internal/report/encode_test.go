package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

// tricky holds float values whose compact text rendering loses precision;
// machine encoders must preserve them exactly.
var tricky = []float64{
	10.076261560928119,
	2.9e-05,
	1.0 / 3.0,
	147384.00000000003,
	0,
}

func trickyDoc() Document {
	tb := Table{Title: "T", Headers: []string{"name", "value"}}
	for _, v := range tricky {
		tb.AddRow("v", v)
	}
	s := Series{Title: "S", XLabel: "x", YLabel: "y"}
	s.Add(1.0/3.0, 10.076261560928119)
	var d Document
	d.Add("exp", tb, Text("note\n"), s)
	return d
}

// TestJSONRoundTripsFullPrecision is the regression test for the historical
// precision loss: FormatFloat rendered 10.076261560928119 as "10.1" and that
// string was all any consumer could get.  The JSON encoder must emit the
// typed cell value so it round-trips to the exact same float64.
func TestJSONRoundTripsFullPrecision(t *testing.T) {
	var buf bytes.Buffer
	if err := trickyDoc().Encode(&buf, FormatJSON); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Sections []struct {
			ID     string `json:"id"`
			Blocks []struct {
				Type  string `json:"type"`
				Table *struct {
					Rows [][]any `json:"rows"`
				} `json:"table"`
				Series *struct {
					Points []struct{ X, Y float64 } `json:"points"`
				} `json:"series"`
				Text string `json:"text"`
			} `json:"blocks"`
		} `json:"sections"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded.Sections) != 1 || decoded.Sections[0].ID != "exp" {
		t.Fatalf("unexpected sections: %s", buf.String())
	}
	blocks := decoded.Sections[0].Blocks
	if len(blocks) != 3 || blocks[0].Type != "table" || blocks[1].Type != "text" || blocks[2].Type != "series" {
		t.Fatalf("unexpected block layout: %s", buf.String())
	}
	for i, v := range tricky {
		got, ok := blocks[0].Table.Rows[i][1].(float64)
		if !ok || got != v {
			t.Errorf("row %d: JSON value %v (%T) does not round-trip %v exactly", i, blocks[0].Table.Rows[i][1], blocks[0].Table.Rows[i][1], v)
		}
	}
	p := blocks[2].Series.Points[0]
	if p.X != 1.0/3.0 || p.Y != 10.076261560928119 {
		t.Errorf("series point lost precision: %+v", p)
	}
	if blocks[1].Text != "note\n" {
		t.Errorf("text block = %q", blocks[1].Text)
	}
}

// TestTextStaysCompact pins the text encoder to the seed renderer's exact
// bytes: compact floats via FormatFloat, aligned columns, banner-separated
// sections — full precision is reserved for the machine formats.
func TestTextStaysCompact(t *testing.T) {
	tb := Table{Title: "T", Headers: []string{"name", "value"}}
	tb.AddRow("a", 10.076261560928119)
	tb.AddRow("b", 2.9e-05)
	var d Document
	d.Add("one", tb)
	d.Add("two", Text("tail\n"))
	want := "" +
		"=== one ===\n" +
		"T\n" +
		"name  value     \n" +
		"----------------\n" +
		"a     10.1      \n" +
		"b     2.90e-05  \n" +
		"\n" +
		"=== two ===\n" +
		"tail\n"
	var buf bytes.Buffer
	if err := d.Encode(&buf, FormatText); err != nil {
		t.Fatal(err)
	}
	if buf.String() != want {
		t.Errorf("text encoding drifted from the seed renderer:\ngot:\n%q\nwant:\n%q", buf.String(), want)
	}
	if buf.String() != d.String() {
		t.Error("Encode(text) and String() disagree")
	}
}

func TestCSVFullPrecision(t *testing.T) {
	var buf bytes.Buffer
	if err := trickyDoc().Encode(&buf, FormatCSV); err != nil {
		t.Fatal(err)
	}
	cr := csv.NewReader(&buf)
	cr.FieldsPerRecord = -1 // record width varies with block kind
	recs, err := cr.ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v", err)
	}
	// table header + 5 rows + text + series header + 1 point
	if len(recs) != 9 {
		t.Fatalf("expected 9 records, got %d: %v", len(recs), recs)
	}
	if recs[0][0] != "exp" || recs[0][1] != "header" {
		t.Errorf("bad header record: %v", recs[0])
	}
	if got := recs[1][3]; got != "10.076261560928119" {
		t.Errorf("CSV float lost precision: %q", got)
	}
	if recs[6][1] != "text" || recs[6][2] != "note\n" {
		t.Errorf("bad text record: %v", recs[6])
	}
	if recs[8][2] != "0.3333333333333333" {
		t.Errorf("series X lost precision: %v", recs[8])
	}
}

func TestParseFormat(t *testing.T) {
	for in, want := range map[string]Format{"": FormatText, "text": FormatText, "json": FormatJSON, "csv": FormatCSV} {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("ParseFormat should reject xml")
	}
	if _, err := ParseFormat("xml"); err != nil && !strings.Contains(err.Error(), "xml") {
		t.Errorf("error should name the bad format: %v", err)
	}
}

func TestSectionText(t *testing.T) {
	sec := NewSection("id", Text("a\n"), Text("b\n"))
	if sec.Text() != "a\nb\n" {
		t.Errorf("Section.Text = %q", sec.Text())
	}
}
