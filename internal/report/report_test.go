package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := Table{
		Title:   "Table X",
		Headers: []string{"Circuit", "Latency (us)", "Share"},
	}
	tb.AddRow("32-Bit QRCA", 29508.0, "5.2%")
	tb.AddRow("32-Bit QCLA", 3827.0, "5.3%")
	out := tb.String()
	if !strings.Contains(out, "Table X") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "32-Bit QRCA") || !strings.Contains(out, "29508") {
		t.Errorf("missing row content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, header, separator, two rows.
	if len(lines) != 5 {
		t.Errorf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	// Columns must align: both data rows start their second column at the
	// same offset.
	idx1 := strings.Index(lines[3], "29508")
	idx2 := strings.Index(lines[4], "3827")
	if idx1 != idx2 {
		t.Errorf("columns not aligned:\n%s", out)
	}
}

func TestTableWithoutHeaders(t *testing.T) {
	tb := Table{}
	tb.AddRow("a", 1)
	out := tb.String()
	if strings.Contains(out, "---") {
		t.Error("no separator expected without headers")
	}
	if !strings.Contains(out, "a") {
		t.Error("missing cell")
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		3:       "3",
		3.14159: "3.1",
		0.00029: "2.90e-04",
		29508:   "29508",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestSeriesRendering(t *testing.T) {
	s := Series{Title: "Figure 8", XLabel: "ancillae/ms", YLabel: "ms", Width: 20}
	s.Add(10, 100)
	s.Add(20, 50)
	s.Add(40, 25)
	out := s.String()
	if !strings.Contains(out, "Figure 8") || !strings.Contains(out, "ancillae/ms") {
		t.Error("missing labels")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	// The first point has the maximum Y and should have the longest bar.
	if strings.Count(lines[2], "#") <= strings.Count(lines[3], "#") {
		t.Errorf("bars not scaled to Y:\n%s", out)
	}
}

func TestSeriesEmptyAndZero(t *testing.T) {
	s := Series{}
	s.Add(1, 0)
	out := s.String()
	if !strings.Contains(out, "0") {
		t.Error("zero point should render")
	}
	if strings.Contains(out, "#") {
		t.Error("zero values should have empty bars")
	}
}
