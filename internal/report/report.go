// Package report renders experiment results as aligned plain-text tables and
// simple ASCII series, the output format of the qsd command-line tool and of
// EXPERIMENTS.md regeneration.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row built from arbitrary values formatted with %v
// (float64 values are formatted compactly).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: integers without decimals, small
// values in scientific notation, everything else with one decimal.
func FormatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) < 0.01:
		return fmt.Sprintf("%.2e", v)
	case math.Abs(v-math.Round(v)) < 1e-9 && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

// String renders the table with aligned columns.
func (t Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if len(t.Headers) > 0 {
		measure(t.Headers)
	}
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
		}
		b.WriteString("\n")
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total))
		b.WriteString("\n")
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Series is a one-dimensional curve rendered as an ASCII bar chart, used for
// the figure reproductions.
type Series struct {
	Title  string
	XLabel string
	YLabel string
	Points []SeriesPoint
	// Width is the bar width in characters (default 50).
	Width int
}

// SeriesPoint is one (x, y) sample.
type SeriesPoint struct {
	X, Y float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, SeriesPoint{X: x, Y: y})
}

// String renders the series with one bar per point, scaled to the maximum Y.
func (s Series) String() string {
	width := s.Width
	if width <= 0 {
		width = 50
	}
	maxY := 0.0
	for _, p := range s.Points {
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	var b strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&b, "%s\n", s.Title)
	}
	if s.XLabel != "" || s.YLabel != "" {
		fmt.Fprintf(&b, "x: %s, y: %s\n", s.XLabel, s.YLabel)
	}
	for _, p := range s.Points {
		bar := 0
		if maxY > 0 {
			bar = int(math.Round(p.Y / maxY * float64(width)))
		}
		fmt.Fprintf(&b, "%12s | %-*s %s\n", FormatFloat(p.X), width, strings.Repeat("#", bar), FormatFloat(p.Y))
	}
	return b.String()
}

// Section is one rendered experiment: a stable identifier (the experiment id
// the qsd tool accepts) plus its rendered text.
type Section struct {
	ID   string
	Body string
}

// Document collects rendered experiment sections in presentation order.  The
// qsd tool regenerates every table and figure by running experiments as
// engine jobs that each produce one Section body, then rendering the
// collected results through this single code path.
type Document struct {
	Sections []Section
}

// Add appends a section.
func (d *Document) Add(id, body string) {
	d.Sections = append(d.Sections, Section{ID: id, Body: body})
}

// String renders the document.  A single section prints bare; multiple
// sections are separated by "=== id ===" banners.
func (d Document) String() string {
	if len(d.Sections) == 1 {
		return d.Sections[0].Body
	}
	var b strings.Builder
	for i, s := range d.Sections {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "=== %s ===\n%s", s.ID, s.Body)
	}
	return b.String()
}
