// Package report models experiment results as structured documents — typed
// tables, (x, y) series and free-form notes grouped into sections — and
// renders them through pluggable encoders: aligned plain text (the historical
// qsd output format, byte-for-byte), JSON and CSV.
//
// Values stay typed all the way to the encoder.  A Cell holds the original
// Go value; the text encoder applies the paper's compact float formatting
// (FormatFloat) while the machine-readable encoders emit full-precision
// values, so a JSON consumer can round-trip every number exactly even though
// the terminal rendering rounds for readability.
package report

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Cell is one typed table value.  The zero Cell holds nil and renders empty.
type Cell struct {
	v any
}

// CellOf wraps a value in a Cell.
func CellOf(v any) Cell { return Cell{v: v} }

// Value returns the wrapped value.
func (c Cell) Value() any { return c.v }

// Text renders the cell for the plain-text encoder: floats compactly via
// FormatFloat, strings verbatim, everything else with %v.
func (c Cell) Text() string {
	switch v := c.v.(type) {
	case nil:
		return ""
	case float64:
		return FormatFloat(v)
	case string:
		return v
	default:
		return fmt.Sprintf("%v", v)
	}
}

// Machine renders the cell for machine-readable encoders (CSV): floats at
// full round-trip precision, strings verbatim, everything else with %v.
func (c Cell) Machine() string {
	switch v := c.v.(type) {
	case nil:
		return ""
	case float64:
		return strconv.FormatFloat(v, 'g', -1, 64)
	case string:
		return v
	default:
		return fmt.Sprintf("%v", v)
	}
}

// Table is a titled grid of typed cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]Cell
}

// AddRow appends a row of arbitrary values, each stored as a typed Cell.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]Cell, len(cells))
	for i, c := range cells {
		row[i] = CellOf(c)
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: integers without decimals, small
// values in scientific notation, everything else with one decimal.  It is
// the text encoder's float format; machine-readable encoders bypass it and
// emit full precision (see Cell.Machine and the JSON encoder).
func FormatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) < 0.01:
		return fmt.Sprintf("%.2e", v)
	case math.Abs(v-math.Round(v)) < 1e-9 && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

// String renders the table as plain text with aligned columns.
func (t Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	text := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		text[i] = make([]string, len(r))
		for j, c := range r {
			text[i][j] = c.Text()
		}
	}
	if len(t.Headers) > 0 {
		measure(t.Headers)
	}
	for _, r := range text {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
		}
		b.WriteString("\n")
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total))
		b.WriteString("\n")
	}
	for _, r := range text {
		writeRow(r)
	}
	return b.String()
}

// Series is a one-dimensional curve rendered as an ASCII bar chart by the
// text encoder and as an (x, y) point list by the machine encoders, used for
// the figure reproductions.
type Series struct {
	Title  string
	XLabel string
	YLabel string
	Points []SeriesPoint
	// Width is the bar width in characters (default 50).
	Width int
}

// SeriesPoint is one (x, y) sample.
type SeriesPoint struct {
	X, Y float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, SeriesPoint{X: x, Y: y})
}

// String renders the series with one bar per point, scaled to the maximum Y.
func (s Series) String() string {
	width := s.Width
	if width <= 0 {
		width = 50
	}
	maxY := 0.0
	for _, p := range s.Points {
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	var b strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&b, "%s\n", s.Title)
	}
	if s.XLabel != "" || s.YLabel != "" {
		fmt.Fprintf(&b, "x: %s, y: %s\n", s.XLabel, s.YLabel)
	}
	for _, p := range s.Points {
		bar := 0
		if maxY > 0 {
			bar = int(math.Round(p.Y / maxY * float64(width)))
		}
		fmt.Fprintf(&b, "%12s | %-*s %s\n", FormatFloat(p.X), width, strings.Repeat("#", bar), FormatFloat(p.Y))
	}
	return b.String()
}

// Text is a free-form preformatted block (summary lines, footnotes).  The
// text encoder emits it verbatim; machine encoders carry it as a note.
type Text string

// Block is one content element of a Section: a Table, a Series or a Text
// note.
type Block interface {
	// blockText renders the block for the plain-text encoder.
	blockText() string
}

func (t Table) blockText() string  { return t.String() }
func (s Series) blockText() string { return s.String() }
func (t Text) blockText() string   { return string(t) }

// Section is one rendered experiment: a stable identifier (the experiment id
// the qsd tool and the HTTP API accept) plus its content blocks in
// presentation order.
type Section struct {
	ID     string
	Blocks []Block
}

// NewSection builds a section from blocks.
func NewSection(id string, blocks ...Block) Section {
	return Section{ID: id, Blocks: blocks}
}

// Text renders the section's blocks as concatenated plain text.
func (s Section) Text() string {
	var b strings.Builder
	for _, blk := range s.Blocks {
		b.WriteString(blk.blockText())
	}
	return b.String()
}

// Document collects experiment sections in presentation order.  The qsd tool
// and the HTTP server regenerate every table and figure by running
// experiments as engine jobs that each produce one Section, then encoding
// the collected results through this single code path.
type Document struct {
	Sections []Section
}

// Add appends a section made of the given blocks.
func (d *Document) Add(id string, blocks ...Block) {
	d.Sections = append(d.Sections, Section{ID: id, Blocks: blocks})
}

// AddSection appends a prebuilt section.
func (d *Document) AddSection(s Section) {
	d.Sections = append(d.Sections, s)
}

// String renders the document as plain text.  A single section prints bare;
// multiple sections are separated by "=== id ===" banners.
func (d Document) String() string {
	if len(d.Sections) == 1 {
		return d.Sections[0].Text()
	}
	var b strings.Builder
	for i, s := range d.Sections {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "=== %s ===\n%s", s.ID, s.Text())
	}
	return b.String()
}
