package report

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"
)

func gobRoundTrip(t *testing.T, s Section) Section {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	var out Section
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("gob decode: %v", err)
	}
	return out
}

// TestSectionGobRoundTripRendersIdentically is the property the persistent
// store relies on: a section decoded from its gob payload must render
// byte-identically to the original in every output format.
func TestSectionGobRoundTripRendersIdentically(t *testing.T) {
	table := Table{Title: "t", Headers: []string{"a", "b", "c", "d"}}
	table.AddRow("row", 3.14159, 42, true)
	table.AddRow("edge", math.Inf(1), int64(-9), uint64(1<<63))
	table.AddRow("tiny", 1.2345678901234567e-300, float32(0.25), nil)
	table.AddRow("zero", math.Copysign(0, -1), 0, false)
	series := Series{Title: "s", XLabel: "x", YLabel: "y"}
	series.Add(0.1, 0.2)
	series.Add(math.Pi, -1e-9)
	orig := NewSection("sec", table, series, Text("a note"))

	got := gobRoundTrip(t, orig)

	for _, f := range []Format{FormatText, FormatJSON, FormatCSV} {
		var want, have bytes.Buffer
		dWant := Document{Sections: []Section{orig}}
		dHave := Document{Sections: []Section{got}}
		if err := dWant.Encode(&want, f); err != nil {
			t.Fatalf("encode original (%v): %v", f, err)
		}
		if err := dHave.Encode(&have, f); err != nil {
			t.Fatalf("encode round-tripped (%v): %v", f, err)
		}
		if !bytes.Equal(want.Bytes(), have.Bytes()) {
			t.Errorf("format %v renders differently after gob round trip:\n--- original\n%s\n--- round-tripped\n%s",
				f, want.Bytes(), have.Bytes())
		}
	}
}

// TestCellGobPreservesExactTypes the decoded cell must hold the same concrete
// Go type and bits, not a lossy rendering.
func TestCellGobPreservesExactTypes(t *testing.T) {
	for _, v := range []any{
		nil, "s", "", 3.25, math.Inf(-1), 7, int64(-1), uint64(1 << 63),
		true, false, float32(1.5),
	} {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(CellOf(v)); err != nil {
			t.Fatalf("encode %#v: %v", v, err)
		}
		var c Cell
		if err := gob.NewDecoder(&buf).Decode(&c); err != nil {
			t.Fatalf("decode %#v: %v", v, err)
		}
		if c.Value() != v {
			t.Errorf("round trip of %#v (%T) = %#v (%T)", v, v, c.Value(), c.Value())
		}
	}
	// NaN compares unequal to itself; check the bits instead.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(CellOf(math.NaN())); err != nil {
		t.Fatal(err)
	}
	var c Cell
	if err := gob.NewDecoder(&buf).Decode(&c); err != nil {
		t.Fatal(err)
	}
	f, ok := c.Value().(float64)
	if !ok || math.Float64bits(f) != math.Float64bits(math.NaN()) {
		t.Errorf("NaN round trip = %#v", c.Value())
	}
	// -0.0 must keep its sign bit.
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(CellOf(math.Copysign(0, -1))); err != nil {
		t.Fatal(err)
	}
	if err := gob.NewDecoder(&buf).Decode(&c); err != nil {
		t.Fatal(err)
	}
	f, ok = c.Value().(float64)
	if !ok || math.Signbit(f) != true {
		t.Errorf("-0.0 round trip = %#v, sign lost", c.Value())
	}
}

// TestCellGobRejectsUnregisteredType a cell holding an unregistered concrete
// type must fail to encode (so the store skips the section) rather than be
// stored lossily.
func TestCellGobRejectsUnregisteredType(t *testing.T) {
	type opaque struct{ X int }
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(CellOf(opaque{X: 1}))
	if err == nil {
		t.Fatal("encoding a cell with an unregistered type succeeded; want an error")
	}
}
