package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Format selects a document encoding.
type Format string

const (
	// FormatText is the aligned plain-text rendering, byte-identical to the
	// historical qsd output.
	FormatText Format = "text"
	// FormatJSON is a structured JSON document with full-precision values.
	FormatJSON Format = "json"
	// FormatCSV is a flat CSV stream with full-precision values.
	FormatCSV Format = "csv"
)

// ParseFormat parses a -format flag or ?format= query value.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case FormatText, FormatJSON, FormatCSV:
		return Format(s), nil
	case "":
		return FormatText, nil
	}
	return "", fmt.Errorf("report: unknown format %q (want text, json or csv)", s)
}

// ContentType returns the HTTP content type of the format.
func (f Format) ContentType() string {
	switch f {
	case FormatJSON:
		return "application/json; charset=utf-8"
	case FormatCSV:
		return "text/csv; charset=utf-8"
	default:
		return "text/plain; charset=utf-8"
	}
}

// Encode writes the document to w in the given format.
func (d Document) Encode(w io.Writer, f Format) error {
	switch f {
	case FormatJSON:
		return d.encodeJSON(w)
	case FormatCSV:
		return d.encodeCSV(w)
	case FormatText, "":
		_, err := io.WriteString(w, d.String())
		return err
	}
	return fmt.Errorf("report: unknown format %q", f)
}

// jsonDocument mirrors Document for encoding.
type jsonDocument struct {
	Sections []jsonSection `json:"sections"`
}

type jsonSection struct {
	ID     string      `json:"id"`
	Blocks []jsonBlock `json:"blocks"`
}

// jsonBlock is the tagged union of block kinds.  Exactly one of Table,
// Series and Text is set, according to Type.
type jsonBlock struct {
	Type   string      `json:"type"`
	Table  *jsonTable  `json:"table,omitempty"`
	Series *jsonSeries `json:"series,omitempty"`
	Text   string      `json:"text,omitempty"`
}

type jsonTable struct {
	Title   string   `json:"title,omitempty"`
	Headers []string `json:"headers,omitempty"`
	Rows    [][]any  `json:"rows"`
}

type jsonSeries struct {
	Title  string        `json:"title,omitempty"`
	XLabel string        `json:"xlabel,omitempty"`
	YLabel string        `json:"ylabel,omitempty"`
	Points []SeriesPoint `json:"points"`
}

// MarshalJSON emits the point as {"x": ..., "y": ...}.
func (p SeriesPoint) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		X float64 `json:"x"`
		Y float64 `json:"y"`
	}{p.X, p.Y})
}

// jsonValue returns the cell's value for JSON encoding.  Values the encoder
// cannot represent (channels, functions, NaN/Inf floats) fall back to their
// %v string so one odd cell never fails a whole document.
func (c Cell) jsonValue() any {
	if f, ok := c.v.(float64); ok {
		// JSON has no NaN/Inf literals.
		if _, err := json.Marshal(f); err != nil {
			return c.Machine()
		}
		return f
	}
	if c.v == nil {
		return nil
	}
	if _, err := json.Marshal(c.v); err != nil {
		return fmt.Sprintf("%v", c.v)
	}
	return c.v
}

func (d Document) encodeJSON(w io.Writer) error {
	doc := jsonDocument{Sections: make([]jsonSection, len(d.Sections))}
	for i, s := range d.Sections {
		js := jsonSection{ID: s.ID, Blocks: make([]jsonBlock, 0, len(s.Blocks))}
		for _, blk := range s.Blocks {
			switch b := blk.(type) {
			case Table:
				jt := &jsonTable{Title: b.Title, Headers: b.Headers, Rows: make([][]any, len(b.Rows))}
				for r, row := range b.Rows {
					cells := make([]any, len(row))
					for c, cell := range row {
						cells[c] = cell.jsonValue()
					}
					jt.Rows[r] = cells
				}
				js.Blocks = append(js.Blocks, jsonBlock{Type: "table", Table: jt})
			case Series:
				points := b.Points
				if points == nil {
					points = []SeriesPoint{}
				}
				js.Blocks = append(js.Blocks, jsonBlock{Type: "series", Series: &jsonSeries{
					Title: b.Title, XLabel: b.XLabel, YLabel: b.YLabel, Points: points,
				}})
			case Text:
				js.Blocks = append(js.Blocks, jsonBlock{Type: "text", Text: string(b)})
			default:
				js.Blocks = append(js.Blocks, jsonBlock{Type: "text", Text: blk.blockText()})
			}
		}
		doc.Sections[i] = js
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// encodeCSV flattens the document into one CSV stream.  Every record is
// prefixed with the section id and the kind of the record: "header" records
// carry table headers (or series axis labels), "row" records carry
// full-precision cell values, "text" records carry free-form notes.
func (d Document) encodeCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	for _, s := range d.Sections {
		for _, blk := range s.Blocks {
			switch b := blk.(type) {
			case Table:
				if len(b.Headers) > 0 {
					if err := cw.Write(append([]string{s.ID, "header"}, b.Headers...)); err != nil {
						return err
					}
				}
				for _, row := range b.Rows {
					rec := make([]string, 2, 2+len(row))
					rec[0], rec[1] = s.ID, "row"
					for _, cell := range row {
						rec = append(rec, cell.Machine())
					}
					if err := cw.Write(rec); err != nil {
						return err
					}
				}
			case Series:
				x, y := b.XLabel, b.YLabel
				if x == "" {
					x = "x"
				}
				if y == "" {
					y = "y"
				}
				if err := cw.Write([]string{s.ID, "header", x, y}); err != nil {
					return err
				}
				for _, p := range b.Points {
					if err := cw.Write([]string{s.ID, "row",
						strconv.FormatFloat(p.X, 'g', -1, 64),
						strconv.FormatFloat(p.Y, 'g', -1, 64)}); err != nil {
						return err
					}
				}
			case Text:
				if err := cw.Write([]string{s.ID, "text", string(b)}); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
