package report

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
)

// Sections travel through the engine's persistent cache tier
// (internal/store) as gob payloads, so the Block implementations must be
// registered and Cell — whose value is deliberately unexported — needs an
// explicit wire format.
func init() {
	gob.Register(Table{})
	gob.Register(Series{})
	gob.Register(Text(""))
}

// Cell wire format: one tag byte followed by the value.  The scalar tags
// cover every type the experiment layers put in cells and preserve the exact
// Go type and bits, so a section decoded from disk renders byte-identically
// in every encoder (text %v formatting, JSON and CSV full precision).
const (
	cellNil     byte = iota // no payload
	cellString              // raw bytes
	cellFloat64             // 8-byte big-endian IEEE 754 bits
	cellInt                 // varint
	cellInt64               // varint
	cellUint64              // uvarint
	cellBool                // one byte, 0 or 1
	cellFloat32             // 4-byte big-endian IEEE 754 bits
	cellGob                 // gob-encoded interface (type must be gob-registered)
)

// GobEncode implements gob.GobEncoder.  Cells holding a type outside the
// scalar fast paths fall back to a nested gob encoding, which fails for
// unregistered concrete types — the error propagates so a store declines to
// persist the section instead of storing a lossy rendering.
func (c Cell) GobEncode() ([]byte, error) {
	switch v := c.v.(type) {
	case nil:
		return []byte{cellNil}, nil
	case string:
		return append([]byte{cellString}, v...), nil
	case float64:
		var b [9]byte
		b[0] = cellFloat64
		binary.BigEndian.PutUint64(b[1:], math.Float64bits(v))
		return b[:], nil
	case int:
		return binary.AppendVarint([]byte{cellInt}, int64(v)), nil
	case int64:
		return binary.AppendVarint([]byte{cellInt64}, v), nil
	case uint64:
		return binary.AppendUvarint([]byte{cellUint64}, v), nil
	case bool:
		b := []byte{cellBool, 0}
		if v {
			b[1] = 1
		}
		return b, nil
	case float32:
		var b [5]byte
		b[0] = cellFloat32
		binary.BigEndian.PutUint32(b[1:], math.Float32bits(v))
		return b[:], nil
	default:
		var buf bytes.Buffer
		buf.WriteByte(cellGob)
		if err := gob.NewEncoder(&buf).Encode(&c.v); err != nil {
			return nil, fmt.Errorf("report: cell value %T: %w", c.v, err)
		}
		return buf.Bytes(), nil
	}
}

// GobDecode implements gob.GobDecoder.
func (c *Cell) GobDecode(data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("report: empty cell encoding")
	}
	tag, payload := data[0], data[1:]
	switch tag {
	case cellNil:
		c.v = nil
	case cellString:
		c.v = string(payload)
	case cellFloat64:
		if len(payload) != 8 {
			return fmt.Errorf("report: bad float64 cell length %d", len(payload))
		}
		c.v = math.Float64frombits(binary.BigEndian.Uint64(payload))
	case cellInt:
		v, n := binary.Varint(payload)
		if n <= 0 {
			return fmt.Errorf("report: bad int cell")
		}
		c.v = int(v)
	case cellInt64:
		v, n := binary.Varint(payload)
		if n <= 0 {
			return fmt.Errorf("report: bad int64 cell")
		}
		c.v = v
	case cellUint64:
		v, n := binary.Uvarint(payload)
		if n <= 0 {
			return fmt.Errorf("report: bad uint64 cell")
		}
		c.v = v
	case cellBool:
		if len(payload) != 1 {
			return fmt.Errorf("report: bad bool cell length %d", len(payload))
		}
		c.v = payload[0] != 0
	case cellFloat32:
		if len(payload) != 4 {
			return fmt.Errorf("report: bad float32 cell length %d", len(payload))
		}
		c.v = math.Float32frombits(binary.BigEndian.Uint32(payload))
	case cellGob:
		var v any
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&v); err != nil {
			return fmt.Errorf("report: cell gob payload: %w", err)
		}
		c.v = v
	default:
		return fmt.Errorf("report: unknown cell tag %d", tag)
	}
	return nil
}
