package microarch

import (
	"fmt"
	"math"

	"speedofdata/internal/iontrap"
	"speedofdata/internal/quantum"
)

// Result summarises one simulation run.
type Result struct {
	Arch Architecture
	// ExecutionTime is the simulated makespan.
	ExecutionTime iontrap.Microseconds
	// AncillaFactoryArea is the ancilla-generation area of the configuration
	// (Figure 15's x axis).
	AncillaFactoryArea iontrap.Area
	// Teleports counts encoded-qubit teleportations performed.
	Teleports int
	// CacheMisses counts compute-cache misses (CQLA/GCQLA only).
	CacheMisses int
	// AncillaeConsumed counts encoded zero ancillae drawn from generators.
	AncillaeConsumed int
}

// ExecutionTimeMs is the makespan in milliseconds.
func (r Result) ExecutionTimeMs() float64 { return r.ExecutionTime.Milliseconds() }

// pool is a token-bucket ancilla source: production accumulates at a steady
// rate and consumption is tracked cumulatively, so the time at which the n-th
// ancilla becomes available is n/rate.
type pool struct {
	ratePerUs float64
	consumed  float64
}

// acquire reserves n ancillae and returns the earliest time they are all
// available.
func (p *pool) acquire(n float64) float64 {
	p.consumed += n
	if p.ratePerUs <= 0 {
		return math.Inf(1)
	}
	return p.consumed / p.ratePerUs
}

// lruCache is the CQLA compute cache: a fixed number of data-qubit slots with
// least-recently-used replacement.
type lruCache struct {
	capacity int
	stamp    int64
	entries  map[int]int64 // qubit -> last use stamp
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{capacity: capacity, entries: make(map[int]int64, capacity)}
}

// touch marks a qubit as resident and most recently used, reporting whether
// the access missed and whether the miss required evicting another qubit.
func (c *lruCache) touch(q int) (miss, evicted bool) {
	c.stamp++
	if _, ok := c.entries[q]; ok {
		c.entries[q] = c.stamp
		return false, false
	}
	miss = true
	if len(c.entries) >= c.capacity {
		oldestQ, oldest := -1, int64(math.MaxInt64)
		for qq, s := range c.entries {
			if s < oldest {
				oldest, oldestQ = s, qq
			}
		}
		delete(c.entries, oldestQ)
		evicted = true
	}
	c.entries[q] = c.stamp
	return miss, evicted
}

// Simulate runs the dataflow simulation of a logical circuit on the selected
// microarchitecture.  Gates issue in first-come-first-served order of data
// readiness; each gate waits for its operands, for any required data movement
// (ballistic, teleportation, or cache fetch/writeback), and for the encoded
// ancillae its QEC step and teleports consume, drawn from the architecture's
// generator pools.
func Simulate(c *quantum.Circuit, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	res := Result{Arch: cfg.Arch, AncillaFactoryArea: cfg.AncillaFactoryArea(c.NumQubits)}
	if len(c.Gates) == 0 {
		return res, nil
	}

	dag := quantum.BuildDAG(c)
	n := len(c.Gates)
	finish := make([]float64, n)
	ready := make([]float64, n)
	indeg := make([]int, n)
	copy(indeg, dag.InDegree)

	// Ancilla pools.
	perQubitRate := cfg.generatorRatePerMs() / 1000.0 * float64(cfg.GeneratorsPerQubit)
	var qubitPools []*pool
	var sharedPool *pool
	var cache *lruCache
	switch cfg.Arch {
	case QLA, GQLA:
		qubitPools = make([]*pool, c.NumQubits)
		for i := range qubitPools {
			qubitPools[i] = &pool{ratePerUs: perQubitRate}
		}
	case CQLA, GCQLA:
		sharedPool = &pool{ratePerUs: perQubitRate * float64(cfg.CacheSlots)}
		cache = newLRUCache(cfg.CacheSlots)
	case FullyMultiplexed:
		sharedPool = &pool{ratePerUs: cfg.sharedFactoryRatePerMs() / 1000.0 * float64(cfg.SharedFactories)}
	}

	perQEC := float64(cfg.Latency.ZeroAncillaePerQEC)
	teleportCost := float64(cfg.Movement.TeleportAncillae)
	teleportUs := float64(cfg.Movement.TeleportUs)
	ballisticUs := float64(cfg.Movement.BallisticPerGateUs)

	pq := &readyQueue{}
	for i, d := range indeg {
		if d == 0 {
			pq.push(readyItem{gate: i, ready: 0})
		}
	}
	processed := 0
	makespan := 0.0
	for pq.len() > 0 {
		item := pq.pop()
		gi := item.gate
		g := c.Gates[gi]
		processed++

		start := item.ready
		extraLatency := 0.0
		ancillae := perQEC
		var sites []*pool

		switch cfg.Arch {
		case QLA, GQLA:
			// Two-qubit gates teleport the first operand to the second's
			// home cell and back; QEC and teleport ancillae come from the
			// execution site's dedicated generator.
			site := qubitPools[g.Qubits[len(g.Qubits)-1]]
			sites = append(sites, site)
			if g.Kind.Arity() >= 2 {
				extraLatency += 2 * teleportUs
				ancillae += 2 * teleportCost
				res.Teleports += 2
			}
		case CQLA, GCQLA:
			// Every operand must be resident in the compute cache; misses
			// cost a fetch teleport (plus a writeback teleport when a slot
			// must be evicted) and the associated ancillae.
			for _, q := range g.Qubits {
				miss, evicted := cache.touch(q)
				if miss {
					res.CacheMisses++
					extraLatency += teleportUs
					ancillae += teleportCost
					res.Teleports++
					if evicted {
						extraLatency += teleportUs
						ancillae += teleportCost
						res.Teleports++
					}
				}
			}
			if g.Kind.Arity() >= 2 {
				extraLatency += ballisticUs
			}
			sites = append(sites, sharedPool)
		case FullyMultiplexed:
			// Encoded ancillae are distributed from the shared factories to
			// wherever they are needed; data moves ballistically inside its
			// dense region.
			if g.Kind.Arity() >= 2 {
				extraLatency += ballisticUs
			}
			sites = append(sites, sharedPool)
		}

		issue := start
		for _, site := range sites {
			if t := site.acquire(ancillae / float64(len(sites))); t > issue {
				issue = t
			}
		}
		res.AncillaeConsumed += int(math.Round(ancillae))
		finish[gi] = issue + extraLatency + float64(cfg.Latency.GateWeightSpeedOfData(g))
		if finish[gi] > makespan {
			makespan = finish[gi]
		}
		for _, s := range dag.Succ[gi] {
			if finish[gi] > ready[s] {
				ready[s] = finish[gi]
			}
			indeg[s]--
			if indeg[s] == 0 {
				pq.push(readyItem{gate: s, ready: ready[s]})
			}
		}
	}
	if processed != n {
		return Result{}, fmt.Errorf("microarch: dependence graph of %q is cyclic", c.Name)
	}
	res.ExecutionTime = iontrap.Microseconds(makespan)
	return res, nil
}

// readyItem / readyQueue: a small binary min-heap keyed by data readiness.
type readyItem struct {
	gate  int
	ready float64
}

type readyQueue struct{ items []readyItem }

func (q *readyQueue) len() int { return len(q.items) }

func (q *readyQueue) push(it readyItem) {
	q.items = append(q.items, it)
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q.items[parent].ready <= q.items[i].ready {
			break
		}
		q.items[parent], q.items[i] = q.items[i], q.items[parent]
		i = parent
	}
}

func (q *readyQueue) pop() readyItem {
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items = q.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(q.items) && q.items[l].ready < q.items[smallest].ready {
			smallest = l
		}
		if r < len(q.items) && q.items[r].ready < q.items[smallest].ready {
			smallest = r
		}
		if smallest == i {
			break
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
	return top
}
