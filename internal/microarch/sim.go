package microarch

import (
	"fmt"
	"math"

	"speedofdata/internal/iontrap"
	"speedofdata/internal/network"
	"speedofdata/internal/quantum"
	"speedofdata/internal/sim"
)

// Result summarises one simulation run.
type Result struct {
	Arch Architecture
	// ExecutionTime is the simulated makespan.
	ExecutionTime iontrap.Microseconds
	// AncillaFactoryArea is the ancilla-generation area of the configuration
	// (Figure 15's x axis).
	AncillaFactoryArea iontrap.Area
	// Teleports counts encoded-qubit teleportations performed.
	Teleports int
	// CacheMisses counts compute-cache misses (CQLA/GCQLA only).
	CacheMisses int
	// AncillaeConsumed counts encoded zero ancillae drawn from generators.
	AncillaeConsumed int

	// AncillaStallTime is the total time gates spent waiting on encoded
	// ancilla availability beyond data readiness, summed over gates.
	AncillaStallTime iontrap.Microseconds
	// BufferHighWater is the peak buffered ancilla level across the
	// configuration's sources (finite-buffer event-driven runs only; the
	// fluid infinite-buffer model has no buffer to measure).
	BufferHighWater float64
	// ProducerStallTime is the total time ancilla producers spent blocked on
	// full buffers, summed over sources (finite-buffer runs only).
	ProducerStallTime iontrap.Microseconds
	// Events is the number of kernel events the event-driven simulator
	// processed (zero for the closed form).
	Events int
}

// ExecutionTimeMs is the makespan in milliseconds.
func (r Result) ExecutionTimeMs() float64 { return r.ExecutionTime.Milliseconds() }

// lruCache is the CQLA compute cache: a fixed number of data-qubit slots with
// least-recently-used replacement.
type lruCache struct {
	capacity int
	stamp    int64
	entries  map[int]int64 // qubit -> last use stamp
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{capacity: capacity, entries: make(map[int]int64, capacity)}
}

// touch marks a qubit as resident and most recently used, reporting whether
// the access missed and which qubit (if any) the miss evicted (-1 for none).
func (c *lruCache) touch(q int) (miss bool, evicted int) {
	c.stamp++
	evicted = -1
	if _, ok := c.entries[q]; ok {
		c.entries[q] = c.stamp
		return false, evicted
	}
	miss = true
	if len(c.entries) >= c.capacity {
		oldestQ, oldest := -1, int64(math.MaxInt64)
		for qq, s := range c.entries {
			if s < oldest {
				oldest, oldestQ = s, qq
			}
		}
		delete(c.entries, oldestQ)
		evicted = oldestQ
	}
	c.entries[q] = c.stamp
	return miss, evicted
}

// sourceRates returns the per-source ancilla production rate (ancillae per
// microsecond) for the configuration: one source per data qubit for QLA and
// GQLA, a single shared source for the cache- and factory-based
// organisations.  A non-positive rate — nothing would ever be produced — is
// reported as sim.ErrZeroRate instead of letting +Inf availability times
// propagate into results.
func sourceRates(cfg Config, nQubits int) ([]float64, error) {
	perQubitRate := cfg.generatorRatePerMs() / 1000.0 * float64(cfg.GeneratorsPerQubit)
	var rates []float64
	switch cfg.Arch {
	case QLA, GQLA:
		rates = make([]float64, nQubits)
		for i := range rates {
			rates[i] = perQubitRate
		}
	case CQLA, GCQLA:
		rates = []float64{perQubitRate * float64(cfg.CacheSlots)}
	case FullyMultiplexed:
		rates = []float64{cfg.sharedFactoryRatePerMs() / 1000.0 * float64(cfg.SharedFactories)}
	}
	for _, r := range rates {
		if !(r > 0) {
			return nil, fmt.Errorf("microarch: %v ancilla generation rate %v/µs: %w", cfg.Arch, r, sim.ErrZeroRate)
		}
	}
	return rates, nil
}

// costModel computes the per-gate movement latency and ancilla demand for an
// architecture, mutating the compute-cache state and the result counters as
// gates dispatch.  Both the closed-form and the event-driven simulators call
// it with gates in the same order, which keeps their arithmetic — and
// therefore their results — identical.
type costModel struct {
	cfg    Config
	cache  *lruCache
	topo   network.Topology
	routed bool // a mesh is configured; teleports pay routed distances
	res    *Result

	perQEC       float64
	teleportCost float64
	teleportUs   float64
	ballisticUs  float64
}

func newCostModel(cfg Config, res *Result) *costModel {
	m := &costModel{
		cfg:          cfg,
		topo:         cfg.Network,
		routed:       cfg.Network != (network.Topology{}),
		res:          res,
		perQEC:       float64(cfg.Latency.ZeroAncillaePerQEC),
		teleportCost: float64(cfg.Movement.TeleportAncillae),
		teleportUs:   float64(cfg.Movement.TeleportUs),
		ballisticUs:  float64(cfg.Movement.BallisticPerGateUs),
	}
	if cfg.Arch == CQLA || cfg.Arch == GCQLA {
		m.cache = newLRUCache(cfg.CacheSlots)
	}
	return m
}

// routedHops returns the routed distance multiplier of one teleport between
// two tiles.  Without a mesh every teleport is the flat single hop of the
// original model; with one it is the dimension-order hop distance, floored
// at one hop so a configured mesh never undercuts the flat model (and a 1x1
// mesh reproduces it exactly).
func (m *costModel) routedHops(tileA, tileB int) float64 {
	if !m.routed {
		return 1
	}
	d := m.topo.HopDistance(tileA, tileB)
	if d < 1 {
		d = 1
	}
	return float64(d)
}

// hopsBetween is routedHops between two qubits' home tiles.
func (m *costModel) hopsBetween(q1, q2 int) float64 {
	if !m.routed {
		return 1
	}
	return m.routedHops(m.topo.TileOf(q1), m.topo.TileOf(q2))
}

// hopsToCache is routedHops from a qubit's home to the compute cache of
// CQLA/GCQLA, which sits at the mesh origin (tile 0).
func (m *costModel) hopsToCache(q int) float64 {
	if !m.routed {
		return 1
	}
	return m.routedHops(m.topo.TileOf(q), 0)
}

// dispatch accounts one gate: the source it draws ancillae from, the extra
// movement latency, and the encoded ancillae consumed.  It must be called in
// issue order (the cache state is order-sensitive).
func (m *costModel) dispatch(g quantum.Gate) (site int, extraLatency, ancillae float64) {
	ancillae = m.perQEC
	switch m.cfg.Arch {
	case QLA, GQLA:
		// Two-qubit gates teleport the first operand to the second's home
		// cell and back; QEC and teleport ancillae come from the execution
		// site's dedicated generator.  With a mesh configured, both trips
		// pay the routed distance between the operands' tiles.
		site = g.Qubits[len(g.Qubits)-1]
		if g.Kind.Arity() >= 2 {
			h := m.hopsBetween(g.Qubits[0], site)
			extraLatency += 2 * h * m.teleportUs
			ancillae += 2 * h * m.teleportCost
			m.res.Teleports += 2
		}
	case CQLA, GCQLA:
		// Every operand must be resident in the compute cache; misses cost a
		// fetch teleport (plus a writeback teleport when a slot must be
		// evicted) and the associated ancillae.
		for _, q := range g.Qubits {
			miss, evicted := m.cache.touch(q)
			if miss {
				m.res.CacheMisses++
				h := m.hopsToCache(q)
				extraLatency += h * m.teleportUs
				ancillae += h * m.teleportCost
				m.res.Teleports++
				if evicted >= 0 {
					h = m.hopsToCache(evicted)
					extraLatency += h * m.teleportUs
					ancillae += h * m.teleportCost
					m.res.Teleports++
				}
			}
		}
		if g.Kind.Arity() >= 2 {
			extraLatency += m.ballisticUs
		}
	case FullyMultiplexed:
		// Encoded ancillae are distributed from the shared factories to
		// wherever they are needed; data moves ballistically inside its
		// dense region.
		if g.Kind.Arity() >= 2 {
			extraLatency += m.ballisticUs
		}
	}
	m.res.AncillaeConsumed += int(math.Round(ancillae))
	return site, extraLatency, ancillae
}

// Simulate runs the dataflow simulation of a logical circuit on the selected
// microarchitecture.  Gates issue in first-come-first-served order of data
// readiness (ties broken by gate index); each gate waits for its operands,
// for any required data movement (ballistic, teleportation, or cache
// fetch/writeback), and for the encoded ancillae its QEC step and teleports
// consume, drawn from the architecture's generator sources.
//
// Simulate executes on the discrete-event kernel of internal/sim and honours
// cfg.BufferAncillae: zero buffers the generators infinitely (the paper's
// closed-form token-bucket model, reproduced bit for bit — see
// SimulateClosedForm), a positive capacity bounds each source's buffer so
// production stalls when it fills and gates stall when it empties.
func Simulate(c *quantum.Circuit, cfg Config) (Result, error) {
	return simulateEvents(c, cfg)
}

// SimulateClosedForm is the original analytical model: list scheduling
// against infinitely buffered token-bucket ancilla sources, with no event
// kernel.  It is retained as the parity oracle for the event-driven
// simulator — with infinite buffers the two produce bit-identical results —
// and errors out on configurations it cannot model (finite buffers).
func SimulateClosedForm(c *quantum.Circuit, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.BufferAncillae > 0 {
		return Result{}, fmt.Errorf("microarch: the closed form cannot model a finite ancilla buffer (%v); use Simulate", cfg.BufferAncillae)
	}
	res := Result{Arch: cfg.Arch, AncillaFactoryArea: cfg.AncillaFactoryArea(c.NumQubits)}
	if len(c.Gates) == 0 {
		return res, nil
	}

	dag := c.DAG()
	n := len(c.Gates)
	finish := make([]float64, n)
	ready := make([]float64, n)
	indeg := make([]int, n)
	copy(indeg, dag.InDegree)

	rates, err := sourceRates(cfg, c.NumQubits)
	if err != nil {
		return Result{}, err
	}
	// The analytical ancilla model is sim.FluidSource's token bucket: the
	// same accumulate-then-divide arithmetic the event-driven path uses in
	// fluid mode, which is what keeps the two bit-identical.
	pools := make([]*sim.FluidSource, len(rates))
	for i, r := range rates {
		if pools[i], err = sim.NewFluidSource(r); err != nil {
			return Result{}, err
		}
	}
	model := newCostModel(cfg, &res)

	pq := &sim.TaskQueue{}
	for i, d := range indeg {
		if d == 0 {
			pq.Push(sim.Task{Index: i, Ready: 0})
		}
	}
	processed := 0
	makespan := 0.0
	stall := 0.0
	for pq.Len() > 0 {
		item := pq.Pop()
		gi := item.Index
		g := c.Gates[gi]
		processed++

		start := item.Ready
		site, extraLatency, ancillae := model.dispatch(g)

		issue := start
		if t := pools[site].AvailableAt(ancillae); t > issue {
			issue = t
		}
		stall += issue - start
		finish[gi] = issue + extraLatency + float64(cfg.Latency.GateWeightSpeedOfData(g))
		if finish[gi] > makespan {
			makespan = finish[gi]
		}
		for _, s := range dag.Succ[gi] {
			if finish[gi] > ready[s] {
				ready[s] = finish[gi]
			}
			indeg[s]--
			if indeg[s] == 0 {
				pq.Push(sim.Task{Index: s, Ready: ready[s]})
			}
		}
	}
	if processed != n {
		return Result{}, fmt.Errorf("microarch: dependence graph of %q is cyclic", c.Name)
	}
	res.ExecutionTime = iontrap.Microseconds(makespan)
	res.AncillaStallTime = iontrap.Microseconds(stall)
	return res, nil
}
