package microarch

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"speedofdata/internal/circuits"
	"speedofdata/internal/engine"
	"speedofdata/internal/iontrap"
	"speedofdata/internal/network"
	"speedofdata/internal/quantum"
	"speedofdata/internal/schedule"
)

func benchmarkCircuit(t *testing.T, b circuits.Benchmark, bits int) *quantum.Circuit {
	t.Helper()
	c, err := circuits.Generate(b, bits)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestArchitectureNames(t *testing.T) {
	if QLA.String() != "QLA" || FullyMultiplexed.String() != "Fully-Multiplexed" {
		t.Error("architecture names wrong")
	}
	if len(Architectures()) != 5 {
		t.Error("expected 5 architectures")
	}
	if Architecture(99).String() == "" {
		t.Error("unknown architecture should still render")
	}
}

func TestConfigValidate(t *testing.T) {
	for _, arch := range Architectures() {
		cfg := DefaultConfig(arch)
		if err := cfg.Validate(); err != nil {
			t.Errorf("%v default config invalid: %v", arch, err)
		}
	}
	bad := DefaultConfig(QLA)
	bad.GeneratorsPerQubit = 0
	if err := bad.Validate(); err == nil {
		t.Error("QLA without generators should be invalid")
	}
	bad = DefaultConfig(CQLA)
	bad.CacheSlots = 0
	if err := bad.Validate(); err == nil {
		t.Error("CQLA without cache should be invalid")
	}
	bad = DefaultConfig(FullyMultiplexed)
	bad.SharedFactories = 0
	if err := bad.Validate(); err == nil {
		t.Error("FM without factories should be invalid")
	}
	bad = DefaultConfig(FullyMultiplexed)
	bad.Pi8BandwidthPerMs = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative π/8 bandwidth should be invalid")
	}
	bad = DefaultConfig(FullyMultiplexed)
	bad.Arch = Architecture(42)
	if err := bad.Validate(); err == nil {
		t.Error("unknown architecture should be invalid")
	}
}

func TestAncillaFactoryArea(t *testing.T) {
	cfg := DefaultConfig(QLA)
	if got := float64(cfg.AncillaFactoryArea(97)); got != 97*90 {
		t.Errorf("QLA area = %v, want %v", got, 97*90)
	}
	cfg = DefaultConfig(FullyMultiplexed)
	cfg.SharedFactories = 4
	if got := float64(cfg.AncillaFactoryArea(97)); got != 4*298 {
		t.Errorf("FM area = %v, want %v", got, 4*298)
	}
	cfg = DefaultConfig(CQLA)
	cfg.CacheSlots = 16
	cfg.GeneratorsPerQubit = 2
	if got := float64(cfg.AncillaFactoryArea(97)); got != 16*2*90 {
		t.Errorf("CQLA area = %v, want %v", got, 16*2*90)
	}
	// Including the π/8 supply adds the Table 9 accounting.
	cfg = DefaultConfig(FullyMultiplexed)
	cfg.Pi8BandwidthPerMs = 7.0
	withPi8 := float64(cfg.AncillaFactoryArea(97))
	if withPi8 <= 298 || withPi8 >= 298+500 {
		t.Errorf("area with π/8 supply = %v, expected 298 + ~355", withPi8)
	}
}

func TestSimulateEmptyCircuit(t *testing.T) {
	c := quantum.NewCircuit("empty", 3)
	res, err := Simulate(c, DefaultConfig(FullyMultiplexed))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecutionTime != 0 || res.AncillaeConsumed != 0 {
		t.Errorf("empty circuit result = %+v", res)
	}
}

func TestSimulateFullyMultiplexedApproachesSpeedOfData(t *testing.T) {
	c := benchmarkCircuit(t, circuits.QRCA, 8)
	ch, err := schedule.Characterize(c, schedule.DefaultLatencyModel())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(FullyMultiplexed)
	// Provision far more factory bandwidth than the average demand.
	cfg.SharedFactories = 64
	res, err := Simulate(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sod := float64(ch.SpeedOfDataTime)
	if float64(res.ExecutionTime) < sod {
		t.Errorf("simulated time %v is below the speed-of-data bound %v", res.ExecutionTime, sod)
	}
	// Ballistic movement adds some overhead, but with abundant ancillae the
	// execution should stay within ~2x of the data-dependency bound.
	if float64(res.ExecutionTime) > 2*sod {
		t.Errorf("simulated time %v should approach the speed of data %v with abundant factories",
			res.ExecutionTime, sod)
	}
}

func TestSimulateMoreFactoriesNeverSlower(t *testing.T) {
	c := benchmarkCircuit(t, circuits.QRCA, 8)
	cfg := DefaultConfig(FullyMultiplexed)
	var prev float64 = math.Inf(1)
	for _, f := range []int{1, 2, 4, 8, 16} {
		cfg.SharedFactories = f
		res, err := Simulate(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.ExecutionTimeMs() > prev*1.0001 {
			t.Errorf("execution time increased when adding factories (%d): %v -> %v",
				f, prev, res.ExecutionTimeMs())
		}
		prev = res.ExecutionTimeMs()
	}
}

func TestQLAUsesTeleportationAndCQLAMisses(t *testing.T) {
	c := benchmarkCircuit(t, circuits.QRCA, 8)
	qla, err := Simulate(c, DefaultConfig(QLA))
	if err != nil {
		t.Fatal(err)
	}
	if qla.Teleports == 0 {
		t.Error("QLA should teleport operands for two-qubit gates")
	}
	cqlaCfg := DefaultConfig(CQLA)
	cqlaCfg.CacheSlots = 4
	cqla, err := Simulate(c, cqlaCfg)
	if err != nil {
		t.Fatal(err)
	}
	if cqla.CacheMisses == 0 {
		t.Error("a small CQLA cache should miss")
	}
	fm, err := Simulate(c, DefaultConfig(FullyMultiplexed))
	if err != nil {
		t.Fatal(err)
	}
	if fm.Teleports != 0 || fm.CacheMisses != 0 {
		t.Error("fully-multiplexed distribution should not teleport or miss")
	}
}

func TestFigure15Shape(t *testing.T) {
	// The paper's Figure 15 conclusions, checked on the 32-bit QCLA (the
	// most parallel benchmark, where the contrast is sharpest):
	//  1. Fully-Multiplexed reaches its plateau with far less ancilla
	//     factory area than GQLA needs (the paper reports about two orders
	//     of magnitude for the generators-per-qubit organisation).
	//  2. CQLA/GCQLA plateau well above Fully-Multiplexed (cache misses stay
	//     on the critical path no matter how fast ancillae are produced).
	//  3. GQLA eventually plateaus within a small factor of Fully-Multiplexed.
	//  4. At comparable (or less) area than the original QLA proposal, the
	//     fully-multiplexed organisation is more than ~5x faster (the
	//     abstract's headline claim).
	c := benchmarkCircuit(t, circuits.QCLA, 32)
	base := DefaultConfig(FullyMultiplexed)
	base.CacheSlots = 16
	curves, err := Figure15(c, Figure15Config{Base: base, MaxScale: 64})
	if err != nil {
		t.Fatal(err)
	}
	fm := curves[FullyMultiplexed]
	gqla := curves[GQLA]
	gcqla := curves[GCQLA]
	if len(fm.Points) == 0 || len(gqla.Points) == 0 || len(gcqla.Points) == 0 {
		t.Fatal("missing curves")
	}

	fmPlateau := PlateauTimeMs(fm)
	gqlaPlateau := PlateauTimeMs(gqla)
	gcqlaPlateau := PlateauTimeMs(gcqla)

	// (3) GQLA plateaus within a small factor of FM.
	if gqlaPlateau > 2.5*fmPlateau {
		t.Errorf("GQLA plateau %v ms should be near the FM plateau %v ms", gqlaPlateau, fmPlateau)
	}
	// (2) GCQLA plateaus clearly above FM (cache misses).
	if gcqlaPlateau < 1.5*fmPlateau {
		t.Errorf("GCQLA plateau %v ms should sit clearly above the FM plateau %v ms", gcqlaPlateau, fmPlateau)
	}
	// (1) Area to get within 1.5x of each curve's own plateau: FM needs at
	// least several times less than GQLA.
	fmArea := AreaToReach(fm, 1.5)
	gqlaArea := AreaToReach(gqla, 1.5)
	if fmArea*5 > gqlaArea {
		t.Errorf("FM should reach its plateau with far less area: FM %v vs GQLA %v macroblocks", fmArea, gqlaArea)
	}

	// QLA and CQLA as proposed are single points.
	if len(curves[QLA].Points) != 1 || len(curves[CQLA].Points) != 1 {
		t.Error("QLA and CQLA should be single configurations")
	}
	// (4) Headline claim: at comparable area, the fully-multiplexed
	// organisation is several times faster than the original QLA proposal.
	qlaPoint := curves[QLA].Points[0]
	var fmAtSimilarArea *CurvePoint
	for i := range fm.Points {
		if fm.Points[i].AreaMacroblocks <= qlaPoint.AreaMacroblocks {
			fmAtSimilarArea = &fm.Points[i]
		}
	}
	if fmAtSimilarArea == nil {
		t.Fatal("no FM point at or below the QLA area")
	}
	if qlaPoint.ExecutionTimeMs < 5*fmAtSimilarArea.ExecutionTimeMs {
		t.Errorf("FM at similar area (%.0f mb, %.2f ms) should be >5x faster than QLA (%.0f mb, %.2f ms)",
			fmAtSimilarArea.AreaMacroblocks, fmAtSimilarArea.ExecutionTimeMs,
			qlaPoint.AreaMacroblocks, qlaPoint.ExecutionTimeMs)
	}
	// The CQLA proposal is also several times slower than FM at similar area.
	cqlaPoint := curves[CQLA].Points[0]
	var fmAtCqlaArea *CurvePoint
	for i := range fm.Points {
		if fm.Points[i].AreaMacroblocks <= cqlaPoint.AreaMacroblocks {
			fmAtCqlaArea = &fm.Points[i]
		}
	}
	if fmAtCqlaArea == nil {
		t.Fatal("no FM point at or below the CQLA area")
	}
	if cqlaPoint.ExecutionTimeMs < 2*fmAtCqlaArea.ExecutionTimeMs {
		t.Errorf("FM at similar area (%.0f mb, %.2f ms) should be well ahead of CQLA (%.0f mb, %.2f ms)",
			fmAtCqlaArea.AreaMacroblocks, fmAtCqlaArea.ExecutionTimeMs,
			cqlaPoint.AreaMacroblocks, cqlaPoint.ExecutionTimeMs)
	}
}

func TestSweepErrors(t *testing.T) {
	c := benchmarkCircuit(t, circuits.QRCA, 4)
	if _, err := Sweep(c, DefaultConfig(FullyMultiplexed), nil); err == nil {
		t.Error("empty sweep should fail")
	}
	if _, err := Sweep(c, DefaultConfig(FullyMultiplexed), []int{0}); err == nil {
		t.Error("non-positive scale should fail")
	}
	bad := DefaultConfig(QLA)
	bad.GeneratorsPerQubit = -1
	if _, err := Simulate(c, bad); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestDefaultScales(t *testing.T) {
	scales := DefaultScales(16)
	want := []int{1, 2, 4, 8, 16}
	if len(scales) != len(want) {
		t.Fatalf("scales = %v", scales)
	}
	for i, s := range want {
		if scales[i] != s {
			t.Errorf("scales[%d] = %d, want %d", i, scales[i], s)
		}
	}
	if len(DefaultScales(0)) != 1 {
		t.Error("degenerate max should yield a single scale")
	}
}

func TestLRUCache(t *testing.T) {
	cache := newLRUCache(2)
	miss, evicted := cache.touch(1)
	if !miss || evicted >= 0 {
		t.Error("first access should miss without eviction")
	}
	miss, evicted = cache.touch(2)
	if !miss || evicted >= 0 {
		t.Error("second access should miss without eviction")
	}
	miss, _ = cache.touch(1)
	if miss {
		t.Error("resident qubit should hit")
	}
	miss, evicted = cache.touch(3)
	if !miss || evicted != 2 {
		t.Errorf("capacity exceeded should evict the LRU qubit 2, got %d", evicted)
	}
	// Qubit 2 was least recently used and must be gone; 1 must remain.
	if m, _ := cache.touch(1); m {
		t.Error("recently used qubit should still be resident")
	}
	if m, _ := cache.touch(2); !m {
		t.Error("evicted qubit should miss")
	}
}

// Property: execution time never beats the pure dataflow bound and ancilla
// consumption is at least two per gate, for every architecture.
func TestSimulationBoundsProperty(t *testing.T) {
	c := benchmarkCircuit(t, circuits.QRCA, 4)
	ch, err := schedule.Characterize(c, schedule.DefaultLatencyModel())
	if err != nil {
		t.Fatal(err)
	}
	archs := Architectures()
	f := func(archRaw, scaleRaw uint8) bool {
		arch := archs[int(archRaw)%len(archs)]
		cfg := DefaultConfig(arch)
		scale := int(scaleRaw%6) + 1
		cfg.GeneratorsPerQubit = scale
		cfg.SharedFactories = scale
		res, err := Simulate(c, cfg)
		if err != nil {
			return false
		}
		if float64(res.ExecutionTime) < float64(ch.SpeedOfDataTime)-1e-6 {
			return false
		}
		return res.AncillaeConsumed >= 2*c.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// The parallel grid must regroup into exactly the curves the sequential
// sweep produces, point for point, and repeated grids must hit the engine's
// result cache.
func TestFigure15EngineMatchesSequential(t *testing.T) {
	c := benchmarkCircuit(t, circuits.QCLA, 8)
	base := DefaultConfig(FullyMultiplexed)
	base.CacheSlots = 8
	cfg := Figure15Config{Base: base, MaxScale: 16}
	seq, err := Figure15(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(4)
	par, err := Figure15Engine(context.Background(), eng, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(seq) {
		t.Fatalf("parallel produced %d curves, sequential %d", len(par), len(seq))
	}
	for arch, want := range seq {
		got := par[arch]
		if len(got.Points) != len(want.Points) {
			t.Fatalf("%v: %d points != %d", arch, len(got.Points), len(want.Points))
		}
		for i := range want.Points {
			if got.Points[i] != want.Points[i] {
				t.Errorf("%v point %d: parallel %+v != sequential %+v", arch, i, got.Points[i], want.Points[i])
			}
		}
	}
	// Re-running the same grid on the same engine must be served from cache.
	if _, err := Figure15Engine(context.Background(), eng, c, cfg); err != nil {
		t.Fatal(err)
	}
	hits, _ := eng.CacheStats()
	if hits == 0 {
		t.Error("repeated Figure 15 grid should hit the engine cache")
	}
}

func TestSweepEngineCancellation(t *testing.T) {
	c := benchmarkCircuit(t, circuits.QRCA, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SweepEngine(ctx, engine.New(2), c, DefaultConfig(FullyMultiplexed), DefaultScales(16)); err == nil {
		t.Error("cancelled sweep must report the context error")
	}
}

func TestParseArchitecture(t *testing.T) {
	cases := map[string]Architecture{
		"QLA":               QLA,
		"qla":               QLA,
		"gqla":              GQLA,
		"CQLA":              CQLA,
		"gcqla":             GCQLA,
		"Fully-Multiplexed": FullyMultiplexed,
		"fullymultiplexed":  FullyMultiplexed,
		"fully_multiplexed": FullyMultiplexed,
		"fm":                FullyMultiplexed,
	}
	for in, want := range cases {
		got, err := ParseArchitecture(in)
		if err != nil || got != want {
			t.Errorf("ParseArchitecture(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseArchitecture("warp"); err == nil {
		t.Error("unknown architecture should fail")
	}
	// Every presentation-order architecture must round-trip its legend name.
	for _, a := range Architectures() {
		got, err := ParseArchitecture(a.String())
		if err != nil || got != a {
			t.Errorf("round-trip %v failed: %v, %v", a, got, err)
		}
	}
}

// Non-physical movement parameters must fail Config.Validate (and therefore
// Simulate) up front instead of leaking negative or NaN latencies into
// makespans.
func TestConfigRejectsNonPhysicalMovement(t *testing.T) {
	c := benchmarkCircuit(t, circuits.QRCA, 4)
	for _, mutate := range []func(*Config){
		func(cfg *Config) { cfg.Movement.TeleportUs = -1 },
		func(cfg *Config) { cfg.Movement.BallisticPerGateUs = iontrap.Microseconds(math.NaN()) },
		func(cfg *Config) { cfg.Movement.TeleportUs = iontrap.Microseconds(math.Inf(1)) },
		func(cfg *Config) { cfg.Movement.TeleportAncillae = -1 },
	} {
		cfg := DefaultConfig(QLA)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", cfg.Movement)
		}
		if _, err := Simulate(c, cfg); err == nil {
			t.Errorf("Simulate accepted non-physical movement %+v", cfg.Movement)
		}
	}
}

// With a mesh configured, teleport accounting delegates to the network cost
// model: a 1x1 mesh reproduces the flat model bit for bit, and a spread-out
// mesh pays routed multi-hop teleports, so it can only slow execution down
// and consume more ancillae.
func TestNetworkDelegatedTeleportAccounting(t *testing.T) {
	c := benchmarkCircuit(t, circuits.QCLA, 8)
	for _, arch := range []Architecture{QLA, CQLA} {
		flatCfg := DefaultConfig(arch)
		flat, err := Simulate(c, flatCfg)
		if err != nil {
			t.Fatal(err)
		}

		oneTile := flatCfg
		oneTile.Network = network.Topology{Cols: 1, Rows: 1, TileQubits: c.NumQubits}
		same, err := Simulate(c, oneTile)
		if err != nil {
			t.Fatal(err)
		}
		if same != flat {
			t.Errorf("%v: 1x1 mesh diverged from the flat model:\n got %+v\nwant %+v", arch, same, flat)
		}

		spread := flatCfg
		spread.Network = network.Topology{Cols: 2, Rows: 2, TileQubits: (c.NumQubits + 3) / 4}
		routed, err := Simulate(c, spread)
		if err != nil {
			t.Fatal(err)
		}
		if routed.ExecutionTime < flat.ExecutionTime {
			t.Errorf("%v: routed teleports sped execution up (%v < %v)", arch, routed.ExecutionTime, flat.ExecutionTime)
		}
		if routed.AncillaeConsumed < flat.AncillaeConsumed {
			t.Errorf("%v: routed teleports consumed fewer ancillae (%d < %d)",
				arch, routed.AncillaeConsumed, flat.AncillaeConsumed)
		}
		if routed.Teleports != flat.Teleports {
			t.Errorf("%v: routing changed the teleport count (%d != %d)", arch, routed.Teleports, flat.Teleports)
		}

		// The closed form shares the cost model, so the parity guarantee
		// holds with a mesh configured too.
		closed, err := SimulateClosedForm(c, spread)
		if err != nil {
			t.Fatal(err)
		}
		if closed.ExecutionTime != routed.ExecutionTime {
			t.Errorf("%v: mesh broke event/closed-form parity (%v != %v)",
				arch, closed.ExecutionTime, routed.ExecutionTime)
		}
	}

	bad := DefaultConfig(QLA)
	bad.Network = network.Topology{Cols: 0, Rows: 1, TileQubits: 1}
	if _, err := Simulate(c, bad); err == nil {
		t.Error("invalid mesh topology should fail validation")
	}
}
