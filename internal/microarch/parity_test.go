package microarch

import (
	"errors"
	"testing"

	"speedofdata/internal/circuits"
	"speedofdata/internal/quantum"
	"speedofdata/internal/sim"
)

// TestEventSimulatorMatchesClosedFormOnFigure15Grid is the refactor's
// regression oracle: for every architecture × benchmark of the Figure 15
// grid, the event-driven simulator with infinite buffers must match the
// closed-form token-bucket model bit for bit — makespan, stall time and every
// counter.  The two share one cost model and one issue order (readiness,
// then gate index), so any divergence is a real behavioural change.
func TestEventSimulatorMatchesClosedFormOnFigure15Grid(t *testing.T) {
	for _, bench := range circuits.Benchmarks() {
		c := benchmarkCircuit(t, bench, 8)
		for _, arch := range Architectures() {
			for _, scale := range ScalesFor(arch, DefaultMaxScale) {
				cfg := DefaultConfig(arch)
				switch arch {
				case QLA, GQLA, CQLA, GCQLA:
					cfg.GeneratorsPerQubit = scale
				case FullyMultiplexed:
					cfg.SharedFactories = scale
				}
				event, err := Simulate(c, cfg)
				if err != nil {
					t.Fatalf("%v/%v scale %d: event: %v", bench, arch, scale, err)
				}
				closed, err := SimulateClosedForm(c, cfg)
				if err != nil {
					t.Fatalf("%v/%v scale %d: closed form: %v", bench, arch, scale, err)
				}
				if event.ExecutionTime != closed.ExecutionTime {
					t.Errorf("%v/%v scale %d: event makespan %v != closed-form %v",
						bench, arch, scale, event.ExecutionTime, closed.ExecutionTime)
				}
				if event.AncillaStallTime != closed.AncillaStallTime {
					t.Errorf("%v/%v scale %d: event stall %v != closed-form %v",
						bench, arch, scale, event.AncillaStallTime, closed.AncillaStallTime)
				}
				if event.Teleports != closed.Teleports || event.CacheMisses != closed.CacheMisses ||
					event.AncillaeConsumed != closed.AncillaeConsumed {
					t.Errorf("%v/%v scale %d: counters differ: event %+v closed %+v",
						bench, arch, scale, event, closed)
				}
				if event.Events == 0 {
					t.Errorf("%v/%v scale %d: event-driven run reported no kernel events", bench, arch, scale)
				}
			}
		}
	}
}

// A deeper spot check at the paper's full benchmark width.
func TestEventSimulatorMatchesClosedFormAt32Bits(t *testing.T) {
	c := benchmarkCircuit(t, circuits.QCLA, 32)
	for _, arch := range []Architecture{QLA, FullyMultiplexed} {
		cfg := DefaultConfig(arch)
		event, err := Simulate(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		closed, err := SimulateClosedForm(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if event.ExecutionTime != closed.ExecutionTime || event.AncillaeConsumed != closed.AncillaeConsumed {
			t.Errorf("%v at 32 bits: event %v/%d != closed %v/%d", arch,
				event.ExecutionTime, event.AncillaeConsumed, closed.ExecutionTime, closed.AncillaeConsumed)
		}
	}
}

func TestZeroGenerationRateIsTypedError(t *testing.T) {
	cfg := DefaultConfig(FullyMultiplexed)
	if _, err := sourceRates(cfg, 4); err != nil {
		t.Fatalf("default config rates should be valid: %v", err)
	}
	// Rates are validated before any pool exists, so a non-positive rate is a
	// typed error instead of an Inf execution time leaking into results.
	rates, err := sourceRates(Config{Arch: FullyMultiplexed, Latency: cfg.Latency}, 4)
	if err == nil {
		// Zero SharedFactories yields a zero rate.
		t.Fatalf("zero shared factories should be a zero-rate error, got rates %v", rates)
	}
	if !errors.Is(err, sim.ErrZeroRate) {
		t.Errorf("error %v should wrap sim.ErrZeroRate", err)
	}
}

func TestFiniteBufferNeverFasterAndConverges(t *testing.T) {
	c := benchmarkCircuit(t, circuits.QRCA, 8)
	cfg := DefaultConfig(FullyMultiplexed)
	cfg.SharedFactories = 4
	unlimited, err := Simulate(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, cap := range []float64{1, 4, 16, 64, 4096} {
		cfg.BufferAncillae = cap
		res, err := Simulate(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if float64(res.ExecutionTime) < float64(unlimited.ExecutionTime)-1e-6 {
			t.Errorf("cap %v: finite buffer beat the infinite-buffer makespan: %v < %v",
				cap, res.ExecutionTime, unlimited.ExecutionTime)
		}
		if res.BufferHighWater > cap+1e-9 {
			t.Errorf("cap %v: high water %v exceeds capacity", cap, res.BufferHighWater)
		}
		if prev != 0 && float64(res.ExecutionTime) > prev*1.0001 {
			t.Errorf("cap %v: execution time %v got worse than smaller... larger buffers should not slow execution (prev %v)",
				cap, float64(res.ExecutionTime), prev)
		}
		prev = float64(res.ExecutionTime)
	}
	// A generous buffer must land within a whisker of the fluid model.
	cfg.BufferAncillae = 1 << 20
	big, err := Simulate(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(big.ExecutionTime) / float64(unlimited.ExecutionTime); ratio > 1.01 {
		t.Errorf("huge buffer should converge on the fluid makespan: ratio %v", ratio)
	}
}

func TestTinyBufferStallsProducerAndGates(t *testing.T) {
	c := benchmarkCircuit(t, circuits.QCLA, 8)

	// Starved supply: the factory is the bottleneck, so gates stall on
	// ancillae and the buffer never fills (the producer never stalls).
	starved := DefaultConfig(FullyMultiplexed)
	starved.SharedFactories = 1
	starved.BufferAncillae = 2
	res, err := Simulate(c, starved)
	if err != nil {
		t.Fatal(err)
	}
	if res.AncillaStallTime <= 0 {
		t.Error("a starved single-factory run should stall gates on ancillae")
	}
	if res.BufferHighWater <= 0 || res.BufferHighWater > 2+1e-9 {
		t.Errorf("high water %v should be positive and bounded by the capacity", res.BufferHighWater)
	}

	// Overprovisioned supply: during serial stretches of the circuit demand
	// pauses, the tiny buffer fills, and production must stall.
	rich := DefaultConfig(FullyMultiplexed)
	rich.SharedFactories = 64
	rich.BufferAncillae = 2
	res, err = Simulate(c, rich)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProducerStallTime <= 0 {
		t.Error("an overprovisioned factory behind a 2-ancilla buffer should stall")
	}
}

func TestClosedFormRejectsFiniteBuffers(t *testing.T) {
	c := benchmarkCircuit(t, circuits.QRCA, 4)
	cfg := DefaultConfig(FullyMultiplexed)
	cfg.BufferAncillae = 8
	if _, err := SimulateClosedForm(c, cfg); err == nil {
		t.Error("the closed form cannot model finite buffers and must say so")
	}
	cfg.BufferAncillae = -1
	if _, err := Simulate(c, cfg); err == nil {
		t.Error("negative buffer capacity should be rejected")
	}
}

func TestBufferSweepShape(t *testing.T) {
	c := benchmarkCircuit(t, circuits.QRCA, 8)
	cfg := DefaultConfig(FullyMultiplexed)
	cfg.SharedFactories = 2
	points, err := BufferSweep(c, cfg, DefaultBufferCaps())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(DefaultBufferCaps()) {
		t.Fatalf("got %d points, want %d", len(points), len(DefaultBufferCaps()))
	}
	// The final point is the infinite-buffer reference; every finite point
	// must be at least as slow.
	ref := points[len(points)-1]
	if ref.BufferAncillae != 0 {
		t.Fatalf("last sweep point should be the infinite reference, got %+v", ref)
	}
	for _, p := range points[:len(points)-1] {
		if p.ExecutionTimeMs < ref.ExecutionTimeMs-1e-9 {
			t.Errorf("cap %v beat the infinite-buffer reference: %v < %v",
				p.BufferAncillae, p.ExecutionTimeMs, ref.ExecutionTimeMs)
		}
	}
	if _, err := BufferSweep(c, cfg, nil); err == nil {
		t.Error("empty capacity list should fail")
	}
	if _, err := BufferSweep(c, cfg, []float64{-2}); err == nil {
		t.Error("negative capacity should fail")
	}
}

// The empty circuit short-circuits before any kernel is built, matching the
// closed form.
func TestEventSimulatorEmptyCircuit(t *testing.T) {
	c := quantum.NewCircuit("empty", 2)
	cfg := DefaultConfig(FullyMultiplexed)
	cfg.BufferAncillae = 4
	res, err := Simulate(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecutionTime != 0 || res.Events != 0 {
		t.Errorf("empty circuit result = %+v", res)
	}
}

// The event-driven Simulate path is called thousands of times per sweep; its
// pooled run state and the kernel's closure-free scheduling must keep the
// steady state allocation-free apart from a constant handful per run (the
// result bookkeeping), independent of gate count.
func TestSimulateEventsSteadyStateAllocations(t *testing.T) {
	c, err := circuits.Generate(circuits.QRCA, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(FullyMultiplexed)
	if _, err := Simulate(c, cfg); err != nil { // warm pools and caches
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := Simulate(c, cfg); err != nil {
			t.Fatal(err)
		}
	})
	// The budget covers the cost model and fluid-source bookkeeping only;
	// before the pooled run state this was hundreds of allocations per run
	// (one closure per kernel event plus the per-gate map in BuildDAG).
	if allocs > 8 {
		t.Fatalf("steady-state Simulate allocations = %v per run, want <= 8", allocs)
	}
}
