package microarch

import "speedofdata/internal/engine"

// Grid points persist in the engine's disk cache tier; bump a version when
// the computation behind the corresponding job keys changes meaning.
func init() {
	engine.RegisterResultType(CurvePoint{}, 1)
	engine.RegisterResultType(BufferPoint{}, 1)
}
