// Package microarch contains the event-driven microarchitecture simulations
// behind Section 5.2 (Figure 15): dataflow execution of a benchmark circuit
// on top of different ancilla-generation and data-movement organisations —
// QLA and CQLA from prior work, their generalisations GQLA and GCQLA with
// replicated per-qubit ancilla generation, and the paper's Fully-Multiplexed
// ancilla distribution (the organisation Qalypso builds on).
package microarch

import (
	"fmt"
	"strings"
	"sync"

	"speedofdata/internal/factory"
	"speedofdata/internal/iontrap"
	"speedofdata/internal/layout"
	"speedofdata/internal/network"
	"speedofdata/internal/schedule"
)

// Architecture enumerates the simulated microarchitectures.
type Architecture int

const (
	// QLA dedicates one serial ancilla generator to every data qubit and
	// teleports operands to each other for two-qubit gates (Metodi et al.).
	QLA Architecture = iota
	// GQLA generalises QLA with several parallel generators per data qubit.
	GQLA
	// CQLA adds a compute cache of data qubits; gates run in the cache and
	// misses cost teleport-based fetches and writebacks (Thaker et al.).
	CQLA
	// GCQLA generalises CQLA with several generators per cache slot.
	GCQLA
	// FullyMultiplexed distributes encoded ancillae from shared pipelined
	// factories to whichever data qubit needs them (Figure 14b), the
	// organisation Qalypso adopts.
	FullyMultiplexed
)

var archNames = [...]string{
	QLA:              "QLA",
	GQLA:             "GQLA",
	CQLA:             "CQLA",
	GCQLA:            "GCQLA",
	FullyMultiplexed: "Fully-Multiplexed",
}

// String names the architecture the way Figure 15's legend does.
func (a Architecture) String() string {
	if a < 0 || int(a) >= len(archNames) {
		return fmt.Sprintf("arch(%d)", int(a))
	}
	return archNames[a]
}

// Architectures returns the simulated organisations in presentation order.
func Architectures() []Architecture {
	return []Architecture{QLA, GQLA, CQLA, GCQLA, FullyMultiplexed}
}

// ParseArchitecture resolves a request parameter or flag value to an
// architecture.  Matching is case-insensitive and accepts both the Figure 15
// legend names ("Fully-Multiplexed") and compact spellings ("fm",
// "fullymultiplexed") suitable for query strings.
func ParseArchitecture(name string) (Architecture, error) {
	canon := strings.ToLower(strings.NewReplacer("-", "", "_", "").Replace(name))
	for _, a := range Architectures() {
		if canon == strings.ToLower(strings.ReplaceAll(a.String(), "-", "")) {
			return a, nil
		}
	}
	if canon == "fm" {
		return FullyMultiplexed, nil
	}
	names := make([]string, 0, len(archNames))
	for _, n := range archNames {
		names = append(names, n)
	}
	return 0, fmt.Errorf("microarch: unknown architecture %q (want one of %s)", name, strings.Join(names, ", "))
}

// Config describes one simulation run.
type Config struct {
	Arch Architecture
	// Latency supplies gate and QEC timings (Section 3 model).
	Latency schedule.LatencyModel
	// Movement supplies ballistic and teleportation costs (Section 5.3).
	Movement layout.MovementModel

	// GeneratorsPerQubit is the number of serial (simple-factory) ancilla
	// generators at each data qubit (QLA uses 1; GQLA sweeps it).  For CQLA
	// and GCQLA it is the number of generators per cache slot.
	GeneratorsPerQubit int
	// CacheSlots is the compute-cache capacity in data qubits (CQLA/GCQLA).
	CacheSlots int
	// SharedFactories is the number of shared pipelined zero factories
	// (Fully-Multiplexed).
	SharedFactories int

	// Pi8BandwidthPerMs optionally records the benchmark's π/8 ancilla
	// demand so the reported factory area can include the π/8 encoders and
	// their feed factories (Table 9 accounting); zero omits them.
	Pi8BandwidthPerMs float64

	// BufferAncillae bounds each ancilla source's output buffer, in encoded
	// ancillae.  Zero (the default) buffers infinitely, reproducing the
	// paper's closed-form token-bucket model bit for bit; a positive
	// capacity switches the simulation to finite-buffer dynamics where
	// production stalls when the buffer fills.
	BufferAncillae float64

	// Network optionally places the data qubits on a 2D-mesh teleport
	// interconnect (internal/network): teleport accounting then delegates
	// to the mesh cost model, so every teleport pays the dimension-order
	// routed hop distance between its operands' tiles — max(1, hops) times
	// both the teleport latency and the teleport ancillae — instead of the
	// flat single-hop constant.  Qubits map to tiles with the topology's
	// block-cyclic TileOf; a 1×1 mesh reproduces the flat model exactly.
	// The zero value keeps the flat model.  (A value, not a pointer: Config
	// participates in engine job fingerprints via its %v rendering, which
	// must reflect the mesh contents, never a heap address.)
	Network network.Topology
}

// DefaultConfig returns a configuration for the given architecture with the
// paper's technology parameters and one generation resource per site.
func DefaultConfig(arch Architecture) Config {
	tech := iontrap.Default()
	return Config{
		Arch:               arch,
		Latency:            schedule.DefaultLatencyModel(),
		Movement:           layout.DefaultMovementModel(tech, 32),
		GeneratorsPerQubit: 1,
		CacheSlots:         16,
		SharedFactories:    1,
	}
}

// Validate checks the configuration for the selected architecture.
func (c Config) Validate() error {
	if err := c.Latency.Validate(); err != nil {
		return err
	}
	if err := c.Movement.Validate(); err != nil {
		return err
	}
	switch c.Arch {
	case QLA, GQLA:
		if c.GeneratorsPerQubit <= 0 {
			return fmt.Errorf("microarch: %v needs at least one generator per qubit", c.Arch)
		}
	case CQLA, GCQLA:
		if c.GeneratorsPerQubit <= 0 {
			return fmt.Errorf("microarch: %v needs at least one generator per cache slot", c.Arch)
		}
		if c.CacheSlots <= 0 {
			return fmt.Errorf("microarch: %v needs a positive cache size", c.Arch)
		}
	case FullyMultiplexed:
		if c.SharedFactories <= 0 {
			return fmt.Errorf("microarch: %v needs at least one shared factory", c.Arch)
		}
	default:
		return fmt.Errorf("microarch: unknown architecture %v", c.Arch)
	}
	if c.Pi8BandwidthPerMs < 0 {
		return fmt.Errorf("microarch: negative π/8 bandwidth")
	}
	if c.BufferAncillae < 0 {
		return fmt.Errorf("microarch: negative ancilla buffer capacity %v", c.BufferAncillae)
	}
	if c.Network != (network.Topology{}) {
		if err := c.Network.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// techConsts are the factory-derived constants of one technology.  Building
// a factory Design walks the bandwidth-matching arithmetic and allocates
// latency expressions, and Simulate needs these numbers on every call of a
// sweep, so they are memoised per technology (keyed by iontrap.TechKey).
type techConsts struct {
	generatorRatePerMs float64
	simpleArea         iontrap.Area
	pipelined          factory.Design
	pi8                factory.Design
}

var techConstsMemo sync.Map // iontrap.TechKey -> *techConsts

func constsFor(tech iontrap.Technology) *techConsts {
	key := tech.Key()
	if v, ok := techConstsMemo.Load(key); ok {
		return v.(*techConsts)
	}
	simple := factory.SimpleZeroFactory{Tech: tech}
	c := &techConsts{
		generatorRatePerMs: simple.ThroughputPerMs(),
		simpleArea:         simple.Area(),
		pipelined:          factory.PipelinedZeroFactory(tech),
		pi8:                factory.Pi8Factory(tech),
	}
	v, _ := techConstsMemo.LoadOrStore(key, c)
	return v.(*techConsts)
}

// generatorRatePerMs is the encoded-zero production rate of one per-qubit
// serial generator (the simple factory of Section 4.3).
func (c Config) generatorRatePerMs() float64 {
	return constsFor(c.Latency.Tech).generatorRatePerMs
}

// sharedFactoryRatePerMs is the rate of one shared pipelined factory.
func (c Config) sharedFactoryRatePerMs() float64 {
	return constsFor(c.Latency.Tech).pipelined.ThroughputPerMs
}

// AncillaFactoryArea reports the total ancilla-generation area implied by the
// configuration for a circuit with nQubits data qubits, optionally including
// the π/8 encoding supply (Figure 15's x axis).
func (c Config) AncillaFactoryArea(nQubits int) iontrap.Area {
	var area iontrap.Area
	tc := constsFor(c.Latency.Tech)
	switch c.Arch {
	case QLA, GQLA:
		area = iontrap.Area(float64(nQubits*c.GeneratorsPerQubit) * float64(tc.simpleArea))
	case CQLA, GCQLA:
		area = iontrap.Area(float64(c.CacheSlots*c.GeneratorsPerQubit) * float64(tc.simpleArea))
	case FullyMultiplexed:
		area = iontrap.Area(float64(c.SharedFactories) * float64(tc.pipelined.TotalArea()))
	}
	if c.Pi8BandwidthPerMs > 0 {
		area += factory.Pi8SupplyArea(tc.pi8, tc.pipelined, c.Pi8BandwidthPerMs)
	}
	return area
}
