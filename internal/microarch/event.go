package microarch

import (
	"fmt"
	"sync"

	"speedofdata/internal/iontrap"
	"speedofdata/internal/quantum"
	"speedofdata/internal/sim"
)

// simulateEvents is the event-driven core behind Simulate: the circuit's
// dataflow graph executes on a sim.Kernel, with gate completions as events
// and a late-priority dispatcher that issues newly ready gates in (readiness,
// gate index) order — the same order the closed form uses, so with infinite
// buffers (the fluid sources) the two models perform identical arithmetic
// and produce bit-identical results.
//
// With cfg.BufferAncillae > 0 each ancilla source becomes a finite
// sim.Resource fed by a rate-matched sim.Producer: gates drain the buffer
// (stalling until their demand is delivered) and producers stall when the
// buffer fills, which is the dynamics the closed form cannot express.
//
// The run state implements sim.Handler, so the per-event schedule — one
// completion per gate, one grant per buffered acquire, the dispatcher —
// carries a gate index instead of allocating a closure, and the whole state
// (kernel, ready queue, per-gate arrays, sources) is pooled across runs.
// Sweeps call Simulate thousands of times; the steady-state scheduling path
// allocates nothing (see TestSimulateEventsSteadyStateAllocations).

// pendGate carries a buffered gate's dispatch results to its grant event
// (the closure-free replacement for capturing them).
type pendGate struct {
	start, extra, weight float64
}

// eventRun is the pooled per-run state.
type eventRun struct {
	k   *sim.Kernel
	rq  *sim.TaskQueue
	c   *quantum.Circuit
	dag *quantum.DAG
	cfg Config

	model  *costModel
	fluid  bool
	fluids []sim.FluidSource
	bufs   []*sim.Resource
	prods  []*sim.Producer

	ready []float64
	indeg []int
	pend  []pendGate

	n                 int
	finished          int
	makespan          float64
	stall             float64
	dispatchScheduled bool
}

var eventRunPool = sync.Pool{New: func() any { return new(eventRun) }}

// Handler payloads: gate completions carry the gate index, buffered grants
// carry n+gate, and the dispatcher uses -1.
const dispatchIdx = -1

// Fire implements sim.Handler.
func (r *eventRun) Fire(idx int) {
	switch {
	case idx == dispatchIdx:
		r.dispatch()
	case idx >= r.n:
		r.granted(idx - r.n)
	default:
		r.completed(idx)
	}
}

// grow resizes the per-gate arrays, reusing capacity.
func (r *eventRun) grow(n int) {
	r.n = n
	if cap(r.ready) < n {
		r.ready = make([]float64, n)
		r.indeg = make([]int, n)
		r.pend = make([]pendGate, n)
	}
	r.ready = r.ready[:n]
	r.indeg = r.indeg[:n]
	r.pend = r.pend[:n]
	for i := range r.ready {
		r.ready[i] = 0
	}
	copy(r.indeg, r.dag.InDegree)
}

// sources (re)builds the run's ancilla supplies from the per-source rates,
// reusing pooled fluid sources, buffers and producers.
func (r *eventRun) sources(rates []float64) error {
	if r.fluid {
		if cap(r.fluids) < len(rates) {
			r.fluids = make([]sim.FluidSource, len(rates))
		}
		r.fluids = r.fluids[:len(rates)]
		for i, rate := range rates {
			if err := r.fluids[i].Reset(rate); err != nil {
				return err
			}
		}
		return nil
	}
	for i, rate := range rates {
		name := fmt.Sprintf("%v ancilla source %d", r.cfg.Arch, i)
		if i < len(r.bufs) {
			r.bufs[i].Reset(r.k, name, r.cfg.BufferAncillae)
			if err := r.prods[i].Reset(r.k, name, r.bufs[i], rate, 1); err != nil {
				return err
			}
		} else {
			buf := sim.NewResource(r.k, name, r.cfg.BufferAncillae)
			prod, err := sim.NewProducer(r.k, name, buf, rate, 1)
			if err != nil {
				return err
			}
			r.bufs = append(r.bufs, buf)
			r.prods = append(r.prods, prod)
		}
		r.prods[i].Start()
	}
	r.bufs = r.bufs[:len(rates)]
	r.prods = r.prods[:len(rates)]
	return nil
}

// scheduleDispatch arms the late-priority dispatcher for the current time.
func (r *eventRun) scheduleDispatch() {
	if !r.dispatchScheduled {
		r.dispatchScheduled = true
		r.k.AtFire(r.k.Now(), sim.PriorityLate, r, dispatchIdx)
	}
}

// finishGate records a gate's finish time and schedules its completion.
func (r *eventRun) finishGate(gi int, finishAt float64) {
	if finishAt > r.makespan {
		r.makespan = finishAt
	}
	r.k.AtFire(iontrap.Microseconds(finishAt), sim.PriorityNormal, r, gi)
}

// completed fires at a gate's finish time: successors become ready and the
// dispatcher is armed.
func (r *eventRun) completed(gi int) {
	finishAt := float64(r.k.Now())
	r.finished++
	for _, s := range r.dag.Succ[gi] {
		if finishAt > r.ready[s] {
			r.ready[s] = finishAt
		}
		r.indeg[s]--
		if r.indeg[s] == 0 {
			r.rq.Push(sim.Task{Index: s, Ready: r.ready[s]})
			r.scheduleDispatch()
		}
	}
	if r.finished == r.n {
		// The workload is done; drop any still-ticking producers.
		r.k.Stop()
	}
}

// granted fires when a buffered gate's ancilla demand has been delivered.
func (r *eventRun) granted(gi int) {
	issue := float64(r.k.Now())
	p := r.pend[gi]
	r.stall += issue - p.start
	r.finishGate(gi, issue+p.extra+p.weight)
}

// dispatch issues every ready gate in (readiness, gate index) order.
func (r *eventRun) dispatch() {
	r.dispatchScheduled = false
	for r.rq.Len() > 0 {
		item := r.rq.Pop()
		gi := item.Index
		start := item.Ready
		site, extraLatency, ancillae := r.model.dispatch(r.c.Gates[gi])
		weight := float64(r.cfg.Latency.GateWeightSpeedOfData(r.c.Gates[gi]))
		if r.fluid {
			issue := start
			if t := r.fluids[site].AvailableAt(ancillae); t > issue {
				issue = t
			}
			r.stall += issue - start
			r.finishGate(gi, issue+extraLatency+weight)
		} else {
			r.pend[gi] = pendGate{start: start, extra: extraLatency, weight: weight}
			r.bufs[site].AcquireFire(ancillae, r, r.n+gi)
		}
	}
}

func simulateEvents(c *quantum.Circuit, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	res := Result{Arch: cfg.Arch, AncillaFactoryArea: cfg.AncillaFactoryArea(c.NumQubits)}
	if len(c.Gates) == 0 {
		return res, nil
	}

	rates, err := sourceRates(cfg, c.NumQubits)
	if err != nil {
		return Result{}, err
	}

	r := eventRunPool.Get().(*eventRun)
	defer func() {
		r.c, r.dag, r.model, r.k, r.rq = nil, nil, nil, nil, nil
		eventRunPool.Put(r)
	}()
	r.k = sim.AcquireKernel()
	defer r.k.Release()
	r.rq = sim.AcquireTaskQueue()
	defer r.rq.Release()
	r.c, r.cfg = c, cfg
	r.dag = c.DAG()
	r.model = newCostModel(cfg, &res)
	r.fluid = cfg.BufferAncillae <= 0
	r.finished, r.makespan, r.stall, r.dispatchScheduled = 0, 0, 0, false
	r.grow(len(c.Gates))
	if err := r.sources(rates); err != nil {
		return Result{}, err
	}

	for i, d := range r.indeg {
		if d == 0 {
			r.rq.Push(sim.Task{Index: i, Ready: 0})
		}
	}
	r.k.AtFire(0, sim.PriorityLate, r, dispatchIdx)
	r.dispatchScheduled = true
	stats := r.k.Run()

	if r.finished != r.n {
		return Result{}, fmt.Errorf("microarch: dependence graph of %q is cyclic", c.Name)
	}
	res.ExecutionTime = iontrap.Microseconds(r.makespan)
	res.AncillaStallTime = iontrap.Microseconds(r.stall)
	res.Events = stats.Events
	if !r.fluid {
		for _, b := range r.bufs {
			if b.HighWater() > res.BufferHighWater {
				res.BufferHighWater = b.HighWater()
			}
		}
		for _, p := range r.prods {
			res.ProducerStallTime += p.StallTime()
		}
	}
	return res, nil
}
