package microarch

import (
	"fmt"

	"speedofdata/internal/iontrap"
	"speedofdata/internal/quantum"
	"speedofdata/internal/sim"
)

// simulateEvents is the event-driven core behind Simulate: the circuit's
// dataflow graph executes on a sim.Kernel, with gate completions as events
// and a late-priority dispatcher that issues newly ready gates in (readiness,
// gate index) order — the same order the closed form uses, so with infinite
// buffers (the fluid sources) the two models perform identical arithmetic
// and produce bit-identical results.
//
// With cfg.BufferAncillae > 0 each ancilla source becomes a finite
// sim.Resource fed by a rate-matched sim.Producer: gates drain the buffer
// (stalling until their demand is delivered) and producers stall when the
// buffer fills, which is the dynamics the closed form cannot express.
func simulateEvents(c *quantum.Circuit, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	res := Result{Arch: cfg.Arch, AncillaFactoryArea: cfg.AncillaFactoryArea(c.NumQubits)}
	if len(c.Gates) == 0 {
		return res, nil
	}

	dag := quantum.BuildDAG(c)
	n := len(c.Gates)
	rates, err := sourceRates(cfg, c.NumQubits)
	if err != nil {
		return Result{}, err
	}

	k := sim.NewKernel()
	model := newCostModel(cfg, &res)
	fluid := cfg.BufferAncillae <= 0
	var fluidSrcs []*sim.FluidSource
	var buffers []*sim.Resource
	var producers []*sim.Producer
	if fluid {
		fluidSrcs = make([]*sim.FluidSource, len(rates))
		for i, r := range rates {
			if fluidSrcs[i], err = sim.NewFluidSource(r); err != nil {
				return Result{}, err
			}
		}
	} else {
		buffers = make([]*sim.Resource, len(rates))
		producers = make([]*sim.Producer, len(rates))
		for i, r := range rates {
			name := fmt.Sprintf("%v ancilla source %d", cfg.Arch, i)
			buffers[i] = sim.NewResource(k, name, cfg.BufferAncillae)
			if producers[i], err = sim.NewProducer(k, name, buffers[i], r, 1); err != nil {
				return Result{}, err
			}
			producers[i].Start()
		}
	}

	ready := make([]float64, n)
	indeg := make([]int, n)
	copy(indeg, dag.InDegree)

	rq := &sim.TaskQueue{}
	finished := 0
	makespan := 0.0
	stall := 0.0
	dispatchScheduled := false

	var dispatch func()
	scheduleDispatch := func() {
		if !dispatchScheduled {
			dispatchScheduled = true
			k.At(k.Now(), sim.PriorityLate, dispatch)
		}
	}
	finishGate := func(gi int, finishAt float64) {
		if finishAt > makespan {
			makespan = finishAt
		}
		k.At(iontrap.Microseconds(finishAt), sim.PriorityNormal, func() {
			finished++
			for _, s := range dag.Succ[gi] {
				if finishAt > ready[s] {
					ready[s] = finishAt
				}
				indeg[s]--
				if indeg[s] == 0 {
					rq.Push(sim.Task{Index: s, Ready: ready[s]})
					scheduleDispatch()
				}
			}
			if finished == n {
				// The workload is done; drop any still-ticking producers.
				k.Stop()
			}
		})
	}
	dispatch = func() {
		dispatchScheduled = false
		for rq.Len() > 0 {
			item := rq.Pop()
			gi := item.Index
			start := item.Ready
			site, extraLatency, ancillae := model.dispatch(c.Gates[gi])
			weight := float64(cfg.Latency.GateWeightSpeedOfData(c.Gates[gi]))
			if fluid {
				issue := start
				if t := fluidSrcs[site].AvailableAt(ancillae); t > issue {
					issue = t
				}
				stall += issue - start
				finishGate(gi, issue+extraLatency+weight)
			} else {
				buffers[site].Acquire(ancillae, func() {
					issue := float64(k.Now())
					stall += issue - start
					finishGate(gi, issue+extraLatency+weight)
				})
			}
		}
	}

	for i, d := range indeg {
		if d == 0 {
			rq.Push(sim.Task{Index: i, Ready: 0})
		}
	}
	k.At(0, sim.PriorityLate, dispatch)
	dispatchScheduled = true
	stats := k.Run()

	if finished != n {
		return Result{}, fmt.Errorf("microarch: dependence graph of %q is cyclic", c.Name)
	}
	res.ExecutionTime = iontrap.Microseconds(makespan)
	res.AncillaStallTime = iontrap.Microseconds(stall)
	res.Events = stats.Events
	for _, b := range buffers {
		if b.HighWater() > res.BufferHighWater {
			res.BufferHighWater = b.HighWater()
		}
	}
	for _, p := range producers {
		res.ProducerStallTime += p.StallTime()
	}
	return res, nil
}
