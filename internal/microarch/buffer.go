package microarch

import (
	"context"
	"fmt"
	"math/rand"

	"speedofdata/internal/engine"
	"speedofdata/internal/quantum"
)

// BufferPoint is one point of a buffer-capacity sweep: the cost of giving an
// ancilla source only a finite output buffer.  As the capacity grows the
// execution time converges on the infinite-buffer (closed-form) makespan;
// small buffers couple the factory to the bursty demand profile and stall
// both sides.
type BufferPoint struct {
	// BufferAncillae is the per-source buffer capacity (zero = infinite, the
	// fluid reference point).
	BufferAncillae float64
	// ExecutionTimeMs is the simulated execution time.
	ExecutionTimeMs float64
	// AncillaStallMs is the total time gates waited on encoded ancillae.
	AncillaStallMs float64
	// ProducerStallMs is the total time ancilla production was blocked on a
	// full buffer.
	ProducerStallMs float64
	// BufferHighWater is the peak buffered ancilla level.
	BufferHighWater float64
	// Events is the number of kernel events processed.
	Events int
}

// DefaultBufferCaps returns the standard buffer-capacity sweep: powers of two
// from one encoded ancilla up to 256, then the infinite-buffer reference
// (zero) that the finite points converge to.
func DefaultBufferCaps() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 0}
}

// BufferSweep simulates the circuit at each ancilla buffer capacity and
// returns one point per capacity, in input order.  It runs sequentially;
// BufferSweepEngine is the parallel form.
func BufferSweep(c *quantum.Circuit, base Config, caps []float64) ([]BufferPoint, error) {
	return BufferSweepEngine(context.Background(), nil, c, base, caps)
}

// BufferSweepEngine runs the buffer-capacity sweep through the experiment
// engine, one job per capacity.
func BufferSweepEngine(ctx context.Context, eng *engine.Engine, c *quantum.Circuit, base Config, caps []float64) ([]BufferPoint, error) {
	if len(caps) == 0 {
		return nil, fmt.Errorf("microarch: no buffer capacities to sweep")
	}
	fp := c.Fingerprint()
	jobs := make([]engine.Job[BufferPoint], len(caps))
	for i, cap := range caps {
		cap := cap
		jobs[i] = engine.Job[BufferPoint]{
			Key: engine.Fingerprint("microarch.buffersweep", fp, base, cap),
			Run: func(context.Context, *rand.Rand) (BufferPoint, error) {
				if cap < 0 {
					return BufferPoint{}, fmt.Errorf("microarch: negative buffer capacity %v", cap)
				}
				cfg := base
				cfg.BufferAncillae = cap
				res, err := Simulate(c, cfg)
				if err != nil {
					return BufferPoint{}, err
				}
				return BufferPoint{
					BufferAncillae:  cap,
					ExecutionTimeMs: res.ExecutionTimeMs(),
					AncillaStallMs:  res.AncillaStallTime.Milliseconds(),
					ProducerStallMs: res.ProducerStallTime.Milliseconds(),
					BufferHighWater: res.BufferHighWater,
					Events:          res.Events,
				}, nil
			},
		}
	}
	return engine.Run(ctx, eng, jobs)
}
