package microarch

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"speedofdata/internal/engine"
	"speedofdata/internal/quantum"
)

// CurvePoint is one point of a Figure 15 curve: execution time as a function
// of total ancilla factory area for one microarchitecture.
type CurvePoint struct {
	// AreaMacroblocks is the ancilla factory area (x axis).
	AreaMacroblocks float64
	// ExecutionTimeMs is the simulated execution time (y axis).
	ExecutionTimeMs float64
	// Scale is the swept resource count (generators per qubit / per slot, or
	// shared factories) that produced the point.
	Scale int
	// AncillaStallMs is the total time gates waited on encoded ancillae.
	AncillaStallMs float64
	// BufferHighWater is the peak buffered ancilla level (finite-buffer
	// configurations only; zero under the fluid infinite-buffer model).
	BufferHighWater float64
}

// Curve is one architecture's execution-time/area trade-off curve.
type Curve struct {
	Arch   Architecture
	Points []CurvePoint
}

// Sweep simulates the circuit at each resource scale for one architecture
// and returns the resulting curve.  For QLA/GQLA and CQLA/GCQLA the scale is
// the number of generators per data qubit (or cache slot); for
// Fully-Multiplexed it is the number of shared pipelined factories.  It runs
// sequentially; SweepEngine is the parallel form.
func Sweep(c *quantum.Circuit, base Config, scales []int) (Curve, error) {
	return SweepEngine(context.Background(), nil, c, base, scales)
}

// SweepEngine runs one architecture's resource sweep through the experiment
// engine, simulating each scale as an independent job.
func SweepEngine(ctx context.Context, eng *engine.Engine, c *quantum.Circuit, base Config, scales []int) (Curve, error) {
	if len(scales) == 0 {
		return Curve{}, fmt.Errorf("microarch: no scales to sweep")
	}
	points, err := engine.Run(ctx, eng, scaleJobs(c, base, scales))
	if err != nil {
		return Curve{}, err
	}
	curve := Curve{Arch: base.Arch, Points: points}
	sortCurve(&curve)
	return curve, nil
}

// scaleJobs expands one architecture's scale list into engine jobs, each
// simulating the circuit at one resource scale.
func scaleJobs(c *quantum.Circuit, base Config, scales []int) []engine.Job[CurvePoint] {
	fp := c.Fingerprint()
	jobs := make([]engine.Job[CurvePoint], len(scales))
	for i, s := range scales {
		s := s
		jobs[i] = engine.Job[CurvePoint]{
			Key: engine.Fingerprint("microarch.simulate", fp, base, s),
			Run: func(context.Context, *rand.Rand) (CurvePoint, error) {
				if s <= 0 {
					return CurvePoint{}, fmt.Errorf("microarch: non-positive scale %d", s)
				}
				cfg := base
				switch base.Arch {
				case QLA, GQLA, CQLA, GCQLA:
					cfg.GeneratorsPerQubit = s
				case FullyMultiplexed:
					cfg.SharedFactories = s
				}
				res, err := Simulate(c, cfg)
				if err != nil {
					return CurvePoint{}, err
				}
				return CurvePoint{
					AreaMacroblocks: float64(res.AncillaFactoryArea),
					ExecutionTimeMs: res.ExecutionTimeMs(),
					Scale:           s,
					AncillaStallMs:  res.AncillaStallTime.Milliseconds(),
					BufferHighWater: res.BufferHighWater,
				}, nil
			},
		}
	}
	return jobs
}

func sortCurve(curve *Curve) {
	sort.Slice(curve.Points, func(i, j int) bool {
		return curve.Points[i].AreaMacroblocks < curve.Points[j].AreaMacroblocks
	})
}

// DefaultScales returns the resource sweep used for Figure 15: powers of two
// from one generator (or factory) up to the given maximum.
func DefaultScales(max int) []int {
	if max < 1 {
		max = 1
	}
	var scales []int
	for s := 1; s <= max; s *= 2 {
		scales = append(scales, s)
	}
	return scales
}

// DefaultMaxScale is the standard upper bound of the Figure 15 resource
// sweep: generators (or shared factories) are swept over powers of two up to
// this count.  The qsd CLI (-max-scale) and the HTTP API (?scale=) both
// default to it.
const DefaultMaxScale = 64

// ScalesFor returns the resource scales one architecture contributes to the
// Figure 15 grid: powers of two up to maxScale, except QLA and CQLA, whose
// original proposals fix one serial generator per site and so appear as
// single points.  The grid benches and the event/closed-form parity tests
// share this rule with Figure15Engine.
func ScalesFor(arch Architecture, maxScale int) []int {
	if arch == QLA || arch == CQLA {
		return []int{1}
	}
	return DefaultScales(maxScale)
}

// Figure15Config bundles the per-architecture settings used to regenerate
// Figure 15 for one benchmark.
type Figure15Config struct {
	// Base is the shared configuration (latency, movement, cache size, π/8
	// accounting); the architecture and resource counts are overridden per
	// curve.
	Base Config
	// MaxScale bounds the resource sweep (default DefaultMaxScale).
	MaxScale int
	// Archs restricts the comparison to a subset of organisations (nil = all
	// of Architectures()).  Job keys depend only on (circuit, config, scale),
	// so a filtered run shares its simulations with the full grid through the
	// engine cache.
	Archs []Architecture
}

// Figure15 produces the execution-time/area curves of Figure 15 for one
// benchmark circuit: QLA and CQLA as proposed (single generator per site),
// their generalisations GQLA and GCQLA swept over generators per site, and
// Fully-Multiplexed swept over shared factories.  It runs sequentially;
// Figure15Engine is the parallel form.
func Figure15(c *quantum.Circuit, cfg Figure15Config) (map[Architecture]Curve, error) {
	return Figure15Engine(context.Background(), nil, c, cfg)
}

// Figure15Engine regenerates Figure 15 through the experiment engine.  The
// whole architecture × scale grid is flattened into one job batch so every
// simulation runs concurrently, then the points are regrouped into per-
// architecture curves; results are identical to the sequential Figure15 for
// any worker count.
func Figure15Engine(ctx context.Context, eng *engine.Engine, c *quantum.Circuit, cfg Figure15Config) (map[Architecture]Curve, error) {
	maxScale := cfg.MaxScale
	if maxScale <= 0 {
		maxScale = DefaultMaxScale
	}
	archs := cfg.Archs
	if len(archs) == 0 {
		archs = Architectures()
	}
	var jobs []engine.Job[CurvePoint]
	var jobArch []Architecture
	for _, arch := range archs {
		base := cfg.Base
		base.Arch = arch
		for _, job := range scaleJobs(c, base, ScalesFor(arch, maxScale)) {
			jobs = append(jobs, job)
			jobArch = append(jobArch, arch)
		}
	}
	points, err := engine.Run(ctx, eng, jobs)
	if err != nil {
		return nil, err
	}
	out := make(map[Architecture]Curve)
	for i, p := range points {
		arch := jobArch[i]
		curve := out[arch]
		curve.Arch = arch
		curve.Points = append(curve.Points, p)
		out[arch] = curve
	}
	for arch, curve := range out {
		sortCurve(&curve)
		out[arch] = curve
	}
	return out, nil
}

// PlateauTimeMs returns the best (smallest) execution time on a curve, i.e.
// the plateau reached once ancilla generation stops being the bottleneck.
func PlateauTimeMs(curve Curve) float64 {
	best := 0.0
	for i, p := range curve.Points {
		if i == 0 || p.ExecutionTimeMs < best {
			best = p.ExecutionTimeMs
		}
	}
	return best
}

// AreaToReach returns the smallest area on the curve whose execution time is
// within the given factor of the curve's plateau, or the largest area if the
// curve never gets that close.
func AreaToReach(curve Curve, factor float64) float64 {
	plateau := PlateauTimeMs(curve)
	for _, p := range curve.Points {
		if p.ExecutionTimeMs <= plateau*factor {
			return p.AreaMacroblocks
		}
	}
	if len(curve.Points) == 0 {
		return 0
	}
	return curve.Points[len(curve.Points)-1].AreaMacroblocks
}
