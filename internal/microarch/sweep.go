package microarch

import (
	"fmt"
	"sort"

	"speedofdata/internal/quantum"
)

// CurvePoint is one point of a Figure 15 curve: execution time as a function
// of total ancilla factory area for one microarchitecture.
type CurvePoint struct {
	// AreaMacroblocks is the ancilla factory area (x axis).
	AreaMacroblocks float64
	// ExecutionTimeMs is the simulated execution time (y axis).
	ExecutionTimeMs float64
	// Scale is the swept resource count (generators per qubit / per slot, or
	// shared factories) that produced the point.
	Scale int
}

// Curve is one architecture's execution-time/area trade-off curve.
type Curve struct {
	Arch   Architecture
	Points []CurvePoint
}

// Sweep simulates the circuit at each resource scale for one architecture
// and returns the resulting curve.  For QLA/GQLA and CQLA/GCQLA the scale is
// the number of generators per data qubit (or cache slot); for
// Fully-Multiplexed it is the number of shared pipelined factories.
func Sweep(c *quantum.Circuit, base Config, scales []int) (Curve, error) {
	if len(scales) == 0 {
		return Curve{}, fmt.Errorf("microarch: no scales to sweep")
	}
	curve := Curve{Arch: base.Arch}
	for _, s := range scales {
		if s <= 0 {
			return Curve{}, fmt.Errorf("microarch: non-positive scale %d", s)
		}
		cfg := base
		switch base.Arch {
		case QLA, GQLA, CQLA, GCQLA:
			cfg.GeneratorsPerQubit = s
		case FullyMultiplexed:
			cfg.SharedFactories = s
		}
		res, err := Simulate(c, cfg)
		if err != nil {
			return Curve{}, err
		}
		curve.Points = append(curve.Points, CurvePoint{
			AreaMacroblocks: float64(res.AncillaFactoryArea),
			ExecutionTimeMs: res.ExecutionTimeMs(),
			Scale:           s,
		})
	}
	sort.Slice(curve.Points, func(i, j int) bool {
		return curve.Points[i].AreaMacroblocks < curve.Points[j].AreaMacroblocks
	})
	return curve, nil
}

// DefaultScales returns the resource sweep used for Figure 15: powers of two
// from one generator (or factory) up to the given maximum.
func DefaultScales(max int) []int {
	if max < 1 {
		max = 1
	}
	var scales []int
	for s := 1; s <= max; s *= 2 {
		scales = append(scales, s)
	}
	return scales
}

// Figure15Config bundles the per-architecture settings used to regenerate
// Figure 15 for one benchmark.
type Figure15Config struct {
	// Base is the shared configuration (latency, movement, cache size, π/8
	// accounting); the architecture and resource counts are overridden per
	// curve.
	Base Config
	// MaxScale bounds the resource sweep (default 64).
	MaxScale int
}

// Figure15 produces the execution-time/area curves of Figure 15 for one
// benchmark circuit: QLA and CQLA as proposed (single generator per site),
// their generalisations GQLA and GCQLA swept over generators per site, and
// Fully-Multiplexed swept over shared factories.
func Figure15(c *quantum.Circuit, cfg Figure15Config) (map[Architecture]Curve, error) {
	maxScale := cfg.MaxScale
	if maxScale <= 0 {
		maxScale = 64
	}
	scales := DefaultScales(maxScale)
	out := make(map[Architecture]Curve)
	for _, arch := range Architectures() {
		base := cfg.Base
		base.Arch = arch
		var archScales []int
		switch arch {
		case QLA, CQLA:
			// The original proposals fix one serial generator per site; they
			// appear as single points.
			archScales = []int{1}
		default:
			archScales = scales
		}
		curve, err := Sweep(c, base, archScales)
		if err != nil {
			return nil, err
		}
		out[arch] = curve
	}
	return out, nil
}

// PlateauTimeMs returns the best (smallest) execution time on a curve, i.e.
// the plateau reached once ancilla generation stops being the bottleneck.
func PlateauTimeMs(curve Curve) float64 {
	best := 0.0
	for i, p := range curve.Points {
		if i == 0 || p.ExecutionTimeMs < best {
			best = p.ExecutionTimeMs
		}
	}
	return best
}

// AreaToReach returns the smallest area on the curve whose execution time is
// within the given factor of the curve's plateau, or the largest area if the
// curve never gets that close.
func AreaToReach(curve Curve, factor float64) float64 {
	plateau := PlateauTimeMs(curve)
	for _, p := range curve.Points {
		if p.ExecutionTimeMs <= plateau*factor {
			return p.AreaMacroblocks
		}
	}
	if len(curve.Points) == 0 {
		return 0
	}
	return curve.Points[len(curve.Points)-1].AreaMacroblocks
}
