package sim

import (
	"errors"
	"math"
	"testing"

	"speedofdata/internal/iontrap"
)

func TestKernelFiresInTimeOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	k.At(30, PriorityNormal, func() { order = append(order, 3) })
	k.At(10, PriorityNormal, func() { order = append(order, 1) })
	k.At(20, PriorityNormal, func() {
		order = append(order, 2)
		// Events scheduled mid-run interleave by time.
		k.After(5, PriorityNormal, func() { order = append(order, 25) })
	})
	stats := k.Run()
	want := []int{1, 2, 25, 3}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
	if stats.Events != 4 || stats.End != 30 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestKernelTieBreakIsStable(t *testing.T) {
	// Same timestamp: priority first, then insertion order — repeatably.
	for trial := 0; trial < 3; trial++ {
		k := NewKernel()
		var order []string
		k.At(5, PriorityLate, func() { order = append(order, "late-a") })
		k.At(5, PriorityNormal, func() { order = append(order, "normal-a") })
		k.At(5, PriorityNormal, func() { order = append(order, "normal-b") })
		k.At(5, PriorityLate, func() { order = append(order, "late-b") })
		k.Run()
		want := []string{"normal-a", "normal-b", "late-a", "late-b"}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("trial %d: fired %v, want %v", trial, order, want)
			}
		}
	}
}

func TestKernelRejectsPastEvents(t *testing.T) {
	k := NewKernel()
	k.At(10, PriorityNormal, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past should panic")
			}
		}()
		k.At(5, PriorityNormal, func() {})
	})
	k.Run()
}

func TestKernelStopDropsRemainingEvents(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.At(1, PriorityNormal, func() { fired++; k.Stop() })
	k.At(2, PriorityNormal, func() { fired++ })
	stats := k.Run()
	if fired != 1 || stats.Events != 1 {
		t.Errorf("fired %d events after Stop, want 1", fired)
	}
	if k.Pending() != 1 {
		t.Errorf("pending = %d, want 1", k.Pending())
	}
}

func TestFluidSourceMatchesTokenBucket(t *testing.T) {
	s, err := NewFluidSource(0.5) // 0.5 ancillae per µs
	if err != nil {
		t.Fatal(err)
	}
	// The closed-form token bucket returns consumed/rate after accumulating.
	if got := s.AvailableAt(2); got != 4 {
		t.Errorf("first acquire at %v, want 4", got)
	}
	if got := s.AvailableAt(3); got != 10 {
		t.Errorf("second acquire at %v, want 10", got)
	}
	if s.Consumed() != 5 {
		t.Errorf("consumed = %v, want 5", s.Consumed())
	}
	// An infinite rate grants immediately.
	inf, err := NewFluidSource(math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := inf.AvailableAt(100); got != 0 {
		t.Errorf("infinite-rate source granted at %v, want 0", got)
	}
}

func TestZeroRateIsTypedError(t *testing.T) {
	if _, err := NewFluidSource(0); !errors.Is(err, ErrZeroRate) {
		t.Errorf("zero-rate fluid source error = %v, want ErrZeroRate", err)
	}
	if _, err := NewFluidSource(-1); !errors.Is(err, ErrZeroRate) {
		t.Errorf("negative-rate fluid source error = %v, want ErrZeroRate", err)
	}
	k := NewKernel()
	out := NewResource(k, "buf", 4)
	if _, err := NewProducer(k, "p", out, 0, 1); !errors.Is(err, ErrZeroRate) {
		t.Errorf("zero-rate producer error = %v, want ErrZeroRate", err)
	}
	if _, err := NewProducer(k, "p", out, 1, 0); err == nil {
		t.Error("zero-batch producer should be rejected")
	}
}

func TestResourceGrantsFIFO(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "anc", 0) // unbounded
	var grants []string
	k.At(0, PriorityNormal, func() {
		r.Acquire(2, func() { grants = append(grants, "first") })
		r.Acquire(1, func() { grants = append(grants, "second") })
	})
	k.At(5, PriorityNormal, func() { r.Put(2) })  // completes only the first
	k.At(10, PriorityNormal, func() { r.Put(5) }) // completes the second, rest buffered
	k.Run()
	if len(grants) != 2 || grants[0] != "first" || grants[1] != "second" {
		t.Fatalf("grants = %v", grants)
	}
	if r.Level() != 4 {
		t.Errorf("leftover level = %v, want 4", r.Level())
	}
	if r.Consumed() != 3 || r.Produced() != 7 {
		t.Errorf("consumed %v / produced %v, want 3 / 7", r.Consumed(), r.Produced())
	}
	// The first request waited from t=0 to t=5, the second to t=10.
	if r.WaitTime() != 15 {
		t.Errorf("wait time = %v, want 15", r.WaitTime())
	}
}

func TestAcquireLargerThanCapacityDrainsIncrementally(t *testing.T) {
	// Demand 6 against a buffer of 2: deliveries stream through the buffer
	// as they are produced, so the request still completes.
	k := NewKernel()
	r := NewResource(k, "anc", 2)
	p, err := NewProducer(k, "factory", r, 1.0, 1) // 1 per µs
	if err != nil {
		t.Fatal(err)
	}
	var grantedAt iontrap.Microseconds = -1
	k.At(0, PriorityNormal, func() {
		r.Acquire(6, func() { grantedAt = k.Now(); k.Stop() })
		p.Start()
	})
	k.Run()
	if grantedAt != 6 {
		t.Errorf("demand of 6 at 1/µs granted at %v, want 6", grantedAt)
	}
}

func TestProducerStallsOnFullBuffer(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "anc", 3)
	p, err := NewProducer(k, "factory", r, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	var level float64
	k.At(0, PriorityNormal, func() { p.Start() })
	// By t=3 the buffer is full; the producer holds its 4th item and stalls.
	// At t=10 a consumer takes 2, unblocking production.
	k.At(10, PriorityNormal, func() { r.Acquire(2, func() {}) })
	k.At(20, PriorityNormal, func() {
		level = r.Level()
		k.Stop()
	})
	k.Run()
	if p.StallTime() < 5 {
		t.Errorf("producer stall = %v, want >= 5 (stalled from ~t=4 to t=10)", p.StallTime())
	}
	if r.HighWater() != 3 {
		t.Errorf("high water = %v, want the 3-ancilla capacity", r.HighWater())
	}
	if level != 3 {
		t.Errorf("level at t=20 = %v, want refilled to capacity 3", level)
	}
	if p.Emitted() < 5 {
		t.Errorf("emitted = %v, want production to have resumed", p.Emitted())
	}
}

func TestDeterministicRepeatedRuns(t *testing.T) {
	run := func() (float64, iontrap.Microseconds, int) {
		k := NewKernel()
		r := NewResource(k, "anc", 4)
		p, err := NewProducer(k, "factory", r, 0.7, 1)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		k.At(0, PriorityNormal, func() { p.Start() })
		for i := 1; i <= 5; i++ {
			n := float64(i)
			k.At(iontrap.Microseconds(i)*3, PriorityNormal, func() {
				r.Acquire(n, func() {
					total++
					if total == 5 {
						k.Stop()
					}
				})
			})
		}
		stats := k.Run()
		return r.Consumed(), stats.End, stats.Events
	}
	c1, e1, n1 := run()
	c2, e2, n2 := run()
	if c1 != c2 || e1 != e2 || n1 != n2 {
		t.Errorf("runs differ: (%v,%v,%v) vs (%v,%v,%v)", c1, e1, n1, c2, e2, n2)
	}
}
