package sim

import (
	"testing"

	"speedofdata/internal/iontrap"
)

// countingHandler reschedules itself a fixed number of times — the shape of
// every simulation driver's completion chain.
type countingHandler struct {
	k     *Kernel
	fired int
	limit int
}

func (h *countingHandler) Fire(idx int) {
	h.fired++
	if h.fired < h.limit {
		h.k.AtFire(h.k.Now()+1, PriorityNormal, h, idx+1)
	}
}

// The kernel's scheduling loop is the hot path of every event-driven run:
// once the event slice has grown to its working size, AtFire/Run must not
// allocate per event.
func TestKernelSchedulingLoopAllocations(t *testing.T) {
	k := AcquireKernel()
	defer k.Release()
	h := &countingHandler{k: k, limit: 1 << 30}
	// Warm up the event-slice capacity.
	k.Reset()
	h.fired, h.limit = 0, 64
	for i := 0; i < 64; i++ {
		k.AtFire(iontrap.Microseconds(i), PriorityNormal, h, i)
	}
	k.Run()

	allocs := testing.AllocsPerRun(100, func() {
		k.Reset()
		h.fired, h.limit = 0, 256
		k.AtFire(0, PriorityNormal, h, 0)
		stats := k.Run()
		if stats.Events != 256 {
			t.Fatalf("events = %d, want 256", stats.Events)
		}
	})
	if allocs != 0 {
		t.Fatalf("kernel schedule/run allocations = %v per 256-event run, want 0", allocs)
	}
}

// AcquireFire must grant in the same FIFO order and at the same times as
// Acquire.
func TestAcquireFireMatchesAcquire(t *testing.T) {
	timesOf := func(useFire bool) []iontrap.Microseconds {
		k := AcquireKernel()
		defer k.Release()
		r := NewResource(k, "anc", 0)
		p, err := NewProducer(k, "factory", r, 0.5, 1)
		if err != nil {
			t.Fatal(err)
		}
		p.Start()
		var times []iontrap.Microseconds
		done := 0
		for i := 0; i < 4; i++ {
			n := float64(i + 1)
			if useFire {
				r.AcquireFire(n, fireFunc(func(int) {
					times = append(times, k.Now())
					if done++; done == 4 {
						k.Stop()
					}
				}), i)
			} else {
				r.Acquire(n, func() {
					times = append(times, k.Now())
					if done++; done == 4 {
						k.Stop()
					}
				})
			}
		}
		k.Run()
		return times
	}
	a, b := timesOf(false), timesOf(true)
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("grant counts = %d/%d, want 4", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("grant %d: Acquire at %v, AcquireFire at %v", i, a[i], b[i])
		}
	}
}

// fireFunc adapts a function to Handler for tests.
type fireFunc func(int)

func (f fireFunc) Fire(idx int) { f(idx) }

// Reset must preserve backing capacity and produce a kernel/queue/resource
// indistinguishable from a fresh one.
func TestResetKeepsCapacityAndSemantics(t *testing.T) {
	q := AcquireTaskQueue()
	defer q.Release()
	for i := 0; i < 100; i++ {
		q.Push(Task{Index: i, Ready: float64(100 - i)})
	}
	q.Reset()
	if q.Len() != 0 {
		t.Fatalf("reset queue length = %d, want 0", q.Len())
	}
	allocs := testing.AllocsPerRun(50, func() {
		q.Reset()
		for i := 0; i < 100; i++ {
			q.Push(Task{Index: i, Ready: float64(100 - i)})
		}
		last := -1.0
		for q.Len() > 0 {
			item := q.Pop()
			if item.Ready < last {
				t.Fatal("pop order broken after Reset")
			}
			last = item.Ready
		}
	})
	if allocs != 0 {
		t.Fatalf("reused queue allocations = %v per run, want 0", allocs)
	}

	k := NewKernel()
	r := NewResource(k, "a", 2)
	r.Put(2)
	r.Reset(k, "b", 5)
	if r.Name != "b" || r.Level() != 0 || r.Produced() != 0 || r.HighWater() != 0 {
		t.Fatalf("reset resource carries old state: %+v", r)
	}
	if got := r.Put(10); got != 5 {
		t.Fatalf("reset resource accepted %v, want the new capacity 5", got)
	}

	p, err := NewProducer(k, "p", r, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	if err := p.Reset(k, "p2", r, 2, 1); err != nil {
		t.Fatal(err)
	}
	if p.Emitted() != 0 || p.StallTime() != 0 || p.Name != "p2" {
		t.Fatalf("reset producer carries old state: %+v", p)
	}
	if err := p.Reset(k, "bad", r, 0, 1); err == nil {
		t.Fatal("reset with zero rate must fail")
	}
}

// A released kernel must come back observationally fresh.
func TestKernelPoolReuseIsFresh(t *testing.T) {
	k := AcquireKernel()
	k.At(5, PriorityNormal, func() {})
	k.Run()
	k.Release()
	k2 := AcquireKernel()
	defer k2.Release()
	if k2.Now() != 0 || k2.Pending() != 0 {
		t.Fatalf("pooled kernel not reset: now=%v pending=%d", k2.Now(), k2.Pending())
	}
}

// BenchmarkKernelScheduleLoop measures the closure-free schedule/run cycle
// (the per-event cost every simulation driver pays); the CI perf smoke runs
// it at one iteration to keep the kernel hot path exercised.
func BenchmarkKernelScheduleLoop(b *testing.B) {
	k := AcquireKernel()
	defer k.Release()
	h := &countingHandler{k: k}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Reset()
		h.fired, h.limit = 0, 4096
		k.AtFire(0, PriorityNormal, h, 0)
		if stats := k.Run(); stats.Events != 4096 {
			b.Fatalf("events = %d", stats.Events)
		}
	}
	b.ReportMetric(4096*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}
