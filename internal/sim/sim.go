// Package sim is the deterministic discrete-event simulation kernel behind
// the event-driven execution models: a monotonic event queue keyed by
// iontrap.Microseconds with stable tie-breaking, plus the resource
// abstractions (finite ancilla buffers, rate-limited producers, fluid
// sources) that the factory, microarch and schedule layers plug into.
//
// The closed-form analyses of Sections 3-5 treat ancilla generation as an
// infinitely buffered token bucket; this kernel removes that assumption so
// the reproduction can model finite buffers, factory pipeline stalls, bursty
// demand and co-scheduled benchmarks contending for one factory.  Runs are
// fully deterministic: events at equal times fire in (priority, insertion)
// order, and no randomness is used anywhere in the kernel.
package sim

import (
	"errors"
	"fmt"
	"sync"

	"speedofdata/internal/iontrap"
)

// Handler receives kernel events without a per-event closure.  Drivers that
// schedule in loops (one completion per gate, one tick per production batch)
// implement Fire and pass a small integer payload — typically a gate index —
// through AtFire/AfterFire, so scheduling allocates nothing: the event holds
// an interface already in hand plus an int, instead of a freshly allocated
// closure capturing the same state.
type Handler interface {
	Fire(idx int)
}

// ErrZeroRate reports a producer or fluid source configured with a
// non-positive production rate: nothing would ever become available, so the
// configuration is rejected up front instead of letting +Inf availability
// times propagate into results (and from there into JSON encoders).
var ErrZeroRate = errors.New("sim: ancilla production rate is not positive")

// Priority orders events that share a timestamp.  Lower priorities fire
// first; insertion order breaks remaining ties.
type Priority int

const (
	// PriorityNormal is for ordinary events: gate completions, producer
	// ticks, resource grants.
	PriorityNormal Priority = iota
	// PriorityLate events fire after every normal event at the same
	// timestamp.  Dispatchers use it so they observe the full batch of
	// same-time completions before issuing new work.
	PriorityLate
)

// event is one scheduled callback: either a closure or a Handler+payload.
type event struct {
	at  iontrap.Microseconds
	pri Priority
	seq uint64
	fn  func()
	h   Handler
	idx int
}

// before is the heap ordering: time, then priority, then insertion sequence.
// The sequence component makes tie-breaking stable, which is what makes whole
// runs deterministic.
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	if e.pri != o.pri {
		return e.pri < o.pri
	}
	return e.seq < o.seq
}

// Stats summarises one kernel run.
type Stats struct {
	// Events is the number of events fired.
	Events int
	// End is the simulated time of the last fired event.
	End iontrap.Microseconds
}

// Kernel is the discrete-event simulator: a monotonic clock and an event
// queue.  Build a kernel, schedule initial events, then Run it to exhaustion
// (or until Stop).
type Kernel struct {
	now     iontrap.Microseconds
	seq     uint64
	events  []event
	stopped bool
	stats   Stats
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current simulated time.
func (k *Kernel) Now() iontrap.Microseconds { return k.now }

// At schedules fn at absolute time t.  Scheduling into the past is a
// programming error and panics: a discrete-event clock is monotonic.
func (k *Kernel) At(t iontrap.Microseconds, pri Priority, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: event scheduled at %v before current time %v", t, k.now))
	}
	k.events = append(k.events, event{at: t, pri: pri, seq: k.seq, fn: fn})
	k.seq++
	k.up(len(k.events) - 1)
}

// AtFire schedules h.Fire(idx) at absolute time t.  It is the
// allocation-free form of At for callers that schedule in loops: the event
// stores the handler interface and payload instead of a closure.  Ordering
// is identical to At — events fire in (time, priority, insertion) order
// regardless of which form scheduled them.
func (k *Kernel) AtFire(t iontrap.Microseconds, pri Priority, h Handler, idx int) {
	if t < k.now {
		panic(fmt.Sprintf("sim: event scheduled at %v before current time %v", t, k.now))
	}
	k.events = append(k.events, event{at: t, pri: pri, seq: k.seq, h: h, idx: idx})
	k.seq++
	k.up(len(k.events) - 1)
}

// After schedules fn d microseconds from now.
func (k *Kernel) After(d iontrap.Microseconds, pri Priority, fn func()) {
	k.At(k.now+d, pri, fn)
}

// AfterFire schedules h.Fire(idx) d microseconds from now.
func (k *Kernel) AfterFire(d iontrap.Microseconds, pri Priority, h Handler, idx int) {
	k.AtFire(k.now+d, pri, h, idx)
}

// Stop halts the run after the current event; remaining events are dropped.
// Drivers call it once their workload completes so idle producers do not
// keep ticking.
func (k *Kernel) Stop() { k.stopped = true }

// Run fires events in (time, priority, insertion) order until the queue
// drains or Stop is called, and returns the run statistics.
func (k *Kernel) Run() Stats {
	for !k.stopped && len(k.events) > 0 {
		e := k.pop()
		k.now = e.at
		k.stats.Events++
		k.stats.End = e.at
		if e.h != nil {
			e.h.Fire(e.idx)
		} else {
			e.fn()
		}
	}
	// One atomic add per run (not per event) keeps the loop's zero-overhead
	// guarantee while feeding the process-wide event counter.
	eventsFired.Add(int64(k.stats.Events))
	runsDone.Add(1)
	return k.stats
}

// Pending returns the number of scheduled events not yet fired.
func (k *Kernel) Pending() int { return len(k.events) }

// Reset returns the kernel to time zero with an empty queue, keeping the
// event slice's backing capacity so a reused kernel schedules without
// reallocating.  Outstanding events are dropped (their closures released).
func (k *Kernel) Reset() {
	for i := range k.events {
		k.events[i] = event{}
	}
	k.events = k.events[:0]
	k.now, k.seq, k.stopped, k.stats = 0, 0, false, Stats{}
}

// kernelPool recycles kernels (and their event-queue capacity) across
// simulation runs; see AcquireKernel.
var kernelPool = sync.Pool{New: func() any {
	kernelNews.Add(1)
	return NewKernel()
}}

// AcquireKernel returns a reset kernel, reusing pooled backing storage when
// available.  Release it after the run so the next simulation skips the
// queue's growth allocations.  Pooling never affects results: a reset
// kernel is observationally identical to a new one.
func AcquireKernel() *Kernel {
	kernelAcquires.Add(1)
	return kernelPool.Get().(*Kernel)
}

// Release resets the kernel and returns it to the pool.  The caller must
// not use it afterwards.
func (k *Kernel) Release() {
	k.Reset()
	kernelPool.Put(k)
}

// up restores the heap property from leaf i.
func (k *Kernel) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if k.events[parent].before(k.events[i]) {
			break
		}
		k.events[parent], k.events[i] = k.events[i], k.events[parent]
		i = parent
	}
}

// pop removes and returns the earliest event.
func (k *Kernel) pop() event {
	top := k.events[0]
	last := len(k.events) - 1
	k.events[0] = k.events[last]
	k.events[last] = event{} // release the closure
	k.events = k.events[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(k.events) && k.events[l].before(k.events[smallest]) {
			smallest = l
		}
		if r < len(k.events) && k.events[r].before(k.events[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		k.events[i], k.events[smallest] = k.events[smallest], k.events[i]
		i = smallest
	}
	return top
}
