package sim

import (
	"fmt"

	"speedofdata/internal/iontrap"
)

// grantEps absorbs floating-point residue when deciding whether a request's
// remaining demand has been fully delivered.
const grantEps = 1e-9

// FluidSource is the infinite-buffer token-bucket ancilla source of the
// closed-form analyses: production accumulates continuously at a steady rate,
// so the time at which a cumulative demand of c ancillae is available is
// c/rate.  It exists so the event-driven simulators can reproduce the
// analytical results bit for bit when buffers are configured infinite — the
// parity oracle for every finite-buffer extension.
type FluidSource struct {
	ratePerUs float64
	consumed  float64
}

// NewFluidSource builds a fluid source producing ratePerUs ancillae per
// microsecond.  A non-positive rate returns ErrZeroRate (an infinite rate is
// allowed and grants everything immediately).
func NewFluidSource(ratePerUs float64) (*FluidSource, error) {
	if !(ratePerUs > 0) {
		return nil, fmt.Errorf("fluid source rate %v: %w", ratePerUs, ErrZeroRate)
	}
	return &FluidSource{ratePerUs: ratePerUs}, nil
}

// Reset re-initialises the source in place for a new run (same validation
// as NewFluidSource), letting simulation drivers reuse per-source storage
// across runs.
func (s *FluidSource) Reset(ratePerUs float64) error {
	if !(ratePerUs > 0) {
		return fmt.Errorf("fluid source rate %v: %w", ratePerUs, ErrZeroRate)
	}
	*s = FluidSource{ratePerUs: ratePerUs}
	return nil
}

// AvailableAt reserves n more ancillae and returns the earliest time (in
// microseconds since the run started) by which the cumulative reservation has
// been produced.  The arithmetic — accumulate, then divide once — is exactly
// the closed-form token bucket's, which is what makes infinite-buffer
// event-driven runs bit-identical to the analytical model.
func (s *FluidSource) AvailableAt(n float64) float64 {
	s.consumed += n
	return s.consumed / s.ratePerUs
}

// Consumed returns the cumulative ancillae reserved so far.
func (s *FluidSource) Consumed() float64 { return s.consumed }

// request is one pending Acquire: demand is delivered incrementally as the
// resource is replenished (ancillae are handed over the moment they exist, so
// a demand larger than the buffer capacity still completes).  The completion
// is either a closure or a Handler+payload (the allocation-free form).
type request struct {
	remaining float64
	since     iontrap.Microseconds
	fn        func()
	h         Handler
	idx       int
}

// waiter is one registered OnSpace callback in either form.
type waiter struct {
	fn  func()
	h   Handler
	idx int
}

// Resource is a finite-buffer store of a fungible quantity (encoded
// ancillae, physical qubits between factory stages).  Producers deposit with
// Put and stall when the buffer is full; consumers Acquire a demand and are
// granted FIFO as the quantity becomes available.  All hand-offs happen
// through kernel events, so interleavings are deterministic.
type Resource struct {
	// Name labels the resource in diagnostics.
	Name string

	k        *Kernel
	capacity float64 // <= 0 means unbounded
	level    float64
	pending  []request
	waiters  []waiter // producers blocked on a full buffer

	produced  float64
	consumed  float64
	highWater float64
	waitUs    iontrap.Microseconds
}

// NewResource builds a buffer with the given capacity; capacity <= 0 means
// unbounded.
func NewResource(k *Kernel, name string, capacity float64) *Resource {
	return &Resource{Name: name, k: k, capacity: capacity}
}

// Level returns the currently buffered quantity.
func (r *Resource) Level() float64 { return r.level }

// HighWater returns the largest buffered level observed.
func (r *Resource) HighWater() float64 { return r.highWater }

// Produced returns the cumulative quantity deposited.
func (r *Resource) Produced() float64 { return r.produced }

// Consumed returns the cumulative quantity granted to consumers.
func (r *Resource) Consumed() float64 { return r.consumed }

// WaitTime returns the total time Acquire requests spent waiting for their
// full demand.
func (r *Resource) WaitTime() iontrap.Microseconds { return r.waitUs }

// Acquire requests n units.  fn fires (as a normal-priority kernel event)
// once the full demand has been delivered; requests are served first come,
// first served, draining the buffer incrementally so demands larger than the
// capacity still complete.  A zero demand is granted immediately.
func (r *Resource) Acquire(n float64, fn func()) {
	if n <= grantEps {
		r.k.At(r.k.Now(), PriorityNormal, fn)
		return
	}
	r.pending = append(r.pending, request{remaining: n, since: r.k.Now(), fn: fn})
	r.drain()
}

// AcquireFire is the allocation-free form of Acquire: h.Fire(idx) fires
// once the full demand has been delivered.  Grant order and timing are
// identical to Acquire.
func (r *Resource) AcquireFire(n float64, h Handler, idx int) {
	if n <= grantEps {
		r.k.AtFire(r.k.Now(), PriorityNormal, h, idx)
		return
	}
	r.pending = append(r.pending, request{remaining: n, since: r.k.Now(), h: h, idx: idx})
	r.drain()
}

// Put deposits up to n units, feeding pending requests directly and then the
// buffer up to its capacity.  It returns the quantity accepted; producers
// hold the remainder and re-Put when OnSpace signals room.
func (r *Resource) Put(n float64) float64 {
	if n <= 0 {
		return 0
	}
	accepted := 0.0
	// Pending consumers take delivery directly, bypassing the buffer.
	for n > grantEps && len(r.pending) > 0 {
		take := n
		if rem := r.pending[0].remaining; take > rem {
			take = rem
		}
		n -= take
		accepted += take
		r.deliver(take)
	}
	if n > grantEps {
		room := n
		if r.capacity > 0 {
			room = r.capacity - r.level
			if room > n {
				room = n
			}
			if room < 0 {
				room = 0
			}
		}
		r.level += room
		accepted += room
		if r.level > r.highWater {
			r.highWater = r.level
		}
	}
	r.produced += accepted
	return accepted
}

// deliver hands take units to the head request, completing it when its
// demand is met.
func (r *Resource) deliver(take float64) {
	head := &r.pending[0]
	head.remaining -= take
	r.consumed += take
	if head.remaining <= grantEps {
		done := *head
		r.pending = r.pending[1:]
		r.waitUs += r.k.Now() - done.since
		if done.h != nil {
			r.k.AtFire(r.k.Now(), PriorityNormal, done.h, done.idx)
		} else {
			r.k.At(r.k.Now(), PriorityNormal, done.fn)
		}
	}
}

// drain moves buffered quantity into pending requests and wakes stalled
// producers if space was freed.
func (r *Resource) drain() {
	freed := false
	for r.level > grantEps && len(r.pending) > 0 {
		take := r.level
		if rem := r.pending[0].remaining; take > rem {
			take = rem
		}
		r.level -= take
		freed = true
		r.deliver(take)
	}
	if freed && len(r.waiters) > 0 {
		ws := r.waiters
		r.waiters = nil
		for _, w := range ws {
			if w.h != nil {
				w.h.Fire(w.idx)
			} else {
				w.fn()
			}
		}
	}
}

// CancelAcquireFire withdraws a pending AcquireFire identified by its
// handler and payload, preserving the FIFO order of the remaining requests.
// It reports whether a matching request was still pending: false means the
// demand was already fully delivered (the completion event is en route and
// will fire), so the caller must let that grant stand.  Fault injection uses
// this to pull teleports off a dying link without disturbing grants that
// already escaped.
func (r *Resource) CancelAcquireFire(h Handler, idx int) bool {
	for i := range r.pending {
		if r.pending[i].h == h && r.pending[i].idx == idx {
			r.pending = append(r.pending[:i], r.pending[i+1:]...)
			return true
		}
	}
	return false
}

// OnSpace registers a one-shot callback invoked the next time buffered
// quantity is consumed (i.e. space frees up).  Producers use it to resume
// after stalling on a full buffer.
func (r *Resource) OnSpace(fn func()) { r.waiters = append(r.waiters, waiter{fn: fn}) }

// OnSpaceFire is the allocation-free form of OnSpace.
func (r *Resource) OnSpaceFire(h Handler, idx int) {
	r.waiters = append(r.waiters, waiter{h: h, idx: idx})
}

// Reset re-initialises the resource for a new run on kernel k, keeping the
// pending/waiter slices' backing capacity.
func (r *Resource) Reset(k *Kernel, name string, capacity float64) {
	for i := range r.pending {
		r.pending[i] = request{}
	}
	for i := range r.waiters {
		r.waiters[i] = waiter{}
	}
	*r = Resource{Name: name, k: k, capacity: capacity,
		pending: r.pending[:0], waiters: r.waiters[:0]}
}

// Producer deposits a fixed batch into a Resource at a steady cadence,
// stalling (and accounting the stall) whenever the buffer is full.  It
// models an ancilla factory's output side: with a batch of one ancilla every
// 1/rate microseconds, the k-th ancilla is ready at k/rate — the discrete
// counterpart of FluidSource — but unlike the fluid model production stops
// when there is nowhere to put the product.
type Producer struct {
	// Name labels the producer in diagnostics.
	Name string

	k        *Kernel
	out      *Resource
	interval iontrap.Microseconds
	batch    float64

	held      float64
	stalled   bool
	stalledAt iontrap.Microseconds
	stallUs   iontrap.Microseconds
	emitted   float64
	halted    bool
}

// NewProducer builds a producer emitting batch units into out every
// 1/ratePerUs microseconds.  A non-positive rate returns ErrZeroRate.
func NewProducer(k *Kernel, name string, out *Resource, ratePerUs, batch float64) (*Producer, error) {
	if !(ratePerUs > 0) {
		return nil, fmt.Errorf("producer %q rate %v: %w", name, ratePerUs, ErrZeroRate)
	}
	if batch <= 0 {
		return nil, fmt.Errorf("sim: producer %q has non-positive batch %v", name, batch)
	}
	return &Producer{
		Name:     name,
		k:        k,
		out:      out,
		interval: iontrap.Microseconds(batch / ratePerUs),
		batch:    batch,
	}, nil
}

// Producer event payloads for the Handler interface.
const (
	producerTick = iota
	producerWake
)

// Fire implements Handler: production completions and buffer-space wakeups
// schedule the producer itself with a payload instead of a bound-method
// closure per event.
func (p *Producer) Fire(idx int) {
	if idx == producerTick {
		p.tick()
	} else {
		p.wake()
	}
}

// Start schedules the first completion one interval from now.
func (p *Producer) Start() { p.k.AfterFire(p.interval, PriorityNormal, p, producerTick) }

// Halt stops production permanently: completions already scheduled fire but
// emit nothing, and no further completions are scheduled.  A stall in
// progress is closed so StallTime stops growing.  Link-failure injection
// halts the dead link's EPR generator with this.
func (p *Producer) Halt() {
	p.halted = true
	if p.stalled {
		p.stalled = false
		p.stallUs += p.k.Now() - p.stalledAt
	}
}

// SetRate changes the production rate for completions scheduled from now on;
// a completion already in flight still arrives on the old cadence.  A
// non-positive rate returns ErrZeroRate (use Halt to stop production).
// EPR-rate degradation faults retune the link generator with this.
func (p *Producer) SetRate(ratePerUs float64) error {
	if !(ratePerUs > 0) {
		return fmt.Errorf("producer %q rate %v: %w", p.Name, ratePerUs, ErrZeroRate)
	}
	p.interval = iontrap.Microseconds(p.batch / ratePerUs)
	return nil
}

// Reset re-initialises the producer for a new run, keeping its identity.
func (p *Producer) Reset(k *Kernel, name string, out *Resource, ratePerUs, batch float64) error {
	if !(ratePerUs > 0) {
		return fmt.Errorf("producer %q rate %v: %w", name, ratePerUs, ErrZeroRate)
	}
	if batch <= 0 {
		return fmt.Errorf("sim: producer %q has non-positive batch %v", name, batch)
	}
	*p = Producer{Name: name, k: k, out: out,
		interval: iontrap.Microseconds(batch / ratePerUs), batch: batch}
	return nil
}

// StallTime returns the total time the producer spent blocked on a full
// buffer, including a stall still in progress at the current kernel time (so
// runs that end mid-stall account the trailing segment).
func (p *Producer) StallTime() iontrap.Microseconds {
	if p.stalled {
		return p.stallUs + p.k.Now() - p.stalledAt
	}
	return p.stallUs
}

// Emitted returns the cumulative quantity produced (deposited or held).
func (p *Producer) Emitted() float64 { return p.emitted }

// tick is one production completion.
func (p *Producer) tick() {
	if p.halted {
		return
	}
	p.emitted += p.batch
	p.held += p.batch
	p.flush()
}

// flush deposits held product; if the buffer rejects part of it the producer
// stalls until space frees, otherwise the next completion is scheduled.
func (p *Producer) flush() {
	p.held -= p.out.Put(p.held)
	if p.held > grantEps {
		if !p.stalled {
			p.stalled = true
			p.stalledAt = p.k.Now()
		}
		p.out.OnSpaceFire(p, producerWake)
		return
	}
	p.held = 0
	if p.stalled {
		p.stalled = false
		p.stallUs += p.k.Now() - p.stalledAt
	}
	p.k.AfterFire(p.interval, PriorityNormal, p, producerTick)
}

// wake retries the deposit after space freed up.
func (p *Producer) wake() {
	if p.halted {
		return
	}
	p.flush()
}
