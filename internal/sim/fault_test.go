package sim

import (
	"errors"
	"testing"

	"speedofdata/internal/iontrap"
)

// recordingHandler notes the payloads delivered to it, in order.
type recordingHandler struct{ fired []int }

func (h *recordingHandler) Fire(idx int) { h.fired = append(h.fired, idx) }

// Halt stops production permanently: ticks already scheduled emit nothing,
// no further ticks are scheduled, and a stall in progress stops accruing.
func TestProducerHalt(t *testing.T) {
	k := NewKernel()
	buf := NewResource(k, "buf", 0)
	p, err := NewProducer(k, "p", buf, 1, 1) // one unit per µs
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	k.At(3.5, PriorityNormal, p.Halt)
	k.At(10, PriorityNormal, func() { k.Stop() })
	k.Run()
	if got := p.Emitted(); got != 3 {
		t.Errorf("halted producer emitted %v, want 3 (ticks at 1, 2, 3)", got)
	}
	if got := buf.Level(); got != 3 {
		t.Errorf("buffer level %v, want 3", got)
	}
}

// Halting a producer stalled on a full buffer closes the stall and keeps it
// down even when space frees afterwards.
func TestProducerHaltWhileStalled(t *testing.T) {
	k := NewKernel()
	buf := NewResource(k, "buf", 1)
	p, err := NewProducer(k, "p", buf, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	// Tick at 1 fills the one-slot buffer; tick at 2 stalls.
	k.At(5, PriorityNormal, p.Halt)
	k.At(6, PriorityNormal, func() { buf.Acquire(1, func() {}) }) // frees space, wakes the producer
	k.At(8, PriorityNormal, func() { k.Stop() })
	k.Run()
	if got := p.StallTime(); got != 3 {
		t.Errorf("stall time %v, want 3 (stalled 2..5)", got)
	}
	if got := p.Emitted(); got != 2 {
		t.Errorf("halted producer emitted %v after wake, want 2", got)
	}
}

// SetRate retunes the cadence for ticks scheduled from now on; the tick in
// flight still lands on the old interval.
func TestProducerSetRate(t *testing.T) {
	k := NewKernel()
	buf := NewResource(k, "buf", 0)
	p, err := NewProducer(k, "p", buf, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	var levels []float64
	k.At(2.5, PriorityNormal, func() {
		if err := p.SetRate(0.25); err != nil { // one unit per 4 µs
			t.Error(err)
		}
	})
	for _, at := range []iontrap.Microseconds{3.5, 7.5} {
		k.At(at, PriorityLate, func() { levels = append(levels, buf.Level()) })
	}
	k.At(8, PriorityNormal, func() { k.Stop() })
	k.Run()
	// Ticks at 1, 2, 3 on the old cadence (the 3-tick was scheduled before
	// the change), then 3+4=7 on the new one.
	if len(levels) != 2 || levels[0] != 3 || levels[1] != 4 {
		t.Errorf("levels = %v, want [3 4]", levels)
	}
	if err := p.SetRate(0); !errors.Is(err, ErrZeroRate) {
		t.Errorf("zero rate error = %v, want ErrZeroRate", err)
	}
	if err := p.SetRate(-2); !errors.Is(err, ErrZeroRate) {
		t.Errorf("negative rate error = %v, want ErrZeroRate", err)
	}
}

// CancelAcquireFire withdraws exactly the identified pending request,
// preserves FIFO order for the rest, and reports false once the demand has
// already been delivered.
func TestCancelAcquireFire(t *testing.T) {
	k := NewKernel()
	buf := NewResource(k, "buf", 0)
	h := &recordingHandler{}
	buf.AcquireFire(1, h, 1)
	buf.AcquireFire(1, h, 2)
	buf.AcquireFire(1, h, 3)
	if !buf.CancelAcquireFire(h, 2) {
		t.Fatal("pending request not found")
	}
	if buf.CancelAcquireFire(h, 2) {
		t.Fatal("cancelled request found twice")
	}
	k.At(1, PriorityNormal, func() { buf.Put(2) })
	k.Run()
	if len(h.fired) != 2 || h.fired[0] != 1 || h.fired[1] != 3 {
		t.Errorf("fired = %v, want [1 3] (request 2 cancelled, FIFO kept)", h.fired)
	}
	// A delivered request can no longer be cancelled: the grant stands.
	buf.AcquireFire(1, h, 4)
	k.At(2, PriorityNormal, func() {
		buf.Put(1)
		if buf.CancelAcquireFire(h, 4) {
			t.Error("cancel succeeded after delivery")
		}
	})
	k.Run()
	if len(h.fired) != 3 || h.fired[2] != 4 {
		t.Errorf("fired = %v, want the delivered grant to stand", h.fired)
	}
}
