package sim

import (
	"sync/atomic"

	"speedofdata/internal/obs"
)

// Package-level counters feeding the metrics registry.  They are plain
// atomics updated once per Run / Acquire — never per event, so the kernel's
// zero-allocation, zero-overhead event loop is untouched — and read by
// func-backed series at scrape time.
var (
	// eventsFired totals events fired across all kernel runs in the process.
	eventsFired atomic.Int64
	// runsDone counts completed Kernel.Run calls.
	runsDone atomic.Int64
	// kernelAcquires and kernelNews measure pool effectiveness: acquires
	// minus news is the number of reuses.
	kernelAcquires atomic.Int64
	kernelNews     atomic.Int64
)

// Instrument registers the kernel's counters with reg.  The series are
// func-backed readers of this package's own atomics, so the scrape path
// adds no work to simulation runs.  Call once, before serving.
func Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("qsd_sim_events_total",
		"Discrete events fired across all simulation kernel runs.", nil,
		func() float64 { return float64(eventsFired.Load()) })
	reg.CounterFunc("qsd_sim_runs_total",
		"Completed simulation kernel runs.", nil,
		func() float64 { return float64(runsDone.Load()) })
	reg.CounterFunc("qsd_sim_kernel_acquires_total",
		"Kernels taken from the pool (reused or fresh).", nil,
		func() float64 { return float64(kernelAcquires.Load()) })
	reg.CounterFunc("qsd_sim_kernel_allocs_total",
		"Kernels the pool had to allocate fresh; acquires minus allocs is reuse.", nil,
		func() float64 { return float64(kernelNews.Load()) })
}
