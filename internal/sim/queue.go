package sim

import "sync"

// Task is one unit of deferred work keyed by the time it becomes ready and a
// stable index (a gate number, or an offset into a flattened multi-circuit
// gate space).
type Task struct {
	Index int
	Ready float64
}

// less orders by readiness time, then index.
func (a Task) less(b Task) bool {
	if a.Ready != b.Ready {
		return a.Ready < b.Ready
	}
	return a.Index < b.Index
}

// TaskQueue is a binary min-heap of tasks ordered by (readiness time, index).
// The explicit index tie-break makes the pop order fully deterministic; the
// closed-form list schedulers and the event-driven dispatchers share this one
// queue, and that shared issue order is load-bearing for their bit-for-bit
// parity.
type TaskQueue struct{ items []Task }

// Len returns the number of queued tasks.
func (q *TaskQueue) Len() int { return len(q.items) }

// Reset empties the queue while keeping its backing capacity, so a reused
// queue pushes without reallocating.
func (q *TaskQueue) Reset() { q.items = q.items[:0] }

// taskQueuePool recycles ready-queues (and their capacity) across replays;
// see AcquireTaskQueue.
var taskQueuePool = sync.Pool{New: func() any { return new(TaskQueue) }}

// AcquireTaskQueue returns an empty task queue, reusing pooled backing
// storage when available.  The event-driven replayers run one queue per
// call; pooling spares them the heap growth on every invocation (sweeps
// call them thousands of times).  Pooling never affects results: pop order
// depends only on the pushed tasks.
func AcquireTaskQueue() *TaskQueue {
	q := taskQueuePool.Get().(*TaskQueue)
	q.Reset()
	return q
}

// Release returns the queue to the pool.  The caller must not use it
// afterwards.
func (q *TaskQueue) Release() { taskQueuePool.Put(q) }

// Push adds a task.
func (q *TaskQueue) Push(t Task) {
	q.items = append(q.items, t)
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.items[i].less(q.items[parent]) {
			break
		}
		q.items[parent], q.items[i] = q.items[i], q.items[parent]
		i = parent
	}
}

// Pop removes and returns the earliest task.
func (q *TaskQueue) Pop() Task {
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items = q.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(q.items) && q.items[l].less(q.items[smallest]) {
			smallest = l
		}
		if r < len(q.items) && q.items[r].less(q.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
	return top
}
