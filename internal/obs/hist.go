package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is an HDR-style latency histogram: log-bucketed power-of-two
// ranges subdivided into 32 linear sub-buckets, giving quantiles with
// bounded relative error (about 3%) across nanoseconds-to-minutes without
// storing samples.  Recording is a pair of atomic adds, so request
// goroutines share one Histogram without contention; the zero value is
// ready to use.  It started life as the load generator's latency histogram
// (internal/loadgen) and now also backs every registry summary series.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	total  atomic.Int64
	// sumUS accumulates recorded microseconds so exposition can report the
	// Prometheus summary _sum alongside the quantiles.
	sumUS atomic.Int64
}

const (
	// histSubBits sub-buckets per power-of-two range: 2^5 = 32 linear
	// subdivisions bound the relative quantile error at 1/32.
	histSubBits = 5
	histSub     = 1 << histSubBits
	// 64 possible exponents of a microsecond value, histSub sub-buckets
	// each, plus the direct range below histSub.
	histBuckets = histSub + 64*histSub
)

// bucketOf maps a latency (in microseconds) to its bucket index.
func bucketOf(us int64) int {
	if us < 0 {
		us = 0
	}
	v := uint64(us)
	if v < histSub {
		return int(v)
	}
	// e is the position of the highest bit beyond the direct range; the top
	// histSubBits+1 bits of v select the linear sub-bucket within range e.
	e := bits.Len64(v) - histSubBits - 1
	return histSub + e*histSub + int(v>>uint(e)) - histSub
}

// bucketMid returns the midpoint latency (in microseconds) represented by a
// bucket, the value quantile lookups report.
func bucketMid(b int) int64 {
	if b < histSub {
		return int64(b)
	}
	b -= histSub
	e := b / histSub
	sub := int64(b%histSub) + histSub
	lo := sub << uint(e)
	hi := (sub + 1) << uint(e)
	return (lo + hi) / 2
}

// Record adds one latency observation.
func (h *Histogram) Record(d time.Duration) {
	us := d.Microseconds()
	h.counts[bucketOf(us)].Add(1)
	h.total.Add(1)
	h.sumUS.Add(us)
}

// Count reports the number of recorded observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum reports the total recorded latency, at microsecond resolution.
func (h *Histogram) Sum() time.Duration {
	return time.Duration(h.sumUS.Load()) * time.Microsecond
}

// Quantile returns the latency at quantile q in [0, 1] (0.5 = median).  It
// reports 0 when nothing was recorded.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based; cumulative scan finds its
	// bucket and reports the bucket midpoint.
	rank := int64(q*float64(total-1)) + 1
	var seen int64
	for b := range h.counts {
		seen += h.counts[b].Load()
		if seen >= rank {
			return time.Duration(bucketMid(b)) * time.Microsecond
		}
	}
	return time.Duration(bucketMid(histBuckets-1)) * time.Microsecond
}

// Max returns the midpoint of the highest occupied bucket.
func (h *Histogram) Max() time.Duration {
	for b := histBuckets - 1; b >= 0; b-- {
		if h.counts[b].Load() > 0 {
			return time.Duration(bucketMid(b)) * time.Microsecond
		}
	}
	return 0
}
