package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestHistQuantiles feeds a known uniform distribution and checks the
// log-bucketed quantiles land within the histogram's ~3% relative error.
func TestHistQuantiles(t *testing.T) {
	var h Histogram
	// 1..10000 µs, once each: quantile q is q*10000 µs exactly.
	for us := 1; us <= 10000; us++ {
		h.Record(time.Duration(us) * time.Microsecond)
	}
	if h.Count() != 10000 {
		t.Fatalf("count %d, want 10000", h.Count())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := q * 10000 // µs
		got := float64(h.Quantile(q).Microseconds())
		if rel := math.Abs(got-want) / want; rel > 0.04 {
			t.Errorf("q%.3f: got %vµs, want %vµs (rel err %.3f)", q, got, want, rel)
		}
	}
	if max := h.Max().Microseconds(); math.Abs(float64(max)-10000) > 10000*0.04 {
		t.Errorf("max %dµs, want ~10000µs", max)
	}
	// Sum of 1..10000 µs.
	if want := time.Duration(10000*10001/2) * time.Microsecond; h.Sum() != want {
		t.Errorf("sum %v, want %v", h.Sum(), want)
	}
	// Empty histogram reports zero.
	var empty Histogram
	if empty.Quantile(0.5) != 0 || empty.Max() != 0 || empty.Sum() != 0 {
		t.Error("empty histogram should report 0")
	}
}

// TestHistQuantilesVsExact compares histogram quantiles against exact
// percentiles of the sorted sample on skewed distributions spanning several
// orders of magnitude, pinning the ≤3% relative error bound the docs claim
// (with one sub-bucket of slack at the low end where buckets are exact).
func TestHistQuantilesVsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dists := map[string]func() int64{
		// Log-uniform over 1µs..100s.
		"loguniform": func() int64 {
			return int64(math.Exp(rng.Float64() * math.Log(1e8)))
		},
		// Heavy-tailed: mostly fast with a slow tail, like cache-hit
		// traffic over a compute tail.
		"bimodal": func() int64 {
			if rng.Float64() < 0.9 {
				return 50 + int64(rng.Intn(200))
			}
			return 100000 + int64(rng.Intn(900000))
		},
	}
	for name, draw := range dists {
		var h Histogram
		samples := make([]int64, 20000)
		for i := range samples {
			us := draw()
			samples[i] = us
			h.Record(time.Duration(us) * time.Microsecond)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
			exact := float64(samples[int(q*float64(len(samples)-1))])
			got := float64(h.Quantile(q).Microseconds())
			rel := math.Abs(got-exact) / exact
			// 1/histSub bucket resolution, plus rank-vs-midpoint slack.
			if rel > 0.03+1.0/histSub {
				t.Errorf("%s q%.3f: hist %vµs vs exact %vµs (rel err %.4f)",
					name, q, got, exact, rel)
			}
		}
	}
}

// TestHistBucketsMonotonic sweeps values across many orders of magnitude and
// checks bucket assignment is monotonic and midpoints stay within the bucket
// bounds — the invariants the quantile scan relies on.
func TestHistBucketsMonotonic(t *testing.T) {
	prev := -1
	for us := int64(0); us < int64(1)<<40; us = us*3/2 + 1 {
		b := bucketOf(us)
		if b < prev {
			t.Fatalf("bucketOf(%d) = %d < previous %d", us, b, prev)
		}
		prev = b
		mid := bucketMid(b)
		// The midpoint must be within a factor of the bucket's relative
		// resolution of any value mapping to it.
		if us >= histSub {
			if rel := math.Abs(float64(mid-us)) / float64(us); rel > 1.0/histSub {
				t.Fatalf("bucketMid(%d)=%d far from member %d (rel %.4f)", b, mid, us, rel)
			}
		} else if mid != us {
			t.Fatalf("direct bucket %d has midpoint %d", us, mid)
		}
	}
}
