package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryIdempotent checks that re-registering (name, labels) returns
// the same instance, and that distinct label sets are distinct series.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("qsd_test_total", "help", Labels{"k": "a"})
	b := r.Counter("qsd_test_total", "help", Labels{"k": "a"})
	if a != b {
		t.Fatal("same (name, labels) returned different counters")
	}
	c := r.Counter("qsd_test_total", "help", Labels{"k": "b"})
	if a == c {
		t.Fatal("distinct labels returned the same counter")
	}
	a.Inc()
	a.Add(2)
	if b.Value() != 3 || c.Value() != 0 {
		t.Fatalf("values a=%d c=%d, want 3 and 0", b.Value(), c.Value())
	}

	g := r.Gauge("qsd_test_gauge", "g", nil)
	g.Set(7)
	g.Add(-2)
	if r.Gauge("qsd_test_gauge", "g", nil).Value() != 5 {
		t.Fatal("gauge not shared")
	}

	h := r.Histogram("qsd_test_seconds", "h", nil)
	h.Record(time.Millisecond)
	if r.Histogram("qsd_test_seconds", "h", nil).Count() != 1 {
		t.Fatal("histogram not shared")
	}
}

// TestRegistryConflictsPanic checks the programming-error cases fail loudly.
func TestRegistryConflictsPanic(t *testing.T) {
	cases := map[string]func(r *Registry){
		"type": func(r *Registry) {
			r.Counter("qsd_x_total", "h", nil)
			r.Gauge("qsd_x_total", "h", nil)
		},
		"help": func(r *Registry) {
			r.Counter("qsd_x_total", "h", nil)
			r.Counter("qsd_x_total", "other", nil)
		},
		"func-vs-storage": func(r *Registry) {
			r.Counter("qsd_x_total", "h", nil)
			r.CounterFunc("qsd_x_total", "h", nil, func() float64 { return 0 })
		},
		"bad-name": func(r *Registry) {
			r.Counter("qsd x total", "h", nil)
		},
		"bad-label": func(r *Registry) {
			r.Counter("qsd_x_total", "h", Labels{"1bad": "v"})
		},
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn(NewRegistry())
		})
	}
}

// TestNilSafety checks nil counters/gauges/spans are inert, which is what
// lets layers instrument unconditionally whether or not obs is wired in.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var s *Span
	s.EndWith("x")
	s.Fail(fmt.Errorf("e"))
	if s.Child("y") != nil || s.Duration() != 0 || s.TraceID() != "" {
		t.Fatal("nil span not inert")
	}
}

// parseExposition is a strict line-level parser of the Prometheus text
// format used by the conformance test: it validates metric name and label
// grammar, HELP/TYPE ordering, and returns sample name→value.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	typeOf := map[string]string{}
	helpSeen := map[string]bool{}
	var curFamily string
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || checkMetricName(name) != nil {
				t.Fatalf("line %d: bad HELP: %q", ln+1, line)
			}
			if helpSeen[name] {
				t.Fatalf("line %d: duplicate HELP for %q", ln+1, name)
			}
			helpSeen[name] = true
			curFamily = name
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				t.Fatalf("line %d: bad TYPE: %q", ln+1, line)
			}
			name, typ := parts[0], parts[1]
			if name != curFamily {
				t.Fatalf("line %d: TYPE %q not preceded by its HELP", ln+1, name)
			}
			switch typ {
			case "counter", "gauge", "summary", "histogram", "untyped":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, typ)
			}
			if typeOf[name] != "" {
				t.Fatalf("line %d: duplicate TYPE for %q", ln+1, name)
			}
			typeOf[name] = typ
		case strings.HasPrefix(line, "#"):
			// Comment; ignore.
		case line == "":
			t.Fatalf("line %d: blank line in exposition", ln+1)
		default:
			// Sample: name[{labels}] value
			i := strings.IndexAny(line, "{ ")
			if i < 0 {
				t.Fatalf("line %d: unparseable sample %q", ln+1, line)
			}
			name := line[:i]
			if checkMetricName(name) != nil {
				t.Fatalf("line %d: bad sample name %q", ln+1, name)
			}
			// The sample must belong to the current family (directly, or
			// via the summary's _sum/_count suffixes).
			base := name
			for _, suf := range []string{"_sum", "_count"} {
				if cut, ok := strings.CutSuffix(name, suf); ok && cut == curFamily {
					base = cut
				}
			}
			if base != curFamily {
				t.Fatalf("line %d: sample %q outside family %q (unlabeled by HELP/TYPE)", ln+1, name, curFamily)
			}
			rest := line[i:]
			if strings.HasPrefix(rest, "{") {
				end := strings.Index(rest, "} ")
				if end < 0 {
					t.Fatalf("line %d: unterminated labels in %q", ln+1, line)
				}
				for _, pair := range splitLabelPairs(rest[1:end]) {
					k, v, ok := strings.Cut(pair, "=")
					if !ok || checkLabelName(k) != nil || !strings.HasPrefix(v, `"`) || !strings.HasSuffix(v, `"`) {
						t.Fatalf("line %d: bad label pair %q", ln+1, pair)
					}
				}
				name = name + rest[:end+1]
				rest = rest[end+1:]
			}
			val, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("line %d: bad value in %q: %v", ln+1, line, err)
			}
			if _, dup := samples[name]; dup {
				t.Fatalf("line %d: duplicate series %q", ln+1, name)
			}
			samples[name] = val
		}
	}
	return samples
}

// splitLabelPairs splits `k1="v1",k2="v2"` respecting quoted commas.
func splitLabelPairs(s string) []string {
	var out []string
	var cur strings.Builder
	inQ := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\\' && inQ && i+1 < len(s):
			cur.WriteByte(c)
			i++
			cur.WriteByte(s[i])
		case c == '"':
			inQ = !inQ
			cur.WriteByte(c)
		case c == ',' && !inQ:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

// TestExpositionConformance renders a mixed registry and strictly parses
// every line: grammar-valid names, each sample under its family's
// HELP/TYPE, no duplicate series, correct values.
func TestExpositionConformance(t *testing.T) {
	r := NewRegistry()
	r.Counter("qsd_a_total", "counter a", nil).Add(41)
	r.Counter("qsd_b_total", "counter b", Labels{"route": "/v1/x", "code": "200"}).Inc()
	r.Counter("qsd_b_total", "counter b", Labels{"route": "/v1/x", "code": "500"}).Add(2)
	r.Gauge("qsd_depth", "depth", nil).Set(-3)
	r.GaugeFunc("qsd_live", "live", nil, func() float64 { return 12.5 })
	h := r.Histogram("qsd_lat_seconds", "latency", Labels{"route": "/v1/x"})
	for i := 0; i < 100; i++ {
		h.Record(time.Duration(i+1) * time.Millisecond)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, buf.String())

	want := map[string]float64{
		"qsd_a_total":                           41,
		`qsd_b_total{code="200",route="/v1/x"}`: 1,
		`qsd_b_total{code="500",route="/v1/x"}`: 2,
		"qsd_depth":                             -3,
		"qsd_live":                              12.5,
		`qsd_lat_seconds_count{route="/v1/x"}`:  100,
	}
	for name, v := range want {
		got, ok := samples[name]
		if !ok {
			t.Errorf("missing sample %q in:\n%s", name, buf.String())
		} else if got != v {
			t.Errorf("sample %q = %v, want %v", name, got, v)
		}
	}
	// Summary quantiles present and plausible (~50ms median of 1..100ms);
	// the quantile label renders after the series' own sorted labels.
	p50, ok := samples[`qsd_lat_seconds{route="/v1/x",quantile="0.5"}`]
	if !ok {
		t.Fatalf("missing p50 quantile sample in:\n%s", buf.String())
	}
	if p50 < 0.045 || p50 > 0.055 {
		t.Errorf("p50 %v, want ~0.050", p50)
	}
	sum := samples[`qsd_lat_seconds_sum{route="/v1/x"}`]
	if want := 0.001 * 100 * 101 / 2; sum < want*0.99 || sum > want*1.01 {
		t.Errorf("sum %v, want ~%v", sum, want)
	}

	// Two scrapes render identically (deterministic ordering).
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("two scrapes of an unchanged registry differ")
	}
}

// TestSnapshotJSON checks the JSON view round-trips and agrees with the
// registered values.
func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("qsd_jobs_total", "jobs", nil).Add(9)
	h := r.Histogram("qsd_lat_seconds", "lat", nil)
	h.Record(10 * time.Millisecond)
	h.Record(20 * time.Millisecond)

	raw, err := json.Marshal(r.TakeSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Families) != 2 {
		t.Fatalf("families %d, want 2", len(snap.Families))
	}
	byName := map[string]FamilySnapshot{}
	for _, f := range snap.Families {
		byName[f.Name] = f
	}
	jobs := byName["qsd_jobs_total"]
	if jobs.Type != "counter" || len(jobs.Series) != 1 || jobs.Series[0].Value == nil || *jobs.Series[0].Value != 9 {
		t.Fatalf("bad counter snapshot: %+v", jobs)
	}
	lat := byName["qsd_lat_seconds"]
	if lat.Type != "summary" || len(lat.Series) != 1 || lat.Series[0].Summary == nil {
		t.Fatalf("bad summary snapshot: %+v", lat)
	}
	if s := lat.Series[0].Summary; s.Count != 2 || s.SumSeconds < 0.029 || s.SumSeconds > 0.031 {
		t.Fatalf("summary count=%d sum=%v, want 2 and ~0.030", s.Count, s.SumSeconds)
	}
}

// TestRegistryConcurrency exercises registration, updates and scrapes from
// many goroutines at once; run under -race this is the registry's
// thread-safety proof.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("qsd_conc_total", "c", Labels{"w": strconv.Itoa(w % 4)})
			h := r.Histogram("qsd_conc_seconds", "h", nil)
			g := r.Gauge("qsd_conc_depth", "g", nil)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Record(time.Duration(i%1000) * time.Microsecond)
				g.Add(1)
				g.Add(-1)
				// Concurrent re-registration of existing and fresh series.
				r.Counter("qsd_conc_total", "c", Labels{"w": strconv.Itoa(i % 4)}).Inc()
			}
		}(w)
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var buf bytes.Buffer
				if err := r.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
				r.TakeSnapshot()
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	parseExposition(t, buf.String())
}
