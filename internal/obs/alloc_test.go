package obs

import (
	"testing"
	"time"
)

// TestHotPathZeroAlloc pins the overhead budget in doc.go: counter
// increments, gauge updates and histogram observations allocate nothing, so
// instrumenting the engine's per-job path and the server's per-request path
// cannot add GC pressure.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("qsd_alloc_total", "c", nil)
	g := r.Gauge("qsd_alloc_depth", "g", nil)
	h := r.Histogram("qsd_alloc_seconds", "h", nil)
	d := 123 * time.Microsecond

	cases := map[string]func(){
		"counter-inc":       func() { c.Inc() },
		"counter-add":       func() { c.Add(3) },
		"gauge-set":         func() { g.Set(7) },
		"gauge-add":         func() { g.Add(-1) },
		"histogram-observe": func() { h.Record(d) },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
}

// TestRegisteredLookupCheap documents that re-looking-up an existing series
// (the pattern for per-status counters resolved per request) allocates at
// most the label map — callers on hot paths should hold the returned
// pointer instead, which the engine and server do.
func TestRegisteredLookupCheap(t *testing.T) {
	r := NewRegistry()
	r.Counter("qsd_lookup_total", "c", nil)
	if allocs := testing.AllocsPerRun(1000, func() {
		r.Counter("qsd_lookup_total", "c", nil).Inc()
	}); allocs > 0 {
		t.Errorf("unlabeled re-lookup: %v allocs/op, want 0", allocs)
	}
}
