// Package obs is the zero-dependency observability core of the serving
// stack: a typed metrics registry with atomic, allocation-free hot-path
// updates, an HDR-style latency histogram shared with the load generator,
// and a bounded request tracer whose spans propagate through context from
// the HTTP middleware down to individual engine jobs.
//
// The paper's central methodology is accounting for where time goes —
// decomposing makespan into compute, factory-starved and network-blocked
// components.  This package applies the same discipline to the serving
// system itself: every layer (engine, store, server, sim kernel, noise
// samplers, Go runtime) registers its counters and gauges here, one
// registry serves both the Prometheus text exposition format (GET /metrics)
// and a structured JSON snapshot (GET /v1/metrics), and a per-request trace
// answers where a slow request spent its time (GET /v1/trace/{id}).
//
// Naming convention: qsd_<layer>_<noun>_<unit>, with the Prometheus
// suffixes _total for counters and base units of seconds and bytes.
// Metrics that mirror a layer's own counters are registered as func-backed
// series reading the layer's storage, so /metrics, /v1/metrics and
// /v1/healthz can never disagree: there is one source of truth per number.
//
// Overhead budget: Counter.Add, Gauge.Set and Histogram.Record are single
// atomic operations (0 allocs, guarded by tests); per-job tracing costs one
// span allocation and two time.Now calls, and is skipped entirely when the
// request context carries no trace.  Scrape-time work (sorting families,
// sampling runtime gauges) happens on the scraping request, never on the
// serving path.
package obs
