package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// maxSpansPerTrace bounds one trace's memory: a sweep request fanning out
// thousands of jobs keeps its first spans and counts the rest as dropped,
// instead of retaining an unbounded span list per request.
const maxSpansPerTrace = 512

// DefaultTraceCapacity is the finished-trace ring size of NewTracer(0).
const DefaultTraceCapacity = 256

// Span is one timed step of a trace: the request itself (the root), an
// experiment job, or a nested batch job.  Spans form a tree through Parent
// IDs.  A span is written by the goroutine executing its step and read only
// after the trace finishes, so it needs no lock of its own.
type Span struct {
	// ID is the span's 1-based creation index within its trace; Parent is
	// the creating span's ID (0 only for the root).
	ID     int64
	Parent int64
	// Name identifies the step: the request line for the root, the job kind
	// (experiment id or stage name) for engine jobs.
	Name  string
	Start time.Time
	// End is the zero time while the span is open (e.g. a job abandoned by
	// cancellation).
	End time.Time
	// Outcome states how the step completed: "computed", "cache-memory",
	// "cache-store", "coalesced" for engine jobs (the cache-tier outcome or
	// coalesced-follower marker), "error", or "" for the root.
	Outcome string
	// Err carries the error text when Outcome is "error".
	Err string

	tr *Trace
}

// Child opens a sub-span.  It is nil-safe — a nil receiver (no active
// trace, or a span dropped over the per-trace bound) returns nil, and every
// Span method accepts that nil — so callers instrument unconditionally.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	tr := s.tr
	tr.mu.Lock()
	if len(tr.spans) >= maxSpansPerTrace {
		tr.dropped++
		tr.mu.Unlock()
		return nil
	}
	c := &Span{ID: int64(len(tr.spans)) + 1, Parent: s.ID, Name: name, Start: time.Now(), tr: tr}
	tr.spans = append(tr.spans, c)
	tr.mu.Unlock()
	return c
}

// EndWith closes the span with an outcome.
func (s *Span) EndWith(outcome string) {
	if s == nil {
		return
	}
	s.End = time.Now()
	s.Outcome = outcome
}

// Fail closes the span recording the step's error.
func (s *Span) Fail(err error) {
	if s == nil {
		return
	}
	s.End = time.Now()
	s.Outcome = "error"
	if err != nil {
		s.Err = err.Error()
	}
}

// Duration is End-Start, or 0 while the span is open.
func (s *Span) Duration() time.Duration {
	if s == nil || s.End.IsZero() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// TraceID names the trace the span belongs to ("" on nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.tr.id
}

// Trace is one request's span tree.  It is mutated only between
// Tracer.Start and Tracer.Finish (by the request's own goroutines, through
// Span.Child under the trace lock) and immutable afterwards, which is when
// Tracer.Get starts returning it.
type Trace struct {
	id    string
	name  string
	start time.Time
	end   time.Time

	mu      sync.Mutex
	spans   []*Span
	dropped int64
}

// ID is the trace identifier, returned to clients in X-Trace-Id.
func (t *Trace) ID() string { return t.id }

// Name is the root span's name (the request line).
func (t *Trace) Name() string { return t.name }

// Root returns the root span, the parent for request-level children.
func (t *Trace) Root() *Span { return t.spans[0] }

// Start and End bound the trace; End is zero until the trace finishes.
func (t *Trace) Start() time.Time { return t.start }
func (t *Trace) End() time.Time   { return t.end }

// Spans returns the recorded spans in creation order (root first).  Call it
// only on finished traces (as returned by Tracer.Get).
func (t *Trace) Spans() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.spans...)
}

// Dropped counts spans discarded over the per-trace bound.
func (t *Trace) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Tracer creates traces and retains the most recent finished ones in a
// bounded ring for /v1/trace/{id} queries.
type Tracer struct {
	capacity int

	// slowSpan and log configure slow-span logging: when a trace finishes,
	// every span at least slowSpan long is logged (with its trace ID) so
	// slow steps surface without anyone polling the trace endpoint.  Both
	// are set once before serving.
	slowSpan time.Duration
	log      *slog.Logger

	mu   sync.Mutex
	byID map[string]*Trace
	ring []*Trace
	pos  int
}

// NewTracer returns a tracer retaining up to capacity finished traces
// (<= 0 selects DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{
		capacity: capacity,
		byID:     make(map[string]*Trace, capacity),
		ring:     make([]*Trace, 0, capacity),
	}
}

// SetSlowSpan enables slow-span logging: spans of finished traces lasting
// at least threshold are logged to log.  Call before serving.
func (t *Tracer) SetSlowSpan(threshold time.Duration, log *slog.Logger) {
	t.slowSpan = threshold
	t.log = log
}

// traceIDCounter de-duplicates fallback IDs if the system randomness source
// ever fails; real IDs are 8 random bytes in hex.
var traceIDCounter atomic.Int64

func newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		n := traceIDCounter.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// Start opens a new trace whose root span carries name.  The trace is not
// queryable until Finish.
func (t *Tracer) Start(name string) *Trace {
	tr := &Trace{id: newTraceID(), name: name, start: time.Now()}
	tr.spans = append(tr.spans, &Span{ID: 1, Name: name, Start: tr.start, tr: tr})
	return tr
}

// Finish closes the trace's root span, logs slow spans, and retains the
// trace in the ring (evicting the oldest past capacity).
func (t *Tracer) Finish(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	tr.end = time.Now()
	root := tr.Root()
	if root.End.IsZero() {
		root.End = tr.end
	}
	if t.log != nil && t.slowSpan > 0 {
		for _, s := range tr.Spans() {
			if d := s.Duration(); d >= t.slowSpan {
				t.log.Warn("slow span",
					slog.String("trace_id", tr.id),
					slog.String("span", s.Name),
					slog.String("outcome", s.Outcome),
					slog.Duration("duration", d))
			}
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) < t.capacity {
		t.ring = append(t.ring, tr)
	} else {
		old := t.ring[t.pos]
		delete(t.byID, old.id)
		t.ring[t.pos] = tr
		t.pos = (t.pos + 1) % t.capacity
	}
	t.byID[tr.id] = tr
}

// Get returns a finished trace by ID.  Traces still in flight are not
// found: a trace becomes queryable the moment its request completes.
func (t *Tracer) Get(id string) (*Trace, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, ok := t.byID[id]
	return tr, ok
}

// Len reports how many finished traces are retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// spanCtxKey keys the active span in a context.
type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying s as the active span, the parent of
// engine job spans started under it.  A nil span returns ctx unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the active span, or nil when the context carries
// no trace — the zero-overhead signal that tracing is off for this work.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// TraceIDFromContext returns the active trace's ID, or "".
func TraceIDFromContext(ctx context.Context) string {
	return SpanFromContext(ctx).TraceID()
}
