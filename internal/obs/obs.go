package obs

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"time"
)

// writeJSONSnapshot encodes the registry's JSON snapshot to w.
func writeJSONSnapshot(w io.Writer, r *Registry) {
	_ = json.NewEncoder(w).Encode(r.TakeSnapshot())
}

// Obs bundles the observability plumbing one process shares across layers:
// the metrics registry, the request tracer, and the structured logger that
// access logs and slow-span warnings go to.
type Obs struct {
	Registry *Registry
	Tracer   *Tracer
	Log      *slog.Logger
}

// New returns a ready Obs with an empty registry, a default-capacity
// tracer, runtime gauges pre-registered, and the process-default logger.
// Callers swap Log before serving if they want a dedicated handler.
func New() *Obs {
	o := &Obs{
		Registry: NewRegistry(),
		Tracer:   NewTracer(0),
		Log:      slog.Default(),
	}
	RegisterRuntimeMetrics(o.Registry)
	return o
}

// MetricsHandler serves the registry in the Prometheus text exposition
// format.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// DebugHandler returns the opt-in side mux (the -debug-addr listener):
// net/http/pprof profiling plus the same /metrics and /v1/metrics views the
// main server exposes, so profiling a process never requires the public
// listener.
func (o *Obs) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", MetricsHandler(o.Registry))
	mux.HandleFunc("/v1/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeJSONSnapshot(w, o.Registry)
	})
	return mux
}

// memStatsSampler caches runtime.ReadMemStats results briefly so that a
// scrape hitting several heap gauges pays the (stop-the-world) read once,
// and back-to-back scrapes don't hammer it.
type memStatsSampler struct {
	mu    sync.Mutex
	at    time.Time
	stats runtime.MemStats
}

const memStatsMaxAge = 200 * time.Millisecond

func (m *memStatsSampler) get() *runtime.MemStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if now := time.Now(); now.Sub(m.at) > memStatsMaxAge {
		runtime.ReadMemStats(&m.stats)
		m.at = now
	}
	return &m.stats
}

// RegisterRuntimeMetrics registers the Go runtime gauges (goroutines, heap,
// GC) as func-backed series sampled at scrape time.
func RegisterRuntimeMetrics(r *Registry) {
	ms := &memStatsSampler{}
	r.GaugeFunc("qsd_runtime_goroutines",
		"Number of live goroutines.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("qsd_runtime_heap_alloc_bytes",
		"Bytes of allocated heap objects.", nil,
		func() float64 { return float64(ms.get().HeapAlloc) })
	r.GaugeFunc("qsd_runtime_heap_objects",
		"Number of allocated heap objects.", nil,
		func() float64 { return float64(ms.get().HeapObjects) })
	r.CounterFunc("qsd_runtime_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time in seconds.", nil,
		func() float64 { return float64(ms.get().PauseTotalNs) / 1e9 })
	r.CounterFunc("qsd_runtime_gc_cycles_total",
		"Completed GC cycles.", nil,
		func() float64 { return float64(ms.get().NumGC) })
}
