package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels are the constant label pairs of one series.  Label sets must be
// small and bounded (routes, experiment kinds, cache tiers) — a registry
// keeps every series it has ever seen.
type Labels map[string]string

// Counter is a monotonically increasing metric.  The zero value is ready to
// use, registered or not, and all methods are safe on a nil receiver so
// optional instrumentation needs no call-site guards.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (which must be non-negative for the exposition to stay
// monotonic; this is not checked on the hot path).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous metric.  Like Counter, the zero value
// works and all methods are nil-safe.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value reads the current gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// MetricType classifies a family for the exposition format.
type MetricType int

const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeSummary
)

func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeSummary:
		return "summary"
	}
	return "untyped"
}

// summaryQuantiles are the quantile series every histogram family exposes.
var summaryQuantiles = []float64{0.5, 0.9, 0.99}

// series is one (family, label set) instance.  Exactly one of the value
// fields is set, matching the family type: counter/gauge storage, a
// func-backed reader, or a histogram.
type series struct {
	labels    Labels
	labelsKey string // canonical rendered form, also the dedup key
	counter   *Counter
	gauge     *Gauge
	fn        func() float64
	hist      *Histogram
}

// family is every series sharing one metric name.
type family struct {
	name  string
	help  string
	typ   MetricType
	funcs bool // func-backed family (values read at scrape)
	byKey map[string]*series
	order []*series
}

// Registry holds metric families and renders them as Prometheus text
// exposition or a JSON snapshot.  Registration takes the registry lock and
// is idempotent — asking for an existing (name, labels) series returns the
// same instance — while updates on the returned Counter/Gauge/Histogram are
// lock-free atomics.  Registering one name under two types, or with help
// text that disagrees, panics: those are programming errors.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the registered counter for (name, labels), creating it on
// first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	s := r.getOrCreate(name, help, TypeCounter, false, labels)
	return s.counter
}

// Gauge returns the registered gauge for (name, labels), creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	s := r.getOrCreate(name, help, TypeGauge, false, labels)
	return s.gauge
}

// Histogram returns the registered latency histogram for (name, labels),
// creating it on first use.  The family is exposed as a Prometheus summary:
// quantile series plus _sum (seconds) and _count.
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	s := r.getOrCreate(name, help, TypeSummary, false, labels)
	return s.hist
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time.  Use it to expose a layer's own counter storage (engine
// cache statistics, store puts) without double counting: the layer remains
// the single source of truth.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	s := r.getOrCreate(name, help, TypeCounter, true, labels)
	s.fn = fn
}

// GaugeFunc registers a gauge series read from fn at scrape time (live
// queue depths, goroutine counts, heap sizes).
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	s := r.getOrCreate(name, help, TypeGauge, true, labels)
	s.fn = fn
}

func (r *Registry) getOrCreate(name, help string, typ MetricType, funcs bool, labels Labels) *series {
	if err := checkMetricName(name); err != nil {
		panic(err)
	}
	key := renderLabels(labels, "")
	r.mu.RLock()
	if f, ok := r.families[name]; ok {
		if s, ok := f.byKey[key]; ok && f.typ == typ && f.funcs == funcs && f.help == help {
			r.mu.RUnlock()
			return s
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, funcs: funcs, byKey: make(map[string]*series)}
		r.families[name] = f
	}
	if f.typ != typ || f.funcs != funcs {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v/funcs=%v, was %v/funcs=%v",
			name, typ, funcs, f.typ, f.funcs))
	}
	if f.help != help {
		panic(fmt.Sprintf("obs: metric %q re-registered with different help text", name))
	}
	if s, ok := f.byKey[key]; ok {
		return s
	}
	s := &series{labelsKey: key}
	if len(labels) > 0 {
		s.labels = make(Labels, len(labels))
		for k, v := range labels {
			if err := checkLabelName(k); err != nil {
				panic(err)
			}
			s.labels[k] = v
		}
	}
	switch {
	case funcs:
		// fn assigned by the caller.
	case typ == TypeCounter:
		s.counter = &Counter{}
	case typ == TypeGauge:
		s.gauge = &Gauge{}
	case typ == TypeSummary:
		s.hist = &Histogram{}
	}
	f.byKey[key] = s
	f.order = append(f.order, s)
	return s
}

// checkMetricName enforces the Prometheus metric name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func checkMetricName(name string) error {
	if name == "" {
		return fmt.Errorf("obs: empty metric name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("obs: invalid metric name %q", name)
		}
	}
	return nil
}

// checkLabelName enforces [a-zA-Z_][a-zA-Z0-9_]*.
func checkLabelName(name string) error {
	if name == "" || name[0] == ':' {
		return fmt.Errorf("obs: invalid label name %q", name)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("obs: invalid label name %q", name)
		}
	}
	return nil
}

// renderLabels returns the canonical `{k="v",...}` form of a label set with
// keys sorted, optionally with an extra quantile label appended; "" for an
// empty set without extra.
func renderLabels(labels Labels, quantile string) string {
	if len(labels) == 0 && quantile == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	if quantile != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`quantile="`)
		b.WriteString(quantile)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// WritePrometheus renders every family in the text exposition format,
// sorted by family name and label signature so scrapes are deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	// Snapshot each family's series slice under the lock; values are read
	// outside it (func-backed series may take the owning layer's locks).
	ordered := make([][]*series, len(fams))
	for i, f := range fams {
		ordered[i] = append([]*series(nil), f.order...)
		sort.Slice(ordered[i], func(a, b int) bool {
			return ordered[i][a].labelsKey < ordered[i][b].labelsKey
		})
	}
	r.mu.RUnlock()

	var b []byte
	for i, f := range fams {
		b = b[:0]
		b = append(b, "# HELP "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, escapeHelp(f.help)...)
		b = append(b, "\n# TYPE "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, f.typ.String()...)
		b = append(b, '\n')
		for _, s := range ordered[i] {
			switch {
			case s.fn != nil:
				b = append(b, f.name...)
				b = append(b, s.labelsKey...)
				b = append(b, ' ')
				b = strconv.AppendFloat(b, s.fn(), 'g', -1, 64)
				b = append(b, '\n')
			case s.counter != nil:
				b = append(b, f.name...)
				b = append(b, s.labelsKey...)
				b = append(b, ' ')
				b = strconv.AppendInt(b, s.counter.Value(), 10)
				b = append(b, '\n')
			case s.gauge != nil:
				b = append(b, f.name...)
				b = append(b, s.labelsKey...)
				b = append(b, ' ')
				b = strconv.AppendInt(b, s.gauge.Value(), 10)
				b = append(b, '\n')
			case s.hist != nil:
				for _, q := range summaryQuantiles {
					b = append(b, f.name...)
					b = append(b, renderLabels(s.labels, strconv.FormatFloat(q, 'g', -1, 64))...)
					b = append(b, ' ')
					b = strconv.AppendFloat(b, s.hist.Quantile(q).Seconds(), 'g', -1, 64)
					b = append(b, '\n')
				}
				b = append(b, f.name...)
				b = append(b, "_sum"...)
				b = append(b, s.labelsKey...)
				b = append(b, ' ')
				b = strconv.AppendFloat(b, s.hist.Sum().Seconds(), 'g', -1, 64)
				b = append(b, '\n')
				b = append(b, f.name...)
				b = append(b, "_count"...)
				b = append(b, s.labelsKey...)
				b = append(b, ' ')
				b = strconv.AppendInt(b, s.hist.Count(), 10)
				b = append(b, '\n')
			}
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot is the JSON form of the registry (GET /v1/metrics).
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// FamilySnapshot is one metric family with every series' current value.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Type   string           `json:"type"`
	Help   string           `json:"help"`
	Series []SeriesSnapshot `json:"series"`
}

// SeriesSnapshot is one series: counters and gauges carry Value, summaries
// carry the quantile block.
type SeriesSnapshot struct {
	Labels  Labels           `json:"labels,omitempty"`
	Value   *float64         `json:"value,omitempty"`
	Summary *SummarySnapshot `json:"summary,omitempty"`
}

// SummarySnapshot reports a histogram series in seconds.
type SummarySnapshot struct {
	Count      int64   `json:"count"`
	SumSeconds float64 `json:"sum_seconds"`
	P50        float64 `json:"p50_seconds"`
	P90        float64 `json:"p90_seconds"`
	P99        float64 `json:"p99_seconds"`
	P999       float64 `json:"p999_seconds"`
	Max        float64 `json:"max_seconds"`
}

// TakeSnapshot evaluates every series (including func-backed ones) into a
// JSON-encodable snapshot, ordered like the exposition format.
func (r *Registry) TakeSnapshot() Snapshot {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	ordered := make([][]*series, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
		ordered[i] = append([]*series(nil), fams[i].order...)
		sort.Slice(ordered[i], func(a, b int) bool {
			return ordered[i][a].labelsKey < ordered[i][b].labelsKey
		})
	}
	r.mu.RUnlock()

	snap := Snapshot{Families: make([]FamilySnapshot, 0, len(fams))}
	for i, f := range fams {
		fs := FamilySnapshot{Name: f.name, Type: f.typ.String(), Help: f.help}
		for _, s := range ordered[i] {
			ss := SeriesSnapshot{Labels: s.labels}
			switch {
			case s.fn != nil:
				v := s.fn()
				ss.Value = &v
			case s.counter != nil:
				v := float64(s.counter.Value())
				ss.Value = &v
			case s.gauge != nil:
				v := float64(s.gauge.Value())
				ss.Value = &v
			case s.hist != nil:
				ss.Summary = &SummarySnapshot{
					Count:      s.hist.Count(),
					SumSeconds: s.hist.Sum().Seconds(),
					P50:        s.hist.Quantile(0.5).Seconds(),
					P90:        s.hist.Quantile(0.9).Seconds(),
					P99:        s.hist.Quantile(0.99).Seconds(),
					P999:       s.hist.Quantile(0.999).Seconds(),
					Max:        s.hist.Max().Seconds(),
				}
			}
			fs.Series = append(fs.Series, ss)
		}
		snap.Families = append(snap.Families, fs)
	}
	return snap
}
