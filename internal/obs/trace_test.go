package obs

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTraceSpanTree builds a small request-shaped tree and checks IDs,
// parentage, outcomes and visibility rules.
func TestTraceSpanTree(t *testing.T) {
	tr := NewTracer(4)
	trace := tr.Start("GET /v1/experiments/fig4")
	if len(trace.ID()) != 16 {
		t.Fatalf("trace ID %q, want 16 hex chars", trace.ID())
	}
	if _, ok := tr.Get(trace.ID()); ok {
		t.Fatal("unfinished trace visible to Get")
	}

	root := trace.Root()
	batch := root.Child("engine.batch")
	j1 := batch.Child("fig4")
	j1.EndWith("computed")
	j2 := batch.Child("fig4")
	j2.EndWith("cache-memory")
	j3 := batch.Child("fig4")
	j3.Fail(errors.New("boom"))
	batch.EndWith("")
	tr.Finish(trace)

	got, ok := tr.Get(trace.ID())
	if !ok {
		t.Fatal("finished trace not found")
	}
	spans := got.Spans()
	if len(spans) != 5 {
		t.Fatalf("%d spans, want 5", len(spans))
	}
	if spans[0].Parent != 0 || spans[0].Name != "GET /v1/experiments/fig4" {
		t.Fatalf("bad root span: %+v", spans[0])
	}
	if spans[1].Parent != spans[0].ID {
		t.Fatal("batch span not parented to root")
	}
	for i, want := range []string{"computed", "cache-memory", "error"} {
		s := spans[2+i]
		if s.Parent != spans[1].ID {
			t.Fatalf("job span %d not parented to batch", i)
		}
		if s.Outcome != want {
			t.Fatalf("job span %d outcome %q, want %q", i, s.Outcome, want)
		}
		if s.End.Before(s.Start) {
			t.Fatalf("job span %d ends before it starts", i)
		}
	}
	if spans[4].Err != "boom" {
		t.Fatalf("failed span err %q, want boom", spans[4].Err)
	}
	if got.End().IsZero() || spans[0].End.IsZero() {
		t.Fatal("finish did not close the trace/root")
	}
}

// TestTracerRingEviction fills the ring past capacity and checks the oldest
// traces fall out of the index.
func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(3)
	var ids []string
	for i := 0; i < 5; i++ {
		trace := tr.Start("req")
		ids = append(ids, trace.ID())
		tr.Finish(trace)
	}
	if tr.Len() != 3 {
		t.Fatalf("ring holds %d, want 3", tr.Len())
	}
	for _, id := range ids[:2] {
		if _, ok := tr.Get(id); ok {
			t.Errorf("evicted trace %s still queryable", id)
		}
	}
	for _, id := range ids[2:] {
		if _, ok := tr.Get(id); !ok {
			t.Errorf("recent trace %s not queryable", id)
		}
	}
}

// TestTraceSpanBound checks the per-trace span cap drops (and counts)
// overflow instead of growing without bound.
func TestTraceSpanBound(t *testing.T) {
	tr := NewTracer(1)
	trace := tr.Start("big")
	root := trace.Root()
	for i := 0; i < maxSpansPerTrace+100; i++ {
		s := root.Child("job")
		s.EndWith("computed")
	}
	if n := len(trace.Spans()); n != maxSpansPerTrace {
		t.Fatalf("%d spans retained, want %d", n, maxSpansPerTrace)
	}
	if d := trace.Dropped(); d != 101 {
		t.Fatalf("dropped %d, want 101", d)
	}
}

// TestSpanContext checks context propagation plumbing.
func TestSpanContext(t *testing.T) {
	ctx := context.Background()
	if SpanFromContext(ctx) != nil || TraceIDFromContext(ctx) != "" {
		t.Fatal("empty context carries a span")
	}
	if ContextWithSpan(ctx, nil) != ctx {
		t.Fatal("nil span should not wrap the context")
	}
	tr := NewTracer(1)
	trace := tr.Start("req")
	ctx = ContextWithSpan(ctx, trace.Root())
	if SpanFromContext(ctx) != trace.Root() {
		t.Fatal("span not recovered from context")
	}
	if TraceIDFromContext(ctx) != trace.ID() {
		t.Fatal("trace ID not recovered from context")
	}
}

// TestSlowSpanLogging checks spans over the threshold are logged with the
// trace ID when the trace finishes.
func TestSlowSpanLogging(t *testing.T) {
	var buf bytes.Buffer
	mu := &sync.Mutex{}
	log := slog.New(slog.NewJSONHandler(lockedWriter{mu, &buf}, nil))
	tr := NewTracer(1)
	tr.SetSlowSpan(time.Millisecond, log)

	trace := tr.Start("req")
	slow := trace.Root().Child("slow-job")
	slow.Start = slow.Start.Add(-10 * time.Millisecond)
	slow.EndWith("computed")
	fast := trace.Root().Child("fast-job")
	fast.EndWith("cache-memory")
	tr.Finish(trace)

	out := buf.String()
	if !strings.Contains(out, "slow span") || !strings.Contains(out, "slow-job") {
		t.Fatalf("slow span not logged: %q", out)
	}
	if !strings.Contains(out, trace.ID()) {
		t.Fatalf("log line missing trace ID: %q", out)
	}
	if strings.Contains(out, "fast-job") {
		t.Fatalf("fast span logged as slow: %q", out)
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestTracerConcurrency drives concurrent traces with concurrent Get calls;
// meaningful under -race.
func TestTracerConcurrency(t *testing.T) {
	tr := NewTracer(8)
	var writers, readers sync.WaitGroup
	ids := make(chan string, 64)
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 16; i++ {
				trace := tr.Start("req")
				for j := 0; j < 8; j++ {
					s := trace.Root().Child("job")
					s.EndWith("computed")
				}
				tr.Finish(trace)
				ids <- trace.ID()
			}
		}()
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for id := range ids {
			if trace, ok := tr.Get(id); ok {
				for _, s := range trace.Spans() {
					_ = s.Duration()
				}
			}
		}
	}()
	writers.Wait()
	close(ids)
	readers.Wait()
}
