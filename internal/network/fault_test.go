package network

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"speedofdata/internal/circuits"
	"speedofdata/internal/engine"
	"speedofdata/internal/iontrap"
	"speedofdata/internal/quantum"
	"speedofdata/internal/schedule"
)

// faultTestConfig plans a tiles-tile mesh for the benchmark with
// over-provisioned factories, so the interconnect is the binding constraint.
func faultTestConfig(t *testing.T, b circuits.Benchmark, tiles int) (*quantum.Circuit, Config) {
	t.Helper()
	m := schedule.DefaultLatencyModel()
	c, err := circuits.Generate(b, 8)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := schedule.Characterize(c, m)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := PlanConfig(m, c.NumQubits, tiles, ch.ZeroBandwidthPerMs*2, ch.Pi8BandwidthPerMs)
	if err != nil {
		t.Fatal(err)
	}
	return c, cfg
}

// trimHist drops the trailing zeros of every hop histogram in place: a
// faulted replay sizes the histogram for the worst detour (TileCount-1)
// even when no detour happens, so comparisons against fault-free runs
// normalise the length first.
func trimHist(run *ReplayRun) {
	for i := range run.Results {
		h := run.Results[i].HopHistogram
		for len(h) > 0 && h[len(h)-1] == 0 {
			h = h[:len(h)-1]
		}
		run.Results[i].HopHistogram = h
	}
}

// The parity anchor of the fault layer: an absent plan and an empty plan
// replay byte-identically on every benchmark, single and shared.
func TestZeroFaultPlanByteIdentical(t *testing.T) {
	var cs []*quantum.Circuit
	var base Config
	for _, b := range circuits.Benchmarks() {
		c, cfg := faultTestConfig(t, b, 4)
		want, err := Replay(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		withEmpty := cfg
		withEmpty.Faults = FaultPlan{}
		got, err := Replay(c, withEmpty)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%v: empty fault plan diverged from absent plan", b)
		}
		cs, base = append(cs, c), cfg
	}
	want, err := ReplayShared(cs, base)
	if err != nil {
		t.Fatal(err)
	}
	base.Faults = FaultPlan{}
	got, err := ReplayShared(cs, base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("shared replay: empty fault plan diverged from absent plan")
	}
}

// A fault scheduled past the makespan never applies: the kernel stops when
// the workload completes, so the run matches the fault-free one in every
// field but the histogram sizing.
func TestScheduledFaultBeyondMakespanIsInert(t *testing.T) {
	c, cfg := faultTestConfig(t, circuits.QCLA, 4)
	clean, err := Replay(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	boundary, ok := BisectionBoundary(NewTopology(len(cfg.Machine.Tiles)))
	if !ok {
		t.Fatal("no bisection boundary on a 4-tile mesh")
	}
	cfg.Faults = FaultPlan{{Link: boundary[0], At: clean.Makespan * 1000, Dead: true}}
	late, err := Replay(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if late.Faults != (FaultStats{}) {
		t.Errorf("unapplied fault left stats %+v", late.Faults)
	}
	trimHist(&clean)
	trimHist(&late)
	clean.Faults = late.Faults
	if !reflect.DeepEqual(clean, late) {
		t.Errorf("fault beyond makespan changed the replay:\n got %+v\nwant %+v", late, clean)
	}
}

// The netfault dead-link arm on every benchmark: the replay completes (no
// deadlock), reroutes traffic around the dead boundary, and never beats the
// pristine makespan.
func TestDeadBisectionLinkReroutesAndCompletes(t *testing.T) {
	for _, b := range circuits.Benchmarks() {
		c, cfg := faultTestConfig(t, b, 4)
		topo := NewTopology(len(cfg.Machine.Tiles))
		part, err := PartitionCircuit(c, topo.TileCount())
		if err != nil {
			t.Fatal(err)
		}
		// Matched bandwidth keeps the links loaded so the dead link matters.
		cfg.LinkEPRPerMs = MatchedLinkEPRPerMs(c, cfg.Latency, topo, part)
		if ceiling := cfg.Machine.LinkEPRPerMs(); !(cfg.LinkEPRPerMs > 0) || cfg.LinkEPRPerMs > ceiling {
			cfg.LinkEPRPerMs = ceiling
		}
		clean, err := Replay(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = FaultPlanFor(FaultDeadLink, topo)
		run, err := Replay(c, cfg)
		if err != nil {
			t.Fatalf("%v: dead bisection link: %v", b, err)
		}
		if run.Faults.FailedLinks != 2 {
			t.Errorf("%v: failed links = %d, want 2", b, run.Faults.FailedLinks)
		}
		if run.Faults.Reroutes == 0 {
			t.Errorf("%v: dead bisection link caused no reroutes", b)
		}
		if run.Faults.DetourHops <= 0 {
			t.Errorf("%v: reroutes with no detour hops: %+v", b, run.Faults)
		}
		if run.Makespan < clean.Makespan-1e-6 {
			t.Errorf("%v: dead link sped the replay up: %v < %v", b, run.Makespan, clean.Makespan)
		}
		// Determinism with faults active.
		again, err := Replay(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(run, again) {
			t.Errorf("%v: faulted replay is not deterministic", b)
		}
	}
}

// A fault striking mid-run re-resolves cached routes and re-paths teleports
// queued on the dying link instead of hanging the replay.
func TestScheduledMidRunFaultReroutes(t *testing.T) {
	c, cfg := faultTestConfig(t, circuits.QCLA, 4)
	topo := NewTopology(len(cfg.Machine.Tiles))
	part, err := PartitionCircuit(c, topo.TileCount())
	if err != nil {
		t.Fatal(err)
	}
	cfg.LinkEPRPerMs = MatchedLinkEPRPerMs(c, cfg.Latency, topo, part)
	if ceiling := cfg.Machine.LinkEPRPerMs(); !(cfg.LinkEPRPerMs > 0) || cfg.LinkEPRPerMs > ceiling {
		cfg.LinkEPRPerMs = ceiling
	}
	clean, err := Replay(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	boundary, _ := BisectionBoundary(topo)
	at := clean.Makespan / 2
	cfg.Faults = FaultPlan{
		{Link: boundary[0], At: at, Dead: true},
		{Link: boundary[1], At: at, Dead: true},
	}
	run, err := Replay(c, cfg)
	if err != nil {
		t.Fatalf("mid-run dead link: %v", err)
	}
	if run.Faults.FailedLinks != 2 {
		t.Errorf("failed links = %d, want 2", run.Faults.FailedLinks)
	}
	if run.Faults.Reroutes+run.Faults.InFlightReroutes == 0 {
		t.Error("mid-run link death caused no reroutes at all")
	}
	if run.Makespan < clean.Makespan-1e-6 {
		t.Errorf("mid-run fault sped the replay up: %v < %v", run.Makespan, clean.Makespan)
	}
	again, err := Replay(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(run, again) {
		t.Error("mid-run faulted replay is not deterministic")
	}
}

// Degrading every link slows pair generation without changing any route:
// the makespan ordering none <= degraded holds and degradation wait is
// attributed.
func TestDegradedLinksSlowButDoNotReroute(t *testing.T) {
	c, cfg := faultTestConfig(t, circuits.QCLA, 4)
	topo := NewTopology(len(cfg.Machine.Tiles))
	part, err := PartitionCircuit(c, topo.TileCount())
	if err != nil {
		t.Fatal(err)
	}
	cfg.LinkEPRPerMs = MatchedLinkEPRPerMs(c, cfg.Latency, topo, part)
	if ceiling := cfg.Machine.LinkEPRPerMs(); !(cfg.LinkEPRPerMs > 0) || cfg.LinkEPRPerMs > ceiling {
		cfg.LinkEPRPerMs = ceiling
	}
	clean, err := Replay(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = DegradeAllLinks(topo, DegradeRateFactor)
	run, err := Replay(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if run.Faults.Reroutes != 0 || run.Faults.InFlightReroutes != 0 || run.Faults.FailedLinks != 0 {
		t.Errorf("degradation rerouted or failed links: %+v", run.Faults)
	}
	if run.Faults.DegradedLinks != len(topo.Links()) {
		t.Errorf("degraded links = %d, want %d", run.Faults.DegradedLinks, len(topo.Links()))
	}
	if run.Makespan < clean.Makespan-1e-6 {
		t.Errorf("degraded links sped the replay up: %v < %v", run.Makespan, clean.Makespan)
	}
	if run.Results[0].NetworkBlocked > 0 && run.Faults.DegradedWaitUs < 0 {
		t.Errorf("negative degradation wait %v", run.Faults.DegradedWaitUs)
	}
}

// Killing every boundary of a 2-tile mesh leaves routed traffic no path:
// the replay aborts with the typed partition error.
func TestFullyPartitionedMeshReturnsTypedError(t *testing.T) {
	c, cfg := faultTestConfig(t, circuits.QCLA, 2)
	topo := NewTopology(len(cfg.Machine.Tiles))
	cfg.Faults = FaultPlanFor(FaultDeadLink, topo)
	_, err := Replay(c, cfg)
	if !errors.Is(err, ErrPartitioned) {
		t.Fatalf("partitioned 2-tile mesh error = %v, want ErrPartitioned", err)
	}
}

// The netfault grid: per link factor the makespan is monotone in damage
// (none <= degraded <= dead link), and the grid is byte-identical across
// engine worker counts.
func TestFaultSweepMonotoneAndDeterministic(t *testing.T) {
	m := schedule.DefaultLatencyModel()
	c, err := circuits.Generate(circuits.QCLA, 8)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := schedule.Characterize(c, m)
	if err != nil {
		t.Fatal(err)
	}
	sc := FaultSweepConfig{
		Latency:     m,
		ZeroPerMs:   ch.ZeroBandwidthPerMs * 2,
		Pi8PerMs:    ch.Pi8BandwidthPerMs,
		Tiles:       4,
		LinkFactors: DefaultFaultLinkFactors(),
	}
	points, err := FaultSweep(c, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(FaultModes())*len(sc.LinkFactors) {
		t.Fatalf("grid has %d points, want %d", len(points), len(FaultModes())*len(sc.LinkFactors))
	}
	byFactor := map[float64]map[string]FaultSweepPoint{}
	for _, p := range points {
		if byFactor[p.LinkFactor] == nil {
			byFactor[p.LinkFactor] = map[string]FaultSweepPoint{}
		}
		byFactor[p.LinkFactor][p.Mode] = p
	}
	for factor, arms := range byFactor {
		none, deg, dead := arms[FaultNone.String()], arms[FaultDegraded.String()], arms[FaultDeadLink.String()]
		if none.ExecutionTimeMs > deg.ExecutionTimeMs+1e-9 {
			t.Errorf("x%.2f: degraded links (%.4f ms) beat the pristine mesh (%.4f ms)",
				factor, deg.ExecutionTimeMs, none.ExecutionTimeMs)
		}
		if deg.ExecutionTimeMs > dead.ExecutionTimeMs+1e-9 {
			t.Errorf("x%.2f: dead link (%.4f ms) beat degraded links (%.4f ms)",
				factor, dead.ExecutionTimeMs, deg.ExecutionTimeMs)
		}
		if none.Reroutes != 0 || dead.Reroutes == 0 {
			t.Errorf("x%.2f: reroutes none=%d dead=%d, want 0 and >0", factor, none.Reroutes, dead.Reroutes)
		}
		if deg.DegradedLinks == 0 || deg.DegradedWaitMs < 0 {
			t.Errorf("x%.2f: degraded arm decomposition %+v", factor, deg)
		}
	}
	seq, err := FaultSweepEngine(t.Context(), engine.New(1), c, sc)
	if err != nil {
		t.Fatal(err)
	}
	par, err := FaultSweepEngine(t.Context(), engine.New(8), c, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("fault sweep differs between 1 and 8 workers")
	}
}

// The netdegrade sweep kills boundaries until the mesh partitions: rows
// before the partition point complete with growing damage, rows after it
// report Partitioned instead of failing the sweep.
func TestDegradeSweepUntilPartition(t *testing.T) {
	m := schedule.DefaultLatencyModel()
	c, err := circuits.Generate(circuits.QCLA, 8)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := schedule.Characterize(c, m)
	if err != nil {
		t.Fatal(err)
	}
	sc := DegradeConfig{
		Latency:     m,
		ZeroPerMs:   ch.ZeroBandwidthPerMs * 2,
		Pi8PerMs:    ch.Pi8BandwidthPerMs,
		Tiles:       4,
		MaxFailures: 4,
	}
	rows, err := DegradeSweep(c, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("sweep produced %d rows, want 5 (0..4 failures)", len(rows))
	}
	if rows[0].Partitioned || rows[0].Reroutes != 0 || rows[0].FailedLinks != 0 {
		t.Errorf("pristine row = %+v", rows[0])
	}
	if rows[1].Partitioned {
		t.Error("one dead boundary on a 2x2 mesh must not partition it")
	}
	if rows[1].Reroutes == 0 {
		t.Error("one dead boundary caused no reroutes")
	}
	sawPartition := false
	for i, r := range rows {
		if r.Failures != i {
			t.Errorf("row %d reports %d failures", i, r.Failures)
		}
		if sawPartition && !r.Partitioned {
			t.Errorf("row %d healed a partitioned mesh", i)
		}
		if r.Partitioned {
			sawPartition = true
		} else if r.ExecutionTimeMs < rows[0].ExecutionTimeMs-1e-9 {
			t.Errorf("row %d (%d failures) beat the pristine makespan", i, r.Failures)
		}
	}
	if !sawPartition {
		t.Error("killing all 4 boundaries of a 2x2 mesh must partition it")
	}
}

// RouteAvoiding's fallback ladder around partial-last-row holes and failed
// links, table-driven: the baseline when clear, the opposite dimension
// order when the hole forces it, a BFS detour when both orders are blocked,
// and the typed error when nothing survives.
func TestRouteAvoidingFallbackLadder(t *testing.T) {
	down := func(dead ...Link) func(Link) bool {
		return func(l Link) bool {
			for _, d := range dead {
				if l == d {
					return true
				}
			}
			return false
		}
	}
	cases := []struct {
		name        string
		topo        Topology
		a, b        int
		down        func(Link) bool
		want        []Link
		rerouted    bool
		partitioned bool
	}{
		{
			name: "clear mesh takes the X-then-Y baseline",
			topo: NewTopology(6), a: 0, b: 5, down: down(),
			want: []Link{{0, 1}, {1, 2}, {2, 5}},
		},
		{
			name: "hole in the last row forces Y-then-X as the baseline",
			topo: NewTopology(3), a: 2, b: 1, down: down(),
			want: []Link{{2, 0}, {0, 1}},
		},
		{
			name: "dead link on the X-first leg falls back to Y-then-X",
			topo: NewTopology(4), a: 0, b: 3, down: down(Link{0, 1}),
			want: []Link{{0, 2}, {2, 3}}, rerouted: true,
		},
		{
			// 3x2 mesh, tile (2,1) missing.  Tile 3 (0,1) has exactly two
			// healthy-mesh exits, 3->4 and 3->0; killing both strands it.
			name: "partial-row tile with both exits dead is partitioned",
			topo: NewTopology(5), a: 3, b: 1, down: down(Link{3, 4}, Link{3, 0}),
			partitioned: true,
		},
		{
			name: "both dimension orders dead, BFS detours the long way",
			topo: NewTopology(4), a: 0, b: 1, down: down(Link{0, 1}),
			want: []Link{{0, 2}, {2, 3}, {3, 1}}, rerouted: true,
		},
		{
			name: "two-tile mesh with its only link dead is partitioned",
			topo: NewTopology(2), a: 0, b: 1, down: down(Link{0, 1}),
			partitioned: true,
		},
		{
			name: "self route is empty even on a dead mesh",
			topo: NewTopology(4), a: 2, b: 2,
			down: down(Link{0, 1}, Link{1, 0}, Link{0, 2}, Link{2, 0}),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, rerouted, err := tc.topo.RouteAvoiding(tc.a, tc.b, tc.down)
			if tc.partitioned {
				if !errors.Is(err, ErrPartitioned) {
					t.Fatalf("err = %v, want ErrPartitioned", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tc.want) || rerouted != tc.rerouted {
				t.Errorf("route = %v (rerouted=%v), want %v (rerouted=%v)", got, rerouted, tc.want, tc.rerouted)
			}
		})
	}
}

// checkRoute asserts the structural invariants every RouteAvoiding result
// must satisfy on any mesh with any failure set.
func checkRoute(t *testing.T, topo Topology, a, b int, route []Link, down func(Link) bool) {
	t.Helper()
	if a == b {
		if len(route) != 0 {
			t.Fatalf("self route %d->%d = %v, want empty", a, b, route)
		}
		return
	}
	if len(route) == 0 || len(route) > topo.TileCount()-1 {
		t.Fatalf("route %d->%d has %d links, want 1..%d", a, b, len(route), topo.TileCount()-1)
	}
	if route[0].From != a || route[len(route)-1].To != b {
		t.Fatalf("route %d->%d endpoints wrong: %v", a, b, route)
	}
	cur := a
	for _, l := range route {
		if l.From != cur {
			t.Fatalf("route %d->%d not contiguous at %v: %v", a, b, l, route)
		}
		if l.From >= topo.TileCount() || l.To >= topo.TileCount() {
			t.Fatalf("route %d->%d crosses an unpopulated tile: %v", a, b, route)
		}
		if topo.HopDistance(l.From, l.To) != 1 {
			t.Fatalf("route %d->%d takes a non-adjacent step %v", a, b, l)
		}
		if down(l) {
			t.Fatalf("route %d->%d crosses the failed link %v", a, b, l)
		}
		cur = l.To
	}
	if cur != b {
		t.Fatalf("route %d->%d ends at %d", a, b, cur)
	}
}

// FuzzRoute drives RouteAvoiding over random meshes, endpoints and failure
// sets: every returned route is hole-free, failure-free and within the
// detour bound, every failure to route is the typed partition error, and a
// healthy mesh always routes at exactly the Manhattan distance.
func FuzzRoute(f *testing.F) {
	f.Add(6, 0, 5, uint32(0))
	f.Add(3, 2, 1, uint32(0))
	f.Add(4, 0, 3, uint32(0b11))
	f.Add(9, 8, 0, uint32(0xffff))
	f.Fuzz(func(t *testing.T, n, a, b int, downMask uint32) {
		if n < 1 || n > 16 {
			return
		}
		topo := NewTopology(n)
		if a < 0 || a >= n || b < 0 || b >= n {
			return
		}
		links := topo.Links()
		down := func(l Link) bool {
			for i, cand := range links {
				if cand == l {
					return downMask&(1<<(uint(i)%32)) != 0
				}
			}
			return false
		}
		route, rerouted, err := topo.RouteAvoiding(a, b, down)
		if err != nil {
			if !errors.Is(err, ErrPartitioned) {
				t.Fatalf("n=%d %d->%d: err = %v, want ErrPartitioned", n, a, b, err)
			}
			return
		}
		checkRoute(t, topo, a, b, route, down)
		if !rerouted && len(route) != topo.HopDistance(a, b) {
			t.Fatalf("n=%d %d->%d: un-rerouted route length %d != distance %d",
				n, a, b, len(route), topo.HopDistance(a, b))
		}
		if downMask == 0 {
			if rerouted {
				t.Fatalf("n=%d %d->%d: healthy mesh reported a reroute", n, a, b)
			}
			if !reflect.DeepEqual(route, topo.Route(a, b)) {
				t.Fatalf("n=%d %d->%d: healthy RouteAvoiding %v != Route %v",
					n, a, b, route, topo.Route(a, b))
			}
		}
	})
}

func TestFaultPlanValidate(t *testing.T) {
	topo := NewTopology(4)
	good := FaultPlan{
		{Link: Link{0, 1}, Dead: true},
		{Link: Link{1, 0}, At: 50, RateFactor: 0.5},
	}
	if err := good.Validate(topo); err != nil {
		t.Fatalf("good plan invalid: %v", err)
	}
	bad := []FaultPlan{
		{{Link: Link{0, 3}, Dead: true}},                                            // not adjacent
		{{Link: Link{0, 7}, Dead: true}},                                            // off the mesh
		{{Link: Link{-1, 0}, Dead: true}},                                           // negative tile
		{{Link: Link{0, 1}, At: -1, Dead: true}},                                    // negative time
		{{Link: Link{0, 1}, RateFactor: 0}},                                         // zero factor
		{{Link: Link{0, 1}, RateFactor: 1}},                                         // no-op factor
		{{Link: Link{0, 1}, RateFactor: 1.5}},                                       // speed-up
		{{Link: Link{0, 1}, At: iontrap.Microseconds(math.Inf(1)), RateFactor: .5}}, // infinite time
	}
	for i, p := range bad {
		if err := p.Validate(topo); err == nil {
			t.Errorf("bad plan %d (%+v) validated", i, p[0])
		}
	}
	// Config.Validate wires the plan check in.
	m := schedule.DefaultLatencyModel()
	cfg, err := PlanConfig(m, 16, 4, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = FaultPlan{{Link: Link{0, 3}, Dead: true}}
	if err := cfg.Validate(); err == nil {
		t.Error("config with an off-mesh fault validated")
	}
}

func TestFaultPlanHelpers(t *testing.T) {
	topo := NewTopology(4) // 2x2
	boundary, ok := BisectionBoundary(topo)
	if !ok || boundary[0] != (Link{0, 1}) || boundary[1] != (Link{1, 0}) {
		t.Errorf("2x2 bisection boundary = %v, %v", boundary, ok)
	}
	if _, ok := BisectionBoundary(NewTopology(1)); ok {
		t.Error("1-tile mesh has no boundary")
	}
	want := []Link{{0, 1}, {0, 2}, {1, 3}, {2, 3}}
	if got := Boundaries(topo); !reflect.DeepEqual(got, want) {
		t.Errorf("2x2 boundaries = %v, want %v", got, want)
	}
	if plan := KillBoundaries(topo, 1); len(plan) != 2 || !plan[0].Dead || !plan[1].Dead {
		t.Errorf("KillBoundaries(1) = %+v", plan)
	}
	if plan := KillBoundaries(topo, 99); len(plan) != 8 {
		t.Errorf("KillBoundaries past the end produced %d faults, want 8", len(plan))
	}
	if plan := DegradeAllLinks(topo, 0.75); len(plan) != len(topo.Links()) {
		t.Errorf("DegradeAllLinks covered %d links, want %d", len(plan), len(topo.Links()))
	}
	if s := FaultDeadLink.String(); s != "dead-bisection-link" {
		t.Errorf("FaultDeadLink = %q", s)
	}
	if s := FaultMode(42).String(); s != "FaultMode(42)" {
		t.Errorf("unknown mode = %q", s)
	}
}

func TestMatchedLinkEPRPerMsDegenerate(t *testing.T) {
	m := schedule.DefaultLatencyModel()
	c, err := circuits.Generate(circuits.QCLA, 8)
	if err != nil {
		t.Fatal(err)
	}
	onePart := Partition{TileOf: make([]int, c.NumQubits), Tiles: 1}
	if got := MatchedLinkEPRPerMs(c, m, NewTopology(1), onePart); got != 0 {
		t.Errorf("1-tile mesh matched rate = %v, want 0 (no links)", got)
	}
	topo := NewTopology(4)
	// Every qubit on tile 0: no cross-tile traffic, so hops == 0.
	local := Partition{TileOf: make([]int, c.NumQubits), Tiles: 4}
	if got := MatchedLinkEPRPerMs(c, m, topo, local); got != 0 {
		t.Errorf("local-only matched rate = %v, want 0 (no hops)", got)
	}
	// A gateless circuit has no dataflow time.
	empty := quantum.NewCircuit("empty", 8)
	part := Partition{TileOf: make([]int, 8), Tiles: 4}
	if got := MatchedLinkEPRPerMs(empty, m, topo, part); got != 0 {
		t.Errorf("empty-circuit matched rate = %v, want 0 (no dataflow time)", got)
	}
}
