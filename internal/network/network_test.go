package network

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"speedofdata/internal/circuits"
	"speedofdata/internal/engine"
	"speedofdata/internal/iontrap"
	"speedofdata/internal/quantum"
	"speedofdata/internal/schedule"
	"speedofdata/internal/sim"
)

func TestTopologyGeometry(t *testing.T) {
	topo := NewTopology(6) // 3x2, full grid
	if topo.Cols != 3 || topo.Rows != 2 || topo.TileCount() != 6 {
		t.Fatalf("6-tile mesh = %+v", topo)
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := topo.HopDistance(0, 5); d != 3 {
		t.Errorf("corner-to-corner distance = %d, want 3", d)
	}
	// Dimension-order: X legs first, then Y.
	want := []Link{{0, 1}, {1, 2}, {2, 5}}
	if got := topo.Route(0, 5); !reflect.DeepEqual(got, want) {
		t.Errorf("route 0->5 = %v, want %v", got, want)
	}
	if got := topo.Route(2, 2); got != nil {
		t.Errorf("self route = %v, want nil", got)
	}
	// Routes are deterministic call to call.
	if a, b := topo.Route(5, 0), topo.Route(5, 0); !reflect.DeepEqual(a, b) {
		t.Errorf("route not deterministic: %v vs %v", a, b)
	}
}

func TestTopologyPartialRowFallback(t *testing.T) {
	topo := NewTopology(3) // 2x2 grid with tile (1,1) unpopulated
	if topo.Cols != 2 || topo.Rows != 2 {
		t.Fatalf("3-tile mesh = %+v", topo)
	}
	// X-then-Y from tile 2 (0,1) to tile 1 (1,0) would step onto the
	// missing cell (1,1); the route must fall back to Y-then-X with the
	// same length.
	route := topo.Route(2, 1)
	want := []Link{{2, 0}, {0, 1}}
	if !reflect.DeepEqual(route, want) {
		t.Errorf("partial-row route = %v, want %v", route, want)
	}
	if len(route) != topo.HopDistance(2, 1) {
		t.Errorf("fallback changed route length: %d vs %d", len(route), topo.HopDistance(2, 1))
	}
	for _, l := range topo.Links() {
		if l.From >= 3 || l.To >= 3 {
			t.Errorf("link %v touches an unpopulated tile", l)
		}
	}
}

func TestTopologyValidate(t *testing.T) {
	cases := []Topology{
		{Cols: 0, Rows: 1, TileQubits: 1},
		{Cols: 2, Rows: 2, Tiles: 5, TileQubits: 1},
		{Cols: 2, Rows: 2, Tiles: 2, TileQubits: 1}, // whole last row empty
		{Cols: 2, Rows: 2, TileQubits: 0},
	}
	for _, topo := range cases {
		if err := topo.Validate(); err == nil {
			t.Errorf("%+v should be invalid", topo)
		}
	}
	if err := (Topology{Cols: 2, Rows: 2, TileQubits: 4}).Validate(); err != nil {
		t.Errorf("full 2x2 mesh invalid: %v", err)
	}
}

func TestPartitionDeterministicAndBounded(t *testing.T) {
	c, err := circuits.Generate(circuits.QCLA, 8)
	if err != nil {
		t.Fatal(err)
	}
	const tiles = 4
	a, err := PartitionCircuit(c, tiles)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PartitionCircuit(c, tiles)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("partition is not deterministic")
	}
	capacity := (c.NumQubits + tiles - 1) / tiles
	occ := make([]int, tiles)
	for q, tile := range a.TileOf {
		if tile < 0 || tile >= tiles {
			t.Fatalf("qubit %d on tile %d", q, tile)
		}
		occ[tile]++
	}
	for tile, n := range occ {
		if n > capacity {
			t.Errorf("tile %d holds %d qubits, capacity %d", tile, n, capacity)
		}
	}
	if a.CrossGates <= 0 {
		t.Error("a multi-tile adder should have cross-tile gates")
	}
	if a.Key == "" {
		t.Error("partition key missing")
	}
}

// parityConfig builds the 1-tile degenerate mesh matched to a fluid
// schedule.Supply: a single tile whose zero supply rate equals the supply's,
// with ballistic movement disabled so local gates carry exactly the
// schedule model's weight.
func parityConfig(t *testing.T, m schedule.LatencyModel, nQubits int, ratePerMs float64) Config {
	t.Helper()
	cfg, err := PlanConfig(m, nQubits, 1, ratePerMs, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Machine.Movement.BallisticPerGateUs = 0
	cfg.TileZeroRatePerMs = ratePerMs
	return cfg
}

// The acceptance anchor: a 1-tile mesh has no links, so Replay must
// reproduce the fluid-mode schedule.Replay bit for bit on every registered
// benchmark — same issue order, same token-bucket arithmetic, same
// where-time-went decomposition.
func TestOneTileReplayMatchesScheduleFluid(t *testing.T) {
	m := schedule.DefaultLatencyModel()
	for _, b := range circuits.Benchmarks() {
		c, err := circuits.Generate(b, 8)
		if err != nil {
			t.Fatal(err)
		}
		ch, err := schedule.Characterize(c, m)
		if err != nil {
			t.Fatal(err)
		}
		for _, factor := range []float64{0.5, 1, 4} {
			rate := ch.ZeroBandwidthPerMs * factor
			want, err := schedule.Replay(c, m, schedule.Supply{RatePerMs: rate})
			if err != nil {
				t.Fatal(err)
			}
			got, err := Replay(c, parityConfig(t, m, c.NumQubits, rate))
			if err != nil {
				t.Fatal(err)
			}
			if got.Results[0].ReplayResult != want.Results[0] {
				t.Errorf("%v at %.2fx: 1-tile mesh diverged from schedule.Replay:\n got %+v\nwant %+v",
					b, factor, got.Results[0].ReplayResult, want.Results[0])
			}
			if got.Events != want.Events {
				t.Errorf("%v at %.2fx: events %d != %d", b, factor, got.Events, want.Events)
			}
			if len(got.Links) != 0 || got.Results[0].Teleports != 0 {
				t.Errorf("%v: 1-tile mesh should have no interconnect traffic", b)
			}
		}
	}
}

func TestMultiTileReplayAccounting(t *testing.T) {
	m := schedule.DefaultLatencyModel()
	c, err := circuits.Generate(circuits.QCLA, 8)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := schedule.Characterize(c, m)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := PlanConfig(m, c.NumQubits, 4, ch.ZeroBandwidthPerMs*2, ch.Pi8BandwidthPerMs)
	if err != nil {
		t.Fatal(err)
	}
	run, err := Replay(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := run.Results[0]
	if r.CrossGates <= 0 || r.Teleports <= 0 || r.Hops < r.Teleports {
		t.Fatalf("no routed traffic: %+v", r)
	}
	if r.NetworkBlocked <= 0 {
		t.Error("cross-tile teleports must accumulate network-blocked time")
	}
	if r.ExecutionTime < r.SpeedOfData {
		t.Errorf("makespan %v below the dataflow bound %v", r.ExecutionTime, r.SpeedOfData)
	}
	histTotal := 0
	for d, n := range r.HopHistogram {
		if d == 0 && n != 0 {
			t.Error("zero-distance teleports recorded")
		}
		histTotal += n
	}
	if histTotal != r.Teleports {
		t.Errorf("hop histogram sums to %d, want %d teleports", histTotal, r.Teleports)
	}
	pairs := 0.0
	for _, l := range run.Links {
		pairs += l.PairsConsumed
	}
	if int(math.Round(pairs)) != r.Hops {
		t.Errorf("links delivered %.0f pairs, want one per hop (%d)", pairs, r.Hops)
	}
	if r.TeleportAncillae != r.Hops*cfg.Machine.Movement.TeleportAncillae {
		t.Errorf("teleport ancillae %d, want %d per hop", r.TeleportAncillae, cfg.Machine.Movement.TeleportAncillae)
	}
	// Replays are deterministic end to end.
	again, err := Replay(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(run, again) {
		t.Error("replay is not deterministic")
	}
}

func TestReplaySharedMeshContention(t *testing.T) {
	m := schedule.DefaultLatencyModel()
	qrca, err := circuits.Generate(circuits.QRCA, 8)
	if err != nil {
		t.Fatal(err)
	}
	qcla, err := circuits.Generate(circuits.QCLA, 8)
	if err != nil {
		t.Fatal(err)
	}
	chA, err := schedule.Characterize(qrca, m)
	if err != nil {
		t.Fatal(err)
	}
	chB, err := schedule.Characterize(qcla, m)
	if err != nil {
		t.Fatal(err)
	}
	demand := chA.ZeroBandwidthPerMs + chB.ZeroBandwidthPerMs
	nQubits := qrca.NumQubits + qcla.NumQubits
	cfg, err := PlanConfig(m, nQubits, 4, demand, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Starve the links so sharing is visible.
	cfg.LinkEPRPerMs = cfg.Machine.LinkEPRPerMs() / 4
	shared, err := ReplayShared([]*quantum.Circuit{qrca, qcla}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range []*quantum.Circuit{qrca, qcla} {
		solo, err := Replay(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if shared.Results[i].ExecutionTime < solo.Results[0].ExecutionTime-1e-6 {
			t.Errorf("%s: shared-mesh makespan %v beat the solo makespan %v",
				c.Name, shared.Results[i].ExecutionTime, solo.Results[0].ExecutionTime)
		}
	}
	if shared.Makespan < shared.Results[0].ExecutionTime || shared.Makespan < shared.Results[1].ExecutionTime {
		t.Error("run makespan must cover every circuit")
	}
}

func TestConfigValidate(t *testing.T) {
	m := schedule.DefaultLatencyModel()
	good, err := PlanConfig(m, 16, 4, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("planned config invalid: %v", err)
	}

	bad := good
	bad.Machine.Movement.TeleportUs = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative teleport latency should fail validation")
	}
	bad = good
	bad.Machine.Movement.BallisticPerGateUs = iontrap.Microseconds(math.NaN())
	if err := bad.Validate(); err == nil {
		t.Error("NaN ballistic latency should fail validation")
	}
	bad = good
	bad.Machine.Movement.TeleportUs = 0 // derived link bandwidth collapses to zero
	if err := bad.Validate(); !errors.Is(err, sim.ErrZeroRate) {
		t.Errorf("zero link bandwidth error = %v, want ErrZeroRate", err)
	}
	bad = good
	bad.LinkBufferPairs = -2
	if err := bad.Validate(); err == nil {
		t.Error("negative link buffer should fail validation")
	}
	bad = good
	bad.TileZeroRatePerMs = -5
	if err := bad.Validate(); !errors.Is(err, sim.ErrZeroRate) {
		t.Errorf("negative tile rate error = %v, want ErrZeroRate", err)
	}
	bad = good
	bad.Machine.Tiles = nil
	if err := bad.Validate(); err == nil {
		t.Error("machine with no tiles should fail validation")
	}
	if _, err := PlanConfig(m, 16, 0, 100, 0); err == nil {
		t.Error("zero tiles should fail planning")
	}
}

// The netsweep property the scenario exists to show: with the factories
// over-provisioned, raising the link EPR bandwidth monotonically shrinks the
// network-blocked share of the makespan.
func TestSweepNetworkBlockedMonotoneInLinkBandwidth(t *testing.T) {
	m := schedule.DefaultLatencyModel()
	c, err := circuits.Generate(circuits.QCLA, 8)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := schedule.Characterize(c, m)
	if err != nil {
		t.Fatal(err)
	}
	sc := SweepConfig{
		Latency:     m,
		ZeroPerMs:   ch.ZeroBandwidthPerMs * 2,
		Pi8PerMs:    ch.Pi8BandwidthPerMs,
		TileCounts:  []int{2, 4},
		LinkFactors: DefaultLinkFactors(),
	}
	points, err := Sweep(c, sc)
	if err != nil {
		t.Fatal(err)
	}
	byTiles := map[int][]SweepPoint{}
	for _, p := range points {
		byTiles[p.Tiles] = append(byTiles[p.Tiles], p)
	}
	for tiles, row := range byTiles {
		for i := 1; i < len(row); i++ {
			if row[i].LinkFactor <= row[i-1].LinkFactor {
				t.Fatalf("%d tiles: factors out of order", tiles)
			}
			if row[i].NetworkBlockedMs > row[i-1].NetworkBlockedMs+1e-9 {
				t.Errorf("%d tiles: network-blocked rose from %.4f ms (x%.2f) to %.4f ms (x%.2f)",
					tiles, row[i-1].NetworkBlockedMs, row[i-1].LinkFactor,
					row[i].NetworkBlockedMs, row[i].LinkFactor)
			}
		}
		// The starved end must actually be link-bound — the sweep is useless
		// if the lowest bandwidth never queues.
		if first, last := row[0], row[len(row)-1]; first.NetworkBlockedMs <= last.NetworkBlockedMs {
			t.Errorf("%d tiles: starving the links (%.4f ms blocked) did not exceed the over-provisioned end (%.4f ms)",
				tiles, first.NetworkBlockedMs, last.NetworkBlockedMs)
		}
	}
}

// Sweeps are byte-identical across worker counts: the partitioner, the
// routes and the replay all depend only on their inputs.
func TestSweepEngineDeterministicAcrossWorkers(t *testing.T) {
	m := schedule.DefaultLatencyModel()
	c, err := circuits.Generate(circuits.QRCA, 8)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := schedule.Characterize(c, m)
	if err != nil {
		t.Fatal(err)
	}
	sc := SweepConfig{
		Latency:     m,
		ZeroPerMs:   ch.ZeroBandwidthPerMs * 2,
		Pi8PerMs:    ch.Pi8BandwidthPerMs,
		TileCounts:  []int{2, 4},
		LinkFactors: []float64{0.5, 1, 2},
	}
	seq, err := SweepEngine(t.Context(), engine.New(1), c, sc)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SweepEngine(t.Context(), engine.New(8), c, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("sweep differs between 1 and 8 workers")
	}
}

func TestReplayEdgeCases(t *testing.T) {
	m := schedule.DefaultLatencyModel()
	cfg := parityConfig(t, m, 1, 10)
	if _, err := ReplayShared(nil, cfg); err == nil {
		t.Error("no circuits should be an error")
	}
	empty := quantum.NewCircuit("empty", 2)
	run, err := Replay(empty, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if run.Results[0].ExecutionTime != 0 || run.Events != 0 {
		t.Errorf("empty replay = %+v", run)
	}
}

func TestReplayPinnedPartitions(t *testing.T) {
	m := schedule.DefaultLatencyModel()
	c, err := circuits.Generate(circuits.QRCA, 8)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := schedule.Characterize(c, m)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := PlanConfig(m, c.NumQubits, 4, ch.ZeroBandwidthPerMs*2, 0)
	if err != nil {
		t.Fatal(err)
	}
	free, err := Replay(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	part, err := PartitionCircuit(c, len(cfg.Machine.Tiles))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Partitions = []Partition{part}
	pinned, err := Replay(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Pinning the partition the replay would have computed changes nothing.
	if !reflect.DeepEqual(free, pinned) {
		t.Error("pinned partition diverged from the freshly computed one")
	}

	bad := cfg
	bad.Partitions = []Partition{part, part}
	if _, err := Replay(c, bad); err == nil {
		t.Error("partition count mismatch should fail")
	}
	bad = cfg
	wrong := part
	wrong.Tiles = 2
	bad.Partitions = []Partition{wrong}
	if _, err := Replay(c, bad); err == nil {
		t.Error("partition tile-count mismatch should fail")
	}
}
