package network

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"speedofdata/internal/engine"
	"speedofdata/internal/iontrap"
	"speedofdata/internal/quantum"
	"speedofdata/internal/schedule"
)

// ErrPartitioned reports that link failures disconnected the mesh: some
// routed teleport has no healthy path between its endpoints.  Callers match
// it with errors.Is; the HTTP server surfaces it as a 400 (the requested
// fault plan asks for an unroutable machine, it is not a server fault).
var ErrPartitioned = errors.New("network: mesh partitioned by link failures")

// LinkFault is one injected interconnect fault: a directed link either dies
// outright or has its EPR-pair generation rate degraded.
type LinkFault struct {
	// Link is the directed channel the fault strikes.
	Link Link
	// At is the kernel timestamp (microseconds into the replay) at which
	// the fault strikes; zero applies it before the run starts (a static
	// fault).  Scheduled faults fire as ordinary kernel events, so their
	// interleaving with the workload is deterministic.
	At iontrap.Microseconds
	// Dead kills the link: its generator halts, buffered pairs are
	// stranded, and every route is re-resolved around it.  Teleports
	// already granted a pair on the link still cross (the last pair out);
	// teleports queued on it re-route.
	Dead bool
	// RateFactor in (0, 1) scales the link's EPR generation rate for a
	// degradation fault (ignored when Dead).
	RateFactor float64
}

// FaultPlan is a deterministic set of link faults injected into one replay
// through Config.Faults.  The empty plan is the pristine mesh and replays
// byte-identically to a config without one.
type FaultPlan []LinkFault

// Validate rejects plans no replay on the given topology can apply.
func (p FaultPlan) Validate(topo Topology) error {
	for i, f := range p {
		from, to := f.Link.From, f.Link.To
		n := topo.TileCount()
		if from < 0 || from >= n || to < 0 || to >= n || topo.HopDistance(from, to) != 1 {
			return fmt.Errorf("network: fault %d targets %s, not a link of the %dx%d mesh (%d tiles)",
				i, f.Link, topo.Cols, topo.Rows, n)
		}
		if f.At < 0 || math.IsInf(float64(f.At), 0) || math.IsNaN(float64(f.At)) {
			return fmt.Errorf("network: fault %d on %s at non-physical time %v", i, f.Link, f.At)
		}
		if !f.Dead && !(f.RateFactor > 0 && f.RateFactor < 1) {
			return fmt.Errorf("network: fault %d on %s: degradation rate factor %v must be in (0, 1)",
				i, f.Link, f.RateFactor)
		}
	}
	return nil
}

// FaultStats is the fault decomposition of a replay, alongside the existing
// compute / factory-starved / network-blocked split: how much routing and
// waiting the injected faults caused.  A zero-fault replay reports the zero
// value.
type FaultStats struct {
	// FailedLinks and DegradedLinks count the directed links each fault
	// kind actually struck during the run.
	FailedLinks   int
	DegradedLinks int
	// Reroutes counts teleports launched on a route that deviates from the
	// fault-free dimension-order choice.
	Reroutes int
	// InFlightReroutes counts teleports re-resolved mid-flight: they were
	// queued on (or headed for) a link when it died and found a new path
	// from where they stood.
	InFlightReroutes int
	// DetourHops is the extra link traversals beyond the Manhattan
	// distance, summed over rerouted teleports.
	DetourHops int
	// DegradedWaitUs is the EPR-pair queueing time accumulated at links
	// while they were degraded — the "time lost to degradation" share of
	// the network-blocked total.
	DegradedWaitUs float64
}

// BisectionBoundary returns the two directed links of the canonical
// mesh-bisection boundary — the tile boundary crossing the vertical cut
// between the middle columns at row 0 (the horizontal cut on a 1-column
// mesh) — and false when the mesh has no links.  Killing both directions
// models one physical link failing; the netfault scenario uses it as the
// worst natural single failure.
func BisectionBoundary(t Topology) ([2]Link, bool) {
	if t.TileCount() < 2 {
		return [2]Link{}, false
	}
	if t.Cols > 1 {
		cx := (t.Cols - 1) / 2
		a, b := t.Index(cx, 0), t.Index(cx+1, 0)
		return [2]Link{{From: a, To: b}, {From: b, To: a}}, true
	}
	cy := (t.Rows - 1) / 2
	a, b := t.Index(0, cy), t.Index(0, cy+1)
	return [2]Link{{From: a, To: b}, {From: b, To: a}}, true
}

// Boundaries returns the undirected tile boundaries of the mesh (each pair
// of directed links collapsed to its From < To representative) in the stable
// Links order.  The netdegrade scenario kills them in this order.
func Boundaries(t Topology) []Link {
	var out []Link
	for _, l := range t.Links() {
		if l.From < l.To {
			out = append(out, l)
		}
	}
	return out
}

// DegradeAllLinks builds a static plan degrading every link of the mesh to
// factor times its EPR rate — the "25%-degraded links" arm of netfault is
// DegradeAllLinks(topo, 0.75).
func DegradeAllLinks(t Topology, factor float64) FaultPlan {
	links := t.Links()
	plan := make(FaultPlan, len(links))
	for i, l := range links {
		plan[i] = LinkFault{Link: l, RateFactor: factor}
	}
	return plan
}

// KillBoundaries builds a static plan killing the first n undirected
// boundaries (both directions each) in Boundaries order.
func KillBoundaries(t Topology, n int) FaultPlan {
	var plan FaultPlan
	for i, b := range Boundaries(t) {
		if i >= n {
			break
		}
		plan = append(plan,
			LinkFault{Link: b, Dead: true},
			LinkFault{Link: Link{From: b.To, To: b.From}, Dead: true})
	}
	return plan
}

// FaultMode names one arm of the netfault comparison.
type FaultMode int

const (
	// FaultNone is the pristine mesh.
	FaultNone FaultMode = iota
	// FaultDegraded degrades every link to DegradeRateFactor of its rate.
	FaultDegraded
	// FaultDeadLink kills both directions of the bisection boundary.
	FaultDeadLink
)

// DegradeRateFactor is the per-link EPR-rate multiplier of the netfault
// degraded arm: every link runs at 75% (25% degraded).
const DegradeRateFactor = 0.75

func (m FaultMode) String() string {
	switch m {
	case FaultNone:
		return "none"
	case FaultDegraded:
		return "degraded-25%"
	case FaultDeadLink:
		return "dead-bisection-link"
	}
	return fmt.Sprintf("FaultMode(%d)", int(m))
}

// FaultModes returns the netfault arms in makespan order: each adds
// interconnect damage over the last.
func FaultModes() []FaultMode { return []FaultMode{FaultNone, FaultDegraded, FaultDeadLink} }

// FaultPlanFor builds the static plan of one netfault arm on the given mesh.
func FaultPlanFor(mode FaultMode, topo Topology) FaultPlan {
	switch mode {
	case FaultDegraded:
		return DegradeAllLinks(topo, DegradeRateFactor)
	case FaultDeadLink:
		boundary, ok := BisectionBoundary(topo)
		if !ok {
			return nil
		}
		return FaultPlan{
			{Link: boundary[0], Dead: true},
			{Link: boundary[1], Dead: true},
		}
	}
	return nil
}

// FaultSweepPoint is one cell of the netfault grid: a benchmark replayed
// under one fault mode at one link-bandwidth factor.
type FaultSweepPoint struct {
	// Mode names the fault arm (FaultMode.String).
	Mode string
	// LinkFactor scales the demand-matched link EPR bandwidth.
	LinkFactor float64
	// LinkEPRPerMs is the effective healthy-link bandwidth.
	LinkEPRPerMs float64
	// MatchedLinkEPRPerMs is the Section 6 balance-point estimate.
	MatchedLinkEPRPerMs float64
	// ExecutionTimeMs is the replay makespan.
	ExecutionTimeMs float64
	// NetworkBlockedMs is the interconnect share of the makespan.
	NetworkBlockedMs float64
	// AncillaWaitMs is the factory-starved share.
	AncillaWaitMs float64
	// Teleports counts routed operand movements.
	Teleports int
	// Reroutes, InFlightReroutes, DetourHops and DegradedWaitMs are the
	// fault decomposition (FaultStats).
	Reroutes         int
	InFlightReroutes int
	DetourHops       int
	DegradedWaitMs   float64
	// FailedLinks and DegradedLinks count the links the plan struck.
	FailedLinks   int
	DegradedLinks int
	// Events is the kernel event count.
	Events int
}

// FaultSweepConfig parameterises the netfault grid.
type FaultSweepConfig struct {
	// Latency supplies gate and QEC timings.
	Latency schedule.LatencyModel
	// ZeroPerMs and Pi8PerMs provision the planned mesh's factories.
	ZeroPerMs, Pi8PerMs float64
	// LinkBufferPairs bounds every link's EPR channel buffer (<= 0
	// unbounded).
	LinkBufferPairs float64
	// Tiles is the mesh size (the machine is planned for exactly this
	// many tiles, like netcontention).
	Tiles int
	// LinkFactors scale the demand-matched bandwidth (use
	// DefaultFaultLinkFactors).
	LinkFactors []float64
}

// DefaultFaultLinkFactors sweep the link bandwidth around the Section 6
// balance point: starved, matched, over-provisioned.
func DefaultFaultLinkFactors() []float64 { return []float64{0.5, 1, 2} }

// FaultSweep runs the netfault grid sequentially; FaultSweepEngine is the
// parallel form.
func FaultSweep(c *quantum.Circuit, sc FaultSweepConfig) ([]FaultSweepPoint, error) {
	return FaultSweepEngine(context.Background(), nil, c, sc)
}

// FaultSweepEngine replays the circuit at every (fault mode, link factor)
// cell of the netfault grid through the experiment engine — the Section 6
// question under damage: does the balance point survive a dead link?  A mesh
// the dead-link arm disconnects (a 2-tile mesh has only the bisection
// boundary) returns ErrPartitioned.
func FaultSweepEngine(ctx context.Context, eng *engine.Engine, c *quantum.Circuit, sc FaultSweepConfig) ([]FaultSweepPoint, error) {
	if sc.Tiles < 2 {
		return nil, fmt.Errorf("network: netfault needs at least 2 tiles, got %d (a 1-tile mesh has no links to fail)", sc.Tiles)
	}
	if len(sc.LinkFactors) == 0 {
		return nil, fmt.Errorf("network: netfault needs at least one link factor")
	}
	base, err := PlanConfig(sc.Latency, c.NumQubits, sc.Tiles, sc.ZeroPerMs, sc.Pi8PerMs)
	if err != nil {
		return nil, err
	}
	base.LinkBufferPairs = sc.LinkBufferPairs
	topo := NewTopology(len(base.Machine.Tiles))
	part, err := PartitionCircuit(c, topo.TileCount())
	if err != nil {
		return nil, err
	}
	base.Partitions = []Partition{part}
	matched := MatchedLinkEPRPerMs(c, sc.Latency, topo, part)
	ceiling := base.Machine.LinkEPRPerMs()
	var jobs []engine.Job[FaultSweepPoint]
	for _, mode := range FaultModes() {
		mode := mode
		plan := FaultPlanFor(mode, topo)
		for _, factor := range sc.LinkFactors {
			factor := factor
			jobs = append(jobs, engine.Job[FaultSweepPoint]{
				Key: engine.Fingerprint("network.faultsweep", part.Key, sc.Latency, sc.ZeroPerMs, sc.Pi8PerMs,
					sc.LinkBufferPairs, int(mode), DegradeRateFactor, factor),
				Run: func(context.Context, *rand.Rand) (FaultSweepPoint, error) {
					cfg := base
					cfg.Faults = plan
					cfg.LinkEPRPerMs = matched * factor
					// A degenerate matched rate (no cross-tile traffic) falls
					// back to the geometric ceiling; either way the perimeter
					// bounds the channel count.
					if !(cfg.LinkEPRPerMs > 0) || cfg.LinkEPRPerMs > ceiling {
						cfg.LinkEPRPerMs = ceiling
					}
					run, err := Replay(c, cfg)
					if err != nil {
						return FaultSweepPoint{}, err
					}
					r := run.Results[0]
					return FaultSweepPoint{
						Mode:                mode.String(),
						LinkFactor:          factor,
						LinkEPRPerMs:        cfg.LinkEPRPerMs,
						MatchedLinkEPRPerMs: matched,
						ExecutionTimeMs:     r.ExecutionTime.Milliseconds(),
						NetworkBlockedMs:    r.NetworkBlocked.Milliseconds(),
						AncillaWaitMs:       r.AncillaWait.Milliseconds(),
						Teleports:           r.Teleports,
						Reroutes:            run.Faults.Reroutes,
						InFlightReroutes:    run.Faults.InFlightReroutes,
						DetourHops:          run.Faults.DetourHops,
						DegradedWaitMs:      run.Faults.DegradedWaitUs / 1000.0,
						FailedLinks:         run.Faults.FailedLinks,
						DegradedLinks:       run.Faults.DegradedLinks,
						Events:              run.Events,
					}, nil
				},
			})
		}
	}
	return engine.Run(ctx, eng, jobs)
}

// DegradePoint is one row of the netdegrade sweep: the benchmark replayed at
// matched link bandwidth with the first Failures mesh boundaries dead.
type DegradePoint struct {
	// Failures is how many undirected boundaries were killed (both
	// directions each, in Boundaries order).
	Failures int
	// FailedLinks is the resulting directed dead-link count.
	FailedLinks int
	// Partitioned reports that the failures disconnected the routed
	// traffic; the remaining fields are zero.
	Partitioned bool
	// ExecutionTimeMs is the replay makespan.
	ExecutionTimeMs float64
	// NetworkBlockedMs is the interconnect share of the makespan.
	NetworkBlockedMs float64
	// Reroutes, InFlightReroutes and DetourHops are the fault
	// decomposition.
	Reroutes         int
	InFlightReroutes int
	DetourHops       int
	// MeanHops is the average one-way route length per teleport.
	MeanHops float64
	// Events is the kernel event count.
	Events int
}

// DegradeConfig parameterises the netdegrade sweep.
type DegradeConfig struct {
	// Latency supplies gate and QEC timings.
	Latency schedule.LatencyModel
	// ZeroPerMs and Pi8PerMs provision the planned mesh's factories.
	ZeroPerMs, Pi8PerMs float64
	// LinkBufferPairs bounds every link's EPR channel buffer.
	LinkBufferPairs float64
	// Tiles is the mesh size.
	Tiles int
	// MaxFailures bounds the boundary-failure count swept (capped at the
	// mesh's boundary count).
	MaxFailures int
}

// DegradeSweep runs the netdegrade sweep sequentially; DegradeSweepEngine is
// the parallel form.
func DegradeSweep(c *quantum.Circuit, sc DegradeConfig) ([]DegradePoint, error) {
	return DegradeSweepEngine(context.Background(), nil, c, sc)
}

// DegradeSweepEngine replays the circuit at matched link bandwidth while
// killing mesh boundaries one by one until MaxFailures (or the whole mesh)
// is gone: how much damage does the routed interconnect absorb before it
// partitions?  Rows past the partition point report Partitioned instead of
// failing the sweep.
func DegradeSweepEngine(ctx context.Context, eng *engine.Engine, c *quantum.Circuit, sc DegradeConfig) ([]DegradePoint, error) {
	if sc.Tiles < 2 {
		return nil, fmt.Errorf("network: netdegrade needs at least 2 tiles, got %d (a 1-tile mesh has no links to fail)", sc.Tiles)
	}
	if sc.MaxFailures < 0 {
		return nil, fmt.Errorf("network: negative failure bound %d", sc.MaxFailures)
	}
	base, err := PlanConfig(sc.Latency, c.NumQubits, sc.Tiles, sc.ZeroPerMs, sc.Pi8PerMs)
	if err != nil {
		return nil, err
	}
	base.LinkBufferPairs = sc.LinkBufferPairs
	topo := NewTopology(len(base.Machine.Tiles))
	part, err := PartitionCircuit(c, topo.TileCount())
	if err != nil {
		return nil, err
	}
	base.Partitions = []Partition{part}
	matched := MatchedLinkEPRPerMs(c, sc.Latency, topo, part)
	rate := matched
	if ceiling := base.Machine.LinkEPRPerMs(); !(rate > 0) || rate > ceiling {
		rate = ceiling
	}
	base.LinkEPRPerMs = rate
	failures := sc.MaxFailures
	if n := len(Boundaries(topo)); failures > n {
		failures = n
	}
	jobs := make([]engine.Job[DegradePoint], failures+1)
	for k := 0; k <= failures; k++ {
		k := k
		jobs[k] = engine.Job[DegradePoint]{
			Key: engine.Fingerprint("network.degrade", part.Key, sc.Latency, sc.ZeroPerMs, sc.Pi8PerMs,
				sc.LinkBufferPairs, k),
			Run: func(context.Context, *rand.Rand) (DegradePoint, error) {
				cfg := base
				cfg.Faults = KillBoundaries(topo, k)
				run, err := Replay(c, cfg)
				if errors.Is(err, ErrPartitioned) {
					return DegradePoint{Failures: k, FailedLinks: 2 * k, Partitioned: true}, nil
				}
				if err != nil {
					return DegradePoint{}, err
				}
				r := run.Results[0]
				meanHops := 0.0
				if r.Teleports > 0 {
					meanHops = float64(r.Hops) / float64(r.Teleports)
				}
				return DegradePoint{
					Failures:         k,
					FailedLinks:      run.Faults.FailedLinks,
					ExecutionTimeMs:  r.ExecutionTime.Milliseconds(),
					NetworkBlockedMs: r.NetworkBlocked.Milliseconds(),
					Reroutes:         run.Faults.Reroutes,
					InFlightReroutes: run.Faults.InFlightReroutes,
					DetourHops:       run.Faults.DetourHops,
					MeanHops:         meanHops,
					Events:           run.Events,
				}, nil
			},
		}
	}
	return engine.Run(ctx, eng, jobs)
}
