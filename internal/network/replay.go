package network

import (
	"fmt"

	"speedofdata/internal/iontrap"
	"speedofdata/internal/quantum"
	"speedofdata/internal/schedule"
	"speedofdata/internal/sim"
)

// ReplayResult is one circuit's share of a routed-mesh replay.  It embeds
// the where-time-went decomposition shared with internal/schedule (compute
// busy, factory-starved AncillaWait, NetworkBlocked) and adds the
// interconnect metrics only a routed mesh has.
type ReplayResult struct {
	schedule.ReplayResult
	// CrossGates counts multi-qubit gates whose operands spanned tiles and
	// therefore issued routed teleports.
	CrossGates int
	// Teleports counts routed operand movements; every cross-tile gate
	// teleports each remote operand to the execution tile and back, so it
	// contributes two per remote operand.
	Teleports int
	// Hops counts link traversals summed over all teleports.
	Hops int
	// HopHistogram[d] counts teleports whose one-way route was d links
	// long; index 0 exists but stays zero (local operands never teleport).
	HopHistogram []int
	// TeleportAncillae counts the encoded zeros consumed by teleports, a
	// subset of AncillaeConsumed.
	TeleportAncillae int
}

// LinkStat reports one directed link's behaviour over a replay.
type LinkStat struct {
	// Link identifies the channel.
	Link Link
	// PairsConsumed is the number of EPR pairs teleports drew through it.
	PairsConsumed float64
	// HighWater is the peak buffered pair level the channel reached.
	HighWater float64
	// ProducerStall is the time the link's pair generator spent blocked on
	// a full channel buffer.
	ProducerStall iontrap.Microseconds
}

// ReplayRun is a completed routed-mesh replay.
type ReplayRun struct {
	// Results holds one entry per replayed circuit.
	Results []ReplayResult
	// Topology is the mesh the run executed on.
	Topology Topology
	// Partitions records each circuit's qubit→tile assignment.
	Partitions []Partition
	// Makespan is the completion time across every circuit.
	Makespan iontrap.Microseconds
	// Events is the number of kernel events processed.
	Events int
	// Links holds per-channel statistics in Topology.Links order (empty on
	// a 1-tile mesh).
	Links []LinkStat
}

// MaxLinkHighWater returns the largest buffered-pair peak across links.
func (r ReplayRun) MaxLinkHighWater() float64 {
	max := 0.0
	for _, l := range r.Links {
		if l.HighWater > max {
			max = l.HighWater
		}
	}
	return max
}

// Replay executes one circuit's dataflow graph across the configured mesh.
// On a 1-tile mesh every gate is local and the run reproduces the fluid-mode
// schedule.Replay bit for bit (same issue order, same token-bucket
// arithmetic) provided the config charges nothing schedule.Replay cannot
// model: Movement.BallisticPerGateUs zero and TileZeroRatePerMs equal to
// the supply rate.  Multi-tile meshes add routed teleports, link contention
// and per-tile ancilla accounting the single-region replay cannot express.
func Replay(c *quantum.Circuit, cfg Config) (ReplayRun, error) {
	return ReplayShared([]*quantum.Circuit{c}, cfg)
}

// ReplayShared co-schedules several circuits on one mesh — the network
// contention scenario: each circuit is partitioned across the same tiles,
// and all of them compete for the same links and the same per-tile zero
// factories.  Gates issue in first-come-first-served order of data readiness
// (ties broken by circuit, then gate index), exactly like
// schedule.ReplayShared.
func ReplayShared(cs []*quantum.Circuit, cfg Config) (ReplayRun, error) {
	if err := cfg.Validate(); err != nil {
		return ReplayRun{}, err
	}
	if len(cs) == 0 {
		return ReplayRun{}, fmt.Errorf("network: no circuits to replay")
	}
	m := cfg.Latency
	topo := NewTopology(len(cfg.Machine.Tiles))
	nTiles := topo.TileCount()
	maxDist := topo.Cols + topo.Rows - 1

	run := ReplayRun{
		Topology:   topo,
		Results:    make([]ReplayResult, len(cs)),
		Partitions: make([]Partition, len(cs)),
	}
	type flatGate struct {
		circuit int
		gate    int
	}
	var flat []flatGate
	dags := make([]*quantum.DAG, len(cs))
	offsets := make([]int, len(cs))
	if len(cfg.Partitions) > 0 && len(cfg.Partitions) != len(cs) {
		return ReplayRun{}, fmt.Errorf("network: %d pinned partitions for %d circuits", len(cfg.Partitions), len(cs))
	}
	for ci, c := range cs {
		if err := c.Validate(); err != nil {
			return ReplayRun{}, err
		}
		var part Partition
		if len(cfg.Partitions) > 0 {
			part = cfg.Partitions[ci]
			if part.Tiles != nTiles || len(part.TileOf) != c.NumQubits {
				return ReplayRun{}, fmt.Errorf("network: pinned partition %d covers %d qubits on %d tiles, want %d on %d",
					ci, len(part.TileOf), part.Tiles, c.NumQubits, nTiles)
			}
		} else {
			var err error
			if part, err = PartitionCircuit(c, nTiles); err != nil {
				return ReplayRun{}, err
			}
		}
		run.Partitions[ci] = part
		dags[ci] = quantum.BuildDAG(c)
		offsets[ci] = len(flat)
		for gi := range c.Gates {
			flat = append(flat, flatGate{circuit: ci, gate: gi})
		}
		r := &run.Results[ci]
		r.Name = c.Name
		r.Gates = len(c.Gates)
		r.CrossGates = part.CrossGates
		r.HopHistogram = make([]int, maxDist)
		_, sod := dags[ci].WeightedCriticalPath(func(g quantum.Gate) float64 {
			return float64(m.GateWeightSpeedOfData(g))
		})
		r.SpeedOfData = iontrap.Microseconds(sod)
		for _, g := range c.Gates {
			r.DataOpBusy += m.DataOpLatency(g)
			r.QECInteractBusy += m.QECInteractLatency()
		}
	}
	total := len(flat)
	if total == 0 {
		return run, nil
	}

	k := sim.NewKernel()
	perGate := float64(m.ZeroAncillaePerQEC)
	teleAncillae := cfg.Machine.Movement.TeleportAncillae
	teleAnc := float64(teleAncillae)
	teleUs := float64(cfg.Machine.Movement.TeleportUs)
	ballisticUs := float64(cfg.Machine.Movement.BallisticPerGateUs)

	// Per-tile zero supplies are fluid token buckets (the same arithmetic
	// schedule.Replay uses), fed by the tile's own factories.
	pools := make([]*sim.FluidSource, nTiles)
	for i := range pools {
		var err error
		if pools[i], err = sim.NewFluidSource(cfg.tileRatePerMs(i) / 1000.0); err != nil {
			return ReplayRun{}, err
		}
	}
	// Each directed link is a finite EPR-pair channel behind a rate-matched
	// generator.
	links := topo.Links()
	linkIdx := make(map[Link]int, len(links))
	buffers := make([]*sim.Resource, len(links))
	producers := make([]*sim.Producer, len(links))
	linkRatePerUs := cfg.linkRatePerMs() / 1000.0
	for i, l := range links {
		linkIdx[l] = i
		name := "EPR link " + l.String()
		buffers[i] = sim.NewResource(k, name, cfg.LinkBufferPairs)
		var err error
		if producers[i], err = sim.NewProducer(k, name, buffers[i], linkRatePerUs, 1); err != nil {
			return ReplayRun{}, err
		}
		producers[i].Start()
	}

	ready := make([]float64, total)
	indeg := make([]int, total)
	for ci, d := range dags {
		copy(indeg[offsets[ci]:offsets[ci]+len(d.InDegree)], d.InDegree)
	}

	rq := &sim.TaskQueue{}
	finished := 0
	dispatchScheduled := false
	waits := make([]float64, len(cs))
	netBlocked := make([]float64, len(cs))
	makespans := make([]float64, len(cs))
	makespan := 0.0

	var dispatch func()
	scheduleDispatch := func() {
		if !dispatchScheduled {
			dispatchScheduled = true
			k.At(k.Now(), sim.PriorityLate, dispatch)
		}
	}
	finishGate := func(fi int, finishAt float64) {
		fg := flat[fi]
		if finishAt > makespans[fg.circuit] {
			makespans[fg.circuit] = finishAt
		}
		if finishAt > makespan {
			makespan = finishAt
		}
		k.At(iontrap.Microseconds(finishAt), sim.PriorityNormal, func() {
			finished++
			for _, s := range dags[fg.circuit].Succ[fg.gate] {
				si := offsets[fg.circuit] + s
				if finishAt > ready[si] {
					ready[si] = finishAt
				}
				indeg[si]--
				if indeg[si] == 0 {
					rq.Push(sim.Task{Index: si, Ready: ready[si]})
					scheduleDispatch()
				}
			}
			if finished == total {
				k.Stop()
			}
		})
	}

	// teleport walks one routed operand movement hop by hop: each hop
	// acquires an EPR pair from its link (queueing is network-blocked time),
	// draws the teleport ancillae from the departing tile's zero supply
	// (waiting there is factory-starved time), then transits for the
	// movement model's teleport latency.  done fires at the arrival time.
	var teleport func(ci int, route []Link, hop int, done func(arrive float64))
	teleport = func(ci int, route []Link, hop int, done func(arrive float64)) {
		if hop == len(route) {
			done(float64(k.Now()))
			return
		}
		res := &run.Results[ci]
		l := route[hop]
		hopReady := float64(k.Now())
		buffers[linkIdx[l]].Acquire(1, func() {
			granted := float64(k.Now())
			netBlocked[ci] += granted - hopReady
			depart := granted
			if teleAnc > 0 {
				if t := pools[l.From].AvailableAt(teleAnc); t > depart {
					depart = t
				}
			}
			waits[ci] += depart - granted
			res.TeleportAncillae += teleAncillae
			res.AncillaeConsumed += teleAncillae
			res.Hops++
			arrive := depart + teleUs
			netBlocked[ci] += arrive - depart
			k.At(iontrap.Microseconds(arrive), sim.PriorityNormal, func() {
				teleport(ci, route, hop+1, done)
			})
		})
	}

	// issueGate runs a gate's execution phase at the given start time: QEC
	// ancillae from the execution tile, then ballistic movement (multi-qubit
	// gates) and the gate itself.  It returns the execution finish time.
	issueGate := func(ci int, g quantum.Gate, start float64, execTile int) float64 {
		res := &run.Results[ci]
		issue := start
		if t := pools[execTile].AvailableAt(perGate); t > issue {
			issue = t
		}
		waits[ci] += issue - start
		res.AncillaeConsumed += m.ZeroAncillaePerQEC
		extra := 0.0
		if g.Kind.Arity() >= 2 {
			extra = ballisticUs
		}
		return issue + extra + float64(m.GateWeightSpeedOfData(g))
	}

	dispatch = func() {
		dispatchScheduled = false
		for rq.Len() > 0 {
			item := rq.Pop()
			fi := item.Index
			fg := flat[fi]
			ci := fg.circuit
			g := cs[ci].Gates[fg.gate]
			part := run.Partitions[ci]
			execTile := part.TileOf[g.Qubits[len(g.Qubits)-1]]
			var moves [][]Link
			for _, q := range g.Qubits[:len(g.Qubits)-1] {
				if from := part.TileOf[q]; from != execTile {
					moves = append(moves, topo.Route(from, execTile))
				}
			}
			start := item.Ready
			if len(moves) == 0 {
				finishGate(fi, issueGate(ci, g, start, execTile))
				continue
			}
			res := &run.Results[ci]
			inbound := len(moves)
			arrival := start
			arrived := func(arrive float64) {
				if arrive > arrival {
					arrival = arrive
				}
				inbound--
				if inbound > 0 {
					return
				}
				execDone := issueGate(ci, g, arrival, execTile)
				// Return the moved operands home; the gate completes (and
				// unblocks its successors) once placement is restored, the
				// same to-and-back convention the microarch teleport
				// accounting uses.
				k.At(iontrap.Microseconds(execDone), sim.PriorityNormal, func() {
					outbound := len(moves)
					retDone := execDone
					for _, route := range moves {
						back := topo.Route(route[len(route)-1].To, route[0].From)
						res.Teleports++
						res.HopHistogram[len(back)]++
						teleport(ci, back, 0, func(arrive float64) {
							if arrive > retDone {
								retDone = arrive
							}
							outbound--
							if outbound == 0 {
								finishGate(fi, retDone)
							}
						})
					}
				})
			}
			for _, route := range moves {
				res.Teleports++
				res.HopHistogram[len(route)]++
				teleport(ci, route, 0, arrived)
			}
		}
	}

	for fi, d := range indeg {
		if d == 0 {
			rq.Push(sim.Task{Index: fi, Ready: 0})
		}
	}
	k.At(0, sim.PriorityLate, dispatch)
	dispatchScheduled = true
	stats := k.Run()

	if finished != total {
		return ReplayRun{}, fmt.Errorf("network: replay left %d gates unexecuted (cyclic dependence graph?)", total-finished)
	}
	for ci := range cs {
		run.Results[ci].ExecutionTime = iontrap.Microseconds(makespans[ci])
		run.Results[ci].AncillaWait = iontrap.Microseconds(waits[ci])
		run.Results[ci].NetworkBlocked = iontrap.Microseconds(netBlocked[ci])
	}
	run.Makespan = iontrap.Microseconds(makespan)
	run.Events = stats.Events
	run.Links = make([]LinkStat, len(links))
	for i, l := range links {
		run.Links[i] = LinkStat{
			Link:          l,
			PairsConsumed: buffers[i].Consumed(),
			HighWater:     buffers[i].HighWater(),
			ProducerStall: producers[i].StallTime(),
		}
	}
	return run, nil
}
