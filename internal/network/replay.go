package network

import (
	"errors"
	"fmt"
	"sync"

	"speedofdata/internal/iontrap"
	"speedofdata/internal/quantum"
	"speedofdata/internal/schedule"
	"speedofdata/internal/sim"
)

// ReplayResult is one circuit's share of a routed-mesh replay.  It embeds
// the where-time-went decomposition shared with internal/schedule (compute
// busy, factory-starved AncillaWait, NetworkBlocked) and adds the
// interconnect metrics only a routed mesh has.
type ReplayResult struct {
	schedule.ReplayResult
	// CrossGates counts multi-qubit gates whose operands spanned tiles and
	// therefore issued routed teleports.
	CrossGates int
	// Teleports counts routed operand movements; every cross-tile gate
	// teleports each remote operand to the execution tile and back, so it
	// contributes two per remote operand.
	Teleports int
	// Hops counts link traversals summed over all teleports.
	Hops int
	// HopHistogram[d] counts teleports whose one-way route was d links
	// long; index 0 exists but stays zero (local operands never teleport).
	HopHistogram []int
	// TeleportAncillae counts the encoded zeros consumed by teleports, a
	// subset of AncillaeConsumed.
	TeleportAncillae int
}

// LinkStat reports one directed link's behaviour over a replay.
type LinkStat struct {
	// Link identifies the channel.
	Link Link
	// PairsConsumed is the number of EPR pairs teleports drew through it.
	PairsConsumed float64
	// HighWater is the peak buffered pair level the channel reached.
	HighWater float64
	// ProducerStall is the time the link's pair generator spent blocked on
	// a full channel buffer.
	ProducerStall iontrap.Microseconds
}

// ReplayRun is a completed routed-mesh replay.
type ReplayRun struct {
	// Results holds one entry per replayed circuit.
	Results []ReplayResult
	// Topology is the mesh the run executed on.
	Topology Topology
	// Partitions records each circuit's qubit→tile assignment.
	Partitions []Partition
	// Makespan is the completion time across every circuit.
	Makespan iontrap.Microseconds
	// Events is the number of kernel events processed.
	Events int
	// Links holds per-channel statistics in Topology.Links order (empty on
	// a 1-tile mesh).
	Links []LinkStat
	// Faults is the fault decomposition of the run: reroutes, detour hops
	// and degradation wait caused by the injected Config.Faults (the zero
	// value for a zero-fault replay).
	Faults FaultStats
}

// MaxLinkHighWater returns the largest buffered-pair peak across links.
func (r ReplayRun) MaxLinkHighWater() float64 {
	max := 0.0
	for _, l := range r.Links {
		if l.HighWater > max {
			max = l.HighWater
		}
	}
	return max
}

// Replay executes one circuit's dataflow graph across the configured mesh.
// On a 1-tile mesh every gate is local and the run reproduces the fluid-mode
// schedule.Replay bit for bit (same issue order, same token-bucket
// arithmetic) provided the config charges nothing schedule.Replay cannot
// model: Movement.BallisticPerGateUs zero and TileZeroRatePerMs equal to
// the supply rate.  Multi-tile meshes add routed teleports, link contention
// and per-tile ancilla accounting the single-region replay cannot express.
func Replay(c *quantum.Circuit, cfg Config) (ReplayRun, error) {
	return ReplayShared([]*quantum.Circuit{c}, cfg)
}

// netGate is the in-flight state of one dispatched cross-tile gate: its
// operand movements, the join counters for inbound and return teleports,
// and the times the joins resolve to.
type netGate struct {
	moves    [][]Link
	inbound  int
	outbound int
	arrival  float64
	execDone float64
	retDone  float64
}

// teleState is one active routed operand movement.  Teleports are pooled by
// index in netState and step through their route via kernel events carrying
// that index — the closure-free replacement for the recursive hop closure.
type teleState struct {
	fi       int    // owning flat gate
	route    []Link // cached route (read-only; replaced on mid-flight reroute)
	hop      int
	dest     int     // final tile, for re-resolving after a fault
	ret      bool    // return trip (fires the outbound join)
	waiting  bool    // an EPR-pair acquire is pending on route[hop]
	hopReady float64 // when the current hop requested its EPR pair
}

// netState is the pooled per-run state of ReplayShared, implementing
// sim.Handler.  Event payloads: -1 dispatch, [0,total) gate completion,
// [total,2·total) return-teleport launch for gate idx-total, and beyond
// that teleport steps (even = EPR pair granted, odd = hop arrival).
type netState struct {
	k  *sim.Kernel
	rq *sim.TaskQueue

	run   *ReplayRun
	cs    []*quantum.Circuit
	m     schedule.LatencyModel
	topo  Topology
	flat  []flatGate
	dags  []*quantum.DAG
	offs  []int
	pend  []netGate
	ready []float64
	indeg []int

	pools   []sim.FluidSource
	bufs    []*sim.Resource
	prods   []*sim.Producer
	linkIdx map[Link]int
	routes  [][]Link // (from*tiles+to) -> cached dimension-order route

	// Fault state.  faulted is false for an empty Config.Faults, keeping
	// the route cache on the plain dimension-order path; everything below
	// it is only touched when a plan is present.
	faulted      bool
	plan         FaultPlan
	linkRate     float64 // healthy per-link EPR rate (pairs/us)
	linkDown     []bool  // per linkIdx: the link is dead
	linkDegraded []bool  // per linkIdx: the link runs at a reduced rate
	rerouted     []bool  // per routes index: cached route deviates from dimension order
	fstats       FaultStats
	replayErr    error

	tele     []teleState
	teleFree []int32

	perGate  float64
	teleAnc  float64
	teleAncN int
	teleUs   float64
	ballUs   float64

	waits      []float64
	netBlocked []float64
	tops       []float64

	total             int
	nTiles            int
	finished          int
	makespan          float64
	dispatchScheduled bool
}

type flatGate struct {
	circuit int
	gate    int
}

var netStatePool = sync.Pool{New: func() any { return new(netState) }}

const netDispatchIdx = -1

// Fire implements sim.Handler.
func (r *netState) Fire(idx int) {
	switch {
	case idx == netDispatchIdx:
		r.dispatch()
	case idx < netDispatchIdx:
		// Scheduled faults carry their plan index as -2-pi.
		r.applyFault(-2 - idx)
	case idx < r.total:
		r.completed(idx)
	case idx < 2*r.total:
		r.launchReturns(idx - r.total)
	default:
		t := idx - 2*r.total
		if t&1 == 0 {
			r.teleGranted(t >> 1)
		} else {
			r.teleArrived(t >> 1)
		}
	}
}

// route returns the cached route between two tiles: the plain dimension-order
// route on a pristine mesh, the fault-avoiding fallback (opposite dimension
// order, then a bounded BFS detour) when a fault plan is active.  On a
// partitioned mesh it fails the replay and returns nil; callers must check
// replayErr before using the route.
func (r *netState) route(from, to int) []Link {
	i := from*r.nTiles + to
	if r.routes[i] == nil {
		if r.faulted {
			rt, rer, err := r.topo.RouteAvoiding(from, to, r.linkIsDown)
			if err != nil {
				r.fail(err)
				return nil
			}
			r.routes[i], r.rerouted[i] = rt, rer
		} else {
			r.routes[i] = r.topo.Route(from, to)
		}
	}
	return r.routes[i]
}

// linkIsDown is the RouteAvoiding predicate over the per-replay link-status
// table.
func (r *netState) linkIsDown(l Link) bool { return r.linkDown[r.linkIdx[l]] }

// fail aborts the replay with the first error (mesh partitioned mid-run).
func (r *netState) fail(err error) {
	if r.replayErr == nil {
		r.replayErr = err
		r.k.Stop()
	}
}

// clearRoutes drops every cached route so the next lookup re-resolves
// against the updated link-status table.  In-flight teleports keep their old
// slices; teleStep re-checks each hop against linkDown, so stale routes
// self-heal at the next hop.
func (r *netState) clearRoutes() {
	for i := range r.routes {
		r.routes[i] = nil
		r.rerouted[i] = false
	}
}

// noteSpawn accounts a teleport launched on a non-preferred route.
func (r *netState) noteSpawn(route []Link) {
	from, to := route[0].From, route[len(route)-1].To
	if r.rerouted[from*r.nTiles+to] {
		r.fstats.Reroutes++
		r.fstats.DetourHops += len(route) - r.topo.HopDistance(from, to)
	}
}

// applyFault applies one scheduled fault at its kernel timestamp.
func (r *netState) applyFault(pi int) {
	f := r.plan[pi]
	li := r.linkIdx[f.Link]
	if !f.Dead {
		if r.linkDown[li] {
			return // degrading a dead link changes nothing
		}
		if !r.linkDegraded[li] {
			r.linkDegraded[li] = true
			r.fstats.DegradedLinks++
		}
		// RateFactor scales the link's configured rate; a later fault on
		// the same link overrides an earlier one rather than compounding.
		if err := r.prods[li].SetRate(r.linkRate * f.RateFactor); err != nil {
			r.fail(err)
		}
		return
	}
	if r.linkDown[li] {
		return
	}
	r.linkDown[li] = true
	r.fstats.FailedLinks++
	r.prods[li].Halt()
	r.clearRoutes()
	// Teleports queued on the dying link re-route from where they stand.
	// A request whose pair already left the buffer is not pending any
	// more: that grant event is en route and the teleport crosses on the
	// last pair out.
	for ts := range r.tele {
		s := &r.tele[ts]
		if !s.waiting || s.hop >= len(s.route) || r.linkIdx[s.route[s.hop]] != li {
			continue
		}
		if !r.bufs[li].CancelAcquireFire(r, 2*r.total+2*ts) {
			continue
		}
		s.waiting = false
		ci := r.flat[s.fi].circuit
		now := float64(r.k.Now())
		r.netBlocked[ci] += now - s.hopReady
		cur := s.route[s.hop].From
		nr := r.route(cur, s.dest)
		if r.replayErr != nil {
			return
		}
		r.fstats.InFlightReroutes++
		r.fstats.DetourHops += len(nr) - r.topo.HopDistance(cur, s.dest)
		s.route, s.hop = nr, 0
		r.teleStep(ts)
	}
}

// spawnTele claims a pooled teleport state and starts its first hop.
func (r *netState) spawnTele(fi int, route []Link, ret bool) {
	var ts int
	if n := len(r.teleFree); n > 0 {
		ts = int(r.teleFree[n-1])
		r.teleFree = r.teleFree[:n-1]
	} else {
		ts = len(r.tele)
		r.tele = append(r.tele, teleState{})
	}
	r.tele[ts] = teleState{fi: fi, route: route, ret: ret, dest: route[len(route)-1].To}
	r.teleStep(ts)
}

// teleStep requests the current hop's EPR pair, or resolves the teleport
// when the route is exhausted.  Under an active fault plan the planned hop
// is re-checked against the link-status table first: a teleport headed for a
// link that died while it was in transit re-resolves from its current tile
// instead of queueing on a dead channel forever.
func (r *netState) teleStep(ts int) {
	s := &r.tele[ts]
	if s.hop == len(s.route) {
		arrive := float64(r.k.Now())
		fi, ret := s.fi, s.ret
		r.teleFree = append(r.teleFree, int32(ts))
		if ret {
			r.returnArrived(fi, arrive)
		} else {
			r.operandArrived(fi, arrive)
		}
		return
	}
	l := s.route[s.hop]
	if r.faulted && r.linkDown[r.linkIdx[l]] {
		cur := l.From
		nr := r.route(cur, s.dest)
		if r.replayErr != nil {
			return
		}
		r.fstats.InFlightReroutes++
		r.fstats.DetourHops += len(nr) - r.topo.HopDistance(cur, s.dest)
		s.route, s.hop = nr, 0
		l = nr[0]
	}
	s.hopReady = float64(r.k.Now())
	s.waiting = true
	r.bufs[r.linkIdx[l]].AcquireFire(1, r, 2*r.total+2*ts)
}

// teleGranted fires when the hop's EPR pair is delivered: draw the teleport
// ancillae from the departing tile's zero supply, then transit.
func (r *netState) teleGranted(ts int) {
	s := &r.tele[ts]
	s.waiting = false
	ci := r.flat[s.fi].circuit
	res := &r.run.Results[ci]
	l := s.route[s.hop]
	granted := float64(r.k.Now())
	r.netBlocked[ci] += granted - s.hopReady
	if r.faulted && r.linkDegraded[r.linkIdx[l]] {
		r.fstats.DegradedWaitUs += granted - s.hopReady
	}
	depart := granted
	if r.teleAnc > 0 {
		if t := r.pools[l.From].AvailableAt(r.teleAnc); t > depart {
			depart = t
		}
	}
	r.waits[ci] += depart - granted
	res.TeleportAncillae += r.teleAncN
	res.AncillaeConsumed += r.teleAncN
	res.Hops++
	arrive := depart + r.teleUs
	r.netBlocked[ci] += arrive - depart
	r.k.AtFire(iontrap.Microseconds(arrive), sim.PriorityNormal, r, 2*r.total+2*ts+1)
}

// teleArrived fires at the hop's arrival time.
func (r *netState) teleArrived(ts int) {
	r.tele[ts].hop++
	r.teleStep(ts)
}

// issueGate runs a gate's execution phase at the given start time: QEC
// ancillae from the execution tile, then ballistic movement (multi-qubit
// gates) and the gate itself.  It returns the execution finish time.
func (r *netState) issueGate(ci int, g quantum.Gate, start float64, execTile int) float64 {
	res := &r.run.Results[ci]
	issue := start
	if t := r.pools[execTile].AvailableAt(r.perGate); t > issue {
		issue = t
	}
	r.waits[ci] += issue - start
	res.AncillaeConsumed += r.m.ZeroAncillaePerQEC
	extra := 0.0
	if g.Kind.Arity() >= 2 {
		extra = r.ballUs
	}
	return issue + extra + float64(r.m.GateWeightSpeedOfData(g))
}

// operandArrived joins one inbound teleport; the last arrival executes the
// gate and schedules the return trips at its completion.
func (r *netState) operandArrived(fi int, arrive float64) {
	p := &r.pend[fi]
	if arrive > p.arrival {
		p.arrival = arrive
	}
	p.inbound--
	if p.inbound > 0 {
		return
	}
	fg := r.flat[fi]
	g := r.cs[fg.circuit].Gates[fg.gate]
	part := r.run.Partitions[fg.circuit]
	execTile := part.TileOf[g.Qubits[len(g.Qubits)-1]]
	p.execDone = r.issueGate(fg.circuit, g, p.arrival, execTile)
	// Return the moved operands home; the gate completes (and unblocks its
	// successors) once placement is restored, the same to-and-back
	// convention the microarch teleport accounting uses.
	r.k.AtFire(iontrap.Microseconds(p.execDone), sim.PriorityNormal, r, r.total+fi)
}

// launchReturns fires at a cross-tile gate's execution completion and sends
// every moved operand back.
func (r *netState) launchReturns(fi int) {
	p := &r.pend[fi]
	fg := r.flat[fi]
	res := &r.run.Results[fg.circuit]
	p.outbound = len(p.moves)
	p.retDone = p.execDone
	for _, route := range p.moves {
		back := r.route(route[len(route)-1].To, route[0].From)
		if r.replayErr != nil {
			return
		}
		res.Teleports++
		res.HopHistogram[len(back)]++
		if r.faulted {
			r.noteSpawn(back)
		}
		r.spawnTele(fi, back, true)
	}
}

// returnArrived joins one return teleport; the last one finishes the gate.
func (r *netState) returnArrived(fi int, arrive float64) {
	p := &r.pend[fi]
	if arrive > p.retDone {
		p.retDone = arrive
	}
	p.outbound--
	if p.outbound == 0 {
		r.finishGate(fi, p.retDone)
	}
}

func (r *netState) scheduleDispatch() {
	if !r.dispatchScheduled {
		r.dispatchScheduled = true
		r.k.AtFire(r.k.Now(), sim.PriorityLate, r, netDispatchIdx)
	}
}

func (r *netState) finishGate(fi int, finishAt float64) {
	fg := r.flat[fi]
	if finishAt > r.tops[fg.circuit] {
		r.tops[fg.circuit] = finishAt
	}
	if finishAt > r.makespan {
		r.makespan = finishAt
	}
	r.k.AtFire(iontrap.Microseconds(finishAt), sim.PriorityNormal, r, fi)
}

func (r *netState) completed(fi int) {
	finishAt := float64(r.k.Now())
	fg := r.flat[fi]
	r.finished++
	for _, s := range r.dags[fg.circuit].Succ[fg.gate] {
		si := r.offs[fg.circuit] + s
		if finishAt > r.ready[si] {
			r.ready[si] = finishAt
		}
		r.indeg[si]--
		if r.indeg[si] == 0 {
			r.rq.Push(sim.Task{Index: si, Ready: r.ready[si]})
			r.scheduleDispatch()
		}
	}
	if r.finished == r.total {
		r.k.Stop()
	}
}

func (r *netState) dispatch() {
	r.dispatchScheduled = false
	for r.rq.Len() > 0 {
		item := r.rq.Pop()
		fi := item.Index
		fg := r.flat[fi]
		ci := fg.circuit
		g := r.cs[ci].Gates[fg.gate]
		part := r.run.Partitions[ci]
		execTile := part.TileOf[g.Qubits[len(g.Qubits)-1]]
		p := &r.pend[fi]
		p.moves = p.moves[:0]
		for _, q := range g.Qubits[:len(g.Qubits)-1] {
			if from := part.TileOf[q]; from != execTile {
				p.moves = append(p.moves, r.route(from, execTile))
			}
		}
		if r.replayErr != nil {
			return
		}
		start := item.Ready
		if len(p.moves) == 0 {
			r.finishGate(fi, r.issueGate(ci, g, start, execTile))
			continue
		}
		res := &r.run.Results[ci]
		p.inbound = len(p.moves)
		p.arrival = start
		for _, route := range p.moves {
			res.Teleports++
			res.HopHistogram[len(route)]++
			if r.faulted {
				r.noteSpawn(route)
			}
			r.spawnTele(fi, route, false)
		}
	}
}

// grow resizes the per-gate and per-circuit arrays, reusing capacity.
func (r *netState) grow(total, circuits, tiles int) {
	r.total, r.nTiles = total, tiles
	if cap(r.flat) < total {
		r.flat = make([]flatGate, total)
		r.ready = make([]float64, total)
		r.indeg = make([]int, total)
	}
	r.flat = r.flat[:total]
	r.ready = r.ready[:total]
	r.indeg = r.indeg[:total]
	for i := range r.ready {
		r.ready[i] = 0
	}
	if cap(r.pend) < total {
		old := r.pend
		r.pend = make([]netGate, total)
		// Keep the per-gate move-slice capacity accumulated so far.
		copy(r.pend, old)
	}
	r.pend = r.pend[:total]
	for i := range r.pend {
		r.pend[i] = netGate{moves: r.pend[i].moves[:0]}
	}
	if cap(r.dags) < circuits {
		r.dags = make([]*quantum.DAG, circuits)
		r.offs = make([]int, circuits)
		r.waits = make([]float64, circuits)
		r.netBlocked = make([]float64, circuits)
		r.tops = make([]float64, circuits)
	}
	r.dags = r.dags[:circuits]
	r.offs = r.offs[:circuits]
	r.waits = r.waits[:circuits]
	r.netBlocked = r.netBlocked[:circuits]
	r.tops = r.tops[:circuits]
	for i := 0; i < circuits; i++ {
		r.waits[i], r.netBlocked[i], r.tops[i] = 0, 0, 0
	}
	if cap(r.routes) < tiles*tiles {
		r.routes = make([][]Link, tiles*tiles)
		r.rerouted = make([]bool, tiles*tiles)
	}
	r.routes = r.routes[:tiles*tiles]
	r.rerouted = r.rerouted[:tiles*tiles]
	for i := range r.routes {
		r.routes[i] = nil
		r.rerouted[i] = false
	}
	r.tele = r.tele[:0]
	r.teleFree = r.teleFree[:0]
}

// ReplayShared co-schedules several circuits on one mesh — the network
// contention scenario: each circuit is partitioned across the same tiles,
// and all of them compete for the same links and the same per-tile zero
// factories.  Gates issue in first-come-first-served order of data readiness
// (ties broken by circuit, then gate index), exactly like
// schedule.ReplayShared.
func ReplayShared(cs []*quantum.Circuit, cfg Config) (ReplayRun, error) {
	if err := cfg.Validate(); err != nil {
		return ReplayRun{}, err
	}
	if len(cs) == 0 {
		return ReplayRun{}, fmt.Errorf("network: no circuits to replay")
	}
	m := cfg.Latency
	topo := NewTopology(len(cfg.Machine.Tiles))
	nTiles := topo.TileCount()
	maxDist := topo.Cols + topo.Rows - 1
	faulted := len(cfg.Faults) > 0
	if faulted && nTiles > maxDist {
		// Detours may be longer than any Manhattan distance; a BFS route
		// is still bounded by the tile count.  Zero-fault histograms keep
		// their original size, preserving byte identity.
		maxDist = nTiles
	}

	run := ReplayRun{
		Topology:   topo,
		Results:    make([]ReplayResult, len(cs)),
		Partitions: make([]Partition, len(cs)),
	}
	if len(cfg.Partitions) > 0 && len(cfg.Partitions) != len(cs) {
		return ReplayRun{}, fmt.Errorf("network: %d pinned partitions for %d circuits", len(cfg.Partitions), len(cs))
	}
	total := 0
	for _, c := range cs {
		if err := c.Validate(); err != nil {
			return ReplayRun{}, err
		}
		total += len(c.Gates)
	}

	r := netStatePool.Get().(*netState)
	defer func() {
		r.k, r.rq, r.cs, r.run, r.plan = nil, nil, nil, nil, nil
		for i := range r.dags {
			r.dags[i] = nil
		}
		netStatePool.Put(r)
	}()
	r.run, r.cs, r.m, r.topo = &run, cs, m, topo
	r.perGate = float64(m.ZeroAncillaePerQEC)
	r.teleAncN = cfg.Machine.Movement.TeleportAncillae
	r.teleAnc = float64(r.teleAncN)
	r.teleUs = float64(cfg.Machine.Movement.TeleportUs)
	r.ballUs = float64(cfg.Machine.Movement.BallisticPerGateUs)
	r.finished, r.makespan, r.dispatchScheduled = 0, 0, false
	r.faulted, r.plan = faulted, cfg.Faults
	r.fstats, r.replayErr = FaultStats{}, nil
	r.grow(total, len(cs), nTiles)

	fi := 0
	for ci, c := range cs {
		var part Partition
		if len(cfg.Partitions) > 0 {
			part = cfg.Partitions[ci]
			if part.Tiles != nTiles || len(part.TileOf) != c.NumQubits {
				return ReplayRun{}, fmt.Errorf("network: pinned partition %d covers %d qubits on %d tiles, want %d on %d",
					ci, len(part.TileOf), part.Tiles, c.NumQubits, nTiles)
			}
		} else {
			var err error
			if part, err = PartitionCircuit(c, nTiles); err != nil {
				return ReplayRun{}, err
			}
		}
		run.Partitions[ci] = part
		r.dags[ci] = c.DAG()
		r.offs[ci] = fi
		for gi := range c.Gates {
			r.flat[fi] = flatGate{circuit: ci, gate: gi}
			fi++
		}
		res := &run.Results[ci]
		res.Name = c.Name
		res.Gates = len(c.Gates)
		res.CrossGates = part.CrossGates
		res.HopHistogram = make([]int, maxDist)
		_, sod := r.dags[ci].WeightedCriticalPath(func(g quantum.Gate) float64 {
			return float64(m.GateWeightSpeedOfData(g))
		})
		res.SpeedOfData = iontrap.Microseconds(sod)
		for _, g := range c.Gates {
			res.DataOpBusy += m.DataOpLatency(g)
			res.QECInteractBusy += m.QECInteractLatency()
		}
	}
	if total == 0 {
		return run, nil
	}

	r.k = sim.AcquireKernel()
	defer r.k.Release()
	r.rq = sim.AcquireTaskQueue()
	defer r.rq.Release()

	// Per-tile zero supplies are fluid token buckets (the same arithmetic
	// schedule.Replay uses), fed by the tile's own factories.
	if cap(r.pools) < nTiles {
		r.pools = make([]sim.FluidSource, nTiles)
	}
	r.pools = r.pools[:nTiles]
	for i := range r.pools {
		if err := r.pools[i].Reset(cfg.tileRatePerMs(i) / 1000.0); err != nil {
			return ReplayRun{}, err
		}
	}
	// Each directed link is a finite EPR-pair channel behind a rate-matched
	// generator.  Channels and generators are pooled across runs.
	links := topo.Links()
	if r.linkIdx == nil {
		r.linkIdx = make(map[Link]int, len(links))
	} else {
		clear(r.linkIdx)
	}
	linkRatePerUs := cfg.linkRatePerMs() / 1000.0
	r.linkRate = linkRatePerUs
	if faulted {
		if cap(r.linkDown) < len(links) {
			r.linkDown = make([]bool, len(links))
			r.linkDegraded = make([]bool, len(links))
		}
		r.linkDown = r.linkDown[:len(links)]
		r.linkDegraded = r.linkDegraded[:len(links)]
		for i := range r.linkDown {
			r.linkDown[i], r.linkDegraded[i] = false, false
		}
	}
	for i, l := range links {
		r.linkIdx[l] = i
		rate, dead := linkRatePerUs, false
		if faulted {
			// Static faults (At == 0) shape the link before the run
			// starts; a later plan entry on the same link overrides an
			// earlier one.
			for _, f := range cfg.Faults {
				if f.At != 0 || f.Link != l {
					continue
				}
				if f.Dead {
					dead = true
				} else {
					rate = linkRatePerUs * f.RateFactor
				}
			}
			if dead {
				r.linkDown[i] = true
				r.fstats.FailedLinks++
			} else if rate != linkRatePerUs {
				r.linkDegraded[i] = true
				r.fstats.DegradedLinks++
			}
		}
		name := "EPR link " + l.String()
		if i < len(r.bufs) {
			r.bufs[i].Reset(r.k, name, cfg.LinkBufferPairs)
			if err := r.prods[i].Reset(r.k, name, r.bufs[i], rate, 1); err != nil {
				return ReplayRun{}, err
			}
		} else {
			buf := sim.NewResource(r.k, name, cfg.LinkBufferPairs)
			prod, err := sim.NewProducer(r.k, name, buf, rate, 1)
			if err != nil {
				return ReplayRun{}, err
			}
			r.bufs = append(r.bufs, buf)
			r.prods = append(r.prods, prod)
		}
		// A statically dead link's generator never starts: the channel
		// stays empty and every route avoids it from the first dispatch.
		if !dead {
			r.prods[i].Start()
		}
	}
	r.bufs = r.bufs[:len(links)]
	r.prods = r.prods[:len(links)]
	// Scheduled faults fire as ordinary kernel events at their timestamps;
	// one scheduled past the makespan never applies.
	for pi, f := range cfg.Faults {
		if f.At > 0 {
			r.k.AtFire(f.At, sim.PriorityNormal, r, -2-pi)
		}
	}

	for ci, d := range r.dags {
		copy(r.indeg[r.offs[ci]:r.offs[ci]+len(d.InDegree)], d.InDegree)
	}
	for i, d := range r.indeg {
		if d == 0 {
			r.rq.Push(sim.Task{Index: i, Ready: 0})
		}
	}
	r.k.AtFire(0, sim.PriorityLate, r, netDispatchIdx)
	r.dispatchScheduled = true
	stats := r.k.Run()

	if r.replayErr != nil {
		err := r.replayErr
		obsRecordReplay(r.fstats, errors.Is(err, ErrPartitioned))
		return ReplayRun{}, err
	}
	if r.finished != total {
		return ReplayRun{}, fmt.Errorf("network: replay left %d gates unexecuted (cyclic dependence graph?)", total-r.finished)
	}
	for ci := range cs {
		run.Results[ci].ExecutionTime = iontrap.Microseconds(r.tops[ci])
		run.Results[ci].AncillaWait = iontrap.Microseconds(r.waits[ci])
		run.Results[ci].NetworkBlocked = iontrap.Microseconds(r.netBlocked[ci])
	}
	run.Makespan = iontrap.Microseconds(r.makespan)
	run.Events = stats.Events
	run.Faults = r.fstats
	obsRecordReplay(r.fstats, false)
	run.Links = make([]LinkStat, len(links))
	for i, l := range links {
		run.Links[i] = LinkStat{
			Link:          l,
			PairsConsumed: r.bufs[i].Consumed(),
			HighWater:     r.bufs[i].HighWater(),
			ProducerStall: r.prods[i].StallTime(),
		}
	}
	return run, nil
}
