package network

import (
	"fmt"

	"speedofdata/internal/layout"
)

// Link is one directed inter-tile channel of the mesh.  Each direction of a
// physical tile boundary is its own channel: it has its own EPR-pair
// generator and buffer, so traffic flowing east never contends with traffic
// flowing west across the same boundary.
type Link struct {
	From, To int
}

// String renders the link the way the replay diagnostics name it.
func (l Link) String() string { return fmt.Sprintf("%d->%d", l.From, l.To) }

// Topology is the 2D mesh arrangement of a tiled Qalypso machine
// (Section 5.3): tile i sits at mesh coordinate (i mod Cols, i div Cols),
// and teleports route between tiles with deterministic dimension-order
// routing.  The zero value is invalid; build with NewTopology or fill the
// fields and Validate.
type Topology struct {
	// Cols and Rows are the mesh dimensions.
	Cols, Rows int
	// Tiles is the number of populated tiles; only the last row may be
	// partial.  Zero means the full Cols×Rows grid.
	Tiles int
	// TileQubits is the block size of the static block-cyclic qubit→tile
	// mapping used by TileOf (the microarch delegation path).  The routed
	// replayer assigns qubits with PartitionCircuit instead and ignores it.
	TileQubits int
}

// NewTopology arranges n tiles on a near-square mesh (layout.MeshDims) with
// a unit block mapping.
func NewTopology(n int) Topology {
	cols, rows := layout.MeshDims(n)
	return Topology{Cols: cols, Rows: rows, Tiles: n, TileQubits: 1}
}

// TileCount returns the number of populated tiles.
func (t Topology) TileCount() int {
	if t.Tiles > 0 {
		return t.Tiles
	}
	return t.Cols * t.Rows
}

// Validate rejects meshes no route can be computed on.
func (t Topology) Validate() error {
	if t.Cols < 1 || t.Rows < 1 {
		return fmt.Errorf("network: mesh dimensions %dx%d must be positive", t.Cols, t.Rows)
	}
	if t.Tiles < 0 || t.Tiles > t.Cols*t.Rows {
		return fmt.Errorf("network: %d tiles do not fit a %dx%d mesh", t.Tiles, t.Cols, t.Rows)
	}
	if t.Tiles > 0 && t.Tiles <= t.Cols*(t.Rows-1) {
		return fmt.Errorf("network: %d tiles leave whole rows of a %dx%d mesh empty", t.Tiles, t.Cols, t.Rows)
	}
	if t.TileQubits < 1 {
		return fmt.Errorf("network: tile qubit block size %d must be positive", t.TileQubits)
	}
	return nil
}

// Coord returns tile i's mesh coordinate.
func (t Topology) Coord(i int) (x, y int) { return i % t.Cols, i / t.Cols }

// Index returns the tile at mesh coordinate (x, y).
func (t Topology) Index(x, y int) int { return y*t.Cols + x }

// TileOf maps a qubit to its tile under the static block-cyclic mapping:
// consecutive blocks of TileQubits qubits fill consecutive tiles, wrapping
// around when the qubit count exceeds the mesh.
func (t Topology) TileOf(q int) int {
	if q < 0 {
		return 0
	}
	return (q / t.TileQubits) % t.TileCount()
}

// HopDistance returns the routed distance between two tiles in links: the
// Manhattan distance on the mesh.  The partial-row fallback in Route never
// changes the length, only the order of the legs.
func (t Topology) HopDistance(a, b int) int {
	ax, ay := t.Coord(a)
	bx, by := t.Coord(b)
	return abs(ax-bx) + abs(ay-by)
}

// Route returns the directed links of the deterministic dimension-order
// (X-then-Y) route from tile a to tile b.  When the X-first leg would cross
// an unpopulated cell of a partial last row, the route runs Y-then-X
// instead, which stays on populated tiles and has the same length.
func (t Topology) Route(a, b int) []Link {
	if a == b {
		return nil
	}
	if r, ok := t.walk(a, b, true); ok {
		return r
	}
	r, _ := t.walk(a, b, false)
	return r
}

// walk builds one dimension-order route, X legs first or Y legs first,
// reporting failure if it would step onto an unpopulated cell.
func (t Topology) walk(a, b int, xFirst bool) ([]Link, bool) {
	n := t.TileCount()
	x, y := t.Coord(a)
	bx, by := t.Coord(b)
	route := make([]Link, 0, t.HopDistance(a, b))
	cur := a
	step := func() bool {
		next := t.Index(x, y)
		if next >= n {
			return false
		}
		route = append(route, Link{From: cur, To: next})
		cur = next
		return true
	}
	walkX := func() bool {
		for x != bx {
			x += sign(bx - x)
			if !step() {
				return false
			}
		}
		return true
	}
	walkY := func() bool {
		for y != by {
			y += sign(by - y)
			if !step() {
				return false
			}
		}
		return true
	}
	if xFirst {
		if !walkX() || !walkY() {
			return nil, false
		}
	} else {
		if !walkY() || !walkX() {
			return nil, false
		}
	}
	return route, true
}

// Links returns every directed link between adjacent populated tiles in a
// stable order (ascending source tile; east, west, south, north neighbour),
// which is what makes link-indexed replay state deterministic.
func (t Topology) Links() []Link {
	n := t.TileCount()
	var links []Link
	for i := 0; i < n; i++ {
		x, y := t.Coord(i)
		for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			nx, ny := x+d[0], y+d[1]
			if nx < 0 || nx >= t.Cols || ny < 0 || ny >= t.Rows {
				continue
			}
			if j := t.Index(nx, ny); j < n {
				links = append(links, Link{From: i, To: j})
			}
		}
	}
	return links
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func sign(v int) int {
	if v < 0 {
		return -1
	}
	return 1
}
