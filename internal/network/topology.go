package network

import (
	"fmt"

	"speedofdata/internal/layout"
)

// Link is one directed inter-tile channel of the mesh.  Each direction of a
// physical tile boundary is its own channel: it has its own EPR-pair
// generator and buffer, so traffic flowing east never contends with traffic
// flowing west across the same boundary.
type Link struct {
	From, To int
}

// String renders the link the way the replay diagnostics name it.
func (l Link) String() string { return fmt.Sprintf("%d->%d", l.From, l.To) }

// Topology is the 2D mesh arrangement of a tiled Qalypso machine
// (Section 5.3): tile i sits at mesh coordinate (i mod Cols, i div Cols),
// and teleports route between tiles with deterministic dimension-order
// routing.  The zero value is invalid; build with NewTopology or fill the
// fields and Validate.
type Topology struct {
	// Cols and Rows are the mesh dimensions.
	Cols, Rows int
	// Tiles is the number of populated tiles; only the last row may be
	// partial.  Zero means the full Cols×Rows grid.
	Tiles int
	// TileQubits is the block size of the static block-cyclic qubit→tile
	// mapping used by TileOf (the microarch delegation path).  The routed
	// replayer assigns qubits with PartitionCircuit instead and ignores it.
	TileQubits int
}

// NewTopology arranges n tiles on a near-square mesh (layout.MeshDims) with
// a unit block mapping.
func NewTopology(n int) Topology {
	cols, rows := layout.MeshDims(n)
	return Topology{Cols: cols, Rows: rows, Tiles: n, TileQubits: 1}
}

// TileCount returns the number of populated tiles.
func (t Topology) TileCount() int {
	if t.Tiles > 0 {
		return t.Tiles
	}
	return t.Cols * t.Rows
}

// Validate rejects meshes no route can be computed on.
func (t Topology) Validate() error {
	if t.Cols < 1 || t.Rows < 1 {
		return fmt.Errorf("network: mesh dimensions %dx%d must be positive", t.Cols, t.Rows)
	}
	if t.Tiles < 0 || t.Tiles > t.Cols*t.Rows {
		return fmt.Errorf("network: %d tiles do not fit a %dx%d mesh", t.Tiles, t.Cols, t.Rows)
	}
	if t.Tiles > 0 && t.Tiles <= t.Cols*(t.Rows-1) {
		return fmt.Errorf("network: %d tiles leave whole rows of a %dx%d mesh empty", t.Tiles, t.Cols, t.Rows)
	}
	if t.TileQubits < 1 {
		return fmt.Errorf("network: tile qubit block size %d must be positive", t.TileQubits)
	}
	return nil
}

// Coord returns tile i's mesh coordinate.
func (t Topology) Coord(i int) (x, y int) { return i % t.Cols, i / t.Cols }

// Index returns the tile at mesh coordinate (x, y).
func (t Topology) Index(x, y int) int { return y*t.Cols + x }

// TileOf maps a qubit to its tile under the static block-cyclic mapping:
// consecutive blocks of TileQubits qubits fill consecutive tiles, wrapping
// around when the qubit count exceeds the mesh.
func (t Topology) TileOf(q int) int {
	if q < 0 {
		return 0
	}
	return (q / t.TileQubits) % t.TileCount()
}

// HopDistance returns the routed distance between two tiles in links: the
// Manhattan distance on the mesh.  The partial-row fallback in Route never
// changes the length, only the order of the legs.
func (t Topology) HopDistance(a, b int) int {
	ax, ay := t.Coord(a)
	bx, by := t.Coord(b)
	return abs(ax-bx) + abs(ay-by)
}

// Route returns the directed links of the deterministic dimension-order
// (X-then-Y) route from tile a to tile b.  When the X-first leg would cross
// an unpopulated cell of a partial last row, the route runs Y-then-X
// instead, which stays on populated tiles and has the same length.
func (t Topology) Route(a, b int) []Link {
	if a == b {
		return nil
	}
	if r, ok := t.walk(a, b, true); ok {
		return r
	}
	r, _ := t.walk(a, b, false)
	return r
}

// walk builds one dimension-order route, X legs first or Y legs first,
// reporting failure if it would step onto an unpopulated cell.
func (t Topology) walk(a, b int, xFirst bool) ([]Link, bool) {
	n := t.TileCount()
	x, y := t.Coord(a)
	bx, by := t.Coord(b)
	route := make([]Link, 0, t.HopDistance(a, b))
	cur := a
	step := func() bool {
		next := t.Index(x, y)
		if next >= n {
			return false
		}
		route = append(route, Link{From: cur, To: next})
		cur = next
		return true
	}
	walkX := func() bool {
		for x != bx {
			x += sign(bx - x)
			if !step() {
				return false
			}
		}
		return true
	}
	walkY := func() bool {
		for y != by {
			y += sign(by - y)
			if !step() {
				return false
			}
		}
		return true
	}
	if xFirst {
		if !walkX() || !walkY() {
			return nil, false
		}
	} else {
		if !walkY() || !walkX() {
			return nil, false
		}
	}
	return route, true
}

// RouteAvoiding returns a route from a to b that crosses no link for which
// down reports true, along with whether the route deviates from the
// fault-free dimension-order choice.  The fallback ladder is deterministic:
// the preferred dimension order (Route's choice), then the opposite order,
// then a breadth-first detour over healthy links — always a shortest healthy
// path, so a returned route is never longer than TileCount()-1 links.  When
// the failures disconnect a from b it returns an error wrapping
// ErrPartitioned.
func (t Topology) RouteAvoiding(a, b int, down func(Link) bool) ([]Link, bool, error) {
	if a == b {
		return nil, false, nil
	}
	// The hole-aware baseline: exactly what Route would pick.
	first, altOrder := []Link(nil), false
	if r, ok := t.walk(a, b, true); ok {
		first = r
	} else {
		first, _ = t.walk(a, b, false)
		altOrder = true
	}
	if routeClear(first, down) {
		return first, false, nil
	}
	// The other dimension order, when it stays on populated tiles.
	if !altOrder {
		if r, ok := t.walk(a, b, false); ok && routeClear(r, down) {
			return r, true, nil
		}
	}
	if r := t.bfsRoute(a, b, down); r != nil {
		return r, true, nil
	}
	return nil, false, fmt.Errorf("network: no route from tile %d to tile %d over the surviving links: %w", a, b, ErrPartitioned)
}

// routeClear reports whether no link of the route is down.
func routeClear(route []Link, down func(Link) bool) bool {
	for _, l := range route {
		if down(l) {
			return false
		}
	}
	return true
}

// bfsRoute finds a shortest path over healthy links, expanding neighbours in
// the same east, west, south, north order Links uses so ties resolve the
// same way on every run.  nil means no path exists.
func (t Topology) bfsRoute(a, b int, down func(Link) bool) []Link {
	n := t.TileCount()
	prev := make([]int, n)
	for i := range prev {
		prev[i] = -1
	}
	prev[a] = a
	queue := make([]int, 0, n)
	queue = append(queue, a)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == b {
			break
		}
		x, y := t.Coord(cur)
		for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			nx, ny := x+d[0], y+d[1]
			if nx < 0 || nx >= t.Cols || ny < 0 || ny >= t.Rows {
				continue
			}
			next := t.Index(nx, ny)
			if next >= n || prev[next] >= 0 || down(Link{From: cur, To: next}) {
				continue
			}
			prev[next] = cur
			queue = append(queue, next)
		}
	}
	if prev[b] < 0 {
		return nil
	}
	// Walk the predecessor chain back from b and reverse it into links.
	hops := 0
	for cur := b; cur != a; cur = prev[cur] {
		hops++
	}
	route := make([]Link, hops)
	for cur := b; cur != a; cur = prev[cur] {
		hops--
		route[hops] = Link{From: prev[cur], To: cur}
	}
	return route
}

// Links returns every directed link between adjacent populated tiles in a
// stable order (ascending source tile; east, west, south, north neighbour),
// which is what makes link-indexed replay state deterministic.
func (t Topology) Links() []Link {
	n := t.TileCount()
	var links []Link
	for i := 0; i < n; i++ {
		x, y := t.Coord(i)
		for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			nx, ny := x+d[0], y+d[1]
			if nx < 0 || nx >= t.Cols || ny < 0 || ny >= t.Rows {
				continue
			}
			if j := t.Index(nx, ny); j < n {
				links = append(links, Link{From: i, To: j})
			}
		}
	}
	return links
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func sign(v int) int {
	if v < 0 {
		return -1
	}
	return 1
}
