package network

import (
	"context"
	"fmt"
	"math/rand"

	"speedofdata/internal/engine"
	"speedofdata/internal/quantum"
	"speedofdata/internal/schedule"
)

// SweepPoint is one cell of the link-bandwidth × tile-count grid of the
// netsweep scenario.
type SweepPoint struct {
	// Tiles is the actual tile count of the planned mesh (which may be
	// smaller than requested when the qubits divide unevenly).
	Tiles int
	// LinkFactor scales the demand-matched link EPR bandwidth
	// (MatchedLinkEPRPerMs): below 1 the interconnect is under-provisioned
	// for the circuit's data movement, above 1 over-provisioned.
	LinkFactor float64
	// LinkEPRPerMs is the effective per-link EPR-pair bandwidth, capped at
	// the perimeter-derived geometric ceiling (layout.Qalypso.LinkEPRPerMs).
	LinkEPRPerMs float64
	// MatchedLinkEPRPerMs is the estimated rate at which the link moves
	// data exactly as fast as computation demands it.
	MatchedLinkEPRPerMs float64
	// ExecutionTimeMs is the replay makespan.
	ExecutionTimeMs float64
	// SpeedOfDataMs is the circuit's dataflow bound.
	SpeedOfDataMs float64
	// NetworkBlockedMs is the time gates spent queueing for and transiting
	// the interconnect.
	NetworkBlockedMs float64
	// AncillaWaitMs is the time gates spent factory-starved (QEC steps and
	// teleport ancillae).
	AncillaWaitMs float64
	// CrossGates and Teleports summarise the routed traffic.
	CrossGates int
	Teleports  int
	// MeanHops is the average one-way route length per teleport.
	MeanHops float64
	// MaxLinkHighWater is the largest buffered EPR-pair peak across links.
	MaxLinkHighWater float64
	// Events is the kernel event count.
	Events int
}

// SweepConfig parameterises the netsweep grid.
type SweepConfig struct {
	// Latency supplies gate and QEC timings.
	Latency schedule.LatencyModel
	// ZeroPerMs and Pi8PerMs are the chip-wide ancilla demands each planned
	// mesh is provisioned for (split across tiles by PlanConfig).
	ZeroPerMs, Pi8PerMs float64
	// LinkBufferPairs bounds every link's EPR channel buffer (<= 0 leaves
	// the channels unbounded).
	LinkBufferPairs float64
	// TileCounts are the mesh sizes of the grid (use DefaultTileCounts).
	TileCounts []int
	// LinkFactors scale the demand-matched link bandwidth (use
	// DefaultLinkFactors).
	LinkFactors []float64
}

// DefaultLinkFactors are the link-bandwidth scalings of the netsweep grid,
// as multiples of the demand-matched rate: from a starved interconnect to an
// over-provisioned one.
func DefaultLinkFactors() []float64 { return []float64{0.25, 0.5, 1, 2, 4} }

// DefaultTileCounts returns the tile counts of the netsweep grid: powers of
// two from 2 up to maxTiles.  A bound below 2 returns nil — the 1-tile mesh
// has no links to sweep; it is the degenerate parity case instead.
func DefaultTileCounts(maxTiles int) []int {
	var out []int
	for t := 2; t <= maxTiles; t *= 2 {
		out = append(out, t)
	}
	return out
}

// Sweep runs the link-bandwidth × tile-count grid sequentially; SweepEngine
// is the parallel form.
func Sweep(c *quantum.Circuit, sc SweepConfig) ([]SweepPoint, error) {
	return SweepEngine(context.Background(), nil, c, sc)
}

// SweepEngine replays the circuit at every (tile count, link factor) cell of
// the grid through the experiment engine, one job per cell.  Jobs are keyed
// by the circuit fingerprint and the full cell parameters, so repeated and
// overlapping sweeps share results through the engine cache, and results are
// identical for any worker count.
func SweepEngine(ctx context.Context, eng *engine.Engine, c *quantum.Circuit, sc SweepConfig) ([]SweepPoint, error) {
	if len(sc.TileCounts) == 0 || len(sc.LinkFactors) == 0 {
		return nil, fmt.Errorf("network: empty sweep grid (netsweep needs a tile bound of at least 2; a 1-tile mesh has no links to sweep)")
	}
	var jobs []engine.Job[SweepPoint]
	for _, tiles := range sc.TileCounts {
		// Everything factor-independent — the machine plan, the qubit
		// partition, the dataflow critical path behind the matched rate — is
		// computed once per tile count, not once per grid cell.
		base, err := PlanConfig(sc.Latency, c.NumQubits, tiles, sc.ZeroPerMs, sc.Pi8PerMs)
		if err != nil {
			return nil, err
		}
		base.LinkBufferPairs = sc.LinkBufferPairs
		topo := NewTopology(len(base.Machine.Tiles))
		part, err := PartitionCircuit(c, topo.TileCount())
		if err != nil {
			return nil, err
		}
		base.Partitions = []Partition{part}
		matched := MatchedLinkEPRPerMs(c, sc.Latency, topo, part)
		for _, factor := range sc.LinkFactors {
			base, factor := base, factor
			jobs = append(jobs, engine.Job[SweepPoint]{
				Key: engine.Fingerprint("network.sweep", part.Key, sc.Latency, sc.ZeroPerMs, sc.Pi8PerMs,
					sc.LinkBufferPairs, factor),
				Run: func(context.Context, *rand.Rand) (SweepPoint, error) {
					cfg := base
					cfg.LinkEPRPerMs = matched * factor
					// The perimeter bounds how many EPR channels a link can
					// physically carry.
					if ceiling := cfg.Machine.LinkEPRPerMs(); cfg.LinkEPRPerMs > ceiling {
						cfg.LinkEPRPerMs = ceiling
					}
					run, err := Replay(c, cfg)
					if err != nil {
						return SweepPoint{}, err
					}
					r := run.Results[0]
					meanHops := 0.0
					if r.Teleports > 0 {
						meanHops = float64(r.Hops) / float64(r.Teleports)
					}
					return SweepPoint{
						Tiles:               len(cfg.Machine.Tiles),
						LinkFactor:          factor,
						LinkEPRPerMs:        cfg.LinkEPRPerMs,
						MatchedLinkEPRPerMs: matched,
						ExecutionTimeMs:     r.ExecutionTime.Milliseconds(),
						SpeedOfDataMs:       r.SpeedOfData.Milliseconds(),
						NetworkBlockedMs:    r.NetworkBlocked.Milliseconds(),
						AncillaWaitMs:       r.AncillaWait.Milliseconds(),
						CrossGates:          r.CrossGates,
						Teleports:           r.Teleports,
						MeanHops:            meanHops,
						MaxLinkHighWater:    run.MaxLinkHighWater(),
						Events:              run.Events,
					}, nil
				},
			})
		}
	}
	return engine.Run(ctx, eng, jobs)
}
