package network

import (
	"sync/atomic"

	"speedofdata/internal/obs"
)

// Package-level counters feeding the metrics registry.  Mirroring
// internal/sim, they are plain atomics updated once per replay — never per
// event or per hop — and read by func-backed series at scrape time, so the
// fault layer adds nothing to the replay hot path.
var (
	// faultedReplays counts replays that ran with a non-empty fault plan.
	faultedReplays atomic.Int64
	// reroutes totals teleports whose spawn route deviated from the
	// fault-free dimension-order choice.
	reroutes atomic.Int64
	// inFlightReroutes totals teleports re-pathed after their link died
	// mid-flight.
	inFlightReroutes atomic.Int64
	// partitioned counts replays aborted with ErrPartitioned.
	partitioned atomic.Int64
	// lastFailedLinks and lastDegradedLinks gauge the fault plan of the most
	// recent faulted replay.
	lastFailedLinks   atomic.Int64
	lastDegradedLinks atomic.Int64
)

// obsRecordReplay folds one replay's fault decomposition into the process
// counters.  Zero-fault replays record nothing.
func obsRecordReplay(fs FaultStats, part bool) {
	if fs == (FaultStats{}) && !part {
		return
	}
	faultedReplays.Add(1)
	reroutes.Add(int64(fs.Reroutes))
	inFlightReroutes.Add(int64(fs.InFlightReroutes))
	lastFailedLinks.Store(int64(fs.FailedLinks))
	lastDegradedLinks.Store(int64(fs.DegradedLinks))
	if part {
		partitioned.Add(1)
	}
}

// Instrument registers the interconnect fault counters with reg.  Call once,
// before serving.
func Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("qsd_network_faulted_replays_total",
		"Mesh replays executed with a non-empty fault plan.", nil,
		func() float64 { return float64(faultedReplays.Load()) })
	reg.CounterFunc("qsd_network_reroutes_total",
		"Teleports routed around failed links at spawn time.", nil,
		func() float64 { return float64(reroutes.Load()) })
	reg.CounterFunc("qsd_network_inflight_reroutes_total",
		"Teleports re-pathed after their next link died mid-flight.", nil,
		func() float64 { return float64(inFlightReroutes.Load()) })
	reg.CounterFunc("qsd_network_partitioned_total",
		"Replays aborted because link failures disconnected the mesh.", nil,
		func() float64 { return float64(partitioned.Load()) })
	reg.GaugeFunc("qsd_network_failed_links",
		"Dead links applied by the most recent faulted replay.", nil,
		func() float64 { return float64(lastFailedLinks.Load()) })
	reg.GaugeFunc("qsd_network_degraded_links",
		"Rate-degraded links applied by the most recent faulted replay.", nil,
		func() float64 { return float64(lastDegradedLinks.Load()) })
}
