// Package network models the teleportation interconnect of a tiled Qalypso
// machine the way Sections 5.3 and 6 of the paper describe it: data moves
// between tiles only by teleportation, every teleport consumes one
// pre-distributed EPR pair from the link it crosses plus encoded zero
// ancillae from the departing tile's factories, and a machine is balanced
// only when the interconnect moves data at a rate matched to computation.
//
// The tiles of a layout.Qalypso become nodes of a 2D mesh (Topology).  Each
// directed inter-tile link is backed by an EPR-pair generator — a
// sim.Producer cadenced from the link's EPR bandwidth, itself derived from
// the tile perimeter (layout.Qalypso.LinkEPRPerMs) — feeding a finite
// sim.Resource channel buffer, so a burst of teleports across one boundary
// queues behind the link's distribution rate.  Teleports route with
// deterministic dimension-order (X-then-Y) routing; per hop they pay the
// movement model's teleport latency after the EPR pair and the teleport
// ancillae are available.
//
// Replay executes benchmark dataflow graphs across the mesh on the
// discrete-event kernel of internal/sim: qubits are placed by a
// deterministic partitioner (PartitionCircuit), local gates pay ballistic
// movement, and cross-tile gates teleport their operands to the execution
// tile and back.  A 1-tile mesh has no links, so Replay degenerates to the
// single-region fluid replay of internal/schedule and — once ballistic
// movement is zeroed and TileZeroRatePerMs pinned to the supply rate, the
// two costs schedule.Replay does not model — reproduces it bit for bit, the
// parity anchor for every multi-tile extension
// (TestOneTileReplayMatchesScheduleFluid).
package network

import (
	"fmt"
	"math"

	"speedofdata/internal/layout"
	"speedofdata/internal/quantum"
	"speedofdata/internal/schedule"
	"speedofdata/internal/sim"
)

// Config describes one routed-mesh replay: the machine, the gate latency
// model, and the interconnect parameters.
type Config struct {
	// Machine is the tiled microarchitecture whose tiles become mesh nodes;
	// its Movement model prices each hop and its tiles' zero factories feed
	// both QEC steps and teleports.
	Machine layout.Qalypso
	// Latency supplies gate and QEC timings (the Section 3 model).
	Latency schedule.LatencyModel
	// LinkEPRPerMs is the EPR-pair distribution bandwidth of one directed
	// inter-tile link; zero derives it from the machine geometry
	// (Machine.LinkEPRPerMs: one pair per teleport latency per edge port).
	LinkEPRPerMs float64
	// LinkBufferPairs bounds each link's channel buffer of ready EPR pairs;
	// non-positive leaves the channel unbounded, so pairs accumulate while
	// the link is idle.
	LinkBufferPairs float64
	// TileZeroRatePerMs overrides every tile's encoded-zero supply rate;
	// zero uses each tile's own net ZeroBandwidthPerMs.  +Inf models the
	// speed-of-data supply.
	TileZeroRatePerMs float64
	// Partitions optionally pins each replayed circuit's qubit→tile
	// assignment, index-aligned with the circuits passed to ReplayShared.
	// Empty computes PartitionCircuit per circuit; callers that already
	// partitioned (to size the link bandwidth, say) pass the result here so
	// the work is not repeated.
	Partitions []Partition
	// Faults is the deterministic fault plan injected into the replay:
	// dead links and EPR-rate degradations, static (At == 0) or scheduled
	// at event-kernel timestamps.  Empty runs the fault-free fast path,
	// byte-identical to a build without the fault layer.
	Faults FaultPlan
}

// linkRatePerMs returns the effective per-link EPR bandwidth.
func (cfg Config) linkRatePerMs() float64 {
	if cfg.LinkEPRPerMs > 0 {
		return cfg.LinkEPRPerMs
	}
	return cfg.Machine.LinkEPRPerMs()
}

// tileRatePerMs returns tile i's effective encoded-zero supply rate.
func (cfg Config) tileRatePerMs(i int) float64 {
	if cfg.TileZeroRatePerMs != 0 {
		return cfg.TileZeroRatePerMs
	}
	return cfg.Machine.Tiles[i].ZeroBandwidthPerMs()
}

// Validate rejects configurations no replay can run: it revalidates the
// movement model (layout.MovementModel.Validate), the latency model, and the
// interconnect rates, so non-physical parameters fail fast here instead of
// surfacing as negative latencies mid-simulation.
func (cfg Config) Validate() error {
	if err := cfg.Latency.Validate(); err != nil {
		return err
	}
	if err := cfg.Machine.Movement.Validate(); err != nil {
		return err
	}
	if len(cfg.Machine.Tiles) == 0 {
		return fmt.Errorf("network: machine has no tiles")
	}
	if cfg.LinkBufferPairs < 0 {
		return fmt.Errorf("network: negative link buffer capacity %v", cfg.LinkBufferPairs)
	}
	if len(cfg.Machine.Tiles) > 1 {
		rate := cfg.linkRatePerMs()
		if !(rate > 0) {
			return fmt.Errorf("network: link EPR bandwidth %v/ms: %w", rate, sim.ErrZeroRate)
		}
		if math.IsInf(rate, 0) || math.IsNaN(rate) {
			return fmt.Errorf("network: link EPR bandwidth %v/ms is not finite", rate)
		}
	}
	for i := range cfg.Machine.Tiles {
		if r := cfg.tileRatePerMs(i); !(r > 0) {
			return fmt.Errorf("network: tile %d zero supply %v/ms: %w", i, r, sim.ErrZeroRate)
		}
	}
	if len(cfg.Faults) > 0 {
		if err := cfg.Faults.Validate(NewTopology(len(cfg.Machine.Tiles))); err != nil {
			return err
		}
	}
	return nil
}

// MatchedLinkEPRPerMs estimates the per-link EPR bandwidth that moves data
// at the rate computation demands — the balance point of Section 6: the
// EPR pairs the partitioned circuit consumes (one per hop, two routed trips
// per cross-tile operand) spread evenly over the mesh links and the
// circuit's dataflow-bound duration.  Below this rate the interconnect is
// the bottleneck; above it, link queueing fades.  Returns zero for meshes
// with no links or circuits with no dataflow time.
func MatchedLinkEPRPerMs(c *quantum.Circuit, m schedule.LatencyModel, topo Topology, part Partition) float64 {
	links := len(topo.Links())
	if links == 0 {
		return 0
	}
	dag := c.DAG()
	_, sodUs := dag.WeightedCriticalPath(func(g quantum.Gate) float64 {
		return float64(m.GateWeightSpeedOfData(g))
	})
	if !(sodUs > 0) || math.IsInf(sodUs, 0) || math.IsNaN(sodUs) {
		return 0
	}
	hops := 0
	for _, g := range c.Gates {
		if len(g.Qubits) < 2 {
			continue
		}
		exec := part.TileOf[g.Qubits[len(g.Qubits)-1]]
		for _, q := range g.Qubits[:len(g.Qubits)-1] {
			if t := part.TileOf[q]; t != exec {
				hops += 2 * topo.HopDistance(t, exec)
			}
		}
	}
	if hops == 0 {
		return 0
	}
	return float64(hops) * 1000.0 / (float64(links) * sodUs)
}

// PlanConfig provisions a routed-mesh configuration for a circuit of
// nQubits data qubits split across (at most) tiles tiles: the machine is
// planned with layout.PlanQalypso, so each tile is provisioned for its share
// of the given encoded-zero and π/8 demand, and the link bandwidth and
// buffers are left at their geometry-derived defaults.  Note PlanQalypso may
// produce fewer tiles than requested when the qubits divide unevenly; read
// the actual count from len(Config.Machine.Tiles).
func PlanConfig(m schedule.LatencyModel, nQubits, tiles int, zeroPerMs, pi8PerMs float64) (Config, error) {
	if tiles < 1 {
		return Config{}, fmt.Errorf("network: mesh needs at least one tile, got %d", tiles)
	}
	tileQubits := (nQubits + tiles - 1) / tiles
	machine, err := layout.PlanQalypso(m.Tech, nQubits, tileQubits, zeroPerMs, pi8PerMs)
	if err != nil {
		return Config{}, err
	}
	return Config{Machine: machine, Latency: m}, nil
}
