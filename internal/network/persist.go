package network

import "speedofdata/internal/engine"

// Network sweep points persist in the engine's disk cache tier; bump a
// version when the computation behind the corresponding job keys changes
// meaning.
func init() {
	engine.RegisterResultType(SweepPoint{}, 1)
	engine.RegisterResultType(FaultSweepPoint{}, 1)
	engine.RegisterResultType(DegradePoint{}, 1)
}
