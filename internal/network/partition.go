package network

import (
	"fmt"

	"speedofdata/internal/quantum"
)

// Partition is a deterministic assignment of a circuit's qubits to mesh
// tiles.
type Partition struct {
	// TileOf maps each qubit index to its tile.
	TileOf []int
	// Tiles is the tile count the partition was built for.
	Tiles int
	// CrossGates counts the circuit's multi-qubit gates whose operands span
	// tiles under this assignment — each will issue routed teleports.
	CrossGates int
	// Key fingerprints the partition inputs (the circuit fingerprint plus
	// the tile count); the netsweep engine jobs key their cache entries
	// with it.
	Key string
}

// PartitionCircuit assigns the circuit's qubits to tiles in two
// deterministic passes.  The first pass is stable round-robin by first use:
// qubits claim tiles in the order the gate stream first touches them, so
// early co-operands tend to land apart and the mesh load is balanced.  The
// second pass is a single greedy affinity sweep over the same order: a qubit
// moves to the tile holding the plurality of its two-qubit-gate partners
// when that strictly reduces its cross-tile edges and the tile has room
// (each tile holds at most ceil(qubits/tiles)).  Both passes depend only on
// the circuit and the tile count, so the same inputs always produce the same
// assignment.
func PartitionCircuit(c *quantum.Circuit, tiles int) (Partition, error) {
	if tiles < 1 {
		return Partition{}, fmt.Errorf("network: partition needs at least one tile, got %d", tiles)
	}
	if err := c.Validate(); err != nil {
		return Partition{}, err
	}
	n := c.NumQubits
	p := Partition{
		TileOf: make([]int, n),
		Tiles:  tiles,
		Key:    fmt.Sprintf("%s|tiles=%d", c.Fingerprint(), tiles),
	}
	if n == 0 {
		return p, nil
	}
	capacity := (n + tiles - 1) / tiles

	// Pass 1: round-robin by first use.
	for i := range p.TileOf {
		p.TileOf[i] = -1
	}
	occ := make([]int, tiles)
	firstUse := make([]int, 0, n)
	seq := 0
	assign := func(q int) {
		if p.TileOf[q] >= 0 {
			return
		}
		for occ[seq%tiles] >= capacity {
			seq++
		}
		p.TileOf[q] = seq % tiles
		occ[seq%tiles]++
		seq++
		firstUse = append(firstUse, q)
	}
	for _, g := range c.Gates {
		for _, q := range g.Qubits {
			assign(q)
		}
	}
	for q := 0; q < n; q++ {
		assign(q) // qubits no gate touches
	}

	// Pass 2: greedy affinity.  adj[q] weighs q's two-qubit-gate partners;
	// per-tile sums are order-independent, so the map needs no sorting.
	adj := make([]map[int]int, n)
	for _, g := range c.Gates {
		if len(g.Qubits) < 2 {
			continue
		}
		for i := 0; i < len(g.Qubits); i++ {
			for j := i + 1; j < len(g.Qubits); j++ {
				a, b := g.Qubits[i], g.Qubits[j]
				if adj[a] == nil {
					adj[a] = make(map[int]int)
				}
				if adj[b] == nil {
					adj[b] = make(map[int]int)
				}
				adj[a][b]++
				adj[b][a]++
			}
		}
	}
	weight := make([]int, tiles)
	for _, q := range firstUse {
		if adj[q] == nil {
			continue
		}
		for t := range weight {
			weight[t] = 0
		}
		for partner, w := range adj[q] {
			weight[p.TileOf[partner]] += w
		}
		cur := p.TileOf[q]
		best := cur
		for t := 0; t < tiles; t++ {
			if t == cur || occ[t] >= capacity {
				continue
			}
			if weight[t] > weight[best] {
				best = t
			}
		}
		if best != cur {
			occ[cur]--
			occ[best]++
			p.TileOf[q] = best
		}
	}

	for _, g := range c.Gates {
		if spansTiles(p.TileOf, g) {
			p.CrossGates++
		}
	}
	return p, nil
}

// spansTiles reports whether the gate's operands live on more than one tile.
func spansTiles(tileOf []int, g quantum.Gate) bool {
	if len(g.Qubits) < 2 {
		return false
	}
	home := tileOf[g.Qubits[0]]
	for _, q := range g.Qubits[1:] {
		if tileOf[q] != home {
			return true
		}
	}
	return false
}
