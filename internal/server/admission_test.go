package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"speedofdata/internal/core"
	"speedofdata/internal/engine"
	"speedofdata/internal/report"
)

// blockingStub is a runReport stand-in whose requests block until released,
// so tests saturate the admission gate with perfectly controlled timing
// instead of real workloads.
type blockingStub struct {
	started chan struct{} // receives one token per request that begins
	release chan struct{} // closed (or fed) to let blocked requests finish
}

func newBlockingStub() *blockingStub {
	return &blockingStub{
		started: make(chan struct{}, 64),
		release: make(chan struct{}),
	}
}

func (b *blockingStub) run(ctx context.Context, exp core.Experiments, p core.RunParams, ids []string) (report.Document, error) {
	b.started <- struct{}{}
	select {
	case <-b.release:
		var doc report.Document
		doc.Sections = append(doc.Sections, report.Section{ID: ids[0]})
		return doc, nil
	case <-ctx.Done():
		return report.Document{}, ctx.Err()
	}
}

// newAdmissionServer builds an httptest server with the given admission
// config and the blocking stub wired in place of real experiment execution.
func newAdmissionServer(t *testing.T, cfg Config) (*httptest.Server, *Server, *blockingStub) {
	t.Helper()
	exp := core.NewExperiments()
	exp.Engine = engine.New(2)
	srv := NewWithConfig(exp, core.DefaultRunParams(), cfg)
	stub := newBlockingStub()
	srv.runReport = stub.run
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv, stub
}

// asyncGet fires a GET and delivers the response on a channel.
type getResult struct {
	status     int
	body       string
	retryAfter string
	err        error
}

func asyncGet(url string) chan getResult {
	ch := make(chan getResult, 1)
	go func() {
		resp, err := http.Get(url)
		if err != nil {
			ch <- getResult{err: err}
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		ch <- getResult{
			status:     resp.StatusCode,
			body:       string(body),
			retryAfter: resp.Header.Get("Retry-After"),
		}
	}()
	return ch
}

func getHealth(t *testing.T, baseURL string) healthStatus {
	t.Helper()
	status, body, _ := get(t, baseURL+"/v1/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz: status %d: %s", status, body)
	}
	var st healthStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("healthz: bad body %q: %v", body, err)
	}
	return st
}

// TestAdmissionSaturationSheds saturates a 1-slot/1-queue gate and checks
// the full ordering: first request admitted, second queued, third shed with
// 429 + Retry-After, then release drains everything and the gauges return to
// zero while the totals record what happened.
func TestAdmissionSaturationSheds(t *testing.T) {
	ts, _, stub := newAdmissionServer(t, Config{
		MaxConcurrent: 1,
		MaxQueue:      1,
		QueueTimeout:  10 * time.Second,
	})
	url := ts.URL + "/v1/experiments/table1"

	// First request occupies the only slot.
	first := asyncGet(url)
	<-stub.started
	if st := getHealth(t, ts.URL); st.InFlight != 1 || st.QueueDepth != 0 {
		t.Fatalf("after first admit: in_flight=%d queue_depth=%d, want 1/0", st.InFlight, st.QueueDepth)
	}

	// Second request queues.  Poll the gauge: the queue entry is the signal
	// that it arrived (it never reaches the stub while the slot is held).
	second := asyncGet(url)
	deadline := time.Now().Add(5 * time.Second)
	for getHealth(t, ts.URL).QueueDepth != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Third request finds slot and queue full: shed immediately.
	res := <-asyncGet(url)
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.status != http.StatusTooManyRequests {
		t.Fatalf("saturated request: status %d, want 429 (%s)", res.status, res.body)
	}
	if res.retryAfter == "" {
		t.Error("saturated request: missing Retry-After header")
	}
	if !strings.Contains(res.body, "saturated") {
		t.Errorf("saturated request: body should explain the shed: %s", res.body)
	}

	// Releasing the stub drains slot then queue; both callers succeed.
	close(stub.release)
	for _, ch := range []chan getResult{first, second} {
		res := <-ch
		if res.err != nil {
			t.Fatal(res.err)
		}
		if res.status != http.StatusOK {
			t.Fatalf("admitted request: status %d (%s)", res.status, res.body)
		}
	}

	st := getHealth(t, ts.URL)
	if st.InFlight != 0 || st.QueueDepth != 0 {
		t.Errorf("after drain: in_flight=%d queue_depth=%d, want 0/0", st.InFlight, st.QueueDepth)
	}
	if st.Admitted != 2 {
		t.Errorf("admitted total %d, want 2", st.Admitted)
	}
	if st.Shed != 1 {
		t.Errorf("shed total %d, want 1", st.Shed)
	}
	if st.Status != "ok" {
		t.Errorf("status %q, want ok", st.Status)
	}
	if st.QueueCapacity != 1 || st.MaxConcurrent != 1 {
		t.Errorf("capacity gauges %d/%d, want 1/1", st.QueueCapacity, st.MaxConcurrent)
	}
}

// TestAdmissionQueueTimeout parks a request in the queue past QueueTimeout
// and expects a 429 with Retry-After, not an indefinite wait.
func TestAdmissionQueueTimeout(t *testing.T) {
	ts, _, stub := newAdmissionServer(t, Config{
		MaxConcurrent: 1,
		MaxQueue:      4,
		QueueTimeout:  50 * time.Millisecond,
	})
	url := ts.URL + "/v1/experiments/table1"

	first := asyncGet(url)
	<-stub.started

	res := <-asyncGet(url) // queues, then times out: the slot never frees
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.status != http.StatusTooManyRequests {
		t.Fatalf("queued request: status %d, want 429 (%s)", res.status, res.body)
	}
	if res.retryAfter == "" {
		t.Error("queue-timeout shed: missing Retry-After header")
	}

	close(stub.release)
	if res := <-first; res.status != http.StatusOK {
		t.Fatalf("first request: status %d", res.status)
	}
}

// TestRequestDeadline cancels an admitted run at RequestTimeout and expects
// 503 + Retry-After: the server protected its pool; the request was fine.
func TestRequestDeadline(t *testing.T) {
	ts, _, _ := newAdmissionServer(t, Config{
		MaxConcurrent:  2,
		MaxQueue:       2,
		QueueTimeout:   time.Second,
		RequestTimeout: 50 * time.Millisecond,
	})
	// The stub blocks until ctx.Done and returns ctx.Err(), exactly like a
	// real engine batch under cancellation.
	res := <-asyncGet(ts.URL + "/v1/experiments/table1")
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.status != http.StatusServiceUnavailable {
		t.Fatalf("deadline-exceeded run: status %d, want 503 (%s)", res.status, res.body)
	}
	if res.retryAfter == "" {
		t.Error("deadline-exceeded run: missing Retry-After header")
	}
	if !strings.Contains(res.body, "deadline") {
		t.Errorf("deadline-exceeded run: body should explain: %s", res.body)
	}
}

// TestRateLimiterClock drives the token bucket with a fake clock: burst
// spends, empty bucket refuses with the accrual wait, refill restores.
func TestRateLimiterClock(t *testing.T) {
	now := time.Unix(1000, 0)
	l := newRateLimiter(2, 4) // 2 tokens/s, burst 4
	l.now = func() time.Time { return now }

	for i := 0; i < 4; i++ {
		if _, ok := l.allow("a"); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	wait, ok := l.allow("a")
	if ok {
		t.Fatal("5th immediate request allowed past burst")
	}
	if wait <= 0 || wait > time.Second {
		t.Errorf("refusal wait %v, want in (0, 1s] at 2 tokens/s", wait)
	}
	// Other clients have their own buckets.
	if _, ok := l.allow("b"); !ok {
		t.Error("unrelated client throttled")
	}
	// Half a second accrues one token at 2/s.
	now = now.Add(500 * time.Millisecond)
	if _, ok := l.allow("a"); !ok {
		t.Error("request refused after refill")
	}
	if _, ok := l.allow("a"); ok {
		t.Error("second request allowed on a single accrued token")
	}
	if l.limitedCount() != 2 {
		t.Errorf("limited count %d, want 2", l.limitedCount())
	}

	// The sweep drops fully-refilled buckets and keeps depleted ones.
	now = now.Add(10 * time.Second) // "a" and "b" both refill to burst
	l.allow("c")                    // c is fresh: burst-1 tokens, not full
	l.mu.Lock()
	l.sweep(l.now())
	kept := len(l.clients)
	_, hasC := l.clients["c"]
	l.mu.Unlock()
	if kept != 1 || !hasC {
		t.Errorf("sweep kept %d clients (c present: %v), want only the depleted one", kept, hasC)
	}
}

// TestRateLimitEndpoint exercises the limiter over HTTP: burst passes, the
// next request gets 429 + Retry-After before any parsing, and healthz counts
// it.  httptest connections come from one host, so one bucket applies.
func TestRateLimitEndpoint(t *testing.T) {
	ts, _, stub := newAdmissionServer(t, Config{
		MaxConcurrent:  4,
		MaxQueue:       4,
		QueueTimeout:   time.Second,
		RatePerClient:  0.001, // effectively no refill within the test
		BurstPerClient: 2,
	})
	close(stub.release) // no blocking: this test is about the limiter
	url := ts.URL + "/v1/experiments/table1"

	for i := 0; i < 2; i++ {
		res := <-asyncGet(url)
		if res.status != http.StatusOK {
			t.Fatalf("burst request %d: status %d (%s)", i, res.status, res.body)
		}
	}
	res := <-asyncGet(url)
	if res.status != http.StatusTooManyRequests {
		t.Fatalf("over-rate request: status %d, want 429 (%s)", res.status, res.body)
	}
	if res.retryAfter == "" {
		t.Error("over-rate request: missing Retry-After header")
	}
	if !strings.Contains(res.body, "rate limit") {
		t.Errorf("over-rate request: body should name the limiter: %s", res.body)
	}
	// healthz is not gated or rate-limited and reports the refusal.
	if st := getHealth(t, ts.URL); st.RateLimited != 1 {
		t.Errorf("rate_limited %d, want 1", st.RateLimited)
	}
}

// TestConfigValidate enumerates the operator misconfigurations Validate
// must refuse and the zero/default values it must accept.
func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config: %v", err)
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config: %v", err)
	}
	bad := []Config{
		{MaxConcurrent: -1},
		{MaxQueue: -1},
		{QueueTimeout: -time.Second},
		{RequestTimeout: -time.Second},
		{RatePerClient: -0.5},
		{BurstPerClient: -2},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%+v: expected a validation error", cfg)
		}
	}
	// withDefaults resolves burst from rate.
	c := Config{RatePerClient: 2.5}.withDefaults()
	if c.BurstPerClient != 3 {
		t.Errorf("derived burst %d, want ceil(2.5)=3", c.BurstPerClient)
	}
	if c.MaxConcurrent != DefaultMaxConcurrent() || c.MaxQueue != DefaultMaxQueue {
		t.Errorf("defaults not applied: %+v", c)
	}
}

// TestShutdownDrains covers the graceful-shutdown contract: after
// Server.Shutdown, new experiment requests get 503, new SSE subscriptions
// get 503, an established SSE stream ends cleanly (EOF after a complete
// frame, not a reset), and healthz reports "draining".
func TestShutdownDrains(t *testing.T) {
	ts, srv, stub := newAdmissionServer(t, Config{
		MaxConcurrent: 2,
		MaxQueue:      2,
		QueueTimeout:  time.Second,
	})
	close(stub.release)

	// Established SSE stream, reading in the background.
	resp, err := http.Get(ts.URL + "/v1/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	streamDone := make(chan error, 1)
	streamBody := make(chan string, 1)
	go func() {
		b, err := io.ReadAll(resp.Body)
		streamBody <- string(b)
		streamDone <- err
	}()

	srv.Shutdown()

	// The established stream must close cleanly: ReadAll returns nil error
	// (EOF), and the shutdown comment frame arrived intact.
	select {
	case err := <-streamDone:
		if err != nil {
			t.Errorf("SSE stream ended with %v, want clean EOF", err)
		}
		if body := <-streamBody; !strings.Contains(body, "server shutting down") {
			t.Errorf("SSE stream missing the shutdown frame: %q", body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream did not close after Shutdown")
	}

	// New experiment requests and SSE subscriptions are refused with 503.
	res := <-asyncGet(ts.URL + "/v1/experiments/table1")
	if res.status != http.StatusServiceUnavailable {
		t.Errorf("experiment during drain: status %d, want 503 (%s)", res.status, res.body)
	}
	status, body, _ := get(t, ts.URL+"/v1/progress")
	if status != http.StatusServiceUnavailable {
		t.Errorf("SSE during drain: status %d (%s)", status, body)
	}

	// healthz keeps answering (load balancers poll it during drain).
	if st := getHealth(t, ts.URL); st.Status != "draining" {
		t.Errorf("healthz status %q, want draining", st.Status)
	}

	// Shutdown is idempotent.
	srv.Shutdown()
}

// TestShutdownWhileRequestInFlight checks an admitted request finishes after
// Shutdown is called: draining refuses new work but does not abort old work.
func TestShutdownWhileRequestInFlight(t *testing.T) {
	ts, srv, stub := newAdmissionServer(t, Config{
		MaxConcurrent: 1,
		MaxQueue:      1,
		QueueTimeout:  time.Second,
	})
	first := asyncGet(ts.URL + "/v1/experiments/table1")
	<-stub.started
	srv.Shutdown()
	close(stub.release)
	res := <-first
	if res.status != http.StatusOK {
		t.Errorf("in-flight request during drain: status %d (%s)", res.status, res.body)
	}
}
