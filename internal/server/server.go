// Package server exposes the experiment registry over HTTP as a JSON/CSV
// API, turning the one-shot qsd batch tool into a long-lived service.
//
// All requests run on one shared engine.Engine, so the fingerprint-keyed
// result cache and the worker pool are reused across requests: a repeated
// request with identical parameters is served from cache without
// recomputation, and identical requests that race are coalesced onto a
// single in-flight computation (singleflight).  Long sweeps report job
// completions on a server-sent-events progress stream.
//
// Endpoints (all GET):
//
//	/v1/experiments            list every experiment with its parameters
//	/v1/experiments/{id}       run one experiment (or "all"); parameters:
//	                           format (json, csv, text; default json),
//	                           bits, trials, seed, buckets, benchmark,
//	                           scale (alias max-scale), arch, buffer
//	                           (ancilla/EPR buffer capacity of the
//	                           event-driven scenarios; 0 = infinite), tiles
//	                           (mesh tile bound of the network scenarios),
//	                           sparse / bitsliced (fig4 Monte Carlo
//	                           executor), ci + conf (fig4 sequential
//	                           sampling to a relative confidence-interval
//	                           half-width, capped at trials)
//	/v1/progress               SSE stream of engine job completions
//	                           ("job" events) and refining partial
//	                           estimates of sequential-sampling runs
//	                           ("partial" events)
//	/v1/cache                  engine cache and coalescing statistics
//	/v1/healthz                liveness probe
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"speedofdata/internal/core"
	"speedofdata/internal/report"
)

// Server is the HTTP handler of the experiment API.
type Server struct {
	exp      core.Experiments
	defaults core.RunParams
	mux      *http.ServeMux
	hub      *progressHub
}

// New builds a server around the given experiment runner, whose Engine is
// shared by every request.  defaults supplies the parameter values used when
// a query string omits them (use core.DefaultRunParams for the paper's
// settings).  The engine's Progress callback is claimed for the /v1/progress
// stream.
func New(exp core.Experiments, defaults core.RunParams) *Server {
	s := &Server{exp: exp, defaults: defaults, mux: http.NewServeMux(), hub: newProgressHub()}
	if exp.Engine != nil {
		exp.Engine.Progress = s.hub.broadcast
		exp.Engine.Partial = s.hub.broadcastPartial
	}
	s.mux.HandleFunc("GET /v1/experiments", s.handleList)
	s.mux.HandleFunc("GET /v1/experiments/{id}", s.handleExperiment)
	s.mux.HandleFunc("GET /v1/progress", s.hub.handleSSE)
	s.mux.HandleFunc("GET /v1/cache", s.handleCache)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// errorBody is the JSON error envelope of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// listedExperiment is one entry of the /v1/experiments index.
type listedExperiment struct {
	ID      string   `json:"id"`
	Title   string   `json:"title"`
	Aliases []string `json:"aliases,omitempty"`
	Params  []string `json:"params,omitempty"`
	Path    string   `json:"path"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	infos := core.ExperimentInfos()
	out := struct {
		Experiments []listedExperiment `json:"experiments"`
	}{Experiments: make([]listedExperiment, 0, len(infos))}
	for _, info := range infos {
		out.Experiments = append(out.Experiments, listedExperiment{
			ID:      info.ID,
			Title:   info.Title,
			Aliases: info.Aliases,
			Params:  info.Params,
			Path:    "/v1/experiments/" + info.ID,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// queryParams overlays the request's query string on the server defaults.
// It returns the experiment runner (bits applied) and the run parameters.
func (s *Server) queryParams(r *http.Request) (core.Experiments, core.RunParams, error) {
	exp, p := s.exp, s.defaults
	q := r.URL.Query()
	fail := func(name string, err error) (core.Experiments, core.RunParams, error) {
		return exp, p, fmt.Errorf("invalid %s: %v", name, err)
	}
	intParam := func(name string, dst *int) error {
		if v := q.Get(name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("invalid %s: %v", name, err)
			}
			*dst = n
		}
		return nil
	}
	for name, dst := range map[string]*int{
		"bits":    &exp.Bits,
		"trials":  &p.Trials,
		"buckets": &p.Buckets,
		"buffer":  &p.Buffer,
		"tiles":   &p.Tiles,
	} {
		if err := intParam(name, dst); err != nil {
			return exp, p, err
		}
	}
	// "scale" is the documented spelling; "max-scale" matches the CLI flag.
	for _, name := range []string{"max-scale", "scale"} {
		if err := intParam(name, &p.MaxScale); err != nil {
			return exp, p, err
		}
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fail("seed", err)
		}
		p.Seed = n
	}
	for name, dst := range map[string]*bool{
		"sparse":    &p.Sparse,
		"bitsliced": &p.BitSliced,
	} {
		if v := q.Get(name); v != "" {
			b, err := strconv.ParseBool(v)
			if err != nil {
				return fail(name, err)
			}
			*dst = b
		}
	}
	for name, dst := range map[string]*float64{
		"ci":   &p.CI,
		"conf": &p.Conf,
	} {
		if v := q.Get(name); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return fail(name, err)
			}
			*dst = f
		}
	}
	if v := q.Get("benchmark"); v != "" {
		p.Benchmark = v
	}
	if v := q.Get("arch"); v != "" {
		p.Arch = v
	}
	if exp.Bits <= 0 {
		return exp, p, fmt.Errorf("invalid bits: must be positive, got %d", exp.Bits)
	}
	if err := p.Validate(); err != nil {
		return exp, p, err
	}
	// Upper bounds on client-controlled effort.  The CLI may run arbitrarily
	// heavy experiments on the operator's own machine; HTTP clients may not
	// pin the shared worker pool for hours with one request.
	for _, lim := range []struct {
		name string
		got  int
		max  int
	}{
		{"bits", exp.Bits, maxBits},
		{"trials", p.Trials, maxTrials},
		{"buckets", p.Buckets, maxBuckets},
		{"scale", p.MaxScale, maxRequestScale},
		{"buffer", p.Buffer, maxRequestBuffer},
		{"tiles", p.Tiles, maxRequestTiles},
	} {
		if lim.got > lim.max {
			return exp, p, fmt.Errorf("invalid %s: %d exceeds the server limit %d", lim.name, lim.got, lim.max)
		}
	}
	// Sequential sampling runs until its Wilson interval converges or the
	// trials cap is spent; a very tight half-width target on a shared server
	// is an effort bomb (the cap itself is already bounded by maxTrials).
	if p.CI > 0 && p.CI < minRequestCI {
		return exp, p, fmt.Errorf("invalid ci: %v is below the server minimum %v", p.CI, minRequestCI)
	}
	if p.Conf > maxRequestConfidence {
		return exp, p, fmt.Errorf("invalid conf: %v exceeds the server maximum %v", p.Conf, maxRequestConfidence)
	}
	return exp, p, nil
}

// Per-request effort limits enforced by queryParams.
const (
	maxBits          = 128
	maxTrials        = 10_000_000
	maxBuckets       = 100_000
	maxRequestScale  = 4096
	maxRequestBuffer = 1_000_000
	maxRequestTiles  = 64
	// minRequestCI and maxRequestConfidence bound the sequential-sampling
	// precision a client may request (both tighten the stopping rule; the
	// trial cap still bounds the worst case at maxTrials).
	minRequestCI         = 0.001
	maxRequestConfidence = 0.999
)

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ids := []string{id}
	if id == "all" {
		ids = core.AllExperimentOrder
	} else if _, ok := core.CanonicalExperimentID(id); !ok {
		writeError(w, http.StatusNotFound, "unknown experiment %q", id)
		return
	}
	f := report.FormatJSON
	if v := r.URL.Query().Get("format"); v != "" {
		parsed, err := report.ParseFormat(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		f = parsed
	}
	exp, p, err := s.queryParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	doc, err := core.RunReport(r.Context(), exp, p, ids)
	if err != nil {
		if r.Context().Err() != nil {
			// The client went away; there is no one to answer.
			return
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", f.ContentType())
	doc.Encode(w, f)
}

// cacheStats is the /v1/cache response body.
type cacheStats struct {
	Hits      int `json:"hits"`
	Misses    int `json:"misses"`
	Coalesced int `json:"coalesced"`
}

func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.exp.Engine.CacheStats()
	writeJSON(w, http.StatusOK, cacheStats{
		Hits:      hits,
		Misses:    misses,
		Coalesced: s.exp.Engine.Coalesced(),
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "ok"})
}
