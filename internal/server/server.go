// Package server exposes the experiment registry over HTTP as a JSON/CSV
// API, turning the one-shot qsd batch tool into a long-lived service.
//
// All requests run on one shared engine.Engine, so the fingerprint-keyed
// result cache and the worker pool are reused across requests: a repeated
// request with identical parameters is served from cache without
// recomputation, and identical requests that race are coalesced onto a
// single in-flight computation (singleflight).  Long sweeps report job
// completions on a server-sent-events progress stream.
//
// Endpoints (all GET):
//
//	/v1/experiments            list every experiment with its parameters
//	/v1/experiments/{id}       run one experiment (or "all"); parameters:
//	                           format (json, csv, text; default json),
//	                           bits, trials, seed, buckets, benchmark,
//	                           scale (alias max-scale), arch, buffer
//	                           (ancilla/EPR buffer capacity of the
//	                           event-driven scenarios; 0 = infinite), tiles
//	                           (mesh tile bound of the network scenarios),
//	                           faults (netdegrade boundary-failure bound),
//	                           sparse / bitsliced (fig4 Monte Carlo
//	                           executor), ci + conf (fig4 sequential
//	                           sampling to a relative confidence-interval
//	                           half-width, capped at trials)
//	/v1/progress               SSE stream of engine job completions
//	                           ("job" events) and refining partial
//	                           estimates of sequential-sampling runs
//	                           ("partial" events)
//	/v1/cache                  engine cache and coalescing statistics
//	/v1/healthz                liveness probe with admission-control gauges
//	                           (in-flight, queue depth, shed/admitted/
//	                           rate-limited totals, engine jobs, SSE
//	                           subscribers)
//
// Experiment runs pass an admission gate (see Config): at most MaxConcurrent
// execute at once, at most MaxQueue wait, and a saturated server sheds with
// 429 + Retry-After instead of building unbounded backlog.  An optional
// per-client token bucket (RatePerClient) throttles abusive clients before
// they reach the gate.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"

	"speedofdata/internal/core"
	"speedofdata/internal/engine"
	"speedofdata/internal/network"
	"speedofdata/internal/obs"
	"speedofdata/internal/report"
)

// Server is the HTTP handler of the experiment API.
type Server struct {
	exp      core.Experiments
	defaults core.RunParams
	cfg      Config
	mux      *http.ServeMux
	hub      *progressHub
	gate     *gate
	limiter  *rateLimiter // nil when rate limiting is disabled
	obs      *obs.Obs     // nil when observability is disabled
	draining atomic.Bool

	// runReport executes one experiment request; tests swap it for a stub so
	// saturation and deadline behavior are exercised without real workloads.
	runReport func(ctx context.Context, exp core.Experiments, p core.RunParams, ids []string) (report.Document, error)
}

// New builds a server with DefaultConfig admission settings.
func New(exp core.Experiments, defaults core.RunParams) *Server {
	return NewWithConfig(exp, defaults, DefaultConfig())
}

// NewWithConfig builds a server around the given experiment runner, whose
// Engine is shared by every request.  defaults supplies the parameter values
// used when a query string omits them (use core.DefaultRunParams for the
// paper's settings); cfg tunes admission control (zero fields select
// defaults).  The engine's Progress callback is claimed for the /v1/progress
// stream.
func NewWithConfig(exp core.Experiments, defaults core.RunParams, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		exp:       exp,
		defaults:  defaults,
		cfg:       cfg,
		mux:       http.NewServeMux(),
		hub:       newProgressHub(),
		gate:      newGate(cfg.MaxConcurrent, cfg.MaxQueue, cfg.QueueTimeout),
		runReport: core.RunReport,
	}
	if cfg.RatePerClient > 0 {
		s.limiter = newRateLimiter(cfg.RatePerClient, cfg.BurstPerClient)
	}
	if exp.Engine != nil {
		exp.Engine.Progress = s.hub.broadcast
		exp.Engine.Partial = s.hub.broadcastPartial
	}
	s.mux.HandleFunc("GET /v1/experiments", s.handleList)
	s.mux.HandleFunc("GET /v1/experiments/{id}", s.handleExperiment)
	s.mux.HandleFunc("GET /v1/progress", s.hub.handleSSE)
	s.mux.HandleFunc("GET /v1/cache", s.handleCache)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	if cfg.Obs != nil {
		s.instrument(cfg.Obs)
	}
	return s
}

// Shutdown moves the server into draining: the progress hub closes (every
// SSE stream ends cleanly, new subscriptions get 503) and new experiment
// requests are refused with 503 while admitted ones finish.  Call it before
// http.Server.Shutdown so idle SSE connections do not hold the drain open.
func (s *Server) Shutdown() {
	s.draining.Store(true)
	s.hub.close()
}

// ServeHTTP implements http.Handler.  With observability wired in, every
// request passes the observe middleware (tracing, request metrics, access
// log); without it the mux serves directly, as before.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.obs != nil {
		s.observe(w, r)
		return
	}
	s.mux.ServeHTTP(w, r)
}

// errorBody is the JSON error envelope of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// listedExperiment is one entry of the /v1/experiments index.
type listedExperiment struct {
	ID      string   `json:"id"`
	Title   string   `json:"title"`
	Aliases []string `json:"aliases,omitempty"`
	Params  []string `json:"params,omitempty"`
	Path    string   `json:"path"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	infos := core.ExperimentInfos()
	out := struct {
		Experiments []listedExperiment `json:"experiments"`
	}{Experiments: make([]listedExperiment, 0, len(infos))}
	for _, info := range infos {
		out.Experiments = append(out.Experiments, listedExperiment{
			ID:      info.ID,
			Title:   info.Title,
			Aliases: info.Aliases,
			Params:  info.Params,
			Path:    "/v1/experiments/" + info.ID,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// queryParams overlays the request's query string on the server defaults.
// It returns the experiment runner (bits applied) and the run parameters.
func (s *Server) queryParams(r *http.Request) (core.Experiments, core.RunParams, error) {
	exp, p := s.exp, s.defaults
	q := r.URL.Query()
	fail := func(name string, err error) (core.Experiments, core.RunParams, error) {
		return exp, p, fmt.Errorf("invalid %s: %v", name, err)
	}
	intParam := func(name string, dst *int) error {
		if v := q.Get(name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("invalid %s: %v", name, err)
			}
			*dst = n
		}
		return nil
	}
	for name, dst := range map[string]*int{
		"bits":    &exp.Bits,
		"trials":  &p.Trials,
		"buckets": &p.Buckets,
		"buffer":  &p.Buffer,
		"tiles":   &p.Tiles,
		"faults":  &p.Faults,
	} {
		if err := intParam(name, dst); err != nil {
			return exp, p, err
		}
	}
	// "scale" is the documented spelling; "max-scale" matches the CLI flag.
	for _, name := range []string{"max-scale", "scale"} {
		if err := intParam(name, &p.MaxScale); err != nil {
			return exp, p, err
		}
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fail("seed", err)
		}
		p.Seed = n
	}
	for name, dst := range map[string]*bool{
		"sparse":    &p.Sparse,
		"bitsliced": &p.BitSliced,
	} {
		if v := q.Get(name); v != "" {
			b, err := strconv.ParseBool(v)
			if err != nil {
				return fail(name, err)
			}
			*dst = b
		}
	}
	for name, dst := range map[string]*float64{
		"ci":   &p.CI,
		"conf": &p.Conf,
	} {
		if v := q.Get(name); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return fail(name, err)
			}
			*dst = f
		}
	}
	if v := q.Get("benchmark"); v != "" {
		p.Benchmark = v
	}
	if v := q.Get("arch"); v != "" {
		p.Arch = v
	}
	if exp.Bits <= 0 {
		return exp, p, fmt.Errorf("invalid bits: must be positive, got %d", exp.Bits)
	}
	if err := p.Validate(); err != nil {
		return exp, p, err
	}
	// Upper bounds on client-controlled effort.  The CLI may run arbitrarily
	// heavy experiments on the operator's own machine; HTTP clients may not
	// pin the shared worker pool for hours with one request.
	for _, lim := range []struct {
		name string
		got  int
		max  int
	}{
		{"bits", exp.Bits, maxBits},
		{"trials", p.Trials, maxTrials},
		{"buckets", p.Buckets, maxBuckets},
		{"scale", p.MaxScale, maxRequestScale},
		{"buffer", p.Buffer, maxRequestBuffer},
		{"tiles", p.Tiles, maxRequestTiles},
		{"faults", p.Faults, maxRequestFaults},
	} {
		if lim.got > lim.max {
			return exp, p, fmt.Errorf("invalid %s: %d exceeds the server limit %d", lim.name, lim.got, lim.max)
		}
	}
	// Sequential sampling runs until its Wilson interval converges or the
	// trials cap is spent; a very tight half-width target on a shared server
	// is an effort bomb (the cap itself is already bounded by maxTrials).
	if p.CI > 0 && p.CI < minRequestCI {
		return exp, p, fmt.Errorf("invalid ci: %v is below the server minimum %v", p.CI, minRequestCI)
	}
	if p.Conf > maxRequestConfidence {
		return exp, p, fmt.Errorf("invalid conf: %v exceeds the server maximum %v", p.Conf, maxRequestConfidence)
	}
	return exp, p, nil
}

// Per-request effort limits enforced by queryParams.
const (
	maxBits          = 128
	maxTrials        = 10_000_000
	maxBuckets       = 100_000
	maxRequestScale  = 4096
	maxRequestBuffer = 1_000_000
	maxRequestTiles  = 64
	maxRequestFaults = 64
	// minRequestCI and maxRequestConfidence bound the sequential-sampling
	// precision a client may request (both tighten the stopping rule; the
	// trial cap still bounds the worst case at maxTrials).
	minRequestCI         = 0.001
	maxRequestConfidence = 0.999
)

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	// Rate limiting runs before any parsing: a throttled client should pay
	// nothing beyond the bucket lookup.
	if s.limiter != nil {
		if wait, ok := s.limiter.allow(clientKey(r)); !ok {
			w.Header().Set("Retry-After", retryAfterSeconds(wait))
			writeError(w, http.StatusTooManyRequests, "rate limit exceeded for client %s", clientKey(r))
			return
		}
	}
	id := r.PathValue("id")
	ids := []string{id}
	if id == "all" {
		ids = core.AllExperimentOrder
	} else if _, ok := core.CanonicalExperimentID(id); !ok {
		writeError(w, http.StatusNotFound, "unknown experiment %q", id)
		return
	}
	f := report.FormatJSON
	if v := r.URL.Query().Get("format"); v != "" {
		parsed, err := report.ParseFormat(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		f = parsed
	}
	exp, p, err := s.queryParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	release, err := s.gate.admit(r.Context())
	if err != nil {
		var shed *shedError
		if errors.As(err, &shed) {
			w.Header().Set("Retry-After", retryAfterSeconds(shed.retryAfter))
			writeError(w, http.StatusTooManyRequests, "%v", shed)
		}
		// Otherwise the client gave up while queued; there is no one to answer.
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	doc, err := s.runReport(ctx, exp, p, ids)
	if err != nil {
		if r.Context().Err() != nil {
			// The client went away; there is no one to answer.
			return
		}
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(ctx.Err(), context.DeadlineExceeded) {
			// The admitted run outlived its deadline: the server cancelled it
			// to protect the pool, not because the request was malformed.
			w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.QueueTimeout))
			writeError(w, http.StatusServiceUnavailable,
				"request exceeded the server's %v execution deadline", s.cfg.RequestTimeout)
			return
		}
		if errors.Is(err, network.ErrPartitioned) {
			// The requested fault plan disconnects the mesh: a property of
			// the request, not a server failure.
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", f.ContentType())
	doc.Encode(w, f)
}

// cacheStats is the /v1/cache response body.  hits/misses cover the memory
// tier; store_hits/store_misses count the memory misses that were resolved
// (or not) by the persistent store backend, when one is attached.
type cacheStats struct {
	Hits        int `json:"hits"`
	Misses      int `json:"misses"`
	Coalesced   int `json:"coalesced"`
	Entries     int `json:"entries"`
	StoreHits   int `json:"store_hits"`
	StoreMisses int `json:"store_misses"`
}

func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	tiers := s.exp.Engine.Tiers()
	writeJSON(w, http.StatusOK, cacheStats{
		Hits:        tiers.MemoryHits,
		Misses:      tiers.MemoryMisses,
		Coalesced:   s.exp.Engine.Coalesced(),
		Entries:     tiers.MemoryEntries,
		StoreHits:   tiers.StoreHits,
		StoreMisses: tiers.StoreMisses,
	})
}

// healthStatus is the /v1/healthz response body: liveness plus the
// admission-control gauges the load harness asserts steady-state health on.
type healthStatus struct {
	// Status is "ok" while serving and "draining" after Shutdown.
	Status string `json:"status"`
	// InFlight and QueueDepth are live admission-gate gauges; QueueCapacity
	// and MaxConcurrent are their configured bounds.
	InFlight      int `json:"in_flight"`
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	MaxConcurrent int `json:"max_concurrent"`
	// Admitted and Shed count experiment requests the gate let through or
	// refused (429) since startup; RateLimited counts requests the per-client
	// token bucket refused before the gate.
	Admitted    int64 `json:"admitted"`
	Shed        int64 `json:"shed"`
	RateLimited int64 `json:"rate_limited"`
	// EngineJobsInFlight is the engine-level gauge of job Run functions
	// executing now (cache hits and coalesced followers excluded).
	EngineJobsInFlight int `json:"engine_jobs_in_flight"`
	// SSESubscribers is the live /v1/progress subscriber count.
	SSESubscribers int `json:"sse_subscribers"`
	// CacheMemoryHitRate is hits/(hits+misses) over memory-tier lookups
	// (0 before any lookup); CacheMemoryEntries the tier's current size.
	CacheMemoryHitRate float64 `json:"cache_memory_hit_rate"`
	CacheMemoryEntries int     `json:"cache_memory_entries"`
	// StoreHitRate is the fraction of memory misses the persistent store
	// resolved; Store carries the store's own gauges.  Both are present only
	// when the server was started with a store backend (-store).
	StoreHitRate float64      `json:"store_hit_rate,omitempty"`
	Store        *storeHealth `json:"store,omitempty"`
}

// storeHealth is the persistent result store's corner of /v1/healthz.
type storeHealth struct {
	Entries   int   `json:"entries"`
	LiveBytes int64 `json:"live_bytes"`
	DeadBytes int64 `json:"dead_bytes"`
	FileBytes int64 `json:"file_bytes"`
	Puts      int64 `json:"puts"`
	Skipped   int64 `json:"skipped"`
	Evicted   int64 `json:"evicted"`
	Stale     int64 `json:"stale"`
	ReadOnly  bool  `json:"read_only"`
	// Compaction history: total passes, and the bytes reclaimed / live
	// entries kept by the most recent one.
	Compactions                  int64 `json:"compactions"`
	LastCompactionReclaimedBytes int64 `json:"last_compaction_reclaimed_bytes"`
	LastCompactionLiveEntries    int   `json:"last_compaction_live_entries"`
}

func rate(hits, misses int) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := healthStatus{
		Status:             "ok",
		InFlight:           s.gate.inFlight(),
		QueueDepth:         s.gate.queueDepth(),
		QueueCapacity:      s.cfg.MaxQueue,
		MaxConcurrent:      s.cfg.MaxConcurrent,
		Admitted:           s.gate.admitted.Value(),
		Shed:               s.gate.shed.Value(),
		EngineJobsInFlight: s.exp.Engine.InFlight(),
		SSESubscribers:     s.hub.subscribers(),
	}
	if s.limiter != nil {
		st.RateLimited = s.limiter.limitedCount()
	}
	tiers := s.exp.Engine.Tiers()
	st.CacheMemoryHitRate = rate(tiers.MemoryHits, tiers.MemoryMisses)
	st.CacheMemoryEntries = tiers.MemoryEntries
	if backend := s.exp.Engine.Backend; backend != nil {
		st.StoreHitRate = rate(tiers.StoreHits, tiers.StoreMisses)
		if sb, ok := backend.(engine.StatBackend); ok {
			bs := sb.Stats()
			st.Store = &storeHealth{
				Entries:                      bs.Entries,
				LiveBytes:                    bs.LiveBytes,
				DeadBytes:                    bs.DeadBytes,
				FileBytes:                    bs.FileBytes,
				Puts:                         bs.Puts,
				Skipped:                      bs.Skipped,
				Evicted:                      bs.Evicted,
				Stale:                        bs.Stale,
				ReadOnly:                     bs.ReadOnly,
				Compactions:                  bs.Compactions,
				LastCompactionReclaimedBytes: bs.LastCompactionReclaimedBytes,
				LastCompactionLiveEntries:    bs.LastCompactionLiveEntries,
			}
		}
	}
	if s.draining.Load() {
		st.Status = "draining"
	}
	writeJSON(w, http.StatusOK, st)
}
