package server

import (
	"context"
	"fmt"
	"math"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"speedofdata/internal/obs"
)

// Config tunes the serving tier's admission control: how many experiment
// requests may execute at once, how many may wait, how long they may wait,
// how long an admitted run may take, and the per-client request rate.  The
// zero value of any field selects the documented default; use DefaultConfig
// for an explicit baseline.  These are operator knobs (qsd serve flags), not
// client parameters — Validate rejects nonsensical settings at startup just
// as queryParams bounds client effort per request.
type Config struct {
	// MaxConcurrent bounds experiment requests executing concurrently
	// (admitted past the gate).  Requests beyond it queue.  0 selects
	// DefaultMaxConcurrent; the engine's worker pool bounds CPU below this.
	MaxConcurrent int
	// MaxQueue bounds requests waiting for an execution slot.  A request
	// arriving with the queue full is shed immediately with 429 and a
	// Retry-After hint.  0 selects DefaultMaxQueue.
	MaxQueue int
	// QueueTimeout is the longest a queued request waits for admission
	// before it is shed with 429.  0 selects DefaultQueueTimeout.
	QueueTimeout time.Duration
	// RequestTimeout is the deadline of an admitted experiment run.  A run
	// that exceeds it is cancelled and answered with 503.  0 selects
	// DefaultRequestTimeout.
	RequestTimeout time.Duration
	// RatePerClient is the sustained per-client request rate (tokens per
	// second, keyed by remote address) enforced by a token bucket in front
	// of the admission gate.  0 disables rate limiting.
	RatePerClient float64
	// BurstPerClient is the token bucket capacity: how many requests a
	// client may issue back to back before the sustained rate applies.  0
	// with RatePerClient > 0 defaults to ceil(RatePerClient), at least 1.
	BurstPerClient int
	// Obs, when set, wires the server into an observability bundle: request
	// metrics and admission gauges are registered with Obs.Registry,
	// /v1/experiments/ requests are traced through Obs.Tracer (trace ID in
	// X-Trace-Id, full trace at /v1/trace/{id}), and the /metrics and
	// /v1/metrics endpoints are mounted.  nil serves without observability,
	// byte-identical to the pre-obs server.
	Obs *obs.Obs
	// AccessLog enables a structured (slog) access-log line per request on
	// Obs.Log, correlated by trace ID.  Ignored when Obs is nil.
	AccessLog bool
}

// Admission defaults, chosen so a default server sheds under abuse but never
// throttles the interactive workloads the test suite and examples run.
const (
	DefaultMaxQueue       = 64
	DefaultQueueTimeout   = 2 * time.Second
	DefaultRequestTimeout = 2 * time.Minute
)

// DefaultMaxConcurrent returns the default execution-slot count: twice
// GOMAXPROCS (requests block on the shared engine, so some oversubscription
// keeps the pool busy while a request encodes its response), at least 4.
func DefaultMaxConcurrent() int {
	n := 2 * runtime.GOMAXPROCS(0)
	if n < 4 {
		n = 4
	}
	return n
}

// DefaultConfig returns the serving defaults with every field explicit.
func DefaultConfig() Config {
	return Config{
		MaxConcurrent:  DefaultMaxConcurrent(),
		MaxQueue:       DefaultMaxQueue,
		QueueTimeout:   DefaultQueueTimeout,
		RequestTimeout: DefaultRequestTimeout,
	}
}

// Validate rejects operator configurations no server can run.  Zero values
// are legal (they select defaults); negative values and a positive rate with
// a negative burst are not.
func (c Config) Validate() error {
	if c.MaxConcurrent < 0 {
		return fmt.Errorf("max-concurrent must be non-negative (0 = default %d), got %d", DefaultMaxConcurrent(), c.MaxConcurrent)
	}
	if c.MaxQueue < 0 {
		return fmt.Errorf("max-queue must be non-negative (0 = default %d), got %d", DefaultMaxQueue, c.MaxQueue)
	}
	if c.QueueTimeout < 0 {
		return fmt.Errorf("queue-timeout must be non-negative (0 = default %v), got %v", DefaultQueueTimeout, c.QueueTimeout)
	}
	if c.RequestTimeout < 0 {
		return fmt.Errorf("request-timeout must be non-negative (0 = default %v), got %v", DefaultRequestTimeout, c.RequestTimeout)
	}
	if c.RatePerClient < 0 || math.IsNaN(c.RatePerClient) || math.IsInf(c.RatePerClient, 0) {
		return fmt.Errorf("rate-limit must be a non-negative finite rate (0 = disabled), got %v", c.RatePerClient)
	}
	if c.BurstPerClient < 0 {
		return fmt.Errorf("rate-burst must be non-negative (0 = default), got %d", c.BurstPerClient)
	}
	return nil
}

// withDefaults resolves every zero field to its default.
func (c Config) withDefaults() Config {
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = DefaultMaxConcurrent()
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = DefaultMaxQueue
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = DefaultQueueTimeout
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.RatePerClient > 0 && c.BurstPerClient == 0 {
		c.BurstPerClient = int(math.Ceil(c.RatePerClient))
		if c.BurstPerClient < 1 {
			c.BurstPerClient = 1
		}
	}
	return c
}

// shedError reports a request the admission gate refused, with the hint the
// handler turns into a Retry-After header.
type shedError struct {
	reason     string
	retryAfter time.Duration
}

func (e *shedError) Error() string { return e.reason }

// gate is the concurrency-limited admission queue in front of engine
// dispatch.  slots is a counting semaphore of execution slots; queue bounds
// the waiters.  Both are channels so the gauges (len) are exact and admit
// needs no lock on the hot path.
type gate struct {
	slots   chan struct{}
	queue   chan struct{}
	timeout time.Duration

	// admitted and shed are obs counters so the metrics registry can expose
	// the gate's own storage (single source of truth with /v1/healthz); the
	// gate works identically when no registry is attached.
	admitted *obs.Counter
	shed     *obs.Counter
}

func newGate(maxConcurrent, maxQueue int, timeout time.Duration) *gate {
	return &gate{
		slots:    make(chan struct{}, maxConcurrent),
		queue:    make(chan struct{}, maxQueue),
		timeout:  timeout,
		admitted: &obs.Counter{},
		shed:     &obs.Counter{},
	}
}

// admit blocks until an execution slot frees, the queue overflows, the wait
// times out, or ctx is cancelled.  On success it returns the release
// function the caller must invoke when the request finishes; on overflow or
// timeout it returns a *shedError (answer 429), and on cancellation the
// context's error (the client is gone — answer no one).
func (g *gate) admit(ctx context.Context) (func(), error) {
	// Fast path: a free slot, no queueing.
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return g.release, nil
	default:
	}
	// Queue, bounded: a full queue sheds immediately rather than building an
	// unbounded backlog whose every entry would time out anyway.
	select {
	case g.queue <- struct{}{}:
	default:
		g.shed.Add(1)
		return nil, &shedError{
			reason:     fmt.Sprintf("server saturated: %d requests executing and %d queued", cap(g.slots), cap(g.queue)),
			retryAfter: g.timeout,
		}
	}
	defer func() { <-g.queue }()
	timer := time.NewTimer(g.timeout)
	defer timer.Stop()
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return g.release, nil
	case <-timer.C:
		g.shed.Add(1)
		return nil, &shedError{
			reason:     fmt.Sprintf("server saturated: no execution slot freed within %v", g.timeout),
			retryAfter: g.timeout,
		}
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (g *gate) release() { <-g.slots }

// inFlight and queueDepth are the live gauges /v1/healthz reports.
func (g *gate) inFlight() int   { return len(g.slots) }
func (g *gate) queueDepth() int { return len(g.queue) }

// rateLimiter is a per-client token bucket: each client (keyed by remote
// host) holds up to burst tokens, refilled at rate tokens per second; a
// request spends one.  now is injectable so tests drive the clock
// deterministically.
type rateLimiter struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	clients map[string]*bucket
	limited *obs.Counter
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxTrackedClients bounds the limiter's memory: past it, insertion sweeps
// clients whose buckets have fully refilled (they carry no throttling state).
const maxTrackedClients = 4096

func newRateLimiter(rate float64, burst int) *rateLimiter {
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		now:     time.Now,
		clients: make(map[string]*bucket),
		limited: &obs.Counter{},
	}
}

// allow spends one token of the client's bucket.  When the bucket is empty
// it reports false and the wait until the next token accrues.
func (l *rateLimiter) allow(client string) (time.Duration, bool) {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.clients[client]
	if !ok {
		if len(l.clients) >= maxTrackedClients {
			l.sweep(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.clients[client] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+l.rate*now.Sub(b.last).Seconds())
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	l.limited.Inc()
	return time.Duration((1 - b.tokens) / l.rate * float64(time.Second)), false
}

// sweep drops clients whose buckets have refilled to full: they are
// indistinguishable from unseen clients.  Called with mu held.
func (l *rateLimiter) sweep(now time.Time) {
	for key, b := range l.clients {
		if b.tokens+l.rate*now.Sub(b.last).Seconds() >= l.burst {
			delete(l.clients, key)
		}
	}
}

func (l *rateLimiter) limitedCount() int64 {
	return l.limited.Value()
}

// clientKey extracts the rate-limiting key from a request: the remote host
// without the ephemeral port, so one client's connections share a bucket.
func clientKey(r *http.Request) string {
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// retryAfterSeconds renders a Retry-After header value: whole seconds,
// rounded up, at least 1 (a zero Retry-After invites an immediate retry).
func retryAfterSeconds(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}
