package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// sseEvent is one named server-sent event: "job" for engine job completions,
// "partial" for refining partial estimates of sequential-sampling runs.
type sseEvent struct {
	name string
	data any
}

// progressEvent is one engine job completion, streamed to /v1/progress
// subscribers as a server-sent event of type "job".
type progressEvent struct {
	// Done and Total are the finished and total job counts of the batch the
	// job belonged to.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Key is the completed job's fingerprint.
	Key string `json:"key"`
	// TraceID names the request trace the job ran under, when the batch was
	// traced, so an SSE consumer can correlate progress with /v1/trace/{id}.
	TraceID string `json:"trace_id,omitempty"`
}

// partialEvent is one refining partial estimate of a long-running
// experiment, streamed as a server-sent event of type "partial".
type partialEvent struct {
	// Key is the publishing experiment job's fingerprint.
	Key string `json:"key"`
	// Seq orders the partials of one run; later estimates supersede earlier
	// ones.
	Seq int `json:"seq"`
	// Value is the experiment-specific partial payload (e.g.
	// core.PartialEstimate).
	Value any `json:"value"`
}

// progressHub fans engine progress and partial-result callbacks out to SSE
// subscribers.  The engine serialises each callback kind, but subscribers
// come and go from request goroutines, so the subscriber set is
// mutex-guarded.  Slow subscribers drop events instead of stalling the
// engine.
type progressHub struct {
	mu     sync.Mutex
	subs   map[chan sseEvent]struct{}
	closed bool
	// done is closed by close(); every streaming handler selects on it so a
	// draining server ends its SSE responses cleanly (stream close, not a
	// connection reset) and http.Server.Shutdown is not held open forever by
	// idle subscribers.
	done chan struct{}
}

func newProgressHub() *progressHub {
	return &progressHub{subs: make(map[chan sseEvent]struct{}), done: make(chan struct{})}
}

// close ends every subscriber stream and refuses new ones; it is idempotent.
func (h *progressHub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.closed {
		h.closed = true
		close(h.done)
	}
}

// subscribers reports the live subscriber count for /v1/healthz.
func (h *progressHub) subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

func (h *progressHub) subscribe() chan sseEvent {
	// Partial estimates of sequential-sampling runs arrive in bursts (every
	// protocol of a fig4 batch publishes its doubling schedule within
	// milliseconds), so the buffer is sized to absorb a whole CI-mode run
	// before the writer catches up; overflow still drops rather than
	// stalling the engine.
	ch := make(chan sseEvent, 1024)
	h.mu.Lock()
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	return ch
}

func (h *progressHub) unsubscribe(ch chan sseEvent) {
	h.mu.Lock()
	delete(h.subs, ch)
	h.mu.Unlock()
}

// send fans one event out to every subscriber.  It must never block: it
// runs inside the engine's progress (or partial) lock.
func (h *progressHub) send(ev sseEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for ch := range h.subs {
		select {
		case ch <- ev:
		default: // subscriber too slow; drop
		}
	}
}

// broadcast is installed as the engine's Progress callback.
func (h *progressHub) broadcast(done, total int, key, traceID string) {
	h.send(sseEvent{name: "job", data: progressEvent{Done: done, Total: total, Key: key, TraceID: traceID}})
}

// broadcastPartial is installed as the engine's Partial callback.
func (h *progressHub) broadcastPartial(key string, seq int, value any) {
	h.send(sseEvent{name: "partial", data: partialEvent{Key: key, Seq: seq, Value: value}})
}

// handleSSE streams engine job completions (event type "job") and refining
// partial estimates (event type "partial") until the client disconnects.
func (h *progressHub) handleSSE(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	h.mu.Lock()
	draining := h.closed
	h.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, ": connected\n\n")
	flusher.Flush()

	ch := h.subscribe()
	defer h.unsubscribe(ch)
	for {
		select {
		case <-r.Context().Done():
			return
		case <-h.done:
			// Server draining: end the stream cleanly so the client sees EOF
			// after a complete event, not a reset mid-frame.
			fmt.Fprint(w, ": server shutting down\n\n")
			flusher.Flush()
			return
		case ev := <-ch:
			data, err := json.Marshal(ev.data)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, data)
			flusher.Flush()
		}
	}
}
