package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// progressEvent is one engine job completion, streamed to /v1/progress
// subscribers as a server-sent event.
type progressEvent struct {
	// Done and Total are the finished and total job counts of the batch the
	// job belonged to.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Key is the completed job's fingerprint.
	Key string `json:"key"`
}

// progressHub fans engine progress callbacks out to SSE subscribers.  The
// engine serialises Progress calls, but subscribers come and go from request
// goroutines, so the subscriber set is mutex-guarded.  Slow subscribers drop
// events instead of stalling the engine.
type progressHub struct {
	mu   sync.Mutex
	subs map[chan progressEvent]struct{}
}

func newProgressHub() *progressHub {
	return &progressHub{subs: make(map[chan progressEvent]struct{})}
}

func (h *progressHub) subscribe() chan progressEvent {
	ch := make(chan progressEvent, 64)
	h.mu.Lock()
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	return ch
}

func (h *progressHub) unsubscribe(ch chan progressEvent) {
	h.mu.Lock()
	delete(h.subs, ch)
	h.mu.Unlock()
}

// broadcast is installed as the engine's Progress callback.  It must never
// block: it runs inside the engine's progress lock.
func (h *progressHub) broadcast(done, total int, key string) {
	ev := progressEvent{Done: done, Total: total, Key: key}
	h.mu.Lock()
	defer h.mu.Unlock()
	for ch := range h.subs {
		select {
		case ch <- ev:
		default: // subscriber too slow; drop
		}
	}
}

// handleSSE streams engine job completions as server-sent events with event
// type "job" until the client disconnects.
func (h *progressHub) handleSSE(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, ": connected\n\n")
	flusher.Flush()

	ch := h.subscribe()
	defer h.unsubscribe(ch)
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: job\ndata: %s\n\n", data)
			flusher.Flush()
		}
	}
}
